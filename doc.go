// Package repro is a from-scratch Go reproduction of "Enhancing Quality of
// Experience for Collaborative Virtual Reality with Commodity Mobile
// Devices" (Chen, Qian, Li — IEEE ICDCS 2022).
//
// The module's root holds the benchmark harness (bench_test.go), which
// regenerates every figure of the paper's evaluation as a testing.B
// benchmark. The implementation lives under internal/:
//
//   - internal/core — the paper's contribution: the per-slot QoE objective,
//     the Welford variance decomposition, and the Density/Value-Greedy
//     allocation algorithm (Algorithm 1, Theorem 1).
//   - internal/knapsack, internal/baseline — solver machinery and the
//     Firefly/PAVQ comparison algorithms.
//   - internal/sim plus nettrace, motion, netem, tiles — the trace-based
//     simulation platform of Section IV.
//   - internal/server, client, transport, testbed, render — the runnable
//     collaborative VR system of Sections V-VI and the Discussion-section
//     extensions.
//
// See README.md for usage, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results.
package repro
