# Common tasks for the collabvr reproduction.

GO ?= go

.PHONY: all build vet test race lint bench bench-smoke fuzz-smoke ci figures figures-full loadtest-smoke trace-smoke chaos-smoke regret-smoke fleet-smoke slotloop-smoke coord-smoke health-smoke health-baseline clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# staticcheck when available (CI installs it; locally the target degrades to
# a notice rather than failing on a missing tool).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/... ./cmd/...

# What CI runs (see .github/workflows/ci.yml).
ci: build lint test race bench-smoke fuzz-smoke loadtest-smoke trace-smoke chaos-smoke regret-smoke fleet-smoke slotloop-smoke coord-smoke health-smoke

# Full benchmark pass: the allocator and slot-loop JSON reports (each run
# also appended as a timestamped entry to the results/bench_history.jsonl
# trajectory), then every Go benchmark in the tree. Gate a fresh report
# against the committed one with, e.g.:
#   $(GO) run ./cmd/collabvr-bench -compare BENCH_allocator.json \
#       -compare-baseline <committed.json>
bench:
	@mkdir -p results
	$(GO) run ./cmd/collabvr-bench -allocator -alloc-out BENCH_allocator.json \
		-history results/bench_history.jsonl
	$(GO) run ./cmd/collabvr-bench -slotloop -slotloop-out BENCH_slotloop.json \
		-history results/bench_history.jsonl
	$(GO) run ./cmd/collabvr-bench -coord -coord-out BENCH_coord.json \
		-history results/bench_history.jsonl
	$(GO) test -bench=. -benchmem ./...

# One-iteration compile-and-run of the Solve benchmarks (CI keeps them
# building and panicking-free without paying for a full measurement).
bench-smoke:
	$(GO) test -run '^$$' -bench Solve -benchtime 1x ./internal/knapsack ./internal/core

# Brief native fuzzing of the greedy differential and DP targets (~10 s
# each) on top of the checked-in seed corpora under testdata/fuzz.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzGreedy$$' -fuzztime 10s ./internal/knapsack
	$(GO) test -run '^$$' -fuzz '^FuzzDynamicProgram$$' -fuzztime 10s ./internal/knapsack
	$(GO) test -run '^$$' -fuzz '^FuzzWarmGreedy$$' -fuzztime 10s ./internal/knapsack
	$(GO) test -run '^$$' -fuzz '^FuzzCoordLog$$' -fuzztime 10s ./internal/fleet/coord

# Slot-loop smoke (< 60 s): the 10k-session virtual-time differential —
# serial cold, sharded-build, and warm-start campaigns must produce
# bit-identical reports — then the solver allocation gate.
slotloop-smoke:
	@mkdir -p results
	$(GO) run ./cmd/collabvr-bench -slotloop-smoke -seed 3 | tee results/slotloop_smoke.txt
	grep -q 'slotloop equivalence: OK' results/slotloop_smoke.txt
	$(GO) test -run 'TestRunSlotSteadyStateAllocs|TestSlotPool' ./internal/server

# Regenerate every paper figure (scaled down; ~minutes).
figures:
	@mkdir -p results
	$(GO) run ./cmd/collabvr-bench | tee results/results_bench.txt

# Paper-scale parameters (much longer; run on an idle machine).
figures-full:
	@mkdir -p results
	$(GO) run ./cmd/collabvr-bench -full | tee results/results_bench_full.txt

# Load-harness smoke (< 30 s): a live loopback run with ~100 churning
# sessions plus a record/replay determinism check, then a sim-mode capacity
# search on a reduced budget so the search converges inside the bracket.
loadtest-smoke:
	$(GO) run ./cmd/collabvr-loadgen -mode live -arrivals poisson -rate 30 \
		-mean-hold 1 -sessions 100 -slots 180 -slotms 20 -check-replay
	$(GO) run ./cmd/collabvr-loadgen -find-capacity -budget 120 -slots 120 \
		-miss-target 0.05 -cap-lo 1 -cap-hi 64

# Chaos smoke (< 30 s): validate the example fault profiles, run the seeded
# sim campaign under a mid-run blackout and assert the QoE dip/recovery
# summary appears, then a short live loopback run under the same profile
# exercising reconnect, bounded retransmission and graceful drain.
chaos-smoke:
	@mkdir -p results
	$(GO) run ./cmd/collabvr-loadgen -chaos examples/chaos/smoke.json -chaos-check
	$(GO) run ./cmd/collabvr-loadgen -chaos examples/chaos/blackout.json -chaos-check
	$(GO) run ./cmd/collabvr-loadgen -chaos examples/chaos/burst-loss.json -chaos-check
	$(GO) run ./cmd/collabvr-loadgen -arrivals steady -sessions 12 -slots 600 \
		-seed 7 -chaos examples/chaos/smoke.json | tee results/chaos_smoke.txt
	grep -q 'breaker-degraded session-slots' results/chaos_smoke.txt
	grep -q 'chaos recovery' results/chaos_smoke.txt
	$(GO) run ./cmd/collabvr-loadgen -mode live -arrivals steady -sessions 8 \
		-slots 240 -slotms 10 -reconnect -drain-timeout 2s \
		-chaos examples/chaos/smoke.json

# Tracing smoke (< 30 s): a sim-mode loadgen run with span export on,
# asserting the exporter dropped nothing, then the span-analysis CLI over
# the exported JSONL (it exits nonzero on malformed or empty input).
trace-smoke:
	@mkdir -p results
	$(GO) run ./cmd/collabvr-loadgen -arrivals poisson -rate 20 -mean-hold 1 \
		-sessions 50 -slots 240 -slo -span-out results/smoke_spans.jsonl \
		| tee results/smoke_spans.txt
	grep -q 'dropped 0' results/smoke_spans.txt
	$(GO) run ./cmd/collabvr-spans results/smoke_spans.jsonl

# Regret/tournament smoke (< 30 s): record a seeded sim run's decisions
# with counterfactuals and the DP regret reference, attribute them with
# collabvr-regret, then run the deterministic policy tournament twice and
# assert the two ranked tables are byte-identical.
regret-smoke:
	@mkdir -p results
	$(GO) run ./cmd/collabvr-loadgen -arrivals steady -sessions 6 -slots 240 \
		-budget 60 -seed 7 -decisions-out results/smoke_decisions.jsonl \
		-counterfactual-k 3 -regret-ref | tee results/regret_smoke.txt
	grep -q 'decisions: recorded' results/regret_smoke.txt
	$(GO) run ./cmd/collabvr-regret results/smoke_decisions.jsonl
	$(GO) run ./cmd/collabvr-regret -tournament -sessions 4 -slots 120 \
		-budget 60 -seed 7 -regret-resolution 2 > results/tournament_a.txt
	$(GO) run ./cmd/collabvr-regret -tournament -sessions 4 -slots 120 \
		-budget 60 -seed 7 -regret-resolution 2 > results/tournament_b.txt
	cmp results/tournament_a.txt results/tournament_b.txt
	grep -q 'dvgreedy' results/tournament_a.txt

# Fleet smoke (< 60 s): validate the shard-fault profile, then run the
# seeded 3-shard campaign that kills one shard mid-run and assert the
# resilience contract — every session migrates instead of dropping, the run
# reproduces bit for bit, and tail quality recovers to within 10% of the
# fault-free baseline. A short live loopback fleet run exercises the real
# Welcome-resume migration path end to end.
fleet-smoke:
	@mkdir -p results
	$(GO) run ./cmd/collabvr-fleet -chaos examples/chaos/fleet.json -chaos-check
	$(GO) run ./cmd/collabvr-fleet -shards 3 -sessions 9 -slots 1200 -seed 42 \
		-chaos examples/chaos/fleet.json -verify-recovery | tee results/fleet_smoke.txt
	grep -q 'degrades-not-drops: OK' results/fleet_smoke.txt
	grep -q 'determinism: OK' results/fleet_smoke.txt
	grep -q 'recovery: OK' results/fleet_smoke.txt
	$(GO) run ./cmd/collabvr-fleet -mode live -shards 2 -sessions 4 \
		-slots 240 -slotms 10 -budget 300

# Coordinator smoke (< 60 s): validate the coordinator-fault profile, then
# run the seeded 3-shard / 3-coordinator campaign that kills the lease
# holder mid-migration and assert the replication contract — no session
# drops, the survivors elect and converge, the run reproduces bit for bit,
# and a deposed leader's stale flips are fenced. A short live loopback run
# exercises the same failover on the real slot clock.
coord-smoke:
	@mkdir -p results
	$(GO) run ./cmd/collabvr-fleet -coordinators 3 -chaos examples/chaos/coordkill.json -chaos-check
	$(GO) run ./cmd/collabvr-fleet -shards 3 -sessions 9 -slots 1200 -seed 42 \
		-coordinators 3 -chaos examples/chaos/coordkill.json -verify-recovery \
		| tee results/coord_smoke.txt
	grep -q 'degrades-not-drops: OK' results/coord_smoke.txt
	grep -q 'determinism: OK' results/coord_smoke.txt
	grep -q 'coord failover: OK' results/coord_smoke.txt
	$(GO) test -run 'TestFleetCoordLeaderKillMidMigration|TestAdoptSessionEpochFencing' \
		./internal/load ./internal/server

# Health smoke (< 60 s): the seeded 3-shard evacuation campaign exports
# its health time-series (bit-identical per seed), then collabvr-health
# gates the export against the checked-in baseline — trend drift past the
# tolerance on any bad-direction series fails the build.
health-smoke:
	@mkdir -p results
	$(GO) run ./cmd/collabvr-loadgen -shards 3 -sessions 6 -slots 240 \
		-budget 300 -seed 5 -evac -health-out results/health_smoke.jsonl \
		| tee results/health_smoke.txt
	grep -q 'health: exported' results/health_smoke.txt
	$(GO) run ./cmd/collabvr-health -baseline results/health_baseline.json \
		results/health_smoke.jsonl

# Regenerate the checked-in health baseline from the same seeded campaign
# (run after a deliberate behavior change, then commit the new baseline).
health-baseline:
	@mkdir -p results
	$(GO) run ./cmd/collabvr-loadgen -shards 3 -sessions 6 -slots 240 \
		-budget 300 -seed 5 -evac -health-out results/health_smoke.jsonl
	$(GO) run ./cmd/collabvr-health -write-baseline results/health_baseline.json \
		results/health_smoke.jsonl

clean:
	rm -f results/results_bench.txt results/results_bench_full.txt \
		results/smoke_spans.jsonl results/smoke_spans.txt \
		results/chaos_smoke.txt results/regret_smoke.txt \
		results/smoke_decisions.jsonl results/tournament_a.txt \
		results/tournament_b.txt results/fleet_smoke.txt \
		results/slotloop_smoke.txt \
		results/health_smoke.jsonl results/health_smoke.txt \
		test_output.txt bench_output.txt
