# Common tasks for the collabvr reproduction.

GO ?= go

.PHONY: all build vet test race bench ci figures figures-full clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/... ./cmd/...

# What CI runs (see .github/workflows/ci.yml).
ci: build vet test race

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper figure (scaled down; ~minutes).
figures:
	$(GO) run ./cmd/collabvr-bench | tee results_bench.txt

# Paper-scale parameters (much longer; run on an idle machine).
figures-full:
	$(GO) run ./cmd/collabvr-bench -full | tee results_bench_full.txt

clean:
	rm -f results_bench.txt results_bench_full.txt test_output.txt bench_output.txt
