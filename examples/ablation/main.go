// Ablation: why Algorithm 1 combines the density-greedy and value-greedy
// passes. This example replays the two adversarial instances of Section III
// — on the first, density-greedy earns 1/4 of the optimum; on the second,
// value-greedy earns 3/8 — and then measures all variants against the exact
// optimum across random instances shaped like the paper's workload.
//
// Run with:
//
//	go run ./examples/ablation
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/netem"
)

func main() {
	adversarialCases()
	randomizedStudy()
}

func adversarialCases() {
	fmt.Println("## Section III adversarial instances")

	// With alpha = beta = 0 the per-slot objective is h_n(q) = delta_n * q,
	// so a user's upgrade increment equals its delta. Choosing deltas and
	// rates reproduces the structure of the paper's two counterexamples.
	params2 := core.Params{Alpha: 0, Beta: 0, Levels: 2}

	// Case 1 (density trap): user 0's upgrade is small but dense
	// (0.25 value at 0.5 rate = 0.5 density); user 1's is large but sparse
	// (1.0 value at 2.5 rate = 0.4 density). Budget 2.5 fits only one.
	// Density-greedy takes user 0 and forfeits the big gain; value-greedy
	// finds the optimum.
	case1 := &core.SlotProblem{
		T:      1,
		Budget: 2.5,
		Users: []core.UserInput{
			{Rate: []float64{0, 0.5}, Delay: []float64{0, 0}, Delta: 0.25, Cap: 100},
			{Rate: []float64{0, 2.5}, Delay: []float64{0, 0}, Delta: 1.0, Cap: 100},
		},
	}
	report(params2, "case 1 (density trap)", case1)

	// Case 2 (value trap): four cheap upgrades (value 0.5 at rate 0.5 each,
	// density 1.0) against one big upgrade (value 1.0 at rate 2.0, density
	// 0.5) under budget 2. Value-greedy grabs the big one and exhausts the
	// budget (gain 1.0); density-greedy takes the four cheap ones (gain
	// 2.0), which is optimal.
	case2 := &core.SlotProblem{
		T:      1,
		Budget: 2,
		Users: []core.UserInput{
			{Rate: []float64{0, 0.5}, Delay: []float64{0, 0}, Delta: 0.5, Cap: 100},
			{Rate: []float64{0, 0.5}, Delay: []float64{0, 0}, Delta: 0.5, Cap: 100},
			{Rate: []float64{0, 0.5}, Delay: []float64{0, 0}, Delta: 0.5, Cap: 100},
			{Rate: []float64{0, 0.5}, Delay: []float64{0, 0}, Delta: 0.5, Cap: 100},
			{Rate: []float64{0, 2.0}, Delay: []float64{0, 0}, Delta: 1.0, Cap: 100},
		},
	}
	report(params2, "case 2 (value trap)", case2)
	fmt.Println()
}

func report(params core.Params, name string, p *core.SlotProblem) {
	d := core.DensityOnly{}.Allocate(params, p)
	v := core.ValueOnly{}.Allocate(params, p)
	dv := core.DVGreedy{}.Allocate(params, p)
	opt := core.Optimal{}.Allocate(params, p)
	fmt.Printf("%-22s density=%.2f value=%.2f combined=%.2f optimal=%.2f\n",
		name, d.Value, v.Value, dv.Value, opt.Value)
}

func randomizedStudy() {
	fmt.Println("## Randomized study: mean fraction of the per-slot optimum")
	params := core.DefaultSimParams()
	rng := rand.New(rand.NewSource(7))
	ladder := []float64{8, 13, 21, 34, 55, 89}

	var dSum, vSum, dvSum float64
	const trials = 300
	for trial := 0; trial < trials; trial++ {
		n := 3 + rng.Intn(3)
		users := make([]core.UserInput, n)
		for i := range users {
			scale := 0.6 + rng.Float64()
			cap_ := 20 + rng.Float64()*80
			rates := make([]float64, len(ladder))
			for q, r := range ladder {
				rates[q] = r * scale
			}
			users[i] = core.UserInput{
				Rate:  rates,
				Delay: netem.DelayTableMs(rates, cap_, 1000.0/60),
				Delta: 0.8 + rng.Float64()*0.2,
				MeanQ: rng.Float64() * 6,
				Cap:   cap_,
			}
		}
		p := &core.SlotProblem{
			T:      1 + rng.Intn(1000),
			Budget: 36 * float64(n) * (0.5 + rng.Float64()),
			Users:  users,
		}
		opt := core.Optimal{}.Allocate(params, p)
		if opt.Value <= 0 {
			dSum++
			vSum++
			dvSum++
			continue
		}
		dSum += core.DensityOnly{}.Allocate(params, p).Value / opt.Value
		vSum += core.ValueOnly{}.Allocate(params, p).Value / opt.Value
		dvSum += core.DVGreedy{}.Allocate(params, p).Value / opt.Value
	}
	fmt.Printf("density-greedy: %.4f\n", dSum/trials)
	fmt.Printf("value-greedy:   %.4f\n", vSum/trials)
	fmt.Printf("combined (Alg 1): %.4f  (Theorem 1 guarantees >= 0.5)\n", dvSum/trials)
}
