// Tracestudy: a compact version of the paper's Section IV study. It runs
// the trace-based simulator over broadband+LTE network traces and synthetic
// 6-DoF motion for ten users, compares Algorithm 1 against Firefly and
// modified PAVQ (plus the density-only and value-only ablations), and
// prints a per-component breakdown of where the QoE comes from.
//
// Run with:
//
//	go run ./examples/tracestudy
package main

import (
	"fmt"
	"os"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracestudy:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := sim.DefaultConfig(10)
	cfg.Seconds = 30
	cfg.Runs = 8
	cfg.IncludeOptimal = false

	algorithms := []sim.AlgorithmFactory{
		{Name: "proposed", New: func() core.Allocator { return core.DVGreedy{} }},
		{Name: "dp-optimal", New: func() core.Allocator { return core.DPOptimal{} }},
		{Name: "density", New: func() core.Allocator { return core.DensityOnly{} }},
		{Name: "value", New: func() core.Allocator { return core.ValueOnly{} }},
		{Name: "firefly", New: func() core.Allocator { return baseline.NewFirefly() }},
		{Name: "pavq", New: func() core.Allocator { return baseline.NewPAVQ() }},
		{Name: "uniform", New: func() core.Allocator { return baseline.NewUniform() }},
	}

	fmt.Printf("trace study: %d users, %gs, %d trace draws (half broadband, half LTE)\n\n",
		cfg.Users, cfg.Seconds, cfg.Runs)
	results, err := sim.Run(cfg, algorithms)
	if err != nil {
		return err
	}

	fmt.Printf("%-10s %10s | %10s %12s %10s   QoE = quality - %.2f*delay - %.1f*variance\n",
		"algorithm", "QoE", "quality", "delay(ms)", "variance", cfg.Params.Alpha, cfg.Params.Beta)
	for _, r := range results {
		qoe, quality, delay, variance := r.CDFs()
		fmt.Printf("%-10s %10.4f | %10.4f %12.4f %10.4f\n",
			r.Name, qoe.Mean(), quality.Mean(), delay.Mean(), variance.Mean())
	}

	// Tail behaviour: the unlucky users (10th percentile of QoE) are where
	// variance-aware allocation pays off most.
	fmt.Printf("\n10th-percentile (worst users) QoE:\n")
	for _, r := range results {
		fmt.Printf("  %-10s %8.4f\n", r.Name, metrics.NewCDF(r.QoE).Quantile(0.1))
	}
	return nil
}
