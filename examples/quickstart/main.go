// Quickstart: allocate quality levels for a handful of collaborative VR
// users with Algorithm 1 (the Density/Value-Greedy allocator) and compare
// the result with the exact per-slot optimum.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/netem"
)

func main() {
	// QoE weights of the paper's simulation: alpha (delay), beta
	// (variance), and a six-level quality ladder.
	params := core.DefaultSimParams()

	// Three users with heterogeneous links. Rate[q-1] is the rate needed to
	// stream user n's predicted tiles at quality q; here a convex ladder
	// scaled per user. Delay is the expected delivery delay per level (the
	// M/M/1 model of eq. (13), in milliseconds for a 60 FPS slot).
	ladder := []float64{8, 13, 21, 34, 55, 89}
	mkUser := func(scale, cap_, delta, meanQ float64) core.UserInput {
		rates := make([]float64, len(ladder))
		for i, r := range ladder {
			rates[i] = r * scale
		}
		return core.UserInput{
			Rate:  rates,
			Delay: netem.DelayTableMs(rates, cap_, 1000.0/60),
			Delta: delta, // motion-prediction success probability
			MeanQ: meanQ, // running mean of viewed quality
			Cap:   cap_,  // B_n(t)
		}
	}

	problem := &core.SlotProblem{
		T:      120, // two seconds into the session
		Budget: 108, // B(t): 36 Mbps per user
		Users: []core.UserInput{
			mkUser(1.0, 80, 0.97, 3.8), // strong link, stable history
			mkUser(1.1, 45, 0.92, 2.9), // mid link
			mkUser(0.9, 25, 0.85, 2.1), // weak link, noisy prediction
		},
	}
	if err := problem.Validate(params); err != nil {
		panic(err)
	}

	alloc := core.DVGreedy{}.Allocate(params, problem)
	opt := core.Optimal{}.Allocate(params, problem)

	fmt.Println("per-slot quality allocation (Algorithm 1 vs exact optimum)")
	for n := range problem.Users {
		fmt.Printf("  user %d: level %d (rate %.1f Mbps)   optimal: level %d\n",
			n, alloc.Levels[n], problem.Users[n].Rate[alloc.Levels[n]-1], opt.Levels[n])
	}
	fmt.Printf("objective: %.4f (DV-greedy) vs %.4f (optimal), ratio %.3f\n",
		alloc.Value, opt.Value, alloc.Value/opt.Value)
	fmt.Printf("total rate: %.1f of %.1f Mbps budget\n", alloc.Rate, problem.Budget)
}
