// Lossy: the Discussion-section loss-handling extension in action. The same
// two-user live session runs twice over a link that drops 20% of RTP
// packets — once with plain fire-and-forget delivery (the paper's deployed
// configuration, where "it is inevitable to have packet loss during the
// transmission") and once with the NACK-driven retransmission extension —
// and prints the coverage and QoE difference.
//
// Run with:
//
//	go run ./examples/lossy
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/testbed"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lossy:", err)
		os.Exit(1)
	}
}

func run() error {
	base := testbed.Config{
		Setup: testbed.Setup{
			Name:             "lossy-2users",
			Users:            2,
			Routers:          1,
			ServerBudgetMbps: 200,
			Throttles:        []float64{50, 60},
			JitterFrac:       0.05,
			LossProb:         0.20,
		},
		Slots:        400,
		SlotDuration: 6 * time.Millisecond,
		Seed:         7,
		Params:       core.DefaultSystemParams(),
	}

	fmt.Println("streaming through a 20% lossy link...")

	plain, err := testbed.Run(base, "plain-rtp", core.DVGreedy{})
	if err != nil {
		return err
	}

	withNack := base
	withNack.LossHandling = true
	recovered, err := testbed.Run(withNack, "rtp+nack", core.DVGreedy{})
	if err != nil {
		return err
	}

	fmt.Printf("\n%-12s %10s %10s %10s %8s\n", "mode", "QoE", "coverage", "variance", "FPS")
	for _, r := range []*struct {
		name string
		res  *testbed.Result
	}{
		{"plain RTP", plain},
		{"RTP + NACK", recovered},
	} {
		a := r.res.Aggregate
		fmt.Printf("%-12s %10.4f %10.4f %10.4f %8.1f\n",
			r.name, a.QoE, a.Coverage, a.Variance, r.res.FPS)
	}

	var retransmits int
	for _, st := range recovered.ServerStats {
		retransmits += st.Retransmits
	}
	fmt.Printf("\nNACK-driven retransmissions: %d tiles\n", retransmits)
	fmt.Printf("coverage recovered: %+.1f%%\n",
		(recovered.Aggregate.Coverage-plain.Aggregate.Coverage)*100)
	return nil
}
