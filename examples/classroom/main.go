// Classroom: the paper's motivating scenario — a VR classroom where a
// teacher and several students share a scene through an edge server — run
// live over loopback sockets. One edge server allocates quality with
// Algorithm 1 every slot; five emulated devices (one teacher, four
// students) replay motion traces, stream tiles over the RTP-like transport,
// and report their QoE at the end of the lesson.
//
// Run with:
//
//	go run ./examples/classroom
package main

import (
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/motion"
	"repro/internal/netem"
	"repro/internal/server"
	"repro/internal/transport"
)

const (
	users        = 5 // teacher + 4 students
	slots        = 600
	slotDuration = 8 * time.Millisecond
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "classroom:", err)
		os.Exit(1)
	}
}

func run() error {
	// Per-user throttles emulating heterogeneous wireless links.
	now := time.Now()
	throttles := []float64{60, 50, 45, 40, 55}
	buckets := make([]*netem.TokenBucket, users)
	for i := range buckets {
		buckets[i] = netem.NewTokenBucket(throttles[i], 4<<10, now)
	}

	cfg := server.DefaultConfig(core.DVGreedy{})
	cfg.SlotDuration = slotDuration
	cfg.BudgetMbps = 36 * users
	cfg.TotalSlots = slots
	cfg.ShaperFor = func(user uint32) transport.Shaper {
		return shaper{buckets[int(user)%users]}
	}
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("classroom: server on %s, %d slots at %v\n",
		srv.ControlAddr(), slots, slotDuration)

	scenes := motion.Scenes()
	results := make([]*client.Result, users)
	errs := make([]error, users)
	var wg sync.WaitGroup
	for u := 0; u < users; u++ {
		trace := motion.Generate(scenes[0], u, slots+64, 1/slotDuration.Seconds(), 42)
		ccfg := client.DefaultConfig(uint32(u), srv.ControlAddr(), trace)
		ccfg.SlotDuration = slotDuration
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			results[u], errs[u] = client.Run(ccfg)
		}(u)
	}

	<-srv.Done()
	srv.Close()
	wg.Wait()

	fmt.Printf("\n%-10s %10s %10s %12s %10s %8s\n",
		"user", "QoE", "quality", "delay(ms)", "variance", "FPS")
	for u := 0; u < users; u++ {
		if errs[u] != nil {
			return fmt.Errorf("user %d: %w", u, errs[u])
		}
		r := results[u].Report
		role := "student"
		if u == 0 {
			role = "teacher"
		}
		fmt.Printf("%-10s %10.4f %10.4f %12.4f %10.4f %8.1f\n",
			fmt.Sprintf("%s-%d", role, u), r.QoE, r.Quality, r.Delay, r.Variance,
			r.FPSFrac/slotDuration.Seconds())
	}
	return nil
}

// shaper adapts a token bucket to the transport.Shaper interface.
type shaper struct{ b *netem.TokenBucket }

func (s shaper) Admit(n int, now time.Time) time.Duration { return s.b.Admit(n, now) }
func (s shaper) Drop() bool                               { return false }
