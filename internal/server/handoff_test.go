package server

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// TestHandoffTokenEpochZeroIdentity pins the byte-identity guarantee the
// replicated coordinator's default mode rests on: at epoch 0 (the
// single-replica cluster's forever-term) the token formula reduces exactly
// to the pre-replication (user, slot, shard) splitmix64, so golden fleet
// campaigns see unchanged tokens.
func TestHandoffTokenEpochZeroIdentity(t *testing.T) {
	legacy := func(user uint32, slot uint32, shard int) uint64 {
		z := uint64(user)<<32 | uint64(slot)
		z ^= (uint64(shard) + 1) * 0x9E3779B97F4A7C15
		z ^= z >> 30
		z *= 0xBF58476D1CE4E5B9
		z ^= z >> 27
		z *= 0x94D049BB133111EB
		z ^= z >> 31
		if z == 0 {
			z = 1
		}
		return z
	}
	for _, tc := range []struct {
		user, slot uint32
		shard      int
	}{{1, 0, 0}, {42, 300, 3}, {0xFFFFFFFF, 0xFFFFFFFF, 15}, {7, 12345, 1}} {
		if got, want := HandoffToken(tc.user, tc.slot, tc.shard, 0), legacy(tc.user, tc.slot, tc.shard); got != want {
			t.Fatalf("HandoffToken(%d,%d,%d,epoch=0) = %016x, legacy = %016x — epoch mixing is not an identity at 0",
				tc.user, tc.slot, tc.shard, got, want)
		}
	}
	// And a non-zero epoch must actually change the token (fencing bites).
	if HandoffToken(42, 300, 3, 0) == HandoffToken(42, 300, 3, 2) {
		t.Fatal("epoch does not perturb the token — stale flips would not be fenced")
	}
}

// TestAdoptSessionEpochFencing: a shard that has witnessed coordinator
// term E rejects handoff state stamped under any term < E (the deposed
// leader's replay) and any state whose token does not reproduce from its
// own fields, counting both in collabvr_fleet_coord_fenced_total.
func TestAdoptSessionEpochFencing(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := DefaultConfig(core.NewWarmAllocator())
	cfg.Metrics = reg
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	fenced := reg.Counter("collabvr_fleet_coord_fenced_total")
	mk := func(epoch uint64) *HandoffState {
		return &HandoffState{
			User: 5, Slot: 10, FromShard: 2, Epoch: epoch,
			Token: HandoffToken(5, 10, 2, epoch),
		}
	}

	srv.SetCoordEpoch(3)
	if got := srv.CoordEpoch(); got != 3 {
		t.Fatalf("CoordEpoch = %d, want 3", got)
	}
	srv.SetCoordEpoch(1) // monotonic: a late broadcast cannot lower the fence
	if got := srv.CoordEpoch(); got != 3 {
		t.Fatalf("CoordEpoch lowered to %d by a stale broadcast", got)
	}

	// Deposed leader's state (term 2 < witnessed 3): fenced.
	if err := srv.AdoptSession(mk(2)); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale-epoch adopt: err = %v, want ErrStaleEpoch", err)
	}
	if fenced.Value() != 1 {
		t.Fatalf("fenced counter = %d, want 1", fenced.Value())
	}

	// Correct epoch but a token minted under the old term: fenced too.
	bad := mk(3)
	bad.Token = HandoffToken(5, 10, 2, 2)
	if err := srv.AdoptSession(bad); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("token-mismatch adopt: err = %v, want ErrStaleEpoch", err)
	}
	if fenced.Value() != 2 {
		t.Fatalf("fenced counter = %d, want 2", fenced.Value())
	}

	// The new leader's state (term 4) adopts and advances the fence.
	if err := srv.AdoptSession(mk(4)); err != nil {
		t.Fatalf("fresh-epoch adopt: %v", err)
	}
	if got := srv.CoordEpoch(); got != 4 {
		t.Fatalf("CoordEpoch after adopt = %d, want 4", got)
	}
	if fenced.Value() != 2 {
		t.Fatalf("fenced counter moved on a valid adopt: %d", fenced.Value())
	}

	// Rollback surface: the pending state can be dropped exactly once.
	if !srv.DropAdopted(5) {
		t.Fatal("DropAdopted found no pending state")
	}
	if srv.DropAdopted(5) {
		t.Fatal("DropAdopted dropped twice")
	}
}

// TestCancelExportRollsBackHandoff: a session whose export is cancelled
// (failed migration) keeps streaming and later retires as a normal
// departure — the handoff-out counter must not move.
func TestCancelExportRollsBackHandoff(t *testing.T) {
	baseline := obs.LeakSnapshot()
	reg := obs.NewRegistry()
	cfg := DefaultConfig(core.NewWarmAllocator())
	cfg.SlotDuration = 2 * time.Millisecond
	cfg.Metrics = reg
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	const user = 77
	fc, err := dialQuiet(srv, user)
	if err != nil {
		t.Fatal(err)
	}
	if !srv.WaitSession(user, time.Second) {
		t.Fatal("session never admitted")
	}

	st, err := srv.ExportSession(user)
	if err != nil {
		t.Fatal(err)
	}
	if st.Token == 0 || st.Epoch != 0 {
		t.Fatalf("export token/epoch = %016x/%d, want non-zero token at epoch 0", st.Token, st.Epoch)
	}
	// The migration fails downstream (adopt refused / flip rejected):
	// roll the export back.
	if err := srv.CancelExport(user); err != nil {
		t.Fatal(err)
	}

	// The session departs normally afterwards.
	fc.close()
	deadline := time.Now().Add(2 * time.Second)
	for srv.SessionCount() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := srv.SessionCount(); n != 0 {
		t.Fatalf("%d sessions still admitted after close", n)
	}
	if v := reg.Counter("collabvr_server_sessions_handoff_out_total").Value(); v != 0 {
		t.Fatalf("cancelled export still retired as a handoff (handoff_out=%d)", v)
	}
	if v := reg.Counter("collabvr_server_sessions_left_total").Value(); v != 1 {
		t.Fatalf("sessions_left = %d, want 1 (normal departure)", v)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	obs.AssertNoLeaks(t, baseline)
}
