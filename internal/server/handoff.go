package server

import (
	"errors"
	"fmt"
	"time"
)

// HandoffState is the portable snapshot of one session's server-side
// streaming state: everything the adopting shard needs to continue the
// session's QoE accounting and estimators instead of starting cold. The
// in-process fleet coordinator hands the struct over directly; all fields
// are plain values so an out-of-process coordinator could gob-ship it.
type HandoffState struct {
	User uint32
	// Token authenticates the handoff: derived from (user, slot, shard,
	// epoch) at export, it names the exact handoff event in logs on both
	// sides and fences out stale leaders — a deposed coordinator's epoch
	// no longer reproduces the token the adopting shard expects.
	Token uint64
	// FromShard is the exporting shard's ID.
	FromShard int
	// Slot is the exporting shard's slot clock at export time.
	Slot uint32
	// Epoch is the coordinator term the migration was decided under. A
	// shard that has witnessed a newer term rejects the adoption (see
	// AdoptSession), so a deposed leader cannot create split-brain
	// double-ownership. 0 in single-replica mode — fencing disabled.
	Epoch uint64

	// Streaming QoE state (drives MeanQ and delta of h_n).
	T          int
	SumViewedQ float64
	Covered    int

	// Throughput estimator state: the EMA value and the goodput max-filter
	// window feeding the capacity estimate.
	EstMbps    float64
	EMAPrimed  bool
	CapSamples []float64

	// Delay-regression samples (rate, delay) pairs.
	DelayRates []float64
	DelayMs    []float64
}

// HandoffToken derives the handoff event's identity with a splitmix64-style
// finalizer over (user, slot, shard, epoch) — deterministic per event,
// unique across shards and coordinator terms. The epoch mixes in as
// epoch×odd-constant, an identity at epoch 0, so single-replica
// deployments (term pinned to 0) produce bit-for-bit the tokens the
// pre-replication fleet did.
func HandoffToken(user uint32, slot uint32, shard int, epoch uint64) uint64 {
	z := uint64(user)<<32 | uint64(slot)
	z ^= (uint64(shard) + 1) * 0x9E3779B97F4A7C15
	z ^= epoch * 0xD6E8FEB86659FD93
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 1 // a zero token means "no handoff"
	}
	return z
}

// ExportSession snapshots a session's portable state for migration and
// marks it handed off; the session keeps streaming until ReleaseSession
// closes its control connection. The split lets the coordinator register
// the state on the adopting shard (AdoptSession) and repoint the client's
// Redirect hook before the source triggers the redial — otherwise the
// client's fresh Hello could race the adoption and resume cold. The
// session retires as a handoff — the shared SLO window and breaker state
// stay alive for the adopting shard.
func (s *Server) ExportSession(user uint32) (*HandoffState, error) {
	s.mu.Lock()
	sess := s.sessions[user]
	slot := s.slot
	epoch := s.coordEpoch
	s.mu.Unlock()
	if sess == nil {
		return nil, fmt.Errorf("server: export: no session for user %d", user)
	}

	sess.mu.Lock()
	if sess.retired {
		sess.mu.Unlock()
		return nil, fmt.Errorf("server: export: session %d already retired", user)
	}
	sess.handoff = true
	st := &HandoffState{
		User:       user,
		Token:      HandoffToken(user, slot, s.cfg.ShardID, epoch),
		FromShard:  s.cfg.ShardID,
		Slot:       slot,
		Epoch:      epoch,
		T:          sess.t,
		SumViewedQ: sess.sumViewedQ,
		Covered:    sess.covered,
		EstMbps:    sess.ema.Value(),
		EMAPrimed:  sess.ema.Primed(),
		CapSamples: append([]float64(nil), sess.capSamples...),
		DelayRates: append([]float64(nil), sess.delayRates...),
		DelayMs:    append([]float64(nil), sess.delayMs...),
	}
	sess.mu.Unlock()

	s.cfg.Logf("server: exporting user %d at slot %d (token %016x)", user, slot, st.Token)
	return st, nil
}

// ReleaseSession completes an export: closing the control connection is the
// migration signal — the client's control reader redials (via its Redirect
// hook, which by now points at the adopting shard) and the control loop
// here exits into retireSession, which sees the handoff flag.
func (s *Server) ReleaseSession(user uint32) error {
	s.mu.Lock()
	sess := s.sessions[user]
	s.mu.Unlock()
	if sess == nil {
		return fmt.Errorf("server: release: no session for user %d", user)
	}
	sess.ctrl.Close()
	sess.closeSend()
	return nil
}

// AdoptSession registers handed-off session state; the next Hello for its
// user (the migrating client's redial) consumes it, resumes the estimators
// and QoE history, and answers Welcome{Resumed: true}.
//
// The adoption is epoch-fenced: state stamped by a coordinator term older
// than the newest this shard has witnessed, or carrying a token that does
// not reproduce from its own (user, slot, shard, epoch), is the replay of
// a deposed leader — it is rejected and counted in
// collabvr_fleet_coord_fenced_total rather than creating a second owner
// for a session the new leader has already re-placed.
func (s *Server) AdoptSession(st *HandoffState) error {
	if st == nil || st.Token == 0 {
		return errors.New("server: adopt: missing handoff state or token")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("server: adopt: server closed")
	}
	if s.draining {
		return errors.New("server: adopt: server draining")
	}
	if st.Epoch < s.coordEpoch {
		s.metrics.coordFenced.Inc()
		return fmt.Errorf("server: adopt: %w: state epoch %d < shard epoch %d",
			ErrStaleEpoch, st.Epoch, s.coordEpoch)
	}
	if st.Token != HandoffToken(st.User, st.Slot, st.FromShard, st.Epoch) {
		s.metrics.coordFenced.Inc()
		return fmt.Errorf("server: adopt: %w: token %016x does not match its handoff event",
			ErrStaleEpoch, st.Token)
	}
	if st.Epoch > s.coordEpoch {
		s.coordEpoch = st.Epoch // adoption itself proves the newer term
	}
	if s.adopted == nil {
		s.adopted = make(map[uint32]*HandoffState)
	}
	s.adopted[st.User] = st
	return nil
}

// ErrStaleEpoch marks an adoption fenced out because its handoff state was
// stamped under a deposed coordinator leader's term.
var ErrStaleEpoch = errors.New("stale coordinator epoch")

// SetCoordEpoch advances the shard's witnessed coordinator term. It is
// monotonic — a lower value is ignored — so a delayed broadcast from an
// old leader cannot lower the fence.
func (s *Server) SetCoordEpoch(epoch uint64) {
	s.mu.Lock()
	if epoch > s.coordEpoch {
		s.coordEpoch = epoch
	}
	s.mu.Unlock()
}

// CoordEpoch returns the highest coordinator term the shard has witnessed.
func (s *Server) CoordEpoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.coordEpoch
}

// CancelExport rolls back an ExportSession whose migration fell through
// (the adopting shard refused the state, or the ownership flip could not
// commit): the handoff flag clears, so the session keeps streaming on this
// shard and will retire as a normal departure, not a handoff.
func (s *Server) CancelExport(user uint32) error {
	s.mu.Lock()
	sess := s.sessions[user]
	s.mu.Unlock()
	if sess == nil {
		return fmt.Errorf("server: cancel export: no session for user %d", user)
	}
	sess.mu.Lock()
	sess.handoff = false
	sess.mu.Unlock()
	return nil
}

// DropAdopted discards handed-off state registered for the user before any
// redial consumed it — the undo of AdoptSession when a later step of the
// migration fails. It reports whether state was pending.
func (s *Server) DropAdopted(user uint32) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.adopted[user]; !ok {
		return false
	}
	delete(s.adopted, user)
	return true
}

// resume seeds a fresh session from handed-off state.
func (sess *session) resume(st *HandoffState) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	sess.t = st.T
	sess.sumViewedQ = st.SumViewedQ
	sess.covered = st.Covered
	if st.EMAPrimed && st.EstMbps > 0 {
		// The EMA's first Update adopts the sample directly, so the
		// estimate continues exactly where the exporting shard left it.
		sess.ema.Update(st.EstMbps)
	}
	n := len(st.CapSamples)
	if n > capWindow {
		n = capWindow
	}
	sess.capSamples = append(sess.capSamples[:0], st.CapSamples[:n]...)
	sess.capIdx = 0
	nd := len(st.DelayRates)
	if len(st.DelayMs) < nd {
		nd = len(st.DelayMs)
	}
	if nd > maxDelaySamples {
		nd = maxDelaySamples
	}
	sess.delayRates = append([]float64(nil), st.DelayRates[:nd]...)
	sess.delayMs = append([]float64(nil), st.DelayMs[:nd]...)
}

// SetBudget moves the server's live bandwidth budget B(t); a fleet
// coordinator calls it on every rebalance. Non-positive values are ignored
// (a shard is killed by migration, not by a zero budget).
func (s *Server) SetBudget(mbps float64) {
	if mbps <= 0 {
		return
	}
	s.mu.Lock()
	s.budget = mbps
	s.mu.Unlock()
}

// Budget returns the live value of B(t).
func (s *Server) Budget() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.budget
}

// SessionCount returns the number of admitted sessions.
func (s *Server) SessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// ShardID returns the configured shard identity.
func (s *Server) ShardID() int { return s.cfg.ShardID }

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Sessions returns the IDs of the admitted sessions in ascending order —
// the deterministic iteration a fleet coordinator migrates in.
func (s *Server) Sessions() []uint32 {
	s.mu.Lock()
	out := make([]uint32, 0, len(s.sessions))
	for id := range s.sessions {
		out = append(out, id)
	}
	s.mu.Unlock()
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// WaitSession blocks until the user has an admitted, unretired session or
// the timeout elapses; fleet migration uses it to confirm the client's
// redial landed on the adopting shard.
func (s *Server) WaitSession(user uint32, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		s.mu.Lock()
		_, ok := s.sessions[user]
		s.mu.Unlock()
		if ok {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
}
