package server

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// poolShard is the index-chunk size pool participants claim per cursor
// bump — the same sharding granularity knapsack.SolveBatch uses: big
// enough to amortize the atomic, small enough that a few expensive
// sessions do not serialize the slot behind one worker.
const poolShard = 8

// slotPool runs the slot pipeline's per-session phases (predict/estimate/
// admit before the merged solve, fetch/dispatch after it) across a set of
// persistent workers. The pool is built once per server: workers park on a
// run channel between slots instead of being respawned 60 times a second.
//
// forEach is not reentrant — the slot loop is its only caller, and slots
// are strictly sequential, so a single reusable run descriptor suffices
// and the per-slot cost of the parallel path is zero allocations.
type slotPool struct {
	workers int
	runCh   chan *poolRun
	stop    chan struct{}
	wg      sync.WaitGroup
	once    sync.Once
	run     poolRun
}

// poolRun is one forEach invocation: an index space [0, n) consumed in
// poolShard-sized chunks through an atomic cursor by every participant
// (the caller claims work too, so a 1-worker pool degenerates to the
// serial loop with no handoff latency).
type poolRun struct {
	n      int
	fn     func(int)
	cursor atomic.Int64
	wg     sync.WaitGroup

	mu     sync.Mutex
	panicV any
	stack  []byte
}

// poolPanic carries a panic captured inside a pool worker back to the
// forEach caller, where it is re-thrown so the slot loop's panic isolation
// (safeRunSlot) costs the slot instead of the server. The original stack
// rides along because the re-panic site says nothing about the fault.
type poolPanic struct {
	value any
	stack []byte
}

func (p poolPanic) String() string {
	return fmt.Sprintf("%v (from slot pool worker)\n%s", p.value, p.stack)
}

// newSlotPool returns a pool with the given total parallelism (caller
// included). workers <= 1 builds a poolless pool: forEach runs inline.
func newSlotPool(workers int) *slotPool {
	if workers < 1 {
		workers = 1
	}
	p := &slotPool{
		workers: workers,
		runCh:   make(chan *poolRun, workers),
		stop:    make(chan struct{}),
	}
	for i := 1; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *slotPool) worker() {
	defer p.wg.Done()
	for {
		select {
		case <-p.stop:
			return
		case run := <-p.runCh:
			run.work()
		}
	}
}

// work claims chunks until the cursor passes n. A panic in fn aborts this
// participant's remaining share and is recorded (first one wins) for the
// caller to re-throw; other participants keep draining their chunks, which
// is harmless because the whole slot is abandoned on rethrow anyway.
func (r *poolRun) work() {
	defer r.wg.Done()
	defer func() {
		if v := recover(); v != nil {
			r.mu.Lock()
			if r.panicV == nil {
				r.panicV = v
				buf := make([]byte, 64<<10)
				r.stack = buf[:runtime.Stack(buf, false)]
			}
			r.mu.Unlock()
		}
	}()
	for {
		lo := int(r.cursor.Add(poolShard)) - poolShard
		if lo >= r.n {
			return
		}
		hi := lo + poolShard
		if hi > r.n {
			hi = r.n
		}
		for i := lo; i < hi; i++ {
			r.fn(i)
		}
	}
}

// forEach runs fn(i) for every i in [0, n), sharded across the pool, and
// returns when all indices completed. Serial pools (and jobs too small to
// split) run inline, where a panic propagates natively; parallel runs
// re-throw the first captured worker panic after the barrier.
func (p *slotPool) forEach(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	parts := (n + poolShard - 1) / poolShard
	if p != nil && parts > p.workers {
		parts = p.workers
	}
	if p == nil || p.workers <= 1 || parts <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	run := &p.run
	run.n, run.fn = n, fn
	run.cursor.Store(0)
	run.panicV, run.stack = nil, nil
	run.wg.Add(parts)
	for i := 1; i < parts; i++ {
		p.runCh <- run
	}
	run.work() // the caller is participant 0
	run.wg.Wait()
	run.fn = nil
	if run.panicV != nil {
		panic(poolPanic{value: run.panicV, stack: run.stack})
	}
}

// Close stops the workers and waits for them to exit; idempotent.
func (p *slotPool) Close() {
	if p == nil {
		return
	}
	p.once.Do(func() { close(p.stop) })
	p.wg.Wait()
}
