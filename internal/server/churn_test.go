package server

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/transport"
)

func sessionCount(s *Server) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// TestServerRetiresDepartedSessions is the churn contract: a session whose
// control connection drops must leave the slot loop's session map, so a
// long-lived server under arrival/departure churn does not leak sessions.
func TestServerRetiresDepartedSessions(t *testing.T) {
	base := obs.LeakSnapshot()
	cfg := DefaultConfig(core.DVGreedy{})
	cfg.SlotDuration = 5 * time.Millisecond
	cfg.Metrics = obs.NewRegistry()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	f1 := dialFake(t, srv, 1)
	f2 := dialFake(t, srv, 2)
	defer f2.close()
	waitFor(t, "both sessions admitted", func() bool { return sessionCount(srv) == 2 })

	f1.close()
	waitFor(t, "departed session retired", func() bool { return sessionCount(srv) == 1 })
	if got := cfg.Metrics.Counter("collabvr_server_sessions_left_total").Value(); got != 1 {
		t.Errorf("sessions_left_total = %d, want 1", got)
	}
	if got := cfg.Metrics.Gauge("collabvr_server_sessions_active").Value(); got != 1 {
		t.Errorf("sessions_active = %v, want 1", got)
	}
	f2.close()
	srv.Close()
	obs.AssertNoLeaks(t, base)
}

// TestServerReconnectSupersedes: a second Hello with the same user ID takes
// over the session; the stale connection is closed rather than leaking.
func TestServerReconnectSupersedes(t *testing.T) {
	base := obs.LeakSnapshot()
	cfg := DefaultConfig(core.DVGreedy{})
	cfg.SlotDuration = 5 * time.Millisecond
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	f1 := dialFake(t, srv, 7)
	defer f1.close()
	waitFor(t, "first session", func() bool { return sessionCount(srv) == 1 })

	f2 := dialFake(t, srv, 7)
	defer f2.close()
	// The old control connection must be closed by the server.
	f1.ctrl.SetDeadline(time.Now().Add(2 * time.Second))
	for {
		if _, err := f1.ctrl.Recv(); err != nil {
			break
		}
	}
	if n := sessionCount(srv); n != 1 {
		t.Errorf("session count after reconnect = %d, want 1", n)
	}
	// The superseded session's goroutines must be gone once the server
	// shuts down — supersede-then-close is the classic leak shape.
	f2.close()
	srv.Close()
	obs.AssertNoLeaks(t, base)
}

// TestServerMaxSessionsBackpressure: beyond MaxSessions the accept path
// closes the connection without a Welcome, and admitted sessions are
// unaffected.
func TestServerMaxSessionsBackpressure(t *testing.T) {
	cfg := DefaultConfig(core.DVGreedy{})
	cfg.SlotDuration = 5 * time.Millisecond
	cfg.MaxSessions = 1
	cfg.Metrics = obs.NewRegistry()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	f1 := dialFake(t, srv, 1)
	defer f1.close()
	waitFor(t, "first session admitted", func() bool { return sessionCount(srv) == 1 })
	f1.ctrl.SetDeadline(time.Now().Add(2 * time.Second))
	if msg, err := f1.ctrl.Recv(); err != nil {
		t.Fatalf("admitted client should get a Welcome: %v", err)
	} else if w, ok := msg.(transport.Welcome); !ok || w.User != 1 {
		t.Fatalf("admitted client got %#v, want Welcome{User:1}", msg)
	}

	f2 := dialFake(t, srv, 2)
	defer f2.close()
	f2.ctrl.SetDeadline(time.Now().Add(2 * time.Second))
	if msg, err := f2.ctrl.Recv(); err == nil {
		t.Fatalf("rejected client should see its connection closed, got %#v", msg)
	}
	waitFor(t, "rejection counted", func() bool {
		return cfg.Metrics.Counter("collabvr_server_sessions_rejected_total").Value() == 1
	})
	if n := sessionCount(srv); n != 1 {
		t.Errorf("session count = %d, want 1", n)
	}
}
