package server

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/motion"
	"repro/internal/netem"
	"repro/internal/obs"
	"repro/internal/transport"
)

// lossyShaper adapts a netem loss model to the transport.Shaper interface,
// the injected-loss stand-in for a lossy Wi-Fi link.
type lossyShaper struct{ l *netem.LossModel }

func (s lossyShaper) Admit(int, time.Time) time.Duration { return 0 }
func (s lossyShaper) Drop() bool                         { return s.l.Drop() }

// TestServerObservabilityUnderInjectedLoss runs a real client against a
// server whose transmit path drops packets, and checks the full NACK/ACK
// accounting chain: shaper drops -> client NACKs -> server retransmits, all
// visible through the metrics registry and the flight recorder.
func TestServerObservabilityUnderInjectedLoss(t *testing.T) {
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(obs.RecorderOptions{RingSize: 64})

	cfg := DefaultConfig(core.DVGreedy{})
	cfg.SlotDuration = 5 * time.Millisecond
	cfg.BudgetMbps = 300
	cfg.RetransmitOnNack = true
	cfg.Metrics = reg
	cfg.Recorder = rec
	cfg.ShaperFor = func(user uint32) transport.Shaper {
		return lossyShaper{netem.NewLossModel(0.25, int64(user)+1)}
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ccfg := client.DefaultConfig(3, srv.ControlAddr(),
		motion.Generate(motion.Scenes()[0], 3, 400, 200, 7))
	ccfg.SlotDuration = cfg.SlotDuration
	ccfg.Slots = 150
	ccfg.NackLost = true
	res, err := client.Run(ccfg)
	if err != nil {
		t.Fatal(err)
	}

	counter := func(name string) uint64 { return reg.Counter(name).Value() }
	if counter("collabvr_server_sessions_joined_total") != 1 {
		t.Errorf("sessions joined = %d", counter("collabvr_server_sessions_joined_total"))
	}
	if counter("collabvr_server_slots_total") == 0 {
		t.Error("no slots counted")
	}
	if counter("collabvr_server_tiles_sent_total") == 0 ||
		counter("collabvr_server_tx_packets_total") == 0 {
		t.Error("no transmit activity counted")
	}
	if counter("collabvr_server_acks_total") == 0 {
		t.Error("no ACKs counted")
	}
	// The 25% loss shaper must have dropped packets, the client must have
	// noticed (incomplete tiles -> NACKs), and the server must have
	// retransmitted.
	if counter("collabvr_server_tx_dropped_total") == 0 {
		t.Error("loss shaper dropped nothing")
	}
	if res.Nacks == 0 {
		t.Fatal("client sent no NACKs under 25% loss")
	}
	// The client's last NACK may still be in flight when Run returns; give
	// the server a moment to drain before comparing counts.
	deadline := time.Now().Add(2 * time.Second)
	for counter("collabvr_server_nack_tiles_total") != uint64(res.Nacks) && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := counter("collabvr_server_nack_tiles_total"); got != uint64(res.Nacks) {
		t.Errorf("server counted %d NACKed tiles, client sent %d", got, res.Nacks)
	}
	if counter("collabvr_server_nacks_total") == 0 ||
		counter("collabvr_server_retransmit_tiles_total") == 0 {
		t.Errorf("retransmission chain not counted: nacks=%d retransmits=%d",
			counter("collabvr_server_nacks_total"),
			counter("collabvr_server_retransmit_tiles_total"))
	}

	// The retransmit counter must agree with the per-user Stats view — as
	// long as the session is still live. The server retires departed
	// sessions (dropping their Stats entry), and the client has already
	// exited, so only compare while the session is visible.
	for {
		stats := srv.Stats()
		if len(stats) == 0 {
			break // session retired; the Stats view is gone
		}
		var statRetransmits int
		for _, st := range stats {
			statRetransmits += st.Retransmits
		}
		got := counter("collabvr_server_retransmit_tiles_total")
		if got == uint64(statRetransmits) {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("retransmit counter = %d, Stats = %d", got, statRetransmits)
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Flight recorder: every record explains a dvgreedy decision.
	if rec.Records() == 0 {
		t.Fatal("recorder captured no slots")
	}
	for _, r := range rec.Recent(8) {
		if r.Algorithm != "dvgreedy" || len(r.Levels) != 1 {
			t.Errorf("record = %+v", r)
		}
		if r.Branch != "density" && r.Branch != "value" {
			t.Errorf("record branch = %q", r.Branch)
		}
		if r.BudgetMbps != cfg.BudgetMbps || r.Utilization < 0 || r.Utilization > 1+1e-9 {
			t.Errorf("record budget fields = %+v", r)
		}
	}

	// Exposition: the registry serves the counters in Prometheus text form.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"collabvr_server_slots_total",
		"collabvr_server_retransmit_tiles_total",
		"collabvr_server_cap_estimate_rel_error_bucket",
		"collabvr_server_slot_decision_ms_count",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition missing %s", want)
		}
	}
}

// TestClientMetricsUnderInjectedLoss checks the client-side counters: lost
// fragments surface as incomplete-tile drops and NACKs.
func TestClientMetricsUnderInjectedLoss(t *testing.T) {
	cfg := DefaultConfig(core.DVGreedy{})
	cfg.SlotDuration = 5 * time.Millisecond
	cfg.BudgetMbps = 300
	cfg.RetransmitOnNack = true
	cfg.ShaperFor = func(user uint32) transport.Shaper {
		return lossyShaper{netem.NewLossModel(0.25, 11)}
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	creg := obs.NewRegistry()
	ccfg := client.DefaultConfig(4, srv.ControlAddr(),
		motion.Generate(motion.Scenes()[0], 4, 400, 200, 7))
	ccfg.SlotDuration = cfg.SlotDuration
	ccfg.Slots = 150
	ccfg.NackLost = true
	ccfg.Metrics = creg
	res, err := client.Run(ccfg)
	if err != nil {
		t.Fatal(err)
	}

	counter := func(name string) uint64 { return creg.Counter(name).Value() }
	if got := counter("collabvr_client_tiles_received_total"); got != uint64(res.Tiles) {
		t.Errorf("tile counter = %d, result = %d", got, res.Tiles)
	}
	if got := counter("collabvr_client_bytes_received_total"); got != uint64(res.Bytes) {
		t.Errorf("byte counter = %d, result = %d", got, res.Bytes)
	}
	if got := counter("collabvr_client_nack_tiles_total"); got != uint64(res.Nacks) {
		t.Errorf("nack counter = %d, result = %d", got, res.Nacks)
	}
	if res.Nacks == 0 {
		t.Error("no NACKs under injected loss")
	}
	if counter("collabvr_client_rx_incomplete_tiles_dropped_total") == 0 {
		t.Error("no incomplete-tile drops counted under injected loss")
	}
	if counter("collabvr_client_frames_displayed_total")+
		counter("collabvr_client_frames_missed_total") != uint64(res.Slots) {
		t.Errorf("frame counters (%d + %d) disagree with %d slots",
			counter("collabvr_client_frames_displayed_total"),
			counter("collabvr_client_frames_missed_total"), res.Slots)
	}
}
