package server

import (
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/transport"
)

// serverMetrics bundles the server's observability instruments. All fields
// are nil-safe: built from a nil registry every instrument is nil and every
// operation is an allocation-free no-op, so the hot path pays only pointer
// checks when observability is disabled.
type serverMetrics struct {
	sessionsJoined   *obs.Counter
	sessionsLeft     *obs.Counter
	sessionsRejected *obs.Counter
	sessionsActive   *obs.Gauge
	handoffsOut      *obs.Counter
	handoffsIn       *obs.Counter
	coordFenced      *obs.Counter

	slots          *obs.Counter
	deadlineMiss   *obs.Counter
	acks           *obs.Counter
	nacks          *obs.Counter
	nackTiles      *obs.Counter
	retransmits    *obs.Counter
	retryAbandoned *obs.Counter
	tilesSent      *obs.Counter
	tilesSkipped   *obs.Counter
	breakerCapped  *obs.Counter
	panics         *obs.Counter

	txPackets *obs.Counter
	txBytes   *obs.Counter
	txDropped *obs.Counter

	cacheHits     *obs.Counter
	cacheMisses   *obs.Counter
	cacheHitRatio *obs.Gauge

	capEstRelErr   *obs.Histogram
	slotDecisionMs *obs.Histogram
	allocLevel     *obs.Histogram
	sessionSetupMs *obs.Histogram
	sessionMeanQ   *obs.Histogram
}

// newServerMetrics registers the server's instruments; a nil registry
// yields all-nil (disabled) instruments.
func newServerMetrics(r *obs.Registry) serverMetrics {
	return serverMetrics{
		sessionsJoined:   r.Counter("collabvr_server_sessions_joined_total"),
		sessionsLeft:     r.Counter("collabvr_server_sessions_left_total"),
		sessionsRejected: r.Counter("collabvr_server_sessions_rejected_total"),
		sessionsActive:   r.Gauge("collabvr_server_sessions_active"),
		handoffsOut:      r.Counter("collabvr_server_sessions_handoff_out_total"),
		handoffsIn:       r.Counter("collabvr_server_sessions_handoff_in_total"),
		coordFenced:      r.Counter("collabvr_fleet_coord_fenced_total"),
		slots:            r.Counter("collabvr_server_slots_total"),
		deadlineMiss:     r.Counter("collabvr_server_slot_deadline_miss_total"),
		acks:             r.Counter("collabvr_server_acks_total"),
		nacks:            r.Counter("collabvr_server_nacks_total"),
		nackTiles:        r.Counter("collabvr_server_nack_tiles_total"),
		retransmits:      r.Counter("collabvr_server_retransmit_tiles_total"),
		retryAbandoned:   r.Counter("collabvr_server_retry_abandoned_tiles_total"),
		tilesSent:        r.Counter("collabvr_server_tiles_sent_total"),
		tilesSkipped:     r.Counter("collabvr_server_tiles_skipped_total"),
		breakerCapped:    r.Counter("collabvr_server_breaker_capped_slots_total"),
		panics:           r.Counter("collabvr_server_panics_recovered_total"),
		txPackets:        r.Counter("collabvr_server_tx_packets_total"),
		txBytes:          r.Counter("collabvr_server_tx_bytes_total"),
		txDropped:        r.Counter("collabvr_server_tx_dropped_total"),
		cacheHits:        r.Counter("collabvr_server_tile_cache_hits_total"),
		cacheMisses:      r.Counter("collabvr_server_tile_cache_misses_total"),
		cacheHitRatio:    r.Gauge("collabvr_server_tile_cache_hit_ratio"),
		// Relative capacity-estimate error |est-measured|/measured.
		capEstRelErr: r.Histogram("collabvr_server_cap_estimate_rel_error",
			obs.ExponentialBuckets(0.01, 2, 10)),
		slotDecisionMs: r.Histogram("collabvr_server_slot_decision_ms",
			obs.DefaultLatencyBuckets()),
		allocLevel: r.Histogram("collabvr_server_alloc_level",
			obs.LinearBuckets(1, 1, 8)),
		sessionSetupMs: r.Histogram("collabvr_server_session_setup_ms",
			obs.DefaultLatencyBuckets()),
		sessionMeanQ: r.Histogram("collabvr_server_session_mean_quality",
			obs.LinearBuckets(0.5, 0.5, 12)),
	}
}

// instrumentSender attaches the shared transmit counters to a session's
// sender.
func (m *serverMetrics) instrumentSender(s *transport.Sender) {
	s.Instrument(m.txPackets, m.txBytes, m.txDropped)
}

// recordSlot feeds one slot's decision into the flight recorder. The server
// has no co-running optimal, so records carry no regret (the attributor
// falls back to the forgone-gain proxy over the counterfactual
// alternatives); the trace still explains every greedy decision (branch,
// upgrades, rejections, top-K alternatives).
func recordSlot(rec *obs.Recorder, name string, params core.Params, slot uint32,
	problem *core.SlotProblem, alloc core.Allocation, tr *core.SlotTrace, ids []uint32) {
	if !rec.Enabled() {
		return
	}
	r := obs.SlotRecord{
		Algorithm:  name,
		Slot:       int(slot),
		Levels:     alloc.Levels,
		Value:      alloc.Value,
		RateMbps:   alloc.Rate,
		BudgetMbps: problem.Budget,
		SessionIDs: ids,
		UserValues: make([]float64, len(problem.Users)),
	}
	if problem.Budget > 0 {
		r.Utilization = alloc.Rate / problem.Budget
	}
	if tr != nil {
		r.Branch = tr.Branch
		r.Upgrades = tr.Upgrades
		r.Rejections = tr.Rejections
		r.Alternatives = tr.Alternatives
	}
	for i, u := range problem.Users {
		terms := core.ObjectiveTerms(params, problem.T, u, alloc.Levels[i])
		r.UserValues[i] = terms.Quality - terms.Delay - terms.Variance
		r.QualityTerm += terms.Quality
		r.DelayTerm += terms.Delay
		r.VarianceTerm += terms.Variance
	}
	rec.Record(&r)
}

// observeDecision records slot pipeline timing and deadline misses.
func (m *serverMetrics) observeDecision(elapsed, slotDuration time.Duration) {
	m.slotDecisionMs.Observe(float64(elapsed) / float64(time.Millisecond))
	if elapsed > slotDuration {
		m.deadlineMiss.Inc()
	}
}
