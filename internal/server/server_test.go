package server

import (
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/estimate"
	"repro/internal/motion"
	"repro/internal/tiles"
	"repro/internal/transport"
	"repro/internal/vrmath"
)

// fakeClient speaks the control protocol by hand, so server behaviour can
// be tested without the full client stack.
type fakeClient struct {
	t    *testing.T
	udp  net.PacketConn
	ctrl *transport.Conn
}

func dialFake(t *testing.T, srv *Server, user uint32) *fakeClient {
	t.Helper()
	udp, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := net.Dial("tcp", srv.ControlAddr())
	if err != nil {
		udp.Close()
		t.Fatal(err)
	}
	ctrl := transport.NewConn(raw)
	if err := ctrl.Send(transport.Hello{
		User:         user,
		UDPAddr:      udp.LocalAddr().String(),
		RAMThreshold: 64,
	}); err != nil {
		t.Fatal(err)
	}
	return &fakeClient{t: t, udp: udp, ctrl: ctrl}
}

func (f *fakeClient) close() {
	f.ctrl.Close()
	f.udp.Close()
}

// drainPackets reads datagrams until the deadline and returns the decoded
// packets.
func (f *fakeClient) drainPackets(d time.Duration) []*transport.Packet {
	var out []*transport.Packet
	buf := make([]byte, 65536)
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		f.udp.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		n, _, err := f.udp.ReadFrom(buf)
		if err != nil {
			continue
		}
		p, err := transport.Decode(append([]byte(nil), buf[:n]...))
		if err == nil {
			out = append(out, p)
		}
	}
	return out
}

func newTestServer(t *testing.T, totalSlots int) *Server {
	t.Helper()
	cfg := DefaultConfig(core.DVGreedy{})
	cfg.SlotDuration = 5 * time.Millisecond
	cfg.TotalSlots = totalSlots
	cfg.BudgetMbps = 300
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestServerRequiresAllocator(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil allocator should be rejected")
	}
}

func TestServerStreamsTilesAfterPose(t *testing.T) {
	srv := newTestServer(t, 0)
	fc := dialFake(t, srv, 7)
	defer fc.close()

	pose := vrmath.Pose{Pos: vrmath.Vec3{X: 1, Z: 1}, Yaw: 30}
	if err := fc.ctrl.Send(transport.PoseUpdate{User: 7, Slot: 0, Pose: pose}); err != nil {
		t.Fatal(err)
	}
	packets := fc.drainPackets(300 * time.Millisecond)
	if len(packets) == 0 {
		t.Fatal("no tiles delivered after pose upload")
	}
	// Tiles must be addressed to the user and carry the cell of the pose
	// (prediction cold-starts from the observed pose).
	wantCell := tiles.CellFor(pose.Pos)
	for _, p := range packets {
		if p.User != 7 {
			t.Fatalf("packet addressed to user %d", p.User)
		}
		cell, _, level := p.VideoID.Unpack()
		if level < 1 || level > tiles.Levels {
			t.Fatalf("bad level %d", level)
		}
		if cell != wantCell {
			// Prediction may wander a cell over time; just require the
			// first packets to match.
			break
		}
	}
}

func TestServerIgnoresJunkHello(t *testing.T) {
	srv := newTestServer(t, 0)
	raw, err := net.Dial("tcp", srv.ControlAddr())
	if err != nil {
		t.Fatal(err)
	}
	ctrl := transport.NewConn(raw)
	defer ctrl.Close()
	// Send a non-Hello first message; the server must close the connection.
	if err := ctrl.Send(transport.PoseUpdate{User: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Recv(); err == nil {
		t.Fatal("server should close connections that skip the handshake")
	}
	if stats := srv.Stats(); len(stats) != 0 {
		t.Fatalf("no session should exist, got %d", len(stats))
	}
}

func TestServerSuppressesAckedTiles(t *testing.T) {
	srv := newTestServer(t, 0)
	fc := dialFake(t, srv, 1)
	defer fc.close()

	pose := vrmath.Pose{Pos: vrmath.Vec3{X: 2, Z: 2}}
	fc.ctrl.Send(transport.PoseUpdate{User: 1, Slot: 0, Pose: pose})
	packets := fc.drainPackets(150 * time.Millisecond)
	if len(packets) == 0 {
		t.Fatal("no tiles before ACK")
	}
	// ACK everything seen, keep reporting the same pose, and observe that
	// the ledger suppresses retransmission.
	seen := map[tiles.VideoID]bool{}
	for _, p := range packets {
		seen[p.VideoID] = true
	}
	var ids []tiles.VideoID
	for id := range seen {
		ids = append(ids, id)
	}
	fc.ctrl.Send(transport.TileACK{User: 1, Slot: packets[0].Slot, Tiles: ids, Covered: true, Displayed: true})
	time.Sleep(30 * time.Millisecond)
	fc.ctrl.Send(transport.PoseUpdate{User: 1, Slot: 1, Pose: pose})
	fc.drainPackets(150 * time.Millisecond)

	stats := srv.Stats()
	if len(stats) != 1 {
		t.Fatalf("stats = %d sessions", len(stats))
	}
	if stats[0].TilesSkipped == 0 {
		t.Errorf("repetitive-tile suppression never engaged: %+v", stats[0])
	}

	// A release notice clears the ledger so the tiles flow again.
	fc.ctrl.Send(transport.Release{User: 1, Tiles: ids})
	time.Sleep(30 * time.Millisecond)
	fc.ctrl.Send(transport.PoseUpdate{User: 1, Slot: 2, Pose: pose})
	if again := fc.drainPackets(200 * time.Millisecond); len(again) == 0 {
		t.Errorf("released tiles should be retransmitted")
	}
}

func TestServerPrefetchWarmsNeighborCells(t *testing.T) {
	cfg := DefaultConfig(core.DVGreedy{})
	cfg.SlotDuration = 5 * time.Millisecond
	cfg.PrefetchRadius = 1
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	fc := dialFake(t, srv, 2)
	defer fc.close()
	fc.ctrl.Send(transport.PoseUpdate{User: 2, Slot: 0, Pose: vrmath.Pose{Pos: vrmath.Vec3{X: 3, Z: 3}}})
	fc.drainPackets(200 * time.Millisecond)

	// The prefetcher should have populated far more tiles than the single
	// cell actually served.
	if got := srv.store.Cached(); got < 8 {
		t.Errorf("cached tiles = %d, want prefetched neighbourhood (>= 8)", got)
	}
}

func TestServerStopsAfterTotalSlots(t *testing.T) {
	srv := newTestServer(t, 10)
	select {
	case <-srv.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("server did not stop after TotalSlots")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv := newTestServer(t, 0)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestDelayTableFallsBackToMM1(t *testing.T) {
	cfg := DefaultConfig(core.DVGreedy{})
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	sess := &session{
		predictor: motion.NewPredictor(4),
		ema:       estimate.NewEMA(0.2),
	}
	rates := []float64{5, 10, 20, 30, 40, 45}
	table := srv.delayTable(sess, rates, 50, 1000.0/60)
	if len(table) != len(rates) {
		t.Fatalf("table length %d", len(table))
	}
	for i := 1; i < len(table); i++ {
		if table[i] < table[i-1] {
			t.Errorf("MM1 fallback not increasing at %d", i)
		}
	}
}

func TestDelayTableUsesRegression(t *testing.T) {
	cfg := DefaultConfig(core.DVGreedy{})
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	sess := &session{
		predictor: motion.NewPredictor(4),
		ema:       estimate.NewEMA(0.2),
	}
	// Feed a quadratic delay curve as ACK history. The capacity estimate is
	// far above the probed rates, so the M/M/1 floor stays negligible and
	// the regression dominates.
	for r := 2.0; r <= 40; r += 2 {
		sess.delayRates = append(sess.delayRates, r)
		sess.delayMs = append(sess.delayMs, 0.01*r*r+0.5)
	}
	rates := []float64{10, 20, 30}
	table := srv.delayTable(sess, rates, 500, 1000.0/60)
	for i, r := range rates {
		want := 0.01*r*r + 0.5
		if diff := table[i] - want; diff > 0.5 || diff < -0.5 {
			t.Errorf("regression prediction at %v = %v, want about %v", r, table[i], want)
		}
	}
	// Near the estimated capacity the M/M/1 floor takes over: the table
	// must blow up past the bounded regression forecast.
	cliff := srv.delayTable(sess, []float64{48}, 50, 1000.0/60)
	if cliff[0] < 100 {
		t.Errorf("delay at 96%% of capacity = %v ms, want the M/M/1 cliff", cliff[0])
	}
}

func TestHandleNackRetransmits(t *testing.T) {
	cfg := DefaultConfig(core.DVGreedy{})
	cfg.RetransmitOnNack = true
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	sess := &session{
		ema:       estimate.NewEMA(0.2),
		ledger:    tiles.NewDeliveryLedger(),
		allocated: map[uint32]allocRecord{},
		sendCh:    make(chan []tileJob, 4),
	}
	lost, _ := tiles.PackVideoID(tiles.CellID{X: 1}, 0, 3)
	acked, _ := tiles.PackVideoID(tiles.CellID{X: 1}, 1, 3)
	sess.ledger.MarkDelivered(acked)

	srv.handleNack(sess, transport.Nack{User: 1, Slot: 9, Tiles: []tiles.VideoID{lost, acked}})

	select {
	case batch := <-sess.sendCh:
		if len(batch) != 1 || batch[0].id != lost {
			t.Errorf("retransmit batch = %v, want only the lost tile", batch)
		}
		if len(batch[0].payload) == 0 {
			t.Errorf("empty retransmit payload")
		}
	default:
		t.Fatal("nothing enqueued for retransmission")
	}
	sess.mu.Lock()
	if sess.retransmits != 1 {
		t.Errorf("retransmits = %d, want 1", sess.retransmits)
	}
	sess.mu.Unlock()
}

func TestHandleNackDisabled(t *testing.T) {
	cfg := DefaultConfig(core.DVGreedy{})
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sess := &session{
		ema:       estimate.NewEMA(0.2),
		ledger:    tiles.NewDeliveryLedger(),
		allocated: map[uint32]allocRecord{},
		sendCh:    make(chan []tileJob, 4),
	}
	id, _ := tiles.PackVideoID(tiles.CellID{X: 1}, 0, 3)
	srv.handleNack(sess, transport.Nack{User: 1, Slot: 9, Tiles: []tiles.VideoID{id}})
	select {
	case <-sess.sendCh:
		t.Fatal("retransmission despite RetransmitOnNack=false")
	default:
	}
}

func TestEnqueueDropOldestAndShutdown(t *testing.T) {
	sess := &session{sendCh: make(chan []tileJob, 1)}
	a := []tileJob{{slot: 1}}
	b := []tileJob{{slot: 2}}
	if !sess.enqueue(a) {
		t.Fatal("first enqueue failed")
	}
	// Queue full: the oldest batch is dropped, the new one queued.
	if !sess.enqueue(b) {
		t.Fatal("drop-oldest enqueue failed")
	}
	got := <-sess.sendCh
	if got[0].slot != 2 {
		t.Errorf("queued slot = %d, want 2 (oldest dropped)", got[0].slot)
	}
	// After shutdown, enqueue refuses without panicking.
	sess.closeSend()
	if sess.enqueue(a) {
		t.Error("enqueue after close should fail")
	}
	sess.closeSend() // idempotent
}

func TestServerBadHelloUDPAddr(t *testing.T) {
	srv := newTestServer(t, 0)
	raw, err := net.Dial("tcp", srv.ControlAddr())
	if err != nil {
		t.Fatal(err)
	}
	ctrl := transport.NewConn(raw)
	defer ctrl.Close()
	if err := ctrl.Send(transport.Hello{User: 1, UDPAddr: "not-an-addr"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Recv(); err == nil {
		t.Fatal("server should close connections with bad UDP addresses")
	}
}

func TestHandleACKUpdatesEstimates(t *testing.T) {
	cfg := DefaultConfig(core.DVGreedy{})
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	sess := &session{
		predictor: motion.NewPredictor(4),
		ema:       estimate.NewEMA(0.5),
		ledger:    tiles.NewDeliveryLedger(),
		allocated: map[uint32]allocRecord{5: {level: 4, rate: 30}},
	}
	id, _ := tiles.PackVideoID(tiles.CellID{X: 1}, 0, 4)
	// 60 KB over 10 ms = 48 Mbps goodput.
	srv.handleACK(sess, transport.TileACK{
		User: 1, Slot: 5, Tiles: []tiles.VideoID{id},
		DelayMs: 10, Bytes: 60000, Covered: true, Displayed: true,
	})
	if !sess.ledger.Has(id) {
		t.Errorf("ACKed tile not recorded in ledger")
	}
	if got := sess.ema.Value(); got < 40 || got > 56 {
		t.Errorf("EMA estimate = %v, want about 48", got)
	}
	if sess.t != 1 || sess.covered != 1 || sess.sumViewedQ != 4 {
		t.Errorf("QoE state = t%d covered%d sum%v", sess.t, sess.covered, sess.sumViewedQ)
	}
	if len(sess.delayRates) != 1 || sess.delayRates[0] != 30 {
		t.Errorf("delay sample not recorded: %v", sess.delayRates)
	}
	if _, ok := sess.allocated[5]; ok {
		t.Errorf("allocation record should be consumed")
	}
}
