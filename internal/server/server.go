// Package server implements the edge server of the paper's collaborative VR
// system (Sections V-VI). Per time slot it ingests user poses over TCP,
// predicts each user's next pose, selects the tiles that cover the
// predicted FoV plus margin, builds the per-slot allocation problem (rates
// from the content size model, delays from a polynomial-regression
// predictor, throughput from an EMA estimator) and hands it to any
// core.Allocator. Chosen tiles stream to each user over the RTP-like UDP
// transport, skipping tiles the user already holds.
package server

import (
	"cmp"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"slices"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/estimate"
	"repro/internal/motion"
	"repro/internal/netem"
	"repro/internal/obs"
	"repro/internal/obs/tsdb"
	"repro/internal/tiles"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/vrmath"
)

// Config parametrizes a Server.
type Config struct {
	Params    core.Params
	Allocator core.Allocator
	// SlotDuration is the slot length (paper: 1/60 s).
	SlotDuration time.Duration
	// BudgetMbps is B(t), the server's total throughput budget.
	BudgetMbps float64
	// TotalSlots stops the slot loop after this many slots (0 = until
	// Close).
	TotalSlots int
	// InitialUserMbps seeds the per-user throughput estimate before any
	// ACK feedback arrives.
	InitialUserMbps float64
	// EMAAlpha is the smoothing factor of the throughput estimator.
	EMAAlpha float64
	// PredictorWindow is the motion-regression window.
	PredictorWindow int
	Coverage        motion.CoverageConfig
	// SizeModelSeed selects the content complexity landscape.
	SizeModelSeed uint64
	// MTU bounds datagram size.
	MTU int
	// ShaperFor supplies the transmit-path shaper of each user (the
	// testbed's Linux-TC stand-in); nil means unshaped.
	ShaperFor func(user uint32) transport.Shaper
	// RetransmitOnNack enables the Discussion-section loss-handling
	// extension: tiles the client NACKs are retransmitted.
	RetransmitOnNack bool
	// PrefetchRadius warms the tile cache with the cells around each
	// user's predicted position ("the server only needs to cache the tiles
	// within a range of the user's current position and dynamically adjust
	// the cached content corresponding to the user's movement"). 0 disables
	// prefetching.
	PrefetchRadius int
	// CacheTiles bounds the in-memory tile buffer.
	CacheTiles int
	// MaxSessions bounds the number of concurrently admitted sessions
	// (accept-loop backpressure for load-generation runs): beyond it the
	// server closes new control connections without a Welcome, so clients
	// see an explicit rejection instead of a hung handshake. 0 means
	// unlimited.
	MaxSessions int
	// TCPAddr and UDPAddr are the bind addresses (default loopback
	// ephemeral, for in-process testbeds; a standalone server binds
	// explicit ports).
	TCPAddr string
	UDPAddr string
	// Logf receives diagnostics; nil silences them.
	Logf func(format string, args ...any)
	// Metrics receives the server's counters/gauges/histograms; nil
	// disables metrics with near-zero overhead.
	Metrics *obs.Registry
	// Recorder receives one decision record per allocation slot; nil
	// disables the flight recorder with near-zero overhead.
	Recorder *obs.Recorder
	// CounterfactualK opts recorded decisions into top-K counterfactual
	// capture (the unchosen upgrades of each slot, with reasons); 0 records
	// none. Only meaningful with Recorder.
	CounterfactualK int
	// Tracer receives request-scoped spans following each tile request
	// through the slot pipeline; nil disables tracing with one pointer
	// check per instrumentation point.
	Tracer *trace.Tracer
	// TraceEpoch seeds the deterministic trace-ID derivation; clients that
	// share it (and the epoch 0 default) stitch their spans onto the
	// server's traces.
	TraceEpoch uint64
	// SLO receives per-session display outcomes for burn-rate alerting;
	// nil disables SLO monitoring.
	SLO *obs.SLOMonitor
	// Breaker is the per-session quality circuit breaker: fed the SLO alert
	// state per ACKed slot, it caps a struggling session's quality level so
	// the system degrades fidelity before it ever drops a user. Nil
	// disables. Requires SLO.
	Breaker *obs.Breaker
	// RetryPolicy bounds NACK-driven retransmissions with full-jitter
	// exponential backoff, an attempt cap and a per-tile wall-clock budget;
	// exhausted tiles are abandoned (surfaced as a tx.abandon span). The
	// zero policy keeps the pre-resilience behavior: every NACK is answered
	// immediately and retries never abandon.
	RetryPolicy transport.RetryPolicy
	// Chaos injects server-pipeline faults (slot stalls, slow ACK
	// processing) from a chaos profile; nil disables.
	Chaos *chaos.ServerInjector
	// Health runs one health-plane sampling pass per slot on the slot
	// loop's clock, folding Metrics/SLO into the sampler's time-series
	// store; nil disables with one pointer check per slot.
	Health *tsdb.Sampler
	// ShardID identifies this server inside a fleet (0 standalone). It is
	// echoed in every Welcome so clients know which shard serves them, and
	// salts handoff tokens so tokens from different shards never collide.
	ShardID int
	// SlotWorkers shards the slot pipeline's per-session phases
	// (predict/estimate/admit before the merged solve, fetch/dispatch
	// after it) across a persistent worker pool of this total parallelism,
	// the slot loop included. 0 means GOMAXPROCS; 1 runs the pipeline
	// serially inline. Decisions are identical at any setting: the solve
	// itself stays a single merged pass over the sorted session snapshot.
	SlotWorkers int
	// SenderBatch is the transport packet-batching threshold applied to
	// every session's Sender: tile packets are staged and flushed to the
	// socket in bursts of up to this many datagrams (one flush per queued
	// slot batch at the latest). <= 1 writes every packet immediately.
	SenderBatch int
}

// DefaultConfig returns a server configuration with the paper's real-system
// parameters and the given allocator.
func DefaultConfig(alloc core.Allocator) Config {
	return Config{
		Params:          core.DefaultSystemParams(),
		Allocator:       alloc,
		SlotDuration:    time.Second / 60,
		BudgetMbps:      400,
		InitialUserMbps: 30,
		EMAAlpha:        0.2,
		PredictorWindow: motion.DefaultWindow,
		Coverage:        motion.DefaultCoverage(),
		MTU:             transport.DefaultMTU,
		CacheTiles:      8192,
		SenderBatch:     32,
	}
}

// UserStats is the server-side view of one user after a run.
type UserStats struct {
	User         uint32
	SlotsServed  int
	TilesSent    int
	TilesSkipped int // suppressed retransmissions (ledger hits)
	Retransmits  int // NACK-driven retransmissions
	BytesSent    int
	MeanLevel    float64
	Delta        float64 // final prediction-success estimate
	EstMbps      float64 // final throughput estimate
}

// Server is the edge server.
type Server struct {
	cfg     Config
	model   *tiles.SizeModel
	store   *tiles.Store
	metrics serverMetrics

	udp   net.PacketConn
	tcpLn net.Listener

	mu       sync.Mutex
	sessions map[uint32]*session
	slot     uint32
	// budget is the live value of B(t); it starts at Config.BudgetMbps and
	// a fleet coordinator moves it via SetBudget on rebalance.
	budget float64
	// adopted holds handed-off session state awaiting the client's redial
	// (keyed by user; consumed by the next Hello for that user).
	adopted map[uint32]*HandoffState
	// coordEpoch is the highest coordinator term this shard has witnessed;
	// AdoptSession fences out handoff state stamped by an older (deposed)
	// leader. 0 — the single-replica coordinator's forever-term — disables
	// fencing entirely, keeping the default path byte-identical.
	coordEpoch uint64

	stop         chan struct{}
	stopOnce     sync.Once
	loopDone     chan struct{}
	acceptWG     sync.WaitGroup
	closed       bool
	draining     bool
	prefetchCh   chan prefetchReq
	prefetchFree chan []tiles.TileID
	prefetchWG   sync.WaitGroup

	// pool shards the per-session slot phases (Config.SlotWorkers); free
	// recycles tileJob batches between the slot loop, the NACK path and
	// the send loops so steady-state slots allocate nothing.
	pool *slotPool
	free batchFreeList

	// sharedAlloc/tracingAlloc cache the allocator's optional interfaces:
	// the obs-disabled hot path solves through AllocateShared (results
	// alias solver scratch, zero per-slot allocations), the recorded path
	// through AllocateTraced (results are cloned before retention).
	sharedAlloc  core.SharedAllocator
	tracingAlloc core.TracingAllocator

	// Slot-loop scratch. The slot loop is the only writer and slots are
	// strictly sequential, so these live across slots unlocked. buildFn
	// and dispatchFn are bound once (method values) so forEach receives
	// the same closure every slot instead of allocating one.
	buildFn    func(int)
	dispatchFn func(int)
	sessBuf    []*session
	planBuf    []slotPlan
	userBuf    []core.UserInput
	probBuf    core.SlotProblem
	cur        slotCtx
}

// slotCtx is the slot-scoped state the pool workers read during a phase;
// the slot loop writes it serially before each forEach barrier.
type slotCtx struct {
	sessions    []*session
	plans       []slotPlan
	slot        uint32
	slotMs      float64
	levels      []int
	decideStart int64
	decideEnd   int64
}

// slotPlan is one session's build-phase output, consumed by the merged
// solve and the dispatch phase. sel and rates alias the session's scratch
// buffers: valid for this slot only.
type slotPlan struct {
	sess  *session
	ok    bool
	cell  tiles.CellID
	sel   []tiles.TileID
	rates []float64
}

// batchFreeList recycles tileJob batches. A nil list is valid (bare test
// sessions): get falls back to make, put discards. The zeroing on put is
// what releases payload references, so a parked batch never pins tile
// bytes in memory.
type batchFreeList chan []tileJob

func (fl batchFreeList) get() []tileJob {
	select {
	case b := <-fl:
		return b
	default:
		return make([]tileJob, 0, 16)
	}
}

func (fl batchFreeList) put(b []tileJob) {
	if b == nil {
		return
	}
	for i := range b {
		b[i] = tileJob{}
	}
	select {
	case fl <- b[:0]:
	default:
	}
}

// prefetchReq asks the prefetcher to warm one cell neighbourhood. sel is
// an owned copy (the slot loop reuses its per-session selection scratch
// while the prefetcher runs); it is recycled through prefetchFree.
type prefetchReq struct {
	cell  tiles.CellID
	sel   []tiles.TileID
	level int
}

// session is one connected user.
type session struct {
	user   uint32
	ctrl   *transport.Conn
	sender *transport.Sender
	tracer *trace.Tracer

	mu        sync.Mutex
	pose      vrmath.Pose
	havePose  bool
	predictor *motion.Predictor
	ledger    *tiles.DeliveryLedger
	ema       *estimate.EMA

	// Streaming state for h_n: observed slots, viewed-quality sum, covered
	// count (the same semantics as core.Tracker, but per dynamic session).
	t          int
	sumViewedQ float64
	covered    int

	// handoff marks a session exported to another shard: retirement keeps
	// the fleet-shared SLO window and breaker state alive (the adopting
	// shard continues them) and counts a handoff instead of a departure.
	handoff bool

	// capSamples is a ring of recent goodput samples; the capacity
	// estimate is their maximum (a BBR-style max filter — goodput of a
	// shaped train only reaches the link rate when the train saturates it,
	// so the mean underestimates while the windowed max tracks it).
	capSamples []float64
	capIdx     int

	// allocated maps recent slots to the level and rate chosen, so ACK
	// feedback can be joined back for the delay regression.
	allocated map[uint32]allocRecord

	// retries counts NACK-driven retransmissions per tile, so each resend
	// carries its attempt number in the packet header; ACKed tiles are
	// forgotten. retryFirst records when each tile was first NACKed, which
	// is what the retry policy's wall-clock budget is measured against.
	retries    map[tiles.VideoID]uint8
	retryFirst map[tiles.VideoID]time.Time
	// rng jitters retransmission backoff (seeded per user so campaigns are
	// reproducible); guarded by mu.
	rng *rand.Rand

	// delaySamples feed the polynomial delay predictor.
	delayRates []float64
	delayMs    []float64

	// free is the server-wide batch free list (nil in bare test sessions).
	free batchFreeList

	// Slot-loop scratch: written by exactly one pool worker per slot (the
	// phase barrier orders slots), so no lock beyond the sections that
	// already take mu. fitter is only used under mu (delayTableInto).
	selBuf    []tiles.TileID
	ratesBuf  []float64
	delaysBuf []float64
	modelBuf  []float64
	idsBuf    []tiles.VideoID
	fitter    estimate.PolyFitter

	tilesSent    int
	tilesSkipped int
	retransmits  int
	levelSum     int
	slotsServed  int

	sendCh     chan []tileJob
	sendDone   chan struct{}
	sendClosed bool
	retired    bool
}

// enqueue hands a batch to the send loop without blocking: when the queue
// is full the oldest batch is skipped (stale VR frames are worthless), and
// after shutdown the batch is dropped. Reports whether the batch was
// queued.
func (sess *session) enqueue(batch []tileJob) bool {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.sendClosed {
		return false
	}
	select {
	case sess.sendCh <- batch:
		return true
	default:
	}
	select {
	case old := <-sess.sendCh:
		sess.free.put(old)
	default:
	}
	select {
	case sess.sendCh <- batch:
		return true
	default:
		return false
	}
}

// closeSend stops the send loop; safe to call once per session.
func (sess *session) closeSend() {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if !sess.sendClosed {
		sess.sendClosed = true
		close(sess.sendCh)
	}
}

type allocRecord struct {
	level int
	rate  float64
}

type tileJob struct {
	slot    uint32
	id      tiles.VideoID
	payload []byte
	// trace is the request's trace ID (0 = untraced); origSlot the slot the
	// ID derives from (a NACK retransmission keeps the original request's
	// trace while transmitting under the current slot); retry the tile's
	// retransmission count.
	trace    uint64
	origSlot uint32
	retry    uint8
	// notBefore holds a retransmission batch until its backoff expires
	// (zero = send immediately).
	notBefore time.Time
}

// maxDelaySamples bounds the regression window.
const maxDelaySamples = 240

// maxAllocRecords bounds a session's slot->allocation join map: ACK-less
// sessions (a dead display path, a one-way network) would otherwise grow
// it by one entry per slot forever. When the map reaches the bound, the
// slot loop drops entries older than allocRecordTTL slots — the same
// staleness horizon handleACK applies on the feedback path.
const (
	maxAllocRecords = 256
	allocRecordTTL  = 120
)

// New creates a server listening on loopback ephemeral ports.
func New(cfg Config) (*Server, error) {
	if cfg.Allocator == nil {
		return nil, errors.New("server: allocator required")
	}
	if cfg.SlotDuration <= 0 {
		cfg.SlotDuration = time.Second / 60
	}
	if cfg.MTU <= transport.HeaderSize {
		cfg.MTU = transport.DefaultMTU
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.UDPAddr == "" {
		cfg.UDPAddr = "127.0.0.1:0"
	}
	if cfg.TCPAddr == "" {
		cfg.TCPAddr = "127.0.0.1:0"
	}
	udp, err := net.ListenPacket("udp", cfg.UDPAddr)
	if err != nil {
		return nil, fmt.Errorf("server: listen udp: %w", err)
	}
	tcpLn, err := net.Listen("tcp", cfg.TCPAddr)
	if err != nil {
		udp.Close()
		return nil, fmt.Errorf("server: listen tcp: %w", err)
	}
	model := tiles.NewSizeModel(cfg.SizeModelSeed)
	s := &Server{
		cfg:      cfg,
		metrics:  newServerMetrics(cfg.Metrics),
		model:    model,
		store:    tiles.NewStore(model, cfg.CacheTiles, 1/cfg.SlotDuration.Seconds()),
		udp:      udp,
		tcpLn:    tcpLn,
		sessions: make(map[uint32]*session),
		budget:   cfg.BudgetMbps,
		stop:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	s.store.Instrument(s.metrics.cacheHits, s.metrics.cacheMisses)
	workers := cfg.SlotWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s.pool = newSlotPool(workers)
	s.free = make(batchFreeList, 256)
	s.buildFn = s.buildOne
	s.dispatchFn = s.dispatchOne
	if sa, ok := cfg.Allocator.(core.SharedAllocator); ok {
		s.sharedAlloc = sa
	}
	if ta, ok := cfg.Allocator.(core.TracingAllocator); ok {
		s.tracingAlloc = ta
	}
	if cfg.PrefetchRadius > 0 {
		s.prefetchCh = make(chan prefetchReq, 64)
		s.prefetchFree = make(chan []tiles.TileID, 64)
		s.prefetchWG.Add(1)
		go s.prefetchLoop()
	}
	s.acceptWG.Add(1)
	go s.acceptLoop()
	go s.slotLoop()
	return s, nil
}

// prefetchLoop warms the tile cache off the slot loop's critical path.
func (s *Server) prefetchLoop() {
	defer s.prefetchWG.Done()
	for req := range s.prefetchCh {
		r := int32(s.cfg.PrefetchRadius)
		for dx := -r; dx <= r; dx++ {
			for dz := -r; dz <= r; dz++ {
				cell := tiles.CellID{X: req.cell.X + dx, Z: req.cell.Z + dz}
				for _, tile := range req.sel {
					if id, err := tiles.PackVideoID(cell, tile, req.level); err == nil {
						s.store.Payload(id)
					}
				}
			}
		}
		select {
		case s.prefetchFree <- req.sel:
		default:
		}
	}
}

// ControlAddr returns the TCP address clients dial.
func (s *Server) ControlAddr() string { return s.tcpLn.Addr().String() }

// Done is closed when the slot loop finishes (after TotalSlots, if set).
func (s *Server) Done() <-chan struct{} { return s.loopDone }

// signalStop stops the slot loop exactly once (Close and Drain share it).
func (s *Server) signalStop() { s.stopOnce.Do(func() { close(s.stop) }) }

// Close shuts the server down and waits for its goroutines.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	s.signalStop()

	s.tcpLn.Close()
	<-s.loopDone
	s.pool.Close()
	if s.prefetchCh != nil {
		close(s.prefetchCh)
		s.prefetchWG.Wait()
	}
	for _, sess := range sessions {
		sess.ctrl.Close()
		sess.closeSend()
	}
	s.acceptWG.Wait()
	return s.udp.Close()
}

// Drain shuts the server down gracefully: stop admitting sessions, stop the
// slot clock after the in-flight slot, let every session's send queue flush
// (bounded by timeout; <= 0 means 5 s), then notify clients by closing their
// control connections. It reports whether every queue flushed in time.
// Follow with Close to release the sockets; Drain-then-Close is the SIGTERM
// path of a crash-safe deployment, where pulling the plug mid-slot would
// strand clients on half-delivered frames.
func (s *Server) Drain(timeout time.Duration) bool {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		return true
	}
	s.draining = true
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()

	s.tcpLn.Close() // stop admitting new sessions
	s.signalStop()  // no new slots after the in-flight one
	<-s.loopDone
	s.pool.Close() // workers park between slots; release them now

	// Closing the send queues lets each sendLoop drain what is already
	// enqueued and exit; the deadline bounds how long a pathologically
	// shaped session can hold the drain hostage.
	for _, sess := range sessions {
		sess.closeSend()
	}
	deadline := time.Now().Add(timeout)
	flushed := true
	for _, sess := range sessions {
		remain := time.Until(deadline)
		if remain < 0 {
			remain = 0
		}
		select {
		case <-sess.sendDone:
		case <-time.After(remain):
			flushed = false
			s.cfg.Logf("server: drain: user %d send queue not flushed within %v", sess.user, timeout)
		}
	}
	for _, sess := range sessions {
		sess.ctrl.Close()
	}
	s.cfg.Logf("server: drained %d sessions (flushed=%v)", len(sessions), flushed)
	return flushed
}

// recovered handles a panic value captured in one of the server's
// goroutines: it logs the stack, bumps the panic counter and dumps the
// flight recorder's most recent decisions so the post-mortem has the
// allocation context that led up to the crash.
func (s *Server) recovered(where string, r any) {
	buf := make([]byte, 64<<10)
	buf = buf[:runtime.Stack(buf, false)]
	s.metrics.panics.Inc()
	s.cfg.Logf("server: panic in %s: %v\n%s", where, r, buf)
	for _, rec := range s.cfg.Recorder.Recent(3) {
		s.cfg.Logf("server: flight record slot=%d algo=%s levels=%v value=%.3f util=%.3f",
			rec.Slot, rec.Algorithm, rec.Levels, rec.Value, rec.Utilization)
	}
}

// Stats snapshots per-user server-side statistics.
func (s *Server) Stats() []UserStats {
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()

	out := make([]UserStats, 0, len(sessions))
	for _, sess := range sessions {
		sess.mu.Lock()
		st := UserStats{
			User:         sess.user,
			SlotsServed:  sess.slotsServed,
			TilesSent:    sess.tilesSent,
			TilesSkipped: sess.tilesSkipped,
			Retransmits:  sess.retransmits,
			Delta:        sess.deltaLocked(),
			EstMbps:      sess.ema.Value(),
		}
		if sess.slotsServed > 0 {
			st.MeanLevel = float64(sess.levelSum) / float64(sess.slotsServed)
		}
		_, bytes_, _ := sess.sender.Stats()
		st.BytesSent = bytes_
		sess.mu.Unlock()
		out = append(out, st)
	}
	return out
}

// acceptLoop admits client control connections.
func (s *Server) acceptLoop() {
	defer s.acceptWG.Done()
	for {
		raw, err := s.tcpLn.Accept()
		if err != nil {
			return // listener closed
		}
		s.acceptWG.Add(1)
		go func() {
			defer s.acceptWG.Done()
			s.handleConn(transport.NewConn(raw))
		}()
	}
}

// handleConn performs the Hello handshake, admits or rejects the session
// (backpressure), pumps control messages until the client leaves, and then
// retires the session so churn never accumulates state.
func (s *Server) handleConn(ctrl *transport.Conn) {
	accepted := time.Now()
	msg, err := ctrl.Recv()
	if err != nil {
		ctrl.Close()
		return
	}
	hello, ok := msg.(transport.Hello)
	if !ok {
		s.cfg.Logf("server: first message was %T, want Hello", msg)
		ctrl.Close()
		return
	}
	dst, err := net.ResolveUDPAddr("udp", hello.UDPAddr)
	if err != nil {
		s.cfg.Logf("server: bad UDP addr %q: %v", hello.UDPAddr, err)
		ctrl.Close()
		return
	}

	var shaper transport.Shaper
	if s.cfg.ShaperFor != nil {
		shaper = s.cfg.ShaperFor(hello.User)
	}
	sess := &session{
		user:       hello.User,
		ctrl:       ctrl,
		sender:     transport.NewSender(s.udp, dst, shaper, s.cfg.MTU),
		tracer:     s.cfg.Tracer,
		predictor:  motion.NewPredictor(s.cfg.PredictorWindow),
		ledger:     tiles.NewDeliveryLedger(),
		ema:        estimate.NewEMA(s.cfg.EMAAlpha),
		allocated:  make(map[uint32]allocRecord),
		retries:    make(map[tiles.VideoID]uint8),
		retryFirst: make(map[tiles.VideoID]time.Time),
		rng:        rand.New(rand.NewSource(int64(hello.User)*2654435761 + 1)),
		sendCh:     make(chan []tileJob, 32),
		sendDone:   make(chan struct{}),
		free:       s.free,
		selBuf:     make([]tiles.TileID, 0, tiles.NumTiles),
		ratesBuf:   make([]float64, tiles.Levels),
		delaysBuf:  make([]float64, tiles.Levels),
		modelBuf:   make([]float64, tiles.Levels),
	}
	sess.sender.SetBatchSize(s.cfg.SenderBatch)
	s.metrics.instrumentSender(sess.sender)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ctrl.Close()
		return
	}
	if s.cfg.MaxSessions > 0 && len(s.sessions) >= s.cfg.MaxSessions {
		s.mu.Unlock()
		s.metrics.sessionsRejected.Inc()
		s.cfg.Logf("server: rejecting user %d, session limit %d reached",
			hello.User, s.cfg.MaxSessions)
		ctrl.Close()
		return
	}
	prev := s.sessions[hello.User]
	s.sessions[hello.User] = sess
	// A pending adoption (fleet live migration) is consumed by the first
	// Hello for its user: the redialing client resumes here.
	st := s.adopted[hello.User]
	if st != nil {
		delete(s.adopted, hello.User)
	}
	s.mu.Unlock()
	if prev != nil {
		// A reconnect superseded a live session with the same ID: retire
		// the old one so its goroutines and queues do not leak.
		prev.ctrl.Close()
		prev.closeSend()
	}
	if st != nil {
		sess.resume(st)
		s.metrics.handoffsIn.Inc()
		s.cfg.Logf("server: user %d resumed from shard %d (token %016x)",
			hello.User, st.FromShard, st.Token)
	} else {
		s.cfg.Logf("server: user %d joined from %s", hello.User, hello.UDPAddr)
	}
	s.metrics.sessionsJoined.Inc()
	s.metrics.sessionsActive.Add(1)
	s.metrics.sessionSetupMs.Observe(float64(time.Since(accepted)) / float64(time.Millisecond))
	if err := ctrl.Send(transport.Welcome{
		User:    hello.User,
		Resumed: st != nil,
		Shard:   s.cfg.ShardID,
	}); err != nil {
		s.retireSession(sess)
		return
	}

	go func() {
		defer close(sess.sendDone)
		defer func() {
			if r := recover(); r != nil {
				s.recovered(fmt.Sprintf("send loop (user %d)", sess.user), r)
				s.retireSession(sess)
			}
		}()
		sess.sendLoop()
	}()
	func() {
		// A panic while handling one session's control traffic (a malformed
		// message, a bad estimator sample) must cost that session, not the
		// server: recover, retire, keep serving everyone else.
		defer func() {
			if r := recover(); r != nil {
				s.recovered(fmt.Sprintf("control loop (user %d)", sess.user), r)
			}
		}()
		s.controlLoop(sess)
	}()
	s.retireSession(sess)
}

// retireSession removes a departed session from the slot loop's view and
// releases its resources; with thousands of short sessions this is what
// keeps server state bounded. The final mean viewed quality feeds the
// per-session QoE histogram.
func (s *Server) retireSession(sess *session) {
	// Idempotent: the panic-recovery paths and the normal control-loop exit
	// can both reach here for the same session, and the active-session gauge
	// must only move once.
	sess.mu.Lock()
	if sess.retired {
		sess.mu.Unlock()
		return
	}
	sess.retired = true
	served := sess.slotsServed
	meanQ := sess.meanQLocked()
	handedOff := sess.handoff
	sess.mu.Unlock()

	s.mu.Lock()
	current := false
	if cur, ok := s.sessions[sess.user]; ok && cur == sess {
		delete(s.sessions, sess.user)
		current = true
	}
	s.mu.Unlock()
	if current && !handedOff {
		// Only the current session retires the SLO window and breaker: a
		// superseding reconnect with the same ID keeps accumulating into
		// them (session-resume keeps the QoE history). A handed-off session
		// keeps them too — the adopting shard shares the monitor and
		// continues the windows.
		s.cfg.SLO.Retire(sess.user)
		s.cfg.Breaker.Retire(sess.user)
	}
	sess.ctrl.Close()
	sess.closeSend()
	s.metrics.sessionsActive.Add(-1)
	if handedOff {
		s.metrics.handoffsOut.Inc()
		return
	}
	s.metrics.sessionsLeft.Inc()
	if served > 0 {
		s.metrics.sessionMeanQ.Observe(meanQ)
	}
}

// sendLoop transmits one slot's tile batch at a time, absorbing the
// shaper's pacing sleeps off the slot loop's critical path. Tiles are
// staged into the sender's packet batch and flushed once per slot batch
// (the sender auto-flushes mid-batch at Config.SenderBatch datagrams), so
// the wire sees one burst per slot instead of one syscall cascade per
// tile. Spent batches return to the free list.
func (sess *session) sendLoop() {
	for batch := range sess.sendCh {
		if len(batch) == 0 {
			sess.free.put(batch)
			continue
		}
		// A retransmission batch carries its backoff deadline; fresh slot
		// batches have a zero notBefore and pass straight through. The sleep
		// is bounded by the retry policy's Cap (about two slots), so a
		// backoff can delay at most a couple of fresh frames — which the
		// lossy queue in enqueue already treats as droppable.
		if nb := batch[0].notBefore; !nb.IsZero() {
			if d := time.Until(nb); d > 0 {
				time.Sleep(d)
			}
		}
		stage := trace.StageSend
		maxRetry := 0
		for _, job := range batch {
			if int(job.retry) > maxRetry {
				maxRetry = int(job.retry)
			}
		}
		if maxRetry > 0 {
			stage = trace.StageRetry
		}
		sp := sess.tracer.Start(batch[0].trace, stage, trace.SideServer, sess.user, batch[0].origSlot)
		bytes := 0
		var err error
		for _, job := range batch {
			if err = sess.sender.QueueTileTraced(sess.user, job.slot, job.id, job.payload, job.trace, job.retry); err != nil {
				break
			}
			bytes += len(job.payload)
		}
		if err == nil {
			err = sess.sender.Flush()
		}
		if err != nil {
			sp.SetErr("send-failed")
			sp.End()
			sess.free.put(batch)
			return
		}
		sp.SetTiles(len(batch))
		sp.SetBytes(bytes)
		sp.SetRetry(maxRetry)
		sp.End()
		sess.free.put(batch)
	}
}

// controlLoop consumes pose updates, ACKs and release notices.
func (s *Server) controlLoop(sess *session) {
	for {
		msg, err := sess.ctrl.Recv()
		if err != nil {
			return
		}
		switch m := msg.(type) {
		case transport.PoseUpdate:
			sess.mu.Lock()
			sess.pose = m.Pose
			sess.havePose = true
			sess.predictor.Observe(m.Pose)
			sess.mu.Unlock()
		case transport.TileACK:
			// Chaos slow-ack: stale feedback is one of the failure modes the
			// estimators must tolerate, so the injection point is right
			// before the estimator fold-in.
			if d := s.cfg.Chaos.AckDelay(); d > 0 {
				time.Sleep(d)
			}
			s.handleACK(sess, m)
		case transport.Release:
			sess.ledger.MarkReleased(m.Tiles...)
		case transport.Nack:
			if d := s.cfg.Chaos.AckDelay(); d > 0 {
				time.Sleep(d)
			}
			s.handleNack(sess, m)
		default:
			s.cfg.Logf("server: unexpected control message %T", msg)
		}
	}
}

// handleACK folds client feedback into the estimators and the QoE state.
func (s *Server) handleACK(sess *session, ack transport.TileACK) {
	s.metrics.acks.Inc()
	traceID := trace.TileTraceID(s.cfg.TraceEpoch, sess.user, ack.Slot)
	sp := s.cfg.Tracer.Start(traceID, trace.StageAck, trace.SideServer, sess.user, ack.Slot)
	sp.SetTiles(len(ack.Tiles))
	sp.SetBytes(ack.Bytes)
	if ack.Displayed {
		sp.SetOutcome(trace.OutcomeDisplayed)
	} else {
		sp.SetOutcome(trace.OutcomeMissed)
	}
	defer sp.End()
	for _, id := range ack.Tiles {
		sess.ledger.MarkDelivered(id)
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	for _, id := range ack.Tiles {
		delete(sess.retries, id)
		delete(sess.retryFirst, id)
	}

	// Throughput estimate: goodput across the slot's arrival window
	// approximates the bottleneck rate when the link is the constraint.
	// The EMA smooths; the windowed max (see capEstimateLocked) tracks the
	// actual capacity.
	if ack.DelayMs > 0.2 && ack.Bytes > 0 {
		mbps := float64(ack.Bytes) * 8 / (ack.DelayMs / 1000) / 1e6
		// Capacity-estimate error: how far the estimate the allocator
		// used was from the goodput the slot actually measured.
		if prior := sess.capEstimateLocked(s.cfg.InitialUserMbps); prior > 0 {
			rel := (prior - mbps) / mbps
			if rel < 0 {
				rel = -rel
			}
			s.metrics.capEstRelErr.Observe(rel)
		}
		sess.ema.Update(mbps)
		if len(sess.capSamples) < capWindow {
			sess.capSamples = append(sess.capSamples, mbps)
		} else {
			sess.capSamples[sess.capIdx] = mbps
			sess.capIdx = (sess.capIdx + 1) % capWindow
		}
	}

	rec, ok := sess.allocated[ack.Slot]
	if ok {
		delete(sess.allocated, ack.Slot)
		// Streaming QoE state (drives MeanQ and delta of h_n).
		sess.t++
		if ack.Covered {
			sess.covered++
			sess.sumViewedQ += float64(rec.level)
		}
		quality := 0.0
		if ack.Displayed {
			quality = float64(rec.level)
		}
		s.cfg.SLO.ObserveSlot(sess.user, ack.Displayed, quality)
		// The breaker rides the SLO's alert state, one observation per
		// ACKed display slot.
		s.cfg.Breaker.Observe(sess.user, s.cfg.SLO.State(sess.user))
		// Delay regression sample.
		if ack.DelayMs > 0 {
			sess.delayRates = append(sess.delayRates, rec.rate)
			sess.delayMs = append(sess.delayMs, ack.DelayMs)
			if len(sess.delayRates) > maxDelaySamples {
				sess.delayRates = sess.delayRates[1:]
				sess.delayMs = sess.delayMs[1:]
			}
		}
	}
	// Drop stale allocation records.
	for slot := range sess.allocated {
		if slot+120 < ack.Slot {
			delete(sess.allocated, slot)
		}
	}
}

// handleNack retransmits tiles the client reported as fragment-lost (the
// Discussion-section loss-handling extension; enabled by RetransmitOnNack).
func (s *Server) handleNack(sess *session, nack transport.Nack) {
	s.metrics.nacks.Inc()
	s.metrics.nackTiles.Add(uint64(len(nack.Tiles)))
	if !s.cfg.RetransmitOnNack {
		return
	}
	// Retransmit under the *current* slot number: the original frame's
	// deadline has passed, but the tile content is per-cell and feeds the
	// client's RAM for upcoming frames.
	s.mu.Lock()
	curSlot := s.slot
	s.mu.Unlock()
	// The retransmission keeps the original request's trace: the NACKed
	// slot derives the ID, so the retry span lands in the same trace as the
	// first transmission and the client's eventual receive.
	traceID := trace.TileTraceID(s.cfg.TraceEpoch, sess.user, nack.Slot)
	policy := s.cfg.RetryPolicy
	now := time.Now()
	batch := s.free.get()
	abandoned := 0
	sess.mu.Lock()
	if sess.retries == nil {
		sess.retries = make(map[tiles.VideoID]uint8)
	}
	if sess.retryFirst == nil {
		sess.retryFirst = make(map[tiles.VideoID]time.Time)
	}
	maxAttempt := 0
	for _, id := range nack.Tiles {
		if sess.ledger.Has(id) {
			continue // already confirmed via a later ACK
		}
		first, seen := sess.retryFirst[id]
		if !seen {
			first = now
			sess.retryFirst[id] = first
		}
		if policy.Abandon(int(sess.retries[id]), now.Sub(first)) {
			// Budget exhausted: give the tile up. The client's slot shows
			// partial content; the ledger/RAM path supplies the cell later.
			abandoned++
			delete(sess.retries, id)
			delete(sess.retryFirst, id)
			continue
		}
		if int(sess.retries[id]) > maxAttempt {
			maxAttempt = int(sess.retries[id])
		}
		if sess.retries[id] < 0xFF {
			sess.retries[id]++
		}
		batch = append(batch, tileJob{
			slot: curSlot, id: id, payload: s.store.Payload(id),
			trace: traceID, origSlot: nack.Slot, retry: sess.retries[id],
		})
	}
	var notBefore time.Time
	if len(batch) > 0 && policy.Enabled() {
		// One backoff per batch, sized by the most-retried tile: a batch is
		// one wire transmission, and per-tile staggering would just shred it
		// into per-fragment sends.
		notBefore = now.Add(policy.Backoff(maxAttempt, sess.rng))
		for i := range batch {
			batch[i].notBefore = notBefore
		}
	}
	if len(batch) > 0 {
		sess.retransmits += len(batch)
	}
	sess.mu.Unlock()
	if abandoned > 0 {
		s.metrics.retryAbandoned.Add(uint64(abandoned))
		sp := s.cfg.Tracer.Start(traceID, trace.StageAbandon, trace.SideServer, sess.user, nack.Slot)
		sp.SetTiles(abandoned)
		sp.SetOutcome(trace.OutcomeMissed)
		sp.End()
	}
	if len(batch) == 0 {
		s.free.put(batch)
		return
	}
	s.metrics.retransmits.Add(uint64(len(batch)))
	if !sess.enqueue(batch) {
		s.free.put(batch)
	}
}

// capWindow is the size of the goodput max-filter window (about two
// seconds of ACKed slots at 60 FPS).
const capWindow = 120

// capEstimateLocked returns the session's capacity estimate: the windowed
// maximum of goodput samples, clamped from below by the EMA (caller holds
// sess.mu).
func (sess *session) capEstimateLocked(fallback float64) float64 {
	if len(sess.capSamples) == 0 {
		if sess.ema.Primed() {
			return sess.ema.Value()
		}
		return fallback
	}
	est := sess.capSamples[0]
	for _, v := range sess.capSamples[1:] {
		if v > est {
			est = v
		}
	}
	return est
}

func (sess *session) deltaLocked() float64 {
	return (1 + float64(sess.covered)) / float64(1+sess.t)
}

func (sess *session) meanQLocked() float64 {
	if sess.t == 0 {
		return 0
	}
	return sess.sumViewedQ / float64(sess.t)
}

// slotLoop is the per-slot decision pipeline.
func (s *Server) slotLoop() {
	defer close(s.loopDone)
	ticker := time.NewTicker(s.cfg.SlotDuration)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
		}
		s.mu.Lock()
		slot := s.slot
		s.slot++
		budget := s.budget
		s.sessBuf = s.sessBuf[:0]
		for _, sess := range s.sessions {
			s.sessBuf = append(s.sessBuf, sess)
		}
		s.mu.Unlock()
		sessions := s.sessBuf
		// Stable user order: the warm-start allocator diffs consecutive
		// slot problems positionally, so the snapshot is sorted by user ID
		// — map iteration order would reshuffle every position every slot
		// and degrade every solve to a cold one.
		slices.SortFunc(sessions, func(a, b *session) int {
			return cmp.Compare(a.user, b.user)
		})

		// Chaos server faults ride the slot clock: advance the injector's
		// window and absorb any scheduled pipeline stall before deciding.
		s.cfg.Chaos.Advance(int(slot))
		if d := s.cfg.Chaos.StallFor(); d > 0 {
			time.Sleep(d)
		}
		if len(sessions) > 0 {
			s.safeRunSlot(slot, sessions, budget)
		}
		// Health sampling rides the same slot clock so the stored series
		// align with decisions; it runs after the slot's outcomes land.
		s.cfg.Health.Sample(int64(slot))
		if s.cfg.TotalSlots > 0 && int(s.slot) >= s.cfg.TotalSlots {
			return
		}
	}
}

// safeRunSlot runs one slot with panic isolation: a crash in the pipeline
// (an allocator bug on a pathological input, say) costs that slot — the
// clients miss one frame — instead of the whole server.
func (s *Server) safeRunSlot(slot uint32, sessions []*session, budget float64) {
	defer func() {
		if r := recover(); r != nil {
			s.recovered(fmt.Sprintf("slot pipeline (slot %d)", slot), r)
		}
	}()
	s.runSlot(slot, sessions, budget)
}

// runSlot predicts, allocates and dispatches one slot. The per-session
// phases are sharded across the slot pool: a parallel build phase fills
// one plan per session (predict, capacity estimate, tile selection, rate
// and delay tables), a serial merged solve decides every user's level in
// one pass, and a parallel dispatch phase admits, fetches and enqueues
// each session's batch. Decisions are independent of SlotWorkers: the
// build phase writes by index, compaction is stable, and the solve sees
// the same sorted problem either way.
func (s *Server) runSlot(slot uint32, sessions []*session, budget float64) {
	started := time.Now()
	s.metrics.slots.Inc()
	s.cur.sessions = sessions
	s.cur.slot = slot
	s.cur.slotMs = s.cfg.SlotDuration.Seconds() * 1000
	if cap(s.planBuf) < len(sessions) {
		s.planBuf = make([]slotPlan, len(sessions))
		s.userBuf = make([]core.UserInput, len(sessions))
	}
	s.planBuf = s.planBuf[:len(sessions)]
	s.userBuf = s.userBuf[:len(sessions)]

	s.pool.forEach(len(sessions), s.buildFn)

	// Stable compaction: drop sessions that have not posed yet, keeping
	// the sorted order the warm-start diff depends on. The append targets
	// trail the read index, so compacting in place is safe.
	plans, users := s.planBuf[:0], s.userBuf[:0]
	for i := range s.planBuf {
		if s.planBuf[i].ok {
			plans = append(plans, s.planBuf[i])
			users = append(users, s.userBuf[i])
		}
	}
	if len(plans) == 0 {
		return
	}

	s.probBuf = core.SlotProblem{T: int(slot) + 1, Budget: budget, Users: users}
	problem := &s.probBuf
	decideStart := s.cfg.Tracer.Now()
	var allocation core.Allocation
	var slotTrace *core.SlotTrace
	recording := s.cfg.Recorder.Enabled()
	switch {
	case recording && s.tracingAlloc != nil:
		slotTrace = &core.SlotTrace{TopK: s.cfg.CounterfactualK}
		allocation = s.tracingAlloc.AllocateTraced(s.cfg.Params, problem, slotTrace)
	case !recording && s.sharedAlloc != nil:
		// Hot path: the returned Levels alias solver scratch — valid until
		// the next solve, which is the next slot, after dispatch completed.
		allocation = s.sharedAlloc.AllocateShared(s.cfg.Params, problem)
	default:
		allocation = s.cfg.Allocator.Allocate(s.cfg.Params, problem)
	}
	decideEnd := s.cfg.Tracer.Now()
	if recording {
		ids := make([]uint32, len(plans))
		for i := range plans {
			ids[i] = plans[i].sess.user
		}
		recordSlot(s.cfg.Recorder, s.cfg.Allocator.Name(), s.cfg.Params, slot,
			problem, allocation, slotTrace, ids)
	}
	s.metrics.observeDecision(time.Since(started), s.cfg.SlotDuration)
	s.metrics.cacheHitRatio.Set(s.store.HitRatio())

	s.cur.plans = plans
	s.cur.levels = allocation.Levels
	s.cur.decideStart, s.cur.decideEnd = decideStart, decideEnd
	s.pool.forEach(len(plans), s.dispatchFn)
}

// buildOne is the parallel build phase for one session: predict the pose,
// estimate capacity, select tiles and fill the plan and user input at the
// session's snapshot index. All outputs land on per-session or per-index
// scratch, so workers never contend.
func (s *Server) buildOne(i int) {
	sess := s.cur.sessions[i]
	p := &s.planBuf[i]
	p.sess = sess
	p.ok = false
	sess.mu.Lock()
	if !sess.havePose {
		sess.mu.Unlock()
		return
	}
	predicted := sess.predictor.Predict()
	capEst := sess.capEstimateLocked(s.cfg.InitialUserMbps)
	cell := tiles.CellFor(predicted.Pos)
	sess.selBuf = tiles.ForViewAppend(sess.selBuf[:0], predicted, s.cfg.Coverage.FoV, s.cfg.Coverage.MarginDeg)
	if len(sess.ratesBuf) != tiles.Levels {
		sess.ratesBuf = make([]float64, tiles.Levels)
		sess.delaysBuf = make([]float64, tiles.Levels)
	}
	s.model.RateTableInto(sess.ratesBuf, cell, sess.selBuf)
	s.delayTableInto(sess, sess.delaysBuf, sess.ratesBuf, capEst, s.cur.slotMs)
	s.userBuf[i] = core.UserInput{
		Rate:  sess.ratesBuf,
		Delay: sess.delaysBuf,
		Delta: sess.deltaLocked(),
		MeanQ: sess.meanQLocked(),
		Cap:   capEst,
	}
	sess.mu.Unlock()
	p.cell = cell
	p.sel = sess.selBuf
	p.rates = sess.ratesBuf
	p.ok = true
}

// dispatchOne is the parallel dispatch phase for one planned session:
// breaker clamp, admission against the delivery ledger, payload fetch and
// hand-off to the session's send loop.
func (s *Server) dispatchOne(i int) {
	p := &s.cur.plans[i]
	slot := s.cur.slot
	level := s.cur.levels[i]
	traceID := trace.TileTraceID(s.cfg.TraceEpoch, p.sess.user, slot)
	// Graceful degradation: a tripped breaker caps the session's quality
	// level below what the allocator granted — fidelity is sacrificed
	// before anyone considers dropping the user. The clamp happens after
	// the solve so one struggling session cannot distort the shared
	// budget arithmetic mid-decision.
	if cap_ := s.cfg.Breaker.Cap(p.sess.user); cap_ > 0 && level > cap_ {
		bsp := s.cfg.Tracer.Start(traceID, trace.StageBreaker, trace.SideServer, p.sess.user, slot)
		bsp.SetLevel(cap_)
		bsp.End()
		s.metrics.breakerCapped.Inc()
		level = cap_
	}
	s.metrics.allocLevel.Observe(float64(level))

	// The solve ran once for the whole slot; each planned user's trace
	// records it as its decision stage.
	dsp := s.cfg.Tracer.StartAt(traceID, trace.StageDecide, trace.SideServer, p.sess.user, slot, s.cur.decideStart)
	dsp.SetAlgo(s.cfg.Allocator.Name())
	dsp.SetLevel(level)
	dsp.SetTiles(len(s.cur.plans))
	dsp.EndAt(s.cur.decideEnd)

	// Admission: level assignment plus repetitive-tile suppression
	// against the delivery ledger.
	asp := s.cfg.Tracer.Start(traceID, trace.StageAdmit, trace.SideServer, p.sess.user, slot)
	ids := p.sess.idsBuf[:0]
	skipped := 0
	for _, tile := range p.sel {
		id, err := tiles.PackVideoID(p.cell, tile, level)
		if err != nil {
			s.cfg.Logf("server: pack id: %v", err)
			continue
		}
		if p.sess.ledger.Has(id) {
			skipped++
			continue // repetitive-tile suppression
		}
		ids = append(ids, id)
	}
	p.sess.idsBuf = ids
	asp.SetLevel(level)
	asp.SetTiles(len(ids))
	asp.End()

	// Fetch/encode: tile payloads from the store (cache or generate).
	fsp := s.cfg.Tracer.Start(traceID, trace.StageFetch, trace.SideServer, p.sess.user, slot)
	batch := s.free.get()
	fetched := 0
	for _, id := range ids {
		payload := s.store.Payload(id)
		fetched += len(payload)
		batch = append(batch, tileJob{slot: slot, origSlot: slot, id: id, payload: payload, trace: traceID})
	}
	fsp.SetTiles(len(batch))
	fsp.SetBytes(fetched)
	fsp.End()

	p.sess.mu.Lock()
	if len(p.sess.allocated) >= maxAllocRecords {
		for old := range p.sess.allocated {
			if old+allocRecordTTL < slot {
				delete(p.sess.allocated, old)
			}
		}
	}
	p.sess.allocated[slot] = allocRecord{level: level, rate: p.rates[level-1]}
	p.sess.levelSum += level
	p.sess.slotsServed++
	p.sess.tilesSent += len(batch)
	p.sess.tilesSkipped += skipped
	p.sess.mu.Unlock()
	s.metrics.tilesSent.Add(uint64(len(batch)))
	s.metrics.tilesSkipped.Add(uint64(skipped))

	if s.prefetchCh != nil {
		// Hand the prefetcher an owned copy of the selection: p.sel aliases
		// the session's scratch, which the next slot's build overwrites.
		var sel []tiles.TileID
		select {
		case sel = <-s.prefetchFree:
		default:
		}
		sel = append(sel[:0], p.sel...)
		select {
		case s.prefetchCh <- prefetchReq{cell: p.cell, sel: sel, level: level}:
		default: // prefetcher busy; skip
			select {
			case s.prefetchFree <- sel:
			default:
			}
		}
	}
	if !p.sess.enqueue(batch) {
		s.free.put(batch)
		s.cfg.Logf("server: user %d send queue full at slot %d", p.sess.user, slot)
	}
}

// delayTable predicts the delivery delay of each ladder rate. It combines
// the two delay sources the paper uses: the polynomial regression over
// measured ACK delays (Section V) and the analytic M/M/1 queueing model at
// the estimated capacity (Section II / eq. (13)). The measured samples are
// bounded by the slot pipeline, so they cannot reveal the queueing cliff at
// the link capacity; the M/M/1 term restores it, which is what keeps the
// allocator from riding the estimate into overload.
func (s *Server) delayTable(sess *session, rates []float64, capMbps, slotMs float64) []float64 {
	out := make([]float64, len(rates))
	s.delayTableInto(sess, out, rates, capMbps, slotMs)
	return out
}

// delayTableInto is delayTable on the session's scratch: the M/M/1 table
// lands in sess.modelBuf and the regression runs on the session's
// PolyFitter, so a steady-state call allocates nothing. len(out) must
// equal len(rates); the caller holds sess.mu (delayRates/fitter are
// mu-guarded).
func (s *Server) delayTableInto(sess *session, out, rates []float64, capMbps, slotMs float64) {
	if len(sess.modelBuf) < len(rates) {
		sess.modelBuf = make([]float64, len(rates))
	}
	model := sess.modelBuf[:len(rates)]
	netem.DelayTableMsInto(model, rates, capMbps, slotMs)
	if len(sess.delayRates) < 12 {
		copy(out, model)
		return
	}
	fit, err := sess.fitter.Fit(sess.delayRates, sess.delayMs, 2)
	if err != nil {
		copy(out, model)
		return
	}
	for i, r := range rates {
		d := fit.Predict(r)
		if d < 0 {
			d = 0
		}
		// Within the measured operating region trust the regression; near
		// and beyond the estimated capacity impose the queueing cliff.
		if r > 0.85*capMbps && model[i] > d {
			d = model[i]
		}
		out[i] = d
	}
}
