package server

import (
	"math"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/estimate"
	"repro/internal/motion"
	"repro/internal/obs"
	"repro/internal/tiles"
	"repro/internal/transport"
	"repro/internal/vrmath"
)

func TestSlotPoolForEachCoversAll(t *testing.T) {
	p := newSlotPool(4)
	defer p.Close()
	var hits [1000]int32
	p.forEach(len(hits), func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d ran %d times, want exactly once", i, h)
		}
	}
	// Jobs too small to split run inline on the caller.
	var small [3]int32
	p.forEach(len(small), func(i int) { atomic.AddInt32(&small[i], 1) })
	for i, h := range small {
		if h != 1 {
			t.Fatalf("small index %d ran %d times", i, h)
		}
	}
	// A nil or serial pool degenerates to a plain loop.
	var nilPool *slotPool
	ran := 0
	nilPool.forEach(5, func(int) { ran++ })
	if ran != 5 {
		t.Fatalf("nil pool ran %d of 5", ran)
	}
}

func TestSlotPoolPanicPropagates(t *testing.T) {
	p := newSlotPool(4)
	defer p.Close()
	caught := func() (r any) {
		defer func() { r = recover() }()
		p.forEach(64, func(i int) {
			if i == 37 {
				panic("boom at 37")
			}
		})
		return nil
	}()
	pp, ok := caught.(poolPanic)
	if !ok {
		t.Fatalf("recovered %T (%v), want poolPanic", caught, caught)
	}
	if pp.value != "boom at 37" || len(pp.stack) == 0 {
		t.Fatalf("poolPanic = %+v, want original value and a stack", pp)
	}
	// The pool survives a panicked run: the next forEach still works.
	var n int32
	p.forEach(64, func(int) { atomic.AddInt32(&n, 1) })
	if n != 64 {
		t.Fatalf("post-panic forEach ran %d of 64", n)
	}

	// Serial pools propagate the panic natively (no wrapping).
	sp := newSlotPool(1)
	defer sp.Close()
	serial := func() (r any) {
		defer func() { r = recover() }()
		sp.forEach(4, func(i int) { panic("serial boom") })
		return nil
	}()
	if serial != "serial boom" {
		t.Fatalf("serial panic = %v, want raw value", serial)
	}
}

func TestSlotPoolCloseIdempotent(t *testing.T) {
	p := newSlotPool(3)
	p.Close()
	p.Close()
	var nilPool *slotPool
	nilPool.Close()
}

// bareSession builds a session directly (no network) for driving runSlot.
func bareSession(srv *Server, user uint32, pose vrmath.Pose, queue int) *session {
	sess := &session{
		user:      user,
		predictor: motion.NewPredictor(srv.cfg.PredictorWindow),
		ledger:    tiles.NewDeliveryLedger(),
		ema:       estimate.NewEMA(srv.cfg.EMAAlpha),
		allocated: make(map[uint32]allocRecord),
		sendCh:    make(chan []tileJob, queue),
		free:      srv.free,
		pose:      pose,
		havePose:  true,
	}
	sess.predictor.Observe(pose)
	return sess
}

// stoppedServer builds a server whose slot clock has already finished, so
// tests can drive runSlot directly without racing the ticker.
func stoppedServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	cfg.TotalSlots = 1
	cfg.SlotDuration = time.Millisecond
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	select {
	case <-srv.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("slot clock did not stop")
	}
	return srv
}

// churnSessions builds a deterministic, diverse session population: a
// stable sorted user order with some sessions poseless, some with primed
// throughput estimates and some with enough delay history to engage the
// regression path.
func churnSessions(srv *Server, n int) []*session {
	sessions := make([]*session, 0, n)
	for u := 1; u <= n; u++ {
		pose := vrmath.Pose{
			Pos: vrmath.Vec3{X: float64(u) * 0.3, Z: float64(u % 7)},
			Yaw: float64((u*37)%360) - 180,
		}
		sess := bareSession(srv, uint32(u), pose, 8)
		if u%5 == 0 {
			sess.havePose = false
		}
		if u%3 == 0 {
			sess.ema.Update(20 + float64(u))
		}
		if u%4 == 0 {
			for k := 0; k < 16; k++ {
				r := float64(2*k) + float64(u%5)
				sess.delayRates = append(sess.delayRates, r)
				sess.delayMs = append(sess.delayMs, 0.01*r*r+0.4)
			}
		}
		sessions = append(sessions, sess)
	}
	return sessions
}

// sessionOutcome is the per-user decision trail of a runSlot sequence.
type sessionOutcome struct {
	levels  []int
	rates   []float64
	sent    int
	skipped int
}

func runSlotSequence(t *testing.T, workers, users, slots int) map[uint32]sessionOutcome {
	t.Helper()
	cfg := DefaultConfig(core.NewWarmAllocator())
	cfg.SlotWorkers = workers
	srv := stoppedServer(t, cfg)
	sessions := churnSessions(srv, users)
	for k := 0; k < slots; k++ {
		srv.runSlot(uint32(k), sessions, cfg.BudgetMbps)
	}
	out := make(map[uint32]sessionOutcome, users)
	for _, sess := range sessions {
		sess.mu.Lock()
		o := sessionOutcome{sent: sess.tilesSent, skipped: sess.tilesSkipped}
		for k := 0; k < slots; k++ {
			if rec, ok := sess.allocated[uint32(k)]; ok {
				o.levels = append(o.levels, rec.level)
				o.rates = append(o.rates, rec.rate)
			} else {
				o.levels = append(o.levels, -1)
				o.rates = append(o.rates, -1)
			}
		}
		sess.mu.Unlock()
		out[sess.user] = o
	}
	return out
}

// TestRunSlotShardedMatchesSerial is the sharded-pipeline differential:
// the same session population decided by a serial slot loop and by a
// 4-way sharded one must produce bit-identical levels and admitted rates
// for every user and slot.
func TestRunSlotShardedMatchesSerial(t *testing.T) {
	const users, slots = 40, 6
	serial := runSlotSequence(t, 1, users, slots)
	sharded := runSlotSequence(t, 4, users, slots)
	if len(serial) != len(sharded) {
		t.Fatalf("user counts differ: %d vs %d", len(serial), len(sharded))
	}
	for user, a := range serial {
		b, ok := sharded[user]
		if !ok {
			t.Fatalf("user %d missing from sharded run", user)
		}
		if a.sent != b.sent || a.skipped != b.skipped {
			t.Errorf("user %d: sent/skipped %d/%d (serial) vs %d/%d (sharded)",
				user, a.sent, a.skipped, b.sent, b.skipped)
		}
		for k := 0; k < slots; k++ {
			if a.levels[k] != b.levels[k] {
				t.Errorf("user %d slot %d: level %d (serial) vs %d (sharded)",
					user, k, a.levels[k], b.levels[k])
			}
			if math.Float64bits(a.rates[k]) != math.Float64bits(b.rates[k]) {
				t.Errorf("user %d slot %d: rate %v (serial) vs %v (sharded)",
					user, k, a.rates[k], b.rates[k])
			}
		}
	}
}

// TestRunSlotSteadyStateAllocs gates the hot path: with observability
// disabled (nil Metrics/Recorder/Tracer) and a warm-started shared
// allocator, a steady-state slot must not allocate at all — scratch
// buffers, the batch free list and the solver's warm path absorb
// everything.
func TestRunSlotSteadyStateAllocs(t *testing.T) {
	cfg := DefaultConfig(core.NewWarmAllocator())
	cfg.SlotWorkers = 1
	srv := stoppedServer(t, cfg)

	sessions := make([]*session, 0, 8)
	for u := 1; u <= 8; u++ {
		pose := vrmath.Pose{Pos: vrmath.Vec3{X: float64(u), Z: 2}, Yaw: float64(u * 20)}
		sess := bareSession(srv, uint32(u), pose, 1)
		if u%3 == 0 {
			// Enough history to engage the regression branch of the delay
			// table, which must also be allocation-free.
			for k := 0; k < 16; k++ {
				r := float64(2 * k)
				sess.delayRates = append(sess.delayRates, r)
				sess.delayMs = append(sess.delayMs, 0.02*r*r+0.3)
			}
		}
		sessions = append(sessions, sess)
	}

	// A fixed slot number keeps T constant so the warm solver warm-starts
	// (the variance weight (t-1)/t would otherwise dirty every ladder) and
	// keeps the allocation-record map at size one.
	const slot = 7
	for i := 0; i < 50; i++ {
		srv.runSlot(slot, sessions, cfg.BudgetMbps)
	}
	avg := testing.AllocsPerRun(200, func() {
		srv.runSlot(slot, sessions, cfg.BudgetMbps)
	})
	if avg != 0 {
		t.Fatalf("steady-state runSlot allocates %.2f allocs/op, want 0", avg)
	}
}

// TestAllocatedMapBounded pins the allocation-record purge: a session that
// never ACKs (dead display path) must not grow its slot->allocation join
// map without bound.
func TestAllocatedMapBounded(t *testing.T) {
	cfg := DefaultConfig(core.NewWarmAllocator())
	cfg.SlotWorkers = 1
	srv := stoppedServer(t, cfg)
	sess := bareSession(srv, 1, vrmath.Pose{Pos: vrmath.Vec3{X: 1, Z: 1}}, 1)
	sessions := []*session{sess}
	for k := 0; k < 4*maxAllocRecords; k++ {
		srv.runSlot(uint32(k), sessions, cfg.BudgetMbps)
	}
	sess.mu.Lock()
	n := len(sess.allocated)
	sess.mu.Unlock()
	if n > maxAllocRecords {
		t.Fatalf("allocated map grew to %d entries, want <= %d", n, maxAllocRecords)
	}
}

// dialQuiet is dialFake without t.Fatal, usable from churn goroutines.
func dialQuiet(srv *Server, user uint32) (*fakeClient, error) {
	udp, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	raw, err := net.Dial("tcp", srv.ControlAddr())
	if err != nil {
		udp.Close()
		return nil, err
	}
	ctrl := transport.NewConn(raw)
	if err := ctrl.Send(transport.Hello{
		User:         user,
		UDPAddr:      udp.LocalAddr().String(),
		RAMThreshold: 64,
	}); err != nil {
		ctrl.Close()
		udp.Close()
		return nil, err
	}
	return &fakeClient{udp: udp, ctrl: ctrl}, nil
}

// TestSlotLoopConcurrentChurnRace hammers the sharded slot loop with
// concurrent joins, departures and live handoffs while slots are being
// decided; run under -race it is the data-race gate of the worker pool,
// and the leak assertion gates pool shutdown via Drain/Close.
func TestSlotLoopConcurrentChurnRace(t *testing.T) {
	baseline := obs.LeakSnapshot()
	cfg := DefaultConfig(core.NewWarmAllocator())
	cfg.SlotDuration = 2 * time.Millisecond
	cfg.SlotWorkers = 4
	cfg.RetransmitOnNack = true
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var dialErrs atomic.Int32

	// Churners: short-lived sessions joining and leaving mid-slot.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				user := uint32(100*w + i%4 + 1)
				fc, err := dialQuiet(srv, user)
				if err != nil {
					dialErrs.Add(1)
					return
				}
				pose := vrmath.Pose{
					Pos: vrmath.Vec3{X: float64(user), Z: float64(i % 5)},
					Yaw: float64((i * 11) % 360),
				}
				fc.ctrl.Send(transport.PoseUpdate{User: user, Slot: uint32(i), Pose: pose})
				time.Sleep(4 * time.Millisecond)
				fc.close()
			}
		}(w)
	}

	// Handoff worker: exports, adopts and redials one user in a loop while
	// the slot loop keeps deciding.
	wg.Add(1)
	go func() {
		defer wg.Done()
		const user = 999
		fc, err := dialQuiet(srv, user)
		if err != nil {
			dialErrs.Add(1)
			return
		}
		fc.ctrl.Send(transport.PoseUpdate{User: user, Slot: 0, Pose: vrmath.Pose{Pos: vrmath.Vec3{X: 9, Z: 9}}})
		for i := 0; ; i++ {
			select {
			case <-stop:
				fc.close()
				return
			default:
			}
			st, err := srv.ExportSession(user)
			if err != nil {
				time.Sleep(2 * time.Millisecond)
				continue
			}
			if err := srv.AdoptSession(st); err != nil {
				fc.close()
				return
			}
			srv.ReleaseSession(user)
			fc.close()
			fc, err = dialQuiet(srv, user)
			if err != nil {
				dialErrs.Add(1)
				return
			}
			fc.ctrl.Send(transport.PoseUpdate{User: user, Slot: uint32(i), Pose: vrmath.Pose{Pos: vrmath.Vec3{X: 9, Z: 9}}})
			time.Sleep(3 * time.Millisecond)
		}
	}()

	time.Sleep(600 * time.Millisecond)
	close(stop)
	wg.Wait()
	if n := dialErrs.Load(); n > 0 {
		t.Logf("%d churn dials failed (acceptable under load)", n)
	}

	if !srv.Drain(5 * time.Second) {
		t.Error("drain did not flush all send queues")
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	obs.AssertNoLeaks(t, baseline)
}
