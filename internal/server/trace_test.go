package server

import (
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/motion"
	"repro/internal/netem"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/transport"
)

// TestTraceStitchingUnderNackRetry runs a real client against a lossy server
// with NACK retransmission on, server and client sharing one tracer, and
// checks the issue's propagation contract: the trace survives the NACK
// retransmission path (a tx.retry span with a recorded retry count in the
// same trace as the original request), and server and client halves stitch
// into one trace.
func TestTraceStitchingUnderNackRetry(t *testing.T) {
	const epoch = 7
	tracer := trace.New(trace.Options{Exporter: trace.NewExporter(trace.ExporterOptions{RingSize: 1 << 15})})

	cfg := DefaultConfig(core.DVGreedy{})
	cfg.SlotDuration = 5 * time.Millisecond
	cfg.BudgetMbps = 300
	cfg.RetransmitOnNack = true
	cfg.Tracer = tracer
	cfg.TraceEpoch = epoch
	cfg.ShaperFor = func(user uint32) transport.Shaper {
		return lossyShaper{netem.NewLossModel(0.25, int64(user)+1)}
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ccfg := client.DefaultConfig(3, srv.ControlAddr(),
		motion.Generate(motion.Scenes()[0], 3, 400, 200, 7))
	ccfg.SlotDuration = cfg.SlotDuration
	ccfg.Slots = 150
	ccfg.NackLost = true
	ccfg.Tracer = tracer
	res, err := client.Run(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Nacks == 0 {
		t.Fatal("no NACKs under 25% loss; retry path unexercised")
	}
	// Give the final in-flight NACK retransmissions a moment to land.
	time.Sleep(100 * time.Millisecond)

	spans := tracer.Exporter().Recent(1 << 15)
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	serverSides := make(map[uint64]bool)
	clientSides := make(map[uint64]bool)
	retrySpans := 0
	for _, sp := range spans {
		// Every server span's trace ID must be re-derivable from its
		// (user, slot): that is what lets both halves compute it
		// independently. (Client spans can legitimately carry an older
		// slot's trace when the slot's first packet was a retransmission.)
		if sp.Side == trace.SideServer {
			if want := trace.TileTraceID(epoch, sp.User, sp.Slot); sp.Trace != want {
				t.Fatalf("span %s user=%d slot=%d trace=%x, want %x",
					sp.Stage, sp.User, sp.Slot, sp.Trace, want)
			}
		}
		switch sp.Side {
		case trace.SideServer:
			serverSides[sp.Trace] = true
		case trace.SideClient:
			clientSides[sp.Trace] = true
		}
		if sp.Stage == trace.StageRetry {
			retrySpans++
			if sp.Retry < 1 {
				t.Errorf("retry span with retry count %d", sp.Retry)
			}
			if sp.Trace != trace.TileTraceID(epoch, sp.User, sp.Slot) {
				t.Errorf("retry span lost its original trace: %+v", sp)
			}
		}
	}
	if retrySpans == 0 {
		t.Error("no tx.retry spans despite NACK retransmissions")
	}
	stitched := 0
	for id := range serverSides {
		if clientSides[id] {
			stitched++
		}
	}
	if stitched == 0 {
		t.Fatalf("no stitched traces: %d server-side, %d client-side", len(serverSides), len(clientSides))
	}

	// The analysis layer agrees: stage stats exist for both halves.
	a := trace.Analyze(spans, 3)
	if a.Stitched == 0 || a.Retried == 0 {
		t.Errorf("analysis: stitched=%d retried=%d", a.Stitched, a.Retried)
	}
}

// TestTraceSurvivesReconnectSupersede reconnects a client under the same
// user ID (superseding the live session) and checks trace IDs remain the
// deterministic (epoch, user, slot) derivation across both sessions — no
// per-connection state means a reconnect cannot fork the trace space.
func TestTraceSurvivesReconnectSupersede(t *testing.T) {
	const epoch = 11
	tracer := trace.New(trace.Options{Exporter: trace.NewExporter(trace.ExporterOptions{RingSize: 1 << 14})})

	cfg := DefaultConfig(core.DVGreedy{})
	cfg.SlotDuration = 5 * time.Millisecond
	cfg.BudgetMbps = 300
	cfg.Tracer = tracer
	cfg.TraceEpoch = epoch
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	tr := motion.Generate(motion.Scenes()[0], 5, 400, 200, 7)
	for i := 0; i < 2; i++ { // second run supersedes the first ID
		ccfg := client.DefaultConfig(5, srv.ControlAddr(), tr)
		ccfg.SlotDuration = cfg.SlotDuration
		ccfg.Slots = 60
		ccfg.Tracer = tracer
		if _, err := client.Run(ccfg); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}

	spans := tracer.Exporter().Recent(1 << 14)
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	sawServer, sawClient := false, false
	for _, sp := range spans {
		if sp.User != 5 {
			t.Fatalf("span for unexpected user: %+v", sp)
		}
		if want := trace.TileTraceID(epoch, sp.User, sp.Slot); sp.Trace != want {
			t.Fatalf("span %s slot=%d trace=%x, want %x (derivation broke across reconnect)",
				sp.Stage, sp.Slot, sp.Trace, want)
		}
		switch sp.Side {
		case trace.SideServer:
			sawServer = true
		case trace.SideClient:
			sawClient = true
		}
	}
	if !sawServer || !sawClient {
		t.Fatalf("missing a side across reconnect: server=%v client=%v", sawServer, sawClient)
	}
}

// TestSLOUnderInjectedLoss drives a session into deadline misses via netem
// loss injection and checks the SLO monitor reports burn-rate trouble — the
// acceptance scenario behind /debug/slo.
func TestSLOUnderInjectedLoss(t *testing.T) {
	reg := obs.NewRegistry()
	slo := obs.NewSLOMonitor(obs.SLOConfig{WindowSlots: 100, ShortWindowSlots: 20}, reg)

	cfg := DefaultConfig(core.DVGreedy{})
	cfg.SlotDuration = 5 * time.Millisecond
	cfg.BudgetMbps = 300
	cfg.Metrics = reg
	cfg.SLO = slo
	// Heavy loss, no NACK recovery: most frames arrive incomplete and the
	// decoder has nothing fresh to show, so deadline misses accumulate.
	cfg.ShaperFor = func(user uint32) transport.Shaper {
		return lossyShaper{netem.NewLossModel(0.75, 3)}
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ccfg := client.DefaultConfig(8, srv.ControlAddr(),
		motion.Generate(motion.Scenes()[0], 8, 400, 200, 7))
	ccfg.SlotDuration = cfg.SlotDuration
	ccfg.Slots = 200
	if _, err := client.Run(ccfg); err != nil {
		t.Fatal(err)
	}

	// The session has left by now, but state/gauges were updated while its
	// ACKs flowed; transitions are counted cumulatively.
	warn := reg.Counter("collabvr_slo_warn_transitions_total").Value()
	page := reg.Counter("collabvr_slo_page_transitions_total").Value()
	if warn == 0 && page == 0 {
		t.Fatalf("75%% loss produced no SLO transitions (warn=%d page=%d)", warn, page)
	}
}
