package server

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/estimate"
	"repro/internal/obs"
	"repro/internal/tiles"
	"repro/internal/transport"
	"repro/internal/vrmath"
)

// panickyAllocator crashes on one specific Allocate call, standing in for an
// allocator bug on a pathological input.
type panickyAllocator struct {
	inner   core.Allocator
	calls   atomic.Int32
	panicOn int32
}

func (p *panickyAllocator) Name() string { return "panicky" }

func (p *panickyAllocator) Allocate(params core.Params, prob *core.SlotProblem) core.Allocation {
	if p.calls.Add(1) == p.panicOn {
		panic("injected allocator crash")
	}
	return p.inner.Allocate(params, prob)
}

// TestServerDrainFlushesAndExitsClean: Drain stops accepts and the slot
// clock, flushes in-flight send queues, notifies clients, and leaves no
// goroutine behind after the follow-up Close — the SIGTERM contract.
func TestServerDrainFlushesAndExitsClean(t *testing.T) {
	base := obs.LeakSnapshot()
	cfg := DefaultConfig(core.DVGreedy{})
	cfg.SlotDuration = 5 * time.Millisecond
	cfg.Metrics = obs.NewRegistry()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	f1 := dialFake(t, srv, 1)
	defer f1.close()
	f2 := dialFake(t, srv, 2)
	defer f2.close()
	waitFor(t, "sessions admitted", func() bool { return sessionCount(srv) == 2 })
	pose := vrmath.Pose{Pos: vrmath.Vec3{X: 1, Z: 1}, Yaw: 30}
	f1.ctrl.Send(transport.PoseUpdate{User: 1, Slot: 0, Pose: pose})
	f2.ctrl.Send(transport.PoseUpdate{User: 2, Slot: 0, Pose: pose})
	if pkts := f1.drainPackets(200 * time.Millisecond); len(pkts) == 0 {
		t.Fatal("no tile traffic before drain")
	}

	if !srv.Drain(2 * time.Second) {
		t.Error("drain did not flush within its deadline")
	}
	// Drained clients must observe the shutdown on their control channel.
	f1.ctrl.SetDeadline(time.Now().Add(2 * time.Second))
	for {
		if _, err := f1.ctrl.Recv(); err != nil {
			break
		}
	}
	// A second Drain is a no-op, and Close after Drain releases everything.
	if !srv.Drain(time.Second) {
		t.Error("repeated drain should succeed trivially")
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("close after drain: %v", err)
	}
	obs.AssertNoLeaks(t, base)
}

// TestServerPanicRecoveryIsolatesSlot: a panicking allocator costs one slot,
// not the server. The panic is recovered, counted, logged with the flight
// recorder's context, and the pipeline keeps serving subsequent slots.
func TestServerPanicRecoveryIsolatesSlot(t *testing.T) {
	base := obs.LeakSnapshot()
	alloc := &panickyAllocator{inner: core.DVGreedy{}, panicOn: 3}
	cfg := DefaultConfig(alloc)
	cfg.SlotDuration = 5 * time.Millisecond
	cfg.Metrics = obs.NewRegistry()
	cfg.Recorder = obs.NewRecorder(obs.RecorderOptions{RingSize: 16})
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	fc := dialFake(t, srv, 1)
	defer fc.close()
	waitFor(t, "session admitted", func() bool { return sessionCount(srv) == 1 })
	pose := vrmath.Pose{Pos: vrmath.Vec3{X: 1, Z: 1}, Yaw: 30}
	fc.ctrl.Send(transport.PoseUpdate{User: 1, Slot: 0, Pose: pose})

	waitFor(t, "panic recovered", func() bool {
		return cfg.Metrics.Counter("collabvr_server_panics_recovered_total").Value() >= 1
	})
	// The pipeline must keep deciding after the crash slot.
	after := alloc.calls.Load()
	waitFor(t, "slots after the panic", func() bool { return alloc.calls.Load() > after+3 })
	if pkts := fc.drainPackets(200 * time.Millisecond); len(pkts) == 0 {
		t.Error("no tile traffic after recovered panic")
	}
	if n := sessionCount(srv); n != 1 {
		t.Errorf("session count after panic = %d, want 1", n)
	}

	srv.Drain(2 * time.Second)
	srv.Close()
	obs.AssertNoLeaks(t, base)
}

// TestHandleNackRetryPolicy: with a retry policy configured, repeated NACKs
// of the same tile back off (notBefore stamped) and eventually abandon,
// surfacing in the abandoned-tiles counter instead of retrying forever.
func TestHandleNackRetryPolicy(t *testing.T) {
	cfg := DefaultConfig(core.DVGreedy{})
	cfg.RetransmitOnNack = true
	cfg.Metrics = obs.NewRegistry()
	cfg.RetryPolicy = transport.RetryPolicy{
		Base: time.Millisecond, Cap: 4 * time.Millisecond,
		MaxAttempts: 2, Budget: time.Minute,
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	sess := &session{
		ema:        estimate.NewEMA(0.2),
		ledger:     tiles.NewDeliveryLedger(),
		allocated:  map[uint32]allocRecord{},
		retries:    map[tiles.VideoID]uint8{},
		retryFirst: map[tiles.VideoID]time.Time{},
		rng:        rand.New(rand.NewSource(1)),
		sendCh:     make(chan []tileJob, 4),
		sendDone:   make(chan struct{}),
	}
	lost, err := tiles.PackVideoID(tiles.CellID{X: 2}, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	nack := transport.Nack{User: 1, Slot: 9, Tiles: []tiles.VideoID{lost}}

	for attempt := 0; attempt < 2; attempt++ {
		srv.handleNack(sess, nack)
		select {
		case batch := <-sess.sendCh:
			if batch[0].notBefore.IsZero() {
				t.Fatalf("attempt %d: retransmission without a backoff deadline", attempt)
			}
			if got := int(batch[0].retry); got != attempt+1 {
				t.Fatalf("attempt %d: retry counter = %d, want %d", attempt, got, attempt+1)
			}
		default:
			t.Fatalf("attempt %d: nothing enqueued", attempt)
		}
	}
	// Third NACK exceeds MaxAttempts: abandoned, nothing enqueued.
	srv.handleNack(sess, nack)
	select {
	case batch := <-sess.sendCh:
		t.Fatalf("tile retried past its budget: %v", batch)
	default:
	}
	if got := cfg.Metrics.Counter("collabvr_server_retry_abandoned_tiles_total").Value(); got != 1 {
		t.Errorf("retry_abandoned_tiles_total = %d, want 1", got)
	}
	// Abandonment cleared the retry state, so a fresh NACK starts over.
	srv.handleNack(sess, nack)
	select {
	case batch := <-sess.sendCh:
		if got := int(batch[0].retry); got != 1 {
			t.Errorf("post-abandon retry counter = %d, want 1 (state reset)", got)
		}
	default:
		t.Fatal("post-abandon NACK not retried afresh")
	}
}

// TestRetireSessionIdempotent: the panic-recovery paths and the normal
// control-loop exit can both retire the same session; the active gauge must
// move exactly once.
func TestRetireSessionIdempotent(t *testing.T) {
	cfg := DefaultConfig(core.DVGreedy{})
	cfg.SlotDuration = 5 * time.Millisecond
	cfg.Metrics = obs.NewRegistry()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	fc := dialFake(t, srv, 9)
	defer fc.close()
	waitFor(t, "session admitted", func() bool { return sessionCount(srv) == 1 })
	srv.mu.Lock()
	sess := srv.sessions[9]
	srv.mu.Unlock()

	srv.retireSession(sess)
	srv.retireSession(sess)
	// The control loop's own retirement (triggered by the closed conn)
	// must not decrement again either.
	waitFor(t, "gauge settled", func() bool {
		return cfg.Metrics.Counter("collabvr_server_sessions_left_total").Value() >= 1
	})
	time.Sleep(20 * time.Millisecond)
	if got := cfg.Metrics.Gauge("collabvr_server_sessions_active").Value(); got != 0 {
		t.Errorf("sessions_active = %v, want 0 after redundant retires", got)
	}
	if got := cfg.Metrics.Counter("collabvr_server_sessions_left_total").Value(); got != 1 {
		t.Errorf("sessions_left_total = %d, want 1", got)
	}
}
