package server

import (
	"testing"

	"repro/internal/core"
	"repro/internal/estimate"
	"repro/internal/tiles"
	"repro/internal/transport"
)

// TestCapEstimateMaxFilter verifies the windowed-max capacity estimator:
// goodput samples below the link rate (non-saturating trains) must not drag
// the estimate down; only the window maximum counts.
func TestCapEstimateMaxFilter(t *testing.T) {
	cfg := DefaultConfig(core.DVGreedy{})
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	sess := &session{
		ema:       estimate.NewEMA(0.2),
		ledger:    tiles.NewDeliveryLedger(),
		allocated: map[uint32]allocRecord{},
	}
	// No samples: fall back to the configured initial estimate.
	if got := sess.capEstimateLocked(30); got != 30 {
		t.Errorf("fallback estimate = %v, want 30", got)
	}

	// Mixed goodput samples: many small, one near the true rate.
	feed := func(slot uint32, bytes int, delayMs float64) {
		sess.allocated[slot] = allocRecord{level: 3, rate: 20}
		srv.handleACK(sess, transport.TileACK{
			User: 1, Slot: slot, Bytes: bytes, DelayMs: delayMs, Covered: true,
		})
	}
	feed(1, 10000, 8) // 10 Mbps
	feed(2, 12000, 8) // 12 Mbps
	feed(3, 50000, 8) // 50 Mbps — a saturating train
	feed(4, 9000, 8)  // 9 Mbps

	sess.mu.Lock()
	got := sess.capEstimateLocked(30)
	sess.mu.Unlock()
	if got < 45 || got > 55 {
		t.Errorf("max-filter estimate = %v, want about 50", got)
	}
}

// TestCapEstimateWindowEvicts: once the window rolls past a stale high
// sample, the estimate adapts downward — capacity drops are eventually
// noticed.
func TestCapEstimateWindowEvicts(t *testing.T) {
	cfg := DefaultConfig(core.DVGreedy{})
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	sess := &session{
		ema:       estimate.NewEMA(0.2),
		ledger:    tiles.NewDeliveryLedger(),
		allocated: map[uint32]allocRecord{},
	}
	feed := func(slot uint32, mbps float64) {
		sess.allocated[slot] = allocRecord{level: 3, rate: 20}
		// bytes over 10 ms giving the desired Mbps.
		bytes := int(mbps * 1e6 / 8 * 0.010)
		srv.handleACK(sess, transport.TileACK{
			User: 1, Slot: slot, Bytes: bytes, DelayMs: 10, Covered: true,
		})
	}
	feed(0, 60)
	for s := uint32(1); s <= capWindow+5; s++ {
		feed(s, 20)
	}
	sess.mu.Lock()
	got := sess.capEstimateLocked(30)
	sess.mu.Unlock()
	if got > 25 {
		t.Errorf("estimate = %v, want the stale 60 Mbps sample evicted (~20)", got)
	}
}
