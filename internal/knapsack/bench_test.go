package knapsack

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchLadderProblem builds a representative per-slot instance: the
// Fibonacci-ish rate ladder of the content size model, concave values, a
// per-item cap drawn around the ladder's midpoint, and a shared budget of
// 36 Mbps per user (the paper's provisioning).
func benchLadderProblem(rng *rand.Rand, n int) *Problem {
	ladder := []float64{8, 13, 21, 34, 55, 89}
	items := make([]Item, n)
	for i := range items {
		scale := 0.6 + rng.Float64()
		values := make([]float64, len(ladder))
		weights := make([]float64, len(ladder))
		dv := 1 + rng.Float64()*2
		v := 0.0
		for l := range ladder {
			v += dv
			dv *= 0.5 + rng.Float64()*0.4
			values[l] = v
			weights[l] = ladder[l] * scale
		}
		items[i] = Item{Values: values, Weights: weights, Cap: 20 + rng.Float64()*80}
	}
	return &Problem{Items: items, Budget: 36 * float64(n)}
}

// BenchmarkSolveHeap measures the steady-state heap solver per slot solve;
// allocs/op must be 0 at every size.
func BenchmarkSolveHeap(b *testing.B) {
	for _, n := range []int{5, 30, 200, 1000} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			p := benchLadderProblem(rand.New(rand.NewSource(int64(n))), n)
			var s Solver
			s.Combined(p) // warm scratch
			b.ReportAllocs()
			b.ResetTimer()
			var value float64
			for i := 0; i < b.N; i++ {
				value = s.Combined(p).Value
			}
			b.ReportMetric(value, "objective")
		})
	}
}

// BenchmarkSolveHeapCounterfactual measures the traced heap solver with
// top-K alternative capture on and off at each size. The acceptance gate is
// K=3 at N=1000: capture must stay within 10% of the capture-off traced
// solve, and both must report 0 allocs/op.
func BenchmarkSolveHeapCounterfactual(b *testing.B) {
	for _, n := range []int{30, 1000} {
		for _, k := range []int{0, 3} {
			b.Run(fmt.Sprintf("N=%d/K=%d", n, k), func(b *testing.B) {
				p := benchLadderProblem(rand.New(rand.NewSource(int64(n))), n)
				var s Solver
				var tr CombinedTrace
				tr.Density.TopK, tr.Value.TopK = k, k
				s.CombinedTraced(p, &tr) // warm scratch
				b.ReportAllocs()
				b.ResetTimer()
				var value float64
				for i := 0; i < b.N; i++ {
					tr.Density.Rejections = tr.Density.Rejections[:0]
					tr.Value.Rejections = tr.Value.Rejections[:0]
					value = s.CombinedTraced(p, &tr).Value
				}
				b.ReportMetric(value, "objective")
			})
		}
	}
}

// BenchmarkSolveReference measures the original rescan engine on the same
// instances — the baseline the heap rewrite is judged against.
func BenchmarkSolveReference(b *testing.B) {
	for _, n := range []int{5, 30, 200, 1000} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			p := benchLadderProblem(rand.New(rand.NewSource(int64(n))), n)
			b.ReportAllocs()
			b.ResetTimer()
			var value float64
			for i := 0; i < b.N; i++ {
				value = p.ReferenceCombined().Value
			}
			b.ReportMetric(value, "objective")
		})
	}
}

// BenchmarkSolveBatch measures batched throughput over independent
// instances — the loadgen's hundreds-of-sessions regime.
func BenchmarkSolveBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(99))
	problems := make([]*Problem, 256)
	for i := range problems {
		problems[i] = benchLadderProblem(rng, 30)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SolveBatch(problems, 0)
	}
	b.ReportMetric(float64(len(problems)), "solves/op")
}
