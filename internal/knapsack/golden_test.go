package knapsack

// The golden differential corpus: 100 seeded problems whose solutions and
// decision traces were recorded from the ORIGINAL rescan greedy (the
// Reference* engine) into testdata/golden_greedy.json. The test replays
// every case through the heap Solver and diffs levels, value, weight and
// trace records bit-for-bit, and re-runs the reference engine to guard the
// recording itself against drift.
//
// Regenerate (only when the algorithm is intentionally changed) with:
//
//	go test ./internal/knapsack -run TestGoldenCorpus -update-golden

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false,
	"regenerate testdata/golden_greedy.json from the reference engine")

const goldenPath = "testdata/golden_greedy.json"
const goldenCases = 100

type goldenRejection struct {
	Item   int    `json:"item"`
	Level  int    `json:"level"`
	Reason string `json:"reason"`
}

type goldenPass struct {
	Levels     []int             `json:"levels"`
	Value      float64           `json:"value"`
	Weight     float64           `json:"weight"`
	Upgrades   int               `json:"upgrades"`
	Rejections []goldenRejection `json:"rejections,omitempty"`
}

type goldenItem struct {
	Values  []float64 `json:"values"`
	Weights []float64 `json:"weights"`
	Cap     float64   `json:"cap"`
}

type goldenCase struct {
	Name    string       `json:"name"`
	Budget  float64      `json:"budget"`
	Items   []goldenItem `json:"items"`
	Density goldenPass   `json:"density"`
	Value   goldenPass   `json:"value"`
	Picked  string       `json:"picked"`
	// Combined duplicates the picked pass's solution for direct diffing.
	Combined goldenPass `json:"combined"`
}

type goldenFile struct {
	Comment string       `json:"comment"`
	Cases   []goldenCase `json:"cases"`
}

func goldenProblem(c *goldenCase) *Problem {
	items := make([]Item, len(c.Items))
	for i, it := range c.Items {
		items[i] = Item{Values: it.Values, Weights: it.Weights, Cap: it.Cap}
	}
	return &Problem{Items: items, Budget: c.Budget}
}

func toGoldenPass(sol Solution, tr PassTrace) goldenPass {
	gp := goldenPass{
		Levels:   append([]int(nil), sol.Levels...),
		Value:    sol.Value,
		Weight:   sol.Weight,
		Upgrades: tr.Upgrades,
	}
	for _, rej := range tr.Rejections {
		gp.Rejections = append(gp.Rejections,
			goldenRejection{Item: rej.Item, Level: rej.Level, Reason: rej.Reason.String()})
	}
	return gp
}

// goldenGenerate draws the corpus problems: a deterministic mix of every
// shape family plus handcrafted degenerate cases.
func goldenGenerate() []*Problem {
	rng := rand.New(rand.NewSource(20260805))
	problems := make([]*Problem, 0, goldenCases)
	shapes := allShapes()
	for i := 0; len(problems) < goldenCases-4; i++ {
		problems = append(problems, shapes[i%len(shapes)].gen(rng))
	}
	// Degenerate corners: zero budget, single item, single level, flat
	// weights (the dw == 0 priority path).
	zero := paperCase2()
	zero.Budget = 0
	problems = append(problems,
		zero,
		&Problem{Budget: 5, Items: []Item{{
			Values: []float64{1, 2, 3, 4, 5, 6, 7, 8}, Weights: []float64{0, 1, 2, 3, 4, 5, 6, 7}, Cap: 4,
		}}},
		&Problem{Budget: 3, Items: []Item{
			{Values: []float64{2}, Weights: []float64{1}, Cap: 1},
			{Values: []float64{1, 3}, Weights: []float64{1, 1}, Cap: 5},
		}},
		&Problem{Budget: 10, Items: []Item{
			{Values: []float64{0, 4, 4, 5}, Weights: []float64{2, 2, 2, 2}, Cap: 3},
			{Values: []float64{0, -1}, Weights: []float64{0, 0}, Cap: 3},
		}},
	)
	return problems
}

func equalGoldenPass(t *testing.T, name, pass string, want goldenPass, sol Solution, tr PassTrace) {
	t.Helper()
	if len(want.Levels) != len(sol.Levels) {
		t.Fatalf("%s/%s: %d levels, corpus has %d", name, pass, len(sol.Levels), len(want.Levels))
	}
	for i := range want.Levels {
		if want.Levels[i] != sol.Levels[i] {
			t.Fatalf("%s/%s: levels %v differ from corpus %v", name, pass, sol.Levels, want.Levels)
		}
	}
	if math.Float64bits(want.Value) != math.Float64bits(sol.Value) {
		t.Fatalf("%s/%s: value %v (bits %x) differs from corpus %v (bits %x)",
			name, pass, sol.Value, math.Float64bits(sol.Value), want.Value, math.Float64bits(want.Value))
	}
	if math.Float64bits(want.Weight) != math.Float64bits(sol.Weight) {
		t.Fatalf("%s/%s: weight %v differs from corpus %v", name, pass, sol.Weight, want.Weight)
	}
	if want.Upgrades != tr.Upgrades {
		t.Fatalf("%s/%s: %d upgrades, corpus has %d", name, pass, tr.Upgrades, want.Upgrades)
	}
	if len(want.Rejections) != len(tr.Rejections) {
		t.Fatalf("%s/%s: rejections %+v differ from corpus %+v", name, pass, tr.Rejections, want.Rejections)
	}
	for i, rej := range tr.Rejections {
		got := goldenRejection{Item: rej.Item, Level: rej.Level, Reason: rej.Reason.String()}
		if got != want.Rejections[i] {
			t.Fatalf("%s/%s: rejection %d: %+v differs from corpus %+v", name, pass, i, got, want.Rejections[i])
		}
	}
}

func TestGoldenCorpus(t *testing.T) {
	if *updateGolden {
		file := goldenFile{
			Comment: "Recorded solutions and traces of the original rescan greedy " +
				"(ReferenceDensityGreedy/ReferenceValueGreedy/ReferenceCombined); " +
				"regenerate with: go test ./internal/knapsack -run TestGoldenCorpus -update-golden",
		}
		for i, p := range goldenGenerate() {
			c := goldenCase{Name: fmt.Sprintf("case-%03d", i), Budget: p.Budget}
			for _, it := range p.Items {
				c.Items = append(c.Items, goldenItem{Values: it.Values, Weights: it.Weights, Cap: it.Cap})
			}
			var dtr, vtr PassTrace
			d := p.ReferenceDensityGreedyTraced(&dtr)
			v := p.ReferenceValueGreedyTraced(&vtr)
			c.Density = toGoldenPass(d, dtr)
			c.Value = toGoldenPass(v, vtr)
			var ctr CombinedTrace
			comb := p.ReferenceCombinedTraced(&ctr)
			c.Picked = ctr.Picked.String()
			picked := ctr.Density
			if ctr.Picked == BranchValue {
				picked = ctr.Value
			}
			c.Combined = toGoldenPass(comb, picked)
			file.Cases = append(file.Cases, c)
		}
		raw, err := json.MarshalIndent(&file, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d cases to %s", len(file.Cases), goldenPath)
		return
	}

	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden corpus (regenerate with -update-golden): %v", err)
	}
	var file goldenFile
	if err := json.Unmarshal(raw, &file); err != nil {
		t.Fatalf("parse golden corpus: %v", err)
	}
	if len(file.Cases) != goldenCases {
		t.Fatalf("corpus has %d cases, want %d", len(file.Cases), goldenCases)
	}

	var s Solver
	for i := range file.Cases {
		c := &file.Cases[i]
		p := goldenProblem(c)

		// The heap solver must reproduce the recorded legacy decisions.
		var dtr, vtr PassTrace
		equalGoldenPass(t, c.Name, "solver-density", c.Density, s.DensityGreedyTraced(p, &dtr), dtr)
		equalGoldenPass(t, c.Name, "solver-value", c.Value, s.ValueGreedyTraced(p, &vtr), vtr)
		var ctr CombinedTrace
		comb := s.CombinedTraced(p, &ctr)
		if ctr.Picked.String() != c.Picked {
			t.Fatalf("%s: solver picked %q, corpus has %q", c.Name, ctr.Picked.String(), c.Picked)
		}
		picked := ctr.Density
		if ctr.Picked == BranchValue {
			picked = ctr.Value
		}
		equalGoldenPass(t, c.Name, "solver-combined", c.Combined, comb, picked)

		// And the reference engine must still match its own recording.
		var rdtr, rvtr PassTrace
		equalGoldenPass(t, c.Name, "reference-density", c.Density, p.ReferenceDensityGreedyTraced(&rdtr), rdtr)
		equalGoldenPass(t, c.Name, "reference-value", c.Value, p.ReferenceValueGreedyTraced(&rvtr), rvtr)
	}
}
