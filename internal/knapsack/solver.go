package knapsack

// This file implements the fast path of Algorithm 1: an incremental,
// heap-based rewrite of the greedy passes. The reference scan in
// knapsack.go recomputes all N upgrade scores on every pick, i.e.
// O(N * picks) score evaluations per pass; the Solver keeps a max-heap of
// one pending upgrade per item, so each pick costs O(log N) and a full
// pass is O(N log N + picks * log N).
//
// The Solver is decision-for-decision identical to the reference scan:
// both rank candidates with upgradeScore and break ties with the rule in
// betterCandidate (equal score -> lower item index), both accept or
// reject an upgrade with the same quality_verification arithmetic in the
// same order, so values and weights accumulate through the identical
// sequence of float64 operations and the returned solutions (and traces)
// are bit-identical. The golden corpus and fuzz tests enforce this.

// heapEntry is one pending upgrade: the score of raising item from its
// current level to the next. An item has at most one live entry; entries
// are consumed on pop and re-pushed only after an accepted upgrade, so the
// heap never holds stale scores.
type heapEntry struct {
	score float64
	item  int32
}

// entryBefore orders the max-heap: higher score first, ties to the lower
// item index — the same total order betterCandidate gives the reference
// scan.
func entryBefore(a, b heapEntry) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	return a.item < b.item
}

func heapPush(h []heapEntry, e heapEntry) []heapEntry {
	h = append(h, e)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !entryBefore(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	return h
}

func heapPop(h []heapEntry) (heapEntry, []heapEntry) {
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	siftDown(h, 0)
	return top, h
}

// siftDown restores the heap property below index i.
func siftDown(h []heapEntry, i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		c := l
		if r := l + 1; r < len(h) && entryBefore(h[r], h[l]) {
			c = r
		}
		if !entryBefore(h[c], h[i]) {
			return
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
}

// heapify builds a valid max-heap in place (Floyd's O(n) algorithm). Because
// entryBefore is a strict total order over distinct items, the pop sequence
// of any valid heap over the same entry set is identical — so a heap built
// here pops bit-identically to one grown by successive heapPush calls.
func heapify(h []heapEntry) {
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(h, i)
	}
}

// Solver runs the greedy passes of Algorithm 1 with reusable scratch
// buffers: once its buffers have grown to the problem size, a solve
// performs zero heap allocations (the steady-state regime of a per-slot
// allocator deciding 60 slots per second).
//
// The Levels slice of a returned Solution aliases solver-owned scratch and
// is only valid until the next call on the same Solver; use
// Solution.Clone to detach it. A Solver is not safe for concurrent use;
// use one per goroutine (SolveBatch does exactly that).
//
// The zero value is ready to use.
type Solver struct {
	heap []heapEntry
	bufD []int // density-pass levels (also Combined's density branch)
	bufV []int // value-pass levels (also Combined's value branch)
}

// run executes one greedy pass over p, storing levels in *buf (grown as
// needed and written back). It mirrors Problem.referenceGreedy exactly;
// see the file comment for the equivalence argument.
func (s *Solver) run(p *Problem, kind greedyKind, buf *[]int, tr *PassTrace) Solution {
	n := len(p.Items)
	if tr != nil && tr.TopK > 0 {
		tr.Alternatives = tr.Alternatives[:0]
	}
	levels := (*buf)[:0]
	var value, weight float64
	for i := 0; i < n; i++ {
		levels = append(levels, 1)
		value += p.Items[i].Values[0]
		weight += p.Items[i].Weights[0]
	}
	*buf = levels

	h := s.heap[:0]
	for i := 0; i < n; i++ {
		it := &p.Items[i]
		if it.Levels() > 1 {
			h = heapPush(h, heapEntry{score: upgradeScore(it, 1, kind), item: int32(i)})
		}
	}
	sol, rest := popLoop(p, kind, levels, value, weight, h, tr, nil)
	s.heap = rest
	return sol
}

// popLoop is the greedy pop loop of Algorithm 1 over an already-built heap
// state, shared by Solver.run (entered from the all-base assignment) and by
// the WarmSolver (entered mid-pass, after replaying the previous slot's
// pick log). rec, when non-nil, records one pickEvent per nonnegative pop —
// the pick log a later warm-started solve replays. It returns the finished
// solution and the heap scratch for reuse.
func popLoop(p *Problem, kind greedyKind, levels []int, value, weight float64,
	h []heapEntry, tr *PassTrace, rec *[]pickEvent) (Solution, []heapEntry) {
	capture := tr != nil && tr.TopK > 0
	for len(h) > 0 {
		var e heapEntry
		e, h = heapPop(h)
		if e.score < 0 {
			// "if eta < 0 then I = {}": the best remaining upgrade is
			// unprofitable, so every remaining one is too. For the
			// counterfactual record, the popped entry and everything still
			// pending are the upgrades the pass walked away from.
			if capture {
				old := levels[int(e.item)]
				it := &p.Items[int(e.item)]
				tr.Alternatives = insertTopK(tr.Alternatives, tr.TopK, Alternative{
					Item:   int(e.item),
					Level:  old + 1,
					Score:  e.score,
					Gain:   it.Values[old] - it.Values[old-1],
					Reason: RejectUnprofitable,
				})
				for _, f := range h {
					i := int(f.item)
					old := levels[i]
					it := &p.Items[i]
					tr.Alternatives = insertTopK(tr.Alternatives, tr.TopK, Alternative{
						Item:   i,
						Level:  old + 1,
						Score:  f.score,
						Gain:   it.Values[old] - it.Values[old-1],
						Reason: RejectUnprofitable,
					})
				}
			}
			break
		}
		i := int(e.item)
		it := &p.Items[i]
		old := levels[i]

		// Tentatively upgrade, then run quality_verification.
		dv := it.Values[old] - it.Values[old-1]
		dw := it.Weights[old] - it.Weights[old-1]
		levels[i] = old + 1
		value += dv
		weight += dw

		capViolated := it.Weights[old] > it.Cap
		if capViolated || weight > p.Budget {
			// Revert the upgrade and retire the item (no re-push).
			if tr != nil {
				reason := RejectBudget
				if capViolated {
					reason = RejectItemCap
				}
				tr.Rejections = append(tr.Rejections,
					Rejection{Item: i, Level: old + 1, Reason: reason})
				if capture {
					tr.Alternatives = insertTopK(tr.Alternatives, tr.TopK, Alternative{
						Item:   i,
						Level:  old + 1,
						Score:  e.score,
						Gain:   dv,
						Reason: reason,
					})
				}
			}
			levels[i] = old
			value -= dv
			weight -= dw
			if rec != nil {
				*rec = append(*rec, newPickEvent(e.item, false))
			}
			continue
		}
		if tr != nil {
			tr.Upgrades++
		}
		if rec != nil {
			*rec = append(*rec, newPickEvent(e.item, true))
		}
		if old+1 < it.Levels() {
			h = heapPush(h, heapEntry{score: upgradeScore(it, old+1, kind), item: e.item})
		}
	}
	return Solution{Levels: levels, Value: value, Weight: weight}, h
}

// DensityGreedy runs the density-greedy pass on solver scratch.
func (s *Solver) DensityGreedy(p *Problem) Solution { return s.run(p, byDensity, &s.bufD, nil) }

// DensityGreedyTraced is DensityGreedy with a decision trace (nil tr
// traces nothing).
func (s *Solver) DensityGreedyTraced(p *Problem, tr *PassTrace) Solution {
	return s.run(p, byDensity, &s.bufD, tr)
}

// ValueGreedy runs the value-greedy pass on solver scratch.
func (s *Solver) ValueGreedy(p *Problem) Solution { return s.run(p, byValue, &s.bufV, nil) }

// ValueGreedyTraced is ValueGreedy with a decision trace (nil tr traces
// nothing).
func (s *Solver) ValueGreedyTraced(p *Problem, tr *PassTrace) Solution {
	return s.run(p, byValue, &s.bufV, tr)
}

// Combined is Algorithm 1 on solver scratch: the better of the density and
// value passes.
func (s *Solver) Combined(p *Problem) Solution { return s.CombinedTraced(p, nil) }

// CombinedTraced is Combined with a decision trace: both passes are traced
// and Picked records which one was returned (nil tr traces nothing).
func (s *Solver) CombinedTraced(p *Problem, tr *CombinedTrace) Solution {
	var dtr, vtr *PassTrace
	if tr != nil {
		dtr, vtr = &tr.Density, &tr.Value
	}
	d := s.run(p, byDensity, &s.bufD, dtr)
	v := s.run(p, byValue, &s.bufV, vtr)
	if d.Value >= v.Value {
		if tr != nil {
			tr.Picked = BranchDensity
		}
		return d
	}
	if tr != nil {
		tr.Picked = BranchValue
	}
	return v
}
