package knapsack_test

import (
	"fmt"

	"repro/internal/knapsack"
)

// ExampleProblem_Combined solves the paper's first adversarial instance:
// the density-greedy pass alone would take the small dense item and earn 1,
// but the combined algorithm (Algorithm 1) returns the optimum 4.
func ExampleProblem_Combined() {
	p := &knapsack.Problem{
		Budget: 2.5,
		Items: []knapsack.Item{
			{Values: []float64{0, 1}, Weights: []float64{0, 0.5}, Cap: 100},
			{Values: []float64{0, 4}, Weights: []float64{0, 2.5}, Cap: 100},
		},
	}
	d := p.DensityGreedy()
	c := p.Combined()
	fmt.Printf("density-greedy: %.0f\n", d.Value)
	fmt.Printf("combined:       %.0f\n", c.Value)
	fmt.Printf("levels:         %v\n", c.Levels)
	// Output:
	// density-greedy: 1
	// combined:       4
	// levels:         [1 2]
}
