package knapsack

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// batchShard is how many problems a worker claims per cursor bump: large
// enough to amortize the atomic, small enough to keep the pool balanced
// when solve times vary (e.g. mixed 5-user and 1000-user instances).
const batchShard = 8

// SolveBatch solves many independent allocation problems with Algorithm 1
// across a worker pool and returns one Solution per problem, in order:
// out[i] is identical (bit-for-bit, including tie-breaks) to what
// problems[i].Combined() returns. This is the fan-out path for the
// loadgen's hundreds-of-sessions regime, where per-user subproblems
// decouple (separate budgets) and per-slot instances pile up faster than
// one core can drain them.
//
// Workers claim dynamic shards of the index space through an atomic
// cursor and each reuses a single Solver, so a batch performs O(workers)
// scratch allocations regardless of batch size. workers <= 0 uses
// GOMAXPROCS. Problems must be non-nil.
func SolveBatch(problems []*Problem, workers int) []Solution {
	out := make([]Solution, len(problems))
	if len(problems) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if max := (len(problems) + batchShard - 1) / batchShard; workers > max {
		workers = max
	}
	if workers == 1 {
		s := solverPool.Get().(*Solver)
		for i, p := range problems {
			out[i] = s.Combined(p).Clone()
		}
		solverPool.Put(s)
		return out
	}

	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := solverPool.Get().(*Solver)
			defer solverPool.Put(s)
			for {
				start := int(cursor.Add(batchShard)) - batchShard
				if start >= len(problems) {
					return
				}
				end := min(start+batchShard, len(problems))
				for i := start; i < end; i++ {
					out[i] = s.Combined(problems[i]).Clone()
				}
			}
		}()
	}
	wg.Wait()
	return out
}
