package knapsack

// Warm-started Algorithm 1. A per-slot allocator solves a sequence of
// problems where consecutive instances usually differ in only a few items
// (a handful of sessions' channel estimates moved) and possibly the budget.
// The WarmSolver exploits that: each solve records the pass's pick log (the
// exact sequence of heap pops and their accept/reject outcomes), and the
// next solve REPLAYS that log instead of re-running the heap from scratch —
// each replayed event is a couple of float64 compares instead of an
// O(log N) pop plus an eventual re-push.
//
// Bit-identity with the cold Solver is a hard contract (the golden corpus,
// the differential tests in warm_test.go and FuzzWarmGreedy enforce it).
// The replay therefore never *assumes* an outcome: every replayed event
// recomputes the upgrade score and re-runs the quality_verification
// arithmetic against the current problem.
//
// DIRTY items (those whose ladder changed since the snapshot) are the
// interesting case. Their logged events are stale — the perturbed scores
// put their pops at unknown positions — but the clean items' events are
// not: a clean item's upgrade score depends only on its own ladder and
// level, so as long as every replayed outcome matches the log, the clean
// events still pop in exactly their logged relative order. The warm pass
// therefore runs a MERGE: dirty items live in a small side heap (fresh
// scores, maintained with real pops and re-pushes), and before confirming
// each logged clean event it drains every dirty upgrade that entryBefore
// says would pop first. The merged sequence is the cold run's pop order
// reconstructed at O(1) per clean event plus O(log d) per dirty pop,
// d = dirty count.
//
// The replay aborts to a live heap run the moment the log stops being a
// faithful oracle of what a cold run would do: after an event whose
// accept/reject outcome flips (the budget moved, or a dirty item's op
// shifted the cumulative weight) — the applied op is still exactly what a
// cold run would do at that pop, but the remainder of the log describes a
// run that no longer exists.
//
// Going live is cheap: rebuild the heap over every still-upgradable item
// with Floyd's O(n) heapify and hand off to the same popLoop the cold pass
// uses. Because entryBefore is a strict total order, a valid heap over a
// given entry set pops in exactly one possible sequence — so the stitched
// run is bit-identical to a cold run of the current problem.
//
// Structural changes (item count, ladder shapes) and heavy perturbation
// (dirty fraction above MaxDirtyFrac) skip the replay entirely and run the
// cold path; the solve is then merely a log re-record, never a wrong answer.
//
// Caveat for callers whose lowered values drift globally every slot (e.g.
// core.ObjectiveTerms' (t-1)/t variance weight re-scales every item as T
// advances): every item is dirty every slot, so such sequences fall back
// cold and the WarmSolver degrades to the plain Solver plus a diff. The win
// lives where ladders are genuinely sparse-perturbed.

import "math"

// DefaultMaxDirtyFrac is the dirty-item fraction above which a warm solve
// falls back to the cold path. The merge-replay handles dirty items in a
// side heap, so its cost grows with the dirty count; past this fraction
// the side heap approaches the full heap and the replay bookkeeping is
// pure overhead on top of what is effectively a cold solve.
const DefaultMaxDirtyFrac = 0.25

// pickEvent is one entry of a pass's pick log: a nonnegative-score heap pop
// and whether quality_verification accepted it. Packed (item<<1)|accepted
// so a 10k-item log line stays a flat 4-byte array.
type pickEvent int32

func newPickEvent(item int32, accepted bool) pickEvent {
	e := pickEvent(item) << 1
	if accepted {
		e |= 1
	}
	return e
}

func (e pickEvent) item() int      { return int(e >> 1) }
func (e pickEvent) accepted() bool { return e&1 == 1 }

// WarmStats counts how the WarmSolver resolved its solves; read them via
// Stats to verify a workload actually warm-starts (and to report replay
// depth in BENCH_slotloop.json).
type WarmStats struct {
	Solves    int64 // total Combined/CombinedTraced calls
	Warm      int64 // solves that entered the replay path
	Cold      int64 // solves that ran the cold path (ColdStructural+ColdDirty)
	ColdInit  int64 // cold: no snapshot yet (first solve, or after Reset)
	ColdShape int64 // cold: item count or ladder shape changed
	ColdDirty int64 // cold: dirty fraction above MaxDirtyFrac
	Replayed  int64 // clean log events replayed across all warm solves (both passes)
	LivePops  int64 // dirty-item pops merged live into replays (both passes)
	Diverged  int64 // replays aborted by an accept/reject outcome flip
}

// WarmSolver is a Solver that warm-starts each solve from the previous
// one's pick log. It is bit-identical to Solver/Reference* on every
// problem; the previous solve only ever changes how fast the answer is
// reached, never the answer. Like Solver, returned Levels alias solver
// scratch (valid until the next call) and a WarmSolver is not safe for
// concurrent use.
//
// The zero value is ready to use (first solve runs cold and seeds the log).
type WarmSolver struct {
	// MaxDirtyFrac caps the fraction of items that may differ from the
	// previous problem before the solve falls back cold. 0 means
	// DefaultMaxDirtyFrac; negative disables warm starts entirely.
	MaxDirtyFrac float64

	heap    []heapEntry
	dheap   []heapEntry // dirty-item side heap of the merge-replay
	bufD    []int
	bufV    []int
	retired []bool

	// Snapshot of the previous problem's ladders (Float64bits so the diff
	// is an exact bit compare, immune to NaN and -0 surprises). Budget is
	// deliberately NOT snapshotted: a budget change alone replays fine —
	// the quality_verification re-check catches any outcome flip.
	snapValid   bool
	snapN       int
	snapLen     []int    // per-item ladder length
	snapCapBits []uint64 // per-item Cap bits
	snapVBits   []uint64 // flattened Values bits, item-major
	snapWBits   []uint64 // flattened Weights bits, same offsets

	// Pick logs from the previous solve (logD/logV) and scratch for the
	// ones being recorded (newLogD/newLogV); swapped after every solve.
	logD, logV       []pickEvent
	newLogD, newLogV []pickEvent

	dirty    []bool
	dirtyIdx []int

	stats WarmStats
}

// NewWarmSolver returns a WarmSolver with the default dirty-fraction cap.
func NewWarmSolver() *WarmSolver { return &WarmSolver{} }

// Stats returns a copy of the solve-resolution counters.
func (s *WarmSolver) Stats() WarmStats { return s.stats }

// Reset drops the snapshot and pick logs, forcing the next solve cold.
// Use it when the item<->index correspondence breaks (e.g. the session set
// was re-ordered): the diff only compares positionally.
func (s *WarmSolver) Reset() {
	s.snapValid = false
	s.logD = s.logD[:0]
	s.logV = s.logV[:0]
}

// Combined is Algorithm 1, warm-started: the better of the density and
// value passes, each replayed from the previous solve's pick log when the
// problem diff allows it.
func (s *WarmSolver) Combined(p *Problem) Solution { return s.CombinedTraced(p, nil) }

// CombinedTraced is Combined with a decision trace; traces are
// bit-identical to Solver.CombinedTraced (nil tr traces nothing).
func (s *WarmSolver) CombinedTraced(p *Problem, tr *CombinedTrace) Solution {
	s.stats.Solves++
	var dtr, vtr *PassTrace
	if tr != nil {
		dtr, vtr = &tr.Density, &tr.Value
	}
	var d, v Solution
	if s.diff(p) {
		s.stats.Warm++
		d = s.warmPass(p, byDensity, &s.bufD, s.logD, &s.newLogD, dtr)
		v = s.warmPass(p, byValue, &s.bufV, s.logV, &s.newLogV, vtr)
	} else {
		s.stats.Cold++
		d = s.coldPass(p, byDensity, &s.bufD, &s.newLogD, dtr)
		v = s.coldPass(p, byValue, &s.bufV, &s.newLogV, vtr)
	}
	s.snapshot(p)
	s.logD, s.newLogD = s.newLogD, s.logD
	s.logV, s.newLogV = s.newLogV, s.logV

	if d.Value >= v.Value {
		if tr != nil {
			tr.Picked = BranchDensity
		}
		return d
	}
	if tr != nil {
		tr.Picked = BranchValue
	}
	return v
}

// maxDirty returns the dirty-item count above which the solve goes cold.
func (s *WarmSolver) maxDirty(n int) float64 {
	frac := s.MaxDirtyFrac
	if frac == 0 {
		frac = DefaultMaxDirtyFrac
	}
	return frac * float64(n)
}

// diff compares p against the snapshot of the previous problem, marking
// changed items in s.dirty/s.dirtyIdx. It reports whether the warm path
// may run. Dirty marks from the previous diff are cleared sparsely via the
// old dirtyIdx, so a steady-state diff touches O(n) bits but allocates
// nothing.
func (s *WarmSolver) diff(p *Problem) bool {
	for _, di := range s.dirtyIdx {
		if di < len(s.dirty) {
			s.dirty[di] = false
		}
	}
	s.dirtyIdx = s.dirtyIdx[:0]

	n := len(p.Items)
	if !s.snapValid {
		s.stats.ColdInit++
		return false
	}
	if n != s.snapN {
		s.stats.ColdShape++
		return false
	}
	off := 0
	for i := 0; i < n; i++ {
		it := &p.Items[i]
		L := it.Levels()
		if L != s.snapLen[i] || len(it.Weights) != L {
			s.stats.ColdShape++
			return false
		}
		d := math.Float64bits(it.Cap) != s.snapCapBits[i]
		if !d {
			for j := 0; j < L; j++ {
				if math.Float64bits(it.Values[j]) != s.snapVBits[off+j] ||
					math.Float64bits(it.Weights[j]) != s.snapWBits[off+j] {
					d = true
					break
				}
			}
		}
		if d {
			s.dirty[i] = true
			s.dirtyIdx = append(s.dirtyIdx, i)
		}
		off += L
	}
	if float64(len(s.dirtyIdx)) > s.maxDirty(n) {
		s.stats.ColdDirty++
		return false
	}
	return true
}

// snapshot records p's ladders for the next diff and sizes the dirty mask.
func (s *WarmSolver) snapshot(p *Problem) {
	n := len(p.Items)
	total := 0
	for i := range p.Items {
		it := &p.Items[i]
		if len(it.Weights) != it.Levels() {
			// Malformed ladder; refuse to snapshot so the next solve runs
			// cold rather than diffing against garbage.
			s.snapValid = false
			return
		}
		total += it.Levels()
	}
	s.snapLen = growInts(s.snapLen, n)
	s.snapCapBits = growBits(s.snapCapBits, n)
	s.snapVBits = growBits(s.snapVBits, total)
	s.snapWBits = growBits(s.snapWBits, total)
	off := 0
	for i := 0; i < n; i++ {
		it := &p.Items[i]
		L := it.Levels()
		s.snapLen[i] = L
		s.snapCapBits[i] = math.Float64bits(it.Cap)
		for j := 0; j < L; j++ {
			s.snapVBits[off+j] = math.Float64bits(it.Values[j])
			s.snapWBits[off+j] = math.Float64bits(it.Weights[j])
		}
		off += L
	}
	if cap(s.dirty) >= n {
		s.dirty = s.dirty[:n]
	} else {
		s.dirty = make([]bool, n)
	}
	s.snapN = n
	s.snapValid = true
}

func growInts(b []int, n int) []int {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]int, n)
}

func growBits(b []uint64, n int) []uint64 {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]uint64, n)
}

// coldPass is Solver.run plus pick-log recording into *rec.
func (s *WarmSolver) coldPass(p *Problem, kind greedyKind, buf *[]int, rec *[]pickEvent, tr *PassTrace) Solution {
	n := len(p.Items)
	if tr != nil && tr.TopK > 0 {
		tr.Alternatives = tr.Alternatives[:0]
	}
	*rec = (*rec)[:0]
	levels := (*buf)[:0]
	var value, weight float64
	for i := 0; i < n; i++ {
		levels = append(levels, 1)
		value += p.Items[i].Values[0]
		weight += p.Items[i].Weights[0]
	}
	*buf = levels

	h := s.heap[:0]
	for i := 0; i < n; i++ {
		it := &p.Items[i]
		if it.Levels() > 1 {
			h = heapPush(h, heapEntry{score: upgradeScore(it, 1, kind), item: int32(i)})
		}
	}
	sol, rest := popLoop(p, kind, levels, value, weight, h, tr, rec)
	s.heap = rest
	return sol
}

// warmPass replays log against the current problem, then finishes live.
// See the file comment for the abort conditions and the bit-identity
// argument.
func (s *WarmSolver) warmPass(p *Problem, kind greedyKind, buf *[]int, log []pickEvent,
	rec *[]pickEvent, tr *PassTrace) Solution {
	n := len(p.Items)
	capture := tr != nil && tr.TopK > 0
	if capture {
		tr.Alternatives = tr.Alternatives[:0]
	}
	*rec = (*rec)[:0]
	levels := (*buf)[:0]
	var value, weight float64
	for i := 0; i < n; i++ {
		levels = append(levels, 1)
		value += p.Items[i].Values[0]
		weight += p.Items[i].Weights[0]
	}
	*buf = levels
	retired := s.retired[:0]
	for i := 0; i < n; i++ {
		retired = append(retired, false)
	}
	s.retired = retired

	// Side heap of the dirty items' pending upgrades, on fresh scores.
	// Their logged events are skipped (stale order); instead every dirty
	// pop that entryBefore places ahead of the next confirmed clean event
	// is merged in live, with popLoop's exact arithmetic.
	dh := s.dheap[:0]
	for _, di := range s.dirtyIdx {
		it := &p.Items[di]
		if it.Levels() > 1 {
			dh = append(dh, heapEntry{score: upgradeScore(it, 1, kind), item: int32(di)})
		}
	}
	heapify(dh)

	for _, ev := range log {
		i := ev.item()
		if i < 0 || i >= n {
			break // defensive: log does not fit this problem
		}
		if s.dirty[i] {
			continue // stale event; the side heap owns this item's pops
		}
		it := &p.Items[i]
		old := levels[i]
		if retired[i] || old >= it.Levels() {
			break // defensive: log does not fit this problem
		}
		score := upgradeScore(it, old, kind)
		if score < 0 {
			break // the pass terminates here; the live loop does the capture
		}
		cleanEntry := heapEntry{score: score, item: int32(i)}

		// Drain every dirty upgrade the cold order pops before this clean
		// event. A negative-score dirty top never drains (entryBefore is
		// false against a nonnegative clean score), so the "eta < 0 stops
		// the pass" rule stays with the live loop.
		for len(dh) > 0 && entryBefore(dh[0], cleanEntry) {
			var de heapEntry
			de, dh = heapPop(dh)
			di := int(de.item)
			dit := &p.Items[di]
			dold := levels[di]
			ddv := dit.Values[dold] - dit.Values[dold-1]
			ddw := dit.Weights[dold] - dit.Weights[dold-1]
			levels[di] = dold + 1
			value += ddv
			weight += ddw
			dCapViolated := dit.Weights[dold] > dit.Cap
			if dCapViolated || weight > p.Budget {
				if tr != nil {
					reason := RejectBudget
					if dCapViolated {
						reason = RejectItemCap
					}
					tr.Rejections = append(tr.Rejections,
						Rejection{Item: di, Level: dold + 1, Reason: reason})
					if capture {
						tr.Alternatives = insertTopK(tr.Alternatives, tr.TopK, Alternative{
							Item:   di,
							Level:  dold + 1,
							Score:  de.score,
							Gain:   ddv,
							Reason: reason,
						})
					}
				}
				levels[di] = dold
				value -= ddv
				weight -= ddw
				retired[di] = true
				*rec = append(*rec, newPickEvent(de.item, false))
			} else {
				if tr != nil {
					tr.Upgrades++
				}
				*rec = append(*rec, newPickEvent(de.item, true))
				if dold+1 < dit.Levels() {
					dh = heapPush(dh, heapEntry{score: upgradeScore(dit, dold+1, kind), item: de.item})
				}
			}
			s.stats.LivePops++
		}

		// This pop is confirmed next in the cold order; apply it with the
		// real quality_verification arithmetic (identical to popLoop).
		dv := it.Values[old] - it.Values[old-1]
		dw := it.Weights[old] - it.Weights[old-1]
		levels[i] = old + 1
		value += dv
		weight += dw
		accepted := true
		capViolated := it.Weights[old] > it.Cap
		if capViolated || weight > p.Budget {
			accepted = false
			if tr != nil {
				reason := RejectBudget
				if capViolated {
					reason = RejectItemCap
				}
				tr.Rejections = append(tr.Rejections,
					Rejection{Item: i, Level: old + 1, Reason: reason})
				if capture {
					tr.Alternatives = insertTopK(tr.Alternatives, tr.TopK, Alternative{
						Item:   i,
						Level:  old + 1,
						Score:  score,
						Gain:   dv,
						Reason: reason,
					})
				}
			}
			levels[i] = old
			value -= dv
			weight -= dw
			retired[i] = true
		} else if tr != nil {
			tr.Upgrades++
		}
		*rec = append(*rec, newPickEvent(int32(i), accepted))
		s.stats.Replayed++
		if accepted != ev.accepted() {
			// The budget moved enough to flip this outcome. The applied op
			// is still exactly the cold run's; the rest of the log isn't.
			s.stats.Diverged++
			break
		}
	}

	// Go live: rebuild the heap over every still-upgradable item (clean
	// log tail and dirty remainder alike) and let the shared pop loop
	// finish the pass. Floyd heapify keeps this O(n).
	s.dheap = dh[:0]
	h := s.heap[:0]
	for i := 0; i < n; i++ {
		it := &p.Items[i]
		if retired[i] || levels[i] >= it.Levels() {
			continue
		}
		h = append(h, heapEntry{score: upgradeScore(it, levels[i], kind), item: int32(i)})
	}
	heapify(h)
	sol, rest := popLoop(p, kind, levels, value, weight, h, tr, rec)
	s.heap = rest
	return sol
}
