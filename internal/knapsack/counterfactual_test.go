package knapsack

import (
	"math/rand"
	"testing"
)

// counterfactualProblem is a hand-built instance exercising every
// alternative reason in one density pass:
//
//	item 0: two profitable upgrades, both accepted (density 2.5 then 1.5)
//	item 1: profitable but over budget after item 0 upgrades (density 4/9)
//	item 2: negative marginal value — the "eta < 0" break (density -2)
//	item 3: best density (3.0) but rejected by its per-item cap
func counterfactualProblem() *Problem {
	return &Problem{
		Budget: 10,
		Items: []Item{
			{Values: []float64{0, 5, 8}, Weights: []float64{0, 2, 4}, Cap: 100},
			{Values: []float64{0, 4}, Weights: []float64{0, 9}, Cap: 100},
			{Values: []float64{0, -2}, Weights: []float64{0, 1}, Cap: 100},
			{Values: []float64{0, 3}, Weights: []float64{0, 1}, Cap: 0.5},
		},
	}
}

// TestCounterfactualAlternatives pins the exact alternatives of both greedy
// passes on the crafted instance: one per reason, ranked by marginal score.
func TestCounterfactualAlternatives(t *testing.T) {
	p := counterfactualProblem()
	var s Solver

	var dtr PassTrace
	dtr.TopK = 4
	s.DensityGreedyTraced(p, &dtr)
	wantD := []Alternative{
		{Item: 3, Level: 2, Score: 3, Gain: 3, Reason: RejectItemCap},
		{Item: 1, Level: 2, Score: 4.0 / 9.0, Gain: 4, Reason: RejectBudget},
		{Item: 2, Level: 2, Score: -2, Gain: -2, Reason: RejectUnprofitable},
	}
	checkAlternatives(t, "density", dtr.Alternatives, wantD)

	var vtr PassTrace
	vtr.TopK = 4
	s.ValueGreedyTraced(p, &vtr)
	wantV := []Alternative{
		{Item: 1, Level: 2, Score: 4, Gain: 4, Reason: RejectBudget},
		{Item: 3, Level: 2, Score: 3, Gain: 3, Reason: RejectItemCap},
		{Item: 2, Level: 2, Score: -2, Gain: -2, Reason: RejectUnprofitable},
	}
	checkAlternatives(t, "value", vtr.Alternatives, wantV)

	// K bounds the list: only the best K survive, still in rank order.
	dtr.TopK = 2
	s.DensityGreedyTraced(p, &dtr)
	checkAlternatives(t, "density/k=2", dtr.Alternatives, wantD[:2])

	dtr.TopK = 1
	s.DensityGreedyTraced(p, &dtr)
	checkAlternatives(t, "density/k=1", dtr.Alternatives, wantD[:1])
}

func checkAlternatives(t *testing.T, name string, got, want []Alternative) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d alternatives %+v, want %d %+v", name, len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: alternative %d = %+v, want %+v", name, i, got[i], want[i])
		}
	}
}

// TestCounterfactualDisabledUntouched checks the opt-in contract: TopK == 0
// leaves Alternatives exactly as the caller passed them (nil stays nil),
// and Rejections/Upgrades/solutions are identical either way.
func TestCounterfactualDisabledUntouched(t *testing.T) {
	p := counterfactualProblem()
	var s Solver

	var off, on PassTrace
	on.TopK = 8
	solOff := s.DensityGreedyTraced(p, &off).Clone()
	solOn := s.DensityGreedyTraced(p, &on)
	if off.Alternatives != nil {
		t.Fatalf("disabled pass filled Alternatives: %+v", off.Alternatives)
	}
	if len(on.Alternatives) == 0 {
		t.Fatal("enabled pass recorded no alternatives")
	}
	equalSolutions(t, solOff, solOn, "capture on/off")
	equalPassTraces(t, off, on, "capture on/off")
}

// TestCounterfactualMatchesReference runs the differential harness with
// capture enabled: alternatives must never perturb the decision sequence,
// so solutions and (Upgrades, Rejections) stay bit-identical to the
// reference scan — which ignores TopK entirely.
func TestCounterfactualMatchesReference(t *testing.T) {
	var s Solver
	for _, shape := range allShapes() {
		t.Run(shape.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(555))
			for trial := 0; trial < 200; trial++ {
				p := shape.gen(rng)
				var refTr, gotTr CombinedTrace
				gotTr.Density.TopK, gotTr.Value.TopK = 3, 3
				ref := p.ReferenceCombinedTraced(&refTr)
				got := s.CombinedTraced(p, &gotTr)
				equalSolutions(t, ref, got, "combined+capture")
				equalPassTraces(t, refTr.Density, gotTr.Density, "density+capture")
				equalPassTraces(t, refTr.Value, gotTr.Value, "value+capture")
				for _, pass := range []PassTrace{gotTr.Density, gotTr.Value} {
					if len(pass.Alternatives) > 3 {
						t.Fatalf("capture exceeded K: %d alternatives", len(pass.Alternatives))
					}
					for i := 1; i < len(pass.Alternatives); i++ {
						if altBefore(pass.Alternatives[i], pass.Alternatives[i-1]) {
							t.Fatalf("alternatives out of rank order: %+v", pass.Alternatives)
						}
					}
				}
			}
		})
	}
}

// TestCounterfactualExhaustedHeap checks that a pass that accepts every
// upgrade (no rejections, heap drained) reports no alternatives: there was
// nothing the greedy walked away from.
func TestCounterfactualExhaustedHeap(t *testing.T) {
	p := &Problem{
		Budget: 100,
		Items: []Item{
			{Values: []float64{0, 2, 3}, Weights: []float64{0, 1, 2}, Cap: 100},
			{Values: []float64{0, 1}, Weights: []float64{0, 1}, Cap: 100},
		},
	}
	var s Solver
	var tr PassTrace
	tr.TopK = 3
	s.DensityGreedyTraced(p, &tr)
	if len(tr.Alternatives) != 0 {
		t.Fatalf("fully-upgraded pass recorded alternatives: %+v", tr.Alternatives)
	}
	if tr.Upgrades != 3 || len(tr.Rejections) != 0 {
		t.Fatalf("trace = %+v, want 3 upgrades and no rejections", tr)
	}
}

// TestCounterfactualZeroAllocSteadyState extends the zero-alloc acceptance
// gate to capture: disabled capture stays at 0 allocs/op, and enabled
// capture also reaches 0 once the Alternatives scratch has grown to K.
func TestCounterfactualZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	p := randomConcaveProblem(rng, 30, 6)
	var s Solver
	var tr CombinedTrace
	s.CombinedTraced(p, &tr) // warm scratch, TopK == 0
	if allocs := testing.AllocsPerRun(100, func() {
		tr.Density.Rejections = tr.Density.Rejections[:0]
		tr.Value.Rejections = tr.Value.Rejections[:0]
		s.CombinedTraced(p, &tr)
	}); allocs != 0 {
		t.Errorf("capture-disabled traced solve allocates %v times per op, want 0", allocs)
	}

	tr.Density.TopK, tr.Value.TopK = 3, 3
	s.CombinedTraced(p, &tr) // warm the Alternatives scratch
	if allocs := testing.AllocsPerRun(100, func() {
		tr.Density.Rejections = tr.Density.Rejections[:0]
		tr.Value.Rejections = tr.Value.Rejections[:0]
		s.CombinedTraced(p, &tr)
	}); allocs != 0 {
		t.Errorf("capture-enabled traced solve allocates %v times per op, want 0", allocs)
	}
}

// TestInsertTopK unit-tests the bounded sorted-insert helper: rank order,
// truncation, the heap tie-break (equal score -> lower item, then lower
// level), and the k <= 0 no-op.
func TestInsertTopK(t *testing.T) {
	var alts []Alternative
	if out := insertTopK(alts, 0, Alternative{Item: 1, Score: 9}); len(out) != 0 {
		t.Fatalf("k=0 inserted: %+v", out)
	}
	for _, a := range []Alternative{
		{Item: 4, Score: 1},
		{Item: 2, Score: 5},
		{Item: 7, Score: 5},      // score tie: item 2 ranks first
		{Item: 7, Level: 3, Score: 3},
		{Item: 7, Level: 2, Score: 3}, // full tie but level: level 2 first
		{Item: 0, Score: -1},
	} {
		alts = insertTopK(alts, 4, a)
	}
	want := []Alternative{
		{Item: 2, Score: 5},
		{Item: 7, Score: 5},
		{Item: 7, Level: 2, Score: 3},
		{Item: 7, Level: 3, Score: 3},
	}
	checkAlternatives(t, "insertTopK", alts, want)
}
