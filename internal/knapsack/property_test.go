package knapsack

// Property-based tests on randomized instances (seeded, table-driven):
// the analytic guarantees of Section III hold on every draw, and every
// solver returns feasible solutions. Shapes that need the Theorem 1
// preconditions (concave values, convex weights) use the concave
// generator; feasibility holds unconditionally and is also checked on
// arbitrary instances.

import (
	"math/rand"
	"testing"
)

// propertyTables drives every property over several (seed, size) corners.
var propertyTables = []struct {
	name           string
	seed           int64
	trials         int
	maxN, maxL     int
	bruteForceAble bool // keep L^N enumerable
}{
	{"small-dense", 101, 200, 4, 4, true},
	{"small-tall", 202, 150, 3, 6, true},
	{"mid", 303, 120, 5, 4, true},
	{"wide-no-bruteforce", 404, 60, 24, 6, false},
}

// TestPropertyCombinedHalfOfOptimal is Theorem 1 as an executable
// property: Combined().Value >= BruteForce().Value / 2 on concave/convex
// instances, for both engines.
func TestPropertyCombinedHalfOfOptimal(t *testing.T) {
	var s Solver
	for _, tbl := range propertyTables {
		if !tbl.bruteForceAble {
			continue
		}
		t.Run(tbl.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(tbl.seed))
			for trial := 0; trial < tbl.trials; trial++ {
				p := randomConcaveProblem(rng, 1+rng.Intn(tbl.maxN), 1+rng.Intn(tbl.maxL))
				opt := p.BruteForce()
				if opt.Value <= 0 {
					continue
				}
				for who, sol := range map[string]Solution{
					"solver":    s.Combined(p),
					"reference": p.ReferenceCombined(),
				} {
					if sol.Value < opt.Value/2-1e-9 {
						t.Fatalf("trial %d (%s): combined %v < half of optimal %v\nproblem: %+v",
							trial, who, sol.Value, opt.Value, p)
					}
				}
			}
		})
	}
}

// TestPropertyDPBruteForceFractionalSandwich checks the solver ordering
// chain on concave/convex instances:
//
//	DynamicProgram (feasible, grid-rounded) <= BruteForce (exact optimum)
//	                                       <= FractionalBound (V_p).
func TestPropertyDPBruteForceFractionalSandwich(t *testing.T) {
	for _, tbl := range propertyTables {
		if !tbl.bruteForceAble {
			continue
		}
		t.Run(tbl.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(tbl.seed ^ 0xD1D1))
			for trial := 0; trial < tbl.trials; trial++ {
				p := randomConcaveProblem(rng, 1+rng.Intn(tbl.maxN), 1+rng.Intn(tbl.maxL))
				resolution := p.Budget / float64(64+rng.Intn(4096))
				dp := p.DynamicProgram(resolution)
				opt := p.BruteForce()
				vp := p.FractionalBound()
				if dp.Value > opt.Value+1e-9 {
					t.Fatalf("trial %d: DP %v above brute force %v (resolution %v)",
						trial, dp.Value, opt.Value, resolution)
				}
				if opt.Value > vp+1e-9 {
					t.Fatalf("trial %d: brute force %v above fractional bound %v",
						trial, opt.Value, vp)
				}
			}
		})
	}
}

// TestPropertyEverySolverFeasible asserts the feasibility contract for
// every solver on both concave and arbitrary instances: per-item caps on
// all upgraded levels, shared budget whenever any upgrade was taken, and
// self-consistent Value/Weight bookkeeping.
func TestPropertyEverySolverFeasible(t *testing.T) {
	var s Solver
	for _, tbl := range propertyTables {
		t.Run(tbl.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(tbl.seed ^ 0xFEA5))
			for trial := 0; trial < tbl.trials; trial++ {
				var p *Problem
				if trial%2 == 0 {
					p = randomConcaveProblem(rng, 1+rng.Intn(tbl.maxN), 1+rng.Intn(tbl.maxL))
				} else {
					p = randomArbitraryProblem(rng, 1+rng.Intn(tbl.maxN), 1+rng.Intn(tbl.maxL))
				}
				checkFeasible(t, p, s.Combined(p), "solver-combined")
				checkFeasible(t, p, s.DensityGreedy(p), "solver-density")
				checkFeasible(t, p, s.ValueGreedy(p), "solver-value")
				checkFeasible(t, p, p.ReferenceCombined(), "reference-combined")
				checkFeasible(t, p, p.DynamicProgram(p.Budget/512), "dp")
				if tbl.bruteForceAble {
					checkFeasible(t, p, p.BruteForce(), "bruteforce")
				}
			}
		})
	}
}
