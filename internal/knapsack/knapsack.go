// Package knapsack implements the nonlinear knapsack machinery behind the
// paper's per-slot quality allocation problem (eqs. (5)-(7)): a separable
// concave objective over discrete quality levels with a convex weight
// (rate) per item, one shared budget B(t), and a per-item cap B_n(t).
//
// It provides the density-greedy and value-greedy passes, their combination
// (Algorithm 1 of the paper, with the quality_verification subroutine), an
// exact brute-force solver for small instances, and the fractional upper
// bound V_p used in the proof of Theorem 1.
//
// Two interchangeable engines implement the greedy passes. The Solver
// (solver.go) is the fast path: an incremental max-heap of pending
// upgrades with reusable scratch, O(log N) per pick and zero allocations
// in steady state; DensityGreedy, ValueGreedy and Combined run on a
// pooled Solver. The original O(N * picks) scan is kept verbatim as
// ReferenceDensityGreedy / ReferenceValueGreedy / ReferenceCombined; both
// engines share the scoring and tie-breaking rules below and return
// bit-identical solutions and traces, which the golden-corpus and fuzz
// tests enforce. Inputs are expected to be finite (no NaN/Inf); the
// solvers do not panic on non-finite values but the two engines may then
// disagree, since NaN breaks the candidate total order.
package knapsack

import (
	"errors"
	"fmt"
	"sync"
)

// Item is one user's quality ladder. Values[l] and Weights[l] are the
// objective value h_n(l+1) and required rate f^R(l+1) of quality level l+1;
// levels are 1-based externally. Cap is the per-item budget B_n(t).
//
// Algorithm 1 assumes Values is concave in the level (decreasing increments)
// and Weights convex increasing; the solvers work on arbitrary inputs but the
// 1/2-approximation guarantee needs those shapes.
type Item struct {
	Values  []float64
	Weights []float64
	Cap     float64
}

// Levels returns the number of quality levels of the item.
func (it Item) Levels() int { return len(it.Values) }

// Problem is a per-slot allocation instance.
type Problem struct {
	Items  []Item
	Budget float64 // shared budget B(t)
}

// Validate reports structural problems with the instance.
func (p *Problem) Validate() error {
	if len(p.Items) == 0 {
		return errors.New("knapsack: no items")
	}
	for i, it := range p.Items {
		if len(it.Values) == 0 {
			return fmt.Errorf("knapsack: item %d has no levels", i)
		}
		if len(it.Values) != len(it.Weights) {
			return fmt.Errorf("knapsack: item %d has %d values but %d weights",
				i, len(it.Values), len(it.Weights))
		}
	}
	return nil
}

// Solution is an assignment of one level (1-based) per item.
type Solution struct {
	Levels []int
	Value  float64
	Weight float64
}

// Clone returns a deep copy of the solution whose Levels no longer alias
// any solver scratch buffer.
func (s Solution) Clone() Solution {
	out := s
	out.Levels = append([]int(nil), s.Levels...)
	return out
}

// valueOf recomputes the total value and weight of an assignment.
func (p *Problem) valueOf(levels []int) (value, weight float64) {
	for i, l := range levels {
		value += p.Items[i].Values[l-1]
		weight += p.Items[i].Weights[l-1]
	}
	return value, weight
}

// baseSolution returns the all-ones assignment the greedy passes start from
// ("Initialize: Q = {1, 1, ..., 1}" in Algorithm 1). The base level is
// always considered deliverable; constraints only gate upgrades.
func (p *Problem) baseSolution() Solution {
	levels := make([]int, len(p.Items))
	for i := range levels {
		levels[i] = 1
	}
	v, w := p.valueOf(levels)
	return Solution{Levels: levels, Value: v, Weight: w}
}

// greedyKind selects the scoring rule of a greedy pass.
type greedyKind int

const (
	byDensity greedyKind = iota + 1 // eta_n = dV/dW
	byValue                         // v_n = dV
)

// upgradeScore is the score of raising it from its current 1-based level l
// to l+1. Both the reference scan and the heap Solver rank candidates with
// this function, so the two engines see identical float64 scores.
func upgradeScore(it *Item, l int, kind greedyKind) float64 {
	dv := it.Values[l] - it.Values[l-1]
	if kind != byDensity {
		return dv
	}
	dw := it.Weights[l] - it.Weights[l-1]
	if dw <= 0 {
		// Degenerate non-increasing weight: a free (or weight-reducing)
		// upgrade; give it absolute priority when its value gain is
		// nonnegative.
		if dv >= 0 {
			return dv/1e-12 + 1
		}
		return dv / 1e-12
	}
	return dv / dw
}

// betterCandidate is the deterministic selection rule of the greedy passes:
// the candidate (score, item) replaces the incumbent (bestScore, bestItem)
// on a strictly higher score, or on an equal score with a lower item index.
// Ties are therefore always broken toward the lowest index — an explicit
// invariant both engines implement (the heap orders entries the same way in
// entryBefore), rather than an accident of scan order.
func betterCandidate(score float64, item int, bestScore float64, bestItem int) bool {
	if bestItem < 0 {
		return true
	}
	if score != bestScore {
		return score > bestScore
	}
	return item < bestItem
}

// RejectReason identifies the constraint a quality_verification check found
// violated.
type RejectReason uint8

const (
	// RejectItemCap is the per-item cap check f^R(q) > B_n(t).
	RejectItemCap RejectReason = iota + 1
	// RejectBudget is the shared-budget check sum f^R > B(t).
	RejectBudget
	// RejectUnprofitable marks a counterfactual upgrade that was never
	// attempted because its marginal score was negative when the greedy loop
	// terminated ("if eta < 0 then I = {}"). It never appears in Rejections
	// — only in the counterfactual Alternatives of a pass.
	RejectUnprofitable
)

// String names the violated constraint.
func (r RejectReason) String() string {
	switch r {
	case RejectItemCap:
		return "user-cap"
	case RejectBudget:
		return "budget"
	case RejectUnprofitable:
		return "unprofitable"
	default:
		return "unknown"
	}
}

// Rejection is one reverted upgrade: quality_verification refused moving
// Item to Level because of Reason.
type Rejection struct {
	Item   int
	Level  int // the attempted (refused) level, 1-based
	Reason RejectReason
}

// Alternative is one unchosen upgrade surfaced by a greedy pass: raising
// Item to Level (1-based) would have added Gain objective value, but the
// pass did not take it for Reason. Score is the pass's marginal ranking
// score (dV/dW for the density pass, dV for the value pass) — the same
// number the heap ordered candidates by, so alternatives are directly
// comparable with the upgrades that did win.
type Alternative struct {
	Item   int
	Level  int // the forgone (not taken) level, 1-based
	Score  float64
	Gain   float64 // dV of the forgone upgrade
	Reason RejectReason
}

// altBefore orders alternatives the way the heap ordered candidates:
// higher score first, ties to the lower item index, then the lower level.
func altBefore(a, b Alternative) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	if a.Item != b.Item {
		return a.Item < b.Item
	}
	return a.Level < b.Level
}

// insertTopK inserts a into alts (kept sorted by altBefore), bounding the
// result to k entries. It shifts in place and appends at most once, so a
// caller reusing alts across solves reaches zero allocations once the
// slice's capacity has grown to k.
func insertTopK(alts []Alternative, k int, a Alternative) []Alternative {
	if k <= 0 {
		return alts
	}
	switch {
	case len(alts) < k:
		alts = append(alts, a)
	case altBefore(a, alts[len(alts)-1]):
		alts[len(alts)-1] = a
	default:
		return alts
	}
	for i := len(alts) - 1; i > 0 && altBefore(alts[i], alts[i-1]); i-- {
		alts[i], alts[i-1] = alts[i-1], alts[i]
	}
	return alts
}

// PassTrace records one greedy pass's decision sequence: how many upgrades
// were accepted and which were reverted by quality_verification.
//
// TopK, when positive, additionally asks the heap Solver to record up to
// TopK unchosen upgrades — the counterfactual decisions of the pass: every
// quality_verification rejection plus the profitable-looking upgrades left
// pending when the loop hit a negative marginal score — ranked by Score.
// Only the heap engine fills Alternatives (the reference scan ignores
// TopK); solutions, Upgrades and Rejections remain bit-identical between
// engines either way.
type PassTrace struct {
	Upgrades     int
	Rejections   []Rejection
	TopK         int
	Alternatives []Alternative
}

// Branch identifies which greedy pass Combined returned.
type Branch uint8

const (
	BranchNone Branch = iota
	BranchDensity
	BranchValue
)

// String names the branch.
func (b Branch) String() string {
	switch b {
	case BranchDensity:
		return "density"
	case BranchValue:
		return "value"
	default:
		return ""
	}
}

// CombinedTrace records both passes of Algorithm 1 and which one won.
type CombinedTrace struct {
	Density PassTrace
	Value   PassTrace
	Picked  Branch
}

// referenceGreedy runs one pass of Algorithm 1's loop with the given
// scoring rule, rescanning every active item per pick — the original,
// obviously-correct implementation the heap Solver is differentially
// tested against. tr, when non-nil, receives the pass's decision trace.
func (p *Problem) referenceGreedy(kind greedyKind, tr *PassTrace) Solution {
	sol := p.baseSolution()
	active := make([]bool, len(p.Items))
	numActive := 0
	for i, it := range p.Items {
		if it.Levels() > 1 {
			active[i] = true
			numActive++
		}
	}

	for numActive > 0 {
		best := -1
		bestScore := 0.0
		for i := range p.Items {
			if !active[i] {
				continue
			}
			score := upgradeScore(&p.Items[i], sol.Levels[i], kind)
			if betterCandidate(score, i, bestScore, best) {
				best = i
				bestScore = score
			}
		}
		if best == -1 || bestScore < 0 {
			// "if eta < 0 then I = {}": no profitable upgrade remains.
			break
		}

		// Tentatively upgrade, then run quality_verification.
		it := p.Items[best]
		old := sol.Levels[best]
		sol.Levels[best] = old + 1
		sol.Value += it.Values[old] - it.Values[old-1]
		sol.Weight += it.Weights[old] - it.Weights[old-1]

		if sol.Levels[best] == it.Levels() {
			active[best] = false
			numActive--
		}
		capViolated := it.Weights[sol.Levels[best]-1] > it.Cap
		if capViolated || sol.Weight > p.Budget {
			// Revert the upgrade and retire the item.
			if tr != nil {
				reason := RejectBudget
				if capViolated {
					reason = RejectItemCap
				}
				tr.Rejections = append(tr.Rejections,
					Rejection{Item: best, Level: sol.Levels[best], Reason: reason})
			}
			sol.Value -= it.Values[old] - it.Values[old-1]
			sol.Weight -= it.Weights[old] - it.Weights[old-1]
			sol.Levels[best] = old
			if active[best] {
				active[best] = false
				numActive--
			}
		} else if tr != nil {
			tr.Upgrades++
		}
	}
	return sol
}

// solverPool recycles Solver scratch across the convenience methods below,
// so Problem.Combined and friends keep their allocate-fresh-Levels contract
// while paying only one small allocation per call in steady state.
var solverPool = sync.Pool{New: func() any { return new(Solver) }}

// DensityGreedy runs the density-greedy pass alone: repeatedly upgrade the
// item with the largest value-per-rate increment.
func (p *Problem) DensityGreedy() Solution { return p.DensityGreedyTraced(nil) }

// DensityGreedyTraced is DensityGreedy with a decision trace (nil tr is
// allowed and traces nothing).
func (p *Problem) DensityGreedyTraced(tr *PassTrace) Solution {
	s := solverPool.Get().(*Solver)
	sol := s.DensityGreedyTraced(p, tr).Clone()
	solverPool.Put(s)
	return sol
}

// ValueGreedy runs the value-greedy pass alone: repeatedly upgrade the item
// with the largest value increment.
func (p *Problem) ValueGreedy() Solution { return p.ValueGreedyTraced(nil) }

// ValueGreedyTraced is ValueGreedy with a decision trace (nil tr is allowed
// and traces nothing).
func (p *Problem) ValueGreedyTraced(tr *PassTrace) Solution {
	s := solverPool.Get().(*Solver)
	sol := s.ValueGreedyTraced(p, tr).Clone()
	solverPool.Put(s)
	return sol
}

// Combined is Algorithm 1 of the paper: run both greedy passes and return
// the better solution. By Theorem 1 its value is at least half the optimum
// when values are concave and weights convex.
func (p *Problem) Combined() Solution { return p.CombinedTraced(nil) }

// CombinedTraced is Combined with a decision trace: both passes are traced
// and Picked records which one was returned (nil tr traces nothing).
func (p *Problem) CombinedTraced(tr *CombinedTrace) Solution {
	s := solverPool.Get().(*Solver)
	sol := s.CombinedTraced(p, tr).Clone()
	solverPool.Put(s)
	return sol
}

// ReferenceDensityGreedy is DensityGreedy on the original rescan engine.
func (p *Problem) ReferenceDensityGreedy() Solution { return p.referenceGreedy(byDensity, nil) }

// ReferenceDensityGreedyTraced is DensityGreedyTraced on the original
// rescan engine.
func (p *Problem) ReferenceDensityGreedyTraced(tr *PassTrace) Solution {
	return p.referenceGreedy(byDensity, tr)
}

// ReferenceValueGreedy is ValueGreedy on the original rescan engine.
func (p *Problem) ReferenceValueGreedy() Solution { return p.referenceGreedy(byValue, nil) }

// ReferenceValueGreedyTraced is ValueGreedyTraced on the original rescan
// engine.
func (p *Problem) ReferenceValueGreedyTraced(tr *PassTrace) Solution {
	return p.referenceGreedy(byValue, tr)
}

// ReferenceCombined is Combined on the original rescan engine. The heap
// Solver must return bit-identical solutions; it exists for differential
// tests and for regenerating the golden corpus.
func (p *Problem) ReferenceCombined() Solution { return p.ReferenceCombinedTraced(nil) }

// ReferenceCombinedTraced is CombinedTraced on the original rescan engine.
func (p *Problem) ReferenceCombinedTraced(tr *CombinedTrace) Solution {
	var dtr, vtr *PassTrace
	if tr != nil {
		dtr, vtr = &tr.Density, &tr.Value
	}
	d := p.referenceGreedy(byDensity, dtr)
	v := p.referenceGreedy(byValue, vtr)
	if d.Value >= v.Value {
		if tr != nil {
			tr.Picked = BranchDensity
		}
		return d
	}
	if tr != nil {
		tr.Picked = BranchValue
	}
	return v
}

// BruteForce enumerates every feasible assignment and returns an optimal
// one. It is exponential in the number of items (L^N assignments) and is
// meant for the paper's 5-user "offline optimal" comparison and for tests.
// Level 1 is always admissible, mirroring the greedy passes; upgrades beyond
// level 1 must satisfy both the per-item cap and the shared budget.
func (p *Problem) BruteForce() Solution {
	n := len(p.Items)
	cur := make([]int, n)
	best := p.baseSolution()

	// suffixMin[i] is the minimum total weight items i..n-1 can contribute
	// (their base levels); used to prune infeasible branches early.
	suffixMin := make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		suffixMin[i] = suffixMin[i+1] + p.Items[i].Weights[0]
	}

	var rec func(i int, value, weight float64)
	rec = func(i int, value, weight float64) {
		if i == n {
			if value > best.Value {
				best.Value = value
				best.Weight = weight
				copy(best.Levels, cur)
			}
			return
		}
		it := p.Items[i]
		for l := 1; l <= it.Levels(); l++ {
			w := it.Weights[l-1]
			if l > 1 && w > it.Cap {
				break // weights are non-decreasing; higher levels fail too
			}
			if weight+w+suffixMin[i+1] > p.Budget {
				// No completion of this branch can satisfy the shared
				// budget. (The all-base assignment is still admitted via the
				// initial best.)
				continue
			}
			cur[i] = l
			rec(i+1, value+it.Values[l-1], weight+w)
		}
		cur[i] = 1
	}
	rec(0, 0, 0)
	return best
}

// FractionalBound computes V_p of the proof of Theorem 1: the value achieved
// by the density-greedy pass when the final, budget-violating upgrade may be
// taken fractionally. It upper-bounds the discrete optimum for concave
// values and convex weights. Negative-density upgrades are never taken.
func (p *Problem) FractionalBound() float64 {
	sol := p.baseSolution()
	levels := sol.Levels
	value := sol.Value
	weight := sol.Weight

	type upgrade struct {
		item    int
		dv, dw  float64
		density float64
	}
	// Because increments are concave/convex per item, the per-item upgrade
	// sequence has non-increasing density; a global greedy by density is a
	// valid merge of these sequences.
	for {
		best := upgrade{item: -1}
		for i, it := range p.Items {
			l := levels[i]
			if l >= it.Levels() {
				continue
			}
			if it.Weights[l] > it.Cap {
				continue
			}
			dv := it.Values[l] - it.Values[l-1]
			dw := it.Weights[l] - it.Weights[l-1]
			var density float64
			if dw <= 0 {
				if dv < 0 {
					continue
				}
				density = dv/1e-12 + 1
			} else {
				density = dv / dw
			}
			if best.item == -1 || density > best.density {
				best = upgrade{item: i, dv: dv, dw: dw, density: density}
			}
		}
		if best.item == -1 || best.density < 0 {
			return value
		}
		if weight+best.dw > p.Budget {
			// Take the fractional part of this upgrade and stop.
			room := p.Budget - weight
			if room > 0 && best.dw > 0 {
				value += best.dv * (room / best.dw)
			}
			return value
		}
		levels[best.item]++
		value += best.dv
		weight += best.dw
	}
}
