package knapsack

// Differential tests for the warm-started solver. The contract is the same
// one the heap Solver carries against the reference scan: on EVERY problem,
// warm or cold, the WarmSolver's solutions and decision traces (including
// top-K counterfactual alternatives) are bit-identical to a from-scratch
// solve. The suites drive perturbation sequences shaped like the slot
// loop's (a few channel estimates move per slot, budget drifts, sessions
// churn) across every instance family, plus a 200-slot seeded churn
// workload recorded in testdata/golden_warm.json (regenerate with
// -update-golden, same flag as the greedy corpus).

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"testing"
)

// cloneProblem deep-copies p so a recorded sequence of mutated problems
// stays independent.
func cloneProblem(p *Problem) *Problem {
	items := make([]Item, len(p.Items))
	for i, it := range p.Items {
		items[i] = Item{
			Values:  append([]float64(nil), it.Values...),
			Weights: append([]float64(nil), it.Weights...),
			Cap:     it.Cap,
		}
	}
	return &Problem{Items: items, Budget: p.Budget}
}

// equalAlternatives asserts bit-identical top-K counterfactual lists.
func equalAlternatives(t *testing.T, want, got []Alternative, who string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d alternatives, want %d\ngot  %+v\nwant %+v", who, len(got), len(want), got, want)
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Item != g.Item || w.Level != g.Level || w.Reason != g.Reason ||
			math.Float64bits(w.Score) != math.Float64bits(g.Score) ||
			math.Float64bits(w.Gain) != math.Float64bits(g.Gain) {
			t.Fatalf("%s: alternative %d: %+v, want %+v", who, i, g, w)
		}
	}
}

// diffWarmCold solves p with both solvers (traced, TopK=3) and asserts
// bit-identical solutions, pass traces, alternatives and branch pick.
func diffWarmCold(t *testing.T, ws *WarmSolver, cold *Solver, p *Problem, who string) {
	t.Helper()
	var wantTr, gotTr CombinedTrace
	wantTr.Density.TopK, wantTr.Value.TopK = 3, 3
	gotTr.Density.TopK, gotTr.Value.TopK = 3, 3
	want := cold.CombinedTraced(p, &wantTr)
	got := ws.CombinedTraced(p, &gotTr)
	equalSolutions(t, want, got, who)
	equalPassTraces(t, wantTr.Density, gotTr.Density, who+"/density")
	equalPassTraces(t, wantTr.Value, gotTr.Value, who+"/value")
	equalAlternatives(t, wantTr.Density.Alternatives, gotTr.Density.Alternatives, who+"/density-alts")
	equalAlternatives(t, wantTr.Value.Alternatives, gotTr.Value.Alternatives, who+"/value-alts")
	if wantTr.Picked != gotTr.Picked {
		t.Fatalf("%s: picked %v, cold picked %v", who, gotTr.Picked, wantTr.Picked)
	}
	checkFeasible(t, p, got, who)
}

// perturb applies k random single-entry mutations (value, weight, cap or
// budget) on the same grids the generators use, so exact ties stay common.
func perturb(rng *rand.Rand, p *Problem, k int) {
	for ; k > 0 && len(p.Items) > 0; k-- {
		i := rng.Intn(len(p.Items))
		it := &p.Items[i]
		l := rng.Intn(it.Levels())
		switch rng.Intn(4) {
		case 0:
			it.Values[l] = math.Round((rng.Float64()*20-5)*16) / 16
		case 1:
			it.Weights[l] = math.Round(rng.Float64()*10*16) / 16
		case 2:
			it.Cap = math.Round(rng.Float64()*12*16) / 16
		case 3:
			p.Budget = math.Round(rng.Float64()*float64(len(p.Items))*8*16) / 16
		}
	}
}

// TestWarmMatchesColdOnShapes runs sparse-perturbation sequences over every
// instance family and cross-checks every solve against a cold solver.
func TestWarmMatchesColdOnShapes(t *testing.T) {
	var cold Solver
	for _, shape := range allShapes() {
		shape := shape
		t.Run(shape.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(20260808))
			ws := NewWarmSolver()
			for round := 0; round < 25; round++ {
				p := shape.gen(rng)
				// A fresh problem usually churns the shape: exercises the
				// structural fallback. Then a run of sparse perturbations
				// exercises replay, preemption and divergence.
				for step := 0; step < 8; step++ {
					diffWarmCold(t, ws, &cold, p,
						fmt.Sprintf("%s/round-%d/step-%d", shape.name, round, step))
					perturb(rng, p, 1+rng.Intn(3))
				}
			}
			st := ws.Stats()
			if st.Warm == 0 {
				t.Fatalf("perturbation sequences never warm-started: %+v", st)
			}
			if st.Cold == 0 {
				t.Fatalf("shape churn never fell back cold: %+v", st)
			}
		})
	}
}

// TestWarmPathCounters pins each resolution path of the warm solver:
// cold-init, pure replay, budget-flip divergence, dirty-item warm solve,
// dirty-fraction fallback, structural fallback, Reset and disable.
func TestWarmPathCounters(t *testing.T) {
	mk := func() *Problem {
		return &Problem{
			Budget: 6,
			Items: []Item{
				{Values: []float64{0, 3, 5, 6}, Weights: []float64{0, 1, 2, 3}, Cap: 10},
				{Values: []float64{0, 2, 3.5}, Weights: []float64{0, 1, 2}, Cap: 10},
				{Values: []float64{0, 1.5}, Weights: []float64{0, 1}, Cap: 10},
				{Values: []float64{0, 1}, Weights: []float64{0, 2}, Cap: 10},
			},
		}
	}
	var cold Solver
	ws := NewWarmSolver()

	p := mk()
	diffWarmCold(t, ws, &cold, p, "first")
	if st := ws.Stats(); st.ColdInit != 1 || st.Warm != 0 {
		t.Fatalf("first solve should be cold-init: %+v", st)
	}

	// Identical problem: the full log replays, nothing diverges.
	diffWarmCold(t, ws, &cold, p, "identical")
	st := ws.Stats()
	if st.Warm != 1 || st.Replayed == 0 || st.Diverged != 0 {
		t.Fatalf("identical re-solve should fully replay: %+v", st)
	}

	// Budget squeeze flips an accept to a budget rejection mid-log.
	p.Budget = 3
	diffWarmCold(t, ws, &cold, p, "budget-squeeze")
	if st = ws.Stats(); st.Warm != 2 || st.Diverged == 0 {
		t.Fatalf("budget squeeze should warm-start and diverge: %+v", st)
	}

	// One dirty item out of four (25% == DefaultMaxDirtyFrac) still warms.
	p.Items[1].Weights[1] = 0.5
	diffWarmCold(t, ws, &cold, p, "one-dirty")
	if st = ws.Stats(); st.Warm != 3 {
		t.Fatalf("single dirty item should warm-start: %+v", st)
	}

	// Everything dirty: fraction cap falls back cold.
	for i := range p.Items {
		p.Items[i].Values[1] += 0.25
	}
	diffWarmCold(t, ws, &cold, p, "all-dirty")
	if st = ws.Stats(); st.ColdDirty != 1 {
		t.Fatalf("full perturbation should hit the dirty cap: %+v", st)
	}

	// Session churn: item count changes.
	p.Items = append(p.Items, Item{Values: []float64{0, 2}, Weights: []float64{0, 1}, Cap: 10})
	diffWarmCold(t, ws, &cold, p, "join")
	if st = ws.Stats(); st.ColdShape != 1 {
		t.Fatalf("item-count change should be a shape fallback: %+v", st)
	}

	// Ladder shape change on an existing item.
	p.Items[0].Values = p.Items[0].Values[:3]
	p.Items[0].Weights = p.Items[0].Weights[:3]
	diffWarmCold(t, ws, &cold, p, "ladder-shape")
	if st = ws.Stats(); st.ColdShape != 2 {
		t.Fatalf("ladder-shape change should be a shape fallback: %+v", st)
	}

	// Reset forces the next solve cold even on an identical problem.
	ws.Reset()
	diffWarmCold(t, ws, &cold, p, "after-reset")
	if st = ws.Stats(); st.ColdInit != 2 {
		t.Fatalf("post-Reset solve should be cold-init: %+v", st)
	}

	// Negative MaxDirtyFrac disables warm starts entirely.
	off := NewWarmSolver()
	off.MaxDirtyFrac = -1
	diffWarmCold(t, off, &cold, p, "disabled-1")
	diffWarmCold(t, off, &cold, p, "disabled-2")
	if st := off.Stats(); st.Warm != 0 || st.Cold != 2 {
		t.Fatalf("MaxDirtyFrac<0 should disable warm starts: %+v", st)
	}
}

// TestWarmSteadyStateAllocs: a warm re-solve with one perturbed item is
// allocation-free once scratch has grown — the slot-loop steady state.
func TestWarmSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := randomConcaveProblem(rng, 64, 5)
	ws := NewWarmSolver()
	tick := 0
	step := func() {
		p.Items[17].Weights[2] = float64(1 + tick%2)
		tick++
		ws.Combined(p)
	}
	for i := 0; i < 4; i++ { // grow scratch, logs and snapshot
		step()
	}
	if allocs := testing.AllocsPerRun(200, step); allocs != 0 {
		t.Fatalf("steady-state warm solve allocates %v/op, want 0", allocs)
	}
	if st := ws.Stats(); st.Warm < 200 {
		t.Fatalf("alloc loop was not warm-starting: %+v", st)
	}
}

// ---- 200-slot churn golden workload ----

const warmGoldenPath = "testdata/golden_warm.json"
const warmGoldenSlots = 200

type warmGoldenSlot struct {
	Levels []int   `json:"levels"`
	Value  float64 `json:"value"`
	Weight float64 `json:"weight"`
	Picked string  `json:"picked"`
}

type warmGoldenFile struct {
	Comment string           `json:"comment"`
	Slots   []warmGoldenSlot `json:"slots"`
}

// warmChurnProblems deterministically generates the churn workload: 40
// sessions whose rate ladders drift a few entries per slot, budget drift
// every 17 slots, a session joining every 31st slot and one retiring every
// 43rd — the access pattern the slot loop feeds the solver.
func warmChurnProblems() []*Problem {
	rng := rand.New(rand.NewSource(20260807))
	p := randomConcaveProblem(rng, 40, 5)
	out := make([]*Problem, 0, warmGoldenSlots)
	for slot := 0; slot < warmGoldenSlots; slot++ {
		for k := rng.Intn(4); k > 0; k-- {
			it := &p.Items[rng.Intn(len(p.Items))]
			it.Weights[rng.Intn(it.Levels())] = math.Round(rng.Float64()*10*16) / 16
		}
		if slot%17 == 16 {
			p.Budget = math.Round((0.8+0.4*rng.Float64())*p.Budget*16) / 16
		}
		if slot%31 == 30 {
			np := randomConcaveProblem(rng, 1, 5)
			p.Items = append(p.Items, np.Items[0])
		}
		if slot%43 == 42 && len(p.Items) > 2 {
			p.Items = p.Items[:len(p.Items)-1]
		}
		out = append(out, cloneProblem(p))
	}
	return out
}

// TestWarmGoldenChurn replays the churn workload against the recorded
// reference solutions, through both the warm solver (which must mix warm
// and cold solves) and a cold solver (guarding the recording itself).
func TestWarmGoldenChurn(t *testing.T) {
	problems := warmChurnProblems()
	if *updateGolden {
		file := warmGoldenFile{
			Comment: "Reference Combined solutions for the 200-slot seeded churn workload " +
				"(warmChurnProblems); regenerate with: go test ./internal/knapsack -run TestWarmGoldenChurn -update-golden",
		}
		for _, p := range problems {
			var tr CombinedTrace
			sol := p.ReferenceCombinedTraced(&tr)
			file.Slots = append(file.Slots, warmGoldenSlot{
				Levels: append([]int(nil), sol.Levels...),
				Value:  sol.Value,
				Weight: sol.Weight,
				Picked: tr.Picked.String(),
			})
		}
		raw, err := json.MarshalIndent(&file, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(warmGoldenPath, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d slots to %s", len(file.Slots), warmGoldenPath)
		return
	}

	raw, err := os.ReadFile(warmGoldenPath)
	if err != nil {
		t.Fatalf("read churn golden (regenerate with -update-golden): %v", err)
	}
	var file warmGoldenFile
	if err := json.Unmarshal(raw, &file); err != nil {
		t.Fatalf("parse churn golden: %v", err)
	}
	if len(file.Slots) != warmGoldenSlots {
		t.Fatalf("golden has %d slots, want %d", len(file.Slots), warmGoldenSlots)
	}

	ws := NewWarmSolver()
	var cold Solver
	for slot, p := range problems {
		want := file.Slots[slot]
		var wtr, ctr CombinedTrace
		warm := ws.CombinedTraced(p, &wtr)
		coldSol := cold.CombinedTraced(p, &ctr)
		for name, got := range map[string]struct {
			sol Solution
			tr  *CombinedTrace
		}{"warm": {warm, &wtr}, "cold": {coldSol, &ctr}} {
			if len(got.sol.Levels) != len(want.Levels) {
				t.Fatalf("slot %d/%s: %d levels, golden has %d", slot, name, len(got.sol.Levels), len(want.Levels))
			}
			for i := range want.Levels {
				if got.sol.Levels[i] != want.Levels[i] {
					t.Fatalf("slot %d/%s: levels %v differ from golden %v", slot, name, got.sol.Levels, want.Levels)
				}
			}
			if math.Float64bits(got.sol.Value) != math.Float64bits(want.Value) ||
				math.Float64bits(got.sol.Weight) != math.Float64bits(want.Weight) {
				t.Fatalf("slot %d/%s: value/weight %v/%v differ from golden %v/%v",
					slot, name, got.sol.Value, got.sol.Weight, want.Value, want.Weight)
			}
			if got.tr.Picked.String() != want.Picked {
				t.Fatalf("slot %d/%s: picked %v, golden has %v", slot, name, got.tr.Picked, want.Picked)
			}
		}
	}
	st := ws.Stats()
	if st.Warm < warmGoldenSlots/2 {
		t.Fatalf("churn workload should mostly warm-start: %+v", st)
	}
	if st.Cold == 0 {
		t.Fatalf("churn workload should hit cold fallbacks: %+v", st)
	}
	if st.Replayed == 0 {
		t.Fatalf("churn workload should replay log events: %+v", st)
	}
}
