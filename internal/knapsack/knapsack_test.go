package knapsack

import (
	"math"
	"math/rand"
	"testing"
)

// paperCase1 encodes the first adversarial example of Section III:
// h_1(1)=1 with rate 0.5, h_2(2)=4 with rate 2.5, budget 2.5.
// Density-greedy picks the small dense item and ends with value 1, while
// value-greedy finds the optimum 4.
func paperCase1() *Problem {
	return &Problem{
		Budget: 2.5,
		Items: []Item{
			{Values: []float64{0, 1}, Weights: []float64{0, 0.5}, Cap: 100},
			{Values: []float64{0, 4}, Weights: []float64{0, 2.5}, Cap: 100},
		},
	}
}

// paperCase2 encodes the second adversarial example: four items worth 2 at
// rate 0.5 each, one item worth 3 at rate 2, budget 2. Value-greedy takes
// the big item (value 3) while density-greedy reaches the optimum 8.
func paperCase2() *Problem {
	items := make([]Item, 0, 5)
	for i := 0; i < 4; i++ {
		items = append(items, Item{
			Values:  []float64{0, 2},
			Weights: []float64{0, 0.5},
			Cap:     100,
		})
	}
	items = append(items, Item{
		Values:  []float64{0, 3},
		Weights: []float64{0, 2},
		Cap:     100,
	})
	return &Problem{Budget: 2, Items: items}
}

func TestPaperAdversarialCase1(t *testing.T) {
	p := paperCase1()
	d := p.DensityGreedy()
	v := p.ValueGreedy()
	c := p.Combined()
	opt := p.BruteForce()

	if d.Value != 1 {
		t.Errorf("density-greedy value = %v, want 1 (paper's failure case)", d.Value)
	}
	if v.Value != 4 {
		t.Errorf("value-greedy value = %v, want 4", v.Value)
	}
	if opt.Value != 4 {
		t.Fatalf("optimum = %v, want 4", opt.Value)
	}
	if c.Value != opt.Value {
		t.Errorf("combined = %v, want optimal %v", c.Value, opt.Value)
	}
}

func TestPaperAdversarialCase2(t *testing.T) {
	p := paperCase2()
	d := p.DensityGreedy()
	v := p.ValueGreedy()
	c := p.Combined()
	opt := p.BruteForce()

	if v.Value != 3 {
		t.Errorf("value-greedy value = %v, want 3 (paper's failure case)", v.Value)
	}
	if d.Value != 8 {
		t.Errorf("density-greedy value = %v, want 8", d.Value)
	}
	if opt.Value != 8 {
		t.Fatalf("optimum = %v, want 8", opt.Value)
	}
	if c.Value != opt.Value {
		t.Errorf("combined = %v, want optimal %v", c.Value, opt.Value)
	}
}

func TestValidate(t *testing.T) {
	if err := (&Problem{}).Validate(); err == nil {
		t.Error("empty problem should fail validation")
	}
	p := &Problem{Items: []Item{{Values: []float64{1}, Weights: []float64{1, 2}}}}
	if err := p.Validate(); err == nil {
		t.Error("mismatched lengths should fail validation")
	}
	p = &Problem{Items: []Item{{}}}
	if err := p.Validate(); err == nil {
		t.Error("zero-level item should fail validation")
	}
	p = paperCase1()
	if err := p.Validate(); err != nil {
		t.Errorf("valid problem rejected: %v", err)
	}
}

func TestSingleItemClimbsToCap(t *testing.T) {
	p := &Problem{
		Budget: 100,
		Items: []Item{{
			Values:  []float64{1, 2, 3, 4, 5, 6},
			Weights: []float64{1, 2, 4, 8, 16, 32},
			Cap:     10,
		}},
	}
	got := p.Combined()
	if got.Levels[0] != 4 {
		t.Errorf("level = %d, want 4 (weight 8 <= cap 10 < 16)", got.Levels[0])
	}
	opt := p.BruteForce()
	if opt.Value != got.Value {
		t.Errorf("greedy %v != optimal %v on a single item", got.Value, opt.Value)
	}
}

func TestSharedBudgetBinds(t *testing.T) {
	// Two identical items; budget fits one full upgrade path plus a partial.
	mk := func() Item {
		return Item{
			Values:  []float64{0, 3, 5, 6},
			Weights: []float64{0, 1, 2.5, 4.5},
			Cap:     100,
		}
	}
	p := &Problem{Budget: 3.5, Items: []Item{mk(), mk()}}
	got := p.Combined()
	opt := p.BruteForce()
	if got.Weight > p.Budget+1e-12 {
		t.Fatalf("combined exceeded budget: %v > %v", got.Weight, p.Budget)
	}
	if got.Value < opt.Value/2 {
		t.Errorf("combined %v below half of optimal %v", got.Value, opt.Value)
	}
	// Optimum: one item to level 3 (weight 2.5) and the other to level 2
	// (weight 1), total weight 3.5 = budget, value 5 + 3 = 8. The greedy
	// reaches it here.
	if opt.Value != 8 {
		t.Errorf("optimum = %v, want 8", opt.Value)
	}
	if got.Value != 8 {
		t.Errorf("combined = %v, want 8", got.Value)
	}
}

func TestNegativeIncrementsStop(t *testing.T) {
	// Value decreases beyond level 2 (as h_n can under the variance term):
	// both passes must stop rather than climb.
	p := &Problem{
		Budget: 100,
		Items: []Item{{
			Values:  []float64{1, 4, 3, 2},
			Weights: []float64{1, 2, 3, 4},
			Cap:     100,
		}},
	}
	got := p.Combined()
	if got.Levels[0] != 2 {
		t.Errorf("level = %d, want 2 (stop at negative increment)", got.Levels[0])
	}
	if got.Value != 4 {
		t.Errorf("value = %v, want 4", got.Value)
	}
}

func TestAllBaseWhenBudgetTiny(t *testing.T) {
	p := paperCase2()
	p.Budget = 0
	got := p.Combined()
	for i, l := range got.Levels {
		if l != 1 {
			t.Errorf("item %d at level %d, want base level 1", i, l)
		}
	}
}

func TestPerItemCapGatesUpgrade(t *testing.T) {
	p := &Problem{
		Budget: 100,
		Items: []Item{
			{Values: []float64{0, 10}, Weights: []float64{0, 5}, Cap: 4},
			{Values: []float64{0, 1}, Weights: []float64{0, 1}, Cap: 4},
		},
	}
	got := p.Combined()
	if got.Levels[0] != 1 {
		t.Errorf("item 0 should be capped at base, got level %d", got.Levels[0])
	}
	if got.Levels[1] != 2 {
		t.Errorf("item 1 should upgrade, got level %d", got.Levels[1])
	}
}

// randomConcaveProblem builds an instance with concave non-decreasing values
// and convex non-decreasing weights, the shape assumed by Theorem 1.
func randomConcaveProblem(rng *rand.Rand, n, levels int) *Problem {
	items := make([]Item, n)
	var totalBase float64
	for i := range items {
		values := make([]float64, levels)
		weights := make([]float64, levels)
		dv := 1 + rng.Float64()*4
		dw := 0.2 + rng.Float64()
		v, w := rng.Float64(), rng.Float64()*0.5
		for l := 0; l < levels; l++ {
			v += dv
			w += dw
			values[l] = v
			weights[l] = w
			dv *= 0.4 + rng.Float64()*0.6 // shrinking increments: concave
			dw *= 1 + rng.Float64()       // growing increments: convex
		}
		items[i] = Item{Values: values, Weights: weights, Cap: weights[0] + rng.Float64()*weights[levels-1]}
		totalBase += weights[0]
	}
	return &Problem{
		Items:  items,
		Budget: totalBase + rng.Float64()*float64(n)*2,
	}
}

// TestCombinedHalfApproximation is the empirical check of Theorem 1: on
// random concave/convex instances the combined greedy achieves at least half
// the brute-force optimum.
func TestCombinedHalfApproximation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(4)
		levels := 2 + rng.Intn(5)
		p := randomConcaveProblem(rng, n, levels)
		got := p.Combined()
		opt := p.BruteForce()
		if opt.Value <= 0 {
			continue
		}
		if got.Value < opt.Value/2-1e-9 {
			t.Fatalf("trial %d: combined %v < half of optimal %v\nproblem: %+v",
				trial, got.Value, opt.Value, p)
		}
		if got.Weight > p.Budget+1e-9 {
			t.Fatalf("trial %d: combined weight %v exceeds budget %v",
				trial, got.Weight, p.Budget)
		}
	}
}

// TestFractionalBoundDominatesOptimum checks V_p >= OPT (eq. (10) in the
// proof of Theorem 1) on random concave/convex instances.
func TestFractionalBoundDominatesOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		p := randomConcaveProblem(rng, 2+rng.Intn(3), 2+rng.Intn(4))
		opt := p.BruteForce()
		vp := p.FractionalBound()
		if vp < opt.Value-1e-9 {
			t.Fatalf("trial %d: fractional bound %v below optimum %v",
				trial, vp, opt.Value)
		}
	}
}

// TestGreedyNearOptimalInPractice mirrors the paper's simulation finding
// that the algorithm is usually much better than its 1/2 worst case: on
// random realistic instances the mean ratio should exceed 95%.
func TestGreedyNearOptimalInPractice(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var ratioSum float64
	trials := 200
	for trial := 0; trial < trials; trial++ {
		p := randomConcaveProblem(rng, 4, 6)
		got := p.Combined()
		opt := p.BruteForce()
		if opt.Value <= 0 {
			ratioSum++
			continue
		}
		ratioSum += got.Value / opt.Value
	}
	if avg := ratioSum / float64(trials); avg < 0.95 {
		t.Errorf("average optimality ratio = %v, want >= 0.95", avg)
	}
}

func TestBruteForceRespectsBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		p := randomConcaveProblem(rng, 3, 4)
		opt := p.BruteForce()
		base := p.baseSolution()
		if opt.Weight > p.Budget+1e-9 && opt.Value != base.Value {
			t.Fatalf("optimal solution violates budget: %+v budget %v", opt, p.Budget)
		}
		for i, l := range opt.Levels {
			if l > 1 && p.Items[i].Weights[l-1] > p.Items[i].Cap+1e-9 {
				t.Fatalf("optimal solution violates per-item cap: item %d", i)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	p := paperCase2()
	a := p.Combined()
	b := p.Combined()
	if a.Value != b.Value || a.Weight != b.Weight {
		t.Errorf("Combined is not deterministic: %+v vs %+v", a, b)
	}
	for i := range a.Levels {
		if a.Levels[i] != b.Levels[i] {
			t.Errorf("levels differ at %d", i)
		}
	}
}

func TestFractionalBoundPartialUpgrade(t *testing.T) {
	// One item, budget covers half the single upgrade: bound takes half the
	// value increment.
	p := &Problem{
		Budget: 1,
		Items: []Item{{
			Values:  []float64{0, 4},
			Weights: []float64{0, 2},
			Cap:     100,
		}},
	}
	if got := p.FractionalBound(); math.Abs(got-2) > 1e-9 {
		t.Errorf("fractional bound = %v, want 2", got)
	}
}

func TestTracedPassesMatchUntraced(t *testing.T) {
	p := paperCase2()
	var tr CombinedTrace
	traced := p.CombinedTraced(&tr)
	plain := p.Combined()
	if traced.Value != plain.Value || traced.Weight != plain.Weight {
		t.Errorf("traced = %+v, plain = %+v", traced, plain)
	}
	if tr.Picked != BranchDensity && tr.Picked != BranchValue {
		t.Errorf("no branch picked: %+v", tr)
	}
	if tr.Picked.String() != "density" && tr.Picked.String() != "value" {
		t.Errorf("branch string = %q", tr.Picked.String())
	}
}

func TestTraceRecordsBudgetRejection(t *testing.T) {
	// Two identical items; the budget admits exactly one upgrade, so the
	// second upgrade attempt must be reverted with a budget rejection.
	p := &Problem{
		Budget: 3,
		Items: []Item{
			{Values: []float64{1, 2}, Weights: []float64{1, 2}, Cap: 100},
			{Values: []float64{1, 2}, Weights: []float64{1, 2}, Cap: 100},
		},
	}
	var tr PassTrace
	sol := p.DensityGreedyTraced(&tr)
	if sol.Weight > p.Budget {
		t.Fatalf("infeasible solution: %+v", sol)
	}
	if tr.Upgrades != 1 {
		t.Errorf("upgrades = %d, want 1", tr.Upgrades)
	}
	if len(tr.Rejections) != 1 {
		t.Fatalf("rejections = %+v, want exactly one", tr.Rejections)
	}
	rej := tr.Rejections[0]
	if rej.Reason != RejectBudget || rej.Level != 2 {
		t.Errorf("rejection = %+v, want budget at level 2", rej)
	}
	if rej.Reason.String() != "budget" {
		t.Errorf("reason string = %q", rej.Reason.String())
	}
}

func TestTraceRecordsCapRejection(t *testing.T) {
	// Ample shared budget but a tight per-item cap: the upgrade fails the
	// B_n check.
	p := &Problem{
		Budget: 100,
		Items: []Item{
			{Values: []float64{1, 2}, Weights: []float64{1, 5}, Cap: 2},
		},
	}
	var tr PassTrace
	sol := p.ValueGreedyTraced(&tr)
	if sol.Levels[0] != 1 {
		t.Fatalf("cap-violating upgrade kept: %+v", sol)
	}
	if tr.Upgrades != 0 || len(tr.Rejections) != 1 {
		t.Fatalf("trace = %+v", tr)
	}
	if got := tr.Rejections[0]; got.Reason != RejectItemCap || got.Reason.String() != "user-cap" {
		t.Errorf("rejection = %+v, want user-cap", got)
	}
}

func TestTraceNilIsAccepted(t *testing.T) {
	p := paperCase2()
	a := p.CombinedTraced(nil)
	b := p.DensityGreedyTraced(nil)
	c := p.ValueGreedyTraced(nil)
	if a.Value < b.Value || a.Value < c.Value {
		t.Errorf("combined %v below a pass (%v, %v)", a.Value, b.Value, c.Value)
	}
}
