package knapsack

import (
	"math"
	"math/rand"
	"testing"
)

// randomArbitraryProblem builds an instance with no shape guarantees:
// values may be non-monotone and non-concave, weights non-monotone and
// non-convex, caps and budget anywhere from binding to slack. It exercises
// every branch of the greedy passes (negative scores, dw <= 0 degeneracy,
// cap and budget rejections) without the Theorem 1 preconditions.
func randomArbitraryProblem(rng *rand.Rand, n, levels int) *Problem {
	items := make([]Item, n)
	for i := range items {
		values := make([]float64, levels)
		weights := make([]float64, levels)
		for l := 0; l < levels; l++ {
			values[l] = math.Round((rng.Float64()*20-5)*16) / 16
			weights[l] = math.Round(rng.Float64()*10*16) / 16
			if rng.Intn(4) == 0 && l > 0 {
				weights[l] = weights[l-1] // flat step: dw == 0 path
			}
		}
		cap_ := math.Round(rng.Float64()*12*16) / 16
		if rng.Intn(3) == 0 {
			cap_ = weights[levels-1] + 1 // slack cap
		}
		items[i] = Item{Values: values, Weights: weights, Cap: cap_}
	}
	budget := math.Round(rng.Float64()*float64(n)*8*16) / 16
	if rng.Intn(5) == 0 {
		budget = 0
	}
	return &Problem{Items: items, Budget: budget}
}

// exactTieProblem builds identical items, so every pick of both passes is
// an exact score tie: the deterministic rule (lowest index first) fully
// determines the outcome.
func exactTieProblem(n int, budgetUpgrades int) *Problem {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{
			Values:  []float64{0, 1, 1.5},
			Weights: []float64{0, 1, 2},
			Cap:     100,
		}
	}
	return &Problem{Items: items, Budget: float64(budgetUpgrades)}
}

// generatorShapes enumerates the instance families the differential suites
// draw from; name shows up in failure messages.
type shapeGen struct {
	name string
	gen  func(rng *rand.Rand) *Problem
}

func allShapes() []shapeGen {
	return []shapeGen{
		{"concave", func(rng *rand.Rand) *Problem {
			return randomConcaveProblem(rng, 1+rng.Intn(10), 1+rng.Intn(7))
		}},
		{"arbitrary", func(rng *rand.Rand) *Problem {
			return randomArbitraryProblem(rng, 1+rng.Intn(10), 1+rng.Intn(7))
		}},
		{"tied", func(rng *rand.Rand) *Problem {
			return exactTieProblem(2+rng.Intn(6), rng.Intn(8))
		}},
		{"paper1", func(rng *rand.Rand) *Problem { return paperCase1() }},
		{"paper2", func(rng *rand.Rand) *Problem { return paperCase2() }},
	}
}

// checkFeasible asserts the greedy feasibility contract: the base level is
// always admissible; any upgraded item satisfies its cap, and if any item
// upgraded at all the total weight satisfies the shared budget.
func checkFeasible(t *testing.T, p *Problem, sol Solution, who string) {
	t.Helper()
	upgraded := false
	for i, l := range sol.Levels {
		if l < 1 || l > p.Items[i].Levels() {
			t.Fatalf("%s: item %d at out-of-range level %d", who, i, l)
		}
		if l > 1 {
			upgraded = true
			if p.Items[i].Weights[l-1] > p.Items[i].Cap+1e-9 {
				t.Fatalf("%s: item %d level %d weight %v exceeds cap %v",
					who, i, l, p.Items[i].Weights[l-1], p.Items[i].Cap)
			}
		}
	}
	if upgraded && sol.Weight > p.Budget+1e-9 {
		t.Fatalf("%s: upgraded solution weight %v exceeds budget %v", who, sol.Weight, p.Budget)
	}
	value, weight := p.valueOf(sol.Levels)
	if math.Abs(value-sol.Value) > 1e-6*(1+math.Abs(value)) {
		t.Fatalf("%s: reported value %v, recomputed %v", who, sol.Value, value)
	}
	if math.Abs(weight-sol.Weight) > 1e-6*(1+math.Abs(weight)) {
		t.Fatalf("%s: reported weight %v, recomputed %v", who, sol.Weight, weight)
	}
}

// equalSolutions asserts bit-identical levels, value and weight.
func equalSolutions(t *testing.T, want, got Solution, who string) {
	t.Helper()
	if len(want.Levels) != len(got.Levels) {
		t.Fatalf("%s: level count %d != %d", who, len(got.Levels), len(want.Levels))
	}
	for i := range want.Levels {
		if want.Levels[i] != got.Levels[i] {
			t.Fatalf("%s: levels differ at item %d: got %v, want %v", who, i, got.Levels, want.Levels)
		}
	}
	if math.Float64bits(want.Value) != math.Float64bits(got.Value) {
		t.Fatalf("%s: value %v (bits %x) != reference %v (bits %x)",
			who, got.Value, math.Float64bits(got.Value), want.Value, math.Float64bits(want.Value))
	}
	if math.Float64bits(want.Weight) != math.Float64bits(got.Weight) {
		t.Fatalf("%s: weight %v != reference %v", who, got.Weight, want.Weight)
	}
}

// equalPassTraces asserts identical upgrade counts and rejection sequences.
func equalPassTraces(t *testing.T, want, got PassTrace, who string) {
	t.Helper()
	if want.Upgrades != got.Upgrades {
		t.Fatalf("%s: upgrades %d != reference %d", who, got.Upgrades, want.Upgrades)
	}
	if len(want.Rejections) != len(got.Rejections) {
		t.Fatalf("%s: rejections %+v != reference %+v", who, got.Rejections, want.Rejections)
	}
	for i := range want.Rejections {
		if want.Rejections[i] != got.Rejections[i] {
			t.Fatalf("%s: rejection %d: %+v != reference %+v",
				who, i, got.Rejections[i], want.Rejections[i])
		}
	}
}
