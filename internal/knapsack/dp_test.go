package knapsack

import (
	"math/rand"
	"testing"
)

func TestDPMatchesBruteForceOnPaperCases(t *testing.T) {
	for name, p := range map[string]*Problem{
		"case1": paperCase1(),
		"case2": paperCase2(),
	} {
		opt := p.BruteForce()
		dp := p.DynamicProgram(0.01)
		if dp.Value != opt.Value {
			t.Errorf("%s: DP %v != brute force %v", name, dp.Value, opt.Value)
		}
		if dp.Weight > p.Budget+1e-9 {
			t.Errorf("%s: DP violates budget", name)
		}
	}
}

func TestDPMatchesBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		p := randomConcaveProblem(rng, 2+rng.Intn(4), 2+rng.Intn(4))
		opt := p.BruteForce()
		dp := p.DynamicProgram(p.Budget / 4096)
		if dp.Weight > p.Budget+1e-9 {
			t.Fatalf("trial %d: DP weight %v exceeds budget %v", trial, dp.Weight, p.Budget)
		}
		// Fine discretization: DP must be within a small rounding loss of
		// the optimum, and never above it.
		if dp.Value > opt.Value+1e-9 {
			t.Fatalf("trial %d: DP %v above optimum %v", trial, dp.Value, opt.Value)
		}
		if dp.Value < opt.Value-0.05*absOr1(opt.Value) {
			t.Fatalf("trial %d: DP %v too far below optimum %v", trial, dp.Value, opt.Value)
		}
	}
}

func absOr1(x float64) float64 {
	if x < 0 {
		x = -x
	}
	if x < 1 {
		return 1
	}
	return x
}

func TestDPScalesBeyondBruteForce(t *testing.T) {
	// 20 items x 6 levels: far beyond brute force (6^20), trivial for DP.
	rng := rand.New(rand.NewSource(18))
	p := randomConcaveProblem(rng, 20, 6)
	dp := p.DynamicProgram(p.Budget / 2048)
	combined := p.Combined()
	if dp.Weight > p.Budget+1e-9 {
		t.Fatalf("DP weight %v exceeds budget %v", dp.Weight, p.Budget)
	}
	// DP (near-exact) must not lose to the 1/2-approximation by more than
	// the discretization slack.
	if dp.Value < combined.Value-0.05*absOr1(combined.Value) {
		t.Errorf("DP %v below greedy %v", dp.Value, combined.Value)
	}
}

func TestDPTinyBudget(t *testing.T) {
	p := paperCase2()
	p.Budget = 0
	dp := p.DynamicProgram(0.1)
	for i, l := range dp.Levels {
		if l != 1 {
			t.Errorf("item %d at level %d, want 1", i, l)
		}
	}
}

func TestDPDefaultResolution(t *testing.T) {
	p := paperCase1()
	dp := p.DynamicProgram(0)
	if dp.Value != 4 {
		t.Errorf("default-resolution DP = %v, want 4", dp.Value)
	}
}

func TestDPRespectsPerItemCap(t *testing.T) {
	p := &Problem{
		Budget: 100,
		Items: []Item{
			{Values: []float64{0, 10}, Weights: []float64{0, 5}, Cap: 4},
			{Values: []float64{0, 1}, Weights: []float64{0, 1}, Cap: 4},
		},
	}
	dp := p.DynamicProgram(0.1)
	if dp.Levels[0] != 1 || dp.Levels[1] != 2 {
		t.Errorf("levels = %v, want [1 2]", dp.Levels)
	}
}

func BenchmarkDP30Items(b *testing.B) {
	rng := rand.New(rand.NewSource(19))
	p := randomConcaveProblem(rng, 30, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.DynamicProgram(p.Budget / 1024)
	}
}
