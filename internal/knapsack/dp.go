package knapsack

import "math"

// DynamicProgram solves the nonlinear knapsack exactly on a discretized
// budget grid — the classic pseudo-polynomial alternative to BruteForce
// that stays tractable for many items. Weights are rounded UP to the grid,
// so every returned solution is feasible for the original budget; the cost
// is that solutions needing the rounded-away slack may be missed, making
// the result a lower bound that converges to the optimum as resolution
// shrinks.
//
// resolution is the grid step in weight units (e.g. 0.25 Mbps); values
// <= 0 default to budget/2048. Complexity is O(N * L * budget/resolution).
func (p *Problem) DynamicProgram(resolution float64) Solution {
	n := len(p.Items)
	base := p.baseSolution()
	if n == 0 {
		return base
	}
	if resolution <= 0 {
		resolution = p.Budget / 2048
	}
	if resolution <= 0 {
		return base
	}

	// Budget grid. Weights are charged relative to the base level so the
	// all-ones assignment is always representable (cell 0), matching the
	// greedy passes' convention that level 1 is always admissible.
	cells := int(math.Floor(p.Budget/resolution)) + 1
	baseWeight := base.Weight
	gridSlack := p.Budget - baseWeight
	if gridSlack < 0 {
		// Base already violates the budget; nothing can upgrade.
		return base
	}
	cells = int(math.Floor(gridSlack/resolution)) + 1

	minusInf := math.Inf(-1)
	// best[b] = max extra value using exactly <= b grid cells of extra
	// weight; choice[i][b] = level chosen for item i at cell b.
	best := make([]float64, cells)
	prev := make([]float64, cells)
	choice := make([][]int16, n)

	for i := 0; i < n; i++ {
		it := p.Items[i]
		choice[i] = make([]int16, cells)
		copy(prev, best)
		for b := 0; b < cells; b++ {
			best[b] = minusInf
		}
		for level := 1; level <= it.Levels(); level++ {
			w := it.Weights[level-1]
			if level > 1 && w > it.Cap {
				break // weights non-decreasing: higher levels fail too
			}
			extraW := w - it.Weights[0]
			if extraW < 0 {
				extraW = 0
			}
			cost := int(math.Ceil(extraW/resolution - 1e-12))
			extraV := it.Values[level-1] - it.Values[0]
			for b := cost; b < cells; b++ {
				if prev[b-cost] == minusInf {
					continue
				}
				if v := prev[b-cost] + extraV; v > best[b] {
					best[b] = v
					choice[i][b] = int16(level)
				}
			}
		}
		// Monotone envelope: allow leaving grid cells unused.
		for b := 1; b < cells; b++ {
			if best[b-1] > best[b] {
				best[b] = best[b-1]
				choice[i][b] = 0 // marker: inherit from b-1
			}
		}
	}

	// Find the best terminal cell and backtrack.
	bestCell := cells - 1
	levels := make([]int, n)
	b := bestCell
	for i := n - 1; i >= 0; i-- {
		for b > 0 && choice[i][b] == 0 {
			b--
		}
		level := int(choice[i][b])
		if level == 0 {
			level = 1 // degenerate: nothing chosen, stay at base
		}
		levels[i] = level
		it := p.Items[i]
		extraW := it.Weights[level-1] - it.Weights[0]
		if extraW < 0 {
			extraW = 0
		}
		b -= int(math.Ceil(extraW/resolution - 1e-12))
		if b < 0 {
			b = 0
		}
	}
	value, weight := p.valueOf(levels)
	if weight > p.Budget+1e-9 || value < base.Value {
		return base
	}
	return Solution{Levels: levels, Value: value, Weight: weight}
}
