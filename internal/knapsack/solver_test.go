package knapsack

import (
	"math/rand"
	"testing"
)

// TestSolverMatchesReference is the core differential guarantee of the heap
// rewrite: on thousands of randomized instances across every shape family,
// the Solver's three passes return bit-identical solutions and traces to
// the original rescan engine.
func TestSolverMatchesReference(t *testing.T) {
	var s Solver
	for _, shape := range allShapes() {
		t.Run(shape.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(1234))
			for trial := 0; trial < 600; trial++ {
				p := shape.gen(rng)

				var refTr, gotTr CombinedTrace
				ref := p.ReferenceCombinedTraced(&refTr)
				got := s.CombinedTraced(p, &gotTr)
				equalSolutions(t, ref, got, "combined")
				equalPassTraces(t, refTr.Density, gotTr.Density, "combined/density")
				equalPassTraces(t, refTr.Value, gotTr.Value, "combined/value")
				if refTr.Picked != gotTr.Picked {
					t.Fatalf("picked %v != reference %v", gotTr.Picked, refTr.Picked)
				}

				var refD, gotD PassTrace
				equalSolutions(t, p.ReferenceDensityGreedyTraced(&refD),
					s.DensityGreedyTraced(p, &gotD), "density")
				equalPassTraces(t, refD, gotD, "density")

				var refV, gotV PassTrace
				equalSolutions(t, p.ReferenceValueGreedyTraced(&refV),
					s.ValueGreedyTraced(p, &gotV), "value")
				equalPassTraces(t, refV, gotV, "value")

				checkFeasible(t, p, got, "solver")
			}
		})
	}
}

// TestPooledAPIMatchesReference checks the public Problem methods (now
// backed by a pooled Solver) against the reference engine, including that
// the returned Levels are detached from solver scratch.
func TestPooledAPIMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 300; trial++ {
		p := randomArbitraryProblem(rng, 1+rng.Intn(8), 1+rng.Intn(6))
		a := p.Combined()
		b := p.Combined()
		equalSolutions(t, p.ReferenceCombined(), a, "pooled combined")
		// Mutating one result must not affect the other (no shared scratch).
		if len(a.Levels) > 0 {
			a.Levels[0] = -99
			if b.Levels[0] == -99 {
				t.Fatal("pooled Combined returned aliased Levels")
			}
		}
		equalSolutions(t, p.ReferenceDensityGreedy(), p.DensityGreedy(), "pooled density")
		equalSolutions(t, p.ReferenceValueGreedy(), p.ValueGreedy(), "pooled value")
	}
}

// TestTieBreakDeterministic is the regression test for the explicit
// tie-break rule: on exact score ties the lowest item index upgrades first,
// in both engines and both passes. With two identical items and budget for
// exactly one upgrade, item 0 must win and item 1 must carry the budget
// rejection.
func TestTieBreakDeterministic(t *testing.T) {
	p := &Problem{
		Budget: 1,
		Items: []Item{
			{Values: []float64{0, 1}, Weights: []float64{0, 1}, Cap: 100},
			{Values: []float64{0, 1}, Weights: []float64{0, 1}, Cap: 100},
		},
	}
	var s Solver
	for _, run := range []struct {
		name  string
		solve func(tr *PassTrace) Solution
	}{
		{"reference/density", p.ReferenceDensityGreedyTraced},
		{"reference/value", p.ReferenceValueGreedyTraced},
		{"solver/density", func(tr *PassTrace) Solution { return s.DensityGreedyTraced(p, tr) }},
		{"solver/value", func(tr *PassTrace) Solution { return s.ValueGreedyTraced(p, tr) }},
	} {
		var tr PassTrace
		sol := run.solve(&tr)
		if sol.Levels[0] != 2 || sol.Levels[1] != 1 {
			t.Errorf("%s: levels = %v, want [2 1] (lowest index wins the tie)", run.name, sol.Levels)
		}
		if tr.Upgrades != 1 || len(tr.Rejections) != 1 || tr.Rejections[0].Item != 1 {
			t.Errorf("%s: trace = %+v, want one upgrade and a rejection on item 1", run.name, tr)
		}
	}

	// Larger all-tied instance: upgrades must fill items in index order.
	big := exactTieProblem(6, 3)
	sol := s.DensityGreedy(big)
	want := []int{2, 2, 2, 1, 1, 1}
	for i := range want {
		if sol.Levels[i] != want[i] {
			t.Fatalf("tied instance levels = %v, want %v", sol.Levels, want)
		}
	}
	if !betterCandidate(1, 2, 1, 5) {
		t.Error("betterCandidate must prefer the lower index on an exact tie")
	}
	if betterCandidate(1, 5, 1, 2) {
		t.Error("betterCandidate must keep the lower-index incumbent on an exact tie")
	}
}

// TestSolverZeroAllocSteadyState is the acceptance gate for the fast path:
// once the scratch buffers are warm, a 30-user slot solve performs zero
// heap allocations.
func TestSolverZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	p := randomConcaveProblem(rng, 30, 6)
	var s Solver
	s.Combined(p) // warm the scratch buffers
	if allocs := testing.AllocsPerRun(100, func() { s.Combined(p) }); allocs != 0 {
		t.Errorf("steady-state Solver.Combined allocates %v times per op, want 0", allocs)
	}
	var tr CombinedTrace
	s.CombinedTraced(p, &tr)
	if allocs := testing.AllocsPerRun(100, func() {
		tr.Density.Rejections = tr.Density.Rejections[:0]
		tr.Value.Rejections = tr.Value.Rejections[:0]
		s.CombinedTraced(p, &tr)
	}); allocs != 0 {
		t.Errorf("steady-state traced solve allocates %v times per op, want 0", allocs)
	}
}

// TestSolverScratchReuseAcrossSizes checks that a Solver survives being
// reused across problems of very different sizes (shrinking and growing
// buffers), still matching the reference each time.
func TestSolverScratchReuseAcrossSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var s Solver
	for trial := 0; trial < 60; trial++ {
		n := []int{1, 200, 3, 47, 1000, 12}[trial%6]
		p := randomConcaveProblem(rng, n, 1+rng.Intn(6))
		equalSolutions(t, p.ReferenceCombined(), s.Combined(p), "resize")
	}
}

// TestSolveBatchMatchesSequential checks the sharded batch API: order
// preserved, every result identical to a sequential Combined, at several
// worker counts including degenerate ones.
func TestSolveBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	problems := make([]*Problem, 137)
	want := make([]Solution, len(problems))
	for i := range problems {
		problems[i] = randomArbitraryProblem(rng, 1+rng.Intn(12), 1+rng.Intn(6))
		want[i] = problems[i].ReferenceCombined()
	}
	for _, workers := range []int{-1, 0, 1, 2, 3, 16, 1000} {
		got := SolveBatch(problems, workers)
		if len(got) != len(problems) {
			t.Fatalf("workers=%d: %d results for %d problems", workers, len(got), len(problems))
		}
		for i := range got {
			equalSolutions(t, want[i], got[i], "batch")
		}
	}
	if out := SolveBatch(nil, 4); len(out) != 0 {
		t.Fatalf("empty batch returned %d results", len(out))
	}
}

// TestSingleLevelAndEmptyItems covers the degenerate edges of the heap
// path: items with one level never enter the heap; a problem of only such
// items returns the base solution untouched.
func TestSingleLevelAndEmptyItems(t *testing.T) {
	p := &Problem{
		Budget: 10,
		Items: []Item{
			{Values: []float64{3}, Weights: []float64{1}, Cap: 5},
			{Values: []float64{2}, Weights: []float64{0.5}, Cap: 5},
		},
	}
	var s Solver
	got := s.Combined(p)
	if got.Levels[0] != 1 || got.Levels[1] != 1 {
		t.Fatalf("levels = %v, want all base", got.Levels)
	}
	if got.Value != 5 || got.Weight != 1.5 {
		t.Fatalf("value/weight = %v/%v, want 5/1.5", got.Value, got.Weight)
	}
	equalSolutions(t, p.ReferenceCombined(), got, "single-level")
}
