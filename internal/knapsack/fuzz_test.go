package knapsack

// Native Go fuzz targets. Arbitrary bytes decode into a Problem through
// fuzzReader (finite values only, bounded sizes), then:
//
//   - FuzzGreedy cross-checks the heap Solver against the reference scan
//     (bit-identical solutions and traces) and the feasibility contract.
//   - FuzzDynamicProgram cross-checks DynamicProgram against BruteForce
//     (never above the exact optimum, always feasible).
//
// Neither target may panic on any input. Seed corpora live under
// testdata/fuzz/<Target>/ and `make fuzz-smoke` runs each target briefly.

import (
	"math/rand"
	"testing"
)

// fuzzReader deterministically consumes bytes; exhausted input reads as 0.
type fuzzReader struct {
	data []byte
	pos  int
}

func (r *fuzzReader) byte() byte {
	if r.pos >= len(r.data) {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

func (r *fuzzReader) u16() uint16 {
	return uint16(r.byte())<<8 | uint16(r.byte())
}

// signed returns a finite float in [-512, 512) with a 1/64 grid, so exact
// ties between items are common (the interesting case for tie-breaking).
func (r *fuzzReader) signed() float64 { return float64(int16(r.u16())) / 64 }

// unsigned returns a finite float in [0, 256) with a 1/256 grid.
func (r *fuzzReader) unsigned() float64 { return float64(r.u16()) / 256 }

// decodeProblem builds a bounded, finite Problem from arbitrary bytes.
// Weights are arbitrary nonnegative (non-monotone allowed) unless
// monotoneWeights is set, which sorts each ladder into the non-decreasing
// shape BruteForce's cap pruning assumes.
func decodeProblem(r *fuzzReader, maxItems, maxLevels int, monotoneWeights bool) *Problem {
	n := 1 + int(r.byte())%maxItems
	items := make([]Item, n)
	for i := range items {
		levels := 1 + int(r.byte())%maxLevels
		values := make([]float64, levels)
		weights := make([]float64, levels)
		for l := 0; l < levels; l++ {
			values[l] = r.signed()
			weights[l] = r.unsigned()
			if monotoneWeights && l > 0 && weights[l] < weights[l-1] {
				weights[l] = weights[l-1] + r.unsigned()/16
			}
		}
		items[i] = Item{Values: values, Weights: weights, Cap: r.unsigned()}
	}
	return &Problem{Items: items, Budget: r.unsigned() * float64(n)}
}

func FuzzGreedy(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 2, 0, 64, 0, 0, 1, 0, 0, 128})
	f.Add([]byte("knapsack-greedy-seed"))
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 4; i++ {
		raw := make([]byte, 8+rng.Intn(64))
		rng.Read(raw)
		f.Add(raw)
	}
	var s Solver
	f.Fuzz(func(t *testing.T, data []byte) {
		p := decodeProblem(&fuzzReader{data: data}, 8, 6, false)
		if err := p.Validate(); err != nil {
			t.Fatalf("decoder produced invalid problem: %v", err)
		}
		var refTr, gotTr CombinedTrace
		ref := p.ReferenceCombinedTraced(&refTr)
		got := s.CombinedTraced(p, &gotTr)
		equalSolutions(t, ref, got, "fuzz combined")
		equalPassTraces(t, refTr.Density, gotTr.Density, "fuzz density trace")
		equalPassTraces(t, refTr.Value, gotTr.Value, "fuzz value trace")
		if refTr.Picked != gotTr.Picked {
			t.Fatalf("picked %v != reference %v", gotTr.Picked, refTr.Picked)
		}
		checkFeasible(t, p, got, "fuzz solver")
		equalSolutions(t, p.ReferenceDensityGreedy(), s.DensityGreedy(p), "fuzz density")
		equalSolutions(t, p.ReferenceValueGreedy(), s.ValueGreedy(p), "fuzz value")
	})
}

// FuzzWarmGreedy drives the warm-started solver through a fuzzed
// perturbation sequence: a base problem followed by several rounds of
// single-entry mutations (values, weights, caps, budget). Every round the
// warm solve — which may replay, diverge, or fall back cold — must match a
// from-scratch cold solve bit for bit, traces and top-K alternatives
// included.
func FuzzWarmGreedy(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 2, 0, 64, 0, 0, 1, 0, 0, 128, 2, 1, 0, 0, 3, 99})
	f.Add([]byte("knapsack-warm-seed"))
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 4; i++ {
		raw := make([]byte, 16+rng.Intn(96))
		rng.Read(raw)
		f.Add(raw)
	}
	ws := NewWarmSolver()
	var cold Solver
	f.Fuzz(func(t *testing.T, data []byte) {
		r := &fuzzReader{data: data}
		p := decodeProblem(r, 8, 6, false)
		ws.Reset()
		steps := 2 + int(r.byte())%4
		for step := 0; step < steps; step++ {
			if err := p.Validate(); err != nil {
				t.Fatalf("step %d: mutated problem invalid: %v", step, err)
			}
			var wantTr, gotTr CombinedTrace
			wantTr.Density.TopK, wantTr.Value.TopK = 2, 2
			gotTr.Density.TopK, gotTr.Value.TopK = 2, 2
			want := cold.CombinedTraced(p, &wantTr)
			got := ws.CombinedTraced(p, &gotTr)
			equalSolutions(t, want, got, "fuzz warm combined")
			equalPassTraces(t, wantTr.Density, gotTr.Density, "fuzz warm density trace")
			equalPassTraces(t, wantTr.Value, gotTr.Value, "fuzz warm value trace")
			equalAlternatives(t, wantTr.Density.Alternatives, gotTr.Density.Alternatives, "fuzz warm density alts")
			equalAlternatives(t, wantTr.Value.Alternatives, gotTr.Value.Alternatives, "fuzz warm value alts")
			if wantTr.Picked != gotTr.Picked {
				t.Fatalf("warm picked %v != cold %v", gotTr.Picked, wantTr.Picked)
			}
			checkFeasible(t, p, got, "fuzz warm")
			for m := int(r.byte()) % 5; m > 0; m-- {
				it := &p.Items[int(r.byte())%len(p.Items)]
				l := int(r.byte()) % it.Levels()
				switch r.byte() % 4 {
				case 0:
					it.Values[l] = r.signed()
				case 1:
					it.Weights[l] = r.unsigned()
				case 2:
					it.Cap = r.unsigned()
				case 3:
					p.Budget = r.unsigned() * float64(len(p.Items))
				}
			}
		}
	})
}

func FuzzDynamicProgram(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2, 2, 0, 64, 0, 32, 1, 3, 0, 200})
	f.Add([]byte("knapsack-dp-seed"))
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 4; i++ {
		raw := make([]byte, 8+rng.Intn(48))
		rng.Read(raw)
		f.Add(raw)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r := &fuzzReader{data: data}
		resolution := r.unsigned() / 16 // 0 selects the default grid
		p := decodeProblem(r, 5, 4, true)
		dp := p.DynamicProgram(resolution)
		checkFeasible(t, p, dp, "fuzz dp")
		opt := p.BruteForce()
		checkFeasible(t, p, opt, "fuzz bruteforce")
		if dp.Value > opt.Value+1e-9 {
			t.Fatalf("DP %v above brute-force optimum %v (resolution %v)\nproblem: %+v",
				dp.Value, opt.Value, resolution, p)
		}
	})
}
