// Package trace is the request-scoped tracing layer of the reproduction: an
// allocation-conscious span tracer that follows one tile request through its
// whole lifecycle — slot decision (knapsack solve), budget admission, tile
// fetch, transport send, ACK/NACK/retry, client receive, decode and the
// display-deadline outcome. Trace IDs are derived deterministically from
// (epoch, user, slot) and propagated through transport packet headers, so
// the server and client halves of a request stitch into one trace even
// across reconnects and NACK retransmissions.
//
// Everything is nil-safe, mirroring package obs: a nil *Tracer hands out nil
// spans, and every method on a nil *Tracer or nil *Span is an
// allocation-free no-op, so instrumented hot paths cost a pointer check when
// tracing is disabled. Enabled spans are pooled (sync.Pool) and exported by
// value into a preallocated ring, so the steady-state enabled path does not
// allocate either.
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Span stages, in pipeline order. The server half of a tile request runs
// decide -> admit -> fetch -> send (and ack/retry as feedback arrives); the
// client half runs recv -> decode -> display.
const (
	StageDecide  = "slot.decide"  // knapsack solve over the slot's active set
	StageAdmit   = "budget.admit" // per-user level admission + ledger filtering
	StageFetch   = "tile.fetch"   // tile payload fetch/encode from the store
	StageSend    = "tx.send"      // transport pacing + UDP writes of the batch
	StageRetry   = "tx.retry"     // NACK-driven retransmission of lost tiles
	StageAbandon = "tx.abandon"   // retry budget exhausted: tile given up on
	StageAck     = "tx.ack"       // ACK ingest: estimators + QoE fold-in
	StageBreaker = "session.breaker" // circuit breaker capped the slot's quality
	StageRecv    = "rx.recv"      // first-to-last fragment arrival window
	StageDecode  = "rx.decode"    // decoder-pool admission
	StageDisplay = "rx.display"   // display-deadline outcome
)

// Span sides: which half of the system emitted the span.
const (
	SideServer = "server"
	SideClient = "client"
)

// Span outcomes for stages that resolve a frame's fate.
const (
	OutcomeDisplayed = "displayed"
	OutcomeMissed    = "missed"
)

// SpanRecord is the exported span schema, one JSON line per span. Both the
// live loopback engine and the virtual-time engine emit this exact schema;
// cmd/collabvr-spans consumes it.
type SpanRecord struct {
	Trace   uint64 `json:"trace"`
	Span    uint64 `json:"span"`
	Stage   string `json:"stage"`
	Side    string `json:"side"`
	Algo    string `json:"algo,omitempty"`
	User    uint32 `json:"user"`
	Slot    uint32 `json:"slot"`
	StartNs int64  `json:"start_ns"`
	EndNs   int64  `json:"end_ns"`
	Level   int    `json:"level,omitempty"`
	Tiles   int    `json:"tiles,omitempty"`
	Bytes   int    `json:"bytes,omitempty"`
	Retry   int    `json:"retry,omitempty"`
	Outcome string `json:"outcome,omitempty"`
	Err     string `json:"err,omitempty"`
}

// DurationMs returns the span's duration in milliseconds.
func (r SpanRecord) DurationMs() float64 {
	return float64(r.EndNs-r.StartNs) / 1e6
}

// TileTraceID derives the trace ID of one tile request deterministically
// from (epoch, user, slot) via a splitmix64 finalizer. Both halves of the
// system compute the same ID for the same request — the server when it
// decides the slot, the client from the ID carried in the packet header —
// which is what lets a trace survive reconnects, session supersede and NACK
// retransmission without any per-connection state. The result is never 0
// (0 means "untraced" on the wire).
func TileTraceID(epoch uint64, user, slot uint32) uint64 {
	x := epoch ^ (uint64(user)<<32 | uint64(slot))
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		return 1
	}
	return x
}

// Options configures a Tracer.
type Options struct {
	// Sample keeps 1 in Sample traces (deterministically, by trace ID);
	// 0 or 1 keeps every trace.
	Sample uint64
	// Clock supplies span timestamps in nanoseconds. Nil means wall clock
	// (time.Now().UnixNano()); the virtual-time engines inject a virtual
	// clock instead.
	Clock func() int64
	// Exporter receives finished spans. Nil means a default ring-only
	// exporter (no JSONL writer).
	Exporter *Exporter
}

// Tracer creates spans. A nil *Tracer is the disabled tracer: Start returns
// nil and every span method on the nil span is an allocation-free no-op.
type Tracer struct {
	clock  func() int64
	sample uint64
	exp    *Exporter
	seq    atomic.Uint64
	pool   sync.Pool

	started    atomic.Uint64 // Start calls on traced requests (pre-sampling)
	sampledOut atomic.Uint64 // Start calls suppressed by sampling
}

// New builds a tracer.
func New(opts Options) *Tracer {
	if opts.Clock == nil {
		opts.Clock = func() int64 { return time.Now().UnixNano() }
	}
	if opts.Exporter == nil {
		opts.Exporter = NewExporter(ExporterOptions{})
	}
	if opts.Sample == 0 {
		opts.Sample = 1
	}
	t := &Tracer{clock: opts.Clock, sample: opts.Sample, exp: opts.Exporter}
	t.pool.New = func() any { return new(Span) }
	return t
}

// Enabled reports whether spans will be recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// Exporter returns the tracer's exporter (nil on a nil tracer).
func (t *Tracer) Exporter() *Exporter {
	if t == nil {
		return nil
	}
	return t.exp
}

// Now returns the tracer's clock reading (0 on a nil tracer). Use it to
// capture stage boundaries that several spans share, e.g. the slot solve
// interval recorded into every planned user's trace.
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return t.clock()
}

// Sampled reports whether the given trace ID survives the sampling filter.
func (t *Tracer) Sampled(traceID uint64) bool {
	if t == nil || traceID == 0 {
		return false
	}
	return t.sample <= 1 || traceID%t.sample == 0
}

// Started and SampledOut return the tracer's span-creation counters.
func (t *Tracer) Started() uint64 {
	if t == nil {
		return 0
	}
	return t.started.Load()
}

// SampledOut returns the number of Start calls suppressed by sampling.
func (t *Tracer) SampledOut() uint64 {
	if t == nil {
		return 0
	}
	return t.sampledOut.Load()
}

// Start opens a span at the tracer's current clock. It returns nil — an
// inert span — when the tracer is disabled, the trace ID is 0 (untraced on
// the wire), or the trace is sampled out.
func (t *Tracer) Start(traceID uint64, stage, side string, user, slot uint32) *Span {
	if t == nil {
		return nil
	}
	return t.StartAt(traceID, stage, side, user, slot, t.clock())
}

// StartAt opens a span with an explicit start timestamp (virtual-time
// engines and arrival-window spans use it).
func (t *Tracer) StartAt(traceID uint64, stage, side string, user, slot uint32, startNs int64) *Span {
	if t == nil || traceID == 0 {
		return nil
	}
	t.started.Add(1)
	if t.sample > 1 && traceID%t.sample != 0 {
		t.sampledOut.Add(1)
		return nil
	}
	sp := t.pool.Get().(*Span)
	sp.t = t
	sp.rec = SpanRecord{
		Trace:   traceID,
		Span:    t.seq.Add(1),
		Stage:   stage,
		Side:    side,
		User:    user,
		Slot:    slot,
		StartNs: startNs,
	}
	return sp
}

// Span is one in-flight stage of a trace. All methods are no-ops on a nil
// span, so call sites never branch on whether tracing is enabled.
type Span struct {
	t   *Tracer
	rec SpanRecord
}

// SetLevel records the quality level the stage handled.
func (sp *Span) SetLevel(level int) {
	if sp != nil {
		sp.rec.Level = level
	}
}

// SetTiles records the tile count the stage handled.
func (sp *Span) SetTiles(n int) {
	if sp != nil {
		sp.rec.Tiles = n
	}
}

// SetBytes records the payload bytes the stage handled.
func (sp *Span) SetBytes(n int) {
	if sp != nil {
		sp.rec.Bytes = n
	}
}

// SetRetry records the retransmission count of the stage.
func (sp *Span) SetRetry(n int) {
	if sp != nil {
		sp.rec.Retry = n
	}
}

// SetAlgo labels the span with the allocator that decided it.
func (sp *Span) SetAlgo(name string) {
	if sp != nil {
		sp.rec.Algo = name
	}
}

// SetOutcome records the frame's fate (OutcomeDisplayed or OutcomeMissed).
func (sp *Span) SetOutcome(outcome string) {
	if sp != nil {
		sp.rec.Outcome = outcome
	}
}

// SetErr records a stage failure.
func (sp *Span) SetErr(msg string) {
	if sp != nil {
		sp.rec.Err = msg
	}
}

// End closes the span at the tracer's current clock and exports it. The
// span must not be used afterwards (it returns to the pool).
func (sp *Span) End() {
	if sp == nil {
		return
	}
	sp.EndAt(sp.t.clock())
}

// EndAt closes the span at an explicit timestamp and exports it.
func (sp *Span) EndAt(endNs int64) {
	if sp == nil {
		return
	}
	sp.rec.EndNs = endNs
	t := sp.t
	t.exp.export(&sp.rec)
	sp.t = nil
	t.pool.Put(sp)
}
