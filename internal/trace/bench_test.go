package trace

import "testing"

// BenchmarkDisabledStartEnd measures the instrumented hot path with tracing
// off: one pointer check per call, 0 allocs/op.
func BenchmarkDisabledStartEnd(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start(TileTraceID(1, 2, uint32(i)), StageSend, SideServer, 2, uint32(i))
		sp.SetTiles(4)
		sp.SetBytes(4096)
		sp.End()
	}
}

// BenchmarkEnabledStartEndRing measures the enabled path with a ring-only
// exporter: pooled span + by-value ring insert, still 0 allocs/op.
func BenchmarkEnabledStartEndRing(b *testing.B) {
	tr := New(Options{Clock: func() int64 { return 0 }})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start(TileTraceID(1, 2, uint32(i)), StageSend, SideServer, 2, uint32(i))
		sp.SetTiles(4)
		sp.SetBytes(4096)
		sp.End()
	}
}

// BenchmarkEnabledSampled64 measures the common production configuration:
// tracing on with 1-in-64 sampling; 63 of 64 calls take the cheap
// sampled-out branch.
func BenchmarkEnabledSampled64(b *testing.B) {
	tr := New(Options{Sample: 64, Clock: func() int64 { return 0 }})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start(TileTraceID(1, 2, uint32(i)), StageSend, SideServer, 2, uint32(i))
		sp.SetTiles(4)
		sp.End()
	}
}

// BenchmarkTileTraceID measures the ID derivation alone.
func BenchmarkTileTraceID(b *testing.B) {
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= TileTraceID(uint64(i), 7, uint32(i))
	}
	_ = sink
}
