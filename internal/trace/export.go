package trace

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
)

// ExporterOptions configures an Exporter.
type ExporterOptions struct {
	// RingSize bounds the in-memory span ring (default 4096; the ring holds
	// the most recent spans for tests and debug endpoints).
	RingSize int
	// Writer, when non-nil, receives every span as one JSON line.
	Writer io.Writer
	// QueueSize bounds the async writer queue (default 65536). When the
	// queue is full the span is counted as dropped instead of blocking the
	// hot path. Ignored with Sync.
	QueueSize int
	// Sync writes each span's JSON line synchronously under the exporter
	// lock instead of through the async queue. Deterministic engines
	// (virtual time) use it: ordering is stable and nothing can drop.
	Sync bool
}

// Exporter receives finished spans: always into a preallocated ring, and —
// when a writer is configured — as JSONL, either synchronously or through a
// bounded queue drained by a background goroutine.
type Exporter struct {
	mu   sync.Mutex
	ring []SpanRecord
	next int
	full bool

	sync bool
	enc  *json.Encoder
	ch   chan SpanRecord

	wmu      sync.Mutex
	writeErr error
	drainWG  sync.WaitGroup

	exported atomic.Uint64
	dropped  atomic.Uint64
}

// NewExporter builds an exporter.
func NewExporter(opts ExporterOptions) *Exporter {
	if opts.RingSize <= 0 {
		opts.RingSize = 4096
	}
	if opts.QueueSize <= 0 {
		opts.QueueSize = 65536
	}
	e := &Exporter{ring: make([]SpanRecord, opts.RingSize), sync: opts.Sync}
	if opts.Writer != nil {
		e.enc = json.NewEncoder(opts.Writer)
		if !opts.Sync {
			e.ch = make(chan SpanRecord, opts.QueueSize)
			e.drainWG.Add(1)
			go e.drain(e.ch)
		}
	}
	return e
}

// export ingests one finished span (copied; the caller reuses rec).
func (e *Exporter) export(rec *SpanRecord) {
	e.exported.Add(1)
	e.mu.Lock()
	e.ring[e.next] = *rec
	e.next++
	if e.next == len(e.ring) {
		e.next = 0
		e.full = true
	}
	switch {
	case e.enc != nil && e.sync:
		if e.writeErr == nil {
			e.writeErr = e.enc.Encode(rec)
		}
	case e.ch != nil:
		select {
		case e.ch <- *rec:
		default:
			e.dropped.Add(1)
		}
	}
	e.mu.Unlock()
}

// drain writes queued spans as JSONL off the hot path. The channel is
// passed in (not read from e.ch) because Close nils e.ch before closing it.
func (e *Exporter) drain(ch chan SpanRecord) {
	defer e.drainWG.Done()
	for rec := range ch {
		e.wmu.Lock()
		if e.writeErr == nil {
			e.writeErr = e.enc.Encode(&rec)
		}
		e.wmu.Unlock()
	}
}

// Close flushes the async writer queue and stops the drain goroutine. It
// returns the first write error, if any. Spans exported after Close are
// kept in the ring but no longer written.
func (e *Exporter) Close() error {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	ch := e.ch
	e.ch = nil
	e.mu.Unlock()
	if ch != nil {
		close(ch)
		e.drainWG.Wait()
	}
	return e.Err()
}

// Err returns the first JSONL write error, if any.
func (e *Exporter) Err() error {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	err := e.writeErr
	e.mu.Unlock()
	if err != nil {
		return err
	}
	e.wmu.Lock()
	defer e.wmu.Unlock()
	return e.writeErr
}

// Exported returns the number of spans handed to the exporter.
func (e *Exporter) Exported() uint64 {
	if e == nil {
		return 0
	}
	return e.exported.Load()
}

// Dropped returns the number of spans the async writer queue rejected.
// With a Sync exporter (or no writer) this is always 0.
func (e *Exporter) Dropped() uint64 {
	if e == nil {
		return 0
	}
	return e.dropped.Load()
}

// Recent returns up to n of the most recent spans, oldest first.
func (e *Exporter) Recent(n int) []SpanRecord {
	if e == nil || n <= 0 {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	size := e.next
	if e.full {
		size = len(e.ring)
	}
	if n > size {
		n = size
	}
	out := make([]SpanRecord, n)
	for i := 0; i < n; i++ {
		idx := (e.next - n + i + len(e.ring)) % len(e.ring)
		out[i] = e.ring[idx]
	}
	return out
}
