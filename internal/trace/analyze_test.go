package trace

import (
	"strings"
	"testing"
)

// synthSpans builds two traces: a fast displayed one and a slow missed one
// with a retry, the slow one dominated by tx.retry.
func synthSpans() []SpanRecord {
	t1 := TileTraceID(1, 1, 10)
	t2 := TileTraceID(1, 2, 10)
	ms := func(v float64) int64 { return int64(v * 1e6) }
	return []SpanRecord{
		{Trace: t1, Span: 1, Stage: StageDecide, Side: SideServer, User: 1, Slot: 10, StartNs: 0, EndNs: ms(1)},
		{Trace: t1, Span: 2, Stage: StageSend, Side: SideServer, User: 1, Slot: 10, StartNs: ms(1), EndNs: ms(3), Tiles: 4, Bytes: 4096},
		{Trace: t1, Span: 3, Stage: StageRecv, Side: SideClient, User: 1, Slot: 10, StartNs: ms(2), EndNs: ms(4)},
		{Trace: t1, Span: 4, Stage: StageDisplay, Side: SideClient, User: 1, Slot: 10, StartNs: ms(4), EndNs: ms(5), Outcome: OutcomeDisplayed, Level: 2},

		{Trace: t2, Span: 5, Stage: StageDecide, Side: SideServer, User: 2, Slot: 10, StartNs: 0, EndNs: ms(1)},
		{Trace: t2, Span: 6, Stage: StageSend, Side: SideServer, User: 2, Slot: 10, StartNs: ms(1), EndNs: ms(2), Tiles: 4},
		{Trace: t2, Span: 7, Stage: StageRetry, Side: SideServer, User: 2, Slot: 10, StartNs: ms(5), EndNs: ms(25), Retry: 2, Tiles: 1},
		{Trace: t2, Span: 8, Stage: StageRecv, Side: SideClient, User: 2, Slot: 10, StartNs: ms(2), EndNs: ms(26), Retry: 2},
		{Trace: t2, Span: 9, Stage: StageDisplay, Side: SideClient, User: 2, Slot: 10, StartNs: ms(26), EndNs: ms(27), Outcome: OutcomeMissed},
	}
}

func TestAnalyze(t *testing.T) {
	a := Analyze(synthSpans(), 1)
	if a.Spans != 9 || a.Traces != 2 {
		t.Fatalf("spans=%d traces=%d", a.Spans, a.Traces)
	}
	if a.Stitched != 2 {
		t.Errorf("stitched = %d, want 2 (both traces have server and client spans)", a.Stitched)
	}
	if a.Displayed != 1 || a.Missed != 1 || a.Retried != 1 {
		t.Errorf("displayed=%d missed=%d retried=%d", a.Displayed, a.Missed, a.Retried)
	}

	byStage := map[string]StageStat{}
	for _, s := range a.Stages {
		byStage[s.Stage] = s
	}
	if got := byStage[StageDecide]; got.Count != 2 || got.P50Ms != 1 || got.MaxMs != 1 {
		t.Errorf("decide stat = %+v", got)
	}
	if got := byStage[StageRetry]; got.Count != 1 || got.P50Ms != 20 || got.P99Ms != 20 {
		t.Errorf("retry stat = %+v", got)
	}
	// Critical-path attribution: trace 1 is dominated by send or recv (2ms
	// each -> first max wins, deterministic per map iteration is not — accept
	// either), trace 2 by recv (24ms).
	if got := byStage[StageRecv].Critical + byStage[StageSend].Critical; got != 2 {
		t.Errorf("critical attribution = %+v", a.Stages)
	}
	if byStage[StageDecide].Critical != 0 {
		t.Errorf("decide marked critical: %+v", byStage[StageDecide])
	}

	// Stage ordering follows the pipeline.
	var order []string
	for _, s := range a.Stages {
		order = append(order, s.Stage)
	}
	want := []string{StageDecide, StageSend, StageRetry, StageRecv, StageDisplay}
	if strings.Join(order, ",") != strings.Join(want, ",") {
		t.Errorf("stage order = %v", order)
	}

	// Slowest exemplar is trace 2 (27ms wall span vs 5ms).
	if len(a.Slowest) != 1 {
		t.Fatalf("slowest has %d entries", len(a.Slowest))
	}
	slow := a.Slowest[0]
	if slow.Trace != TileTraceID(1, 2, 10) || slow.TotalMs != 27 ||
		slow.Outcome != OutcomeMissed || slow.Retries != 2 {
		t.Errorf("slowest = %+v", slow)
	}

	out := a.Format()
	for _, want := range []string{"slot.decide", "tx.retry", "rx.display", "stitched", "slowest[0]", "missed"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted output missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	a := Analyze(nil, 5)
	if a.Spans != 0 || a.Traces != 0 || len(a.Stages) != 0 || len(a.Slowest) != 0 {
		t.Fatalf("empty analysis = %+v", a)
	}
	if out := a.Format(); !strings.Contains(out, "0 spans") {
		t.Errorf("empty format = %q", out)
	}
}

func TestReadSpansRejectsGarbage(t *testing.T) {
	if _, err := ReadSpans(strings.NewReader("{\"trace\":1,\"stage\":\"x\"}\nnot json\n")); err == nil {
		t.Fatal("malformed line accepted")
	}
	if _, err := ReadSpans(strings.NewReader("{\"trace\":0,\"stage\":\"x\"}\n")); err == nil {
		t.Fatal("zero trace ID accepted")
	}
	spans, err := ReadSpans(strings.NewReader("\n{\"trace\":1,\"stage\":\"tx.send\"}\n\n"))
	if err != nil || len(spans) != 1 {
		t.Fatalf("blank-line tolerance: spans=%d err=%v", len(spans), err)
	}
}

// TestReadSpansTolerantTrailingPartial is the live-file regression test: a
// reader racing the exporter sees a torn final line, which must be skipped
// and counted rather than failing the whole read — but interior corruption
// must still be fatal in both readers.
func TestReadSpansTolerantTrailingPartial(t *testing.T) {
	in := "{\"trace\":1,\"stage\":\"tx.send\"}\n{\"trace\":2,\"stage\":\"disp"
	spans, skipped, err := ReadSpansTolerant(strings.NewReader(in))
	if err != nil {
		t.Fatalf("torn tail errored: %v", err)
	}
	if len(spans) != 1 || skipped != 1 {
		t.Fatalf("spans=%d skipped=%d, want 1/1", len(spans), skipped)
	}
	if _, err := ReadSpans(strings.NewReader(in)); err == nil {
		t.Fatal("strict ReadSpans accepted a torn tail")
	}
	if _, _, err := ReadSpansTolerant(strings.NewReader(
		"garbage\n{\"trace\":1,\"stage\":\"tx.send\"}\n")); err == nil {
		t.Fatal("interior corruption accepted")
	}
}

func TestQuantileNearestRank(t *testing.T) {
	ds := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if q := quantile(ds, 0.5); q != 5 {
		t.Errorf("p50 = %v", q)
	}
	if q := quantile(ds, 0.9); q != 9 {
		t.Errorf("p90 = %v", q)
	}
	if q := quantile(ds, 0.95); q != 10 {
		t.Errorf("p95 = %v", q)
	}
	if q := quantile(ds, 0.99); q != 10 {
		t.Errorf("p99 = %v", q)
	}
	if q := quantile(ds, 0); q != 1 {
		t.Errorf("p0 = %v", q)
	}
	if q := quantile(nil, 0.5); q != 0 {
		t.Errorf("empty = %v", q)
	}
}
