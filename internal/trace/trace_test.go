package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestTileTraceIDDeterministicAndNonZero(t *testing.T) {
	a := TileTraceID(42, 7, 214)
	b := TileTraceID(42, 7, 214)
	if a != b {
		t.Fatalf("not deterministic: %x vs %x", a, b)
	}
	if a == 0 {
		t.Fatal("trace ID must never be 0")
	}
	if TileTraceID(42, 7, 215) == a || TileTraceID(42, 8, 214) == a || TileTraceID(43, 7, 214) == a {
		t.Fatal("neighbouring requests collided")
	}
	// Distribution sanity: distinct inputs give distinct IDs.
	seen := make(map[uint64]bool)
	for user := uint32(0); user < 64; user++ {
		for slot := uint32(0); slot < 64; slot++ {
			id := TileTraceID(1, user, slot)
			if id == 0 {
				t.Fatalf("zero ID for user=%d slot=%d", user, slot)
			}
			if seen[id] {
				t.Fatalf("collision at user=%d slot=%d", user, slot)
			}
			seen[id] = true
		}
	}
}

func TestSpanLifecycleIntoRing(t *testing.T) {
	clock := int64(0)
	tr := New(Options{Clock: func() int64 { clock += 1e6; return clock }})
	id := TileTraceID(1, 3, 10)

	sp := tr.Start(id, StageSend, SideServer, 3, 10)
	sp.SetTiles(4)
	sp.SetBytes(4096)
	sp.SetLevel(2)
	sp.End()

	sp2 := tr.StartAt(id, StageDisplay, SideClient, 3, 10, 5e6)
	sp2.SetOutcome(OutcomeDisplayed)
	sp2.EndAt(7e6)

	recent := tr.Exporter().Recent(10)
	if len(recent) != 2 {
		t.Fatalf("ring holds %d spans, want 2", len(recent))
	}
	send, disp := recent[0], recent[1]
	if send.Stage != StageSend || send.Side != SideServer || send.Trace != id {
		t.Errorf("send span = %+v", send)
	}
	if send.Tiles != 4 || send.Bytes != 4096 || send.Level != 2 {
		t.Errorf("send span fields = %+v", send)
	}
	if send.StartNs != 1e6 || send.EndNs != 2e6 {
		t.Errorf("send span clock = [%d, %d]", send.StartNs, send.EndNs)
	}
	if disp.Stage != StageDisplay || disp.Outcome != OutcomeDisplayed ||
		disp.StartNs != 5e6 || disp.EndNs != 7e6 {
		t.Errorf("display span = %+v", disp)
	}
	if send.Span == disp.Span {
		t.Error("span IDs not unique")
	}
	if got := tr.Started(); got != 2 {
		t.Errorf("Started = %d", got)
	}
}

func TestSampling(t *testing.T) {
	tr := New(Options{Sample: 4, Clock: func() int64 { return 0 }})
	kept := 0
	for i := uint64(1); i <= 1000; i++ {
		if sp := tr.StartAt(i, StageSend, SideServer, 0, 0, 0); sp != nil {
			kept++
			sp.End()
			if !tr.Sampled(i) {
				t.Fatalf("Start kept trace %d but Sampled says no", i)
			}
		} else if tr.Sampled(i) {
			t.Fatalf("Start dropped trace %d but Sampled says yes", i)
		}
	}
	if kept != 250 {
		t.Errorf("sample=4 kept %d of 1000", kept)
	}
	if tr.Started() != 1000 || tr.SampledOut() != 750 {
		t.Errorf("counters: started=%d sampledOut=%d", tr.Started(), tr.SampledOut())
	}
	if got := uint64(len(tr.Exporter().Recent(4096))); got != 250 {
		t.Errorf("ring holds %d", got)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if tr.Now() != 0 || tr.Sampled(1) || tr.Started() != 0 || tr.SampledOut() != 0 {
		t.Fatal("nil tracer accessors not inert")
	}
	if tr.Exporter() != nil {
		t.Fatal("nil tracer exporter not nil")
	}
	sp := tr.Start(1, StageSend, SideServer, 0, 0)
	if sp != nil {
		t.Fatal("nil tracer handed out a span")
	}
	// All span methods must be safe on nil.
	sp.SetLevel(1)
	sp.SetTiles(1)
	sp.SetBytes(1)
	sp.SetRetry(1)
	sp.SetAlgo("x")
	sp.SetOutcome(OutcomeMissed)
	sp.SetErr("boom")
	sp.End()
	sp.EndAt(5)

	// Exporter nil-safety.
	var e *Exporter
	if e.Close() != nil || e.Err() != nil || e.Exported() != 0 || e.Dropped() != 0 || e.Recent(4) != nil {
		t.Fatal("nil exporter not inert")
	}

	// Enabled tracer, zero trace ID: untraced on the wire -> no span.
	live := New(Options{})
	if live.Start(0, StageRecv, SideClient, 1, 1) != nil {
		t.Fatal("trace ID 0 produced a span")
	}
}

// TestDisabledPathZeroAllocs is the hot-path gate from the issue: the whole
// instrumented sequence on a nil tracer must not allocate.
func TestDisabledPathZeroAllocs(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start(TileTraceID(1, 2, 3), StageSend, SideServer, 2, 3)
		sp.SetTiles(4)
		sp.SetBytes(4096)
		sp.SetRetry(1)
		sp.End()
		_ = tr.Now()
		_ = tr.Sampled(5)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer path allocates %.1f/op, want 0", allocs)
	}
}

// TestEnabledRingPathZeroAllocs: pooled spans + ring export by value keep the
// steady-state enabled path allocation-free too.
func TestEnabledRingPathZeroAllocs(t *testing.T) {
	tr := New(Options{Clock: func() int64 { return 0 }})
	id := TileTraceID(9, 1, 1)
	// Warm the pool.
	tr.Start(id, StageSend, SideServer, 1, 1).End()
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start(id, StageSend, SideServer, 1, 1)
		sp.SetTiles(2)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("enabled ring path allocates %.1f/op, want 0", allocs)
	}
}

func TestSyncExporterJSONL(t *testing.T) {
	var buf bytes.Buffer
	exp := NewExporter(ExporterOptions{Writer: &buf, Sync: true, RingSize: 8})
	tr := New(Options{Exporter: exp, Clock: func() int64 { return 42 }})
	for i := 0; i < 3; i++ {
		sp := tr.Start(TileTraceID(1, uint32(i), 0), StageDecide, SideServer, uint32(i), 0)
		sp.SetAlgo("dvgreedy")
		sp.End()
	}
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("wrote %d lines, want 3", len(lines))
	}
	var rec SpanRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Stage != StageDecide || rec.Algo != "dvgreedy" || rec.StartNs != 42 {
		t.Errorf("decoded = %+v", rec)
	}
	if exp.Exported() != 3 || exp.Dropped() != 0 {
		t.Errorf("exported=%d dropped=%d", exp.Exported(), exp.Dropped())
	}
	// Round-trip through the reader.
	spans, err := ReadSpans(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 3 {
		t.Fatalf("ReadSpans returned %d", len(spans))
	}
}

// gate blocks Write until released, forcing the async queue to back up.
type gate struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (g *gate) Write(p []byte) (int, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.buf.Write(p)
}

func TestAsyncExporterDropsWhenQueueFull(t *testing.T) {
	g := &gate{}
	g.mu.Lock() // hold the writer so the drain goroutine stalls
	exp := NewExporter(ExporterOptions{Writer: g, QueueSize: 4, RingSize: 8})
	tr := New(Options{Exporter: exp, Clock: func() int64 { return 0 }})
	for i := 0; i < 64; i++ {
		tr.Start(TileTraceID(2, uint32(i), 0), StageSend, SideServer, uint32(i), 0).End()
	}
	if exp.Dropped() == 0 {
		t.Error("full queue dropped nothing")
	}
	if exp.Exported() != 64 {
		t.Errorf("exported=%d", exp.Exported())
	}
	g.mu.Unlock()
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	// Everything that wasn't dropped must have been written.
	got := uint64(len(strings.Split(strings.TrimSpace(g.buf.String()), "\n")))
	if want := exp.Exported() - exp.Dropped(); got != want {
		t.Errorf("wrote %d lines, want %d", got, want)
	}
	// The ring still holds the most recent spans regardless of drops.
	if len(exp.Recent(8)) != 8 {
		t.Errorf("ring holds %d", len(exp.Recent(8)))
	}
}

func TestAsyncExporterNoDropsWhenDrained(t *testing.T) {
	var g gate
	exp := NewExporter(ExporterOptions{Writer: &g, QueueSize: 1024})
	tr := New(Options{Exporter: exp, Clock: func() int64 { return 0 }})
	for i := 0; i < 512; i++ {
		tr.Start(TileTraceID(3, uint32(i), 0), StageSend, SideServer, uint32(i), 0).End()
	}
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	if exp.Dropped() != 0 {
		t.Errorf("dropped %d with ample queue", exp.Dropped())
	}
	spans, err := ReadSpans(bytes.NewReader(g.buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 512 {
		t.Errorf("read %d spans", len(spans))
	}
}

func TestRingWrapsKeepingMostRecent(t *testing.T) {
	exp := NewExporter(ExporterOptions{RingSize: 4})
	tr := New(Options{Exporter: exp, Clock: func() int64 { return 0 }})
	for slot := uint32(0); slot < 10; slot++ {
		tr.Start(TileTraceID(1, 1, slot), StageSend, SideServer, 1, slot).End()
	}
	recent := exp.Recent(100)
	if len(recent) != 4 {
		t.Fatalf("ring holds %d", len(recent))
	}
	for i, rec := range recent {
		if want := uint32(6 + i); rec.Slot != want {
			t.Errorf("recent[%d].Slot = %d, want %d", i, rec.Slot, want)
		}
	}
}
