package trace

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/jsonl"
)

// ReadSpans parses a JSONL span export (the format Exporter writes). Blank
// lines are skipped; any malformed line — including a partial tail — is an
// error. Prefer ReadSpansTolerant when the file may still be written to.
func ReadSpans(r io.Reader) ([]SpanRecord, error) {
	spans, skipped, err := ReadSpansTolerant(r)
	if err != nil {
		return nil, err
	}
	if skipped > 0 {
		return nil, fmt.Errorf("trace: %d malformed trailing line(s)", skipped)
	}
	return spans, nil
}

// ReadSpansTolerant parses a JSONL span export from a file a live exporter
// may still be appending to: a trailing run of partial or malformed lines
// is skipped and counted instead of failing the read. A malformed line in
// the interior of the stream (followed by well-formed spans) is still a
// hard error.
func ReadSpansTolerant(r io.Reader) ([]SpanRecord, int, error) {
	spans, skipped, err := jsonl.Decode(r, func(rec *SpanRecord) error {
		if rec.Trace == 0 || rec.Stage == "" {
			return errors.New("span without trace/stage")
		}
		return nil
	})
	if err != nil {
		return nil, 0, fmt.Errorf("trace: %w", err)
	}
	return spans, skipped, nil
}

// StageStat aggregates one pipeline stage across every trace.
type StageStat struct {
	Stage string  `json:"stage"`
	Count int     `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
	// TotalMs is the summed duration of the stage across all traces, and
	// Share its fraction of the summed duration of all stages — where the
	// pipeline's time goes in aggregate.
	TotalMs float64 `json:"total_ms"`
	Share   float64 `json:"share"`
	// Critical counts the traces in which this stage was the single
	// longest one — the per-trace critical-path attribution.
	Critical int `json:"critical"`
}

// StageDur is one stage's duration inside a trace breakdown.
type StageDur struct {
	Stage string  `json:"stage"`
	Ms    float64 `json:"ms"`
}

// TraceBreakdown is one trace's per-stage latency decomposition; the
// analysis keeps the slowest ones as exemplars.
type TraceBreakdown struct {
	Trace   uint64     `json:"trace"`
	User    uint32     `json:"user"`
	Slot    uint32     `json:"slot"`
	TotalMs float64    `json:"total_ms"`
	Outcome string     `json:"outcome,omitempty"`
	Retries int        `json:"retries,omitempty"`
	Stages  []StageDur `json:"stages"`
}

// Analysis is the trace-level aggregation collabvr-spans prints.
type Analysis struct {
	Spans  int `json:"spans"`
	Traces int `json:"traces"`
	// Stitched counts traces holding spans from both the server and the
	// client side — requests whose halves joined across the wire.
	Stitched  int `json:"stitched"`
	Displayed int `json:"displayed"`
	Missed    int `json:"missed"`
	Retried   int `json:"retried"`
	// Abandoned counts traces whose retry budget ran out (a tx.abandon
	// span); Degraded counts traces whose slot quality was capped by the
	// session circuit breaker (a session.breaker span).
	Abandoned int              `json:"abandoned"`
	Degraded  int              `json:"degraded"`
	Stages    []StageStat      `json:"stages"`
	Slowest   []TraceBreakdown `json:"slowest"`
}

// stageOrder ranks the canonical stages in pipeline order for stable output;
// unknown stages sort after them alphabetically.
var stageOrder = map[string]int{
	StageDecide:  0,
	StageBreaker: 1,
	StageAdmit:   2,
	StageFetch:   3,
	StageSend:    4,
	StageRetry:   5,
	StageAbandon: 6,
	StageAck:     7,
	StageRecv:    8,
	StageDecode:  9,
	StageDisplay: 10,
}

func stageLess(a, b string) bool {
	ra, oka := stageOrder[a]
	rb, okb := stageOrder[b]
	switch {
	case oka && okb:
		return ra < rb
	case oka:
		return true
	case okb:
		return false
	default:
		return a < b
	}
}

// quantile returns the nearest-rank q-quantile of sorted (ascending) values.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Analyze aggregates spans into per-stage latency statistics, critical-path
// attribution and the topN slowest-trace exemplars.
func Analyze(spans []SpanRecord, topN int) *Analysis {
	if topN <= 0 {
		topN = 3
	}
	a := &Analysis{Spans: len(spans)}

	type traceAgg struct {
		user, slot uint32
		server     bool
		client     bool
		outcome    string
		retries    int
		minStart   int64
		maxEnd     int64
		stageMs    map[string]float64
	}
	traces := make(map[uint64]*traceAgg)
	durs := make(map[string][]float64)

	for _, s := range spans {
		d := s.DurationMs()
		if d < 0 {
			d = 0
		}
		durs[s.Stage] = append(durs[s.Stage], d)

		tr := traces[s.Trace]
		if tr == nil {
			tr = &traceAgg{user: s.User, slot: s.Slot,
				minStart: s.StartNs, maxEnd: s.EndNs,
				stageMs: make(map[string]float64)}
			traces[s.Trace] = tr
		}
		if s.StartNs < tr.minStart {
			tr.minStart = s.StartNs
		}
		if s.EndNs > tr.maxEnd {
			tr.maxEnd = s.EndNs
		}
		tr.stageMs[s.Stage] += d
		switch s.Side {
		case SideServer:
			tr.server = true
		case SideClient:
			tr.client = true
		}
		// The display outcome wins; the server's ack outcome fills in when
		// no display span was captured.
		if s.Outcome != "" && (tr.outcome == "" || s.Stage == StageDisplay) {
			tr.outcome = s.Outcome
		}
		if s.Retry > tr.retries {
			tr.retries = s.Retry
		}
	}

	a.Traces = len(traces)
	critical := make(map[string]int)
	breakdowns := make([]TraceBreakdown, 0, len(traces))
	for id, tr := range traces {
		if tr.server && tr.client {
			a.Stitched++
		}
		switch tr.outcome {
		case OutcomeDisplayed:
			a.Displayed++
		case OutcomeMissed:
			a.Missed++
		}
		if tr.retries > 0 {
			a.Retried++
		}
		if _, ok := tr.stageMs[StageAbandon]; ok {
			a.Abandoned++
		}
		if _, ok := tr.stageMs[StageBreaker]; ok {
			a.Degraded++
		}
		critStage, critMs := "", -1.0
		bd := TraceBreakdown{
			Trace: id, User: tr.user, Slot: tr.slot,
			TotalMs: float64(tr.maxEnd-tr.minStart) / 1e6,
			Outcome: tr.outcome, Retries: tr.retries,
		}
		for stage, ms := range tr.stageMs {
			bd.Stages = append(bd.Stages, StageDur{Stage: stage, Ms: ms})
			if ms > critMs {
				critStage, critMs = stage, ms
			}
		}
		sort.Slice(bd.Stages, func(i, j int) bool { return stageLess(bd.Stages[i].Stage, bd.Stages[j].Stage) })
		if critStage != "" {
			critical[critStage]++
		}
		breakdowns = append(breakdowns, bd)
	}

	totalAll := 0.0
	for stage, ds := range durs {
		sort.Float64s(ds)
		total := 0.0
		for _, d := range ds {
			total += d
		}
		totalAll += total
		a.Stages = append(a.Stages, StageStat{
			Stage: stage, Count: len(ds),
			P50Ms: quantile(ds, 0.50), P95Ms: quantile(ds, 0.95),
			P99Ms: quantile(ds, 0.99), MaxMs: ds[len(ds)-1],
			TotalMs: total, Critical: critical[stage],
		})
	}
	for i := range a.Stages {
		if totalAll > 0 {
			a.Stages[i].Share = a.Stages[i].TotalMs / totalAll
		}
	}
	sort.Slice(a.Stages, func(i, j int) bool { return stageLess(a.Stages[i].Stage, a.Stages[j].Stage) })

	sort.Slice(breakdowns, func(i, j int) bool {
		if breakdowns[i].TotalMs != breakdowns[j].TotalMs {
			return breakdowns[i].TotalMs > breakdowns[j].TotalMs
		}
		return breakdowns[i].Trace < breakdowns[j].Trace
	})
	if len(breakdowns) > topN {
		breakdowns = breakdowns[:topN]
	}
	a.Slowest = breakdowns
	return a
}

// Format renders the analysis as the report collabvr-spans prints.
func (a *Analysis) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# span analysis: %d spans, %d traces (%d stitched server+client, %d retried)\n",
		a.Spans, a.Traces, a.Stitched, a.Retried)
	if a.Abandoned+a.Degraded > 0 {
		fmt.Fprintf(&b, "# resilience: %d traces abandoned after retry budget, %d breaker-degraded slots\n",
			a.Abandoned, a.Degraded)
	}
	if a.Displayed+a.Missed > 0 {
		fmt.Fprintf(&b, "# outcomes: %d displayed, %d missed (%.2f%% deadline miss)\n",
			a.Displayed, a.Missed, 100*float64(a.Missed)/float64(a.Displayed+a.Missed))
	}
	fmt.Fprintf(&b, "%-14s %8s %10s %10s %10s %10s %7s %9s\n",
		"stage", "count", "p50(ms)", "p95(ms)", "p99(ms)", "max(ms)", "share", "critical")
	for _, s := range a.Stages {
		fmt.Fprintf(&b, "%-14s %8d %10.3f %10.3f %10.3f %10.3f %6.1f%% %9d\n",
			s.Stage, s.Count, s.P50Ms, s.P95Ms, s.P99Ms, s.MaxMs, 100*s.Share, s.Critical)
	}
	for i, bd := range a.Slowest {
		fmt.Fprintf(&b, "slowest[%d] trace=%016x user=%d slot=%d total=%.3fms outcome=%s retries=%d\n",
			i, bd.Trace, bd.User, bd.Slot, bd.TotalMs, bd.Outcome, bd.Retries)
		for _, sd := range bd.Stages {
			fmt.Fprintf(&b, "  %-14s %10.3fms\n", sd.Stage, sd.Ms)
		}
	}
	return b.String()
}
