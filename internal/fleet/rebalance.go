package fleet

// RebalanceConfig tunes the periodic budget re-split.
type RebalanceConfig struct {
	// EverySlots is the rebalance cadence on the slot clock (default 120
	// — two seconds at the paper's 60 Hz slot rate).
	EverySlots int
	// Alpha is the EMA smoothing factor on observed per-shard demand
	// (default 0.3); smoothing keeps a one-slot demand spike from
	// thrashing budgets between consecutive rebalances.
	Alpha float64
	// MinShareFrac floors every alive shard's slice at this fraction of
	// the equal share B/alive (default 0.25), so a briefly-idle shard is
	// not starved to zero and can still admit a flash crowd.
	MinShareFrac float64
}

func (c RebalanceConfig) withDefaults() RebalanceConfig {
	if c.EverySlots <= 0 {
		c.EverySlots = 120
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.3
	}
	if c.MinShareFrac <= 0 || c.MinShareFrac > 1 {
		c.MinShareFrac = 0.25
	}
	return c
}

// Rebalancer re-splits the global bandwidth budget B(t) across alive shards
// in proportion to their smoothed observed demand. It is pure state + math:
// engines call Observe each slot, Due on the slot clock, and apply the
// Shares result to their shards.
type Rebalancer struct {
	cfg        RebalanceConfig
	demand     []float64 // EMA of observed demand per shard
	primed     []bool
	rebalances int
}

// NewRebalancer builds a rebalancer for n shards.
func NewRebalancer(cfg RebalanceConfig, n int) *Rebalancer {
	return &Rebalancer{
		cfg:    cfg.withDefaults(),
		demand: make([]float64, n),
		primed: make([]bool, n),
	}
}

// Observe folds one slot's observed demand for a shard into its EMA.
func (rb *Rebalancer) Observe(shard int, demandMbps float64) {
	if shard < 0 || shard >= len(rb.demand) {
		return
	}
	if !rb.primed[shard] {
		rb.demand[shard] = demandMbps
		rb.primed[shard] = true
		return
	}
	rb.demand[shard] += rb.cfg.Alpha * (demandMbps - rb.demand[shard])
}

// Demand returns the shard's smoothed demand estimate.
func (rb *Rebalancer) Demand(shard int) float64 {
	if shard < 0 || shard >= len(rb.demand) {
		return 0
	}
	return rb.demand[shard]
}

// Due reports whether the cadence fires at this slot (slot 0 never fires:
// shards start from the equal split).
func (rb *Rebalancer) Due(slot int) bool {
	return slot > 0 && slot%rb.cfg.EverySlots == 0
}

// Rebalances counts how many times Shares has been computed.
func (rb *Rebalancer) Rebalances() int { return rb.rebalances }

// Shares splits the global budget across the alive shards: every alive
// shard gets the MinShareFrac floor of the equal split, and the remainder
// is divided in proportion to smoothed demand (equally when the fleet is
// idle). Dead shards get zero and the result always sums to global (up to
// float rounding), so the fleet never allocates more than B(t) in aggregate.
func (rb *Rebalancer) Shares(global float64, alive []bool) []float64 {
	rb.rebalances++
	out := make([]float64, len(rb.demand))
	nAlive := 0
	totalDemand := 0.0
	for i := range rb.demand {
		if i < len(alive) && alive[i] {
			nAlive++
			totalDemand += rb.demand[i]
		}
	}
	if nAlive == 0 || global <= 0 {
		return out
	}
	floor := rb.cfg.MinShareFrac * global / float64(nAlive)
	spread := global - float64(nAlive)*floor
	for i := range rb.demand {
		if i >= len(alive) || !alive[i] {
			continue
		}
		if totalDemand > 0 {
			out[i] = floor + spread*rb.demand[i]/totalDemand
		} else {
			out[i] = global / float64(nAlive)
		}
	}
	return out
}
