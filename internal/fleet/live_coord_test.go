package fleet

import (
	"errors"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/fleet/coord"
	"repro/internal/motion"
	"repro/internal/obs"
	"repro/internal/server"
)

// TestLiveMigrateRollbackOnAdoptFailure is the regression test for the
// migration-failure leak: when AdoptSession fails mid-Migrate (here the
// target server is draining, which the router cannot see — it tracks only
// fleet-level draining), the exported session must be rolled back to the
// source shard: ownership unchanged, the session still streaming, and its
// eventual departure a normal retire, not a handoff.
func TestLiveMigrateRollbackOnAdoptFailure(t *testing.T) {
	baseGoroutines := obs.LeakSnapshot()
	reg := obs.NewRegistry()
	l := newTestLive(t, reg, nil, nil, nil)
	defer l.Close()

	const user = 11
	shard, err := l.Place(SessionInfo{ID: user})
	if err != nil {
		t.Fatal(err)
	}
	if shard != 0 {
		t.Fatalf("placed on shard %d, want 0", shard)
	}

	ccfg := client.DefaultConfig(user, l.ShardAddr(shard),
		motion.Generate(motion.Scenes()[0], user, 200, 200, 7))
	ccfg.SlotDuration = 5 * time.Millisecond
	ccfg.Slots = 200
	ccfg.Metrics = reg
	ccfg.Reconnect = true
	ccfg.Redirect = func() string { return l.Addr(user) }
	done := make(chan error, 1)
	go func() {
		_, err := client.Run(ccfg)
		done <- err
	}()
	if !l.Shard(0).WaitSession(user, 2*time.Second) {
		t.Fatal("session never admitted on shard 0")
	}

	// Drain shard 1's server directly: the fleet layer still scores it as
	// a valid target, but its AdoptSession refuses — the exact mid-Migrate
	// failure that used to strand the session flagged handed-off.
	if !l.Shard(1).Drain(2 * time.Second) {
		t.Fatal("shard 1 did not drain")
	}
	if _, err := l.Migrate(user, obs.PlaceSLOPressure); err == nil {
		t.Fatal("migrate into a draining server succeeded, want adopt failure")
	}

	// Rollback: ownership is unchanged and the session keeps streaming on
	// the source shard.
	if got := l.Owner(user); got != 0 {
		t.Fatalf("Owner(%d) = %d after failed migrate, want 0", user, got)
	}
	if n := l.Shard(0).SessionCount(); n != 1 {
		t.Fatalf("source shard has %d sessions after failed migrate, want 1", n)
	}
	if err := <-done; err != nil {
		t.Fatalf("client: %v", err)
	}
	// The session retired as a normal departure, not a handoff.
	deadline := time.Now().Add(2 * time.Second)
	for l.Shard(0).SessionCount() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if v := reg.Counter("collabvr_server_sessions_handoff_out_total").Value(); v != 0 {
		t.Fatalf("rolled-back migration still counted a handoff out (%d)", v)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	obs.AssertNoLeaks(t, baseGoroutines)
}

// TestLiveCoordLeaderFailover runs a 3-replica coordinator under the live
// fleet: killing the leader stalls ownership mutations for at most the
// lease, the survivors elect, the term advances and is broadcast to every
// shard as the new fencing epoch, and a real client migration completes
// end-to-end under the post-failover term — the full tentpole loop at the
// live layer.
func TestLiveCoordLeaderFailover(t *testing.T) {
	baseGoroutines := obs.LeakSnapshot()
	reg := obs.NewRegistry()
	base := server.DefaultConfig(core.DVGreedy{})
	base.SlotDuration = 5 * time.Millisecond
	base.Metrics = reg
	base.Logf = t.Logf
	l, err := NewLive(LiveConfig{
		Shards:           2,
		Base:             base,
		GlobalBudgetMbps: 400,
		Coordinators:     3,
		Coord:            coord.Config{LeaseSlots: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	const user = 21
	if _, err := l.Place(SessionInfo{ID: user}); err != nil {
		t.Fatal(err)
	}
	l.Tick(1)
	if st := l.CoordStatus(); st.Leader != 0 || st.Term != 1 {
		t.Fatalf("bootstrap coord leader/term = %d/%d, want 0/1", st.Leader, st.Term)
	}

	// Kill the leader: mutations fail fast until the lease drains.
	l.CoordKill(0)
	if _, err := l.Place(SessionInfo{ID: 22}); !coord.Unavailable(err) {
		t.Fatalf("place under dead coord leader: err = %v, want unavailable", err)
	}
	// A departure during the outage is rejected by the log and queued; the
	// post-failover Tick must replay it.
	l.Forget(99)
	elected := false
	for slot := 2; slot <= 12; slot++ {
		l.Tick(slot)
		if st := l.CoordStatus(); st.Leader == 1 {
			elected = true
			break
		}
	}
	if !elected {
		t.Fatal("survivors never elected replica 1")
	}
	st := l.CoordStatus()
	if st.Term != 2 || st.Elections != 1 {
		t.Fatalf("post-failover term/elections = %d/%d, want 2/1", st.Term, st.Elections)
	}
	// Committed ownership survived, and the registry mirrors the cluster.
	if got := l.Owner(user); got < 0 {
		t.Fatalf("Owner(%d) lost across failover", user)
	}
	if v := reg.Counter("collabvr_fleet_coord_elections_total").Value(); v != 1 {
		t.Fatalf("elections metric = %d, want 1", v)
	}
	if v := reg.Counter("collabvr_fleet_coord_rejected_total").Value(); v == 0 {
		t.Fatal("rejected metric did not count the outage-window proposal")
	}
	// Every live shard was fenced to the new term.
	for i := 0; i < l.Shards(); i++ {
		if e := l.Shard(i).CoordEpoch(); e != 2 {
			t.Fatalf("shard %d epoch = %d after failover, want 2", i, e)
		}
	}

	// A real migration completes under the new term: the handoff state is
	// stamped epoch 2 and the target (fenced to 2) adopts it.
	ccfg := client.DefaultConfig(user, l.Addr(user),
		motion.Generate(motion.Scenes()[0], user, 400, 200, 7))
	ccfg.SlotDuration = 5 * time.Millisecond
	ccfg.Slots = 400
	ccfg.Metrics = reg
	ccfg.Reconnect = true
	ccfg.ReconnectAttempts = 8
	ccfg.ReconnectBase = 2 * time.Millisecond
	ccfg.ReconnectCap = 20 * time.Millisecond
	ccfg.Redirect = func() string { return l.Addr(user) }
	type outcome struct {
		res *client.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := client.Run(ccfg)
		done <- outcome{res, err}
	}()
	fromShard := l.Owner(user)
	if !l.Shard(fromShard).WaitSession(user, 2*time.Second) {
		t.Fatal("session never admitted")
	}
	to, err := l.Migrate(user, obs.PlaceSLOPressure)
	if err != nil {
		t.Fatalf("post-failover migrate: %v", err)
	}
	if !l.Shard(to).WaitSession(user, 2*time.Second) {
		t.Fatal("session never admitted on adopting shard after post-failover migration")
	}
	if v := reg.Counter("collabvr_fleet_coord_fenced_total").Value(); v != 0 {
		t.Fatalf("legitimate post-failover migration was fenced (%d)", v)
	}
	out := <-done
	if out.err != nil {
		t.Fatalf("client: %v", out.err)
	}
	if out.res.Resumes < 1 {
		t.Errorf("Resumes = %d, want >= 1 (Welcome{Resumed} under the new epoch)", out.res.Resumes)
	}

	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	obs.AssertNoLeaks(t, baseGoroutines)
}

// TestLiveCoordStaleFlipFenced drives the split-brain scenario directly
// at the server surface: handoff state minted under term 1 replays against
// a shard the fleet has already fenced to term 2 — the adopt is rejected
// and counted.
func TestLiveCoordStaleFlipFenced(t *testing.T) {
	reg := obs.NewRegistry()
	base := server.DefaultConfig(core.DVGreedy{})
	base.SlotDuration = 5 * time.Millisecond
	base.Metrics = reg
	l, err := NewLive(LiveConfig{
		Shards:           2,
		Base:             base,
		GlobalBudgetMbps: 400,
		Coordinators:     3,
		Coord:            coord.Config{LeaseSlots: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.Tick(1)

	// The deposed leader exported this under term 1...
	stale := &server.HandoffState{User: 5, Slot: 9, FromShard: 0, Epoch: 1}
	stale.Token = server.HandoffToken(5, 9, 0, 1)

	// ...but the fleet has since elected and fenced the shards to term 2.
	l.CoordKill(0)
	for slot := 2; slot <= 10; slot++ {
		l.Tick(slot)
	}
	if st := l.CoordStatus(); st.Term != 2 {
		t.Fatalf("term = %d, want 2 after failover", st.Term)
	}
	if err := l.Shard(1).AdoptSession(stale); !errors.Is(err, server.ErrStaleEpoch) {
		t.Fatalf("stale flip adopt: err = %v, want ErrStaleEpoch", err)
	}
	if v := reg.Counter("collabvr_fleet_coord_fenced_total").Value(); v != 1 {
		t.Fatalf("fenced metric = %d, want 1", v)
	}
}
