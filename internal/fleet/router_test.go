package fleet

import (
	"testing"

	"repro/internal/obs"
)

func threeShards() []ShardState {
	return []ShardState{
		{ID: 0, Zone: 0, Alive: true, Sessions: 4, BudgetMbps: 100, DemandMbps: 80},
		{ID: 1, Zone: 1, Alive: true, Sessions: 2, BudgetMbps: 100, DemandMbps: 40},
		{ID: 2, Zone: 2, Alive: true, Sessions: 6, BudgetMbps: 100, DemandMbps: 90},
	}
}

func TestLeastLoadedPlacesOnLowestLoad(t *testing.T) {
	r := NewRouter(LeastLoaded{}, nil)
	got := r.Place(0, SessionInfo{ID: 7, DemandMbps: 30}, threeShards(), obs.PlaceArrival, -1)
	if got != 1 {
		t.Fatalf("Place = %d, want 1 (lowest demand/budget)", got)
	}
	if r.Placed() != 1 || r.Failed() != 0 {
		t.Fatalf("counters: placed=%d failed=%d", r.Placed(), r.Failed())
	}
}

func TestPlaceTieBreaksOnLowestIndex(t *testing.T) {
	shards := []ShardState{
		{ID: 0, Alive: true, BudgetMbps: 100, DemandMbps: 50},
		{ID: 1, Alive: true, BudgetMbps: 100, DemandMbps: 50},
	}
	r := NewRouter(LeastLoaded{}, nil)
	for i := 0; i < 5; i++ {
		if got := r.Place(i, SessionInfo{ID: uint32(i)}, shards, obs.PlaceArrival, -1); got != 0 {
			t.Fatalf("tie broke to shard %d, want 0", got)
		}
	}
}

func TestPlaceSkipsDeadDrainingAndSource(t *testing.T) {
	shards := threeShards()
	shards[1].Alive = false   // best shard is dead
	shards[2].Draining = true // next is draining
	r := NewRouter(LeastLoaded{}, nil)
	if got := r.Place(0, SessionInfo{ID: 1}, shards, obs.PlaceShardKill, 1); got != 0 {
		t.Fatalf("Place = %d, want 0 (only accepting shard)", got)
	}
	// Excluding the sole survivor must fail the placement.
	if got := r.Place(1, SessionInfo{ID: 2}, shards, obs.PlaceShardDrain, 0); got != -1 {
		t.Fatalf("Place = %d, want -1", got)
	}
	if r.Failed() != 1 {
		t.Fatalf("Failed = %d, want 1", r.Failed())
	}
}

func TestLocalityAwarePrefersZoneUnlessOverloaded(t *testing.T) {
	shards := threeShards()
	r := NewRouter(LocalityAware{}, nil)
	// Zone 2's shard carries more load than zone 1's, but the bonus wins.
	if got := r.Place(0, SessionInfo{ID: 1, Zone: 2, DemandMbps: 5}, shards, obs.PlaceArrival, -1); got != 2 {
		t.Fatalf("Place = %d, want 2 (zone affinity)", got)
	}
	// Once the local shard is past the bonus margin, load wins again.
	shards[2].DemandMbps = 200
	if got := r.Place(1, SessionInfo{ID: 2, Zone: 2, DemandMbps: 5}, shards, obs.PlaceArrival, -1); got != 1 {
		t.Fatalf("Place = %d, want 1 (overloaded local shard)", got)
	}
}

func TestSLOAwareAvoidsPagingShard(t *testing.T) {
	shards := threeShards()
	shards[1].PageFrac = 0.8 // least-loaded shard is paging hard
	r := NewRouter(SLOAware{}, nil)
	if got := r.Place(0, SessionInfo{ID: 1, DemandMbps: 5}, shards, obs.PlaceArrival, -1); got != 0 {
		t.Fatalf("Place = %d, want 0 (burn-rate penalty repels shard 1)", got)
	}
}

func TestPlaceRecordsDecision(t *testing.T) {
	pr := obs.NewPlacementRecorder(obs.PlacementRecorderOptions{RingSize: 8})
	r := NewRouter(SLOAware{}, pr)
	r.Place(42, SessionInfo{ID: 9, Zone: 1, DemandMbps: 10}, threeShards(), obs.PlaceShardDrain, 2)
	recs := pr.Recent(1)
	if len(recs) != 1 {
		t.Fatal("no placement record")
	}
	rec := recs[0]
	if rec.Slot != 42 || rec.Session != 9 || rec.Reason != obs.PlaceShardDrain ||
		rec.From != 2 || rec.Scorer != "slo-burn" {
		t.Fatalf("record = %+v", rec)
	}
	// The source shard is excluded from candidates, the rest scored.
	if len(rec.Scores) != 2 {
		t.Fatalf("scores = %+v, want 2 candidates", rec.Scores)
	}
	for _, s := range rec.Scores {
		if s.Shard == 2 {
			t.Fatal("source shard scored as a candidate")
		}
	}
}

func TestScorerByName(t *testing.T) {
	for name, want := range map[string]string{
		"":             "least-loaded",
		"least-loaded": "least-loaded",
		"locality":     "locality",
		"slo-burn":     "slo-burn",
		"slo":          "slo-burn",
	} {
		s, err := ScorerByName(name)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if s.Name() != want {
			t.Fatalf("%q -> %s, want %s", name, s.Name(), want)
		}
	}
	if _, err := ScorerByName("bogus"); err == nil {
		t.Fatal("want error for unknown scorer")
	}
}
