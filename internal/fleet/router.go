package fleet

import "repro/internal/obs"

// Router scores candidate shards and records every decision. It carries no
// shard state of its own — callers pass the current ShardState slice — so
// one Router serves both the virtual-time engine and the live coordinator.
type Router struct {
	scorer   Scorer
	recorder *obs.PlacementRecorder
	placed   uint64
	failed   uint64
}

// NewRouter builds a router; a nil scorer defaults to LeastLoaded and a nil
// recorder disables decision capture.
func NewRouter(scorer Scorer, recorder *obs.PlacementRecorder) *Router {
	if scorer == nil {
		scorer = LeastLoaded{}
	}
	return &Router{scorer: scorer, recorder: recorder}
}

// ScorerName returns the active scorer's name.
func (r *Router) ScorerName() string { return r.scorer.Name() }

// Placed and Failed count decisions that found / failed to find a shard.
func (r *Router) Placed() uint64 { return r.placed }
func (r *Router) Failed() uint64 { return r.failed }

// Place picks the best-scoring accepting shard for the session, excluding
// `from` (the shard being evacuated; -1 for arrivals), and records the
// decision under `reason` (one of the obs.Place* constants). Shards are
// scanned in index order and ties keep the lowest index, so placement is
// bit-deterministic. Returns -1 when no shard can accept.
func (r *Router) Place(slot int, sess SessionInfo, shards []ShardState, reason string, from int) int {
	chosen := -1
	best := 0.0
	var scores []obs.ShardScore
	record := r.recorder != nil
	for i := range shards {
		sh := &shards[i]
		if !sh.Accepting() || sh.ID == from {
			continue
		}
		score := r.scorer.Score(*sh, sess)
		if record {
			scores = append(scores, obs.ShardScore{
				Shard:      sh.ID,
				Zone:       sh.Zone,
				Score:      score,
				Sessions:   sh.Sessions,
				BudgetMbps: sh.BudgetMbps,
				DemandMbps: sh.DemandMbps,
				PageFrac:   sh.PageFrac,
				Draining:   sh.Draining,
			})
		}
		if chosen == -1 || score > best {
			chosen = sh.ID
			best = score
		}
	}
	if chosen >= 0 {
		r.placed++
	} else {
		r.failed++
	}
	if record {
		r.recorder.Record(&obs.PlacementRecord{
			Slot:    slot,
			Session: sess.ID,
			Zone:    sess.Zone,
			Scorer:  r.scorer.Name(),
			Reason:  reason,
			Chosen:  chosen,
			From:    from,
			Scores:  scores,
		})
	}
	return chosen
}
