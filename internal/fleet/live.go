package fleet

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/server"
)

// LiveConfig parametrizes the in-process live fleet coordinator.
type LiveConfig struct {
	// Shards is the number of in-process server shards (default 2).
	Shards int
	// Base is the server config template. Each shard gets a copy with its
	// own ShardID, loopback ephemeral addresses and an equal initial slice
	// of GlobalBudgetMbps. Shared observability (Metrics, SLO, Breaker,
	// Tracer, Recorder) stays shared across shards — that is what lets SLO
	// windows and traces survive a migration.
	Base server.Config
	// GlobalBudgetMbps is the fleet's total B(t) (default
	// Base.BudgetMbps, i.e. one server's budget spread over the fleet).
	GlobalBudgetMbps float64
	// NewAllocator, when non-nil, builds a fresh allocator per shard.
	// Stateful allocators (the default solver keeps solve scratch) must
	// not be shared across concurrently-running shard slot loops.
	NewAllocator func() core.Allocator
	// Zones is the locality zone count; shard i sits in zone i%Zones
	// (default Shards — every shard its own zone).
	Zones int
	// Scorer ranks shards at placement (default LeastLoaded).
	Scorer Scorer
	// Recorder captures placement decisions; nil disables.
	Recorder *obs.PlacementRecorder
	// Rebalance tunes the periodic budget re-split driven by Tick.
	Rebalance RebalanceConfig
}

// liveShard is the coordinator's bookkeeping for one shard.
type liveShard struct {
	zone        int
	dead        bool
	draining    bool
	placed      int
	migratedIn  int
	migratedOut int
}

// Live runs N in-process server shards behind the fleet decision core:
// scored placement for arriving sessions, periodic budget rebalancing from
// observed demand, and live migration over the reconnect/Welcome-resume
// machinery. All methods are safe for concurrent use.
type Live struct {
	cfg     LiveConfig
	servers []*server.Server
	router  *Router
	rb      *Rebalancer

	mu         sync.Mutex
	shards     []liveShard
	owner      map[uint32]int
	slot       int
	migrations int
}

// NewLive builds and starts the fleet.
func NewLive(cfg LiveConfig) (*Live, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 2
	}
	if cfg.GlobalBudgetMbps <= 0 {
		cfg.GlobalBudgetMbps = cfg.Base.BudgetMbps
	}
	if cfg.Zones <= 0 {
		cfg.Zones = cfg.Shards
	}
	l := &Live{
		cfg:    cfg,
		router: NewRouter(cfg.Scorer, cfg.Recorder),
		rb:     NewRebalancer(cfg.Rebalance, cfg.Shards),
		owner:  make(map[uint32]int),
		shards: make([]liveShard, cfg.Shards),
	}
	for i := 0; i < cfg.Shards; i++ {
		scfg := cfg.Base
		scfg.ShardID = i
		scfg.TCPAddr = ""
		scfg.UDPAddr = ""
		scfg.BudgetMbps = cfg.GlobalBudgetMbps / float64(cfg.Shards)
		if cfg.NewAllocator != nil {
			scfg.Allocator = cfg.NewAllocator()
		}
		srv, err := server.New(scfg)
		if err != nil {
			for _, prev := range l.servers {
				prev.Close()
			}
			return nil, fmt.Errorf("fleet: shard %d: %w", i, err)
		}
		l.servers = append(l.servers, srv)
		l.shards[i].zone = i % cfg.Zones
	}
	return l, nil
}

// Shard returns shard i's server (for stats and drain orchestration).
func (l *Live) Shard(i int) *server.Server { return l.servers[i] }

// Shards returns the shard count.
func (l *Live) Shards() int { return len(l.servers) }

// ShardAddr returns shard i's control address.
func (l *Live) ShardAddr(i int) string { return l.servers[i].ControlAddr() }

// Addr returns the control address of the shard that currently owns the
// session — the client's Redirect hook. An unplaced user gets shard 0.
func (l *Live) Addr(user uint32) string {
	l.mu.Lock()
	shard, ok := l.owner[user]
	l.mu.Unlock()
	if !ok {
		shard = 0
	}
	return l.servers[shard].ControlAddr()
}

// Owner returns the shard that owns the session (-1 if unplaced).
func (l *Live) Owner(user uint32) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if shard, ok := l.owner[user]; ok {
		return shard
	}
	return -1
}

// statesLocked snapshots the ShardState slice for the router (caller holds
// l.mu). The live demand proxy is sessions x InitialUserMbps: the
// coordinator has no per-session rate ladder, but scorers only compare
// demand/budget ratios, so any per-session constant works.
func (l *Live) statesLocked() []ShardState {
	perSession := l.cfg.Base.InitialUserMbps
	if perSession <= 0 {
		perSession = 30
	}
	slo := l.cfg.Base.SLO
	counts := make([]int, len(l.servers))
	paging := make([]int, len(l.servers))
	for user, shard := range l.owner {
		counts[shard]++
		if slo != nil && slo.State(user) == obs.SLOStatePage {
			paging[shard]++
		}
	}
	out := make([]ShardState, len(l.servers))
	for i := range l.servers {
		st := ShardState{
			ID:         i,
			Zone:       l.shards[i].zone,
			Alive:      !l.shards[i].dead,
			Draining:   l.shards[i].draining,
			Sessions:   counts[i],
			BudgetMbps: l.servers[i].Budget(),
			DemandMbps: float64(counts[i]) * perSession,
		}
		if counts[i] > 0 {
			st.PageFrac = float64(paging[i]) / float64(counts[i])
		}
		out[i] = st
	}
	return out
}

// Place admits a new session: scores the shards, records the decision and
// returns the winning shard index. The caller dials the returned shard's
// ControlAddr (see ShardAddr) and should set the client's Redirect to
// Addr(user) so later migrations find it.
func (l *Live) Place(sess SessionInfo) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	shard := l.router.Place(l.slot, sess, l.statesLocked(), obs.PlaceArrival, -1)
	if shard < 0 {
		return -1, fmt.Errorf("fleet: no shard can accept session %d", sess.ID)
	}
	l.owner[sess.ID] = shard
	l.shards[shard].placed++
	return shard, nil
}

// Forget drops a departed session from the ownership table.
func (l *Live) Forget(user uint32) {
	l.mu.Lock()
	delete(l.owner, user)
	l.mu.Unlock()
}

// Migrate moves one session to the best-scoring other shard: export on the
// source (closing its control connection, which triggers the client's
// redial), adopt on the target, and flip ownership so the client's Redirect
// hook resolves to the adopting shard. reason is one of the obs.Place*
// constants. Returns the target shard.
func (l *Live) Migrate(user uint32, reason string) (int, error) {
	l.mu.Lock()
	from, ok := l.owner[user]
	if !ok {
		l.mu.Unlock()
		return -1, fmt.Errorf("fleet: migrate: unknown session %d", user)
	}
	sess := SessionInfo{ID: user, Zone: l.shards[from].zone, DemandMbps: l.cfg.Base.InitialUserMbps}
	to := l.router.Place(l.slot, sess, l.statesLocked(), reason, from)
	if to < 0 {
		l.mu.Unlock()
		return -1, fmt.Errorf("fleet: migrate: no shard can adopt session %d", user)
	}
	l.mu.Unlock()

	// Ordering is the whole protocol: snapshot the state, register it on
	// the adopting shard, flip ownership (so the client's Redirect hook
	// resolves to the target), and only then close the source's control
	// connection to trigger the redial. Any other order lets the client's
	// fresh Hello race the adoption or redial back into the source.
	st, err := l.servers[from].ExportSession(user)
	if err != nil {
		return -1, fmt.Errorf("fleet: migrate session %d: %w", user, err)
	}
	if err := l.servers[to].AdoptSession(st); err != nil {
		return -1, fmt.Errorf("fleet: migrate session %d: %w", user, err)
	}

	l.mu.Lock()
	l.owner[user] = to
	l.shards[from].migratedOut++
	l.shards[to].migratedIn++
	l.migrations++
	l.mu.Unlock()

	if err := l.servers[from].ReleaseSession(user); err != nil {
		return -1, fmt.Errorf("fleet: migrate session %d: %w", user, err)
	}
	return to, nil
}

// DrainShard marks a shard draining (no new placements) and migrates every
// session it owns to the rest of the fleet, in ascending session order.
// Returns how many sessions moved; the first migration error aborts.
func (l *Live) DrainShard(i int) (int, error) {
	l.mu.Lock()
	l.shards[i].draining = true
	users := make([]uint32, 0)
	for user, shard := range l.owner {
		if shard == i {
			users = append(users, user)
		}
	}
	l.mu.Unlock()
	// Ascending order: the map walk above is unordered, the migrations
	// must not be.
	for a := 1; a < len(users); a++ {
		for b := a; b > 0 && users[b] < users[b-1]; b-- {
			users[b], users[b-1] = users[b-1], users[b]
		}
	}
	moved := 0
	for _, user := range users {
		if _, err := l.Migrate(user, obs.PlaceShardDrain); err != nil {
			return moved, err
		}
		moved++
	}
	return moved, nil
}

// KillShard abruptly kills a shard: its server closes (handoff state is
// lost — a kill is a crash, not a drain) and its sessions are re-placed on
// the survivors so the clients' Redirect hooks resolve elsewhere when their
// reconnect fires. Returns how many sessions were re-placed.
func (l *Live) KillShard(i int) int {
	l.mu.Lock()
	if l.shards[i].dead {
		l.mu.Unlock()
		return 0
	}
	l.shards[i].dead = true
	users := make([]uint32, 0)
	for user, shard := range l.owner {
		if shard == i {
			users = append(users, user)
		}
	}
	for a := 1; a < len(users); a++ {
		for b := a; b > 0 && users[b] < users[b-1]; b-- {
			users[b], users[b-1] = users[b-1], users[b]
		}
	}
	replaced := 0
	for _, user := range users {
		sess := SessionInfo{ID: user, Zone: l.shards[i].zone, DemandMbps: l.cfg.Base.InitialUserMbps}
		to := l.router.Place(l.slot, sess, l.statesLocked(), obs.PlaceShardKill, i)
		if to < 0 {
			delete(l.owner, user)
			continue
		}
		l.owner[user] = to
		l.shards[i].migratedOut++
		l.shards[to].migratedIn++
		l.migrations++
		replaced++
	}
	l.mu.Unlock()
	l.servers[i].Close()
	return replaced
}

// Tick advances the coordinator's slot clock: demand observation every
// slot, and on the rebalance cadence a budget re-split applied to the
// shards via SetBudget.
func (l *Live) Tick(slot int) {
	l.mu.Lock()
	l.slot = slot
	states := l.statesLocked()
	alive := make([]bool, len(states))
	for i, st := range states {
		alive[i] = st.Alive
		l.rb.Observe(i, st.DemandMbps)
	}
	due := l.rb.Due(slot)
	var shares []float64
	if due {
		shares = l.rb.Shares(l.cfg.GlobalBudgetMbps, alive)
	}
	l.mu.Unlock()
	if due {
		for i, share := range shares {
			if alive[i] {
				l.servers[i].SetBudget(share)
			}
		}
	}
}

// Snapshot builds the /debug/fleet document with up to n recent placement
// records.
func (l *Live) Snapshot(n int) obs.FleetSnapshot {
	l.mu.Lock()
	states := l.statesLocked()
	snap := obs.FleetSnapshot{
		Scorer:           l.router.ScorerName(),
		GlobalBudgetMbps: l.cfg.GlobalBudgetMbps,
		Slot:             l.slot,
		Placements:       l.router.Placed(),
		Migrations:       l.migrations,
		Rebalances:       l.rb.Rebalances(),
	}
	for i, st := range states {
		snap.Shards = append(snap.Shards, obs.FleetShardState{
			Shard:       i,
			Zone:        st.Zone,
			Alive:       st.Alive,
			Draining:    st.Draining,
			Sessions:    st.Sessions,
			BudgetMbps:  st.BudgetMbps,
			DemandMbps:  st.DemandMbps,
			PageFrac:    st.PageFrac,
			Placed:      l.shards[i].placed,
			MigratedIn:  l.shards[i].migratedIn,
			MigratedOut: l.shards[i].migratedOut,
		})
	}
	l.mu.Unlock()
	snap.Recent = l.cfg.Recorder.Recent(n)
	return snap
}

// Drain gracefully drains every live shard (concurrently), bounded by
// timeout per shard. Reports whether every shard flushed.
func (l *Live) Drain(timeout time.Duration) bool {
	l.mu.Lock()
	dead := make([]bool, len(l.servers))
	for i := range l.shards {
		dead[i] = l.shards[i].dead
	}
	l.mu.Unlock()
	var wg sync.WaitGroup
	flushed := make([]bool, len(l.servers))
	for i := range l.servers {
		if dead[i] {
			flushed[i] = true
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			flushed[i] = l.servers[i].Drain(timeout)
		}(i)
	}
	wg.Wait()
	ok := true
	for _, f := range flushed {
		ok = ok && f
	}
	return ok
}

// Close shuts every shard down.
func (l *Live) Close() error {
	var first error
	for _, srv := range l.servers {
		if err := srv.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
