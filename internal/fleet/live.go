package fleet

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fleet/coord"
	"repro/internal/obs"
	"repro/internal/obs/tsdb"
	"repro/internal/server"
)

// LiveConfig parametrizes the in-process live fleet coordinator.
type LiveConfig struct {
	// Shards is the number of in-process server shards (default 2).
	Shards int
	// Base is the server config template. Each shard gets a copy with its
	// own ShardID, loopback ephemeral addresses and an equal initial slice
	// of GlobalBudgetMbps. Shared observability (Metrics, SLO, Breaker,
	// Tracer, Recorder) stays shared across shards — that is what lets SLO
	// windows and traces survive a migration.
	Base server.Config
	// GlobalBudgetMbps is the fleet's total B(t) (default
	// Base.BudgetMbps, i.e. one server's budget spread over the fleet).
	GlobalBudgetMbps float64
	// NewAllocator, when non-nil, builds a fresh allocator per shard.
	// Stateful allocators (the default solver keeps solve scratch) must
	// not be shared across concurrently-running shard slot loops.
	NewAllocator func() core.Allocator
	// Zones is the locality zone count; shard i sits in zone i%Zones
	// (default Shards — every shard its own zone).
	Zones int
	// Scorer ranks shards at placement (default LeastLoaded).
	Scorer Scorer
	// Recorder captures placement decisions; nil disables.
	Recorder *obs.PlacementRecorder
	// Rebalance tunes the periodic budget re-split driven by Tick.
	Rebalance RebalanceConfig
	// Health, when non-nil, receives per-shard fleet series (sessions,
	// budget, demand, page fraction) every Tick, keyed on the coordinator
	// slot clock. The evacuation loop reads its page-frac windows, so Evac
	// without Health gets a private store.
	Health *tsdb.Store
	// Evac enables the SLO-pressure evacuation loop: Tick watches each
	// shard's rolling page-frac window and live-migrates sessions off
	// shards that stay hot, with hysteresis and cooldowns (see EvacConfig).
	Evac EvacConfig
	// Coordinators is the coordinator replica count (default 1 — a single
	// replica, the zero-cost path, byte-identical to the unreplicated
	// coordinator; 2f+1 replicas tolerate f crashes with ownership
	// mutations stalling at most Coord.LeaseSlots per leader loss).
	Coordinators int
	// Coord tunes the replicated coordinator beyond the replica count
	// (lease length, snapshot cadence). Coordinators, when set, overrides
	// Coord.Replicas.
	Coord coord.Config
}

// liveShard is the coordinator's bookkeeping for one shard.
type liveShard struct {
	zone        int
	dead        bool
	draining    bool
	placed      int
	migratedIn  int
	migratedOut int
}

// Live runs N in-process server shards behind the fleet decision core:
// scored placement for arriving sessions, periodic budget rebalancing from
// observed demand, and live migration over the reconnect/Welcome-resume
// machinery. All methods are safe for concurrent use.
type Live struct {
	cfg     LiveConfig
	servers []*server.Server
	router  *Router
	rb      *Rebalancer

	mu         sync.Mutex
	shards     []liveShard
	slot       int
	migrations int

	// cluster replicates the owner map (session → shard) and the budget
	// split; every ownership mutation is proposed through it. It is not
	// concurrency-safe by itself — l.mu is its lock. pendingForgets holds
	// departures that arrived while the cluster was leaderless; Tick
	// retries them (a forgotten binding is never load-bearing, so deferral
	// is safe).
	cluster        *coord.Cluster
	pendingForgets []uint32
	lastTerm       uint64
	cm             coordMetrics
	cmPrev         coord.Status

	// Health plane: per-shard series observed on Tick's slot clock, and
	// the hysteresis evacuation controller they feed. All guarded by mu
	// (the Evacuator itself is not concurrency-safe).
	health      *tsdb.Store
	hseries     []liveShardSeries
	hFleetSess  *tsdb.Series
	hEvacTotal  *tsdb.Series
	evac        *Evacuator
	evacuations int
}

// liveShardSeries holds one shard's health-plane series handles.
type liveShardSeries struct {
	sessions *tsdb.Series
	budget   *tsdb.Series
	demand   *tsdb.Series
	pageFrac *tsdb.Series
}

// NewLive builds and starts the fleet.
func NewLive(cfg LiveConfig) (*Live, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 2
	}
	if cfg.GlobalBudgetMbps <= 0 {
		cfg.GlobalBudgetMbps = cfg.Base.BudgetMbps
	}
	if cfg.Zones <= 0 {
		cfg.Zones = cfg.Shards
	}
	ccfg := cfg.Coord
	if cfg.Coordinators > 0 {
		ccfg.Replicas = cfg.Coordinators
	}
	l := &Live{
		cfg:     cfg,
		router:  NewRouter(cfg.Scorer, cfg.Recorder),
		rb:      NewRebalancer(cfg.Rebalance, cfg.Shards),
		cluster: coord.New(ccfg),
		shards:  make([]liveShard, cfg.Shards),
		cm:      newCoordMetrics(cfg.Base.Metrics),
	}
	l.evac = NewEvacuator(cfg.Evac, cfg.Shards)
	l.health = cfg.Health
	if l.health == nil && l.evac != nil {
		// The evacuation loop needs the page-frac windows even when the
		// caller did not ask for a health store.
		l.health = tsdb.New(tsdb.Options{})
	}
	if l.health != nil {
		l.hseries = make([]liveShardSeries, cfg.Shards)
		for i := 0; i < cfg.Shards; i++ {
			l.hseries[i] = liveShardSeries{
				sessions: l.health.ShardSeries("fleet_shard_sessions", tsdb.Gauge, i),
				budget:   l.health.ShardSeries("fleet_shard_budget_mbps", tsdb.Gauge, i),
				demand:   l.health.ShardSeries("fleet_shard_demand_mbps", tsdb.Gauge, i),
				pageFrac: l.health.ShardSeries("fleet_shard_page_frac", tsdb.Gauge, i),
			}
		}
		l.hFleetSess = l.health.Series("fleet_active_sessions", tsdb.Gauge)
		l.hEvacTotal = l.health.Series("fleet_evacuations_total", tsdb.Counter)
	}
	for i := 0; i < cfg.Shards; i++ {
		scfg := cfg.Base
		scfg.ShardID = i
		scfg.TCPAddr = ""
		scfg.UDPAddr = ""
		scfg.BudgetMbps = cfg.GlobalBudgetMbps / float64(cfg.Shards)
		if cfg.NewAllocator != nil {
			scfg.Allocator = cfg.NewAllocator()
		}
		srv, err := server.New(scfg)
		if err != nil {
			for _, prev := range l.servers {
				prev.Close()
			}
			return nil, fmt.Errorf("fleet: shard %d: %w", i, err)
		}
		l.servers = append(l.servers, srv)
		l.shards[i].zone = i % cfg.Zones
	}
	return l, nil
}

// Shard returns shard i's server (for stats and drain orchestration).
func (l *Live) Shard(i int) *server.Server { return l.servers[i] }

// Shards returns the shard count.
func (l *Live) Shards() int { return len(l.servers) }

// ShardAddr returns shard i's control address.
func (l *Live) ShardAddr(i int) string { return l.servers[i].ControlAddr() }

// Addr returns the control address of the shard that currently owns the
// session — the client's Redirect hook. An unplaced user gets shard 0.
// During a coordinator failover the read replica may briefly lag, which is
// safe: the client redials, the stale shard has no session, and the next
// re-resolve lands on the committed owner.
func (l *Live) Addr(user uint32) string {
	l.mu.Lock()
	shard, ok := l.cluster.Lookup(user)
	l.mu.Unlock()
	if !ok || shard < 0 {
		shard = 0
	}
	return l.servers[shard].ControlAddr()
}

// Owner returns the shard that owns the session (-1 if unplaced).
func (l *Live) Owner(user uint32) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if shard, ok := l.cluster.Lookup(user); ok {
		return shard
	}
	return -1
}

// statesLocked snapshots the ShardState slice for the router (caller holds
// l.mu). The live demand proxy is sessions x InitialUserMbps: the
// coordinator has no per-session rate ladder, but scorers only compare
// demand/budget ratios, so any per-session constant works.
func (l *Live) statesLocked() []ShardState {
	perSession := l.cfg.Base.InitialUserMbps
	if perSession <= 0 {
		perSession = 30
	}
	slo := l.cfg.Base.SLO
	counts := make([]int, len(l.servers))
	paging := make([]int, len(l.servers))
	l.cluster.Each(func(user uint32, shard int) {
		counts[shard]++
		if slo != nil && slo.State(user) == obs.SLOStatePage {
			paging[shard]++
		}
	})
	out := make([]ShardState, len(l.servers))
	for i := range l.servers {
		st := ShardState{
			ID:         i,
			Zone:       l.shards[i].zone,
			Alive:      !l.shards[i].dead,
			Draining:   l.shards[i].draining,
			Sessions:   counts[i],
			BudgetMbps: l.servers[i].Budget(),
			DemandMbps: float64(counts[i]) * perSession,
		}
		if counts[i] > 0 {
			st.PageFrac = float64(paging[i]) / float64(counts[i])
		}
		out[i] = st
	}
	return out
}

// Place admits a new session: scores the shards, records the decision and
// returns the winning shard index. The caller dials the returned shard's
// ControlAddr (see ShardAddr) and should set the client's Redirect to
// Addr(user) so later migrations find it.
func (l *Live) Place(sess SessionInfo) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.cluster.Available() {
		return -1, fmt.Errorf("fleet: place session %d: %w", sess.ID, coord.ErrUnavailable)
	}
	shard := l.router.Place(l.slot, sess, l.statesLocked(), obs.PlaceArrival, -1)
	if shard < 0 {
		return -1, fmt.Errorf("fleet: no shard can accept session %d", sess.ID)
	}
	if err := l.cluster.Propose(coord.Op{Kind: coord.OpPlace, Session: sess.ID, Shard: shard}); err != nil {
		return -1, fmt.Errorf("fleet: place session %d: %w", sess.ID, err)
	}
	l.shards[shard].placed++
	return shard, nil
}

// Forget drops a departed session from the ownership table. While the
// coordinator is leaderless the departure is queued and replayed by Tick —
// a stale binding only wastes a map entry, it cannot misroute anything
// because the session is gone.
func (l *Live) Forget(user uint32) {
	l.mu.Lock()
	if err := l.cluster.Propose(coord.Op{Kind: coord.OpForget, Session: user}); err != nil {
		l.pendingForgets = append(l.pendingForgets, user)
	}
	l.evac.Forget(user)
	l.mu.Unlock()
}

// Health returns the coordinator's time-series store (nil when neither
// LiveConfig.Health nor the evacuation loop enabled one). Mount it on
// /debug/health via tsdb.Handler.
func (l *Live) Health() *tsdb.Store { return l.health }

// Evacuations reports how many sessions the SLO-pressure loop has moved.
func (l *Live) Evacuations() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.evacuations
}

// EvacBatches reports how many cooldown-spaced evacuation batches fired.
func (l *Live) EvacBatches() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.evac.Batches()
}

// Migrate moves one session to the best-scoring other shard: export on the
// source (closing its control connection, which triggers the client's
// redial), adopt on the target, and flip ownership so the client's Redirect
// hook resolves to the adopting shard. reason is one of the obs.Place*
// constants. Returns the target shard.
func (l *Live) Migrate(user uint32, reason string) (int, error) {
	l.mu.Lock()
	from, ok := l.cluster.Lookup(user)
	if !ok {
		l.mu.Unlock()
		return -1, fmt.Errorf("fleet: migrate: unknown session %d", user)
	}
	if !l.cluster.Available() {
		// Refuse to even start: an export that cannot commit its
		// ownership flip would only be rolled back again.
		l.mu.Unlock()
		return -1, fmt.Errorf("fleet: migrate session %d: %w", user, coord.ErrUnavailable)
	}
	sess := SessionInfo{ID: user, Zone: l.shards[from].zone, DemandMbps: l.cfg.Base.InitialUserMbps}
	to := l.router.Place(l.slot, sess, l.statesLocked(), reason, from)
	if to < 0 {
		l.mu.Unlock()
		return -1, fmt.Errorf("fleet: migrate: no shard can adopt session %d", user)
	}
	l.mu.Unlock()

	// Ordering is the whole protocol: snapshot the state, register it on
	// the adopting shard, commit the ownership flip (so the client's
	// Redirect hook resolves to the target), and only then close the
	// source's control connection to trigger the redial. Any other order
	// lets the client's fresh Hello race the adoption or redial back into
	// the source. Every step that can fail after the export rolls the
	// export back — the session must never be left flagged as handed off
	// on a shard that still owns it.
	st, err := l.servers[from].ExportSession(user)
	if err != nil {
		return -1, fmt.Errorf("fleet: migrate session %d: %w", user, err)
	}
	if err := l.servers[to].AdoptSession(st); err != nil {
		l.servers[from].CancelExport(user)
		return -1, fmt.Errorf("fleet: migrate session %d: %w", user, err)
	}
	l.mu.Lock()
	perr := l.cluster.Propose(coord.Op{Kind: coord.OpFlip, Session: user, From: from, Shard: to})
	if perr != nil {
		l.mu.Unlock()
		// The flip did not commit: the source keeps the session. Undo the
		// adoption before it can consume a redial, then clear the handoff
		// flag so the session retires normally.
		l.servers[to].DropAdopted(user)
		l.servers[from].CancelExport(user)
		return -1, fmt.Errorf("fleet: migrate session %d: %w", user, perr)
	}
	l.shards[from].migratedOut++
	l.shards[to].migratedIn++
	l.migrations++
	l.mu.Unlock()

	if err := l.servers[from].ReleaseSession(user); err != nil {
		return -1, fmt.Errorf("fleet: migrate session %d: %w", user, err)
	}
	return to, nil
}

// DrainShard marks a shard draining (no new placements) and migrates every
// session it owns to the rest of the fleet, in ascending session order.
// Returns how many sessions moved; the first migration error aborts.
func (l *Live) DrainShard(i int) (int, error) {
	l.mu.Lock()
	l.shards[i].draining = true
	users := make([]uint32, 0)
	l.cluster.Each(func(user uint32, shard int) {
		if shard == i {
			users = append(users, user)
		}
	})
	l.mu.Unlock()
	// Ascending order: the map walk above is unordered, the migrations
	// must not be.
	for a := 1; a < len(users); a++ {
		for b := a; b > 0 && users[b] < users[b-1]; b-- {
			users[b], users[b-1] = users[b-1], users[b]
		}
	}
	moved := 0
	for _, user := range users {
		if _, err := l.Migrate(user, obs.PlaceShardDrain); err != nil {
			return moved, err
		}
		moved++
	}
	return moved, nil
}

// KillShard abruptly kills a shard: its server closes (handoff state is
// lost — a kill is a crash, not a drain) and its sessions are re-placed on
// the survivors so the clients' Redirect hooks resolve elsewhere when their
// reconnect fires. Returns how many sessions were re-placed.
func (l *Live) KillShard(i int) int {
	l.mu.Lock()
	if l.shards[i].dead {
		l.mu.Unlock()
		return 0
	}
	l.shards[i].dead = true
	replaced := l.sweepDeadLocked(i)
	l.mu.Unlock()
	l.servers[i].Close()
	return replaced
}

// sweepDeadLocked re-places every session still owned by dead shard i on
// the survivors. Sessions whose proposals the coordinator rejects (it may
// be mid-election when the shard dies) keep their stale binding and are
// retried by Tick once the cluster recovers — their clients keep
// reconnect-polling Addr in the meantime. Caller holds l.mu.
func (l *Live) sweepDeadLocked(i int) int {
	users := make([]uint32, 0)
	l.cluster.Each(func(user uint32, shard int) {
		if shard == i {
			users = append(users, user)
		}
	})
	for a := 1; a < len(users); a++ {
		for b := a; b > 0 && users[b] < users[b-1]; b-- {
			users[b], users[b-1] = users[b-1], users[b]
		}
	}
	replaced := 0
	for _, user := range users {
		if !l.cluster.Available() {
			break
		}
		sess := SessionInfo{ID: user, Zone: l.shards[i].zone, DemandMbps: l.cfg.Base.InitialUserMbps}
		to := l.router.Place(l.slot, sess, l.statesLocked(), obs.PlaceShardKill, i)
		if to < 0 {
			if l.cluster.Propose(coord.Op{Kind: coord.OpForget, Session: user}) != nil {
				l.pendingForgets = append(l.pendingForgets, user)
			}
			continue
		}
		if l.cluster.Propose(coord.Op{Kind: coord.OpFlip, Session: user, From: i, Shard: to}) != nil {
			break
		}
		l.shards[i].migratedOut++
		l.shards[to].migratedIn++
		l.migrations++
		replaced++
	}
	return replaced
}

// Tick advances the coordinator's slot clock: demand and health-series
// observation every slot, on the rebalance cadence a budget re-split
// applied to the shards via SetBudget, and — when the evacuation loop is
// enabled — the SLO-pressure check that live-migrates sessions off shards
// whose windowed page fraction stays above the enter threshold.
func (l *Live) Tick(slot int) {
	l.mu.Lock()
	l.slot = slot
	// Advance the coordinator first: lease renewal, elections, catch-up.
	// Everything below sees the post-election cluster.
	l.cluster.Tick(int64(slot))
	epoch := uint64(0)
	if term := l.cluster.Term(); term != l.lastTerm {
		l.lastTerm = term
		epoch = term // broadcast the new fencing epoch below, outside l.mu
	}
	// Replay departures that arrived while the cluster was leaderless.
	if len(l.pendingForgets) > 0 && l.cluster.Available() {
		kept := l.pendingForgets[:0]
		for _, user := range l.pendingForgets {
			if l.cluster.Propose(coord.Op{Kind: coord.OpForget, Session: user}) != nil {
				kept = append(kept, user)
			}
		}
		l.pendingForgets = kept
	}
	// Re-place sessions stranded on shards that died while the
	// coordinator could not commit (see sweepDeadLocked).
	if l.cluster.Available() {
		for i := range l.shards {
			if l.shards[i].dead {
				l.sweepDeadLocked(i)
			}
		}
	}
	states := l.statesLocked()
	alive := make([]bool, len(states))
	for i, st := range states {
		alive[i] = st.Alive
		l.rb.Observe(i, st.DemandMbps)
	}
	if l.health != nil {
		total := 0
		for i, st := range states {
			l.hseries[i].sessions.Observe(int64(slot), float64(st.Sessions))
			l.hseries[i].budget.Observe(int64(slot), st.BudgetMbps)
			l.hseries[i].demand.Observe(int64(slot), st.DemandMbps)
			l.hseries[i].pageFrac.Observe(int64(slot), st.PageFrac)
			total += st.Sessions
		}
		l.hFleetSess.Observe(int64(slot), float64(total))
		l.hEvacTotal.Observe(int64(slot), float64(l.evacuations))
	}
	due := l.rb.Due(slot)
	var shares []float64
	if due {
		shares = l.rb.Shares(l.cfg.GlobalBudgetMbps, alive)
		// The split goes through the log so a post-failover leader knows
		// the committed shares; if the cluster cannot commit it, the old
		// split stays in force until the next due rebalance.
		if l.cluster.Propose(coord.Op{Kind: coord.OpBudgetSplit, Shares: shares}) != nil {
			due = false
		}
	}
	// Evacuation decisions happen under the lock (stable view of ownership
	// and the pressure windows); the migrations themselves run after it —
	// Migrate re-takes the lock and talks to the shard servers.
	var victims []uint32
	if l.evac != nil && l.cluster.Available() {
		victims = l.evacVictimsLocked(slot, states)
	}
	l.mirrorCoordMetricsLocked()
	l.mu.Unlock()
	if epoch > 0 {
		// A new term is live: fence every shard before any migration
		// decided under it exports state, so a deposed leader's stale
		// flips are rejected at adoption.
		for i, srv := range l.servers {
			if !l.shardDead(i) {
				srv.SetCoordEpoch(epoch)
			}
		}
	}
	if due {
		for i, share := range shares {
			if alive[i] {
				l.servers[i].SetBudget(share)
			}
		}
	}
	for _, user := range victims {
		if _, err := l.Migrate(user, obs.PlaceSLOPressure); err != nil {
			continue
		}
		l.mu.Lock()
		l.evac.NoteMigration(user, int64(slot))
		l.evacuations++
		l.mu.Unlock()
	}
}

// evacVictimsLocked runs one slot of the hysteresis controller over every
// live, non-draining shard and collects the sessions to evacuate: paging
// sessions first, then ascending session ID, capped per shard at
// BatchSessions, each respecting the per-session re-migration cooldown.
// Caller holds l.mu.
func (l *Live) evacVictimsLocked(slot int, states []ShardState) []uint32 {
	slo := l.cfg.Base.SLO
	window := l.evac.Config().WindowSlots
	batch := l.evac.Config().BatchSessions
	var victims []uint32
	for i, st := range states {
		if !st.Alive || st.Draining {
			continue
		}
		w := l.hseries[i].pageFrac.Stats(window)
		pressure := 0.0
		if w.Count > 0 {
			pressure = w.Mean()
		}
		if !l.evac.Update(i, int64(slot), pressure, w.Count) {
			continue
		}
		var users []uint32
		l.cluster.Each(func(user uint32, shard int) {
			if shard == i && l.evac.AllowSession(user, int64(slot)) {
				users = append(users, user)
			}
		})
		// Deterministic order: paging sessions first (they are the ones
		// burning the SLO), ties broken by ascending session ID. The map
		// walk above is unordered, so sort fully.
		for a := 1; a < len(users); a++ {
			for b := a; b > 0 && evacLess(slo, users[b], users[b-1]); b-- {
				users[b], users[b-1] = users[b-1], users[b]
			}
		}
		if len(users) > batch {
			users = users[:batch]
		}
		victims = append(victims, users...)
	}
	return victims
}

// evacLess orders evacuation candidates: paging before non-paging, then by
// session ID.
func evacLess(slo *obs.SLOMonitor, a, b uint32) bool {
	if slo != nil {
		pa := slo.State(a) == obs.SLOStatePage
		pb := slo.State(b) == obs.SLOStatePage
		if pa != pb {
			return pa
		}
	}
	return a < b
}

// Snapshot builds the /debug/fleet document with up to n recent placement
// records.
func (l *Live) Snapshot(n int) obs.FleetSnapshot {
	l.mu.Lock()
	states := l.statesLocked()
	snap := obs.FleetSnapshot{
		Scorer:           l.router.ScorerName(),
		GlobalBudgetMbps: l.cfg.GlobalBudgetMbps,
		Slot:             l.slot,
		Placements:       l.router.Placed(),
		Migrations:       l.migrations,
		Rebalances:       l.rb.Rebalances(),
		Evacuations:      l.evacuations,
		RingCapacity:     l.cfg.Recorder.RingCapacity(),
		RingDropped:      l.cfg.Recorder.Dropped(),
	}
	for i, st := range states {
		snap.Shards = append(snap.Shards, obs.FleetShardState{
			Shard:       i,
			Zone:        st.Zone,
			Alive:       st.Alive,
			Draining:    st.Draining,
			Sessions:    st.Sessions,
			BudgetMbps:  st.BudgetMbps,
			DemandMbps:  st.DemandMbps,
			PageFrac:    st.PageFrac,
			Placed:      l.shards[i].placed,
			MigratedIn:  l.shards[i].migratedIn,
			MigratedOut: l.shards[i].migratedOut,
		})
	}
	l.mu.Unlock()
	snap.Recent = l.cfg.Recorder.Recent(n)
	return snap
}

// Drain gracefully drains every live shard (concurrently), bounded by
// timeout per shard. Reports whether every shard flushed.
func (l *Live) Drain(timeout time.Duration) bool {
	l.mu.Lock()
	dead := make([]bool, len(l.servers))
	for i := range l.shards {
		dead[i] = l.shards[i].dead
	}
	l.mu.Unlock()
	var wg sync.WaitGroup
	flushed := make([]bool, len(l.servers))
	for i := range l.servers {
		if dead[i] {
			flushed[i] = true
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			flushed[i] = l.servers[i].Drain(timeout)
		}(i)
	}
	wg.Wait()
	ok := true
	for _, f := range flushed {
		ok = ok && f
	}
	return ok
}

// Close shuts every shard down.
func (l *Live) Close() error {
	var first error
	for _, srv := range l.servers {
		if err := srv.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// shardDead reports whether shard i has been killed.
func (l *Live) shardDead(i int) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.shards[i].dead
}

// CoordKill crashes coordinator replica i (chaos fault coord_kill). A
// killed leader stalls ownership mutations until its lease drains and the
// survivors elect; placements and migrations fail fast in the window and
// their callers retry.
func (l *Live) CoordKill(i int) {
	l.mu.Lock()
	l.cluster.Kill(i)
	l.mu.Unlock()
}

// CoordRestart revives a crashed coordinator replica; it rejoins as a
// follower and is caught up (log suffix or snapshot) on the next Tick.
func (l *Live) CoordRestart(i int) {
	l.mu.Lock()
	l.cluster.Restart(i)
	l.mu.Unlock()
}

// CoordPartition cuts coordinator replica i from its peers until the given
// slot (chaos fault coord_partition).
func (l *Live) CoordPartition(i int, untilSlot int) {
	l.mu.Lock()
	l.cluster.Partition(i, int64(untilSlot))
	l.mu.Unlock()
}

// CoordStatus snapshots the coordinator cluster for /debug/coord.
func (l *Live) CoordStatus() coord.Status {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cluster.Status()
}

// coordMetrics mirrors the cluster's internal counters into the obs
// registry on every Tick. All instruments are nil-safe no-ops when
// observability is disabled, so the default path pays nothing.
type coordMetrics struct {
	term      *obs.Gauge
	leader    *obs.Gauge
	elections *obs.Counter
	commits   *obs.Counter
	rejected  *obs.Counter
	installs  *obs.Counter
}

func newCoordMetrics(r *obs.Registry) coordMetrics {
	return coordMetrics{
		term:      r.Gauge("collabvr_fleet_coord_term"),
		leader:    r.Gauge("collabvr_fleet_coord_leader"),
		elections: r.Counter("collabvr_fleet_coord_elections_total"),
		commits:   r.Counter("collabvr_fleet_coord_commits_total"),
		rejected:  r.Counter("collabvr_fleet_coord_rejected_total"),
		installs:  r.Counter("collabvr_fleet_coord_snapshot_installs_total"),
	}
}

// mirrorCoordMetricsLocked publishes the cluster's counters as registry
// deltas. Caller holds l.mu.
func (l *Live) mirrorCoordMetricsLocked() {
	if l.cm.term == nil {
		return
	}
	st := l.cluster.Status()
	l.cm.term.Set(float64(st.Term))
	l.cm.leader.Set(float64(st.Leader))
	l.cm.elections.Add(st.Elections - l.cmPrev.Elections)
	l.cm.commits.Add(st.Commits - l.cmPrev.Commits)
	l.cm.rejected.Add(st.Rejected - l.cmPrev.Rejected)
	l.cm.installs.Add(st.SnapshotInstalls - l.cmPrev.SnapshotInstalls)
	l.cmPrev = st
}
