package fleet

import "fmt"

// Scorer ranks candidate shards for one session; higher scores win and the
// router breaks ties on the lowest shard index, so any deterministic score
// function yields a deterministic placement sequence.
type Scorer interface {
	Name() string
	Score(shard ShardState, sess SessionInfo) float64
}

// projectedLoad is the shard's demand/budget ratio after admitting the
// session — the common congestion signal all built-in scorers minimize. A
// shard with no budget is maximally loaded rather than a division blowup.
func projectedLoad(shard ShardState, sess SessionInfo) float64 {
	const minBudget = 1e-9
	b := shard.BudgetMbps
	if b < minBudget {
		b = minBudget
	}
	return (shard.DemandMbps + sess.DemandMbps) / b
}

// LeastLoaded places on the shard with the lowest projected demand/budget
// ratio — the classic balanced-fleet default.
type LeastLoaded struct{}

func (LeastLoaded) Name() string { return "least-loaded" }

func (LeastLoaded) Score(shard ShardState, sess SessionInfo) float64 {
	return -projectedLoad(shard, sess)
}

// LocalityAware is least-loaded with a zone-affinity bonus: a same-zone
// shard wins unless it is more than ZoneBonus load units worse than the
// best remote shard (edge placement: keep the last hop short unless the
// local shard is badly congested).
type LocalityAware struct {
	// ZoneBonus is the score credit for a zone match (default 0.5 — a
	// same-zone shard may carry up to 50 percentage points more load
	// before a remote shard beats it).
	ZoneBonus float64
}

func (LocalityAware) Name() string { return "locality" }

func (s LocalityAware) Score(shard ShardState, sess SessionInfo) float64 {
	bonus := s.ZoneBonus
	if bonus == 0 {
		bonus = 0.5
	}
	score := -projectedLoad(shard, sess)
	if shard.Zone == sess.Zone {
		score += bonus
	}
	return score
}

// SLOAware is least-loaded with a burn-rate penalty: shards whose sessions
// are paging their QoE SLO repel new placements proportionally, steering
// arrivals away from a shard that is already failing its users even when
// raw load looks acceptable.
type SLOAware struct {
	// PagePenalty scales the PageFrac penalty (default 2 — a shard with
	// every session paging scores two full load units worse).
	PagePenalty float64
}

func (SLOAware) Name() string { return "slo-burn" }

func (s SLOAware) Score(shard ShardState, sess SessionInfo) float64 {
	penalty := s.PagePenalty
	if penalty == 0 {
		penalty = 2
	}
	return -projectedLoad(shard, sess) - penalty*shard.PageFrac
}

// ScorerByName maps CLI names to scorers.
func ScorerByName(name string) (Scorer, error) {
	switch name {
	case "", "least-loaded":
		return LeastLoaded{}, nil
	case "locality":
		return LocalityAware{}, nil
	case "slo-burn", "slo":
		return SLOAware{}, nil
	default:
		return nil, fmt.Errorf("fleet: unknown scorer %q (want least-loaded, locality or slo-burn)", name)
	}
}
