package fleet

import (
	"math"
	"testing"
)

func TestSharesProportionalToDemandWithFloor(t *testing.T) {
	rb := NewRebalancer(RebalanceConfig{EverySlots: 100, Alpha: 1, MinShareFrac: 0.25}, 3)
	rb.Observe(0, 300)
	rb.Observe(1, 100)
	rb.Observe(2, 0)
	alive := []bool{true, true, true}
	shares := rb.Shares(400, alive)
	sum := shares[0] + shares[1] + shares[2]
	if math.Abs(sum-400) > 1e-9 {
		t.Fatalf("shares sum %g, want 400", sum)
	}
	floor := 0.25 * 400 / 3
	if shares[2] < floor-1e-9 {
		t.Fatalf("idle shard got %g, below floor %g", shares[2], floor)
	}
	if !(shares[0] > shares[1] && shares[1] > shares[2]) {
		t.Fatalf("shares not demand-ordered: %v", shares)
	}
	if rb.Rebalances() != 1 {
		t.Fatalf("Rebalances = %d", rb.Rebalances())
	}
}

func TestSharesSkipDeadShardsAndIdleFleet(t *testing.T) {
	rb := NewRebalancer(RebalanceConfig{}, 3)
	alive := []bool{true, false, true}
	shares := rb.Shares(300, alive)
	if shares[1] != 0 {
		t.Fatalf("dead shard got %g", shares[1])
	}
	// Idle fleet (no demand observed): equal split of the survivors.
	if math.Abs(shares[0]-150) > 1e-9 || math.Abs(shares[2]-150) > 1e-9 {
		t.Fatalf("idle split = %v, want 150/0/150", shares)
	}
	if got := rb.Shares(300, []bool{false, false, false}); got[0] != 0 || got[1] != 0 || got[2] != 0 {
		t.Fatalf("all-dead shares = %v, want zeros", got)
	}
}

func TestObserveEMASmoothing(t *testing.T) {
	rb := NewRebalancer(RebalanceConfig{Alpha: 0.5}, 1)
	rb.Observe(0, 100) // primes directly
	if rb.Demand(0) != 100 {
		t.Fatalf("primed demand = %g", rb.Demand(0))
	}
	rb.Observe(0, 0)
	if rb.Demand(0) != 50 {
		t.Fatalf("EMA after 0-sample = %g, want 50", rb.Demand(0))
	}
	rb.Observe(-1, 5) // out of range: ignored, no panic
	rb.Observe(9, 5)
}

func TestDueCadence(t *testing.T) {
	rb := NewRebalancer(RebalanceConfig{EverySlots: 120}, 2)
	if rb.Due(0) {
		t.Fatal("slot 0 must not rebalance")
	}
	if !rb.Due(120) || !rb.Due(240) || rb.Due(121) {
		t.Fatal("cadence wrong")
	}
}
