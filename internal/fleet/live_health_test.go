package fleet

import (
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/fleet/coord"
	"repro/internal/motion"
	"repro/internal/obs"
	"repro/internal/obs/tsdb"
	"repro/internal/server"
)

// TestLiveMigrationUnderHealthSampler is the health-plane twin of the
// Welcome-resume round-trip: a real client streams from shard 0 while the
// coordinator ticks and a health sampler folds the shared registry + SLO
// monitor into the same time-series store the coordinator's fleet series
// land in. The session is live-migrated under the SLO-pressure reason and
// the test asserts (a) the shared SLO window keeps accumulating across the
// handoff, (b) the store holds both sampler-fed and coordinator-fed series,
// (c) /debug/fleet ring accounting matches the recorder, and (d) nothing
// leaks once the fleet closes.
func TestLiveMigrationUnderHealthSampler(t *testing.T) {
	baseGoroutines := obs.LeakSnapshot()

	reg := obs.NewRegistry()
	slo := obs.NewSLOMonitor(obs.DefaultSLOConfig(), reg)
	rec := obs.NewPlacementRecorder(obs.PlacementRecorderOptions{RingSize: 32, Metrics: reg})
	store := tsdb.New(tsdb.Options{})
	sampler := tsdb.NewSampler(tsdb.SamplerOptions{Store: store, Registry: reg, SLO: slo})

	l := newTestLive(t, reg, slo, nil, rec)
	defer l.Close()
	// Route the coordinator's fleet series into the same store the sampler
	// writes, like cmd/collabvr-fleet does: one /debug/health document.
	l.health = store
	l.hseries = make([]liveShardSeries, l.Shards())
	for i := 0; i < l.Shards(); i++ {
		l.hseries[i] = liveShardSeries{
			sessions: store.ShardSeries("fleet_shard_sessions", tsdb.Gauge, i),
			budget:   store.ShardSeries("fleet_shard_budget_mbps", tsdb.Gauge, i),
			demand:   store.ShardSeries("fleet_shard_demand_mbps", tsdb.Gauge, i),
			pageFrac: store.ShardSeries("fleet_shard_page_frac", tsdb.Gauge, i),
		}
	}
	l.hFleetSess = store.Series("fleet_active_sessions", tsdb.Gauge)
	l.hEvacTotal = store.Series("fleet_evacuations_total", tsdb.Counter)

	const user = 11
	shard, err := l.Place(SessionInfo{ID: user})
	if err != nil {
		t.Fatal(err)
	}
	if shard != 0 {
		t.Fatalf("arrival placed on shard %d, want 0", shard)
	}

	ccfg := client.DefaultConfig(user, l.ShardAddr(shard),
		motion.Generate(motion.Scenes()[0], user, 500, 200, 11))
	ccfg.SlotDuration = 5 * time.Millisecond
	ccfg.Slots = 300
	ccfg.Metrics = reg
	ccfg.Reconnect = true
	ccfg.ReconnectAttempts = 8
	ccfg.ReconnectBase = 2 * time.Millisecond
	ccfg.ReconnectCap = 20 * time.Millisecond
	ccfg.Redirect = func() string { return l.Addr(user) }

	type outcome struct {
		res *client.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := client.Run(ccfg)
		done <- outcome{res, err}
	}()

	if !l.Shard(0).WaitSession(user, 2*time.Second) {
		t.Fatal("session never admitted on shard 0")
	}

	// Tick + sample on one clock while the SLO window fills on the source
	// shard. The sampler is driven from this goroutine only (it is not
	// concurrency-safe), exactly how a coordinator main loop runs it.
	sloSlots := func() int {
		for _, s := range slo.Snapshot().Sessions {
			if s.Session == user {
				return s.Slots
			}
		}
		return 0
	}
	slot := 0
	tick := func() {
		slot++
		l.Tick(slot)
		sampler.Sample(int64(slot))
	}
	deadline := time.Now().Add(2 * time.Second)
	for sloSlots() < 40 && time.Now().Before(deadline) {
		tick()
		time.Sleep(5 * time.Millisecond)
	}
	slotsBefore := sloSlots()
	if slotsBefore < 40 {
		t.Fatalf("SLO window only %d slots before migration", slotsBefore)
	}

	to, err := l.Migrate(user, obs.PlaceSLOPressure)
	if err != nil {
		t.Fatal(err)
	}
	if !l.Shard(to).WaitSession(user, 2*time.Second) {
		t.Fatalf("session never admitted on shard %d after migration", to)
	}
	for i := 0; i < 20; i++ {
		tick()
		time.Sleep(5 * time.Millisecond)
	}

	out := <-done
	if out.err != nil {
		t.Fatalf("client: %v", out.err)
	}
	if out.res.Resumes < 1 {
		t.Errorf("Resumes = %d, want >= 1 (Welcome{Resumed} across the handoff)", out.res.Resumes)
	}

	// (a) SLO continuity: the shared monitor kept the window across shards.
	if after := sloSlots(); after < slotsBefore {
		t.Errorf("SLO window shrank across migration: %d -> %d slots", slotsBefore, after)
	}

	// (b) One store carries both planes: sampler-fed SLO totals and
	// coordinator-fed fleet series.
	names := map[string]bool{}
	for _, snap := range store.Snapshot() {
		names[snap.Name] = true
	}
	for _, want := range []string{
		"collabvr_slo_sessions_ok", "fleet_shard_sessions", "fleet_active_sessions",
	} {
		if !names[want] {
			t.Errorf("health store missing series %q", want)
		}
	}

	// (c) Ring accounting parity between the snapshot and the recorder.
	snap := l.Snapshot(8)
	if snap.RingCapacity != rec.RingCapacity() || snap.RingDropped != rec.Dropped() {
		t.Errorf("snapshot ring accounting (%d, %d) != recorder (%d, %d)",
			snap.RingCapacity, snap.RingDropped, rec.RingCapacity(), rec.Dropped())
	}
	if snap.RingCapacity != 32 {
		t.Errorf("RingCapacity = %d, want 32", snap.RingCapacity)
	}

	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	obs.AssertNoLeaks(t, baseGoroutines)
}

// TestLiveEvacuationTrigger drives the coordinator's evacuation loop without
// real traffic: fake-owned sessions are fed forced SLO misses until the
// shard's windowed page fraction latches the controller, and the Tick loop
// must then attempt SLO-pressure migrations (visible on the placement
// record) — gated by MinSamples, so early ticks must NOT fire.
func TestLiveEvacuationTrigger(t *testing.T) {
	reg := obs.NewRegistry()
	slo := obs.NewSLOMonitor(obs.SLOConfig{WindowSlots: 40, ShortWindowSlots: 10}, reg)
	rec := obs.NewPlacementRecorder(obs.PlacementRecorderOptions{RingSize: 64})

	base := server.DefaultConfig(core.DVGreedy{})
	base.SlotDuration = 5 * time.Millisecond
	base.Metrics = reg
	base.SLO = slo
	base.Logf = t.Logf
	l, err := NewLive(LiveConfig{
		Shards:           2,
		Base:             base,
		GlobalBudgetMbps: 400,
		Recorder:         rec,
		Evac: EvacConfig{
			Enabled:       true,
			WindowSlots:   20,
			EnterPressure: 0.5,
			CooldownSlots: 10,
			BatchSessions: 1,
			MinSamples:    10,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Health() == nil {
		t.Fatal("evac-enabled fleet has no health store")
	}

	// Fake ownership: both sessions on shard 0, paging hard.
	l.mu.Lock()
	l.cluster.Propose(coord.Op{Kind: coord.OpPlace, Session: 1, Shard: 0})
	l.cluster.Propose(coord.Op{Kind: coord.OpPlace, Session: 2, Shard: 0})
	l.mu.Unlock()
	for i := 0; i < 50; i++ {
		slo.ObserveSlot(1, false, 0)
		slo.ObserveSlot(2, false, 0)
	}

	evacAttempts := func() int {
		n := 0
		for _, r := range rec.Recent(64) {
			if r.Reason == obs.PlaceSLOPressure {
				n++
			}
		}
		return n
	}

	// Below MinSamples the controller must stay quiet even at pressure 1.
	for slot := 1; slot <= 5; slot++ {
		l.Tick(slot)
	}
	if got := evacAttempts(); got != 0 {
		t.Fatalf("%d evacuation attempts before MinSamples ticks", got)
	}

	for slot := 6; slot <= 30; slot++ {
		l.Tick(slot)
	}
	if got := evacAttempts(); got == 0 {
		t.Fatal("no evacuation attempts despite a fully-paging shard")
	}
	// The fake sessions do not exist on the servers, so Migrate fails after
	// the placement decision: attempts are recorded, nothing is counted as
	// moved.
	if l.Evacuations() != 0 {
		t.Errorf("Evacuations = %d for unmigratable fake sessions, want 0", l.Evacuations())
	}
	// Cooldown spacing: consecutive attempt slots from shard 0 are >= 10 apart.
	last := -100
	for _, r := range rec.Recent(64) {
		if r.Reason != obs.PlaceSLOPressure {
			continue
		}
		if r.Slot-last < 10 && last >= 0 {
			t.Errorf("evacuation batches %d and %d inside one cooldown window", last, r.Slot)
		}
		last = r.Slot
	}
}
