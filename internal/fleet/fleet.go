// Package fleet is the multi-server placement layer of the collabvr stack.
// The paper's edge server allocates one bandwidth budget B(t) across its
// users each slot; scaling past a single box requires N such servers
// ("shards") behind a coordinator that (a) places arriving sessions with a
// pluggable scorer, (b) periodically re-splits the global budget across
// shards from observed demand, and (c) live-migrates sessions off dying or
// draining shards using the reconnect + Welcome-resume machinery.
//
// The package splits into a pure decision core — Scorer, Router,
// Rebalancer, all deterministic and engine-agnostic — and Live, the
// in-process coordinator that runs N real server.Servers. The virtual-time
// fleet engine (load.SimulateFleet) reuses the same decision core, so sim
// campaigns and live runs route identically.
package fleet

// ShardState is one shard's view presented to placement scoring and budget
// rebalancing: everything a router may weigh, nothing engine-specific.
type ShardState struct {
	// ID is the shard index (stable, dense, 0-based).
	ID int
	// Zone is the shard's locality zone.
	Zone int
	// Alive is false once the shard is killed or fully drained; dead
	// shards never receive placements or budget.
	Alive bool
	// Draining shards keep serving their remaining sessions but accept no
	// new placements.
	Draining bool
	// Sessions is the shard's current session count.
	Sessions int
	// BudgetMbps is the shard's current slice of the global budget.
	BudgetMbps float64
	// DemandMbps is the shard's observed bandwidth demand (each engine
	// defines its proxy; scorers only ever use the demand/budget ratio).
	DemandMbps float64
	// PageFrac is the fraction of the shard's sessions whose SLO burn
	// rate is paging — the burn-rate-aware scorer's pressure signal.
	PageFrac float64
}

// Accepting reports whether the shard can take a new session.
func (s *ShardState) Accepting() bool { return s.Alive && !s.Draining }

// SessionInfo describes the session being placed.
type SessionInfo struct {
	ID uint32
	// Zone is the session's locality zone (the locality-aware scorer
	// prefers a shard in the same zone).
	Zone int
	// DemandMbps is the session's expected bandwidth demand, in the same
	// units as ShardState.DemandMbps.
	DemandMbps float64
}
