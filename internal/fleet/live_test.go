package fleet

import (
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/fleet/coord"
	"repro/internal/motion"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/trace"
)

// newTestLive builds a 2-shard live fleet with shared observability wired
// the way cmd/collabvr-fleet does it: one registry, one SLO monitor, one
// tracer across every shard.
func newTestLive(t *testing.T, reg *obs.Registry, slo *obs.SLOMonitor,
	tracer *trace.Tracer, rec *obs.PlacementRecorder) *Live {
	t.Helper()
	base := server.DefaultConfig(core.DVGreedy{})
	base.SlotDuration = 5 * time.Millisecond
	base.Metrics = reg
	base.SLO = slo
	base.Tracer = tracer
	base.Logf = t.Logf
	l, err := NewLive(LiveConfig{
		Shards:           2,
		Base:             base,
		GlobalBudgetMbps: 400,
		Recorder:         rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestLiveMigrationWelcomeResume is the migration round-trip: a real client
// streams from shard 0, the coordinator live-migrates it to shard 1, and
// the session survives — the client's redial lands on the adopting shard
// with Welcome{Resumed}, the shared SLO window keeps accumulating instead
// of resetting, post-migration traces still stitch server and client spans
// under one trace ID, and nothing leaks.
func TestLiveMigrationWelcomeResume(t *testing.T) {
	baseGoroutines := obs.LeakSnapshot()

	reg := obs.NewRegistry()
	slo := obs.NewSLOMonitor(obs.DefaultSLOConfig(), reg)
	exp := trace.NewExporter(trace.ExporterOptions{RingSize: 1 << 14, Sync: true})
	tracer := trace.New(trace.Options{Exporter: exp})
	rec := obs.NewPlacementRecorder(obs.PlacementRecorderOptions{RingSize: 32, Metrics: reg})

	l := newTestLive(t, reg, slo, tracer, rec)
	defer l.Close()

	const user = 7
	shard, err := l.Place(SessionInfo{ID: user})
	if err != nil {
		t.Fatal(err)
	}
	if shard != 0 {
		t.Fatalf("arrival placed on shard %d, want 0 (least-loaded, lowest index)", shard)
	}

	ccfg := client.DefaultConfig(user, l.ShardAddr(shard),
		motion.Generate(motion.Scenes()[0], user, 500, 200, 7))
	ccfg.SlotDuration = 5 * time.Millisecond
	ccfg.Slots = 300
	ccfg.Metrics = reg
	ccfg.Tracer = tracer
	ccfg.Reconnect = true
	ccfg.ReconnectAttempts = 8
	ccfg.ReconnectBase = 2 * time.Millisecond
	ccfg.ReconnectCap = 20 * time.Millisecond
	ccfg.Redirect = func() string { return l.Addr(user) }

	type outcome struct {
		res *client.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := client.Run(ccfg)
		done <- outcome{res, err}
	}()

	if !l.Shard(0).WaitSession(user, 2*time.Second) {
		t.Fatal("session never admitted on shard 0")
	}

	// Let the session build some SLO window on the source shard first, so
	// continuity is observable: a reset window would have fewer slots after
	// migration than before.
	sloSlots := func() int {
		for _, s := range slo.Snapshot().Sessions {
			if s.Session == user {
				return s.Slots
			}
		}
		return 0
	}
	deadline := time.Now().Add(2 * time.Second)
	for sloSlots() < 40 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	slotsBefore := sloSlots()
	if slotsBefore < 40 {
		t.Fatalf("SLO window only %d slots before migration", slotsBefore)
	}

	migNs := time.Now().UnixNano()
	to, err := l.Migrate(user, obs.PlaceSLOPressure)
	if err != nil {
		t.Fatal(err)
	}
	if to != 1 {
		t.Fatalf("migrated to shard %d, want 1", to)
	}
	if !l.Shard(1).WaitSession(user, 2*time.Second) {
		t.Fatal("session never admitted on shard 1 after migration")
	}
	if got := l.Owner(user); got != 1 {
		t.Fatalf("Owner(%d) = %d after migration, want 1", user, got)
	}

	out := <-done
	if out.err != nil {
		t.Fatalf("client: %v", out.err)
	}
	if out.res.Reconnects < 1 {
		t.Errorf("Reconnects = %d, want >= 1 (migration closes the control conn)", out.res.Reconnects)
	}
	if out.res.Resumes < 1 {
		t.Errorf("Resumes = %d, want >= 1 (adopting shard must answer Welcome{Resumed})", out.res.Resumes)
	}
	if out.res.LastShard != to {
		t.Errorf("LastShard = %d, want %d", out.res.LastShard, to)
	}

	// Session state survived: the handoff counters fired on both sides.
	if got := reg.Counter("collabvr_server_sessions_handoff_out_total").Value(); got != 1 {
		t.Errorf("handoff_out_total = %d, want 1", got)
	}
	if got := reg.Counter("collabvr_server_sessions_handoff_in_total").Value(); got != 1 {
		t.Errorf("handoff_in_total = %d, want 1", got)
	}

	// SLO window continuity: the shared monitor was never retired for the
	// user, so the adopting shard kept filling the same window.
	if after := sloSlots(); after < slotsBefore {
		t.Errorf("SLO window shrank across migration: %d -> %d slots", slotsBefore, after)
	}

	// Trace stitching after the handoff: some trace started after the
	// migration must carry both a server-side and a client-side span under
	// the same trace ID — the adopting shard's packets still stitch.
	spans := exp.Recent(1 << 14)
	serverAfter := make(map[uint64]bool)
	for _, s := range spans {
		if s.Side == trace.SideServer && s.User == user && s.StartNs > migNs {
			serverAfter[s.Trace] = true
		}
	}
	stitched := false
	for _, s := range spans {
		if s.Side == trace.SideClient && serverAfter[s.Trace] {
			stitched = true
			break
		}
	}
	if !stitched {
		t.Errorf("no post-migration trace ID carries both server and client spans (%d spans total)", len(spans))
	}

	// The migration decision is on the placement record with the source
	// excluded from candidates.
	recs := rec.Recent(32)
	var mig *obs.PlacementRecord
	for i := range recs {
		if recs[i].Reason == obs.PlaceSLOPressure {
			mig = &recs[i]
		}
	}
	if mig == nil {
		t.Fatal("no slo-pressure placement record")
	}
	if mig.From != 0 || mig.Chosen != 1 {
		t.Errorf("migration record from=%d chosen=%d, want 0 -> 1", mig.From, mig.Chosen)
	}

	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	obs.AssertNoLeaks(t, baseGoroutines)
}

// TestLiveKillShardReplacesOwners: a kill is a crash — no handoff state —
// but the coordinator must immediately re-own the dead shard's sessions so
// the clients' Redirect hooks resolve to survivors, and must stop placing
// arrivals there.
func TestLiveKillShardReplacesOwners(t *testing.T) {
	rec := obs.NewPlacementRecorder(obs.PlacementRecorderOptions{RingSize: 32})
	l := newTestLive(t, nil, nil, nil, rec)
	defer l.Close()

	for id := uint32(1); id <= 4; id++ {
		if _, err := l.Place(SessionInfo{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	// Least-loaded alternates 0,1,0,1: two sessions per shard.
	if l.Owner(1) != 0 || l.Owner(3) != 0 || l.Owner(2) != 1 || l.Owner(4) != 1 {
		t.Fatalf("unexpected ownership: %d %d %d %d", l.Owner(1), l.Owner(2), l.Owner(3), l.Owner(4))
	}

	if replaced := l.KillShard(0); replaced != 2 {
		t.Fatalf("KillShard replaced %d sessions, want 2", replaced)
	}
	for _, id := range []uint32{1, 2, 3, 4} {
		if got := l.Owner(id); got != 1 {
			t.Errorf("Owner(%d) = %d after kill, want 1", id, got)
		}
	}
	// The dead shard is out of the candidate set for new arrivals.
	if shard, err := l.Place(SessionInfo{ID: 9}); err != nil || shard != 1 {
		t.Errorf("Place after kill = (%d, %v), want shard 1", shard, err)
	}
	// Kill re-placements are recorded with the shard-kill reason.
	kills := 0
	for _, r := range rec.Recent(32) {
		if r.Reason == obs.PlaceShardKill {
			kills++
			if r.From != 0 {
				t.Errorf("shard-kill record From = %d, want 0", r.From)
			}
		}
	}
	if kills != 2 {
		t.Errorf("%d shard-kill records, want 2", kills)
	}
	// Addr for a killed-and-reowned session resolves to the survivor.
	if l.Addr(1) != l.ShardAddr(1) {
		t.Errorf("Addr(1) = %q, want survivor %q", l.Addr(1), l.ShardAddr(1))
	}
}

// TestLiveTickRebalance: demand skew must move budget. With every session
// owned by shard 0, the rebalance cadence shifts budget toward it while the
// floor keeps shard 1 alive.
func TestLiveTickRebalance(t *testing.T) {
	l := newTestLive(t, nil, nil, nil, nil)
	defer l.Close()

	const global = 400.0
	half := global / 2
	if b0, b1 := l.Shard(0).Budget(), l.Shard(1).Budget(); b0 != half || b1 != half {
		t.Fatalf("initial budgets = %v/%v, want equal halves", b0, b1)
	}

	for id := uint32(1); id <= 4; id++ {
		// Skew ownership without real connections.
		l.cluster.Propose(coord.Op{Kind: coord.OpPlace, Session: id, Shard: 0})
	}
	cadence := l.rb.cfg.EverySlots
	for slot := 1; slot <= cadence; slot++ {
		l.Tick(slot)
	}

	b0, b1 := l.Shard(0).Budget(), l.Shard(1).Budget()
	if b0 <= b1 {
		t.Errorf("budget after skewed rebalance: shard0=%v shard1=%v, want shard0 > shard1", b0, b1)
	}
	if sum := b0 + b1; sum < global-1e-6 || sum > global+1e-6 {
		t.Errorf("budgets sum to %v, want %v", sum, global)
	}
	floor := 0.25 * global / 2
	if b1 < floor-1e-9 {
		t.Errorf("shard1 budget %v below floor %v", b1, floor)
	}

	snap := l.Snapshot(8)
	if snap.Rebalances < 1 {
		t.Errorf("Snapshot.Rebalances = %d, want >= 1", snap.Rebalances)
	}
	if snap.GlobalBudgetMbps != global {
		t.Errorf("Snapshot.GlobalBudgetMbps = %v, want %v", snap.GlobalBudgetMbps, global)
	}
}
