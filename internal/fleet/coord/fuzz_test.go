package coord

import (
	"reflect"
	"testing"
)

// FuzzCoordLog drives a cluster through an arbitrary byte-encoded
// interleaving of ownership ops, replica crashes, restarts, partitions,
// and slot ticks, mirroring every COMMITTED op into a shadow model. After
// a full heal (everyone restarted, partitions drained, elections settled)
// every replica must hold a state DeepEqual to the model: replication
// never loses, duplicates, or reorders a committed owner-map mutation,
// no matter how the failures interleave.
//
// Byte format: data[0] picks the cluster shape (low bits → 3..5 replicas,
// high bits → lease length); the rest is consumed in (op, arg) pairs.
func FuzzCoordLog(f *testing.F) {
	f.Add([]byte{0x23, 0x00, 0x13, 0x02, 0x47, 0x06, 0x00, 0x09, 0x03, 0x07, 0x00, 0x02, 0x51})
	f.Add([]byte{0x41, 0x06, 0x00, 0x08, 0x15, 0x09, 0x02, 0x00, 0x22, 0x06, 0x01, 0x09, 0x04, 0x07, 0x01})
	f.Add([]byte{0x10, 0x05, 0x31, 0x04, 0x80, 0x08, 0x00, 0x09, 0x01, 0x02, 0x31, 0x03, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		n := 3 + int(data[0])%3 // 3..5 replicas
		lease := 2 + int(data[0]>>4)%4
		c := New(Config{Replicas: n, LeaseSlots: lease, SnapshotEvery: 4})

		// Shadow model: what the owner map must look like, fed only by
		// proposals the cluster actually committed.
		owner := map[uint32]int{}
		var shares []float64
		slot := int64(0)

		commit := func(op Op) {
			if c.Propose(op) != nil {
				return // rejected proposals must leave no trace
			}
			switch op.Kind {
			case OpPlace, OpFlip:
				owner[op.Session] = op.Shard
			case OpForget:
				delete(owner, op.Session)
			case OpBudgetSplit:
				shares = append(shares[:0], op.Shares...)
			case OpEvacBatch:
				for _, u := range op.Batch {
					owner[u] = op.Shard
				}
			}
		}

		for i := 1; i+1 < len(data); i += 2 {
			op, arg := data[i], data[i+1]
			sess := uint32(arg % 16)
			shard := int(arg>>4) % n
			switch op % 12 {
			case 0, 1:
				commit(Op{Kind: OpPlace, Session: sess, Shard: shard})
			case 2:
				commit(Op{Kind: OpFlip, Session: sess, From: shard, Shard: (shard + 1) % n})
			case 3:
				commit(Op{Kind: OpForget, Session: sess})
			case 4:
				s := []float64{float64(arg), float64(arg) * 2, float64(arg) * 3}
				commit(Op{Kind: OpBudgetSplit, Shares: s})
			case 5:
				commit(Op{Kind: OpEvacBatch, From: shard, Shard: (shard + 1) % n,
					Batch: []uint32{sess, sess + 1, sess + 2}})
			case 6:
				c.Kill(int(arg) % n)
			case 7:
				c.Restart(int(arg) % n)
			case 8:
				c.Partition(int(arg)%n, slot+1+int64(arg>>4))
			default:
				slot += 1 + int64(arg%4)
				c.Tick(slot)
			}
		}

		// Heal everything: revive every replica, drain every partition
		// window (bounded by 16 slots) and every lease, let elections and
		// anti-entropy settle.
		for i := 0; i < n; i++ {
			c.Restart(i)
		}
		for j := 0; j < 32+2*lease; j++ {
			slot++
			c.Tick(slot)
		}
		if !c.Available() {
			t.Fatalf("fully healed cluster (n=%d) still unavailable: leader=%d term=%d", n, c.Leader(), c.Term())
		}

		// Every replica must have converged to exactly the model.
		for i := 0; i < n; i++ {
			st := c.StateOf(i)
			if !reflect.DeepEqual(st.Owner, owner) {
				t.Fatalf("replica %d owner map diverged from committed model:\n got %v\nwant %v", i, st.Owner, owner)
			}
			if len(shares) > 0 && !reflect.DeepEqual(st.Shares, shares) {
				t.Fatalf("replica %d shares diverged: got %v want %v", i, st.Shares, shares)
			}
		}
		if !c.Converged() {
			t.Fatal("Converged() false after all replicas matched the model")
		}
	})
}
