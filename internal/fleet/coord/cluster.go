package coord

// Config tunes the replicated coordinator.
type Config struct {
	// Replicas is the coordinator replica count (2f+1 for f tolerated
	// failures; default 1 — a single replica, the zero-cost path).
	Replicas int
	// LeaseSlots is the leader lease length on the fleet's slot clock: a
	// dead or partitioned leader stalls ownership mutations for at most
	// this many slots before the survivors elect (default 8).
	LeaseSlots int
	// SnapshotEvery compacts a replica's applied log prefix into its
	// snapshot base once the retained log exceeds twice this many entries,
	// keeping this many for cheap suffix catch-up (default 256).
	SnapshotEvery int
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.LeaseSlots <= 0 {
		c.LeaseSlots = 8
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 256
	}
	return c
}

// replica is one coordinator replica: its retained log suffix, the
// snapshot base the suffix grows from, and the applied state machine. The
// log holds committed entries only — Propose commits or rejects atomically
// — so any replica's log is a prefix of the leader's and catch-up is
// append-only.
type replica struct {
	id    int
	alive bool
	// partUntil partitions the replica from everyone until that slot
	// (exclusive); it heals by the clock, like a chaos window.
	partUntil int64

	// log[0], when present, has index snapIndex+1.
	log       []Entry
	snapIndex uint64
	snapTerm  uint64
	st        *State
}

func (r *replica) lastIndex() uint64 {
	if n := len(r.log); n > 0 {
		return r.log[n-1].Index
	}
	return r.snapIndex
}

func (r *replica) lastTerm() uint64 {
	if n := len(r.log); n > 0 {
		return r.log[n-1].Term
	}
	return r.snapTerm
}

// applyTo folds committed entries up to index idx into the state machine.
func (r *replica) applyTo(idx uint64) {
	for i := range r.log {
		e := &r.log[i]
		if e.Index <= r.st.Applied {
			continue
		}
		if e.Index > idx {
			break
		}
		r.st.Apply(*e)
	}
}

// compact drops the applied log prefix into the snapshot base once the
// retained suffix exceeds 2×keep entries, keeping the last keep entries
// for suffix catch-up of briefly-lagging replicas.
func (r *replica) compact(keep int) {
	if len(r.log) <= 2*keep {
		return
	}
	drop := len(r.log) - keep
	// Never compact past the applied frontier (can't happen — entries are
	// applied as they commit — but keep the invariant explicit).
	for drop > 0 && r.log[drop-1].Index > r.st.Applied {
		drop--
	}
	if drop == 0 {
		return
	}
	r.snapIndex = r.log[drop-1].Index
	r.snapTerm = r.log[drop-1].Term
	r.log = append(r.log[:0], r.log[drop:]...)
}

// Cluster is the replicated coordinator: a deterministic, single-threaded
// state machine over its replicas, driven by the fleet layer's slot clock.
// It is NOT safe for concurrent use — fleet.Live guards it with its own
// mutex and the virtual-time engine is single-threaded, which is what
// keeps elections bit-stable per seed.
type Cluster struct {
	cfg    Config
	reps   []*replica
	term   uint64
	leader int
	// leaseUntil is the slot (exclusive) the current lease covers; no
	// election may happen before it expires, even against a dead leader —
	// that wait IS the election timeout.
	leaseUntil int64
	slot       int64
	seq        uint64

	elections uint64
	commits   uint64
	rejected  uint64
	installs  uint64
}

// New builds the cluster. Multi-replica clusters bootstrap deterministically
// with replica 0 leading term 1; a single replica stays at term 0 forever so
// the fencing epoch never perturbs the pre-replication handoff tokens.
func New(cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	c := &Cluster{cfg: cfg, leader: 0}
	for i := 0; i < cfg.Replicas; i++ {
		c.reps = append(c.reps, &replica{id: i, alive: true, st: NewState()})
	}
	if cfg.Replicas > 1 {
		c.term = 1
		c.leaseUntil = int64(cfg.LeaseSlots)
	}
	return c
}

// Replicas returns the configured replica count.
func (c *Cluster) Replicas() int { return len(c.reps) }

// Term returns the current leader term — the fencing epoch baked into
// handoff tokens. 0 in single-replica mode.
func (c *Cluster) Term() uint64 { return c.term }

// Leader returns the current leader index (-1 while leaderless).
func (c *Cluster) Leader() int { return c.leader }

// Elections counts leader changes after bootstrap.
func (c *Cluster) Elections() uint64 { return c.elections }

// Commits counts committed log entries.
func (c *Cluster) Commits() uint64 { return c.commits }

// Rejected counts proposals refused for want of a leader or quorum.
func (c *Cluster) Rejected() uint64 { return c.rejected }

// SnapshotInstalls counts full-state catch-ups of lagging replicas.
func (c *Cluster) SnapshotInstalls() uint64 { return c.installs }

func (c *Cluster) quorum() int { return len(c.reps)/2 + 1 }

// reachable reports whether replica i can exchange messages this slot.
// Partitions are islands of one: a partitioned replica reaches nobody.
func (c *Cluster) reachable(i int) bool { return c.slot >= c.reps[i].partUntil }

// connected counts the leader plus every alive follower it can reach — the
// acceptor set of a proposal.
func (c *Cluster) connected(leader int) int {
	if !c.reachable(leader) {
		return 1 // the leader reaches only itself
	}
	n := 1
	for i, r := range c.reps {
		if i != leader && r.alive && c.reachable(i) {
			n++
		}
	}
	return n
}

// checkPropose is the proposal precondition; Available mirrors it.
func (c *Cluster) checkPropose() error {
	if len(c.reps) == 1 {
		if !c.reps[0].alive {
			return ErrUnavailable
		}
		return nil
	}
	if c.leader < 0 || !c.reps[c.leader].alive {
		return ErrUnavailable
	}
	if c.connected(c.leader) < c.quorum() {
		return ErrNoQuorum
	}
	return nil
}

// Available reports whether a proposal would be accepted right now.
func (c *Cluster) Available() bool { return c.checkPropose() == nil }

// Propose appends one op to the replicated log. It either commits — the
// entry lands on the leader and every reachable alive replica, a majority
// by precondition — or rejects without mutating anything, so the log never
// holds an uncommitted entry and a new leader resumes from committed state
// alone. Single-replica mode applies straight to the state machine: no log,
// no retention, no allocation for place/flip/forget steady state.
func (c *Cluster) Propose(op Op) error {
	if err := c.checkPropose(); err != nil {
		c.rejected++
		return err
	}
	c.seq++
	if len(c.reps) == 1 {
		r := c.reps[0]
		r.st.Apply(Entry{Index: c.seq, Term: c.term, Op: op})
		r.snapIndex = c.seq
		r.snapTerm = c.term
		c.commits++
		return nil
	}
	e := Entry{Index: c.seq, Term: c.term, Op: op}
	// The entry owns its slices: callers reuse scratch.
	if op.Shares != nil {
		e.Op.Shares = append([]float64(nil), op.Shares...)
	}
	if op.Batch != nil {
		e.Op.Batch = append([]uint32(nil), op.Batch...)
	}
	ld := c.reps[c.leader]
	ld.log = append(ld.log, e)
	ld.applyTo(c.seq)
	ld.compact(c.cfg.SnapshotEvery)
	for i, r := range c.reps {
		if i != c.leader && r.alive && c.reachable(i) && c.reachable(c.leader) {
			c.catchUp(i)
		}
	}
	c.commits++
	return nil
}

// catchUp brings replica j to the leader's committed frontier: a snapshot
// install when the leader has compacted past j's log, the missing log
// suffix otherwise.
func (c *Cluster) catchUp(j int) {
	ld := c.reps[c.leader]
	r := c.reps[j]
	if r.lastIndex() >= ld.lastIndex() {
		return
	}
	if r.lastIndex() < ld.snapIndex {
		// The leader no longer retains the entries j is missing.
		r.st = ld.st.Clone()
		r.snapIndex = ld.lastIndex()
		r.snapTerm = ld.lastTerm()
		r.log = r.log[:0]
		c.installs++
		return
	}
	for i := range ld.log {
		e := &ld.log[i]
		if e.Index > r.lastIndex() {
			r.log = append(r.log, *e)
		}
	}
	r.applyTo(ld.lastIndex())
	r.compact(c.cfg.SnapshotEvery)
}

// catchUpAll heals every alive, reachable follower while the leader is
// functioning — the steady-state anti-entropy pass Tick runs.
func (c *Cluster) catchUpAll() {
	if c.leader < 0 || !c.reachable(c.leader) {
		return
	}
	for i, r := range c.reps {
		if i != c.leader && r.alive && c.reachable(i) {
			c.catchUp(i)
		}
	}
}

// Tick advances the cluster on the fleet's slot clock: a functioning leader
// renews its lease and heals laggards; a dead or cut-off leader's lease is
// waited out (that wait is the election timeout), after which the alive,
// connected replicas — if they form a majority — elect the longest-log
// replica, lowest index first, and bump the term.
func (c *Cluster) Tick(slot int64) {
	c.slot = slot
	if len(c.reps) == 1 {
		if c.reps[0].alive {
			c.leader = 0
		} else {
			c.leader = -1
		}
		return
	}
	if c.leader >= 0 && c.reps[c.leader].alive && c.connected(c.leader) >= c.quorum() {
		c.leaseUntil = slot + int64(c.cfg.LeaseSlots)
		c.catchUpAll()
		return
	}
	if slot < c.leaseUntil {
		return // the old lease must drain before anyone may take over
	}
	best := -1
	cands := 0
	for i, r := range c.reps {
		if !r.alive || !c.reachable(i) {
			continue
		}
		cands++
		if best < 0 {
			best = i
			continue
		}
		b := c.reps[best]
		if r.lastTerm() > b.lastTerm() ||
			(r.lastTerm() == b.lastTerm() && r.lastIndex() > b.lastIndex()) {
			best = i // longest log wins; iteration order gives lowest-index ties
		}
	}
	if cands < c.quorum() || best < 0 {
		c.leader = -1
		return
	}
	c.term++
	c.leader = best
	c.leaseUntil = slot + int64(c.cfg.LeaseSlots)
	c.seq = c.reps[best].lastIndex()
	c.elections++
	c.catchUpAll()
}

// Kill crashes replica i. A killed leader keeps its lease until expiry —
// the survivors cannot distinguish dead from slow, so the blackout a
// leader kill causes is bounded by LeaseSlots, not zero.
func (c *Cluster) Kill(i int) {
	c.reps[i].alive = false
	if len(c.reps) == 1 {
		c.leader = -1
	}
}

// Restart revives a crashed replica with its log intact (the log is the
// durable state); it rejoins as a follower and catches up on the next Tick
// or Propose that can reach it.
func (c *Cluster) Restart(i int) {
	c.reps[i].alive = true
	if len(c.reps) == 1 {
		c.leader = 0
	}
}

// Partition cuts replica i from every peer until the given slot
// (exclusive). A partitioned leader stalls the cluster until its lease
// expires, then the majority side elects around it; on heal the deposed
// replica is caught up like any laggard — its log holds only committed
// entries, so nothing needs undoing.
func (c *Cluster) Partition(i int, untilSlot int64) {
	if untilSlot > c.reps[i].partUntil {
		c.reps[i].partUntil = untilSlot
	}
}

// readReplica picks the replica reads are served from: the functioning
// leader when there is one, else the most-applied alive replica (a stale
// but safe view for the failover window), else nil.
func (c *Cluster) readReplica() *replica {
	if c.leader >= 0 && c.reps[c.leader].alive {
		return c.reps[c.leader]
	}
	var best *replica
	for _, r := range c.reps {
		if r.alive && (best == nil || r.st.Applied > best.st.Applied) {
			best = r
		}
	}
	return best
}

// Lookup resolves a session's owning shard from the read replica.
func (c *Cluster) Lookup(user uint32) (int, bool) {
	r := c.readReplica()
	if r == nil {
		return -1, false
	}
	shard, ok := r.st.Owner[user]
	return shard, ok
}

// Each visits every (session, shard) binding of the read replica. The
// iteration order is map order — callers needing determinism must sort.
func (c *Cluster) Each(fn func(user uint32, shard int)) {
	r := c.readReplica()
	if r == nil {
		return
	}
	for u, sh := range r.st.Owner {
		fn(u, sh)
	}
}

// Sessions returns the read replica's binding count.
func (c *Cluster) Sessions() int {
	r := c.readReplica()
	if r == nil {
		return 0
	}
	return len(r.st.Owner)
}

// StateOf exposes replica i's applied state — the convergence probe of
// FuzzCoordLog and the chaos campaigns. The returned pointer is live; do
// not mutate.
func (c *Cluster) StateOf(i int) *State { return c.reps[i].st }

// Converged reports whether every alive replica has applied an identical
// state — the single-owner-map invariant after a heal.
func (c *Cluster) Converged() bool {
	var first *State
	for _, r := range c.reps {
		if !r.alive {
			continue
		}
		if first == nil {
			first = r.st
			continue
		}
		if !first.Equal(r.st) {
			return false
		}
	}
	return true
}
