package coord

import (
	"testing"
)

func flip(user uint32, from, to int) Op {
	return Op{Kind: OpFlip, Session: user, From: from, Shard: to}
}

func place(user uint32, shard int) Op {
	return Op{Kind: OpPlace, Session: user, Shard: shard}
}

// TestSingleReplicaDirectApply: n=1 applies straight through, term stays 0
// (handoff tokens keep their pre-replication bytes), and a killed lone
// replica rejects cleanly.
func TestSingleReplicaDirectApply(t *testing.T) {
	c := New(Config{Replicas: 1})
	if c.Term() != 0 {
		t.Fatalf("single-replica term = %d, want 0 (fencing epoch must not perturb tokens)", c.Term())
	}
	if err := c.Propose(place(7, 2)); err != nil {
		t.Fatal(err)
	}
	if sh, ok := c.Lookup(7); !ok || sh != 2 {
		t.Fatalf("Lookup(7) = %d,%v want 2,true", sh, ok)
	}
	if err := c.Propose(Op{Kind: OpForget, Session: 7}); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Lookup(7); ok {
		t.Fatal("forgot session still resolves")
	}
	c.Kill(0)
	if err := c.Propose(place(8, 0)); !Unavailable(err) {
		t.Fatalf("propose against killed lone replica: err = %v, want unavailable", err)
	}
	c.Restart(0)
	if err := c.Propose(place(8, 0)); err != nil {
		t.Fatal(err)
	}
}

// TestProposeSteadyStateAllocs gates the single-replica replication hot
// path at 0 allocs/op: flips of an existing binding must not allocate.
func TestProposeSteadyStateAllocs(t *testing.T) {
	c := New(Config{Replicas: 1})
	if err := c.Propose(place(1, 0)); err != nil {
		t.Fatal(err)
	}
	to := 1
	allocs := testing.AllocsPerRun(1000, func() {
		if err := c.Propose(flip(1, 1-to, to)); err != nil {
			t.Fatal(err)
		}
		to = 1 - to
	})
	if allocs != 0 {
		t.Fatalf("single-replica flip Propose allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestLeaderKillElection: killing the leader stalls proposals for at most
// the lease, then the lowest-index survivor with the longest log takes
// over at term+1 and committed state survives intact.
func TestLeaderKillElection(t *testing.T) {
	c := New(Config{Replicas: 3, LeaseSlots: 4})
	c.Tick(0)
	if c.Leader() != 0 || c.Term() != 1 {
		t.Fatalf("bootstrap leader/term = %d/%d, want 0/1", c.Leader(), c.Term())
	}
	for u := uint32(1); u <= 5; u++ {
		if err := c.Propose(place(u, int(u)%3)); err != nil {
			t.Fatal(err)
		}
	}
	c.Kill(0)
	if err := c.Propose(flip(1, 1, 2)); !Unavailable(err) {
		t.Fatalf("propose under dead leader: %v, want unavailable", err)
	}
	// The lease (renewed at slot 0, so good until slot 4) must drain first.
	for slot := int64(1); slot < 4; slot++ {
		c.Tick(slot)
		if c.Leader() == 1 {
			t.Fatalf("election at slot %d, before the lease expired", slot)
		}
	}
	c.Tick(4)
	if c.Leader() != 1 {
		t.Fatalf("post-election leader = %d, want 1 (lowest surviving index)", c.Leader())
	}
	if c.Term() != 2 {
		t.Fatalf("post-election term = %d, want 2", c.Term())
	}
	if c.Elections() != 1 {
		t.Fatalf("elections = %d, want 1", c.Elections())
	}
	// Committed state survived the failover.
	for u := uint32(1); u <= 5; u++ {
		if sh, ok := c.Lookup(u); !ok || sh != int(u)%3 {
			t.Fatalf("after failover Lookup(%d) = %d,%v want %d,true", u, sh, ok, int(u)%3)
		}
	}
	if err := c.Propose(flip(1, 1, 2)); err != nil {
		t.Fatalf("propose under new leader: %v", err)
	}
}

// TestElectionDeterminism: two identically-driven clusters elect the same
// leaders at the same slots — the bit-stability the sim campaigns rely on.
func TestElectionDeterminism(t *testing.T) {
	run := func() []int {
		c := New(Config{Replicas: 5, LeaseSlots: 3})
		var leaders []int
		for slot := int64(0); slot < 40; slot++ {
			switch slot {
			case 5:
				c.Kill(0)
			case 12:
				c.Kill(1)
			case 20:
				c.Restart(0)
			case 25:
				c.Kill(2)
			}
			c.Tick(slot)
			leaders = append(leaders, c.Leader())
			if c.Available() {
				_ = c.Propose(place(uint32(slot), int(slot)%5))
			}
		}
		return leaders
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("slot %d: leader %d vs %d — elections are not deterministic", i, a[i], b[i])
		}
	}
}

// TestQuorumLoss: with a majority dead the cluster refuses proposals and
// elects nobody; restoring quorum restores service without losing state.
func TestQuorumLoss(t *testing.T) {
	c := New(Config{Replicas: 3, LeaseSlots: 2})
	c.Tick(0)
	if err := c.Propose(place(9, 1)); err != nil {
		t.Fatal(err)
	}
	c.Kill(1)
	c.Kill(2)
	if err := c.Propose(flip(9, 1, 0)); !Unavailable(err) {
		t.Fatalf("propose without quorum: %v, want unavailable", err)
	}
	for slot := int64(1); slot < 10; slot++ {
		c.Tick(slot)
	}
	if c.Available() {
		t.Fatal("cluster claims availability with 1/3 replicas alive")
	}
	c.Restart(1)
	c.Tick(10)
	if !c.Available() {
		t.Fatal("cluster unavailable after quorum restored")
	}
	if sh, ok := c.Lookup(9); !ok || sh != 1 {
		t.Fatalf("Lookup(9) = %d,%v want 1,true after recovery", sh, ok)
	}
}

// TestPartitionedLeaderDeposed: a partitioned leader loses quorum, the
// majority side elects around it after the lease, the term advances (the
// fencing epoch a stale leader's flips fail against), and the healed
// replica converges with no divergence to resolve.
func TestPartitionedLeaderDeposed(t *testing.T) {
	c := New(Config{Replicas: 3, LeaseSlots: 3})
	c.Tick(0)
	if err := c.Propose(place(1, 0)); err != nil {
		t.Fatal(err)
	}
	oldTerm := c.Term()
	c.Partition(0, 20)
	if err := c.Propose(flip(1, 0, 1)); !Unavailable(err) {
		t.Fatalf("propose through partitioned leader: %v, want unavailable", err)
	}
	var electedAt int64 = -1
	for slot := int64(1); slot < 20; slot++ {
		c.Tick(slot)
		if c.Leader() != 0 && c.Leader() >= 0 && electedAt < 0 {
			electedAt = slot
		}
	}
	if electedAt < 0 {
		t.Fatal("majority side never elected around the partitioned leader")
	}
	if c.Term() <= oldTerm {
		t.Fatalf("term did not advance past the deposed leader's (%d <= %d)", c.Term(), oldTerm)
	}
	if err := c.Propose(flip(1, 0, 2)); err != nil {
		t.Fatal(err)
	}
	// Heal: the deposed replica is caught up like any laggard.
	c.Tick(21)
	if !c.Converged() {
		t.Fatal("replicas diverged after the partition healed")
	}
	if sh, _ := c.Lookup(1); sh != 2 {
		t.Fatalf("Lookup(1) = %d, want 2", sh)
	}
}

// TestSnapshotCatchUp: a replica down long enough for the leader to
// compact past its log rejoins via snapshot install, not suffix replay,
// and still converges exactly.
func TestSnapshotCatchUp(t *testing.T) {
	c := New(Config{Replicas: 3, LeaseSlots: 4, SnapshotEvery: 8})
	c.Tick(0)
	c.Kill(2)
	for u := uint32(0); u < 100; u++ {
		if err := c.Propose(place(u, int(u)%3)); err != nil {
			t.Fatal(err)
		}
	}
	if c.StateOf(0).Applied != 100 {
		t.Fatalf("leader applied %d, want 100", c.StateOf(0).Applied)
	}
	c.Restart(2)
	c.Tick(1)
	if c.SnapshotInstalls() == 0 {
		t.Fatal("laggard rejoined without a snapshot install despite compaction")
	}
	if !c.Converged() {
		t.Fatal("replicas diverged after snapshot install")
	}
	if c.StateOf(2).Applied != 100 {
		t.Fatalf("restarted replica applied %d, want 100", c.StateOf(2).Applied)
	}
}

// TestBudgetSplitAndEvacBatch: the two composite ops replicate their
// payloads by value (callers may reuse scratch) and apply atomically.
func TestBudgetSplitAndEvacBatch(t *testing.T) {
	c := New(Config{Replicas: 3, LeaseSlots: 4})
	c.Tick(0)
	shares := []float64{100, 200, 300}
	if err := c.Propose(Op{Kind: OpBudgetSplit, Shares: shares}); err != nil {
		t.Fatal(err)
	}
	shares[0] = -1 // caller reuses its scratch; the log must own a copy
	batch := []uint32{4, 5, 6}
	if err := c.Propose(Op{Kind: OpEvacBatch, From: 0, Shard: 2, Batch: batch}); err != nil {
		t.Fatal(err)
	}
	batch[0] = 99
	for i := 0; i < 3; i++ {
		st := c.StateOf(i)
		if len(st.Shares) != 3 || st.Shares[0] != 100 {
			t.Fatalf("replica %d shares = %v, want [100 200 300]", i, st.Shares)
		}
		for _, u := range []uint32{4, 5, 6} {
			if sh, ok := st.Owner[u]; !ok || sh != 2 {
				t.Fatalf("replica %d: evac-batch session %d on shard %d,%v want 2", i, u, sh, ok)
			}
		}
	}
	if !c.Converged() {
		t.Fatal("replicas diverged after composite ops")
	}
}

// TestStatusDocument sanity-checks the /debug/coord snapshot fields.
func TestStatusDocument(t *testing.T) {
	c := New(Config{Replicas: 3, LeaseSlots: 4})
	c.Tick(0)
	if err := c.Propose(place(1, 1)); err != nil {
		t.Fatal(err)
	}
	c.Kill(2)
	st := c.Status()
	if st.Replicas != 3 || st.Term != 1 || st.Leader != 0 {
		t.Fatalf("status = %+v", st)
	}
	if st.Sessions != 1 || st.Commits != 1 {
		t.Fatalf("status sessions/commits = %d/%d, want 1/1", st.Sessions, st.Commits)
	}
	if len(st.Rows) != 3 || st.Rows[2].Alive {
		t.Fatalf("replica rows wrong: %+v", st.Rows)
	}
	if !st.Converged {
		t.Fatal("status reports divergence among alive replicas")
	}
}
