package coord

import (
	"encoding/json"
	"net/http"
)

// ReplicaStatus is one replica's row in the /debug/coord document.
type ReplicaStatus struct {
	ID          int    `json:"id"`
	Alive       bool   `json:"alive"`
	Partitioned bool   `json:"partitioned"`
	LastIndex   uint64 `json:"last_index"`
	Applied     uint64 `json:"applied"`
	SnapIndex   uint64 `json:"snap_index"`
	LogLen      int    `json:"log_len"`
}

// Status is the /debug/coord JSON document: the cluster's leadership and
// log frontier plus one row per replica.
type Status struct {
	Replicas         int             `json:"replicas"`
	Term             uint64          `json:"term"`
	Leader           int             `json:"leader"`
	Available        bool            `json:"available"`
	LeaseUntilSlot   int64           `json:"lease_until_slot"`
	Slot             int64           `json:"slot"`
	Sessions         int             `json:"sessions"`
	Elections        uint64          `json:"elections"`
	Commits          uint64          `json:"commits"`
	Rejected         uint64          `json:"rejected"`
	SnapshotInstalls uint64          `json:"snapshot_installs"`
	Converged        bool            `json:"converged"`
	Rows             []ReplicaStatus `json:"replica_status"`
}

// Status snapshots the cluster for /debug/coord. Callers must hold
// whatever lock guards the cluster (fleet.Live wraps this).
func (c *Cluster) Status() Status {
	st := Status{
		Replicas:         len(c.reps),
		Term:             c.term,
		Leader:           c.leader,
		Available:        c.Available(),
		LeaseUntilSlot:   c.leaseUntil,
		Slot:             c.slot,
		Sessions:         c.Sessions(),
		Elections:        c.elections,
		Commits:          c.commits,
		Rejected:         c.rejected,
		SnapshotInstalls: c.installs,
		Converged:        c.Converged(),
	}
	for i, r := range c.reps {
		st.Rows = append(st.Rows, ReplicaStatus{
			ID:          i,
			Alive:       r.alive,
			Partitioned: !c.reachable(i),
			LastIndex:   r.lastIndex(),
			Applied:     r.st.Applied,
			SnapIndex:   r.snapIndex,
			LogLen:      len(r.log),
		})
	}
	return st
}

// Handler serves a Status producer as indented JSON — the /debug/coord
// endpoint. The producer runs under the caller's lock discipline.
func Handler(status func() Status) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(status())
	})
}
