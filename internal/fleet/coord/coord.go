// Package coord replicates the fleet coordinator's owner map. PR 7's fleet
// made one server survivable by spreading sessions over shards, but the
// coordinator itself — the session→shard owner map, the budget split, the
// in-flight migration bookkeeping — stayed a single point of failure: lose
// the process and every binding is gone, with in-flight Welcome-resume
// migrations stranded between export and flip.
//
// The fix is the classical one, kept deliberately small and deterministic:
// the owner map becomes a replicated state machine run by 2f+1 coordinator
// replicas. Every ownership mutation is an Op (place, flip, forget,
// budget-split, evac-batch) appended to a replicated log under a
// lease-based leader on the fleet's slot clock. An op commits only when a
// majority of replicas hold it, so any electable replica's log is a prefix
// of any other's and a new leader resumes from committed state alone — no
// conflict resolution, no uncommitted-suffix truncation. Elections are
// bit-stable per seed: when the lease of a dead or partitioned leader
// expires, the alive, connected replicas elect the one with the longest log
// (ties to the lowest replica index), bump the term, and catch everyone up
// via snapshot + log suffix.
//
// The term doubles as the fencing epoch: fleet layers bake it into the
// splitmix64 handoff tokens (server.HandoffState.Epoch), so a deposed
// leader replaying a stale flip is rejected by the shard instead of
// creating split-brain double ownership.
//
// Single-replica mode (Replicas <= 1) is the zero-cost default: Propose
// applies straight to the state machine with no log retention and no
// allocation on the steady-state path, the term stays 0 (tokens are
// byte-identical to the pre-replication fleet), and nothing about the
// fleet's decisions changes.
package coord

import (
	"errors"
	"fmt"
)

// OpKind enumerates the replicated owner-map mutations.
type OpKind uint8

const (
	// OpPlace binds an arriving session to a shard.
	OpPlace OpKind = iota + 1
	// OpFlip moves a session's ownership From one shard to another — the
	// commit point of a live migration.
	OpFlip
	// OpForget drops a departed session's binding.
	OpForget
	// OpBudgetSplit records the rebalancer's per-shard budget shares.
	OpBudgetSplit
	// OpEvacBatch moves a whole SLO-pressure evacuation batch From one
	// shard to another in a single committed entry.
	OpEvacBatch
)

// String names the op kind for logs and the /debug/coord document.
func (k OpKind) String() string {
	switch k {
	case OpPlace:
		return "place"
	case OpFlip:
		return "flip"
	case OpForget:
		return "forget"
	case OpBudgetSplit:
		return "budget-split"
	case OpEvacBatch:
		return "evac-batch"
	}
	return "unknown"
}

// Op is one owner-map mutation. Exactly the fields its kind needs are set;
// the rest stay zero so a flip proposes with no allocation.
type Op struct {
	Kind    OpKind
	Session uint32
	// Shard is the target shard of place/flip/evac-batch.
	Shard int
	// From is the source shard of flip/evac-batch (rollback bookkeeping
	// and audit; Apply does not read it).
	From int
	// Shares carries the budget-split's per-shard shares.
	Shares []float64
	// Batch lists the sessions an evac-batch moves to Shard.
	Batch []uint32
}

// Entry is one committed log record.
type Entry struct {
	Index uint64
	Term  uint64
	Op    Op
}

// State is the replicated owner-map state machine: the materialized view
// every replica derives by applying the committed log in order. Two
// replicas with the same Applied index hold identical state by
// construction — that is the invariant FuzzCoordLog hammers.
type State struct {
	// Owner maps session → owning shard.
	Owner map[uint32]int
	// Shares is the last committed per-shard budget split (nil until the
	// first budget-split commits).
	Shares []float64
	// Applied is the index of the last entry folded in.
	Applied uint64
}

// NewState returns an empty state machine.
func NewState() *State { return &State{Owner: make(map[uint32]int)} }

// Apply folds one committed entry into the state. Deterministic and
// allocation-free for place/flip/forget on an existing map footprint.
func (s *State) Apply(e Entry) {
	switch e.Op.Kind {
	case OpPlace, OpFlip:
		s.Owner[e.Op.Session] = e.Op.Shard
	case OpForget:
		delete(s.Owner, e.Op.Session)
	case OpBudgetSplit:
		s.Shares = append(s.Shares[:0], e.Op.Shares...)
	case OpEvacBatch:
		for _, u := range e.Op.Batch {
			s.Owner[u] = e.Op.Shard
		}
	}
	s.Applied = e.Index
}

// Clone deep-copies the state — the payload of a snapshot install.
func (s *State) Clone() *State {
	out := &State{
		Owner:   make(map[uint32]int, len(s.Owner)),
		Applied: s.Applied,
	}
	for u, sh := range s.Owner {
		out.Owner[u] = sh
	}
	if s.Shares != nil {
		out.Shares = append([]float64(nil), s.Shares...)
	}
	return out
}

// Equal reports whether two states materialize the same view (owner map,
// shares, applied index) — the replica-convergence predicate.
func (s *State) Equal(o *State) bool {
	if s.Applied != o.Applied || len(s.Owner) != len(o.Owner) || len(s.Shares) != len(o.Shares) {
		return false
	}
	for u, sh := range s.Owner {
		if osh, ok := o.Owner[u]; !ok || osh != sh {
			return false
		}
	}
	for i := range s.Shares {
		if s.Shares[i] != o.Shares[i] {
			return false
		}
	}
	return true
}

// Proposal rejections. ErrNoQuorum wraps ErrUnavailable so callers can
// treat both as "stall and retry" with a single errors.Is check.
var (
	// ErrUnavailable means no functioning leader holds the lease.
	ErrUnavailable = errors.New("coord: no available leader")
	// ErrNoQuorum means the leader cannot reach a majority of replicas.
	ErrNoQuorum = fmt.Errorf("coord: quorum unreachable: %w", ErrUnavailable)
)

// Unavailable reports whether err is a proposal rejection the caller
// should treat as a transient coordinator outage (queue, retry, or roll
// back — never drop the session).
func Unavailable(err error) bool { return errors.Is(err, ErrUnavailable) }
