package fleet

import "testing"

func TestEvacuatorHysteresis(t *testing.T) {
	e := NewEvacuator(EvacConfig{
		Enabled: true, WindowSlots: 10, EnterPressure: 0.3, ExitPressure: 0.1,
		CooldownSlots: 50, BatchSessions: 2, MinSamples: 5,
	}, 2)

	// Below MinSamples: no action no matter the pressure.
	if e.Update(1, 0, 1.0, 3) {
		t.Fatal("fired below MinSamples")
	}
	// Under the enter threshold: latch stays off.
	if e.Update(1, 10, 0.29, 10) || e.Evacuating(1) {
		t.Fatal("latched below EnterPressure")
	}
	// Crossing enter: latch + first batch.
	if !e.Update(1, 20, 0.35, 10) || !e.Evacuating(1) {
		t.Fatal("did not fire at EnterPressure")
	}
	// Still hot but inside cooldown: latched, no batch.
	if e.Update(1, 40, 0.9, 10) {
		t.Fatal("fired inside cooldown")
	}
	// Pressure in the hysteresis band (exit < p < enter): still evacuating.
	if !e.Update(1, 70, 0.2, 10) {
		t.Fatal("band pressure after cooldown should fire (latch held)")
	}
	if !e.Evacuating(1) {
		t.Fatal("latch dropped inside the band")
	}
	// Below exit: latch clears, no batch.
	if e.Update(1, 130, 0.05, 10) || e.Evacuating(1) {
		t.Fatal("latch survived ExitPressure")
	}
	// Re-entering needs the full enter threshold again.
	if e.Update(1, 140, 0.2, 10) {
		t.Fatal("band pressure re-latched without crossing EnterPressure")
	}
	if got := e.Batches(); got != 2 {
		t.Fatalf("batches = %d, want 2", got)
	}
	// The untouched shard never latched.
	if e.Evacuating(0) {
		t.Fatal("shard 0 latched")
	}
}

func TestEvacuatorSessionCooldown(t *testing.T) {
	e := NewEvacuator(EvacConfig{Enabled: true, CooldownSlots: 100}, 1)
	if !e.AllowSession(7, 0) {
		t.Fatal("fresh session blocked")
	}
	e.NoteMigration(7, 10)
	if e.AllowSession(7, 50) {
		t.Fatal("session re-migratable inside cooldown")
	}
	if !e.AllowSession(7, 110) {
		t.Fatal("session still blocked after cooldown")
	}
	e.Forget(7)
	if !e.AllowSession(7, 0) {
		t.Fatal("forgotten session blocked")
	}
	if e.Moved() != 1 {
		t.Fatalf("moved = %d, want 1", e.Moved())
	}
}

func TestEvacuatorDisabled(t *testing.T) {
	if NewEvacuator(EvacConfig{}, 3) != nil {
		t.Fatal("disabled config built a controller")
	}
	var e *Evacuator
	if e.Update(0, 0, 1, 100) || e.Evacuating(0) || e.AllowSession(1, 0) || e.Batches() != 0 || e.Moved() != 0 {
		t.Fatal("nil evacuator not inert")
	}
	e.NoteMigration(1, 0)
	e.Forget(1)
}
