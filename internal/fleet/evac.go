package fleet

// EvacConfig tunes the SLO-pressure evacuation loop (ROADMAP item 1): the
// coordinator watches each shard's rolling page-fraction series and drains
// sessions off shards that stay hot, with hysteresis so a shard flapping
// around the threshold cannot start a migration storm.
type EvacConfig struct {
	// Enabled turns the loop on.
	Enabled bool
	// WindowSlots is how many recent page-frac samples form the pressure
	// signal (default 60). The decision input is the window MEAN, never the
	// instantaneous sample.
	WindowSlots int
	// EnterPressure starts an evacuation when the windowed mean page
	// fraction reaches it (default 0.30). ExitPressure ends the evacuation
	// when the mean falls back under it (default 0.10). Enter > Exit is the
	// hysteresis band.
	EnterPressure float64
	ExitPressure  float64
	// CooldownSlots is the minimum slot gap between evacuation batches from
	// one shard, and also the per-session re-migration guard (default 120).
	CooldownSlots int
	// BatchSessions bounds how many sessions one batch moves (default 2) —
	// draining gradually keeps the receiving shards from paging in turn.
	BatchSessions int
	// MinSamples gates the loop until the window has substance (default
	// WindowSlots/2): a just-started shard must not be judged on 3 samples.
	MinSamples int
}

func (c EvacConfig) withDefaults() EvacConfig {
	if c.WindowSlots <= 0 {
		c.WindowSlots = 60
	}
	if c.EnterPressure <= 0 {
		c.EnterPressure = 0.30
	}
	if c.ExitPressure <= 0 {
		c.ExitPressure = c.EnterPressure / 3
	}
	if c.ExitPressure > c.EnterPressure {
		c.ExitPressure = c.EnterPressure
	}
	if c.CooldownSlots <= 0 {
		c.CooldownSlots = 120
	}
	if c.BatchSessions <= 0 {
		c.BatchSessions = 2
	}
	if c.MinSamples <= 0 {
		c.MinSamples = c.WindowSlots / 2
		if c.MinSamples == 0 {
			c.MinSamples = 1
		}
	}
	return c
}

// evacShard is one shard's hysteresis state.
type evacShard struct {
	evacuating bool
	lastBatch  int64 // slot of the last batch; -1 = never
}

// Evacuator is the deterministic hysteresis controller shared by the sim
// and live fleet engines. It is NOT concurrency-safe: both engines drive it
// from their single coordinator loop. A nil *Evacuator is the disabled
// controller: every method is a no-op reporting "do nothing".
type Evacuator struct {
	cfg         EvacConfig
	shards      []evacShard
	lastSession map[uint32]int64
	batches     int
	moved       int
}

// NewEvacuator builds a controller for nShards shards. Returns nil when the
// config is disabled, so wiring can pass the config through unconditionally.
func NewEvacuator(cfg EvacConfig, nShards int) *Evacuator {
	if !cfg.Enabled {
		return nil
	}
	e := &Evacuator{cfg: cfg.withDefaults(), shards: make([]evacShard, nShards), lastSession: make(map[uint32]int64)}
	for i := range e.shards {
		e.shards[i].lastBatch = -1
	}
	return e
}

// Config returns the effective (default-filled) configuration.
func (e *Evacuator) Config() EvacConfig {
	if e == nil {
		return EvacConfig{}
	}
	return e.cfg
}

// Update advances one shard's hysteresis state with its current windowed
// pressure (mean page fraction over the last `samples` slots) and reports
// whether the shard should evacuate a batch this slot. The three gates, in
// order: the window must have >= MinSamples substance; the enter/exit
// thresholds flip the evacuating latch; and a latched shard only fires a
// batch every CooldownSlots.
func (e *Evacuator) Update(shard int, slot int64, pressure float64, samples int) bool {
	if e == nil || shard < 0 || shard >= len(e.shards) {
		return false
	}
	s := &e.shards[shard]
	if samples < e.cfg.MinSamples {
		return false
	}
	if !s.evacuating {
		if pressure >= e.cfg.EnterPressure {
			s.evacuating = true
		} else {
			return false
		}
	} else if pressure < e.cfg.ExitPressure {
		s.evacuating = false
		return false
	}
	if s.lastBatch >= 0 && slot-s.lastBatch < int64(e.cfg.CooldownSlots) {
		return false
	}
	s.lastBatch = slot
	e.batches++
	return true
}

// AllowSession reports whether a session may be migrated at slot — false
// while it is still inside the cooldown window of its previous
// evacuation, the per-session half of the no-oscillation guarantee.
func (e *Evacuator) AllowSession(user uint32, slot int64) bool {
	if e == nil {
		return false
	}
	last, ok := e.lastSession[user]
	return !ok || slot-last >= int64(e.cfg.CooldownSlots)
}

// NoteMigration records that a session was evacuated at slot.
func (e *Evacuator) NoteMigration(user uint32, slot int64) {
	if e == nil {
		return
	}
	e.lastSession[user] = slot
	e.moved++
}

// Forget drops a departed session's cooldown state.
func (e *Evacuator) Forget(user uint32) {
	if e == nil {
		return
	}
	delete(e.lastSession, user)
}

// Evacuating reports whether the shard's latch is currently set.
func (e *Evacuator) Evacuating(shard int) bool {
	return e != nil && shard >= 0 && shard < len(e.shards) && e.shards[shard].evacuating
}

// Batches returns how many evacuation batches have fired; Moved how many
// sessions they migrated.
func (e *Evacuator) Batches() int {
	if e == nil {
		return 0
	}
	return e.batches
}

func (e *Evacuator) Moved() int {
	if e == nil {
		return 0
	}
	return e.moved
}
