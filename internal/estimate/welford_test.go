package estimate

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func directMeanVar(xs []float64) (mean, variance float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		variance += (x - mean) * (x - mean)
	}
	variance /= float64(len(xs))
	return mean, variance
}

func TestWelfordMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	var w Welford
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 7
		w.Add(xs[i])
	}
	mean, variance := directMeanVar(xs)
	if math.Abs(w.Mean()-mean) > 1e-9 {
		t.Errorf("Mean = %v, want %v", w.Mean(), mean)
	}
	if math.Abs(w.Variance()-variance) > 1e-9 {
		t.Errorf("Variance = %v, want %v", w.Variance(), variance)
	}
}

func TestWelfordZeroValue(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.Count() != 0 {
		t.Errorf("zero value should report zeros, got mean=%v var=%v n=%v",
			w.Mean(), w.Variance(), w.Count())
	}
	w.Add(5)
	if w.Mean() != 5 || w.Variance() != 0 {
		t.Errorf("single sample: mean=%v var=%v, want 5, 0", w.Mean(), w.Variance())
	}
}

func TestWelfordSampleVariance(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	// Known dataset: population variance 4, sample variance 32/7.
	if math.Abs(w.Variance()-4) > 1e-12 {
		t.Errorf("Variance = %v, want 4", w.Variance())
	}
	if math.Abs(w.SampleVariance()-32.0/7.0) > 1e-12 {
		t.Errorf("SampleVariance = %v, want %v", w.SampleVariance(), 32.0/7.0)
	}
}

func TestWelfordMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var all, a, b Welford
	for i := 0; i < 500; i++ {
		x := rng.Float64() * 100
		all.Add(x)
		if i%3 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.Count() != all.Count() {
		t.Fatalf("merged count = %d, want %d", a.Count(), all.Count())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-9 {
		t.Errorf("merged mean = %v, want %v", a.Mean(), all.Mean())
	}
	if math.Abs(a.Variance()-all.Variance()) > 1e-9 {
		t.Errorf("merged variance = %v, want %v", a.Variance(), all.Variance())
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Add(1)
	a.Add(3)
	a.Merge(b) // empty other: no-op
	if a.Count() != 2 || a.Mean() != 2 {
		t.Errorf("merge with empty changed state: %+v", a)
	}
	b.Merge(a) // empty receiver adopts other
	if b.Count() != 2 || b.Mean() != 2 {
		t.Errorf("empty receiver merge wrong: %+v", b)
	}
}

// Property: variance is never negative, and matches the direct two-pass
// computation on arbitrary small inputs.
func TestWelfordProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		var w Welford
		for i, r := range raw {
			xs[i] = float64(r) / 7
			w.Add(xs[i])
		}
		mean, variance := directMeanVar(xs)
		return w.Variance() >= 0 &&
			math.Abs(w.Mean()-mean) < 1e-6 &&
			math.Abs(w.Variance()-variance) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEMA(t *testing.T) {
	e := NewEMA(0.5)
	if e.Primed() {
		t.Fatal("new EMA should not be primed")
	}
	e.Update(10)
	if e.Value() != 10 {
		t.Errorf("first sample should initialize: %v", e.Value())
	}
	e.Update(20)
	if e.Value() != 15 {
		t.Errorf("Value = %v, want 15", e.Value())
	}
	e.Update(15)
	if e.Value() != 15 {
		t.Errorf("Value = %v, want 15", e.Value())
	}
}

func TestEMAConvergence(t *testing.T) {
	e := NewEMA(0.2)
	for i := 0; i < 200; i++ {
		e.Update(42)
	}
	if math.Abs(e.Value()-42) > 1e-9 {
		t.Errorf("EMA should converge to constant input, got %v", e.Value())
	}
}

func TestEMAClampAlpha(t *testing.T) {
	e := NewEMA(-1)
	e.Update(1)
	e.Update(2)
	if e.Value() <= 1 || e.Value() >= 2 {
		t.Errorf("clamped alpha should interpolate, got %v", e.Value())
	}
	e2 := NewEMA(5) // clamped to 1: tracks last sample exactly
	e2.Update(1)
	e2.Update(9)
	if e2.Value() != 9 {
		t.Errorf("alpha=1 should track input, got %v", e2.Value())
	}
}
