package estimate

import (
	"errors"
	"math"
)

// ErrSingular is returned when a regression's normal equations are singular
// (e.g. fewer distinct samples than coefficients).
var ErrSingular = errors.New("estimate: singular system, not enough distinct samples")

// LinearFit holds the coefficients of y = Intercept + Slope*x.
type LinearFit struct {
	Intercept float64
	Slope     float64
}

// FitLinear computes the ordinary-least-squares line through the points
// (xs[i], ys[i]). It is the regression the paper uses per axis for 6-DoF
// motion prediction ("The linear regression model is used to predict the
// 6-DoF motion in the next time slot", Section IV).
func FitLinear(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, errors.New("estimate: mismatched sample lengths")
	}
	n := float64(len(xs))
	if len(xs) < 2 {
		return LinearFit{}, ErrSingular
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	det := n*sxx - sx*sx
	if math.Abs(det) < 1e-12 {
		return LinearFit{}, ErrSingular
	}
	slope := (n*sxy - sx*sy) / det
	intercept := (sy - slope*sx) / n
	return LinearFit{Intercept: intercept, Slope: slope}, nil
}

// Predict evaluates the fitted line at x.
func (f LinearFit) Predict(x float64) float64 { return f.Intercept + f.Slope*x }

// PolyFit holds polynomial coefficients; Coeffs[i] multiplies x^i.
type PolyFit struct {
	Coeffs []float64
}

// FitPoly computes the least-squares polynomial of the given degree through
// the points (xs[i], ys[i]) by solving the normal equations with Gaussian
// elimination. The paper uses polynomial regression to predict the
// (non-linear) delay-vs-rate relationship on the server (Section V).
func FitPoly(xs, ys []float64, degree int) (PolyFit, error) {
	if len(xs) != len(ys) {
		return PolyFit{}, errors.New("estimate: mismatched sample lengths")
	}
	if degree < 0 {
		return PolyFit{}, errors.New("estimate: negative degree")
	}
	m := degree + 1
	if len(xs) < m {
		return PolyFit{}, ErrSingular
	}

	// Normal equations A c = b with A[i][j] = sum x^(i+j), b[i] = sum y x^i.
	powSums := make([]float64, 2*m-1)
	b := make([]float64, m)
	for k := range xs {
		p := 1.0
		for i := 0; i < 2*m-1; i++ {
			powSums[i] += p
			if i < m {
				b[i] += ys[k] * p
			}
			p *= xs[k]
		}
	}
	a := make([][]float64, m)
	for i := 0; i < m; i++ {
		a[i] = make([]float64, m)
		for j := 0; j < m; j++ {
			a[i][j] = powSums[i+j]
		}
	}

	coeffs, err := solveGauss(a, b)
	if err != nil {
		return PolyFit{}, err
	}
	return PolyFit{Coeffs: coeffs}, nil
}

// PolyFitter computes FitPoly on reusable scratch: once its buffers have
// grown, a fit performs zero heap allocations — the regime of the server's
// per-slot delay-model refresh. The returned PolyFit.Coeffs alias
// fitter-owned memory and are only valid until the next Fit on the same
// fitter. The arithmetic is identical to FitPoly (same normal equations
// accumulated in the same order, same pivoting), so the coefficients are
// bit-identical. Not safe for concurrent use.
type PolyFitter struct {
	powSums []float64
	b       []float64
	rows    [][]float64
	flat    []float64
	coeffs  []float64
}

// Fit is FitPoly on the fitter's scratch.
func (f *PolyFitter) Fit(xs, ys []float64, degree int) (PolyFit, error) {
	if len(xs) != len(ys) {
		return PolyFit{}, errors.New("estimate: mismatched sample lengths")
	}
	if degree < 0 {
		return PolyFit{}, errors.New("estimate: negative degree")
	}
	m := degree + 1
	if len(xs) < m {
		return PolyFit{}, ErrSingular
	}

	f.powSums = growZeroed(f.powSums, 2*m-1)
	f.b = growZeroed(f.b, m)
	powSums, b := f.powSums, f.b
	for k := range xs {
		p := 1.0
		for i := 0; i < 2*m-1; i++ {
			powSums[i] += p
			if i < m {
				b[i] += ys[k] * p
			}
			p *= xs[k]
		}
	}
	if cap(f.flat) < m*m {
		f.flat = make([]float64, m*m)
	}
	if cap(f.rows) < m {
		f.rows = make([][]float64, m)
	}
	f.flat, f.rows = f.flat[:m*m], f.rows[:m]
	for i := 0; i < m; i++ {
		f.rows[i] = f.flat[i*m : (i+1)*m : (i+1)*m]
		for j := 0; j < m; j++ {
			f.rows[i][j] = powSums[i+j]
		}
	}
	if cap(f.coeffs) < m {
		f.coeffs = make([]float64, m)
	}
	f.coeffs = f.coeffs[:m]
	if err := solveGaussInto(f.rows, b, f.coeffs); err != nil {
		return PolyFit{}, err
	}
	return PolyFit{Coeffs: f.coeffs}, nil
}

func growZeroed(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// Predict evaluates the fitted polynomial at x using Horner's rule.
func (f PolyFit) Predict(x float64) float64 {
	var y float64
	for i := len(f.Coeffs) - 1; i >= 0; i-- {
		y = y*x + f.Coeffs[i]
	}
	return y
}

// solveGauss solves a dense linear system with partial pivoting. It mutates
// its arguments.
func solveGauss(a [][]float64, b []float64) ([]float64, error) {
	x := make([]float64, len(a))
	if err := solveGaussInto(a, b, x); err != nil {
		return nil, err
	}
	return x, nil
}

// solveGaussInto is solveGauss writing the solution into caller-provided x
// (len(x) == len(a)); it mutates a and b.
func solveGaussInto(a [][]float64, b, x []float64) error {
	n := len(a)
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return ErrSingular
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]

		for r := col + 1; r < n; r++ {
			factor := a[r][col] / a[col][col]
			for c := col; c < n; c++ {
				a[r][c] -= factor * a[col][c]
			}
			b[r] -= factor * b[col]
		}
	}
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for j := i + 1; j < n; j++ {
			sum -= a[i][j] * x[j]
		}
		x[i] = sum / a[i][i]
	}
	return nil
}

// SlidingWindow keeps the most recent capacity samples of a scalar series
// and predicts the next value by linear extrapolation over the window. It is
// the building block of the per-axis 6-DoF motion predictor.
type SlidingWindow struct {
	capacity int
	samples  []float64
}

// NewSlidingWindow returns a window holding up to capacity samples
// (minimum 2).
func NewSlidingWindow(capacity int) *SlidingWindow {
	if capacity < 2 {
		capacity = 2
	}
	return &SlidingWindow{capacity: capacity}
}

// Push appends a sample, evicting the oldest if the window is full.
func (s *SlidingWindow) Push(x float64) {
	if len(s.samples) == s.capacity {
		copy(s.samples, s.samples[1:])
		s.samples[len(s.samples)-1] = x
		return
	}
	s.samples = append(s.samples, x)
}

// Len returns the number of stored samples.
func (s *SlidingWindow) Len() int { return len(s.samples) }

// PredictNext extrapolates the series one step ahead using a linear fit over
// the window. With fewer than two samples it returns the last sample (or 0
// when empty).
func (s *SlidingWindow) PredictNext() float64 {
	n := len(s.samples)
	switch n {
	case 0:
		return 0
	case 1:
		return s.samples[0]
	}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i)
	}
	fit, err := FitLinear(xs, s.samples)
	if err != nil {
		return s.samples[n-1]
	}
	return fit.Predict(float64(n))
}
