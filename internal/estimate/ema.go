package estimate

// EMA is an exponential moving average, used by the server to estimate the
// available bandwidth of each user ("We estimate the available bandwidth for
// each user using Exponential Moving Average", Section V).
type EMA struct {
	alpha  float64
	value  float64
	primed bool
}

// NewEMA returns an EMA with smoothing factor alpha in (0, 1]. A larger
// alpha weighs recent samples more heavily. alpha outside (0, 1] is clamped.
func NewEMA(alpha float64) *EMA {
	if alpha <= 0 {
		alpha = 0.1
	}
	if alpha > 1 {
		alpha = 1
	}
	return &EMA{alpha: alpha}
}

// Update folds a new sample into the average and returns the updated value.
// The first sample initializes the average directly.
func (e *EMA) Update(x float64) float64 {
	if !e.primed {
		e.value = x
		e.primed = true
		return e.value
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
	return e.value
}

// Value returns the current average, or 0 before any sample.
func (e *EMA) Value() float64 { return e.value }

// Primed reports whether at least one sample has been observed.
func (e *EMA) Primed() bool { return e.primed }
