// Package estimate provides the streaming estimators used across the system:
// Welford running mean/variance (the variance-iteration formula behind the
// paper's per-slot decomposition, eq. (4)), exponential moving averages for
// throughput estimation, and linear/polynomial least-squares regression for
// motion and delay prediction.
package estimate

// Welford computes a running mean and population variance using Welford's
// method, the "variance iteration formula" the paper cites as [15].
//
// The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64 // sum of squared deviations
}

// Add incorporates a new observation.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Count returns the number of observations so far.
func (w *Welford) Count() int { return w.n }

// Mean returns the running mean, or 0 before any observation.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance (dividing by n), matching the
// paper's sigma_n^2(T) definition. It returns 0 before the second
// observation.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// SampleVariance returns the unbiased sample variance (dividing by n-1).
func (w *Welford) SampleVariance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Merge combines another Welford accumulator into w, as if all of other's
// observations had been Added to w.
func (w *Welford) Merge(other Welford) {
	if other.n == 0 {
		return
	}
	if w.n == 0 {
		*w = other
		return
	}
	n1, n2 := float64(w.n), float64(other.n)
	delta := other.mean - w.mean
	total := n1 + n2
	w.mean += delta * n2 / total
	w.m2 += other.m2 + delta*delta*n1*n2/total
	w.n += other.n
}
