package estimate

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestFitLinearExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x - 2
	}
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-3) > 1e-9 || math.Abs(fit.Intercept+2) > 1e-9 {
		t.Errorf("fit = %+v, want slope 3 intercept -2", fit)
	}
	if got := fit.Predict(10); math.Abs(got-28) > 1e-9 {
		t.Errorf("Predict(10) = %v, want 28", got)
	}
}

func TestFitLinearNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var xs, ys []float64
	for i := 0; i < 500; i++ {
		x := float64(i) / 10
		xs = append(xs, x)
		ys = append(ys, 0.5*x+1+rng.NormFloat64()*0.01)
	}
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-0.5) > 0.01 || math.Abs(fit.Intercept-1) > 0.05 {
		t.Errorf("noisy fit = %+v, want approx slope 0.5 intercept 1", fit)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{2}); !errors.Is(err, ErrSingular) {
		t.Errorf("single sample should be singular, got %v", err)
	}
	if _, err := FitLinear([]float64{1, 1, 1}, []float64{2, 3, 4}); !errors.Is(err, ErrSingular) {
		t.Errorf("constant x should be singular, got %v", err)
	}
	if _, err := FitLinear([]float64{1, 2}, []float64{2}); err == nil {
		t.Errorf("mismatched lengths should error")
	}
}

func TestFitPolyRecoversQuadratic(t *testing.T) {
	var xs, ys []float64
	for i := -5; i <= 5; i++ {
		x := float64(i)
		xs = append(xs, x)
		ys = append(ys, 2*x*x-3*x+1)
	}
	fit, err := FitPoly(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, -3, 2}
	for i, c := range want {
		if math.Abs(fit.Coeffs[i]-c) > 1e-6 {
			t.Errorf("coeff[%d] = %v, want %v", i, fit.Coeffs[i], c)
		}
	}
	if got := fit.Predict(2); math.Abs(got-3) > 1e-6 {
		t.Errorf("Predict(2) = %v, want 3", got)
	}
}

func TestFitPolyDegreeZero(t *testing.T) {
	fit, err := FitPoly([]float64{1, 2, 3}, []float64{4, 6, 8}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Coeffs[0]-6) > 1e-9 {
		t.Errorf("degree-0 fit should be the mean, got %v", fit.Coeffs[0])
	}
}

func TestFitPolyErrors(t *testing.T) {
	if _, err := FitPoly([]float64{1, 2}, []float64{1, 2}, 2); !errors.Is(err, ErrSingular) {
		t.Errorf("too few samples should be singular, got %v", err)
	}
	if _, err := FitPoly([]float64{1}, []float64{1, 2}, 1); err == nil {
		t.Errorf("mismatched lengths should error")
	}
	if _, err := FitPoly([]float64{1, 2}, []float64{1, 2}, -1); err == nil {
		t.Errorf("negative degree should error")
	}
}

// The delay-vs-rate curve of eq. (13) is convex; a quadratic fit over the
// operating region should predict it with small relative error — this is
// exactly what the server-side delay predictor does.
func TestFitPolyApproximatesMM1Delay(t *testing.T) {
	budget := 50.0
	var xs, ys []float64
	for r := 5.0; r <= 40; r += 1 {
		xs = append(xs, r)
		ys = append(ys, r/(budget-r))
	}
	fit, err := FitPoly(xs, ys, 3)
	if err != nil {
		t.Fatal(err)
	}
	for r := 6.0; r <= 39; r += 3 {
		want := r / (budget - r)
		got := fit.Predict(r)
		if math.Abs(got-want) > 0.05+0.25*want {
			t.Errorf("Predict(%v) = %v, want approx %v", r, got, want)
		}
	}
}

func TestSlidingWindowPredict(t *testing.T) {
	w := NewSlidingWindow(5)
	if got := w.PredictNext(); got != 0 {
		t.Errorf("empty window predicts %v, want 0", got)
	}
	w.Push(7)
	if got := w.PredictNext(); got != 7 {
		t.Errorf("single-sample window predicts %v, want 7", got)
	}
	// Linear series: prediction continues the line.
	for _, x := range []float64{1, 2, 3, 4, 5} {
		w.Push(x)
	}
	if got := w.PredictNext(); math.Abs(got-6) > 1e-9 {
		t.Errorf("PredictNext = %v, want 6", got)
	}
	// Window evicts: after pushing 6, window holds 2..6 and predicts 7.
	w.Push(6)
	if w.Len() != 5 {
		t.Fatalf("window length = %d, want 5", w.Len())
	}
	if got := w.PredictNext(); math.Abs(got-7) > 1e-9 {
		t.Errorf("PredictNext after eviction = %v, want 7", got)
	}
}

func TestSlidingWindowConstantSeries(t *testing.T) {
	w := NewSlidingWindow(4)
	for i := 0; i < 10; i++ {
		w.Push(3.5)
	}
	if got := w.PredictNext(); math.Abs(got-3.5) > 1e-9 {
		t.Errorf("constant series predicts %v, want 3.5", got)
	}
}

func TestSlidingWindowMinCapacity(t *testing.T) {
	w := NewSlidingWindow(0)
	w.Push(1)
	w.Push(2)
	w.Push(3)
	if w.Len() != 2 {
		t.Errorf("capacity should clamp to 2, len = %d", w.Len())
	}
}
