package baseline

import "repro/internal/core"

// Uniform allocates the same quality level to every user: the highest level
// whose aggregate rate fits the server budget and every user's cap. It is
// the natural "equal treatment" strawman for collaborative applications —
// fair by construction, but oblivious to per-user link quality, delay and
// variance, so it wastes budget on users whose links cannot exploit it and
// starves users who could.
type Uniform struct{}

// NewUniform returns a Uniform allocator.
func NewUniform() *Uniform { return &Uniform{} }

// Name implements core.Allocator.
func (*Uniform) Name() string { return "uniform" }

// Allocate implements core.Allocator.
func (*Uniform) Allocate(params core.Params, p *core.SlotProblem) core.Allocation {
	best := 1
	for level := params.Levels; level >= 1; level-- {
		var total float64
		ok := true
		for _, u := range p.Users {
			rate := u.Rate[level-1]
			total += rate
			if level > 1 && rate > u.Cap {
				ok = false
				break
			}
		}
		if ok && (total <= p.Budget || level == 1) {
			best = level
			break
		}
	}

	levels := make([]int, len(p.Users))
	var value, total float64
	for i, u := range p.Users {
		levels[i] = best
		value += core.Objective(params, p.T, u, best)
		total += u.Rate[best-1]
	}
	return core.Allocation{Levels: levels, Value: value, Rate: total}
}

var _ core.Allocator = (*Uniform)(nil)
