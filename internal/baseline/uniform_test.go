package baseline

import (
	"testing"

	"repro/internal/core"
)

func TestUniformPicksHighestFeasibleCommonLevel(t *testing.T) {
	params := core.DefaultSimParams()
	u := NewUniform()
	users := []core.UserInput{
		mm1User(1, 0, 100, 1),
		mm1User(1, 0, 100, 1),
	}
	// Ladder {2,4,7,12,20,33}: two users at level 4 cost 24 <= 30; level 5
	// costs 40 > 30.
	a := u.Allocate(params, slotProblem(1, 30, users...))
	for i, l := range a.Levels {
		if l != 4 {
			t.Errorf("user %d level = %d, want 4", i, l)
		}
	}
}

func TestUniformLimitedByWeakestLink(t *testing.T) {
	params := core.DefaultSimParams()
	u := NewUniform()
	users := []core.UserInput{
		mm1User(1, 0, 100, 1),
		mm1User(1, 0, 5, 1), // weak link: only level 2 (rate 4) fits its cap
	}
	a := u.Allocate(params, slotProblem(1, 1000, users...))
	for i, l := range a.Levels {
		if l != 2 {
			t.Errorf("user %d level = %d, want 2 (weakest-link bound)", i, l)
		}
	}
}

func TestUniformFallsBackToBase(t *testing.T) {
	params := core.DefaultSimParams()
	u := NewUniform()
	a := u.Allocate(params, slotProblem(1, 0.5, mm1User(1, 0, 100, 1)))
	if a.Levels[0] != 1 {
		t.Errorf("level = %d, want 1 under tiny budget", a.Levels[0])
	}
}

func TestUniformLosesToProposed(t *testing.T) {
	// Heterogeneous links: equal treatment wastes the strong user's link.
	params := core.DefaultSimParams()
	users := []core.UserInput{
		mm1User(0.95, 3, 100, 1),
		mm1User(0.95, 3, 10, 1),
	}
	p := slotProblem(50, 60, users...)
	uni := NewUniform().Allocate(params, p)
	dv := core.DVGreedy{}.Allocate(params, p)
	if dv.Value <= uni.Value {
		t.Errorf("proposed %v should beat uniform %v on heterogeneous links",
			dv.Value, uni.Value)
	}
}

func TestUniformName(t *testing.T) {
	if NewUniform().Name() != "uniform" {
		t.Error("name wrong")
	}
}
