package baseline

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

var ladder = []float64{2, 4, 7, 12, 20, 33}

func mm1User(delta, meanQ, cap_ float64, scale float64) core.UserInput {
	rates := make([]float64, len(ladder))
	delays := make([]float64, len(ladder))
	for i, r := range ladder {
		rates[i] = r * scale
		if rates[i] >= cap_ {
			delays[i] = 1e6
		} else {
			delays[i] = rates[i] / (cap_ - rates[i])
		}
	}
	return core.UserInput{Rate: rates, Delay: delays, Delta: delta, MeanQ: meanQ, Cap: cap_}
}

func slotProblem(t int, budget float64, users ...core.UserInput) *core.SlotProblem {
	return &core.SlotProblem{T: t, Budget: budget, Users: users}
}

func TestFireflyGrabsHighestSustainableLevel(t *testing.T) {
	params := core.DefaultSimParams()
	f := NewFirefly()
	// One user, generous budget: Firefly saturates the link estimate;
	// ladder rate 33 fits under cap 40, so level 6.
	p := slotProblem(1, 1000, mm1User(1, 0, 40, 1))
	a := f.Allocate(params, p)
	if a.Levels[0] != 6 {
		t.Errorf("level = %d, want 6", a.Levels[0])
	}
	// With a tighter link (cap 18) level 5 (rate 20) no longer fits.
	p = slotProblem(1, 1000, mm1User(1, 0, 18, 1))
	a = f.Allocate(params, p)
	if a.Levels[0] != 4 {
		t.Errorf("tight-link level = %d, want 4", a.Levels[0])
	}
	// An explicit headroom makes it conservative again.
	f2 := NewFirefly()
	f2.Headroom = 0.6 // 0.6*30 = 18: level 4 (rate 12) fits, level 5 (20) not
	a = f2.Allocate(params, slotProblem(1, 1000, mm1User(1, 0, 30, 1)))
	if a.Levels[0] != 4 {
		t.Errorf("headroom level = %d, want 4", a.Levels[0])
	}
}

func TestFireflyRespectsBudgetByLRUDowngrades(t *testing.T) {
	params := core.DefaultSimParams()
	f := NewFirefly()
	users := []core.UserInput{
		mm1User(1, 0, 100, 1),
		mm1User(1, 0, 100, 1),
		mm1User(1, 0, 100, 1),
	}
	// Each would want level 6 (rate 33); budget forces total <= 40.
	p := slotProblem(1, 40, users...)
	a := f.Allocate(params, p)
	if a.Rate > 40+1e-9 {
		t.Fatalf("rate %v exceeds budget", a.Rate)
	}
	// Downgrades should be spread by the LRU rotation, not all on one user.
	minL, maxL := a.Levels[0], a.Levels[0]
	for _, l := range a.Levels {
		if l < minL {
			minL = l
		}
		if l > maxL {
			maxL = l
		}
	}
	if maxL-minL > 1 {
		t.Errorf("LRU should spread downgrades evenly, got levels %v", a.Levels)
	}
}

func TestFireflyBudgetInfeasibleStopsAtBase(t *testing.T) {
	params := core.DefaultSimParams()
	f := NewFirefly()
	p := slotProblem(1, 0.1, mm1User(1, 0, 100, 1), mm1User(1, 0, 100, 1))
	a := f.Allocate(params, p)
	for i, l := range a.Levels {
		if l != 1 {
			t.Errorf("user %d level = %d, want 1", i, l)
		}
	}
}

func TestFireflyIgnoresVariance(t *testing.T) {
	// A user with a low running mean: Algorithm 1 would hold quality near
	// the mean, Firefly jumps to the top regardless.
	params := core.Params{Alpha: 0.02, Beta: 0.5, Levels: 6}
	f := NewFirefly()
	u := mm1User(1, 1, 40, 1) // mean viewed quality 1
	p := slotProblem(100, 1000, u)
	firefly := f.Allocate(params, p)
	dv := core.DVGreedy{}.Allocate(params, p)
	if firefly.Levels[0] <= dv.Levels[0] {
		t.Errorf("firefly level %d should exceed variance-aware level %d",
			firefly.Levels[0], dv.Levels[0])
	}
}

func TestPAVQPriceConvergesUnderStationaryLoad(t *testing.T) {
	params := core.DefaultSimParams()
	a := NewPAVQ()
	users := []core.UserInput{
		mm1User(1, 4, 60, 1),
		mm1User(1, 4, 60, 1),
		mm1User(1, 4, 60, 1),
	}
	// Budget that binds: each wants a high level; run many slots.
	var lastRate float64
	for slot := 1; slot <= 400; slot++ {
		p := slotProblem(slot, 30, users...)
		got := a.Allocate(params, p)
		lastRate = got.Rate
		if got.Rate > p.Budget+1e-9 {
			t.Fatalf("slot %d: rate %v exceeds budget", slot, got.Rate)
		}
	}
	if a.Lambda() <= 0 {
		t.Errorf("binding budget should yield positive price, got %v", a.Lambda())
	}
	if lastRate <= 0 {
		t.Errorf("PAVQ should allocate nonzero rate")
	}
}

func TestPAVQNearOptimalWhenStationary(t *testing.T) {
	params := core.DefaultSimParams()
	a := NewPAVQ()
	users := []core.UserInput{
		mm1User(0.95, 3.5, 80, 1),
		mm1User(0.9, 3.0, 60, 1.2),
		mm1User(0.85, 4.0, 70, 0.8),
	}
	budget := 40.0
	// Warm the price up, then compare the converged allocation value with
	// the per-slot optimum. PAVQ should be within 80% (Fig. 2 shows it close
	// to optimal QoE under stationary conditions).
	var got core.Allocation
	var p *core.SlotProblem
	for slot := 1; slot <= 300; slot++ {
		p = slotProblem(slot, budget, users...)
		got = a.Allocate(params, p)
	}
	opt := core.Optimal{}.Allocate(params, p)
	if opt.Value > 0 && got.Value < 0.8*opt.Value {
		t.Errorf("converged PAVQ value %v too far below optimal %v", got.Value, opt.Value)
	}
}

func TestPAVQRespectsUserCaps(t *testing.T) {
	params := core.DefaultSimParams()
	a := NewPAVQ()
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		users := []core.UserInput{
			mm1User(rng.Float64(), rng.Float64()*6, 10+rng.Float64()*50, 0.5+rng.Float64()),
			mm1User(rng.Float64(), rng.Float64()*6, 10+rng.Float64()*50, 0.5+rng.Float64()),
		}
		p := slotProblem(1+trial, 20+rng.Float64()*40, users...)
		got := a.Allocate(params, p)
		for i, l := range got.Levels {
			if l > 1 && users[i].Rate[l-1] > users[i].Cap+1e-9 {
				t.Fatalf("trial %d: user %d violates cap", trial, i)
			}
		}
		if got.Rate > p.Budget+1e-9 {
			t.Fatalf("trial %d: rate %v exceeds budget %v", trial, got.Rate, p.Budget)
		}
	}
}

func TestPAVQLagsBehindCapacityDrop(t *testing.T) {
	// The price adapts slowly: right after a sharp capacity drop PAVQ's
	// pre-trim demand overshoots and trimming is forced. This is the
	// mechanism behind its degradation in the paper's dynamic experiments.
	params := core.DefaultSimParams()
	a := NewPAVQ()
	users := []core.UserInput{mm1User(1, 4, 100, 1), mm1User(1, 4, 100, 1)}
	for slot := 1; slot <= 200; slot++ {
		a.Allocate(params, slotProblem(slot, 80, users...))
	}
	priceBefore := a.Lambda()
	// Capacity halves; the lagged price cannot reflect it immediately.
	a.Allocate(params, slotProblem(201, 20, users...))
	if a.Lambda() <= priceBefore {
		t.Errorf("price should rise after violation: before %v after %v",
			priceBefore, a.Lambda())
	}
}

func TestBaselineNames(t *testing.T) {
	if NewFirefly().Name() != "firefly" {
		t.Errorf("firefly name wrong")
	}
	if NewPAVQ().Name() != "pavq" {
		t.Errorf("pavq name wrong")
	}
}
