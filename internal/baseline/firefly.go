// Package baseline implements the two state-of-the-art comparison
// algorithms of the paper's evaluation (Section IV):
//
//   - the Adaptive Quality Control algorithm of Firefly (Liu et al., USENIX
//     ATC 2020), which allocates rate to multiple users with a
//     Least-Recently-Used policy, and
//   - the Practical Adaptive Variance-aware Quality allocation algorithm
//     (PAVQ) of Joseph and de Veciana (INFOCOM 2012), modified as the paper
//     describes to account for delivery delay.
//
// Both implement core.Allocator so they can be swapped into the simulator
// and the real system interchangeably with Algorithm 1.
package baseline

import (
	"repro/internal/core"
)

// Firefly reproduces Firefly's adaptive quality control. Each user requests
// the highest quality level sustainable under its own link estimate; when
// the aggregate rate exceeds the server budget, quality is reclaimed from
// the least-recently-upgraded users first (the LRU policy the paper cites).
// It is bandwidth-greedy: it considers neither the delay nor the variance
// term of the QoE, which is what the paper's evaluation exposes.
type Firefly struct {
	// Headroom scales the per-user link estimate when picking the target
	// level; 1.0 (the default) saturates the estimated bandwidth, which is
	// what gives Firefly its characteristic high delivery delay in the
	// paper's Figs. 2c/3c.
	Headroom float64

	// lastTouched[n] is the virtual timestamp at which user n last had its
	// quality raised; the LRU victim is the user with the smallest value.
	lastTouched []int64
	clock       int64
}

// NewFirefly returns a Firefly allocator for any number of users; per-user
// LRU state is created lazily.
func NewFirefly() *Firefly { return &Firefly{Headroom: 1.0} }

// Name implements core.Allocator.
func (f *Firefly) Name() string { return "firefly" }

// Allocate implements core.Allocator.
func (f *Firefly) Allocate(params core.Params, p *core.SlotProblem) core.Allocation {
	n := len(p.Users)
	f.ensure(n)

	// Phase 1: every user requests the highest level its own link supports.
	headroom := f.Headroom
	if headroom <= 0 {
		headroom = 1.0
	}
	levels := make([]int, n)
	var total float64
	for i, u := range p.Users {
		levels[i] = 1
		for q := params.Levels; q >= 1; q-- {
			if u.Rate[q-1] <= u.Cap*headroom {
				levels[i] = q
				break
			}
		}
		total += u.Rate[levels[i]-1]
		if levels[i] > 1 {
			f.clock++
			f.lastTouched[i] = f.clock
		}
	}

	// Phase 2: while the shared budget is exceeded, downgrade the
	// least-recently-used user one level and move it to the MRU position so
	// the next downgrade hits someone else.
	for total > p.Budget {
		victim := -1
		var oldest int64
		for i := range levels {
			if levels[i] <= 1 {
				continue
			}
			if victim == -1 || f.lastTouched[i] < oldest {
				victim = i
				oldest = f.lastTouched[i]
			}
		}
		if victim == -1 {
			break // everyone at base level; budget cannot be met
		}
		total -= p.Users[victim].Rate[levels[victim]-1]
		levels[victim]--
		total += p.Users[victim].Rate[levels[victim]-1]
		f.clock++
		f.lastTouched[victim] = f.clock
	}

	var value float64
	for i, u := range p.Users {
		value += core.Objective(params, p.T, u, levels[i])
	}
	return core.Allocation{Levels: levels, Value: value, Rate: total}
}

func (f *Firefly) ensure(n int) {
	for len(f.lastTouched) < n {
		f.lastTouched = append(f.lastTouched, 0)
	}
}

var _ core.Allocator = (*Firefly)(nil)
