package baseline

import (
	"repro/internal/core"
)

// PAVQ reproduces the Practical Adaptive Variance-aware Quality allocation
// algorithm of Joseph and de Veciana (INFOCOM 2012), modified per the
// paper's Section IV to include the delivery-delay term in its per-user
// index mu_i^P.
//
// PAVQ is price-based: each user independently maximizes its (delay-aware,
// variance-aware) utility minus a congestion price lambda times its rate,
// and the price adapts across slots by a dual subgradient step toward the
// shared budget. In stationary conditions the price converges and PAVQ
// tracks the optimum closely (as in Fig. 2); under rapidly varying capacity
// the lagging price over- or under-shoots, which is the degradation the
// paper's real-system experiments expose (Figs. 7 and 8).
type PAVQ struct {
	// StepSize is the dual subgradient step kappa (per unit of relative
	// budget violation). The default used by NewPAVQ is 0.05.
	StepSize float64
	lambda   float64
}

// NewPAVQ returns a PAVQ allocator with the default price step.
func NewPAVQ() *PAVQ { return &PAVQ{StepSize: 0.05} }

// Name implements core.Allocator.
func (a *PAVQ) Name() string { return "pavq" }

// Lambda exposes the current congestion price (for tests and diagnostics).
func (a *PAVQ) Lambda() float64 { return a.lambda }

// Allocate implements core.Allocator.
func (a *PAVQ) Allocate(params core.Params, p *core.SlotProblem) core.Allocation {
	n := len(p.Users)
	levels := make([]int, n)
	var total float64

	// Per-user price-directed choice: argmax_q mu(q) - lambda * rate(q)
	// subject to the user's own cap.
	for i, u := range p.Users {
		best := 1
		bestScore := core.Objective(params, p.T, u, 1) - a.lambda*u.Rate[0]
		for q := 2; q <= params.Levels; q++ {
			if u.Rate[q-1] > u.Cap {
				break
			}
			score := core.Objective(params, p.T, u, q) - a.lambda*u.Rate[q-1]
			if score > bestScore {
				bestScore = score
				best = q
			}
		}
		levels[i] = best
		total += u.Rate[best-1]
	}

	// Dual price update toward the budget (projected to stay nonnegative).
	if p.Budget > 0 {
		a.lambda += a.StepSize * (total - p.Budget) / p.Budget
		if a.lambda < 0 {
			a.lambda = 0
		}
	}

	// Hard feasibility: the server cannot send more than B(t) in the slot.
	// Trim the user whose downgrade costs the least utility per unit of
	// rate reclaimed until the budget is met.
	for total > p.Budget {
		victim := -1
		bestLoss := 0.0
		for i, u := range p.Users {
			if levels[i] <= 1 {
				continue
			}
			q := levels[i]
			dRate := u.Rate[q-1] - u.Rate[q-2]
			if dRate <= 0 {
				dRate = 1e-12
			}
			loss := (core.Objective(params, p.T, u, q) - core.Objective(params, p.T, u, q-1)) / dRate
			if victim == -1 || loss < bestLoss {
				victim = i
				bestLoss = loss
			}
		}
		if victim == -1 {
			break
		}
		u := p.Users[victim]
		total -= u.Rate[levels[victim]-1] - u.Rate[levels[victim]-2]
		levels[victim]--
	}

	var value float64
	for i, u := range p.Users {
		value += core.Objective(params, p.T, u, levels[i])
	}
	return core.Allocation{Levels: levels, Value: value, Rate: total}
}

var _ core.Allocator = (*PAVQ)(nil)
