package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// smallConfig keeps tests fast: 3 users, 5 seconds, 3 runs.
func smallConfig() Config {
	cfg := DefaultConfig(3)
	cfg.Seconds = 5
	cfg.Runs = 3
	return cfg
}

func TestRunProducesSamplesPerAlgorithm(t *testing.T) {
	cfg := smallConfig()
	algs := StandardAlgorithms(true)
	results, err := Run(cfg, algs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(algs) {
		t.Fatalf("results = %d, want %d", len(results), len(algs))
	}
	wantSamples := cfg.Runs * cfg.Users
	for _, r := range results {
		if len(r.QoE) != wantSamples {
			t.Errorf("%s: %d QoE samples, want %d", r.Name, len(r.QoE), wantSamples)
		}
		if len(r.Quality) != wantSamples || len(r.Delay) != wantSamples || len(r.Variance) != wantSamples {
			t.Errorf("%s: component sample counts inconsistent", r.Name)
		}
		for i, q := range r.Quality {
			if q < 0 || q > 6 {
				t.Errorf("%s: quality sample %d = %v outside [0, 6]", r.Name, i, q)
			}
		}
		for i, d := range r.Delay {
			if d < 0 {
				t.Errorf("%s: negative delay sample %d", r.Name, i)
			}
		}
		for i, v := range r.Variance {
			if v < 0 {
				t.Errorf("%s: negative variance sample %d", r.Name, i)
			}
		}
	}
}

func TestRunDeterministicForSameSeed(t *testing.T) {
	cfg := smallConfig()
	cfg.Runs = 2
	algs := []AlgorithmFactory{{Name: "proposed", New: func() core.Allocator { return core.DVGreedy{} }}}
	a, err := Run(cfg, algs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, algs)
	if err != nil {
		t.Fatal(err)
	}
	ca := metrics.NewCDF(a[0].QoE)
	cb := metrics.NewCDF(b[0].QoE)
	for _, p := range []float64{0, 0.5, 1} {
		if ca.Quantile(p) != cb.Quantile(p) {
			t.Fatalf("nondeterministic at p=%v: %v vs %v", p, ca.Quantile(p), cb.Quantile(p))
		}
	}
}

// TestProposedTracksOptimal is the core Fig. 2 claim: Algorithm 1's mean QoE
// is within a few percent of the per-slot optimum.
func TestProposedTracksOptimal(t *testing.T) {
	cfg := smallConfig()
	cfg.Users = 4
	cfg.Runs = 4
	cfg.Seconds = 10
	results, err := Run(cfg, StandardAlgorithms(true))
	if err != nil {
		t.Fatal(err)
	}
	byName := indexResults(results)
	proposed := metrics.NewCDF(byName["proposed"].QoE).Mean()
	optimal := metrics.NewCDF(byName["optimal"].QoE).Mean()
	if optimal <= 0 {
		t.Skipf("optimal mean QoE %v <= 0; scenario degenerate", optimal)
	}
	if proposed < 0.9*optimal {
		t.Errorf("proposed %v below 90%% of optimal %v", proposed, optimal)
	}
	if proposed > optimal+1e-9 {
		t.Logf("note: proposed %v above per-slot optimal %v (possible: optimal is per-slot, QoE is horizon-coupled)", proposed, optimal)
	}
}

// TestProposedBeatsBaselines is the Fig. 2a/3a ordering: proposed >= PAVQ
// and proposed > Firefly in mean QoE.
func TestProposedBeatsBaselines(t *testing.T) {
	cfg := DefaultConfig(5)
	cfg.Seconds = 12
	cfg.Runs = 6
	cfg.IncludeOptimal = false
	results, err := Run(cfg, StandardAlgorithms(false))
	if err != nil {
		t.Fatal(err)
	}
	byName := indexResults(results)
	proposed := metrics.NewCDF(byName["proposed"].QoE).Mean()
	firefly := metrics.NewCDF(byName["firefly"].QoE).Mean()
	pavq := metrics.NewCDF(byName["pavq"].QoE).Mean()
	if proposed <= firefly {
		t.Errorf("proposed %v should beat firefly %v", proposed, firefly)
	}
	if proposed < pavq-0.05 {
		t.Errorf("proposed %v should be at least competitive with pavq %v", proposed, pavq)
	}
}

// TestProposedReducesVarianceAndDelay mirrors Figs. 2c/2d: against Firefly,
// the proposed algorithm trades some raw quality for lower delay and lower
// quality variance.
func TestProposedReducesVarianceAndDelay(t *testing.T) {
	cfg := DefaultConfig(5)
	cfg.Seconds = 12
	cfg.Runs = 6
	cfg.IncludeOptimal = false
	results, err := Run(cfg, StandardAlgorithms(false))
	if err != nil {
		t.Fatal(err)
	}
	byName := indexResults(results)
	pVar := metrics.NewCDF(byName["proposed"].Variance).Mean()
	fVar := metrics.NewCDF(byName["firefly"].Variance).Mean()
	if pVar > fVar {
		t.Errorf("proposed variance %v should not exceed firefly %v", pVar, fVar)
	}
	pDelay := metrics.NewCDF(byName["proposed"].Delay).Mean()
	fDelay := metrics.NewCDF(byName["firefly"].Delay).Mean()
	if pDelay > fDelay {
		t.Errorf("proposed delay %v should not exceed firefly %v", pDelay, fDelay)
	}
}

func TestRunValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.Users = 0
	if _, err := Run(cfg, StandardAlgorithms(false)); err == nil {
		t.Error("zero users should error")
	}
	cfg = smallConfig()
	cfg.Seconds = 0
	if _, err := Run(cfg, StandardAlgorithms(false)); err == nil {
		t.Error("zero seconds should error")
	}
	cfg = smallConfig()
	if _, err := Run(cfg, nil); err == nil {
		t.Error("no algorithms should error")
	}
}

func TestResultCDFs(t *testing.T) {
	cfg := smallConfig()
	results, err := Run(cfg, StandardAlgorithms(false)[:1])
	if err != nil {
		t.Fatal(err)
	}
	qoe, quality, delay, variance := results[0].CDFs()
	for _, c := range []*metrics.CDF{qoe, quality, delay, variance} {
		if c.Len() != cfg.Runs*cfg.Users {
			t.Errorf("CDF has %d samples, want %d", c.Len(), cfg.Runs*cfg.Users)
		}
	}
}

func indexResults(results []*Result) map[string]*Result {
	m := make(map[string]*Result, len(results))
	for _, r := range results {
		m[r.Name] = r
	}
	return m
}

func TestRecorderCapturesEverySlotWithRegret(t *testing.T) {
	cfg := smallConfig()
	cfg.Users = 5
	cfg.Seconds = 2
	cfg.Runs = 2
	cfg.IncludeOptimal = true
	rec := obs.NewRecorder(obs.RecorderOptions{RingSize: 16})
	cfg.Recorder = rec

	algs := StandardAlgorithms(true)
	if _, err := Run(cfg, algs); err != nil {
		t.Fatal(err)
	}

	slots := int(cfg.Seconds * cfg.SlotsPerSecond)
	want := uint64(slots * cfg.Runs * len(algs))
	if got := rec.Records(); got != want {
		t.Fatalf("records = %d, want %d (one per slot per algorithm per run)", got, want)
	}

	s := rec.Summary()
	if len(s.Algorithms) != len(algs) {
		t.Fatalf("summary algorithms = %d, want %d", len(s.Algorithms), len(algs))
	}
	byName := map[string]obs.AlgorithmSummary{}
	for _, a := range s.Algorithms {
		byName[a.Name] = a
	}
	for _, a := range s.Algorithms {
		if a.Slots != slots*cfg.Runs {
			t.Errorf("%s slots = %d, want %d", a.Name, a.Slots, slots*cfg.Runs)
		}
		// Every slot ran alongside the optimum, so regret is defined and
		// nonnegative everywhere.
		if a.RegretSlots != a.Slots {
			t.Errorf("%s regret slots = %d, want %d", a.Name, a.RegretSlots, a.Slots)
		}
		if a.MeanRegret < 0 || a.MaxRegret < a.MeanRegret {
			t.Errorf("%s regret stats inconsistent: %+v", a.Name, a)
		}
	}
	opt, prop := byName["optimal"], byName["proposed"]
	if opt.MeanRegret > 1e-9 || opt.MaxRegret > 1e-9 {
		t.Errorf("optimal has nonzero regret: %+v", opt)
	}
	// Theorem 1: Algorithm 1 achieves at least half the optimum, so its
	// mean regret cannot exceed half the optimum's mean value.
	if opt.MeanValue > 0 && prop.MeanRegret > 0.5*opt.MeanValue {
		t.Errorf("proposed mean regret %v breaks the 1/2-approximation bound (optimal mean value %v)",
			prop.MeanRegret, opt.MeanValue)
	}
	if prop.Upgrades == 0 {
		t.Error("proposed recorded no accepted upgrades")
	}
	if prop.RejectsUserCap+prop.RejectsBudget == 0 {
		t.Error("proposed recorded no quality_verification rejections")
	}

	// Spot-check record structure off the ring.
	for _, r := range rec.Recent(16) {
		if len(r.Levels) != cfg.Users {
			t.Fatalf("record levels = %v, want %d entries", r.Levels, cfg.Users)
		}
		if r.Utilization < 0 || r.Utilization > 1+1e-9 {
			t.Errorf("utilization = %v outside [0,1]", r.Utilization)
		}
		if !r.HasRegret || r.Regret < 0 {
			t.Errorf("record regret = %+v", r)
		}
		if r.Algorithm == "proposed" && r.Branch != "density" && r.Branch != "value" {
			t.Errorf("proposed record branch = %q", r.Branch)
		}
	}
}

func TestRecorderDisabledMatchesEnabledResults(t *testing.T) {
	cfg := smallConfig()
	base, err := Run(cfg, StandardAlgorithms(false))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Recorder = obs.NewRecorder(obs.RecorderOptions{RingSize: 8})
	traced, err := Run(cfg, StandardAlgorithms(false))
	if err != nil {
		t.Fatal(err)
	}
	for i := range base {
		if len(base[i].QoE) != len(traced[i].QoE) {
			t.Fatalf("sample counts differ for %s", base[i].Name)
		}
		for j := range base[i].QoE {
			if base[i].QoE[j] != traced[i].QoE[j] {
				t.Fatalf("%s QoE[%d] differs with tracing: %v vs %v",
					base[i].Name, j, base[i].QoE[j], traced[i].QoE[j])
			}
		}
	}
}
