package sim

import (
	"testing"

	"repro/internal/trace"
)

// TestRunEmitsSpansForFirstRunOnly checks the campaign engine's span
// contract: only run 0 is traced (other runs are statistical repeats), the
// span count is exactly one decide/send/recv/display quartet per
// (algorithm, user, slot), and the per-algorithm epoch salt keeps replays
// over identical inputs in disjoint trace spaces.
func TestRunEmitsSpansForFirstRunOnly(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Seconds = 0.5
	cfg.Runs = 3
	cfg.IncludeOptimal = false
	tracer := trace.New(trace.Options{Exporter: trace.NewExporter(trace.ExporterOptions{RingSize: 1 << 12})})
	cfg.Tracer = tracer
	cfg.TraceEpoch = 4

	algos := StandardAlgorithms(false)[:2]
	if _, err := Run(cfg, algos); err != nil {
		t.Fatal(err)
	}

	spans := tracer.Exporter().Recent(1 << 12)
	slots := int(cfg.Seconds * cfg.SlotsPerSecond)
	want := len(algos) * slots * cfg.Users * 4
	if len(spans) != want {
		t.Fatalf("%d spans, want %d (run 0 only: %d algos x %d slots x %d users x 4 stages)",
			len(spans), want, len(algos), slots, cfg.Users)
	}

	traces := make(map[string]map[uint64]bool)
	for _, sp := range spans {
		if sp.Stage != trace.StageDecide {
			continue
		}
		if traces[sp.Algo] == nil {
			traces[sp.Algo] = make(map[uint64]bool)
		}
		traces[sp.Algo][sp.Trace] = true
		if want := trace.TileTraceID(algoEpoch(cfg.TraceEpoch, sp.Algo), sp.User, sp.Slot); sp.Trace != want {
			t.Fatalf("algo %s user=%d slot=%d trace=%x, want %x",
				sp.Algo, sp.User, sp.Slot, sp.Trace, want)
		}
	}
	if len(traces) != len(algos) {
		t.Fatalf("decide spans cover %d algorithms, want %d", len(traces), len(algos))
	}
	for _, id := range []string{"proposed", "firefly"} {
		if len(traces[id]) != slots*cfg.Users {
			t.Errorf("%s: %d traces, want %d", id, len(traces[id]), slots*cfg.Users)
		}
	}
	for id := range traces["proposed"] {
		if traces["firefly"][id] {
			t.Fatalf("trace %x shared across algorithms; epoch salt broken", id)
		}
	}
}
