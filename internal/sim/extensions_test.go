package sim

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/nettrace"
)

func TestNetKindsOverride(t *testing.T) {
	cfg := smallConfig()
	cfg.NetKinds = []nettrace.Kind{nettrace.MmWave}
	results, err := Run(cfg, StandardAlgorithms(false)[:1])
	if err != nil {
		t.Fatal(err)
	}
	if len(results[0].QoE) != cfg.Runs*cfg.Users {
		t.Fatalf("samples = %d", len(results[0].QoE))
	}
}

func TestFairnessSamplesPerRun(t *testing.T) {
	cfg := smallConfig()
	results, err := Run(cfg, StandardAlgorithms(false))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if len(r.Fairness) != cfg.Runs {
			t.Errorf("%s: %d fairness samples, want %d", r.Name, len(r.Fairness), cfg.Runs)
		}
		for i, j := range r.Fairness {
			if j < 0 || j > 1+1e-9 {
				t.Errorf("%s: fairness[%d] = %v outside [0,1]", r.Name, i, j)
			}
		}
	}
}

// TestImperfectEstimationRobustness is the deterministic analog of the
// paper's Figs. 7/8 finding: with imperfect throughput estimation the
// proposed algorithm's QoE advantage over the bandwidth-saturating Firefly
// grows, because Firefly rides the (stale, noisy) estimate into overload
// and misses frames.
func TestImperfectEstimationRobustness(t *testing.T) {
	run := func(alpha, noise float64) (proposed, firefly float64) {
		cfg := DefaultConfig(5)
		cfg.Seconds = 10
		cfg.Runs = 5
		cfg.IncludeOptimal = false
		cfg.EstimateAlpha = alpha
		cfg.EstimateNoise = noise
		results, err := Run(cfg, StandardAlgorithms(false))
		if err != nil {
			t.Fatal(err)
		}
		byName := indexResults(results)
		return metrics.NewCDF(byName["proposed"].QoE).Mean(),
			metrics.NewCDF(byName["firefly"].QoE).Mean()
	}
	pPerfect, fPerfect := run(0, 0)
	pNoisy, fNoisy := run(0.2, 0.3)

	gapPerfect := pPerfect - fPerfect
	gapNoisy := pNoisy - fNoisy
	if gapNoisy <= gapPerfect {
		t.Errorf("estimation noise should widen the gap: perfect %v, noisy %v",
			gapPerfect, gapNoisy)
	}
	if pNoisy <= fNoisy {
		t.Errorf("proposed (%v) should stay ahead of firefly (%v) under noise",
			pNoisy, fNoisy)
	}
}

// TestVolatilityHurtsFirefly reproduces the mechanism behind the paper's
// Fig. 8 inside the simulator: moving from stable broadband traces to
// volatile LTE traces costs the bandwidth-saturating Firefly far more QoE
// than the proposed algorithm.
func TestVolatilityHurtsFirefly(t *testing.T) {
	run := func(kind nettrace.Kind) (proposed, firefly float64) {
		cfg := DefaultConfig(5)
		cfg.Seconds = 10
		cfg.Runs = 5
		cfg.IncludeOptimal = false
		cfg.NetKinds = []nettrace.Kind{kind}
		results, err := Run(cfg, StandardAlgorithms(false))
		if err != nil {
			t.Fatal(err)
		}
		byName := indexResults(results)
		return metrics.NewCDF(byName["proposed"].QoE).Mean(),
			metrics.NewCDF(byName["firefly"].QoE).Mean()
	}
	pBB, fBB := run(nettrace.Broadband)
	pLTE, fLTE := run(nettrace.LTE)

	dropP := pBB - pLTE
	dropF := fBB - fLTE
	if dropF <= dropP {
		t.Errorf("firefly QoE drop (%v) should exceed proposed (%v) under volatility",
			dropF, dropP)
	}
}
