// Package sim is the trace-based simulation platform of Section IV. It
// replays 6-DoF motion traces and network-throughput traces through the
// full decision pipeline — motion prediction, tile selection, rate tables
// from the content size model, M/M/1 delivery delay (eq. (13)) — and runs
// any set of core.Allocator implementations over identical inputs,
// collecting the per-user QoE components whose CDFs are Figs. 2 and 3.
package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/estimate"
	"repro/internal/metrics"
	"repro/internal/motion"
	"repro/internal/netem"
	"repro/internal/nettrace"
	"repro/internal/obs"
	"repro/internal/tiles"
	"repro/internal/trace"
)

// Config parametrizes one simulation campaign.
type Config struct {
	Users          int     // N (paper: 5 and 30)
	Seconds        float64 // trace length (paper: 300)
	SlotsPerSecond float64 // display rate (paper: 60)
	Runs           int     // independent trace draws per user (paper: 100)
	Seed           int64
	Params         core.Params
	// ServerMbpsPerUser scales the shared budget: B = value * N (paper: 36).
	ServerMbpsPerUser float64
	// IncludeOptimal adds the per-slot brute-force optimum (paper: 5 users
	// only; cost is L^N per slot).
	IncludeOptimal  bool
	PredictorWindow int
	Coverage        motion.CoverageConfig
	NetConfig       nettrace.Config
	// NetKinds optionally overrides the trace profile per user (index
	// modulo length). Empty means the paper's half-broadband/half-LTE mix.
	NetKinds []nettrace.Kind
	// EstimateAlpha switches the simulation from the paper's Section IV
	// assumption ("the server has the perfect knowledge of the delay and
	// throughput") to the real system's imperfect estimation: algorithms
	// see an EMA with this smoothing factor over one-slot-delayed, noisy
	// throughput samples, while the environment applies the truth. 0 means
	// perfect knowledge. This reproduces the mechanism behind Figs. 7/8
	// deterministically.
	EstimateAlpha float64
	// EstimateNoise is the relative std-dev of each throughput sample fed
	// to the estimator (only with EstimateAlpha > 0).
	EstimateNoise float64
	// Recorder, when non-nil, receives one obs.SlotRecord per (slot,
	// algorithm): chosen levels, greedy branch, quality_verification
	// rejections, budget utilization, objective terms, and — when the
	// brute-force optimum runs in the same campaign — per-slot and
	// per-user regret versus it. Nil disables tracing with near-zero
	// overhead.
	Recorder *obs.Recorder
	// CounterfactualK, when positive, additionally records each slot's
	// top-K unchosen upgrades (the counterfactual alternatives of the
	// greedy pass) in the flight-recorder records. Requires Recorder.
	CounterfactualK int
	// Tracer, when non-nil, emits virtual-time spans — the same schema as
	// the live engine — for the campaign's first run only (the remaining
	// runs are statistical repeats). The trace epoch is salted per
	// algorithm so replays over identical inputs occupy distinct trace
	// spaces instead of merging into one trace.
	Tracer *trace.Tracer
	// TraceEpoch salts trace-ID derivation.
	TraceEpoch uint64
}

// DefaultConfig returns the paper's simulation parameters for n users.
// Seconds and Runs are scaled down from the paper's 300 s x 100 runs by
// default to keep a laptop run short; pass the full values explicitly to
// reproduce at scale.
func DefaultConfig(n int) Config {
	return Config{
		Users:             n,
		Seconds:           60,
		SlotsPerSecond:    60,
		Runs:              20,
		Seed:              1,
		Params:            core.DefaultSimParams(),
		ServerMbpsPerUser: 36,
		IncludeOptimal:    n <= 6,
		PredictorWindow:   motion.DefaultWindow,
		Coverage:          motion.DefaultCoverage(),
		NetConfig:         nettrace.DefaultConfig(),
	}
}

// AlgorithmFactory builds a fresh allocator per run, so stateful algorithms
// (Firefly's LRU clock, PAVQ's price) do not leak state across runs.
type AlgorithmFactory struct {
	Name string
	New  func() core.Allocator
}

// StandardAlgorithms returns the paper's comparison set: Algorithm 1
// ("proposed"), Firefly, and modified PAVQ. includeOptimal appends the
// per-slot brute-force optimum.
func StandardAlgorithms(includeOptimal bool) []AlgorithmFactory {
	algs := []AlgorithmFactory{
		{Name: "proposed", New: func() core.Allocator { return core.NewSolverAllocator() }},
		{Name: "firefly", New: func() core.Allocator { return baseline.NewFirefly() }},
		{Name: "pavq", New: func() core.Allocator { return baseline.NewPAVQ() }},
	}
	if includeOptimal {
		algs = append(algs, AlgorithmFactory{
			Name: "optimal", New: func() core.Allocator { return core.Optimal{} },
		})
	}
	return algs
}

// Result holds per-(run, user) samples of every QoE component for one
// algorithm; each slice has Runs*Users entries. Fairness has one Jain
// index per run (an extension beyond the paper's averaged metrics).
type Result struct {
	Name     string
	QoE      []float64
	Quality  []float64
	Delay    []float64
	Variance []float64
	Fairness []float64
}

// CDFs converts the samples into the four CDFs of a Fig. 2/3 row.
func (r *Result) CDFs() (qoe, quality, delay, variance *metrics.CDF) {
	return metrics.NewCDF(r.QoE), metrics.NewCDF(r.Quality),
		metrics.NewCDF(r.Delay), metrics.NewCDF(r.Variance)
}

// slotInput is the precomputed, algorithm-independent input of one
// (slot, user) pair.
type slotInput struct {
	rates   []float64 // f^R ladder of the predicted tile selection
	covered bool      // 1_n(t)
	cap_    float64   // B_n(t)
}

// Run executes the campaign and returns one Result per algorithm, in the
// order of the factories.
func Run(cfg Config, algorithms []AlgorithmFactory) ([]*Result, error) {
	if cfg.Users <= 0 || cfg.Runs <= 0 {
		return nil, fmt.Errorf("sim: users and runs must be positive")
	}
	if cfg.SlotsPerSecond <= 0 {
		cfg.SlotsPerSecond = 60
	}
	slots := int(cfg.Seconds * cfg.SlotsPerSecond)
	if slots <= 0 {
		return nil, fmt.Errorf("sim: no slots (seconds=%v)", cfg.Seconds)
	}
	if len(algorithms) == 0 {
		return nil, fmt.Errorf("sim: no algorithms")
	}

	results := make([]*Result, len(algorithms))
	for i, alg := range algorithms {
		results[i] = &Result{Name: alg.Name}
	}
	var mu sync.Mutex

	// Workers: one run at a time per goroutine.
	workers := runtime.GOMAXPROCS(0)
	if workers > cfg.Runs {
		workers = cfg.Runs
	}
	runCh := make(chan int)
	errCh := make(chan error, cfg.Runs)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for run := range runCh {
				runResults, err := simulateOneRun(cfg, slots, run, algorithms)
				if err != nil {
					errCh <- err
					continue
				}
				mu.Lock()
				for i, rr := range runResults {
					results[i].QoE = append(results[i].QoE, rr.QoE...)
					results[i].Quality = append(results[i].Quality, rr.Quality...)
					results[i].Delay = append(results[i].Delay, rr.Delay...)
					results[i].Variance = append(results[i].Variance, rr.Variance...)
					results[i].Fairness = append(results[i].Fairness, rr.Fairness...)
				}
				mu.Unlock()
			}
		}()
	}
	for run := 0; run < cfg.Runs; run++ {
		runCh <- run
	}
	close(runCh)
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	return results, nil
}

// simulateOneRun prepares one draw of motion + network traces and replays
// every algorithm over the identical inputs.
func simulateOneRun(cfg Config, slots, run int, algorithms []AlgorithmFactory) ([]*Result, error) {
	seed := cfg.Seed + int64(run)*7919
	rng := rand.New(rand.NewSource(seed))

	// Network traces: the paper's half-broadband/half-LTE mix, or an
	// explicit per-user profile, fresh per run.
	caps := make([][]float64, cfg.Users)
	if len(cfg.NetKinds) > 0 {
		for u := range caps {
			tr := nettrace.Generate(cfg.NetKinds[u%len(cfg.NetKinds)], cfg.NetConfig, rng)
			caps[u] = tr.Slotted(slots, cfg.SlotsPerSecond)
		}
	} else {
		netTraces := nettrace.GenerateMix(cfg.Users, cfg.NetConfig, rng)
		for u := range caps {
			caps[u] = netTraces[u].Slotted(slots, cfg.SlotsPerSecond)
		}
	}

	// Motion traces and the algorithm-independent pipeline: prediction,
	// tile selection, rate ladders, coverage.
	sizeModel := tiles.NewSizeModel(uint64(cfg.Seed))
	inputs := make([][]slotInput, cfg.Users) // [user][slot]
	scenes := motion.Scenes()
	for u := 0; u < cfg.Users; u++ {
		mt := motion.Generate(scenes[u%2], u, slots, cfg.SlotsPerSecond, seed)
		pred := motion.NewPredictor(cfg.PredictorWindow)
		inputs[u] = make([]slotInput, slots)
		for s := 0; s < slots; s++ {
			predicted := pred.Predict()
			if s <= cfg.PredictorWindow {
				// Cold start: assume perfect knowledge until the regression
				// window has data (the real system warms up the same way).
				predicted = mt[s]
			}
			cell := tiles.CellFor(predicted.Pos)
			sel := tiles.ForView(predicted, cfg.Coverage.FoV, cfg.Coverage.MarginDeg)
			inputs[u][s] = slotInput{
				rates:   sizeModel.RateTable(cell, sel),
				covered: cfg.Coverage.Covered(predicted, mt[s]),
				cap_:    caps[u][s],
			}
			pred.Observe(mt[s])
		}
	}

	budget := cfg.ServerMbpsPerUser * float64(cfg.Users)
	out := make([]*Result, len(algorithms))
	records := make([][]obs.SlotRecord, len(algorithms))
	for i, factory := range algorithms {
		out[i], records[i] = replayAlgorithm(cfg, slots, budget, inputs, factory, seed, run)
	}
	emitRecords(cfg, algorithms, records)
	return out, nil
}

// emitRecords joins per-algorithm slot records against the offline optimum
// (when it ran) to fill the regret field, then hands everything to the
// recorder.
func emitRecords(cfg Config, algorithms []AlgorithmFactory, records [][]obs.SlotRecord) {
	if !cfg.Recorder.Enabled() {
		return
	}
	optIdx := -1
	for i, f := range algorithms {
		if f.Name == "optimal" {
			optIdx = i
		}
	}
	for i := range records {
		for j := range records[i] {
			rec := &records[i][j]
			if optIdx >= 0 {
				opt := &records[optIdx][j]
				rec.OptimalValue = opt.Value
				rec.HasRegret = true
				if r := opt.Value - rec.Value; r > 0 {
					rec.Regret = r
				}
				// Per-user shortfall versus the optimum's allocation of the
				// identical inputs — the rows regret attribution runs on.
				if len(opt.UserValues) == len(rec.UserValues) {
					rec.UserRegret = make([]float64, len(rec.UserValues))
					for u := range rec.UserValues {
						rec.UserRegret[u] = opt.UserValues[u] - rec.UserValues[u]
					}
				}
			}
			cfg.Recorder.Record(rec)
		}
	}
}

// replayAlgorithm runs one allocator over the precomputed inputs and
// collects per-user metrics. With a recorder attached it also returns one
// flight-recorder record per slot (regret is filled in later by
// emitRecords, once the optimum's values are known).
func replayAlgorithm(cfg Config, slots int, budget float64, inputs [][]slotInput, factory AlgorithmFactory, seed int64, run int) (*Result, []obs.SlotRecord) {
	alloc := factory.New()
	recording := cfg.Recorder.Enabled()
	// Spans: the campaign's runs beyond the first are statistical repeats,
	// so only run 0 is traced; the epoch salt keeps each algorithm's replay
	// of the identical inputs in its own trace space.
	spanning := cfg.Tracer.Enabled() && run == 0
	var epoch uint64
	if spanning {
		epoch = algoEpoch(cfg.TraceEpoch, factory.Name)
	}
	tracer, canTrace := alloc.(core.TracingAllocator)
	var records []obs.SlotRecord
	if recording {
		records = make([]obs.SlotRecord, 0, slots)
	}
	tracker := core.NewTracker(cfg.Params, cfg.Users, 1)
	acc := make([]*metrics.UserQoE, cfg.Users)
	qoeParams := metrics.QoEParams{Alpha: cfg.Params.Alpha, Beta: cfg.Params.Beta}
	for u := range acc {
		acc[u] = metrics.NewUserQoE(qoeParams)
	}

	// Imperfect estimation mode: algorithms consume an EMA over delayed,
	// noisy samples of B_n(t); the environment keeps using the truth. The
	// noise stream is seeded identically across algorithms so the
	// comparison stays paired.
	var estimators []*estimate.EMA
	var estRng *rand.Rand
	if cfg.EstimateAlpha > 0 {
		estimators = make([]*estimate.EMA, cfg.Users)
		for u := range estimators {
			estimators[u] = estimate.NewEMA(cfg.EstimateAlpha)
		}
		estRng = rand.New(rand.NewSource(seed ^ 0x5EED))
	}

	slotMs := 1000 / cfg.SlotsPerSecond
	users := make([]core.UserInput, cfg.Users)
	for s := 0; s < slots; s++ {
		var capErr []float64
		if recording && estimators != nil {
			capErr = make([]float64, cfg.Users) // fresh: the record retains it
		}
		for u := 0; u < cfg.Users; u++ {
			in := inputs[u][s]
			seenCap := in.cap_
			if estimators != nil {
				if s > 0 {
					sample := inputs[u][s-1].cap_ * (1 + estRng.NormFloat64()*cfg.EstimateNoise)
					if sample < 0.1 {
						sample = 0.1
					}
					estimators[u].Update(sample)
				}
				if estimators[u].Primed() {
					seenCap = estimators[u].Value()
				}
			}
			if capErr != nil && in.cap_ > 0 {
				capErr[u] = (seenCap - in.cap_) / in.cap_
			}
			users[u] = tracker.UserInput(u, in.rates,
				netem.DelayTableMs(in.rates, seenCap, slotMs), seenCap)
		}
		problem := &core.SlotProblem{T: s + 1, Budget: budget, Users: users}
		var allocation core.Allocation
		var slotTrace *core.SlotTrace
		var solveStart time.Time
		if spanning {
			solveStart = time.Now()
		}
		if recording && canTrace {
			slotTrace = &core.SlotTrace{TopK: cfg.CounterfactualK}
			allocation = tracer.AllocateTraced(cfg.Params, problem, slotTrace)
		} else {
			allocation = alloc.Allocate(cfg.Params, problem)
		}
		var slotNs, solveNs int64
		if spanning {
			solveNs = time.Since(solveStart).Nanoseconds()
			slotNs = int64(float64(s) * slotMs * 1e6)
		}
		if recording {
			records = append(records, slotRecord(cfg, factory.Name, run, s, budget, problem, allocation, slotTrace, capErr))
		}
		for u := 0; u < cfg.Users; u++ {
			in := inputs[u][s]
			q := allocation.Levels[u]
			rate := in.rates[q-1]
			delay := netem.DelayMs(rate, in.cap_, slotMs)
			covered := in.covered
			if estimators != nil && delay > 2*slotMs {
				// Imperfect-estimation mode: content that takes longer
				// than the pipeline budget misses its display deadline —
				// the frame is dropped (as on the real client) rather than
				// charged an unbounded queueing delay.
				covered = false
				delay = 2 * slotMs
			}
			tracker.Record(u, q, covered, delay)
			acc[u].Observe(q, covered, delay)
			if spanning {
				emitSimSpans(cfg.Tracer, epoch, factory.Name, uint32(u), uint32(s),
					slotNs, solveNs, q, len(users), rate*slotMs*125, delay, delay <= 2*slotMs)
			}
		}
	}

	res := &Result{Name: factory.Name}
	for u := 0; u < cfg.Users; u++ {
		res.QoE = append(res.QoE, acc[u].QoE())
		res.Quality = append(res.Quality, acc[u].AvgQuality())
		res.Delay = append(res.Delay, acc[u].AvgDelay())
		res.Variance = append(res.Variance, acc[u].Variance())
	}
	res.Fairness = []float64{metrics.JainIndex(res.QoE)}
	return res, records
}

// algoEpoch mixes an algorithm name into the trace epoch (FNV-1a style) so
// per-algorithm replays of the same (user, slot) grid derive distinct
// deterministic trace IDs.
func algoEpoch(base uint64, name string) uint64 {
	h := base ^ 14695981039346656037
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 1099511628211
	}
	return h
}

// emitSimSpans writes one slot's virtual-time spans for one user: the solve
// (its duration is the only wall-clock measurement inside a virtual slot),
// the virtual transmit/receive window, and the display outcome.
func emitSimSpans(tr *trace.Tracer, epoch uint64, algo string, user, slot uint32,
	slotNs, solveNs int64, level, tilesN int, bytes, delayMs float64, displayed bool) {
	tid := trace.TileTraceID(epoch, user, slot)
	delayNs := int64(delayMs * 1e6)

	d := tr.StartAt(tid, trace.StageDecide, trace.SideServer, user, slot, slotNs)
	d.SetAlgo(algo)
	d.SetLevel(level)
	d.SetTiles(tilesN)
	d.EndAt(slotNs + solveNs)

	tx := tr.StartAt(tid, trace.StageSend, trace.SideServer, user, slot, slotNs)
	tx.SetLevel(level)
	tx.SetBytes(int(bytes))
	tx.EndAt(slotNs + delayNs)

	rx := tr.StartAt(tid, trace.StageRecv, trace.SideClient, user, slot, slotNs)
	rx.SetBytes(int(bytes))
	rx.EndAt(slotNs + delayNs)

	disp := tr.StartAt(tid, trace.StageDisplay, trace.SideClient, user, slot, slotNs+delayNs)
	disp.SetLevel(level)
	if displayed {
		disp.SetOutcome(trace.OutcomeDisplayed)
	} else {
		disp.SetOutcome(trace.OutcomeMissed)
	}
	disp.EndAt(slotNs + delayNs)
}

// slotRecord builds one flight-recorder entry for a decided slot. capErr
// (when non-nil) is the signed relative channel-estimate error per user.
func slotRecord(cfg Config, name string, run, s int, budget float64, problem *core.SlotProblem, allocation core.Allocation, tr *core.SlotTrace, capErr []float64) obs.SlotRecord {
	rec := obs.SlotRecord{
		Algorithm:  name,
		Run:        run,
		Slot:       s,
		Levels:     allocation.Levels,
		Value:      allocation.Value,
		RateMbps:   allocation.Rate,
		BudgetMbps: budget,
		CapErr:     capErr,
	}
	if budget > 0 {
		rec.Utilization = allocation.Rate / budget
	}
	if tr != nil {
		rec.Branch = tr.Branch
		rec.Upgrades = tr.Upgrades
		rec.Rejections = tr.Rejections
		rec.Alternatives = tr.Alternatives
	}
	rec.UserValues = make([]float64, len(allocation.Levels))
	for u, q := range allocation.Levels {
		terms := core.ObjectiveTerms(cfg.Params, problem.T, problem.Users[u], q)
		rec.QualityTerm += terms.Quality
		rec.DelayTerm += terms.Delay
		rec.VarianceTerm += terms.Variance
		rec.UserValues[u] = terms.Quality - terms.Delay - terms.Variance
	}
	return rec
}
