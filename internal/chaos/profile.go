// Package chaos is the seeded, deterministic fault-injection layer of the
// collabvr stack. The paper's evaluation assumes well-behaved traces with
// piecewise-constant bandwidth; chaos exists to provoke exactly the regimes
// the QoE model says hurt most — missed FoV coverage and the M/M/1 delay
// blowup near capacity — so the resilience path (adaptive retransmission,
// SLO-driven circuit breaking, graceful drain) can be exercised and
// regression-tested instead of trusted.
//
// A campaign is described by a Profile: a seed plus a list of scheduled
// Faults on the slot clock. Every random decision derives from the profile
// seed, the session ID and the fault index, so the same profile produces the
// same fault sequence run after run (the virtual-time engine is bit-stable;
// the live engine is statistically stable).
package chaos

import (
	"encoding/json"
	"fmt"
	"os"
)

// FaultKind enumerates the injectable fault types.
type FaultKind string

const (
	// FaultBurstLoss is Gilbert-Elliott two-state burst loss: a Markov
	// chain alternates between a good state (loss PGood, default 0) and a
	// bad state (loss PBad, default 1), with transition probabilities
	// PGoodBad and PBadGood per decision.
	FaultBurstLoss FaultKind = "burst-loss"
	// FaultLoss is i.i.d. loss with probability P.
	FaultLoss FaultKind = "loss"
	// FaultReorder holds a packet behind its successor with probability P.
	FaultReorder FaultKind = "reorder"
	// FaultDuplicate duplicates a packet with probability P.
	FaultDuplicate FaultKind = "duplicate"
	// FaultCorrupt flips one random byte of a packet with probability P.
	FaultCorrupt FaultKind = "corrupt"
	// FaultBandwidth is a bandwidth cliff: the session's capacity is
	// multiplied by Factor (0 < Factor < 1) for the window.
	FaultBandwidth FaultKind = "bandwidth-cliff"
	// FaultBlackout is a full partition: every packet in the window is
	// lost (the virtual-time engine models it as zero capacity).
	FaultBlackout FaultKind = "blackout"
	// FaultStall freezes the server's slot pipeline for DelayMs each slot
	// of the window (decision-loop stall injection).
	FaultStall FaultKind = "server-stall"
	// FaultSlowACK delays the server's control-plane ACK processing by
	// DelayMs per message during the window (estimator staleness).
	FaultSlowACK FaultKind = "slow-ack"
	// FaultShardKill abruptly kills a whole fleet shard at StartSlot: its
	// slot pipeline stops and every session it hosts must be re-placed on
	// the surviving shards (DurationSlots is ignored — dead stays dead).
	// Only fleet engines honor it; single-server runs reject the profile
	// at wiring time, not parse time, so profiles stay portable.
	FaultShardKill FaultKind = "shard_kill"
	// FaultShardDrain puts a fleet shard into draining at StartSlot: it
	// stops accepting placements and hands its sessions off to the rest of
	// the fleet, spread across DurationSlots (0 = all at once), after which
	// the shard is out of rotation.
	FaultShardDrain FaultKind = "shard_drain"
	// FaultShardDegrade multiplies one fleet shard's delivery capacity by
	// Factor (0 < Factor < 1) for the window — a brownout rather than an
	// outage: the shard keeps its sessions but pages its SLOs, which is the
	// signal the SLO-pressure evacuation loop acts on. Only fleet engines
	// honor it.
	FaultShardDegrade FaultKind = "shard_degrade"
	// FaultCoordKill crashes one fleet coordinator replica at StartSlot
	// (DurationSlots 0 = permanently; > 0 restarts it, log intact, after
	// the window). Killing the leader stalls ownership mutations until its
	// lease drains and the survivors elect. Only coord-enabled fleet
	// engines honor it.
	FaultCoordKill FaultKind = "coord_kill"
	// FaultCoordPartition cuts one coordinator replica off from its peers
	// for DurationSlots (must be > 0; the partition heals by the slot
	// clock). Partitioning the leader forces a term bump on the majority
	// side — the epoch fencing path.
	FaultCoordPartition FaultKind = "coord_partition"
)

// Fault is one scheduled fault window on the slot clock.
type Fault struct {
	Kind FaultKind `json:"kind"`
	// StartSlot is the first slot the fault is active.
	StartSlot int `json:"start_slot"`
	// DurationSlots bounds the window (0 = open-ended).
	DurationSlots int `json:"duration_slots,omitempty"`
	// Sessions limits the fault to these session IDs (empty = all).
	Sessions []uint32 `json:"sessions,omitempty"`

	// P is the per-decision probability for loss/reorder/duplicate/corrupt.
	P float64 `json:"p,omitempty"`
	// Gilbert-Elliott parameters (burst-loss).
	PGoodBad float64 `json:"p_good_bad,omitempty"`
	PBadGood float64 `json:"p_bad_good,omitempty"`
	PGood    float64 `json:"p_good,omitempty"`
	PBad     float64 `json:"p_bad,omitempty"`
	// Factor is the capacity multiplier of a bandwidth cliff.
	Factor float64 `json:"factor,omitempty"`
	// DelayMs parametrizes server-stall and slow-ack injection.
	DelayMs float64 `json:"delay_ms,omitempty"`
	// Shard is the fleet shard index targeted by shard_kill/shard_drain.
	Shard int `json:"shard,omitempty"`
	// Replica is the coordinator replica index targeted by
	// coord_kill/coord_partition.
	Replica int `json:"replica,omitempty"`
}

// active reports whether the fault window covers the slot.
func (f *Fault) active(slot int) bool {
	if slot < f.StartSlot {
		return false
	}
	return f.DurationSlots <= 0 || slot < f.StartSlot+f.DurationSlots
}

// appliesTo reports whether the fault targets the session.
func (f *Fault) appliesTo(session uint32) bool {
	if len(f.Sessions) == 0 {
		return true
	}
	for _, s := range f.Sessions {
		if s == session {
			return true
		}
	}
	return false
}

// prob01 validates a probability field.
func prob01(name string, v float64) error {
	if v < 0 || v > 1 {
		return fmt.Errorf("%s = %g outside [0, 1]", name, v)
	}
	return nil
}

// validate checks one fault's parameters; i is its index for error text.
func (f *Fault) validate(i int) error {
	fail := func(err error) error {
		return fmt.Errorf("chaos: fault %d (%s): %w", i, f.Kind, err)
	}
	if f.StartSlot < 0 {
		return fail(fmt.Errorf("start_slot %d < 0", f.StartSlot))
	}
	if f.DurationSlots < 0 {
		return fail(fmt.Errorf("duration_slots %d < 0", f.DurationSlots))
	}
	switch f.Kind {
	case FaultBurstLoss:
		for _, c := range []struct {
			name string
			v    float64
		}{{"p_good_bad", f.PGoodBad}, {"p_bad_good", f.PBadGood}, {"p_good", f.PGood}, {"p_bad", f.PBad}} {
			if err := prob01(c.name, c.v); err != nil {
				return fail(err)
			}
		}
		if f.PGoodBad == 0 {
			return fail(fmt.Errorf("p_good_bad must be > 0 (the chain never leaves the good state)"))
		}
	case FaultLoss, FaultReorder, FaultDuplicate, FaultCorrupt:
		if err := prob01("p", f.P); err != nil {
			return fail(err)
		}
		if f.P == 0 {
			return fail(fmt.Errorf("p must be > 0 (the fault never fires)"))
		}
	case FaultBandwidth:
		if f.Factor <= 0 || f.Factor >= 1 {
			return fail(fmt.Errorf("factor %g outside (0, 1)", f.Factor))
		}
	case FaultBlackout:
		// No parameters.
	case FaultStall, FaultSlowACK:
		if f.DelayMs <= 0 || f.DelayMs > 5000 {
			return fail(fmt.Errorf("delay_ms %g outside (0, 5000]", f.DelayMs))
		}
	case FaultShardKill, FaultShardDrain, FaultShardDegrade:
		if f.Shard < 0 {
			return fail(fmt.Errorf("shard %d < 0", f.Shard))
		}
		if len(f.Sessions) > 0 {
			return fail(fmt.Errorf("sessions list is not applicable (the fault targets a whole shard)"))
		}
		if f.Kind == FaultShardKill && f.DurationSlots != 0 {
			return fail(fmt.Errorf("duration_slots %d invalid (a killed shard never comes back)", f.DurationSlots))
		}
		if f.Kind == FaultShardDegrade && (f.Factor <= 0 || f.Factor >= 1) {
			return fail(fmt.Errorf("factor %g outside (0, 1)", f.Factor))
		}
	case FaultCoordKill, FaultCoordPartition:
		if f.Replica < 0 {
			return fail(fmt.Errorf("replica %d < 0", f.Replica))
		}
		if len(f.Sessions) > 0 {
			return fail(fmt.Errorf("sessions list is not applicable (the fault targets a coordinator replica)"))
		}
		if f.Kind == FaultCoordPartition && f.DurationSlots <= 0 {
			return fail(fmt.Errorf("duration_slots %d invalid (a partition must heal; use coord_kill for a crash)", f.DurationSlots))
		}
	default:
		return fail(fmt.Errorf("unknown kind"))
	}
	return nil
}

// Profile is a complete chaos campaign description.
type Profile struct {
	// Name labels reports and logs.
	Name string `json:"name,omitempty"`
	// Seed roots every random decision of the campaign.
	Seed int64 `json:"seed"`
	// Faults are the scheduled fault windows.
	Faults []Fault `json:"faults"`
}

// Validate checks every fault; a nil profile is valid (no chaos).
func (p *Profile) Validate() error {
	if p == nil {
		return nil
	}
	if len(p.Faults) == 0 {
		return fmt.Errorf("chaos: profile %q has no faults", p.Name)
	}
	for i := range p.Faults {
		if err := p.Faults[i].validate(i); err != nil {
			return err
		}
	}
	return nil
}

// ParseProfile decodes and validates a JSON profile. Unknown fields are
// rejected so a typoed knob fails loudly instead of silently injecting
// nothing.
func ParseProfile(data []byte) (*Profile, error) {
	var p Profile
	dec := json.NewDecoder(newByteReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("chaos: parse profile: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// LoadProfile reads and parses a profile file.
func LoadProfile(path string) (*Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	p, err := ParseProfile(data)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return p, nil
}

// HasSessionFaults reports whether any fault targets the delivery path
// (everything except server-stall/slow-ack and the shard-scoped kinds).
func (p *Profile) HasSessionFaults() bool {
	if p == nil {
		return false
	}
	for i := range p.Faults {
		switch p.Faults[i].Kind {
		case FaultStall, FaultSlowACK, FaultShardKill, FaultShardDrain, FaultShardDegrade,
			FaultCoordKill, FaultCoordPartition:
		default:
			return true
		}
	}
	return false
}

// HasShardFaults reports whether any fault targets a whole fleet shard.
func (p *Profile) HasShardFaults() bool {
	return p != nil && len(p.ShardFaults()) > 0
}

// ShardFaults returns the shard-scoped faults (shard_kill, shard_drain,
// shard_degrade) in profile order. Fleet engines schedule these directly;
// session and server injectors ignore them.
func (p *Profile) ShardFaults() []Fault {
	if p == nil {
		return nil
	}
	var out []Fault
	for i := range p.Faults {
		switch p.Faults[i].Kind {
		case FaultShardKill, FaultShardDrain, FaultShardDegrade:
			out = append(out, p.Faults[i])
		}
	}
	return out
}

// MaxShard returns the highest shard index any shard fault targets (-1 when
// the profile has none); fleet engines validate it against the shard count.
func (p *Profile) MaxShard() int {
	maxShard := -1
	for _, f := range p.ShardFaults() {
		if f.Shard > maxShard {
			maxShard = f.Shard
		}
	}
	return maxShard
}

// HasCoordFaults reports whether any fault targets a coordinator replica.
func (p *Profile) HasCoordFaults() bool {
	return p != nil && len(p.CoordFaults()) > 0
}

// CoordFaults returns the coordinator-replica faults (coord_kill,
// coord_partition) in profile order. Coord-enabled fleet engines schedule
// these on the slot clock; everything else ignores them.
func (p *Profile) CoordFaults() []Fault {
	if p == nil {
		return nil
	}
	var out []Fault
	for i := range p.Faults {
		switch p.Faults[i].Kind {
		case FaultCoordKill, FaultCoordPartition:
			out = append(out, p.Faults[i])
		}
	}
	return out
}

// MaxReplica returns the highest coordinator replica index any coord fault
// targets (-1 when the profile has none); fleet engines validate it against
// the configured replica count.
func (p *Profile) MaxReplica() int {
	maxReplica := -1
	for _, f := range p.CoordFaults() {
		if f.Replica > maxReplica {
			maxReplica = f.Replica
		}
	}
	return maxReplica
}

// HasServerFaults reports whether any fault targets the server pipeline.
func (p *Profile) HasServerFaults() bool {
	if p == nil {
		return false
	}
	for i := range p.Faults {
		switch p.Faults[i].Kind {
		case FaultStall, FaultSlowACK:
			return true
		}
	}
	return false
}

// EndSlot returns the last slot any bounded fault is active (open-ended
// faults are ignored); campaign reports use it to place the recovery window.
func (p *Profile) EndSlot() int {
	if p == nil {
		return 0
	}
	end := 0
	for i := range p.Faults {
		f := &p.Faults[i]
		if f.DurationSlots > 0 && f.StartSlot+f.DurationSlots > end {
			end = f.StartSlot + f.DurationSlots
		}
	}
	return end
}

// byteReader is a minimal io.Reader over a byte slice (avoids importing
// bytes just for NewReader).
type byteReader struct {
	data []byte
	off  int
}

func newByteReader(data []byte) *byteReader { return &byteReader{data: data} }

func (r *byteReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, errEOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

var errEOF = fmt.Errorf("EOF")
