package chaos

import (
	"strings"
	"testing"
	"time"

	"repro/internal/transport"
)

func mustParse(t *testing.T, src string) *Profile {
	t.Helper()
	p, err := ParseProfile([]byte(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

func TestParseProfileValidation(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"empty faults", `{"seed":1,"faults":[]}`, "no faults"},
		{"unknown kind", `{"seed":1,"faults":[{"kind":"gremlins","start_slot":0,"p":0.5}]}`, "unknown kind"},
		{"unknown field", `{"seed":1,"bogus":3,"faults":[{"kind":"loss","p":0.5}]}`, "bogus"},
		{"p out of range", `{"seed":1,"faults":[{"kind":"loss","p":1.5}]}`, "outside [0, 1]"},
		{"p zero", `{"seed":1,"faults":[{"kind":"corrupt","p":0}]}`, "never fires"},
		{"negative start", `{"seed":1,"faults":[{"kind":"blackout","start_slot":-2}]}`, "start_slot"},
		{"negative duration", `{"seed":1,"faults":[{"kind":"blackout","duration_slots":-1}]}`, "duration_slots"},
		{"cliff factor 1", `{"seed":1,"faults":[{"kind":"bandwidth-cliff","factor":1}]}`, "factor"},
		{"ge stuck good", `{"seed":1,"faults":[{"kind":"burst-loss","p_good_bad":0,"p_bad_good":0.2}]}`, "p_good_bad"},
		{"stall no delay", `{"seed":1,"faults":[{"kind":"server-stall"}]}`, "delay_ms"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseProfile([]byte(c.src))
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, c.wantErr)
			}
		})
	}

	p := mustParse(t, `{
		"name": "mixed", "seed": 7,
		"faults": [
			{"kind": "burst-loss", "start_slot": 10, "duration_slots": 50, "p_good_bad": 0.1, "p_bad_good": 0.3},
			{"kind": "blackout", "start_slot": 100, "duration_slots": 20, "sessions": [2]},
			{"kind": "server-stall", "start_slot": 5, "duration_slots": 5, "delay_ms": 30}
		]}`)
	if !p.HasSessionFaults() || !p.HasServerFaults() {
		t.Fatalf("fault classification wrong: session=%v server=%v",
			p.HasSessionFaults(), p.HasServerFaults())
	}
	if got := p.EndSlot(); got != 120 {
		t.Fatalf("EndSlot = %d, want 120", got)
	}
}

func TestInjectorDeterminism(t *testing.T) {
	p := mustParse(t, `{
		"seed": 42,
		"faults": [
			{"kind": "burst-loss", "start_slot": 0, "p_good_bad": 0.05, "p_bad_good": 0.3},
			{"kind": "reorder", "start_slot": 0, "p": 0.1},
			{"kind": "duplicate", "start_slot": 0, "p": 0.1},
			{"kind": "corrupt", "start_slot": 0, "p": 0.1}
		]}`)
	stream := func(session uint32) []transport.PacketFault {
		in := NewInjector(p, session)
		var out []transport.PacketFault
		for slot := 0; slot < 40; slot++ {
			in.Advance(slot)
			for k := 0; k < 25; k++ {
				out = append(out, in.PacketFault())
			}
		}
		return out
	}
	a, b := stream(3), stream(3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged between identical runs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Distinct sessions must see decorrelated streams.
	c := stream(4)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("sessions 3 and 4 produced identical fault streams")
	}
}

func TestGilbertElliottBurstStatistics(t *testing.T) {
	// p_good_bad=0.02, p_bad_good=0.25 -> stationary bad fraction
	// 0.02/(0.02+0.25) ~ 7.4%, mean burst length 1/0.25 = 4.
	p := mustParse(t, `{
		"seed": 9,
		"faults": [{"kind": "burst-loss", "p_good_bad": 0.02, "p_bad_good": 0.25}]}`)
	in := NewInjector(p, 1)
	in.Advance(0)
	const n = 200000
	drops, bursts, cur := 0, 0, 0
	var burstTotal int
	for i := 0; i < n; i++ {
		if in.Drop() {
			drops++
			cur++
		} else if cur > 0 {
			bursts++
			burstTotal += cur
			cur = 0
		}
	}
	frac := float64(drops) / n
	if frac < 0.05 || frac > 0.10 {
		t.Errorf("drop fraction %.4f outside [0.05, 0.10] (expect ~0.074)", frac)
	}
	mean := float64(burstTotal) / float64(bursts)
	if mean < 3.2 || mean > 4.8 {
		t.Errorf("mean burst length %.2f outside [3.2, 4.8] (expect ~4)", mean)
	}
}

func TestWindowBoundariesAndCapFactors(t *testing.T) {
	p := mustParse(t, `{
		"seed": 1,
		"faults": [
			{"kind": "blackout", "start_slot": 100, "duration_slots": 20},
			{"kind": "bandwidth-cliff", "start_slot": 110, "duration_slots": 40, "factor": 0.25},
			{"kind": "bandwidth-cliff", "start_slot": 130, "factor": 0.5}
		]}`)
	in := NewInjector(p, 1)
	check := func(slot int, blackout bool, cap_, simCap float64) {
		t.Helper()
		in.Advance(slot)
		if in.Blackout() != blackout {
			t.Errorf("slot %d: Blackout = %v, want %v", slot, in.Blackout(), blackout)
		}
		if got := in.CapFactor(); got != cap_ {
			t.Errorf("slot %d: CapFactor = %g, want %g", slot, got, cap_)
		}
		if got := in.SimCapFactor(); got != simCap {
			t.Errorf("slot %d: SimCapFactor = %g, want %g", slot, got, simCap)
		}
	}
	check(99, false, 1, 1)
	check(100, true, 1, 0)  // blackout first slot; live cap untouched
	check(119, true, 0.25, 0)
	check(120, false, 0.25, 0.25) // blackout over, cliff still active
	check(135, false, 0.25*0.5, 0.25*0.5)
	check(149, false, 0.25*0.5, 0.25*0.5)
	check(150, false, 0.5, 0.5) // bounded cliff ends; open-ended one persists
	// Blackout drops every packet while active.
	in.Advance(105)
	for i := 0; i < 10; i++ {
		if !in.Drop() {
			t.Fatal("packet survived a blackout")
		}
		if !in.PacketFault().Drop {
			t.Fatal("PacketFault did not drop during blackout")
		}
	}
}

func TestSessionTargeting(t *testing.T) {
	p := mustParse(t, `{
		"seed": 1,
		"faults": [{"kind": "blackout", "sessions": [7]}]}`)
	if in := NewInjector(p, 3); in != nil {
		t.Fatal("untargeted session got a non-nil injector")
	}
	in := NewInjector(p, 7)
	if in == nil {
		t.Fatal("targeted session got a nil injector")
	}
	in.Advance(0)
	if !in.Drop() {
		t.Fatal("targeted session not blacked out")
	}
}

func TestServerInjector(t *testing.T) {
	p := mustParse(t, `{
		"seed": 1,
		"faults": [
			{"kind": "server-stall", "start_slot": 10, "duration_slots": 5, "delay_ms": 30},
			{"kind": "server-stall", "start_slot": 12, "duration_slots": 5, "delay_ms": 20},
			{"kind": "slow-ack", "start_slot": 10, "duration_slots": 5, "delay_ms": 15}
		]}`)
	si := NewServerInjector(p)
	if si == nil {
		t.Fatal("profile with server faults produced nil ServerInjector")
	}
	si.Advance(9)
	if si.StallFor() != 0 || si.AckDelay() != 0 {
		t.Fatal("server faults fired before their window")
	}
	si.Advance(12)
	if got := si.StallFor(); got != 50*time.Millisecond {
		t.Errorf("overlapping stalls: StallFor = %v, want 50ms", got)
	}
	if got := si.AckDelay(); got != 15*time.Millisecond {
		t.Errorf("AckDelay = %v, want 15ms", got)
	}
	si.Advance(17)
	if si.StallFor() != 0 {
		t.Fatal("stall persisted past its window")
	}

	// A session-faults-only profile yields no server injector.
	p2 := mustParse(t, `{"seed":1,"faults":[{"kind":"loss","p":0.1}]}`)
	if NewServerInjector(p2) != nil {
		t.Fatal("session-only profile produced a ServerInjector")
	}
	if NewInjector(p, 1) != nil {
		t.Fatal("server-only profile produced a session Injector")
	}
}

func TestNilSafety(t *testing.T) {
	var in *Injector
	in.Advance(5)
	if in.Drop() || in.Blackout() || in.Session() != 0 {
		t.Fatal("nil Injector produced faults")
	}
	if pf := in.PacketFault(); pf != (transport.PacketFault{}) {
		t.Fatal("nil Injector produced a packet fault")
	}
	if in.CapFactor() != 1 || in.SimCapFactor() != 1 {
		t.Fatal("nil Injector scaled capacity")
	}
	var si *ServerInjector
	si.Advance(5)
	if si.StallFor() != 0 || si.AckDelay() != 0 {
		t.Fatal("nil ServerInjector produced delays")
	}
	var p *Profile
	if p.Validate() != nil || p.HasSessionFaults() || p.HasServerFaults() || p.EndSlot() != 0 {
		t.Fatal("nil Profile misbehaved")
	}
	if NewInjector(nil, 1) != nil || NewServerInjector(nil) != nil {
		t.Fatal("nil profile produced injectors")
	}
}
