package chaos

import "testing"

func TestShardFaultValidation(t *testing.T) {
	cases := []struct {
		name string
		json string
		ok   bool
	}{
		{"kill", `{"seed":1,"faults":[{"kind":"shard_kill","start_slot":10,"shard":1}]}`, true},
		{"drain", `{"seed":1,"faults":[{"kind":"shard_drain","start_slot":10,"duration_slots":30,"shard":0}]}`, true},
		{"drain-instant", `{"seed":1,"faults":[{"kind":"shard_drain","start_slot":10,"shard":2}]}`, true},
		{"degrade", `{"seed":1,"faults":[{"kind":"shard_degrade","start_slot":10,"duration_slots":30,"shard":1,"factor":0.1}]}`, true},
		{"degrade-no-factor", `{"seed":1,"faults":[{"kind":"shard_degrade","start_slot":10,"shard":1}]}`, false},
		{"degrade-factor-one", `{"seed":1,"faults":[{"kind":"shard_degrade","start_slot":10,"shard":1,"factor":1}]}`, false},
		{"degrade-with-sessions", `{"seed":1,"faults":[{"kind":"shard_degrade","start_slot":10,"shard":1,"factor":0.5,"sessions":[2]}]}`, false},
		{"kill-negative-shard", `{"seed":1,"faults":[{"kind":"shard_kill","start_slot":10,"shard":-1}]}`, false},
		{"kill-with-duration", `{"seed":1,"faults":[{"kind":"shard_kill","start_slot":10,"duration_slots":5,"shard":0}]}`, false},
		{"kill-with-sessions", `{"seed":1,"faults":[{"kind":"shard_kill","start_slot":10,"shard":0,"sessions":[3]}]}`, false},
		{"unknown-field", `{"seed":1,"faults":[{"kind":"shard_kill","start_slot":10,"shardd":0}]}`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseProfile([]byte(tc.json))
			if tc.ok && err != nil {
				t.Fatalf("want valid, got %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("want validation error, got nil")
			}
		})
	}
}

func TestShardFaultAccessors(t *testing.T) {
	p, err := ParseProfile([]byte(`{
		"seed": 9,
		"faults": [
			{"kind": "shard_kill", "start_slot": 100, "shard": 2},
			{"kind": "blackout", "start_slot": 50, "duration_slots": 10},
			{"kind": "shard_drain", "start_slot": 200, "duration_slots": 40, "shard": 1}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if !p.HasShardFaults() {
		t.Fatal("HasShardFaults = false, want true")
	}
	sf := p.ShardFaults()
	if len(sf) != 2 || sf[0].Kind != FaultShardKill || sf[1].Kind != FaultShardDrain {
		t.Fatalf("ShardFaults = %+v, want [shard_kill shard_drain]", sf)
	}
	if got := p.MaxShard(); got != 2 {
		t.Fatalf("MaxShard = %d, want 2", got)
	}
	// The blackout still counts as a session fault; the shard kinds do not.
	if !p.HasSessionFaults() {
		t.Fatal("HasSessionFaults = false, want true (blackout present)")
	}
	shardOnly, err := ParseProfile([]byte(`{"seed":1,"faults":[{"kind":"shard_kill","start_slot":5,"shard":0},{"kind":"shard_degrade","start_slot":5,"duration_slots":10,"shard":0,"factor":0.2}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if shardOnly.HasSessionFaults() {
		t.Fatal("HasSessionFaults = true for a shard-only profile")
	}
	if shardOnly.HasServerFaults() {
		t.Fatal("HasServerFaults = true for a shard-only profile")
	}
	// Shard faults must never build per-session or server injectors.
	if inj := NewInjector(shardOnly, 7); inj != nil {
		t.Fatal("NewInjector built an injector from a shard-only profile")
	}
	if si := NewServerInjector(shardOnly); si != nil {
		t.Fatal("NewServerInjector built an injector from a shard-only profile")
	}
	if p.MaxShard() != 2 {
		t.Fatalf("MaxShard changed: %d", p.MaxShard())
	}
	var nilP *Profile
	if nilP.HasShardFaults() || nilP.MaxShard() != -1 {
		t.Fatal("nil profile shard accessors misbehave")
	}
}

func TestLoadFleetExampleProfile(t *testing.T) {
	p, err := LoadProfile("../../examples/chaos/fleet.json")
	if err != nil {
		t.Fatal(err)
	}
	if !p.HasShardFaults() || p.HasSessionFaults() || p.HasServerFaults() {
		t.Fatalf("fleet.json fault classes wrong: shard=%v session=%v server=%v",
			p.HasShardFaults(), p.HasSessionFaults(), p.HasServerFaults())
	}
}
