package chaos

import "testing"

func TestCoordFaultValidation(t *testing.T) {
	cases := []struct {
		name string
		json string
		ok   bool
	}{
		{"kill", `{"seed":1,"faults":[{"kind":"coord_kill","start_slot":10,"replica":0}]}`, true},
		{"kill-with-restart", `{"seed":1,"faults":[{"kind":"coord_kill","start_slot":10,"duration_slots":50,"replica":2}]}`, true},
		{"partition", `{"seed":1,"faults":[{"kind":"coord_partition","start_slot":10,"duration_slots":30,"replica":1}]}`, true},
		{"partition-open-ended", `{"seed":1,"faults":[{"kind":"coord_partition","start_slot":10,"replica":1}]}`, false},
		{"negative-replica", `{"seed":1,"faults":[{"kind":"coord_kill","start_slot":10,"replica":-1}]}`, false},
		{"kill-with-sessions", `{"seed":1,"faults":[{"kind":"coord_kill","start_slot":10,"replica":0,"sessions":[3]}]}`, false},
		{"unknown-field", `{"seed":1,"faults":[{"kind":"coord_kill","start_slot":10,"replicaa":0}]}`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseProfile([]byte(tc.json))
			if tc.ok && err != nil {
				t.Fatalf("want valid, got %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("want validation error, got nil")
			}
		})
	}
}

func TestCoordFaultAccessors(t *testing.T) {
	p, err := ParseProfile([]byte(`{
		"seed": 9,
		"faults": [
			{"kind": "coord_kill", "start_slot": 100, "replica": 2},
			{"kind": "shard_kill", "start_slot": 50, "shard": 1},
			{"kind": "coord_partition", "start_slot": 200, "duration_slots": 40, "replica": 1}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if !p.HasCoordFaults() {
		t.Fatal("HasCoordFaults = false, want true")
	}
	cf := p.CoordFaults()
	if len(cf) != 2 || cf[0].Kind != FaultCoordKill || cf[1].Kind != FaultCoordPartition {
		t.Fatalf("CoordFaults = %+v, want [coord_kill coord_partition]", cf)
	}
	if got := p.MaxReplica(); got != 2 {
		t.Fatalf("MaxReplica = %d, want 2", got)
	}
	// Coord faults are neither session, server, nor shard faults; the
	// shard_kill stays classified as a shard fault only.
	if p.HasSessionFaults() || p.HasServerFaults() {
		t.Fatalf("coord faults misclassified: session=%v server=%v",
			p.HasSessionFaults(), p.HasServerFaults())
	}
	if sf := p.ShardFaults(); len(sf) != 1 || sf[0].Kind != FaultShardKill {
		t.Fatalf("ShardFaults polluted by coord kinds: %+v", sf)
	}
	// Coord-only profiles must not build per-session or server injectors.
	coordOnly, err := ParseProfile([]byte(`{"seed":1,"faults":[{"kind":"coord_kill","start_slot":5,"replica":0}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if inj := NewInjector(coordOnly, 7); inj != nil {
		t.Fatal("NewInjector built an injector from a coord-only profile")
	}
	if si := NewServerInjector(coordOnly); si != nil {
		t.Fatal("NewServerInjector built an injector from a coord-only profile")
	}
	var nilP *Profile
	if nilP.HasCoordFaults() || nilP.MaxReplica() != -1 {
		t.Fatal("nil profile coord accessors misbehave")
	}
}

func TestLoadCoordKillExampleProfile(t *testing.T) {
	p, err := LoadProfile("../../examples/chaos/coordkill.json")
	if err != nil {
		t.Fatal(err)
	}
	if !p.HasCoordFaults() || !p.HasShardFaults() || p.HasSessionFaults() || p.HasServerFaults() {
		t.Fatalf("coordkill.json fault classes wrong: coord=%v shard=%v session=%v server=%v",
			p.HasCoordFaults(), p.HasShardFaults(), p.HasSessionFaults(), p.HasServerFaults())
	}
	if p.MaxReplica() != 1 {
		t.Fatalf("coordkill.json MaxReplica = %d, want 1", p.MaxReplica())
	}
}
