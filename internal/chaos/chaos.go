package chaos

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/transport"
)

// mixSeed derives the RNG seed of one (session, fault) pair from the profile
// seed with a splitmix64-style finalizer, so campaigns are deterministic yet
// streams are decorrelated across sessions and faults.
func mixSeed(seed int64, session uint32, idx int) int64 {
	z := uint64(seed) ^ 0x9E3779B97F4A7C15
	z ^= (uint64(session) + 1) * 0xBF58476D1CE4E5B9
	z ^= (uint64(idx) + 1) * 0x94D049BB133111EB
	z ^= z >> 31
	z *= 0xD6E8FEB86659FD93
	z ^= z >> 27
	return int64(z)
}

// faultRT is the per-session runtime state of one scheduled fault.
type faultRT struct {
	f   *Fault
	rng *rand.Rand
	bad bool // Gilbert-Elliott chain state (burst-loss only)
}

// Injector evaluates a profile's delivery-path faults for one session. It is
// safe for concurrent use (the sender consults it per packet while the slot
// scheduler advances the clock) and all methods are nil-receiver-safe, so a
// disabled session simply carries a nil *Injector.
type Injector struct {
	mu      sync.Mutex
	session uint32
	slot    int
	faults  []*faultRT
}

// NewInjector builds the per-session injector. It returns nil when the
// profile has no delivery-path faults targeting the session — the zero-cost
// disabled state.
func NewInjector(p *Profile, session uint32) *Injector {
	if p == nil {
		return nil
	}
	inj := &Injector{session: session}
	for i := range p.Faults {
		f := &p.Faults[i]
		switch f.Kind {
		case FaultStall, FaultSlowACK, FaultShardKill, FaultShardDrain, FaultShardDegrade,
			FaultCoordKill, FaultCoordPartition:
			continue
		}
		if !f.appliesTo(session) {
			continue
		}
		inj.faults = append(inj.faults, &faultRT{
			f:   f,
			rng: rand.New(rand.NewSource(mixSeed(p.Seed, session, i))),
		})
	}
	if len(inj.faults) == 0 {
		return nil
	}
	return inj
}

// Session returns the session the injector targets.
func (in *Injector) Session() uint32 {
	if in == nil {
		return 0
	}
	return in.session
}

// Advance moves the injector's slot clock. Fault windows are evaluated
// against this slot until the next Advance.
func (in *Injector) Advance(slot int) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.slot = slot
	in.mu.Unlock()
}

// dropLocked evaluates the drop-class faults (blackout, burst-loss, iid
// loss) for one decision, stepping Gilbert-Elliott chains as a side effect.
func (in *Injector) dropLocked() bool {
	drop := false
	for _, rt := range in.faults {
		if !rt.f.active(in.slot) {
			continue
		}
		switch rt.f.Kind {
		case FaultBlackout:
			drop = true
		case FaultLoss:
			if rt.rng.Float64() < rt.f.P {
				drop = true
			}
		case FaultBurstLoss:
			// Transition, then emit: the chain is stepped once per
			// decision so burst lengths follow geometric(PBadGood).
			if rt.bad {
				if rt.rng.Float64() < rt.f.PBadGood {
					rt.bad = false
				}
			} else if rt.rng.Float64() < rt.f.PGoodBad {
				rt.bad = true
			}
			p := rt.f.PGood
			if rt.bad {
				p = rt.f.PBad
				if p == 0 {
					p = 1 // classic GE: the bad state loses everything
				}
			}
			if p > 0 && rt.rng.Float64() < p {
				drop = true
			}
		}
	}
	return drop
}

// Drop evaluates one drop decision (a packet on the live path, a frame in
// the virtual-time engine). Each call advances the fault RNGs.
func (in *Injector) Drop() bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.dropLocked()
}

// PacketFault implements transport.FaultInjector: the full disposition of
// one outgoing datagram, combining drop-, reorder-, duplicate- and
// corrupt-class faults active this slot.
func (in *Injector) PacketFault() transport.PacketFault {
	if in == nil {
		return transport.PacketFault{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	pf := transport.PacketFault{Drop: in.dropLocked()}
	for _, rt := range in.faults {
		if !rt.f.active(in.slot) {
			continue
		}
		switch rt.f.Kind {
		case FaultReorder:
			if rt.rng.Float64() < rt.f.P {
				pf.Hold = true
			}
		case FaultDuplicate:
			if rt.rng.Float64() < rt.f.P {
				pf.Duplicate = true
			}
		case FaultCorrupt:
			if rt.rng.Float64() < rt.f.P {
				// 1..255 so the XOR always changes the byte.
				pf.CorruptXOR = byte(rt.rng.Intn(255)) + 1
				pf.CorruptPos = rt.rng.Intn(1 << 16)
			}
		}
	}
	return pf
}

// Blackout reports whether a blackout window covers the current slot. It
// consumes no randomness.
func (in *Injector) Blackout() bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, rt := range in.faults {
		if rt.f.Kind == FaultBlackout && rt.f.active(in.slot) {
			return true
		}
	}
	return false
}

// CapFactor returns the product of active bandwidth-cliff factors (1 when
// none are active). Blackouts are excluded: the live path models them as
// total loss, not as a zero-rate shaper, because a zero-rate token bucket
// would park the sender in hour-long sleeps instead of losing packets.
func (in *Injector) CapFactor() float64 {
	if in == nil {
		return 1
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	factor := 1.0
	for _, rt := range in.faults {
		if rt.f.Kind == FaultBandwidth && rt.f.active(in.slot) {
			factor *= rt.f.Factor
		}
	}
	return factor
}

// SimCapFactor is CapFactor for the virtual-time engine, where a blackout
// IS modeled as zero capacity (there is no wire to lose packets on).
func (in *Injector) SimCapFactor() float64 {
	if in == nil {
		return 1
	}
	if in.Blackout() {
		return 0
	}
	return in.CapFactor()
}

// ServerInjector evaluates the profile's server-pipeline faults
// (server-stall, slow-ack). Methods are nil-receiver-safe.
type ServerInjector struct {
	mu     sync.Mutex
	slot   int
	faults []*Fault
}

// NewServerInjector builds the server-side injector, or nil when the profile
// has no server faults.
func NewServerInjector(p *Profile) *ServerInjector {
	if p == nil {
		return nil
	}
	si := &ServerInjector{}
	for i := range p.Faults {
		f := &p.Faults[i]
		switch f.Kind {
		case FaultStall, FaultSlowACK:
			si.faults = append(si.faults, f)
		}
	}
	if len(si.faults) == 0 {
		return nil
	}
	return si
}

// Advance moves the server injector's slot clock.
func (si *ServerInjector) Advance(slot int) {
	if si == nil {
		return
	}
	si.mu.Lock()
	si.slot = slot
	si.mu.Unlock()
}

func (si *ServerInjector) sum(kind FaultKind) time.Duration {
	if si == nil {
		return 0
	}
	si.mu.Lock()
	defer si.mu.Unlock()
	var total float64
	for _, f := range si.faults {
		if f.Kind == kind && f.active(si.slot) {
			total += f.DelayMs
		}
	}
	return time.Duration(total * float64(time.Millisecond))
}

// StallFor returns how long the slot pipeline should stall this slot.
func (si *ServerInjector) StallFor() time.Duration { return si.sum(FaultStall) }

// AckDelay returns the per-message control-plane processing delay this slot.
func (si *ServerInjector) AckDelay() time.Duration { return si.sum(FaultSlowACK) }

var _ transport.FaultInjector = (*Injector)(nil)
