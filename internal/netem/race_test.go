package netem

import (
	"sync"
	"testing"
	"time"
)

// TestTokenBucketConcurrentHammer drives one bucket from many goroutines
// mixing Admit, SetRate and Rate — the access pattern of the load harness,
// where the slot scheduler retunes rates while per-session senders admit
// packets. Run under -race this is the bucket's thread-safety proof; the
// assertions only pin the invariants that survive interleaving.
func TestTokenBucketConcurrentHammer(t *testing.T) {
	start := time.Now()
	b := NewTokenBucket(50, 32<<10, start)

	const goroutines = 16
	const opsPer = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			now := start
			for i := 0; i < opsPer; i++ {
				now = now.Add(time.Duration(g+1) * time.Microsecond)
				switch i % 8 {
				case 3:
					// Rates stay positive so Admit never returns the
					// blocked-forever sentinel.
					b.SetRate(float64(10+(g+i)%90), now)
				case 5:
					if r := b.Rate(); r <= 0 {
						t.Errorf("goroutine %d: non-positive rate %v", g, r)
						return
					}
				default:
					if d := b.Admit(1200, now); d < 0 {
						t.Errorf("goroutine %d: negative delay %v", g, d)
						return
					} else if d >= time.Hour {
						t.Errorf("goroutine %d: blocked-forever delay with positive rate", g)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// The bucket must still function after the stampede.
	b.SetRate(100, start.Add(time.Minute))
	if d := b.Admit(1500, start.Add(2*time.Minute)); d != 0 {
		t.Errorf("refilled bucket should admit immediately, got %v", d)
	}
}

// TestLossModelConcurrentHammer mirrors the token-bucket hammer for the loss
// model: per-session senders call Drop per packet while the chaos scheduler
// retunes the probability each slot. Run under -race this is the model's
// thread-safety proof.
func TestLossModelConcurrentHammer(t *testing.T) {
	l := NewLossModel(0.3, 7)

	const goroutines = 16
	const opsPer = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				switch i % 8 {
				case 3:
					// Includes out-of-range inputs: SetProb clamps, so
					// Prob stays a valid probability throughout.
					l.SetProb(float64((g+i)%14)/10 - 0.2)
				case 5:
					if p := l.Prob(); p < 0 || p > 1 {
						t.Errorf("goroutine %d: probability %v outside [0, 1]", g, p)
						return
					}
				default:
					l.Drop()
				}
			}
		}(g)
	}
	wg.Wait()

	// The model must still honor the probability extremes after the stampede.
	l.SetProb(0)
	if l.Drop() {
		t.Error("p=0 model dropped a packet")
	}
	l.SetProb(1)
	if !l.Drop() {
		t.Error("p=1 model delivered a packet")
	}
}
