package netem

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestMM1DelayValues(t *testing.T) {
	tests := []struct {
		rate, cap_ float64
		want       float64
	}{
		{10, 20, 1},
		{15, 20, 3},
		{0, 20, 0},
		{-5, 20, 0},
		{20, 20, MaxDelay},
		{25, 20, MaxDelay},
		{10, 0, MaxDelay},
	}
	for _, tt := range tests {
		if got := MM1Delay(tt.rate, tt.cap_); got != tt.want {
			t.Errorf("MM1Delay(%v, %v) = %v, want %v", tt.rate, tt.cap_, got, tt.want)
		}
	}
}

// Convexity and monotonicity of d(r) for fixed capacity: the property Fig. 1b
// establishes empirically and Section II assumes.
func TestMM1DelayConvexIncreasingProperty(t *testing.T) {
	f := func(capRaw uint8, r1Raw, r2Raw, r3Raw uint16) bool {
		cap_ := 20 + float64(capRaw%80)
		// Three increasing rates strictly inside (0, cap).
		rs := []float64{
			float64(r1Raw%1000) / 1000 * cap_ * 0.9,
			float64(r2Raw%1000) / 1000 * cap_ * 0.9,
			float64(r3Raw%1000) / 1000 * cap_ * 0.9,
		}
		sort.Float64s(rs)
		lo, mid, hi := rs[0], rs[1], rs[2]
		if lo <= 0 || hi >= cap_ || lo == mid || mid == hi {
			return true
		}
		dLo, dMid, dHi := MM1Delay(lo, cap_), MM1Delay(mid, cap_), MM1Delay(hi, cap_)
		if !(dLo <= dMid && dMid <= dHi) {
			return false
		}
		// Convexity: the chord at mid lies above the curve.
		lambda := (hi - mid) / (hi - lo)
		chord := lambda*dLo + (1-lambda)*dHi
		return dMid <= chord+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestDelayTable(t *testing.T) {
	rates := []float64{5, 10, 15}
	got := DelayTable(rates, 20)
	want := []float64{5.0 / 15, 1, 3}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("DelayTable[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestQueueSimRTTGrowsConvex reproduces the Fig. 1b shape: mean RTT grows
// with the sending rate and the growth accelerates (convexity).
func TestQueueSimRTTGrowsConvex(t *testing.T) {
	q := NewQueueSim(15)
	rng := rand.New(rand.NewSource(1))
	rates := []float64{3, 6, 9, 12, 14}
	means := make([]float64, len(rates))
	for i, r := range rates {
		means[i] = q.MeanRTT(r, 40000, rng)
	}
	for i := 1; i < len(means); i++ {
		if means[i] <= means[i-1] {
			t.Fatalf("mean RTT not increasing: %v", means)
		}
	}
	// Acceleration: the last step (12->14 Mbps) dwarfs the first (3->6).
	if last, first := means[len(means)-1]-means[len(means)-2], means[1]-means[0]; last < 2*first {
		t.Errorf("RTT growth should accelerate near capacity: first step %v, last %v",
			first, last)
	}
	// The base RTT floor holds.
	for i, m := range means {
		if m < q.BaseRTTMs {
			t.Errorf("mean[%d] = %v below base RTT", i, m)
		}
	}
}

func TestQueueSimOverload(t *testing.T) {
	q := NewQueueSim(15)
	rng := rand.New(rand.NewSource(2))
	// Sending above the cap must not hang or panic; the arrival rate is
	// clamped to keep the queue marginally stable.
	samples := q.RTTSamples(50, 1000, rng)
	if len(samples) != 1000 {
		t.Fatalf("got %d samples", len(samples))
	}
}

func TestTokenBucketConformance(t *testing.T) {
	start := time.Unix(0, 0)
	b := NewTokenBucket(8 /* Mbps */, 1000, start)
	// Burst of 1000 bytes passes immediately.
	if d := b.Admit(1000, start); d != 0 {
		t.Fatalf("first packet delayed %v", d)
	}
	// Next 1000 bytes must wait ~1 ms (8000 bits at 8 Mbps).
	d := b.Admit(1000, start)
	want := time.Millisecond
	if d < want*9/10 || d > want*11/10 {
		t.Fatalf("second packet delay %v, want about %v", d, want)
	}
	// After enough wall time the bucket refills.
	later := start.Add(100 * time.Millisecond)
	if d := b.Admit(1000, later); d != 0 {
		t.Fatalf("refilled packet delayed %v", d)
	}
}

func TestTokenBucketSustainedRate(t *testing.T) {
	start := time.Unix(0, 0)
	b := NewTokenBucket(10, 1500, start)
	// Send 100 x 1250-byte packets as fast as the bucket allows and check
	// the total conformance time approximates size/rate.
	now := start
	for i := 0; i < 100; i++ {
		d := b.Admit(1250, now)
		now = now.Add(d)
	}
	totalBits := 100 * 1250 * 8.0
	wantSeconds := totalBits / (10 * 1e6)
	got := now.Sub(start).Seconds()
	if math.Abs(got-wantSeconds) > wantSeconds*0.2+0.001 {
		t.Errorf("sustained send took %v s, want about %v s", got, wantSeconds)
	}
}

func TestTokenBucketSetRate(t *testing.T) {
	start := time.Unix(0, 0)
	b := NewTokenBucket(10, 1000, start)
	b.SetRate(20, start)
	if got := b.Rate(); got != 20 {
		t.Errorf("Rate = %v, want 20", got)
	}
	// Zero rate blocks.
	b.SetRate(0, start)
	b.Admit(100000, start) // drain
	if d := b.Admit(1000, start); d < time.Minute {
		t.Errorf("zero-rate bucket should effectively block, got %v", d)
	}
}

func TestLossModel(t *testing.T) {
	none := NewLossModel(0, 1)
	for i := 0; i < 100; i++ {
		if none.Drop() {
			t.Fatal("p=0 should never drop")
		}
	}
	always := NewLossModel(1, 1)
	for i := 0; i < 100; i++ {
		if !always.Drop() {
			t.Fatal("p=1 should always drop")
		}
	}
	half := NewLossModel(0.3, 42)
	drops := 0
	for i := 0; i < 10000; i++ {
		if half.Drop() {
			drops++
		}
	}
	if rate := float64(drops) / 10000; math.Abs(rate-0.3) > 0.03 {
		t.Errorf("drop rate %v, want about 0.3", rate)
	}
}
