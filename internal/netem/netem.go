// Package netem emulates the network mechanisms the paper's evaluation
// relies on: the M/M/1 queueing-delay model of eq. (13), a discrete-event
// queue simulator that reproduces the RTT measurements of Fig. 1b, and a
// token-bucket rate limiter standing in for the Linux TC throttling of the
// real-system testbed.
package netem

import (
	"math"
	"math/rand"
	"sync"
	"time"
)

// MaxDelay caps the M/M/1 delay for loads at or beyond capacity, where the
// queue is unstable and the analytic delay diverges.
const MaxDelay = 1e3

// MM1Delay returns the paper's delivery-delay model (eq. (13)):
//
//	d_n(r) = r / (B_n - r)
//
// the mean sojourn-time scaling of an M/M/1 queue at utilization r/B. The
// result is dimensionless (multiples of the nominal service time); it is
// convex and increasing in r for fixed capacity, and capped at MaxDelay for
// r >= B.
func MM1Delay(rateMbps, capacityMbps float64) float64 {
	if capacityMbps <= 0 || rateMbps >= capacityMbps {
		return MaxDelay
	}
	if rateMbps <= 0 {
		return 0
	}
	d := rateMbps / (capacityMbps - rateMbps)
	if d > MaxDelay {
		return MaxDelay
	}
	return d
}

// DelayTable evaluates MM1Delay across a rate ladder, producing the Delay
// field of core.UserInput.
func DelayTable(rates []float64, capacityMbps float64) []float64 {
	out := make([]float64, len(rates))
	for i, r := range rates {
		out[i] = MM1Delay(r, capacityMbps)
	}
	return out
}

// DelayMs converts the dimensionless M/M/1 factor into a delivery delay in
// milliseconds: the factor scales the nominal per-slot transmission time.
// Delivering one slot's content of rate r over a link of capacity B takes
// roughly r/(B-r) slot-times of queueing-plus-transmission; at 60 FPS one
// slot-time is 16.7 ms. This is the scale at which the paper's alpha=0.02
// delay weight trades off against one quality level.
func DelayMs(rateMbps, capacityMbps, slotMs float64) float64 {
	return MM1Delay(rateMbps, capacityMbps) * slotMs
}

// DelayTableMs evaluates DelayMs across a rate ladder.
func DelayTableMs(rates []float64, capacityMbps, slotMs float64) []float64 {
	out := make([]float64, len(rates))
	for i, r := range rates {
		out[i] = DelayMs(r, capacityMbps, slotMs)
	}
	return out
}

// DelayTableMsInto is DelayTableMs writing into caller-provided out
// (len(out) must equal len(rates)); identical values, no allocation.
func DelayTableMsInto(out, rates []float64, capacityMbps, slotMs float64) {
	for i, r := range rates {
		out[i] = DelayMs(r, capacityMbps, slotMs)
	}
}

// QueueSim reproduces the Fig. 1b experiment: a link capped at a fixed
// throughput carries traffic at a chosen sending rate while RTT samples are
// collected. Waiting times follow the Lindley recursion of a single-server
// queue with Poisson arrivals and exponential service.
type QueueSim struct {
	// LinkMbps is the throughput cap (paper: 15 Mbps).
	LinkMbps float64
	// PacketBytes is the packet size used to convert rates into packet
	// processes (default 1200).
	PacketBytes int
	// BaseRTTMs is the propagation floor added to every sample (default 2).
	BaseRTTMs float64
}

// NewQueueSim returns a simulator for the given link capacity.
func NewQueueSim(linkMbps float64) *QueueSim {
	return &QueueSim{LinkMbps: linkMbps, PacketBytes: 1200, BaseRTTMs: 2}
}

// RTTSamples simulates sending at sendMbps and returns n RTT samples in
// milliseconds. The mean RTT grows convexly with the sending rate, which is
// the Fig. 1b observation that motivates the convex d_n(r) assumption.
func (q *QueueSim) RTTSamples(sendMbps float64, n int, rng *rand.Rand) []float64 {
	pktBits := float64(q.PacketBytes) * 8
	serviceRate := q.LinkMbps * 1e6 / pktBits // packets/s the link drains
	arrivalRate := sendMbps * 1e6 / pktBits   // packets/s offered
	if arrivalRate >= serviceRate {
		arrivalRate = serviceRate * 0.999 // keep the queue marginally stable
	}
	samples := make([]float64, n)
	wait := 0.0 // seconds
	for i := 0; i < n; i++ {
		interArrival := rng.ExpFloat64() / arrivalRate
		service := rng.ExpFloat64() / serviceRate
		// Lindley: waiting of this packet given the previous backlog.
		wait = math.Max(0, wait+service-interArrival)
		sojourn := wait + service
		samples[i] = q.BaseRTTMs + sojourn*1e3
	}
	return samples
}

// MeanRTT runs RTTSamples and returns the average, for sweep tables.
func (q *QueueSim) MeanRTT(sendMbps float64, n int, rng *rand.Rand) float64 {
	var sum float64
	for _, s := range q.RTTSamples(sendMbps, n, rng) {
		sum += s
	}
	return sum / float64(n)
}

// TokenBucket is a thread-safe token-bucket rate limiter, the in-process
// analogue of the Linux TC throttles the testbed applies per user and per
// router. Admission is non-blocking: Admit returns how long the caller
// should delay the packet to conform to the rate.
type TokenBucket struct {
	mu         sync.Mutex
	rateBps    float64 // tokens (bits) per second
	burstBits  float64
	tokens     float64
	lastRefill time.Time
}

// NewTokenBucket returns a bucket limiting to rateMbps with the given burst
// (in bytes; <= 0 means 64 KiB).
func NewTokenBucket(rateMbps float64, burstBytes int, now time.Time) *TokenBucket {
	if burstBytes <= 0 {
		burstBytes = 64 << 10
	}
	b := &TokenBucket{
		rateBps:    rateMbps * 1e6,
		burstBits:  float64(burstBytes) * 8,
		lastRefill: now,
	}
	b.tokens = b.burstBits
	return b
}

// SetRate changes the shaping rate (the testbed varies capacity over time).
func (b *TokenBucket) SetRate(rateMbps float64, now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refill(now)
	b.rateBps = rateMbps * 1e6
}

// Rate returns the current rate in Mbps.
func (b *TokenBucket) Rate() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rateBps / 1e6
}

// Admit charges a packet of n bytes against the bucket and returns the
// delay the packet must wait before transmission to conform to the rate
// (zero if tokens are available now).
func (b *TokenBucket) Admit(n int, now time.Time) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refill(now)
	bits := float64(n) * 8
	b.tokens -= bits
	if b.tokens >= 0 {
		return 0
	}
	if b.rateBps <= 0 {
		return time.Hour // effectively blocked
	}
	deficit := -b.tokens
	return time.Duration(deficit / b.rateBps * float64(time.Second))
}

func (b *TokenBucket) refill(now time.Time) {
	elapsed := now.Sub(b.lastRefill).Seconds()
	if elapsed <= 0 {
		return
	}
	b.lastRefill = now
	b.tokens += elapsed * b.rateBps
	if b.tokens > b.burstBits {
		b.tokens = b.burstBits
	}
}

// LossModel drops packets i.i.d. with a configurable probability, the
// packet-loss source the paper's RTP transport must tolerate. It is safe for
// concurrent use: senders call Drop per packet while a scheduler may retune
// the probability mid-run via SetProb.
type LossModel struct {
	mu   sync.Mutex
	prob float64
	rng  *rand.Rand
}

// NewLossModel returns a loss model with the given drop probability.
func NewLossModel(p float64, seed int64) *LossModel {
	return &LossModel{prob: p, rng: rand.New(rand.NewSource(seed))}
}

// SetProb changes the drop probability (values are clamped to [0, 1]).
func (l *LossModel) SetProb(p float64) {
	if p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	l.mu.Lock()
	l.prob = p
	l.mu.Unlock()
}

// Prob returns the current drop probability.
func (l *LossModel) Prob() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.prob
}

// Drop reports whether the next packet should be dropped.
func (l *LossModel) Drop() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.prob <= 0 {
		return false
	}
	return l.rng.Float64() < l.prob
}
