package transport

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/tiles"
)

// Shaper models an in-path rate limiter (the testbed's Linux-TC stand-in).
// Admit charges a packet and returns how long to hold it; Drop reports
// whether to lose it.
type Shaper interface {
	Admit(bytes int, now time.Time) time.Duration
	Drop() bool
}

// NopShaper performs no shaping and no loss.
type NopShaper struct{}

// Admit implements Shaper.
func (NopShaper) Admit(int, time.Time) time.Duration { return 0 }

// Drop implements Shaper.
func (NopShaper) Drop() bool { return false }

// ChainShaper applies several shapers in sequence (e.g. a per-user throttle
// followed by a shared router bucket); the packet waits for the slowest and
// is dropped if any stage drops it.
type ChainShaper []Shaper

// Admit implements Shaper.
func (c ChainShaper) Admit(bytes int, now time.Time) time.Duration {
	var worst time.Duration
	for _, s := range c {
		if d := s.Admit(bytes, now); d > worst {
			worst = d
		}
	}
	return worst
}

// Drop implements Shaper.
func (c ChainShaper) Drop() bool {
	for _, s := range c {
		if s.Drop() {
			return true
		}
	}
	return false
}

// Sender paces tile fragments of one user over a UDP socket, sleeping as
// the shaper dictates. It is the server-side transmit path of the RTP-like
// stream.
//
// Tiles can be sent immediately (SendTile/SendTileTraced) or staged with
// QueueTile/QueueTileTraced and transmitted together by Flush — the
// writev/sendmmsg-style batch the slot loop uses to pay one call per
// session per slot instead of one per tile. Batched or not, the wire path
// is the same code: byte-identical datagrams, identical per-packet fault
// and shaper decisions, in queue order.
type Sender struct {
	conn   net.PacketConn
	dst    net.Addr
	shaper Shaper
	mtu    int

	// sendMu serializes the wire path (fragment encode, fault/shaper
	// decisions, WriteTo) and guards the batch queue and scratch buffers.
	sendMu    sync.Mutex
	encBuf    []byte // fragment encode scratch, one MTU
	heldBuf   []byte // at most one reorder-held datagram
	batch     []queuedTile
	qPkts     int // wire packets the current batch will produce
	batchSize int // auto-flush threshold; <= 1 sends immediately

	mu        sync.Mutex
	faults    FaultInjector // nil = no fault injection
	seq       uint32
	sentPkts  int
	sentBytes int
	dropped   int

	// Optional observability counters (nil means disabled; see Instrument).
	cPackets *obs.Counter
	cBytes   *obs.Counter
	cDropped *obs.Counter
}

// queuedTile is one staged tile awaiting Flush. The payload is aliased,
// not copied: callers must keep it unmodified until the batch flushes.
type queuedTile struct {
	user    uint32
	slot    uint32
	id      tiles.VideoID
	trace   uint64
	retry   uint8
	payload []byte
}

// NewSender builds a sender toward dst. A nil shaper means no shaping.
func NewSender(conn net.PacketConn, dst net.Addr, shaper Shaper, mtu int) *Sender {
	if shaper == nil {
		shaper = NopShaper{}
	}
	if mtu <= HeaderSize {
		mtu = DefaultMTU
	}
	s := &Sender{conn: conn, dst: dst, shaper: shaper, mtu: mtu}
	// A shaper that also injects packet faults (the chaos layer's
	// per-session injectors) is picked up automatically, so the server's
	// ShaperFor plumbing carries chaos without a second hook.
	if fi, ok := shaper.(FaultInjector); ok {
		s.faults = fi
	}
	return s
}

// SetFaultInjector attaches (or clears) a packet-fault source explicitly,
// overriding the one inferred from the shaper. Call before the first
// SendTile.
func (s *Sender) SetFaultInjector(fi FaultInjector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults = fi
}

// Instrument attaches shared observability counters for transmitted packets,
// transmitted bytes and shaper drops. Nil counters are allowed (and free):
// they make the corresponding event unobserved. Call before the first
// SendTile.
func (s *Sender) Instrument(packets, bytes, dropped *obs.Counter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cPackets, s.cBytes, s.cDropped = packets, bytes, dropped
}

// SendTile fragments and transmits one tile for a slot, pacing against the
// shaper. It blocks until the last fragment conforms.
func (s *Sender) SendTile(user, slot uint32, id tiles.VideoID, payload []byte) error {
	return s.SendTileTraced(user, slot, id, payload, 0, 0)
}

// SendTileTraced is SendTile with a trace ID and retransmission count
// stamped into every fragment header, so the receiver can stitch its half of
// the request onto the sender's trace and attribute retransmissions. Any
// queued batch is flushed first, so queue-then-send keeps wire order.
func (s *Sender) SendTileTraced(user, slot uint32, id tiles.VideoID, payload []byte, traceID uint64, retry uint8) error {
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	if err := s.flushLocked(); err != nil {
		return err
	}
	return s.sendTileLocked(user, slot, id, payload, traceID, retry)
}

// SetBatchSize sets the number of wire packets QueueTile* stages before
// flushing automatically. size <= 1 disables staging: queued tiles are
// sent immediately, making QueueTile byte-equivalent to SendTile call for
// call. Lowering the size does not flush an already-staged batch.
func (s *Sender) SetBatchSize(size int) {
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	s.batchSize = size
}

// QueueTile stages one tile for the next Flush (or sends it immediately
// when batching is off); see QueueTileTraced.
func (s *Sender) QueueTile(user, slot uint32, id tiles.VideoID, payload []byte) error {
	return s.QueueTileTraced(user, slot, id, payload, 0, 0)
}

// QueueTileTraced stages one tile for the next Flush. The payload is
// aliased until the batch flushes — callers must not recycle it earlier.
// When staging pushes the batch past BatchSize wire packets the batch is
// flushed inline and any transmit error is returned (errors never detach
// from the tile sequence: a returned nil means everything staged so far is
// either queued or on the wire).
func (s *Sender) QueueTileTraced(user, slot uint32, id tiles.VideoID, payload []byte, traceID uint64, retry uint8) error {
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	if s.batchSize <= 1 {
		if err := s.flushLocked(); err != nil {
			return err
		}
		return s.sendTileLocked(user, slot, id, payload, traceID, retry)
	}
	s.batch = append(s.batch, queuedTile{
		user: user, slot: slot, id: id,
		trace: traceID, retry: retry, payload: payload,
	})
	s.qPkts += packetCount(len(payload), s.mtu)
	if s.qPkts >= s.batchSize {
		return s.flushLocked()
	}
	return nil
}

// Flush transmits every staged tile in queue order — the slot-boundary
// flush of the batched send path. On a transmit error the already-sent
// prefix stays on the wire, the remaining tiles are discarded (a lost
// datagram and a lost batch tail look the same to the receiver: NACK and
// retransmit), the batch is cleared and the error is returned.
func (s *Sender) Flush() error {
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	return s.flushLocked()
}

// Queued reports the staged batch: tiles and the wire packets they will
// produce.
func (s *Sender) Queued() (tilesQueued, packets int) {
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	return len(s.batch), s.qPkts
}

func (s *Sender) flushLocked() error {
	if len(s.batch) == 0 {
		s.qPkts = 0
		return nil
	}
	var err error
	sent := 0
	for i := range s.batch {
		qt := &s.batch[i]
		if err = s.sendTileLocked(qt.user, qt.slot, qt.id, qt.payload, qt.trace, qt.retry); err != nil {
			break
		}
		sent++
	}
	// Zero the staged entries so the reusable batch buffer does not retain
	// payload memory across slots.
	for i := range s.batch {
		s.batch[i] = queuedTile{}
	}
	s.batch = s.batch[:0]
	s.qPkts = 0
	if err != nil {
		return fmt.Errorf("transport: flush stopped after %d tiles: %w", sent, err)
	}
	return nil
}

// packetCount mirrors Fragment's fragment arithmetic (zero-length tiles
// still cost one packet; oversized tiles truncate at 0xFFFF fragments).
func packetCount(payloadLen, mtu int) int {
	if mtu <= HeaderSize {
		mtu = DefaultMTU
	}
	chunk := mtu - HeaderSize
	count := (payloadLen + chunk - 1) / chunk
	if count == 0 {
		count = 1
	}
	if count > 0xFFFF {
		count = 0xFFFF
	}
	return count
}

// sendTileLocked is the wire path: fragment, inject faults, shape, write.
// It walks the fragments in place on the sender's encode scratch — no
// per-tile packet slice, no per-call buffer — producing exactly the
// datagram bytes, order and per-packet fault decisions of the historical
// Fragment-then-send loop. Callers hold sendMu.
func (s *Sender) sendTileLocked(user, slot uint32, id tiles.VideoID, payload []byte, traceID uint64, retry uint8) error {
	mtu := s.mtu
	if mtu <= HeaderSize {
		mtu = DefaultMTU
	}
	chunk := mtu - HeaderSize
	count := packetCount(len(payload), mtu)

	s.mu.Lock()
	seq := s.seq
	s.seq += uint32(count)
	cPackets, cBytes, cDropped := s.cPackets, s.cBytes, s.cDropped
	faults := s.faults
	s.mu.Unlock()

	// Pacing sleeps are batched: token-bucket debt below sleepQuantum is
	// carried instead of slept, so the OS sleep overshoot (tens of
	// microseconds per wakeup) is amortized over several packets and the
	// achieved rate stays close to the shaped rate.
	const sleepQuantum = time.Millisecond

	if cap(s.encBuf) < mtu {
		s.encBuf = make([]byte, mtu)
	}
	emit := func(wire []byte) error {
		if d := s.shaper.Admit(len(wire), time.Now()); d >= sleepQuantum {
			time.Sleep(d)
		}
		if _, err := s.conn.WriteTo(wire, s.dst); err != nil {
			return fmt.Errorf("transport: send fragment: %w", err)
		}
		s.mu.Lock()
		s.sentPkts++
		s.sentBytes += len(wire)
		s.mu.Unlock()
		cPackets.Inc()
		cBytes.Add(uint64(len(wire)))
		return nil
	}
	// heldBuf carries at most one datagram the injector ordered behind its
	// successor — real on-the-wire reordering, not just added latency.
	haveHeld := false
	for i := 0; i < count; i++ {
		lo := i * chunk
		hi := lo + chunk
		if hi > len(payload) {
			hi = len(payload)
		}
		p := Packet{
			Type:      PacketTile,
			User:      user,
			Slot:      slot,
			VideoID:   id,
			FragIdx:   uint16(i),
			FragCount: uint16(count),
			Seq:       seq + uint32(i),
			Retry:     retry,
			Trace:     traceID,
			Payload:   payload[lo:hi],
		}
		wire := p.Encode(s.encBuf)
		var f PacketFault
		if faults != nil {
			f = faults.PacketFault()
		}
		if f.Drop || s.shaper.Drop() {
			s.mu.Lock()
			s.dropped++
			s.mu.Unlock()
			cDropped.Inc()
			continue
		}
		if f.CorruptXOR != 0 && len(wire) > 0 {
			pos := f.CorruptPos % len(wire)
			if pos < 0 {
				pos += len(wire)
			}
			wire[pos] ^= f.CorruptXOR
		}
		if f.Hold && !haveHeld {
			s.heldBuf = append(s.heldBuf[:0], wire...)
			haveHeld = true
			continue
		}
		if err := emit(wire); err != nil {
			return err
		}
		if f.Duplicate {
			if err := emit(wire); err != nil {
				return err
			}
		}
		if haveHeld {
			if err := emit(s.heldBuf); err != nil {
				return err
			}
			haveHeld = false
		}
	}
	if haveHeld {
		if err := emit(s.heldBuf); err != nil {
			return err
		}
	}
	return nil
}

// Stats returns cumulative transmit counters.
func (s *Sender) Stats() (packets, bytes, dropped int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sentPkts, s.sentBytes, s.dropped
}

var (
	_ Shaper = NopShaper{}
	_ Shaper = ChainShaper(nil)
)
