package transport

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/tiles"
)

// Shaper models an in-path rate limiter (the testbed's Linux-TC stand-in).
// Admit charges a packet and returns how long to hold it; Drop reports
// whether to lose it.
type Shaper interface {
	Admit(bytes int, now time.Time) time.Duration
	Drop() bool
}

// NopShaper performs no shaping and no loss.
type NopShaper struct{}

// Admit implements Shaper.
func (NopShaper) Admit(int, time.Time) time.Duration { return 0 }

// Drop implements Shaper.
func (NopShaper) Drop() bool { return false }

// ChainShaper applies several shapers in sequence (e.g. a per-user throttle
// followed by a shared router bucket); the packet waits for the slowest and
// is dropped if any stage drops it.
type ChainShaper []Shaper

// Admit implements Shaper.
func (c ChainShaper) Admit(bytes int, now time.Time) time.Duration {
	var worst time.Duration
	for _, s := range c {
		if d := s.Admit(bytes, now); d > worst {
			worst = d
		}
	}
	return worst
}

// Drop implements Shaper.
func (c ChainShaper) Drop() bool {
	for _, s := range c {
		if s.Drop() {
			return true
		}
	}
	return false
}

// Sender paces tile fragments of one user over a UDP socket, sleeping as
// the shaper dictates. It is the server-side transmit path of the RTP-like
// stream.
type Sender struct {
	conn   net.PacketConn
	dst    net.Addr
	shaper Shaper
	faults FaultInjector // nil = no fault injection
	mtu    int

	mu        sync.Mutex
	seq       uint32
	sentPkts  int
	sentBytes int
	dropped   int

	// Optional observability counters (nil means disabled; see Instrument).
	cPackets *obs.Counter
	cBytes   *obs.Counter
	cDropped *obs.Counter
}

// NewSender builds a sender toward dst. A nil shaper means no shaping.
func NewSender(conn net.PacketConn, dst net.Addr, shaper Shaper, mtu int) *Sender {
	if shaper == nil {
		shaper = NopShaper{}
	}
	if mtu <= HeaderSize {
		mtu = DefaultMTU
	}
	s := &Sender{conn: conn, dst: dst, shaper: shaper, mtu: mtu}
	// A shaper that also injects packet faults (the chaos layer's
	// per-session injectors) is picked up automatically, so the server's
	// ShaperFor plumbing carries chaos without a second hook.
	if fi, ok := shaper.(FaultInjector); ok {
		s.faults = fi
	}
	return s
}

// SetFaultInjector attaches (or clears) a packet-fault source explicitly,
// overriding the one inferred from the shaper. Call before the first
// SendTile.
func (s *Sender) SetFaultInjector(fi FaultInjector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults = fi
}

// Instrument attaches shared observability counters for transmitted packets,
// transmitted bytes and shaper drops. Nil counters are allowed (and free):
// they make the corresponding event unobserved. Call before the first
// SendTile.
func (s *Sender) Instrument(packets, bytes, dropped *obs.Counter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cPackets, s.cBytes, s.cDropped = packets, bytes, dropped
}

// SendTile fragments and transmits one tile for a slot, pacing against the
// shaper. It blocks until the last fragment conforms.
func (s *Sender) SendTile(user, slot uint32, id tiles.VideoID, payload []byte) error {
	return s.SendTileTraced(user, slot, id, payload, 0, 0)
}

// SendTileTraced is SendTile with a trace ID and retransmission count
// stamped into every fragment header, so the receiver can stitch its half of
// the request onto the sender's trace and attribute retransmissions.
func (s *Sender) SendTileTraced(user, slot uint32, id tiles.VideoID, payload []byte, traceID uint64, retry uint8) error {
	s.mu.Lock()
	seq := s.seq
	packets := Fragment(user, slot, id, payload, s.mtu, seq)
	s.seq += uint32(len(packets))
	cPackets, cBytes, cDropped := s.cPackets, s.cBytes, s.cDropped
	faults := s.faults
	s.mu.Unlock()
	for _, p := range packets {
		p.Trace = traceID
		p.Retry = retry
	}

	// Pacing sleeps are batched: token-bucket debt below sleepQuantum is
	// carried instead of slept, so the OS sleep overshoot (tens of
	// microseconds per wakeup) is amortized over several packets and the
	// achieved rate stays close to the shaped rate.
	const sleepQuantum = time.Millisecond

	buf := make([]byte, s.mtu)
	emit := func(wire []byte) error {
		if d := s.shaper.Admit(len(wire), time.Now()); d >= sleepQuantum {
			time.Sleep(d)
		}
		if _, err := s.conn.WriteTo(wire, s.dst); err != nil {
			return fmt.Errorf("transport: send fragment: %w", err)
		}
		s.mu.Lock()
		s.sentPkts++
		s.sentBytes += len(wire)
		s.mu.Unlock()
		cPackets.Inc()
		cBytes.Add(uint64(len(wire)))
		return nil
	}
	// held carries at most one datagram the injector ordered behind its
	// successor — real on-the-wire reordering, not just added latency.
	var held []byte
	for _, p := range packets {
		wire := p.Encode(buf)
		var f PacketFault
		if faults != nil {
			f = faults.PacketFault()
		}
		if f.Drop || s.shaper.Drop() {
			s.mu.Lock()
			s.dropped++
			s.mu.Unlock()
			cDropped.Inc()
			continue
		}
		if f.CorruptXOR != 0 && len(wire) > 0 {
			pos := f.CorruptPos % len(wire)
			if pos < 0 {
				pos += len(wire)
			}
			wire[pos] ^= f.CorruptXOR
		}
		if f.Hold && held == nil {
			held = append(held, wire...)
			continue
		}
		if err := emit(wire); err != nil {
			return err
		}
		if f.Duplicate {
			if err := emit(wire); err != nil {
				return err
			}
		}
		if held != nil {
			if err := emit(held); err != nil {
				return err
			}
			held = nil
		}
	}
	if held != nil {
		if err := emit(held); err != nil {
			return err
		}
	}
	return nil
}

// Stats returns cumulative transmit counters.
func (s *Sender) Stats() (packets, bytes, dropped int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sentPkts, s.sentBytes, s.dropped
}

var (
	_ Shaper = NopShaper{}
	_ Shaper = ChainShaper(nil)
)
