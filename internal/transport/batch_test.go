package transport

// Tests for the batched send path: staging via QueueTile*, slot-boundary
// Flush, BatchSize auto-flush, partial-batch error behavior, per-packet
// chaos inside a batch, and — the core contract — byte-identical wire
// output versus unbatched sends under identical fault scripts.

import (
	"bytes"
	"errors"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/tiles"
)

// memConn is an in-memory PacketConn recording every datagram, optionally
// failing all writes from the failAfter-th on (failAfter < 0 never fails).
type memConn struct {
	mu        sync.Mutex
	writes    [][]byte
	failAfter int
}

var errInjectedWrite = errors.New("memConn: injected write failure")

func newMemConn() *memConn { return &memConn{failAfter: -1} }

func (c *memConn) WriteTo(b []byte, _ net.Addr) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failAfter >= 0 && len(c.writes) >= c.failAfter {
		return 0, errInjectedWrite
	}
	c.writes = append(c.writes, append([]byte(nil), b...))
	return len(b), nil
}

func (c *memConn) snapshot() [][]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([][]byte(nil), c.writes...)
}

func (c *memConn) ReadFrom(b []byte) (int, net.Addr, error) {
	return 0, nil, errors.New("memConn: read not supported")
}
func (c *memConn) Close() error                     { return nil }
func (c *memConn) LocalAddr() net.Addr              { return &net.UDPAddr{} }
func (c *memConn) SetDeadline(time.Time) error      { return nil }
func (c *memConn) SetReadDeadline(time.Time) error  { return nil }
func (c *memConn) SetWriteDeadline(time.Time) error { return nil }

// discardConn accepts and forgets datagrams without allocating: the sink
// for allocation regression tests.
type discardConn struct{ memConn }

func (c *discardConn) WriteTo(b []byte, _ net.Addr) (int, error) { return len(b), nil }

// scriptInjector replays a fixed fault script, one entry per datagram;
// exhausted scripts deliver normally.
type scriptInjector struct {
	faults []PacketFault
	next   int
}

func (s *scriptInjector) PacketFault() PacketFault {
	if s.next >= len(s.faults) {
		return PacketFault{}
	}
	f := s.faults[s.next]
	s.next++
	return f
}

// batchPayloads is a deterministic mixed workload: empty, sub-MTU and
// multi-fragment tiles.
func batchPayloads(rng *rand.Rand) [][]byte {
	sizes := []int{0, 17, 300, 1111, 2500, 64, 4093, 1}
	out := make([][]byte, len(sizes))
	for i, n := range sizes {
		out[i] = make([]byte, n)
		rng.Read(out[i])
	}
	return out
}

// chaosScript builds a fault script covering drop, corrupt, hold and
// duplicate across the workload's packets.
func chaosScript(rng *rand.Rand, n int) []PacketFault {
	faults := make([]PacketFault, n)
	for i := range faults {
		switch rng.Intn(6) {
		case 0:
			faults[i].Drop = true
		case 1:
			faults[i].Duplicate = true
		case 2:
			faults[i].Hold = true
		case 3:
			faults[i].CorruptXOR = byte(1 + rng.Intn(255))
			faults[i].CorruptPos = rng.Intn(4096) - 2048
		}
	}
	return faults
}

// TestBatchedWireIdentical sends the same workload unbatched and batched
// under identical fault scripts and asserts the wire is byte-identical:
// same datagrams, same order, same drop decisions.
func TestBatchedWireIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	payloads := batchPayloads(rng)
	script := chaosScript(rng, 64)

	run := func(batch int) ([][]byte, int) {
		conn := newMemConn()
		s := NewSender(conn, conn.LocalAddr(), nil, 500)
		s.SetFaultInjector(&scriptInjector{faults: append([]PacketFault(nil), script...)})
		s.SetBatchSize(batch)
		for i, pl := range payloads {
			var err error
			if batch > 1 {
				err = s.QueueTileTraced(7, uint32(i), tiles.VideoID(i), pl, uint64(1000+i), uint8(i%3))
			} else {
				err = s.SendTileTraced(7, uint32(i), tiles.VideoID(i), pl, uint64(1000+i), uint8(i%3))
			}
			if err != nil {
				t.Fatalf("send tile %d (batch=%d): %v", i, batch, err)
			}
		}
		if err := s.Flush(); err != nil {
			t.Fatalf("flush (batch=%d): %v", batch, err)
		}
		_, _, dropped := s.Stats()
		return conn.snapshot(), dropped
	}

	plain, droppedPlain := run(0)
	batched, droppedBatched := run(1 << 20) // stage everything, flush once
	if droppedPlain != droppedBatched {
		t.Fatalf("drop counts differ: unbatched %d, batched %d", droppedPlain, droppedBatched)
	}
	if len(plain) != len(batched) {
		t.Fatalf("datagram counts differ: unbatched %d, batched %d", len(plain), len(batched))
	}
	for i := range plain {
		if !bytes.Equal(plain[i], batched[i]) {
			t.Fatalf("datagram %d differs between unbatched and batched send", i)
		}
	}
	if len(plain) == 0 {
		t.Fatal("workload produced no datagrams")
	}
}

// TestFlushOnSlotBoundary: staged tiles stay off the wire until Flush,
// then transmit in queue order with a continuous sequence space.
func TestFlushOnSlotBoundary(t *testing.T) {
	conn := newMemConn()
	s := NewSender(conn, conn.LocalAddr(), nil, DefaultMTU)
	s.SetBatchSize(1 << 20)

	for i := 0; i < 3; i++ {
		if err := s.QueueTile(1, 42, tiles.VideoID(i), []byte{byte(i)}); err != nil {
			t.Fatalf("queue: %v", err)
		}
	}
	if got := len(conn.snapshot()); got != 0 {
		t.Fatalf("%d datagrams on the wire before Flush", got)
	}
	if tilesQ, pkts := s.Queued(); tilesQ != 3 || pkts != 3 {
		t.Fatalf("Queued() = (%d, %d), want (3, 3)", tilesQ, pkts)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	writes := conn.snapshot()
	if len(writes) != 3 {
		t.Fatalf("flush wrote %d datagrams, want 3", len(writes))
	}
	for i, w := range writes {
		p, err := Decode(w)
		if err != nil {
			t.Fatalf("datagram %d: %v", i, err)
		}
		if p.Seq != uint32(i) || p.VideoID != tiles.VideoID(i) || p.Slot != 42 {
			t.Fatalf("datagram %d out of order: seq %d video %d slot %d", i, p.Seq, p.VideoID, p.Slot)
		}
	}
	if tilesQ, pkts := s.Queued(); tilesQ != 0 || pkts != 0 {
		t.Fatalf("batch not cleared after Flush: (%d, %d)", tilesQ, pkts)
	}
}

// TestBatchAutoFlush: staging past BatchSize wire packets flushes inline.
func TestBatchAutoFlush(t *testing.T) {
	conn := newMemConn()
	s := NewSender(conn, conn.LocalAddr(), nil, DefaultMTU)
	s.SetBatchSize(4)

	payload := make([]byte, 2*(DefaultMTU-HeaderSize)) // 2 packets per tile
	if err := s.QueueTile(1, 1, 1, payload); err != nil {
		t.Fatal(err)
	}
	if got := len(conn.snapshot()); got != 0 {
		t.Fatalf("auto-flushed too early: %d datagrams", got)
	}
	if err := s.QueueTile(1, 1, 2, payload); err != nil {
		t.Fatal(err)
	}
	if got := len(conn.snapshot()); got != 4 {
		t.Fatalf("auto-flush at BatchSize wrote %d datagrams, want 4", got)
	}
	if tilesQ, _ := s.Queued(); tilesQ != 0 {
		t.Fatalf("%d tiles still queued after auto-flush", tilesQ)
	}
}

// TestBatchDisabledSendsImmediately: BatchSize <= 1 makes QueueTile a
// plain SendTile.
func TestBatchDisabledSendsImmediately(t *testing.T) {
	for _, size := range []int{0, 1, -5} {
		conn := newMemConn()
		s := NewSender(conn, conn.LocalAddr(), nil, DefaultMTU)
		s.SetBatchSize(size)
		if err := s.QueueTile(1, 1, 1, []byte("x")); err != nil {
			t.Fatal(err)
		}
		if got := len(conn.snapshot()); got != 1 {
			t.Fatalf("BatchSize=%d: QueueTile wrote %d datagrams, want 1", size, got)
		}
	}
}

// TestPartialBatchFlushOnError: a mid-batch write failure keeps the sent
// prefix on the wire, discards the tail, clears the batch and surfaces the
// error; the sender keeps working afterwards.
func TestPartialBatchFlushOnError(t *testing.T) {
	conn := newMemConn()
	conn.failAfter = 2
	s := NewSender(conn, conn.LocalAddr(), nil, DefaultMTU)
	s.SetBatchSize(1 << 20)

	for i := 0; i < 5; i++ {
		if err := s.QueueTile(1, 9, tiles.VideoID(i), []byte{byte(i)}); err != nil {
			t.Fatalf("queue %d: %v", i, err)
		}
	}
	err := s.Flush()
	if !errors.Is(err, errInjectedWrite) {
		t.Fatalf("Flush error = %v, want wrapped %v", err, errInjectedWrite)
	}
	if got := len(conn.snapshot()); got != 2 {
		t.Fatalf("prefix on the wire is %d datagrams, want 2", got)
	}
	if tilesQ, pkts := s.Queued(); tilesQ != 0 || pkts != 0 {
		t.Fatalf("failed batch not cleared: (%d, %d)", tilesQ, pkts)
	}

	// The conn recovers; the sender must too, with a fresh batch.
	conn.failAfter = -1
	if err := s.QueueTile(1, 10, 7, []byte("after")); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("flush after recovery: %v", err)
	}
	writes := conn.snapshot()
	last, err := Decode(writes[len(writes)-1])
	if err != nil {
		t.Fatal(err)
	}
	if last.Slot != 10 || string(last.Payload) != "after" {
		t.Fatalf("post-recovery datagram wrong: slot %d payload %q", last.Slot, last.Payload)
	}
}

// TestChaosDropsPerPacketInsideBatch: the injector is consulted for every
// datagram of a flushed batch individually; a mid-batch drop loses exactly
// that packet while its sequence number stays burned.
func TestChaosDropsPerPacketInsideBatch(t *testing.T) {
	conn := newMemConn()
	s := NewSender(conn, conn.LocalAddr(), nil, DefaultMTU)
	s.SetFaultInjector(&scriptInjector{faults: []PacketFault{
		{}, {Drop: true}, {}, {},
	}})
	s.SetBatchSize(1 << 20)
	for i := 0; i < 4; i++ {
		if err := s.QueueTile(1, 5, tiles.VideoID(i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	writes := conn.snapshot()
	if len(writes) != 3 {
		t.Fatalf("%d datagrams survived, want 3", len(writes))
	}
	var seqs []uint32
	for _, w := range writes {
		p, err := Decode(w)
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, p.Seq)
	}
	want := []uint32{0, 2, 3} // seq 1 dropped inside the batch
	for i := range want {
		if seqs[i] != want[i] {
			t.Fatalf("surviving seqs %v, want %v", seqs, want)
		}
	}
	if _, _, dropped := s.Stats(); dropped != 1 {
		t.Fatalf("dropped counter = %d, want 1", dropped)
	}
}

// TestBatchedSendAllocs: the steady-state queue+flush cycle is
// allocation-free once scratch has grown.
func TestBatchedSendAllocs(t *testing.T) {
	conn := &discardConn{}
	s := NewSender(conn, conn.LocalAddr(), nil, DefaultMTU)
	s.SetBatchSize(32)
	payload := make([]byte, 3000)

	cycle := func() {
		for i := 0; i < 4; i++ {
			if err := s.QueueTile(1, 1, tiles.VideoID(i), payload); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		cycle() // grow encode scratch and batch buffer
	}
	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Fatalf("steady-state queue+flush allocates %v/op, want 0", allocs)
	}
}
