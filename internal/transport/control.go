package transport

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/tiles"
	"repro/internal/vrmath"
)

// Control messages travel over the TCP side channel. Exactly one concrete
// type is wrapped per frame.
type (
	// Hello is the client's first message: who it is, where its UDP data
	// socket listens, and how many tiles its RAM holds before releasing.
	Hello struct {
		User         uint32
		UDPAddr      string
		RAMThreshold int
	}

	// Welcome is the server's handshake acknowledgement: the session was
	// admitted. A server under backpressure (session limit reached) closes
	// the connection without sending it, so clients can distinguish
	// rejection from network failure and measure setup latency precisely.
	Welcome struct {
		User uint32
		// Resumed reports that the server adopted handed-off session state
		// for this user (fleet live migration): the QoE history and
		// estimators continue instead of starting cold.
		Resumed bool
		// Shard identifies the fleet shard that admitted the session
		// (0 for a standalone server).
		Shard int
	}

	// PoseUpdate uploads the user's 6-DoF pose for a slot ("Users will
	// replay real users' motion traces and upload the trace to the server
	// through TCP periodically").
	PoseUpdate struct {
		User uint32
		Slot uint32
		Pose vrmath.Pose
	}

	// TileACK acknowledges the tiles fully received in a slot and carries
	// the client-side delay measurement (first-to-last packet duration)
	// plus the byte count the server's EMA throughput estimator consumes.
	TileACK struct {
		User    uint32
		Slot    uint32
		Tiles   []tiles.VideoID
		DelayMs float64
		Bytes   int
		// Covered reports whether the delivered portion covered the actual
		// FoV at display time — the client-observed 1_n(t).
		Covered bool
		// Displayed reports whether the slot's frame was decoded and shown
		// by its deadline (FPS accounting).
		Displayed bool
	}

	// Release tells the server which tiles the client evicted from RAM, so
	// they may be retransmitted later ("the user also sends ACKs to let the
	// server know when the tiles are released").
	Release struct {
		User  uint32
		Tiles []tiles.VideoID
	}

	// Nack reports tiles whose fragments were lost in a slot so the server
	// can retransmit them — the loss-handling extension the paper's
	// Discussion section proposes ("we believe it can be further improved
	// by accounting for such information").
	Nack struct {
		User  uint32
		Slot  uint32
		Tiles []tiles.VideoID
	}
)

func init() {
	gob.Register(Hello{})
	gob.Register(Welcome{})
	gob.Register(PoseUpdate{})
	gob.Register(TileACK{})
	gob.Register(Release{})
	gob.Register(Nack{})
}

// envelope is the frame wrapper gob encodes.
type envelope struct {
	Msg any
}

// Conn is a control-channel connection: gob frames over TCP, safe for one
// concurrent sender and one concurrent receiver.
type Conn struct {
	raw net.Conn
	enc *gob.Encoder
	dec *gob.Decoder

	sendMu sync.Mutex
}

// NewConn wraps an established TCP connection.
func NewConn(raw net.Conn) *Conn {
	return &Conn{raw: raw, enc: gob.NewEncoder(raw), dec: gob.NewDecoder(raw)}
}

// Send writes one control message.
func (c *Conn) Send(msg any) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if err := c.enc.Encode(envelope{Msg: msg}); err != nil {
		return fmt.Errorf("transport: send control: %w", err)
	}
	return nil
}

// Recv reads the next control message, blocking until one arrives or the
// connection fails.
func (c *Conn) Recv() (any, error) {
	var env envelope
	if err := c.dec.Decode(&env); err != nil {
		return nil, fmt.Errorf("transport: recv control: %w", err)
	}
	return env.Msg, nil
}

// SetDeadline bounds both directions.
func (c *Conn) SetDeadline(t time.Time) error { return c.raw.SetDeadline(t) }

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.raw.Close() }

// RemoteAddr exposes the peer address.
func (c *Conn) RemoteAddr() net.Addr { return c.raw.RemoteAddr() }
