package transport

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/tiles"
)

// Property: for any payload and MTU, fragmenting and reassembling in any
// delivery order reproduces the payload exactly.
func TestFragmentReassembleRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	f := func(size uint16, mtuRaw uint16, seed int64) bool {
		payload := make([]byte, int(size)%8192)
		rand.New(rand.NewSource(seed)).Read(payload)
		mtu := HeaderSize + 1 + int(mtuRaw)%2000
		id, err := tiles.PackVideoID(tiles.CellID{X: 1, Z: 2}, 1, 3)
		if err != nil {
			return false
		}
		packets := Fragment(1, 9, id, payload, mtu, 0)

		// Shuffle delivery order.
		order := rng.Perm(len(packets))
		r := NewReassembler()
		now := time.Unix(0, 0)
		for _, i := range order {
			// Encode/decode round trip as the wire would.
			wire := packets[i].Encode(nil)
			p, err := Decode(wire)
			if err != nil {
				return false
			}
			r.Ingest(p, now)
		}
		done := r.Flush()
		if len(done) != 1 {
			return false
		}
		return bytes.Equal(done[0].Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: losing any single fragment of a multi-fragment tile prevents
// completion and leaves the tile listed as incomplete.
func TestSingleLossPreventsCompletionProperty(t *testing.T) {
	f := func(size uint16, lostRaw uint8) bool {
		payload := make([]byte, 2000+int(size)%4000)
		id, err := tiles.PackVideoID(tiles.CellID{X: 3, Z: 4}, 2, 2)
		if err != nil {
			return false
		}
		packets := Fragment(2, 4, id, payload, 600, 0)
		if len(packets) < 2 {
			return true
		}
		lost := int(lostRaw) % len(packets)
		r := NewReassembler()
		now := time.Unix(0, 0)
		for i, p := range packets {
			if i == lost {
				continue
			}
			r.Ingest(p, now)
		}
		if len(r.Flush()) != 0 {
			return false
		}
		inc := r.Incomplete(4)
		return len(inc) == 1 && inc[0] == id
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestIncompleteEmptyForCompleteSlot(t *testing.T) {
	id, err := tiles.PackVideoID(tiles.CellID{}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReassembler()
	for _, p := range Fragment(1, 7, id, make([]byte, 1500), 600, 0) {
		r.Ingest(p, time.Now())
	}
	if inc := r.Incomplete(7); len(inc) != 0 {
		t.Errorf("complete slot reports incomplete tiles: %v", inc)
	}
	if inc := r.Incomplete(8); len(inc) != 0 {
		t.Errorf("unknown slot reports incomplete tiles: %v", inc)
	}
}

// Property: packet headers survive an encode/decode round trip bit-exactly
// for arbitrary field values.
func TestHeaderRoundTripProperty(t *testing.T) {
	f := func(user, slot, seq uint32, vid uint64, fragIdx, fragCount uint16, payloadLen uint8) bool {
		p := &Packet{
			Type:      PacketTile,
			User:      user,
			Slot:      slot,
			VideoID:   tiles.VideoID(vid),
			FragIdx:   fragIdx,
			FragCount: fragCount,
			Seq:       seq,
			Payload:   make([]byte, payloadLen),
		}
		got, err := Decode(p.Encode(nil))
		if err != nil {
			return false
		}
		return got.User == p.User && got.Slot == p.Slot && got.Seq == p.Seq &&
			got.VideoID == p.VideoID && got.FragIdx == p.FragIdx &&
			got.FragCount == p.FragCount && len(got.Payload) == len(p.Payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
