package transport

import (
	"net"
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/obs"
)

// lossyShaper adapts a netem loss model to the Shaper interface (the same
// adaptation the testbed uses for its Linux-TC stand-in).
type lossyShaper struct{ l *netem.LossModel }

func (s lossyShaper) Admit(int, time.Time) time.Duration { return 0 }
func (s lossyShaper) Drop() bool                         { return s.l.Drop() }

func TestSenderCountersUnderInjectedLoss(t *testing.T) {
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	sink, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	reg := obs.NewRegistry()
	pkts := reg.Counter("tx_packets_total")
	bytes_ := reg.Counter("tx_bytes_total")
	dropped := reg.Counter("tx_dropped_total")

	s := NewSender(conn, sink.LocalAddr(), lossyShaper{netem.NewLossModel(0.5, 42)}, 400)
	s.Instrument(pkts, bytes_, dropped)

	id := testVideoID(t)
	payload := make([]byte, 8000) // ~25 fragments at MTU 400
	for slot := 0; slot < 8; slot++ {
		if err := s.SendTile(9, uint32(slot), id, payload); err != nil {
			t.Fatal(err)
		}
	}

	gotPkts, gotBytes, gotDropped := s.Stats()
	if gotPkts == 0 || gotDropped == 0 {
		t.Fatalf("loss injection ineffective: sent=%d dropped=%d", gotPkts, gotDropped)
	}
	// The registry counters must agree exactly with the Stats() ledger.
	if pkts.Value() != uint64(gotPkts) {
		t.Errorf("packet counter = %d, Stats = %d", pkts.Value(), gotPkts)
	}
	if bytes_.Value() != uint64(gotBytes) {
		t.Errorf("byte counter = %d, Stats = %d", bytes_.Value(), gotBytes)
	}
	if dropped.Value() != uint64(gotDropped) {
		t.Errorf("dropped counter = %d, Stats = %d", dropped.Value(), gotDropped)
	}
}

func TestReassemblerCountersForDuplicatesAndDrops(t *testing.T) {
	reg := obs.NewRegistry()
	dups := reg.Counter("rx_duplicate_fragments_total")
	drops := reg.Counter("rx_incomplete_tiles_dropped_total")

	r := NewReassembler()
	r.Instrument(dups, drops)

	id := testVideoID(t)
	payload := make([]byte, 3000)
	packets := Fragment(1, 0, id, payload, 1200, 0)
	if len(packets) < 3 {
		t.Fatalf("want >= 3 fragments, got %d", len(packets))
	}
	now := time.Now()

	// Deliver the first fragment twice: the second ingest is a duplicate.
	r.Ingest(packets[0], now)
	r.Ingest(packets[0], now)
	if dups.Value() != 1 {
		t.Errorf("duplicate counter = %d, want 1", dups.Value())
	}

	// Never deliver the final fragment: flushing the slot drops the
	// incomplete tile (the client's display-or-drop rule).
	r.Ingest(packets[1], now)
	if _, ok := r.FlushSlot(0); !ok {
		t.Fatal("slot saw packets but FlushSlot reported none")
	}
	if drops.Value() != 1 {
		t.Errorf("incomplete-drop counter = %d, want 1", drops.Value())
	}
	if r.PendingTiles() != 0 {
		t.Errorf("pending tiles after flush = %d", r.PendingTiles())
	}
}
