package transport

import (
	"net"
	"testing"
	"time"

	"repro/internal/tiles"
)

// TestPacketTraceRetryRoundTrip checks that the trace ID and retry count
// survive the wire encoding.
func TestPacketTraceRetryRoundTrip(t *testing.T) {
	p := &Packet{
		Type: PacketTile, User: 7, Slot: 214, VideoID: 42,
		FragIdx: 1, FragCount: 3, Seq: 99,
		Retry: 2, Trace: 0xdeadbeefcafef00d,
		Payload: []byte("tile bytes"),
	}
	got, err := Decode(p.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace != p.Trace {
		t.Errorf("trace = %x, want %x", got.Trace, p.Trace)
	}
	if got.Retry != p.Retry {
		t.Errorf("retry = %d, want %d", got.Retry, p.Retry)
	}
	// Untraced packets stay untraced.
	plain, err := Decode((&Packet{Type: PacketTile, FragCount: 1}).Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Trace != 0 || plain.Retry != 0 {
		t.Errorf("untraced packet decoded trace=%x retry=%d", plain.Trace, plain.Retry)
	}
}

// TestSenderTracePropagation sends a traced tile over a loopback UDP socket
// and checks the reassembler surfaces the trace ID and retry count in the
// slot stats — the client half of the stitching contract.
func TestSenderTracePropagation(t *testing.T) {
	rx, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	tx, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()

	s := NewSender(tx, rx.LocalAddr(), nil, DefaultMTU)
	const traceID = uint64(0x1234_5678_9abc_def0)
	payload := make([]byte, 3000) // several fragments
	if err := s.SendTileTraced(3, 11, tiles.VideoID(5), payload, traceID, 1); err != nil {
		t.Fatal(err)
	}

	r := NewReassembler()
	buf := make([]byte, DefaultMTU)
	deadline := time.Now().Add(2 * time.Second)
	for {
		rx.SetReadDeadline(deadline)
		n, _, err := rx.ReadFrom(buf)
		if err != nil {
			t.Fatalf("read: %v (tiles so far: %d)", err, len(r.Flush()))
		}
		p, err := Decode(buf[:n])
		if err != nil {
			t.Fatal(err)
		}
		if p.Trace != traceID || p.Retry != 1 {
			t.Fatalf("fragment %d carries trace=%x retry=%d", p.FragIdx, p.Trace, p.Retry)
		}
		r.Ingest(p, time.Now())
		if tiles := r.Flush(); len(tiles) == 1 {
			break
		}
	}
	st, ok := r.FlushSlot(11)
	if !ok {
		t.Fatal("no slot stats")
	}
	if st.Trace != traceID {
		t.Errorf("slot stats trace = %x, want %x", st.Trace, traceID)
	}
	if st.MaxRetry != 1 {
		t.Errorf("slot stats max retry = %d, want 1", st.MaxRetry)
	}
}
