package transport

import (
	"testing"
	"time"

	"repro/internal/tiles"
)

// fuzzBase returns a well-formed two-fragment packet to mutate.
func fuzzBase() []byte {
	return (&Packet{
		Type: PacketTile, User: 1, Slot: 2, VideoID: tiles.VideoID(77),
		FragIdx: 0, FragCount: 2, Seq: 9, Trace: 0xABCD,
		Payload: []byte("fuzz-tile-payload"),
	}).Encode(nil)
}

// FuzzReassembly hardens the receive path against the chaos injectors'
// corrupt/duplicate/reorder faults: arbitrary datagrams and storms of
// inconsistent fragment headers must never panic the reassembler — malformed
// input is rejected at Decode (counted and dropped by the client) and
// inconsistent-but-decodable fragments are absorbed as duplicates or
// incomplete tiles.
func FuzzReassembly(f *testing.F) {
	f.Add([]byte{})
	f.Add(fuzzBase())
	short := fuzzBase()
	f.Add(short[:HeaderSize-1])
	corrupt := fuzzBase()
	corrupt[12] ^= 0x80
	f.Add(corrupt)
	// A fragment-field storm seed (drives path 3 below).
	f.Add([]byte{0, 1, 0, 3, 0, 1, 1, 3, 0, 1, 2, 3, 0, 1, 2, 0, 5, 5, 9, 9})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReassembler()
		now := time.Unix(0, 0)

		// Path 1: the raw input as one datagram.
		if p, err := Decode(data); err == nil {
			r.Ingest(p, now)
		}

		// Path 2: a valid datagram XOR-corrupted by the input (the corrupt
		// injector's view of the world). If it still decodes, ingest it.
		base := fuzzBase()
		for i, b := range data {
			if i >= len(base) {
				break
			}
			base[i] ^= b
		}
		if p, err := Decode(base); err == nil {
			r.Ingest(p, now)
		}

		// Path 3: a storm of decodable packets with input-driven,
		// deliberately inconsistent fragment geometry (FragIdx >= FragCount,
		// count disagreement across fragments of one tile, duplicates).
		for i := 0; i+4 <= len(data); i += 4 {
			p := &Packet{
				Type:      PacketTile,
				User:      1,
				Slot:      uint32(data[i] % 8),
				VideoID:   tiles.VideoID(data[i+1] % 4),
				FragIdx:   uint16(data[i+2] % 7),
				FragCount: uint16(data[i+3] % 7),
				Seq:       uint32(i),
				Payload:   data[i : i+4],
			}
			// Round-trip through the wire format so the storm also exercises
			// Encode/Decode consistency.
			dec, err := Decode(p.Encode(nil))
			if err != nil {
				t.Fatalf("encoded packet failed decode: %v", err)
			}
			r.Ingest(dec, now)
		}

		// Drain everything; none of these calls may panic.
		r.Flush()
		for s := uint32(0); s < 8; s++ {
			r.Incomplete(s)
			r.FlushSlot(s)
		}
		if r.PendingTiles() != 0 {
			t.Fatalf("pending tiles survived a full flush: %d", r.PendingTiles())
		}
	})
}
