// Package transport implements the paper's delivery protocol (Section V):
// an RTP-like datagram framing over UDP for tile payloads — so the sender
// controls its rate precisely and decides per tile whether to retransmit —
// and a TCP side channel for the acknowledgments, release notices and pose
// uploads that RTP cannot carry ("we manually send acknowledgments (ACK)
// from the user to the server through TCP").
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/tiles"
)

// Magic identifies packets of this protocol.
const Magic uint16 = 0x5652 // "VR"

// HeaderSize is the fixed data-packet header length in bytes. The last
// eight bytes carry the trace ID so the client can stitch its half of a
// request onto the server's; a zero trace ID means "untraced". Bytes 30-31
// carry an additive checksum of the whole datagram, so corrupted packets are
// counted and dropped at Decode rather than poisoning reassembly.
const HeaderSize = 40

// DefaultMTU bounds a whole datagram (header + payload).
const DefaultMTU = 1200

// PacketType discriminates datagram kinds.
type PacketType uint8

const (
	// PacketTile carries one fragment of an encoded tile.
	PacketTile PacketType = iota + 1
)

// Packet is one datagram of the tile stream.
type Packet struct {
	Type      PacketType
	User      uint32 // destination user id
	Slot      uint32 // time slot the tile belongs to
	VideoID   tiles.VideoID
	FragIdx   uint16 // fragment index within the tile
	FragCount uint16 // total fragments of the tile
	Seq       uint32 // per-user monotonically increasing sequence
	Retry     uint8  // retransmission count of this tile (0 = first send)
	Trace     uint64 // trace ID of the tile request; 0 = untraced
	Payload   []byte
}

// Errors returned by Decode.
var (
	ErrShortPacket = errors.New("transport: packet shorter than header")
	ErrBadMagic    = errors.New("transport: bad magic")
	ErrBadLength   = errors.New("transport: payload length mismatch")
	ErrBadChecksum = errors.New("transport: checksum mismatch")
)

// checksum is the 16-bit additive checksum carried in header bytes 30-31:
// the sum of every datagram byte with the checksum field taken as zero. It is
// not cryptographic; it exists so in-path corruption (emulated by the chaos
// injectors, or real on a radio link) is counted and dropped at Decode
// instead of feeding garbage tiles into reassembly.
func checksum(data []byte) uint16 {
	var sum uint16
	for i, b := range data {
		if i == 30 || i == 31 {
			continue
		}
		sum += uint16(b)
	}
	return sum
}

// Encode serializes the packet into buf (allocating if nil or too small)
// and returns the encoded bytes.
func (p *Packet) Encode(buf []byte) []byte {
	n := HeaderSize + len(p.Payload)
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	binary.BigEndian.PutUint16(buf[0:2], Magic)
	buf[2] = byte(p.Type)
	buf[3] = p.Retry
	binary.BigEndian.PutUint32(buf[4:8], p.User)
	binary.BigEndian.PutUint32(buf[8:12], p.Slot)
	binary.BigEndian.PutUint64(buf[12:20], uint64(p.VideoID))
	binary.BigEndian.PutUint16(buf[20:22], p.FragIdx)
	binary.BigEndian.PutUint16(buf[22:24], p.FragCount)
	binary.BigEndian.PutUint16(buf[24:26], uint16(len(p.Payload)))
	binary.BigEndian.PutUint32(buf[26:30], p.Seq)
	binary.BigEndian.PutUint64(buf[32:40], p.Trace)
	copy(buf[HeaderSize:], p.Payload)
	binary.BigEndian.PutUint16(buf[30:32], checksum(buf))
	return buf
}

// Decode parses a datagram. The returned packet's Payload aliases data.
func Decode(data []byte) (*Packet, error) {
	if len(data) < HeaderSize {
		return nil, ErrShortPacket
	}
	if binary.BigEndian.Uint16(data[0:2]) != Magic {
		return nil, ErrBadMagic
	}
	payloadLen := int(binary.BigEndian.Uint16(data[24:26]))
	if len(data) != HeaderSize+payloadLen {
		return nil, fmt.Errorf("%w: header says %d, datagram has %d",
			ErrBadLength, payloadLen, len(data)-HeaderSize)
	}
	if got, want := binary.BigEndian.Uint16(data[30:32]), checksum(data); got != want {
		return nil, fmt.Errorf("%w: header says %#04x, datagram sums to %#04x",
			ErrBadChecksum, got, want)
	}
	return &Packet{
		Type:      PacketType(data[2]),
		User:      binary.BigEndian.Uint32(data[4:8]),
		Slot:      binary.BigEndian.Uint32(data[8:12]),
		VideoID:   tiles.VideoID(binary.BigEndian.Uint64(data[12:20])),
		FragIdx:   binary.BigEndian.Uint16(data[20:22]),
		FragCount: binary.BigEndian.Uint16(data[22:24]),
		Seq:       binary.BigEndian.Uint32(data[26:30]),
		Retry:     data[3],
		Trace:     binary.BigEndian.Uint64(data[32:40]),
		Payload:   data[HeaderSize:],
	}, nil
}

// Fragment splits a tile payload into MTU-sized packets. seq is the first
// sequence number to use; the caller advances its counter by the returned
// count.
func Fragment(user, slot uint32, id tiles.VideoID, payload []byte, mtu int, seq uint32) []*Packet {
	if mtu <= HeaderSize {
		mtu = DefaultMTU
	}
	chunk := mtu - HeaderSize
	count := (len(payload) + chunk - 1) / chunk
	if count == 0 {
		count = 1 // zero-length tile still needs one packet
	}
	if count > 0xFFFF {
		count = 0xFFFF // oversized tiles are truncated defensively
	}
	packets := make([]*Packet, 0, count)
	for i := 0; i < count; i++ {
		lo := i * chunk
		hi := lo + chunk
		if hi > len(payload) {
			hi = len(payload)
		}
		packets = append(packets, &Packet{
			Type:      PacketTile,
			User:      user,
			Slot:      slot,
			VideoID:   id,
			FragIdx:   uint16(i),
			FragCount: uint16(count),
			Seq:       seq + uint32(i),
			Payload:   payload[lo:hi],
		})
	}
	return packets
}
