package transport

import (
	"math/rand"
	"time"
)

// PacketFault is the disposition the fault injector assigns to one outgoing
// datagram. The zero value is "deliver normally".
type PacketFault struct {
	// Drop loses the datagram (burst loss, blackout partition).
	Drop bool
	// Duplicate transmits a second copy immediately after the first.
	Duplicate bool
	// Hold delays the datagram behind the following one in the same batch,
	// producing genuine on-the-wire reordering.
	Hold bool
	// CorruptXOR, when nonzero, is XORed into the byte at CorruptPos
	// (modulo the datagram length) before transmission.
	CorruptXOR byte
	CorruptPos int
}

// FaultInjector supplies per-packet fault dispositions on the transmit path.
// A Shaper that also implements FaultInjector (the chaos layer's injectors
// do) is consulted for every datagram the Sender emits.
type FaultInjector interface {
	PacketFault() PacketFault
}

// RetryPolicy schedules NACK-driven retransmissions: exponential backoff
// with full jitter, a bounded attempt count, and a per-tile wall-clock
// budget derived from the slot clock. When either bound is exhausted the
// tile is abandoned — the client's slot displays partial content instead of
// the pipeline stalling on a tile the deadline has already passed.
type RetryPolicy struct {
	// Base is the backoff ceiling of the first retransmission; attempt k
	// draws uniformly from [0, min(Cap, Base<<k)) ("full jitter", which
	// decorrelates retry storms across sessions).
	Base time.Duration
	// Cap bounds a single backoff regardless of attempt count.
	Cap time.Duration
	// MaxAttempts bounds retransmissions per tile (0 = policy disabled:
	// every NACK is answered immediately, the pre-resilience behavior).
	MaxAttempts int
	// Budget bounds the wall-clock time from the first NACK of a tile to
	// the last retransmission attempt.
	Budget time.Duration
}

// DefaultRetryPolicy derives the policy from the slot clock: backoff starts
// at a quarter slot, is capped at two slots, and each tile gets four
// attempts inside an eight-slot budget — past that the content is stale
// enough that the ledger/RAM path should win instead.
func DefaultRetryPolicy(slot time.Duration) RetryPolicy {
	if slot <= 0 {
		slot = time.Second / 60
	}
	return RetryPolicy{
		Base:        slot / 4,
		Cap:         2 * slot,
		MaxAttempts: 4,
		Budget:      8 * slot,
	}
}

// Enabled reports whether the policy bounds retries at all.
func (p RetryPolicy) Enabled() bool { return p.MaxAttempts > 0 }

// Backoff returns the full-jitter backoff before retransmission attempt
// `attempt` (0-based). rng must be non-nil; a per-session seeded source
// keeps campaigns deterministic.
func (p RetryPolicy) Backoff(attempt int, rng *rand.Rand) time.Duration {
	ceil := p.Base
	for i := 0; i < attempt && ceil < p.Cap; i++ {
		ceil *= 2
	}
	if ceil > p.Cap {
		ceil = p.Cap
	}
	if ceil <= 0 {
		return 0
	}
	return time.Duration(rng.Int63n(int64(ceil)))
}

// Abandon reports whether a tile that has already been retransmitted
// `attempts` times, first NACKed `elapsed` ago, should be given up on.
func (p RetryPolicy) Abandon(attempts int, elapsed time.Duration) bool {
	if !p.Enabled() {
		return false
	}
	return attempts >= p.MaxAttempts || elapsed > p.Budget
}
