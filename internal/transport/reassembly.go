package transport

import (
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/tiles"
)

// CompleteTile is a fully reassembled tile, annotated with the arrival
// window used for the paper's delay measurement ("we estimate the delay by
// computing the time duration between receiving the first and the last
// packet of the current time slot on the user-side").
type CompleteTile struct {
	Slot    uint32
	VideoID tiles.VideoID
	Payload []byte
}

// SlotStats summarizes one slot's arrivals on the client.
type SlotStats struct {
	Slot        uint32
	First, Last time.Time
	Bytes       int
	Packets     int
	Tiles       int    // complete tiles
	Trace       uint64 // trace ID carried by the slot's packets (0 = untraced)
	MaxRetry    int    // highest retransmission count seen in the slot
}

// Delay returns the first-to-last packet spacing (zero for single-packet
// slots).
func (s SlotStats) Delay() time.Duration {
	if s.Packets <= 1 {
		return 0
	}
	return s.Last.Sub(s.First)
}

// Reassembler rebuilds tiles from fragments and tracks per-slot arrival
// statistics. Incomplete tiles (packet loss) are discarded when their slot
// is flushed, mirroring the client rule that "each tile will either be
// displayed or dropped in each time slot".
type Reassembler struct {
	mu      sync.Mutex
	pending map[tileKey]*partialTile
	stats   map[uint32]*SlotStats
	done    []CompleteTile

	// Optional observability counters (nil means disabled; see Instrument).
	cDuplicates *obs.Counter
	cDropped    *obs.Counter
}

type tileKey struct {
	slot uint32
	id   tiles.VideoID
}

type partialTile struct {
	frags    [][]byte
	received int
	bytes    int
}

// NewReassembler returns an empty reassembler.
func NewReassembler() *Reassembler {
	return &Reassembler{
		pending: make(map[tileKey]*partialTile),
		stats:   make(map[uint32]*SlotStats),
	}
}

// Instrument attaches observability counters for duplicate/out-of-range
// fragments and for incomplete tiles dropped at slot flush (packet loss made
// visible). Nil counters are allowed (and free). Call before the first
// Ingest.
func (r *Reassembler) Instrument(duplicates, incompleteDropped *obs.Counter) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cDuplicates, r.cDropped = duplicates, incompleteDropped
}

// Ingest processes one received packet at the given arrival time.
func (r *Reassembler) Ingest(p *Packet, now time.Time) {
	if p.Type != PacketTile || p.FragCount == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	st := r.stats[p.Slot]
	if st == nil {
		st = &SlotStats{Slot: p.Slot, First: now, Last: now}
		r.stats[p.Slot] = st
	}
	if now.Before(st.First) {
		st.First = now
	}
	if now.After(st.Last) {
		st.Last = now
	}
	st.Packets++
	st.Bytes += len(p.Payload)
	if st.Trace == 0 && p.Trace != 0 {
		st.Trace = p.Trace
	}
	if int(p.Retry) > st.MaxRetry {
		st.MaxRetry = int(p.Retry)
	}

	key := tileKey{slot: p.Slot, id: p.VideoID}
	pt := r.pending[key]
	if pt == nil {
		pt = &partialTile{frags: make([][]byte, p.FragCount)}
		r.pending[key] = pt
	}
	if int(p.FragIdx) >= len(pt.frags) || pt.frags[p.FragIdx] != nil {
		r.cDuplicates.Inc()
		return // out-of-range or duplicate fragment
	}
	payload := make([]byte, len(p.Payload))
	copy(payload, p.Payload)
	pt.frags[p.FragIdx] = payload
	pt.received++
	pt.bytes += len(payload)

	if pt.received == len(pt.frags) {
		full := make([]byte, 0, pt.bytes)
		for _, f := range pt.frags {
			full = append(full, f...)
		}
		r.done = append(r.done, CompleteTile{Slot: p.Slot, VideoID: p.VideoID, Payload: full})
		st.Tiles++
		delete(r.pending, key)
	}
}

// Flush returns (and clears) the tiles completed so far.
func (r *Reassembler) Flush() []CompleteTile {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.done
	r.done = nil
	return out
}

// FlushSlot returns the slot's arrival stats and drops all state at or
// before that slot (late fragments of flushed slots are lost, as in the
// real client). Returns false if the slot saw no packets.
func (r *Reassembler) FlushSlot(slot uint32) (SlotStats, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.stats[slot]
	for s := range r.stats {
		if s <= slot {
			delete(r.stats, s)
		}
	}
	for k := range r.pending {
		if k.slot <= slot {
			delete(r.pending, k)
			r.cDropped.Inc()
		}
	}
	if !ok {
		return SlotStats{Slot: slot}, false
	}
	return *st, true
}

// PendingTiles reports the number of incomplete tiles (diagnostics).
func (r *Reassembler) PendingTiles() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.pending)
}

// Incomplete returns the tiles of a slot that received some but not all of
// their fragments — the candidates for a loss NACK. Call before FlushSlot,
// which discards the partial state.
func (r *Reassembler) Incomplete(slot uint32) []tiles.VideoID {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []tiles.VideoID
	for k := range r.pending {
		if k.slot == slot {
			out = append(out, k.id)
		}
	}
	return out
}
