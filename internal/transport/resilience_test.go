package transport

import (
	"errors"
	"math/rand"
	"net"
	"testing"
	"time"
)

func TestPacketChecksumDetectsCorruption(t *testing.T) {
	p := &Packet{
		Type: PacketTile, User: 3, Slot: 7, VideoID: testVideoID(t),
		FragIdx: 1, FragCount: 4, Seq: 99, Retry: 2, Trace: 0xDEADBEEF,
		Payload: []byte("tile payload bytes"),
	}
	wire := p.Encode(nil)
	if _, err := Decode(wire); err != nil {
		t.Fatalf("clean packet failed to decode: %v", err)
	}
	// Flip one bit anywhere outside the checksum field itself: Decode must
	// reject the datagram rather than hand corrupt state to reassembly.
	for _, pos := range []int{0, 5, 13, 27, 35, HeaderSize + 3} {
		c := append([]byte(nil), wire...)
		c[pos] ^= 0x10
		_, err := Decode(c)
		if err == nil {
			t.Fatalf("corruption at byte %d went undetected", pos)
		}
	}
	// Corrupting the checksum bytes themselves must also be caught.
	c := append([]byte(nil), wire...)
	c[30] ^= 0xFF
	if _, err := Decode(c); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("checksum-field corruption: got %v, want ErrBadChecksum", err)
	}
}

func TestRetryPolicyBackoffAndAbandonment(t *testing.T) {
	slot := 20 * time.Millisecond
	p := DefaultRetryPolicy(slot)
	if !p.Enabled() {
		t.Fatal("default policy should be enabled")
	}
	rng := rand.New(rand.NewSource(1))
	for attempt := 0; attempt < 10; attempt++ {
		ceil := p.Base << attempt
		if ceil > p.Cap || ceil <= 0 {
			ceil = p.Cap
		}
		for i := 0; i < 50; i++ {
			d := p.Backoff(attempt, rng)
			if d < 0 || d >= ceil {
				t.Fatalf("attempt %d: backoff %v outside [0, %v)", attempt, d, ceil)
			}
		}
	}
	if p.Abandon(0, 0) {
		t.Error("fresh tile abandoned immediately")
	}
	if !p.Abandon(p.MaxAttempts, 0) {
		t.Error("attempt budget exhausted but not abandoned")
	}
	if !p.Abandon(0, p.Budget+time.Millisecond) {
		t.Error("wall-clock budget exhausted but not abandoned")
	}
	var off RetryPolicy
	if off.Enabled() || off.Abandon(100, time.Hour) {
		t.Error("zero policy must be disabled and never abandon")
	}
}

// scriptedFaults replays a fixed fault sequence, then clean packets.
type scriptedFaults struct {
	seq []PacketFault
	i   int
}

func (s *scriptedFaults) PacketFault() PacketFault {
	if s.i >= len(s.seq) {
		return PacketFault{}
	}
	f := s.seq[s.i]
	s.i++
	return f
}

func (s *scriptedFaults) Admit(int, time.Time) time.Duration { return 0 }
func (s *scriptedFaults) Drop() bool                         { return false }

func TestSenderAppliesPacketFaults(t *testing.T) {
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	sink, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	// 5 fragments at MTU 140 (100-byte chunks): drop #0, duplicate #1,
	// corrupt #2, hold #3 behind #4.
	faults := &scriptedFaults{seq: []PacketFault{
		{Drop: true},
		{Duplicate: true},
		{CorruptXOR: 0x40, CorruptPos: 11},
		{Hold: true},
		{},
	}}
	s := NewSender(conn, sink.LocalAddr(), faults, 140)
	payload := make([]byte, 500)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := s.SendTile(1, 0, testVideoID(t), payload); err != nil {
		t.Fatal(err)
	}

	// Expect 5 datagrams on the wire: 1+1dup, 1corrupt, then #4 before #3.
	sink.SetReadDeadline(time.Now().Add(2 * time.Second))
	var got []*Packet
	var malformed int
	buf := make([]byte, 2048)
	for len(got)+malformed < 5 {
		n, _, err := sink.ReadFrom(buf)
		if err != nil {
			t.Fatalf("after %d packets (%d malformed): %v", len(got), malformed, err)
		}
		p, err := Decode(buf[:n])
		if err != nil {
			malformed++
			continue
		}
		got = append(got, p)
	}
	if malformed != 1 {
		t.Errorf("malformed datagrams = %d, want 1 (the corrupted fragment)", malformed)
	}
	var idxs []uint16
	for _, p := range got {
		idxs = append(idxs, p.FragIdx)
	}
	want := []uint16{1, 1, 4, 3} // dup of 1, then 4 overtakes held 3
	if len(idxs) != len(want) {
		t.Fatalf("decoded fragments %v, want %v", idxs, want)
	}
	for i := range want {
		if idxs[i] != want[i] {
			t.Fatalf("wire order %v, want %v", idxs, want)
		}
	}
	sent, _, dropped := s.Stats()
	if dropped != 1 {
		t.Errorf("dropped = %d, want 1", dropped)
	}
	if sent != 5 {
		t.Errorf("sent = %d, want 5 (4 fragments survive + 1 duplicate)", sent)
	}
}
