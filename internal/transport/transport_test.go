package transport

import (
	"bytes"
	"errors"
	"math/rand"
	"net"
	"testing"
	"time"

	"repro/internal/tiles"
)

func testVideoID(t *testing.T) tiles.VideoID {
	t.Helper()
	id, err := tiles.PackVideoID(tiles.CellID{X: 7, Z: -3}, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestPacketEncodeDecodeRoundTrip(t *testing.T) {
	p := &Packet{
		Type:      PacketTile,
		User:      3,
		Slot:      12345,
		VideoID:   testVideoID(t),
		FragIdx:   2,
		FragCount: 5,
		Seq:       99,
		Payload:   []byte("hello tiles"),
	}
	wire := p.Encode(nil)
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != p.Type || got.User != p.User || got.Slot != p.Slot ||
		got.VideoID != p.VideoID || got.FragIdx != p.FragIdx ||
		got.FragCount != p.FragCount || got.Seq != p.Seq {
		t.Errorf("header mismatch: %+v vs %+v", got, p)
	}
	if !bytes.Equal(got.Payload, p.Payload) {
		t.Errorf("payload mismatch")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(make([]byte, 10)); !errors.Is(err, ErrShortPacket) {
		t.Errorf("short packet: %v", err)
	}
	bad := (&Packet{Type: PacketTile, Payload: []byte("x")}).Encode(nil)
	bad[0] = 0xFF
	if _, err := Decode(bad); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: %v", err)
	}
	trunc := (&Packet{Type: PacketTile, Payload: []byte("xyz")}).Encode(nil)
	if _, err := Decode(trunc[:len(trunc)-1]); !errors.Is(err, ErrBadLength) {
		t.Errorf("bad length: %v", err)
	}
}

func TestFragmentSplitsAndCovers(t *testing.T) {
	payload := make([]byte, 5000)
	rand.New(rand.NewSource(1)).Read(payload)
	id := testVideoID(t)
	packets := Fragment(1, 7, id, payload, DefaultMTU, 100)

	chunk := DefaultMTU - HeaderSize
	wantCount := (len(payload) + chunk - 1) / chunk
	if len(packets) != wantCount {
		t.Fatalf("fragments = %d, want %d", len(packets), wantCount)
	}
	var rebuilt []byte
	for i, p := range packets {
		if p.FragIdx != uint16(i) || int(p.FragCount) != wantCount {
			t.Fatalf("fragment %d mislabeled: %+v", i, p)
		}
		if p.Seq != 100+uint32(i) {
			t.Fatalf("fragment %d seq = %d", i, p.Seq)
		}
		if len(p.Payload)+HeaderSize > DefaultMTU {
			t.Fatalf("fragment %d exceeds MTU", i)
		}
		rebuilt = append(rebuilt, p.Payload...)
	}
	if !bytes.Equal(rebuilt, payload) {
		t.Errorf("fragments do not cover payload")
	}
}

func TestFragmentEmptyPayload(t *testing.T) {
	packets := Fragment(1, 1, testVideoID(t), nil, DefaultMTU, 0)
	if len(packets) != 1 || len(packets[0].Payload) != 0 {
		t.Errorf("empty payload should yield one empty packet, got %d", len(packets))
	}
}

func TestReassemblerRebuildsTile(t *testing.T) {
	payload := make([]byte, 3000)
	rand.New(rand.NewSource(2)).Read(payload)
	id := testVideoID(t)
	packets := Fragment(1, 5, id, payload, 500, 0)

	r := NewReassembler()
	now := time.Unix(0, 0)
	// Deliver out of order.
	for i := len(packets) - 1; i >= 0; i-- {
		r.Ingest(packets[i], now.Add(time.Duration(i)*time.Millisecond))
	}
	done := r.Flush()
	if len(done) != 1 {
		t.Fatalf("completed tiles = %d, want 1", len(done))
	}
	if done[0].VideoID != id || done[0].Slot != 5 {
		t.Errorf("tile metadata wrong: %+v", done[0])
	}
	if !bytes.Equal(done[0].Payload, payload) {
		t.Errorf("reassembled payload differs")
	}

	st, ok := r.FlushSlot(5)
	if !ok {
		t.Fatal("slot stats missing")
	}
	if st.Tiles != 1 || st.Packets != len(packets) {
		t.Errorf("stats = %+v", st)
	}
	wantDelay := time.Duration(len(packets)-1) * time.Millisecond
	if st.Delay() != wantDelay {
		t.Errorf("delay = %v, want %v", st.Delay(), wantDelay)
	}
}

func TestReassemblerDropsIncompleteTiles(t *testing.T) {
	payload := make([]byte, 2000)
	id := testVideoID(t)
	packets := Fragment(1, 3, id, payload, 500, 0)
	r := NewReassembler()
	now := time.Now()
	// Lose the second fragment.
	for i, p := range packets {
		if i == 1 {
			continue
		}
		r.Ingest(p, now)
	}
	if done := r.Flush(); len(done) != 0 {
		t.Fatalf("incomplete tile completed: %d", len(done))
	}
	if r.PendingTiles() != 1 {
		t.Fatalf("pending = %d, want 1", r.PendingTiles())
	}
	// Flushing the slot discards the partial state.
	if _, ok := r.FlushSlot(3); !ok {
		t.Fatal("stats should exist")
	}
	if r.PendingTiles() != 0 {
		t.Errorf("pending after flush = %d", r.PendingTiles())
	}
}

func TestReassemblerIgnoresDuplicates(t *testing.T) {
	payload := make([]byte, 900)
	packets := Fragment(1, 1, testVideoID(t), payload, 500, 0)
	r := NewReassembler()
	now := time.Now()
	r.Ingest(packets[0], now)
	r.Ingest(packets[0], now) // duplicate
	r.Ingest(packets[1], now)
	done := r.Flush()
	if len(done) != 1 {
		t.Fatalf("completed = %d, want 1", len(done))
	}
	if len(done[0].Payload) != len(payload) {
		t.Errorf("payload length = %d, want %d", len(done[0].Payload), len(payload))
	}
}

func TestReassemblerFlushSlotMissing(t *testing.T) {
	r := NewReassembler()
	if _, ok := r.FlushSlot(9); ok {
		t.Error("missing slot should report !ok")
	}
}

func TestControlConnRoundTrip(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	type result struct {
		msgs []any
		err  error
	}
	resCh := make(chan result, 1)
	go func() {
		raw, err := ln.Accept()
		if err != nil {
			resCh <- result{err: err}
			return
		}
		conn := NewConn(raw)
		defer conn.Close()
		var msgs []any
		for i := 0; i < 3; i++ {
			m, err := conn.Recv()
			if err != nil {
				resCh <- result{err: err}
				return
			}
			msgs = append(msgs, m)
		}
		resCh <- result{msgs: msgs}
	}()

	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn := NewConn(raw)
	defer conn.Close()

	id := testVideoID(t)
	sent := []any{
		Hello{User: 4, UDPAddr: "127.0.0.1:9999", RAMThreshold: 128},
		PoseUpdate{User: 4, Slot: 10},
		TileACK{User: 4, Slot: 10, Tiles: []tiles.VideoID{id}, DelayMs: 3.5, Bytes: 1000, Covered: true, Displayed: true},
	}
	for _, m := range sent {
		if err := conn.Send(m); err != nil {
			t.Fatal(err)
		}
	}

	res := <-resCh
	if res.err != nil {
		t.Fatal(res.err)
	}
	if len(res.msgs) != 3 {
		t.Fatalf("received %d messages", len(res.msgs))
	}
	if h, ok := res.msgs[0].(Hello); !ok || h.User != 4 || h.RAMThreshold != 128 {
		t.Errorf("hello = %#v", res.msgs[0])
	}
	if ack, ok := res.msgs[2].(TileACK); !ok || len(ack.Tiles) != 1 || ack.Tiles[0] != id || !ack.Covered {
		t.Errorf("ack = %#v", res.msgs[2])
	}
}

func TestSenderDeliversOverUDP(t *testing.T) {
	recvConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recvConn.Close()
	sendConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sendConn.Close()

	payload := make([]byte, 4000)
	rand.New(rand.NewSource(3)).Read(payload)
	id := testVideoID(t)

	s := NewSender(sendConn, recvConn.LocalAddr(), nil, DefaultMTU)
	if err := s.SendTile(1, 2, id, payload); err != nil {
		t.Fatal(err)
	}

	r := NewReassembler()
	buf := make([]byte, 65536)
	deadline := time.Now().Add(2 * time.Second)
	for len(r.Flush()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for tile")
		}
		recvConn.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
		n, _, err := recvConn.ReadFrom(buf)
		if err != nil {
			continue
		}
		p, err := Decode(buf[:n])
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		r.Ingest(p, time.Now())
		if done := r.Flush(); len(done) == 1 {
			if !bytes.Equal(done[0].Payload, payload) {
				t.Fatal("payload corrupted in flight")
			}
			return
		}
	}
}

type fixedDelayShaper struct {
	d     time.Duration
	drops int
}

func (f *fixedDelayShaper) Admit(int, time.Time) time.Duration { return f.d }
func (f *fixedDelayShaper) Drop() bool {
	if f.drops > 0 {
		f.drops--
		return true
	}
	return false
}

func TestSenderShaperDropsAndStats(t *testing.T) {
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	sh := &fixedDelayShaper{drops: 2}
	s := NewSender(conn, conn.LocalAddr(), sh, 500)
	payload := make([]byte, 2000) // 5 fragments at 500-byte MTU
	if err := s.SendTile(1, 1, testVideoID(t), payload); err != nil {
		t.Fatal(err)
	}
	pkts, bytes_, dropped := s.Stats()
	if dropped != 2 {
		t.Errorf("dropped = %d, want 2", dropped)
	}
	if pkts == 0 || bytes_ == 0 {
		t.Errorf("no packets sent: %d, %d", pkts, bytes_)
	}
}

func TestChainShaper(t *testing.T) {
	a := &fixedDelayShaper{d: time.Millisecond}
	b := &fixedDelayShaper{d: 3 * time.Millisecond}
	chain := ChainShaper{a, b}
	if d := chain.Admit(100, time.Now()); d != 3*time.Millisecond {
		t.Errorf("chain admit = %v, want 3ms", d)
	}
	c := &fixedDelayShaper{drops: 1}
	chain = ChainShaper{a, c}
	if !chain.Drop() {
		t.Errorf("chain should drop when any stage drops")
	}
	if chain.Drop() {
		t.Errorf("chain should pass when no stage drops")
	}
}
