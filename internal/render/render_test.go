package render

import (
	"testing"
	"time"
)

func TestEmptySlot(t *testing.T) {
	p := New(DefaultConfig(1))
	r := p.RunSlot(nil, 16*time.Millisecond)
	if r.Completed != 0 || r.Missed != 0 || r.Makespan != 0 {
		t.Errorf("empty slot result = %+v", r)
	}
}

func TestSingleTileTiming(t *testing.T) {
	cfg := DefaultConfig(1)
	p := New(cfg)
	r := p.RunSlot([]Request{{User: 0, Level: 3}}, 16*time.Millisecond)
	want := cfg.RenderTime + cfg.EncodeBase + 2*cfg.EncodePerLevel
	if r.Makespan != want {
		t.Errorf("makespan = %v, want %v", r.Makespan, want)
	}
	if r.Completed != 1 || r.Missed != 0 {
		t.Errorf("result = %+v", r)
	}
}

func TestDeadlineMiss(t *testing.T) {
	p := New(DefaultConfig(1))
	r := p.RunSlot([]Request{{Level: 6}}, time.Millisecond)
	if r.Missed != 1 || r.Completed != 0 {
		t.Errorf("tight deadline should miss: %+v", r)
	}
}

func TestParallelEncodersPipeline(t *testing.T) {
	// With 3 encoders and a serial render unit, 3 equal tiles finish at
	// render-staggered times, not serialized encodes.
	cfg := Config{
		GPUs:           1,
		EncodersPerGPU: 3,
		RenderTime:     time.Millisecond,
		EncodeBase:     5 * time.Millisecond,
	}
	p := New(cfg)
	r := p.RunSlot(requestsFor(3, 1), 20*time.Millisecond)
	// Renders at 1,2,3 ms; encodes run in parallel: last done at 3+5 = 8ms.
	if want := 8 * time.Millisecond; r.Makespan != want {
		t.Errorf("makespan = %v, want %v", r.Makespan, want)
	}
}

func TestMoreGPUsNeverWorse(t *testing.T) {
	deadline := 1000 * time.Second / 60
	_ = deadline
	base := DefaultConfig(1)
	for load := 4; load <= 48; load += 8 {
		var prev float64 = 2
		for gpus := 1; gpus <= 6; gpus++ {
			cfg := base
			cfg.GPUs = gpus
			miss := New(cfg).MissRate(load, 4, 4, time.Second/60)
			if miss > prev+1e-9 {
				t.Fatalf("load %d: miss rate rose from %v to %v at %d GPUs",
					load, prev, miss, gpus)
			}
			prev = miss
		}
	}
}

func TestHigherQualityEncodesSlower(t *testing.T) {
	p := New(DefaultConfig(2))
	lo := p.RunSlot(requestsFor(12, 1), time.Second/60)
	hi := p.RunSlot(requestsFor(12, 6), time.Second/60)
	if hi.Makespan <= lo.Makespan {
		t.Errorf("level 6 makespan %v should exceed level 1 %v", hi.Makespan, lo.Makespan)
	}
}

// TestDiscussionScenario quantifies the paper's Discussion claim: a single
// GPU cannot sustain online rendering for the full 15-user classroom at a
// 60 FPS deadline, but a multi-GPU server can.
func TestDiscussionScenario(t *testing.T) {
	deadline := time.Second / 60
	// 15 users x ~3 tiles at a medium level per slot.
	tiles := 45
	base := DefaultConfig(1)

	one := New(base).RunSlot(requestsFor(tiles, 4), deadline)
	if one.Missed == 0 {
		t.Fatalf("one GPU should miss deadlines at 45 tiles/slot: %+v", one)
	}
	need := MinGPUsFor(base, tiles, 4, deadline, 16)
	if need <= 1 {
		t.Fatalf("MinGPUsFor = %d, want > 1", need)
	}
	if need > 16 {
		t.Fatalf("no feasible GPU count found")
	}
	cfg := base
	cfg.GPUs = need
	ok := New(cfg).RunSlot(requestsFor(tiles, 4), deadline)
	if ok.Missed != 0 {
		t.Errorf("%d GPUs should meet every deadline: %+v", need, ok)
	}
	t.Logf("45 tiles/slot at level 4 needs %d GPUs for zero misses", need)
}

func TestMissRateBounds(t *testing.T) {
	p := New(DefaultConfig(2))
	if got := p.MissRate(0, 10, 3, time.Second/60); got != 0 {
		t.Errorf("zero load miss rate = %v", got)
	}
	rate := p.MissRate(30, 5, 3, time.Second/60)
	if rate < 0 || rate > 1 {
		t.Errorf("miss rate %v outside [0,1]", rate)
	}
}

func TestConfigClamping(t *testing.T) {
	p := New(Config{GPUs: 0, EncodersPerGPU: 0, EncodeBase: time.Millisecond})
	r := p.RunSlot(requestsFor(2, 1), time.Second)
	if r.Completed != 2 {
		t.Errorf("clamped config should still schedule: %+v", r)
	}
}
