// Package render models the online rendering-and-encoding pipeline the
// paper's Discussion section sketches as future work: instead of serving
// offline pre-rendered tiles, the server renders each requested tile with
// Unity and encodes it with an NVENC-class hardware encoder in real time.
// The paper observes that "the overhead of rendering and encoding for
// multiple quality levels makes it difficult to meet the synchronization
// performance" and proposes coordinating "multiple GPUs in a server to
// enable multiple encoders working in parallel with the rendering".
//
// Pipeline simulates exactly that: G GPUs, each with one render unit and E
// parallel encoder sessions, processing a slot's tile requests under the
// slot deadline. It answers the design question the paper leaves open: how
// many GPUs does a given user population need before online rendering
// stops missing deadlines?
package render

import (
	"sort"
	"time"
)

// Request is one tile to render and encode in a slot.
type Request struct {
	User  uint32
	Level int // quality level; higher levels encode slower
}

// Config describes the rendering cluster.
type Config struct {
	// GPUs is the number of GPUs; each renders sequentially but encodes on
	// EncodersPerGPU parallel NVENC sessions.
	GPUs int
	// EncodersPerGPU is the number of parallel encoder sessions per GPU.
	EncodersPerGPU int
	// RenderTime is the per-tile render cost on a GPU's render unit.
	RenderTime time.Duration
	// EncodeBase is the encode time of a level-1 tile; each level adds
	// EncodePerLevel (higher quality = higher bitrate = slower encode).
	EncodeBase     time.Duration
	EncodePerLevel time.Duration
}

// DefaultConfig models a workstation like the paper's (4 x RTX-class GPUs):
// 1.5 ms render and 2-4.5 ms encode per tile at 60 FPS tiles.
func DefaultConfig(gpus int) Config {
	if gpus <= 0 {
		gpus = 1
	}
	return Config{
		GPUs:           gpus,
		EncodersPerGPU: 3,
		RenderTime:     1500 * time.Microsecond,
		EncodeBase:     2 * time.Millisecond,
		EncodePerLevel: 500 * time.Microsecond,
	}
}

// Result summarizes one slot's pipeline execution.
type Result struct {
	// Completed is the number of tiles that finished by the deadline.
	Completed int
	// Missed is the number that did not.
	Missed int
	// Makespan is when the last tile finished (even past the deadline).
	Makespan time.Duration
}

// Pipeline is a deterministic discrete-event model of the cluster.
type Pipeline struct {
	cfg Config
}

// New validates and returns a pipeline.
func New(cfg Config) *Pipeline {
	if cfg.GPUs <= 0 {
		cfg.GPUs = 1
	}
	if cfg.EncodersPerGPU <= 0 {
		cfg.EncodersPerGPU = 1
	}
	return &Pipeline{cfg: cfg}
}

// encodeTime returns the encode duration of a tile at the given level.
func (p *Pipeline) encodeTime(level int) time.Duration {
	if level < 1 {
		level = 1
	}
	return p.cfg.EncodeBase + time.Duration(level-1)*p.cfg.EncodePerLevel
}

// RunSlot schedules the requests across the cluster with greedy
// earliest-available list scheduling (tiles sorted by encode time, longest
// first) and reports how many finish within the deadline. Rendering and
// encoding pipeline: a tile's encode can start as soon as its render
// finishes and an encoder session on the same GPU is free.
func (p *Pipeline) RunSlot(reqs []Request, deadline time.Duration) Result {
	if len(reqs) == 0 {
		return Result{}
	}
	// Longest-processing-time-first improves the makespan of list
	// scheduling.
	sorted := make([]Request, len(reqs))
	copy(sorted, reqs)
	sort.SliceStable(sorted, func(i, j int) bool {
		return p.encodeTime(sorted[i].Level) > p.encodeTime(sorted[j].Level)
	})

	renderFree := make([]time.Duration, p.cfg.GPUs)
	encoderFree := make([][]time.Duration, p.cfg.GPUs)
	for g := range encoderFree {
		encoderFree[g] = make([]time.Duration, p.cfg.EncodersPerGPU)
	}

	var res Result
	for _, req := range sorted {
		// Pick the GPU whose pipeline finishes this tile earliest.
		bestGPU, bestEnc := 0, 0
		var bestDone time.Duration = 1 << 62
		for g := 0; g < p.cfg.GPUs; g++ {
			renderDone := renderFree[g] + p.cfg.RenderTime
			for e := 0; e < p.cfg.EncodersPerGPU; e++ {
				start := renderDone
				if encoderFree[g][e] > start {
					start = encoderFree[g][e]
				}
				done := start + p.encodeTime(req.Level)
				if done < bestDone {
					bestDone = done
					bestGPU, bestEnc = g, e
				}
			}
		}
		renderFree[bestGPU] += p.cfg.RenderTime
		encoderFree[bestGPU][bestEnc] = bestDone
		if bestDone <= deadline {
			res.Completed++
		} else {
			res.Missed++
		}
		if bestDone > res.Makespan {
			res.Makespan = bestDone
		}
	}
	return res
}

// MissRate runs a sustained workload (tilesPerSlot requests each slot for
// the given number of slots; the cluster state resets per slot, as renders
// target the next display deadline) and returns the deadline-miss fraction.
func (p *Pipeline) MissRate(tilesPerSlot, slots int, level int, deadline time.Duration) float64 {
	if tilesPerSlot <= 0 || slots <= 0 {
		return 0
	}
	reqs := make([]Request, tilesPerSlot)
	for i := range reqs {
		reqs[i] = Request{User: uint32(i), Level: level}
	}
	var missed, total int
	for s := 0; s < slots; s++ {
		r := p.RunSlot(reqs, deadline)
		missed += r.Missed
		total += r.Missed + r.Completed
	}
	return float64(missed) / float64(total)
}

// MinGPUsFor searches for the smallest GPU count (up to maxGPUs) whose
// pipeline sustains the workload with zero deadline misses, answering the
// Discussion's provisioning question. Returns maxGPUs+1 if none suffices.
func MinGPUsFor(base Config, tilesPerSlot, level int, deadline time.Duration, maxGPUs int) int {
	for g := 1; g <= maxGPUs; g++ {
		cfg := base
		cfg.GPUs = g
		p := New(cfg)
		r := p.RunSlot(requestsFor(tilesPerSlot, level), deadline)
		if r.Missed == 0 {
			return g
		}
	}
	return maxGPUs + 1
}

func requestsFor(n, level int) []Request {
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{User: uint32(i), Level: level}
	}
	return reqs
}
