// Package client implements the user-side application of the paper's system
// (Section VI) as an emulator for commodity mobile devices: it replays a
// real motion trace, uploads poses to the server over TCP, receives the
// RTP-like tile stream over UDP, reassembles and "decodes" tiles on a pool
// of parallel decoders, enforces per-slot display deadlines (tiles are
// displayed or dropped, never prefetched), acknowledges delivered tiles,
// and releases old tiles when its RAM threshold is reached.
package client

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/motion"
	"repro/internal/obs"
	"repro/internal/tiles"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/vrmath"
)

// Config parametrizes a client.
type Config struct {
	User       uint32
	ServerAddr string // server control (TCP) address
	// Trace is the motion trace the client replays (wraps around).
	Trace motion.Trace
	// SlotDuration must match the server's.
	SlotDuration time.Duration
	// RAMThreshold is the maximum number of tiles held before releasing
	// (device-memory dependent, per the paper).
	RAMThreshold int
	// Decoders is the number of parallel hardware decoders (paper: 5).
	Decoders int
	Coverage motion.CoverageConfig
	Params   metrics.QoEParams
	// Slots stops the client after this many display slots (0 = until the
	// server closes the control connection).
	Slots int
	// NackLost enables the loss-handling extension of the paper's
	// Discussion section: tiles with missing fragments are reported so the
	// server retransmits them.
	NackLost bool
	// Reconnect enables automatic redial when the control connection drops
	// mid-run: capped full-jitter exponential backoff, a fresh Hello with
	// the SAME UDP address (so the tile stream resumes where it was), and
	// validation that the server's Welcome resumes this user's session.
	Reconnect bool
	// ReconnectAttempts bounds consecutive redial attempts before the
	// client gives up (default 5; the counter resets on success).
	ReconnectAttempts int
	// ReconnectBase and ReconnectCap tune the redial backoff: attempt k
	// sleeps uniform [0, min(Cap, Base<<k)) (defaults 50 ms / 1 s).
	ReconnectBase time.Duration
	ReconnectCap  time.Duration
	// Redirect, when non-nil, supplies the control address to dial on each
	// reconnect attempt (the initial dial always uses ServerAddr). A fleet
	// coordinator points it at whichever shard currently owns the session,
	// so a migration's forced disconnect redials straight to the adopting
	// shard. Must be safe for concurrent use.
	Redirect func() string
	// Metrics receives the client's counters/histograms (names prefixed
	// collabvr_client_); nil disables metrics with near-zero overhead.
	Metrics *obs.Registry
	// Tracer receives the client half of each tile request's trace
	// (rx.recv, rx.decode, rx.display), stitched onto the server's spans by
	// the trace ID carried in the packet headers; nil disables tracing.
	Tracer *trace.Tracer
}

// clientMetrics bundles the client-side instruments; all nil-safe.
type clientMetrics struct {
	tiles      *obs.Counter
	bytes      *obs.Counter
	nacks      *obs.Counter
	releases   *obs.Counter
	displayed  *obs.Counter
	missed     *obs.Counter
	duplicates *obs.Counter
	incomplete *obs.Counter
	malformed  *obs.Counter
	reconnects *obs.Counter
	delayMs    *obs.Histogram
	setupMs    *obs.Histogram
}

func newClientMetrics(r *obs.Registry) clientMetrics {
	return clientMetrics{
		tiles:      r.Counter("collabvr_client_tiles_received_total"),
		bytes:      r.Counter("collabvr_client_bytes_received_total"),
		nacks:      r.Counter("collabvr_client_nack_tiles_total"),
		releases:   r.Counter("collabvr_client_tiles_released_total"),
		displayed:  r.Counter("collabvr_client_frames_displayed_total"),
		missed:     r.Counter("collabvr_client_frames_missed_total"),
		duplicates: r.Counter("collabvr_client_rx_duplicate_fragments_total"),
		incomplete: r.Counter("collabvr_client_rx_incomplete_tiles_dropped_total"),
		malformed:  r.Counter("collabvr_client_rx_malformed_total"),
		reconnects: r.Counter("collabvr_client_reconnects_total"),
		delayMs:    r.Histogram("collabvr_client_slot_delay_ms", obs.DefaultLatencyBuckets()),
		setupMs:    r.Histogram("collabvr_client_setup_ms", obs.DefaultLatencyBuckets()),
	}
}

// DefaultConfig returns the paper's client parameters.
func DefaultConfig(user uint32, serverAddr string, trace motion.Trace) Config {
	return Config{
		User:         user,
		ServerAddr:   serverAddr,
		Trace:        trace,
		SlotDuration: time.Second / 60,
		RAMThreshold: 512,
		Decoders:     5,
		Coverage:     motion.DefaultCoverage(),
		Params:       metrics.QoEParams{Alpha: 0.1, Beta: 0.5},
	}
}

// Result is the client-side outcome of a run.
type Result struct {
	User     uint32
	Report   metrics.Report
	Slots    int
	Tiles    int
	Bytes    int
	Releases int
	// Nacks counts loss reports sent (only with Config.NackLost).
	Nacks int
	// Reconnects counts successful control-channel redials (only with
	// Config.Reconnect).
	Reconnects int
	// Resumes counts Welcomes that resumed handed-off session state
	// (fleet live migration), and LastShard is the shard that sent the
	// most recent Welcome.
	Resumes   int
	LastShard int
	// SetupMs is the session setup latency: dial to the server's Welcome
	// (or to the Hello send, against a server that never acknowledges).
	SetupMs float64
}

// Run connects, streams until the configured horizon (or server shutdown),
// and returns the observed QoE metrics. It is synchronous; run one
// goroutine per emulated user.
func Run(cfg Config) (*Result, error) {
	if len(cfg.Trace) == 0 {
		return nil, errors.New("client: empty motion trace")
	}
	if cfg.SlotDuration <= 0 {
		cfg.SlotDuration = time.Second / 60
	}
	if cfg.Decoders <= 0 {
		cfg.Decoders = 5
	}
	if cfg.RAMThreshold <= 0 {
		cfg.RAMThreshold = 512
	}
	if cfg.ReconnectAttempts <= 0 {
		cfg.ReconnectAttempts = 5
	}
	if cfg.ReconnectBase <= 0 {
		cfg.ReconnectBase = 50 * time.Millisecond
	}
	if cfg.ReconnectCap <= 0 {
		cfg.ReconnectCap = time.Second
	}

	setupStart := time.Now()
	udp, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("client: listen udp: %w", err)
	}
	defer udp.Close()

	raw, err := net.Dial("tcp", cfg.ServerAddr)
	if err != nil {
		return nil, fmt.Errorf("client: dial server: %w", err)
	}
	ctrl := transport.NewConn(raw)

	if err := ctrl.Send(transport.Hello{
		User:         cfg.User,
		UDPAddr:      udp.LocalAddr().String(),
		RAMThreshold: cfg.RAMThreshold,
	}); err != nil {
		ctrl.Close()
		return nil, err
	}

	c := &runner{
		cfg:    cfg,
		obs:    newClientMetrics(cfg.Metrics),
		ctrl:   ctrl,
		udp:    udp,
		reasm:  transport.NewReassembler(),
		ram:    tiles.NewClientRAM(cfg.RAMThreshold),
		acc:    metrics.NewUserQoE(cfg.Params),
		byslot: make(map[uint32][]tiles.VideoID),
		rng:    rand.New(rand.NewSource(int64(cfg.User)*40503 + 7)),
	}
	defer c.closeCtrl()
	c.reasm.Instrument(c.obs.duplicates, c.obs.incomplete)
	c.setupStart = setupStart
	// Fallback setup latency against servers that never send Welcome (the
	// control reader overwrites it when one arrives).
	c.setupMs = float64(time.Since(setupStart)) / float64(time.Millisecond)
	return c.run()
}

// runner carries the per-run state.
type runner struct {
	cfg   Config
	obs   clientMetrics
	udp   net.PacketConn
	reasm *transport.Reassembler
	ram   *tiles.ClientRAM
	acc   *metrics.UserQoE
	rng   *rand.Rand // redial jitter; touched only by the control reader

	// ctrlMu guards the control connection pointer, which the reader
	// goroutine swaps on reconnect while the display loop keeps sending.
	ctrlMu sync.Mutex
	ctrl   *transport.Conn
	closed bool // shutdown in progress: the reader must not redial

	mu      sync.Mutex
	byslot  map[uint32][]tiles.VideoID // complete tiles per server slot
	maxSlot uint32
	anySlot bool

	tilesTotal int
	bytesTotal int
	releases   int
	nacks      int
	reconnects int
	resumes    int // guarded by ctrlMu, like reconnects
	lastShard  int

	setupStart time.Time
	setupMu    sync.Mutex
	setupMs    float64

	ctrlEnd sync.Once
	endCh   chan struct{}
}

// send delivers one control message over the current connection. During a
// reconnect window sends fail silently and the message is lost — the same
// contract as a dropped datagram; the server's NACK/ACK machinery absorbs it.
func (c *runner) send(msg any) error {
	c.ctrlMu.Lock()
	ctrl := c.ctrl
	c.ctrlMu.Unlock()
	return ctrl.Send(msg)
}

// closeCtrl marks the run as shutting down (so the control reader stops
// redialing) and closes the live connection.
func (c *runner) closeCtrl() {
	c.ctrlMu.Lock()
	c.closed = true
	ctrl := c.ctrl
	c.ctrlMu.Unlock()
	ctrl.Close()
}

// redial attempts to re-establish the control session after a drop: dial,
// Hello with the SAME UDP address, and a synchronous Welcome check that the
// server resumed this user's session. Backoff is full-jitter exponential.
// Returns the new connection, or nil when the attempt budget is exhausted or
// shutdown began.
func (c *runner) redial() *transport.Conn {
	for attempt := 0; attempt < c.cfg.ReconnectAttempts; attempt++ {
		d := c.cfg.ReconnectBase << uint(attempt)
		if d > c.cfg.ReconnectCap || d <= 0 {
			d = c.cfg.ReconnectCap
		}
		time.Sleep(time.Duration(c.rng.Int63n(int64(d) + 1)))
		c.ctrlMu.Lock()
		done := c.closed
		c.ctrlMu.Unlock()
		if done {
			return nil
		}
		addr := c.cfg.ServerAddr
		if c.cfg.Redirect != nil {
			// A fleet migration moved the session: redial the shard that
			// adopted it, not the one that closed on us.
			addr = c.cfg.Redirect()
		}
		raw, err := net.Dial("tcp", addr)
		if err != nil {
			continue
		}
		ctrl := transport.NewConn(raw)
		err = ctrl.Send(transport.Hello{
			User:         c.cfg.User,
			UDPAddr:      c.udp.LocalAddr().String(),
			RAMThreshold: c.cfg.RAMThreshold,
		})
		if err == nil {
			// Session-resume validation: the server must answer with a
			// Welcome for this user before the connection is trusted.
			ctrl.SetDeadline(time.Now().Add(2 * time.Second))
			msg, rerr := ctrl.Recv()
			w, ok := msg.(transport.Welcome)
			if rerr == nil && ok && w.User == c.cfg.User {
				ctrl.SetDeadline(time.Time{})
				c.ctrlMu.Lock()
				if w.Resumed {
					c.resumes++
				}
				c.lastShard = w.Shard
				c.ctrlMu.Unlock()
				return ctrl
			}
		}
		ctrl.Close()
	}
	return nil
}

func (c *runner) run() (*Result, error) {
	c.endCh = make(chan struct{})

	// UDP receive pump.
	recvDone := make(chan struct{})
	go c.receiveLoop(recvDone)

	// Control-channel reader: consumes the Welcome handshake ack (the
	// precise setup-latency mark) and detects connection shutdown
	// immediately. With Config.Reconnect it owns the redial loop: on a Recv
	// error it re-establishes the session and swaps the connection in under
	// ctrlMu, ending the run only when the redial budget is exhausted.
	go func() {
		for {
			c.ctrlMu.Lock()
			ctrl := c.ctrl
			c.ctrlMu.Unlock()
			msg, err := ctrl.Recv()
			if err != nil {
				c.ctrlMu.Lock()
				done := c.closed
				c.ctrlMu.Unlock()
				if done || !c.cfg.Reconnect {
					c.ctrlEnd.Do(func() { close(c.endCh) })
					return
				}
				next := c.redial()
				if next == nil {
					c.ctrlEnd.Do(func() { close(c.endCh) })
					return
				}
				c.ctrlMu.Lock()
				if c.closed {
					c.ctrlMu.Unlock()
					next.Close()
					c.ctrlEnd.Do(func() { close(c.endCh) })
					return
				}
				c.ctrl.Close()
				c.ctrl = next
				c.reconnects++
				c.ctrlMu.Unlock()
				c.obs.reconnects.Inc()
				continue
			}
			if w, ok := msg.(transport.Welcome); ok {
				c.setupMu.Lock()
				c.setupMs = float64(time.Since(c.setupStart)) / float64(time.Millisecond)
				c.setupMu.Unlock()
				c.ctrlMu.Lock()
				if w.Resumed {
					c.resumes++
				}
				c.lastShard = w.Shard
				c.ctrlMu.Unlock()
			}
		}
	}()

	ticker := time.NewTicker(c.cfg.SlotDuration)
	defer ticker.Stop()

	localSlot := 0
	processed := uint32(0)
	prevMax := uint32(0)
	displayed := 0
	running := true
	for running {
		select {
		case <-ticker.C:
		case <-c.endCh:
			running = false
		}

		// Upload the current pose (trace replay). With reconnect enabled a
		// failed send is a transient outage — the control reader is already
		// redialing, and it closes endCh if that fails for good.
		pose := c.cfg.Trace[localSlot%len(c.cfg.Trace)]
		if err := c.send(transport.PoseUpdate{
			User: c.cfg.User,
			Slot: uint32(localSlot),
			Pose: pose,
		}); err != nil && !c.cfg.Reconnect {
			running = false
		}
		localSlot++

		// Harvest completed tiles into per-slot buckets. Tiles for slots
		// that already displayed (e.g. NACK retransmissions) are
		// re-bucketed into the next display slot: their frame is gone, but
		// the content still feeds RAM for upcoming frames.
		for _, tile := range c.reasm.Flush() {
			slot := tile.Slot
			if slot < processed {
				slot = processed
			}
			c.mu.Lock()
			c.byslot[slot] = append(c.byslot[slot], tile.VideoID)
			c.tilesTotal++
			c.bytesTotal += len(tile.Payload)
			c.mu.Unlock()
			c.obs.tiles.Inc()
			c.obs.bytes.Add(uint64(len(tile.Payload)))
		}

		// Display pipeline. Tiles for server slot t are decoded during t+1
		// and displayed at t+2 (the paper's pipelining), which here means a
		// slot is displayed one tick after its last packet can arrive.
		// With repetitive-tile suppression the server sends nothing in
		// steady state, so the display clock must keep running and render
		// from RAM: when no new slot arrived since the previous tick, the
		// next slot is displayed anyway.
		c.mu.Lock()
		maxSlot, any := c.maxSlot, c.anySlot
		c.mu.Unlock()
		if any {
			target := maxSlot // display everything strictly below maxSlot
			if !running {
				target++ // drain the final slot on shutdown
			} else if maxSlot == prevMax {
				// No new packets: steady-state frame from RAM.
				target = processed + 1
			}
			for processed < target {
				c.displaySlot(processed)
				displayed++
				processed++
				if c.cfg.Slots > 0 && displayed >= c.cfg.Slots {
					running = false
					break
				}
			}
			prevMax = maxSlot
		}
	}

	c.udp.Close()
	<-recvDone

	c.setupMu.Lock()
	setupMs := c.setupMs
	c.setupMu.Unlock()
	c.obs.setupMs.Observe(setupMs)
	c.ctrlMu.Lock()
	reconnects := c.reconnects
	resumes := c.resumes
	lastShard := c.lastShard
	c.ctrlMu.Unlock()
	return &Result{
		User:       c.cfg.User,
		Report:     metrics.Aggregate([]*metrics.UserQoE{c.acc}),
		Slots:      c.acc.Slots(),
		Tiles:      c.tilesTotal,
		Bytes:      c.bytesTotal,
		Releases:   c.releases,
		Nacks:      c.nacks,
		Reconnects: reconnects,
		Resumes:    resumes,
		LastShard:  lastShard,
		SetupMs:    setupMs,
	}, nil
}

// receiveLoop ingests datagrams into the reassembler.
func (c *runner) receiveLoop(done chan<- struct{}) {
	defer close(done)
	buf := make([]byte, 65536)
	for {
		n, _, err := c.udp.ReadFrom(buf)
		if err != nil {
			return
		}
		p, err := transport.Decode(buf[:n])
		if err != nil {
			// Malformed (truncated, corrupted, bad checksum) datagrams are
			// counted and dropped — never allowed to crash the pump.
			c.obs.malformed.Inc()
			continue
		}
		if p.User != c.cfg.User {
			continue
		}
		now := time.Now()
		c.reasm.Ingest(p, now)
		c.mu.Lock()
		if !c.anySlot || p.Slot > c.maxSlot {
			c.maxSlot = p.Slot
			c.anySlot = true
		}
		c.mu.Unlock()
	}
}

// displaySlot runs the decode-and-display deadline logic for one server
// slot and reports the ACK.
func (c *runner) displaySlot(slot uint32) {
	if c.cfg.NackLost {
		if lost := c.reasm.Incomplete(slot); len(lost) > 0 {
			c.nacks += len(lost)
			c.obs.nacks.Add(uint64(len(lost)))
			_ = c.send(transport.Nack{User: c.cfg.User, Slot: slot, Tiles: lost})
		}
	}
	stats, _ := c.reasm.FlushSlot(slot)
	// The trace ID rode in on the slot's packet headers; an untraced or
	// packet-less slot (stats.Trace == 0) emits no spans.
	traceID := stats.Trace
	rsp := c.cfg.Tracer.StartAt(traceID, trace.StageRecv, trace.SideClient, c.cfg.User, slot, stats.First.UnixNano())
	rsp.SetTiles(stats.Tiles)
	rsp.SetBytes(stats.Bytes)
	rsp.SetRetry(stats.MaxRetry)
	rsp.EndAt(stats.Last.UnixNano())

	c.mu.Lock()
	ids := c.byslot[slot]
	delete(c.byslot, slot)
	actual := c.cfg.Trace[int(slot)%len(c.cfg.Trace)]
	c.mu.Unlock()

	// RAM admission: every complete tile enters RAM; evictions are
	// released to the server.
	var released []tiles.VideoID
	for _, id := range ids {
		released = append(released, c.ram.Add(id)...)
	}
	if len(released) > 0 {
		c.releases += len(released)
		c.obs.releases.Add(uint64(len(released)))
		_ = c.send(transport.Release{User: c.cfg.User, Tiles: released})
	}

	// Decode stage: the parallel decoders handle up to Decoders new tiles
	// per slot; beyond that the frame misses its display deadline.
	dsp := c.cfg.Tracer.Start(traceID, trace.StageDecode, trace.SideClient, c.cfg.User, slot)
	decodable := len(ids) <= c.cfg.Decoders

	// Coverage: the tiles of the actual FoV (for the actual cell) must be
	// available, freshly delivered or held in RAM, at some quality level.
	level, covered := c.coverage(actual, ids)
	dsp.SetTiles(len(ids))
	dsp.SetLevel(level)
	if !decodable {
		dsp.SetErr("decoder-overflow")
	}
	dsp.End()

	// A frame counts as displayed when it made its deadline with content to
	// show: decodable and either fresh tiles or a full RAM-covered view.
	displayed := decodable && (len(ids) > 0 || covered)
	delayMs := float64(stats.Delay()) / float64(time.Millisecond)

	psp := c.cfg.Tracer.Start(traceID, trace.StageDisplay, trace.SideClient, c.cfg.User, slot)
	psp.SetLevel(level)
	psp.SetRetry(stats.MaxRetry)
	if displayed {
		psp.SetOutcome(trace.OutcomeDisplayed)
	} else {
		psp.SetOutcome(trace.OutcomeMissed)
	}
	psp.End()

	c.acc.Observe(level, covered && decodable, delayMs)
	c.acc.ObserveFrame(displayed)
	if displayed {
		c.obs.displayed.Inc()
	} else {
		c.obs.missed.Inc()
	}
	c.obs.delayMs.Observe(delayMs)

	_ = c.send(transport.TileACK{
		User:      c.cfg.User,
		Slot:      slot,
		Tiles:     ids,
		DelayMs:   delayMs,
		Bytes:     stats.Bytes,
		Covered:   covered && decodable,
		Displayed: displayed,
	})
}

// coverage checks whether the tiles needed by the actual FoV are available
// (delivered this slot or held in RAM) for the actual cell, and returns the
// displayed quality level: the minimum level across the needed tiles, using
// the best version held for each.
func (c *runner) coverage(actual vrmath.Pose, delivered []tiles.VideoID) (int, bool) {
	cell := tiles.CellFor(actual.Pos)
	needed := tiles.ForView(actual, c.cfg.Coverage.FoV, 0)

	// bestLevel finds the highest available quality of one tile.
	bestLevel := func(tile tiles.TileID) int {
		best := 0
		for _, id := range delivered {
			dc, dt, dl := id.Unpack()
			if dc == cell && dt == tile && dl > best {
				best = dl
			}
		}
		for l := tiles.Levels; l > best; l-- {
			if id, err := tiles.PackVideoID(cell, tile, l); err == nil && c.ram.Holds(id) {
				best = l
				break
			}
		}
		return best
	}

	frameLevel := tiles.Levels
	for _, tile := range needed {
		l := bestLevel(tile)
		if l == 0 {
			// A needed tile is missing entirely: no coverage. Report the
			// level of whatever content was delivered, for accounting.
			if len(delivered) > 0 {
				_, _, dl := delivered[0].Unpack()
				return dl, false
			}
			return 1, false
		}
		if l < frameLevel {
			frameLevel = l
		}
	}
	return frameLevel, true
}
