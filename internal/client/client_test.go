package client

import (
	"net"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/motion"
	"repro/internal/tiles"
	"repro/internal/transport"
	"repro/internal/vrmath"
)

// fakeServer implements just enough of the server protocol to exercise the
// client: it accepts the Hello, sends scripted tiles toward the client's
// UDP address, and records the control messages it receives.
type fakeServer struct {
	t    *testing.T
	ln   net.Listener
	udp  net.PacketConn
	msgs chan any
}

func newFakeServer(t *testing.T) *fakeServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	udp, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fs := &fakeServer{t: t, ln: ln, udp: udp, msgs: make(chan any, 1024)}
	t.Cleanup(func() {
		ln.Close()
		udp.Close()
	})
	return fs
}

// serve accepts one client; script runs with the established control conn
// and the client's UDP address, then the control conn closes (ending the
// client).
func (fs *fakeServer) serve(script func(ctrl *transport.Conn, clientUDP net.Addr)) {
	go func() {
		raw, err := fs.ln.Accept()
		if err != nil {
			return
		}
		ctrl := transport.NewConn(raw)
		msg, err := ctrl.Recv()
		if err != nil {
			ctrl.Close()
			return
		}
		hello, ok := msg.(transport.Hello)
		if !ok {
			ctrl.Close()
			return
		}
		udpAddr, err := net.ResolveUDPAddr("udp", hello.UDPAddr)
		if err != nil {
			ctrl.Close()
			return
		}
		// Pump further control messages into the channel.
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				m, err := ctrl.Recv()
				if err != nil {
					return
				}
				select {
				case fs.msgs <- m:
				default:
				}
			}
		}()
		script(ctrl, udpAddr)
		ctrl.Close()
		<-done
	}()
}

// sendTile transmits one complete tile to the client. Send errors are
// ignored: the client may legitimately finish (closing its socket) while
// the script is still streaming.
func (fs *fakeServer) sendTile(dst net.Addr, user, slot uint32, id tiles.VideoID, size int) {
	s := transport.NewSender(fs.udp, dst, nil, transport.DefaultMTU)
	payload := make([]byte, size)
	_ = s.SendTile(user, slot, id, payload)
}

func testTrace(slots int) motion.Trace {
	tr := make(motion.Trace, slots)
	for i := range tr {
		tr[i] = vrmath.Pose{Pos: vrmath.Vec3{X: 1, Z: 1}, Yaw: 20}
	}
	return tr
}

func clientCfg(user uint32, addr string, slots int) Config {
	cfg := DefaultConfig(user, addr, testTrace(slots+16))
	cfg.SlotDuration = 4 * time.Millisecond
	cfg.Slots = slots
	cfg.Params = metrics.QoEParams{Alpha: 0.1, Beta: 0.5}
	return cfg
}

func TestClientRejectsEmptyTrace(t *testing.T) {
	if _, err := Run(Config{ServerAddr: "127.0.0.1:1"}); err == nil {
		t.Fatal("empty trace should error")
	}
}

func TestClientDisplaysDeliveredTiles(t *testing.T) {
	fs := newFakeServer(t)
	// The client stands at (1,1) looking yaw=20: its FoV needs specific
	// tiles for its actual cell.
	cell := tiles.CellFor(vrmath.Vec3{X: 1, Z: 1})
	needed := tiles.ForView(vrmath.Pose{Pos: vrmath.Vec3{X: 1, Z: 1}, Yaw: 20}, vrmath.DefaultFoV, 0)

	fs.serve(func(ctrl *transport.Conn, dst net.Addr) {
		// Send the needed tiles at level 4 for a run of slots.
		for slot := uint32(0); slot < 30; slot++ {
			for _, tile := range needed {
				id, err := tiles.PackVideoID(cell, tile, 4)
				if err != nil {
					return
				}
				fs.sendTile(dst, 3, slot, id, 2000)
			}
			time.Sleep(4 * time.Millisecond)
		}
		time.Sleep(30 * time.Millisecond)
	})

	res, err := Run(clientCfg(3, fs.ln.Addr().String(), 20))
	if err != nil {
		t.Fatal(err)
	}
	if res.Slots == 0 {
		t.Fatal("no slots displayed")
	}
	if res.Report.Coverage < 0.8 {
		t.Errorf("coverage = %v, want >= 0.8 (needed tiles were delivered)", res.Report.Coverage)
	}
	if res.Report.Quality < 3 {
		t.Errorf("quality = %v, want about 4", res.Report.Quality)
	}
	if res.Tiles == 0 {
		t.Errorf("no tiles recorded")
	}
}

func TestClientUploadsPosesAndACKs(t *testing.T) {
	fs := newFakeServer(t)
	fs.serve(func(ctrl *transport.Conn, dst net.Addr) {
		id, _ := tiles.PackVideoID(tiles.CellID{X: 20, Z: 20}, 0, 2)
		for slot := uint32(0); slot < 10; slot++ {
			fs.sendTile(dst, 9, slot, id, 500)
			time.Sleep(4 * time.Millisecond)
		}
		time.Sleep(30 * time.Millisecond)
	})

	_, err := Run(clientCfg(9, fs.ln.Addr().String(), 8))
	if err != nil {
		t.Fatal(err)
	}
	var poses, acks int
	for {
		select {
		case m := <-fs.msgs:
			switch m.(type) {
			case transport.PoseUpdate:
				poses++
			case transport.TileACK:
				acks++
			}
			continue
		default:
		}
		break
	}
	if poses == 0 {
		t.Errorf("client never uploaded a pose")
	}
	if acks == 0 {
		t.Errorf("client never ACKed")
	}
}

func TestClientReleasesTilesBeyondRAMThreshold(t *testing.T) {
	fs := newFakeServer(t)
	fs.serve(func(ctrl *transport.Conn, dst net.Addr) {
		// Send many distinct tiles to overflow a tiny RAM.
		for slot := uint32(0); slot < 20; slot++ {
			id, err := tiles.PackVideoID(tiles.CellID{X: int32(slot), Z: 0}, tiles.TileID(slot%4), 1)
			if err != nil {
				return
			}
			fs.sendTile(dst, 5, slot, id, 400)
			time.Sleep(4 * time.Millisecond)
		}
		time.Sleep(30 * time.Millisecond)
	})

	cfg := clientCfg(5, fs.ln.Addr().String(), 16)
	cfg.RAMThreshold = 4
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Releases == 0 {
		t.Errorf("RAM threshold 4 with ~20 tiles should have released some")
	}
	var releaseMsgs int
	for {
		select {
		case m := <-fs.msgs:
			if _, ok := m.(transport.Release); ok {
				releaseMsgs++
			}
			continue
		default:
		}
		break
	}
	if releaseMsgs == 0 {
		t.Errorf("release notices never reached the server")
	}
}

func TestClientNacksLostFragments(t *testing.T) {
	fs := newFakeServer(t)
	fs.serve(func(ctrl *transport.Conn, dst net.Addr) {
		// Send a multi-fragment tile with one fragment dropped, repeatedly,
		// then advance the slot so the client flushes and notices the loss.
		id, err := tiles.PackVideoID(tiles.CellID{X: 20, Z: 20}, 0, 2)
		if err != nil {
			return
		}
		payload := make([]byte, 3000)
		for slot := uint32(0); slot < 12; slot++ {
			packets := transport.Fragment(6, slot, id, payload, 600, 0)
			buf := make([]byte, 600)
			for i, p := range packets {
				if i == 1 {
					continue // lose the second fragment
				}
				wire := p.Encode(buf)
				if _, err := fs.udp.WriteTo(wire, dst); err != nil {
					return
				}
			}
			time.Sleep(4 * time.Millisecond)
		}
		time.Sleep(30 * time.Millisecond)
	})

	cfg := clientCfg(6, fs.ln.Addr().String(), 10)
	cfg.NackLost = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Nacks == 0 {
		t.Errorf("client never NACKed despite consistent fragment loss")
	}
	var nackMsgs int
	for {
		select {
		case m := <-fs.msgs:
			if _, ok := m.(transport.Nack); ok {
				nackMsgs++
			}
			continue
		default:
		}
		break
	}
	if nackMsgs == 0 {
		t.Errorf("NACK messages never reached the server")
	}
}

func TestClientStopsWhenServerCloses(t *testing.T) {
	fs := newFakeServer(t)
	fs.serve(func(ctrl *transport.Conn, dst net.Addr) {
		// Close immediately after the handshake.
	})
	cfg := clientCfg(2, fs.ln.Addr().String(), 0) // no slot bound
	done := make(chan error, 1)
	go func() {
		_, err := Run(cfg)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("client error: %v", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("client did not stop after server closed")
	}
}

func TestCoverageUsesRAMFallback(t *testing.T) {
	cfg := DefaultConfig(1, "x", testTrace(4))
	r := &runner{
		cfg: cfg,
		ram: tiles.NewClientRAM(16),
		acc: metrics.NewUserQoE(cfg.Params),
	}
	pose := vrmath.Pose{Pos: vrmath.Vec3{X: 1, Z: 1}, Yaw: 20}
	cell := tiles.CellFor(pose.Pos)
	needed := tiles.ForView(pose, cfg.Coverage.FoV, 0)

	// Nothing held: not covered.
	if _, covered := r.coverage(pose, nil); covered {
		t.Fatal("empty state should not be covered")
	}
	// Hold all needed tiles in RAM at level 3: covered at level 3.
	for _, tile := range needed {
		id, err := tiles.PackVideoID(cell, tile, 3)
		if err != nil {
			t.Fatal(err)
		}
		r.ram.Add(id)
	}
	level, covered := r.coverage(pose, nil)
	if !covered || level != 3 {
		t.Errorf("RAM coverage = (%d, %v), want (3, true)", level, covered)
	}
	// A fresh higher-level delivery wins for its tile but the frame level
	// is the minimum across needed tiles.
	id, err := tiles.PackVideoID(cell, needed[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	level, covered = r.coverage(pose, []tiles.VideoID{id})
	if !covered || level != 3 {
		t.Errorf("mixed coverage = (%d, %v), want (3, true)", level, covered)
	}
}
