package client

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/tiles"
	"repro/internal/transport"
	"repro/internal/vrmath"
)

// resumableServer is a fake server that survives control-connection churn:
// it accepts any number of connections, answers each Hello with a Welcome
// (the session-resume handshake), and streams tiles to the client's UDP
// address independently of which control connection is live.
type resumableServer struct {
	t       *testing.T
	ln      net.Listener
	udp     net.PacketConn
	accepts atomic.Int32
	poses   atomic.Int32
	dst     atomic.Value // net.Addr from the first Hello
}

func newResumableServer(t *testing.T) *resumableServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	udp, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rs := &resumableServer{t: t, ln: ln, udp: udp}
	t.Cleanup(func() {
		ln.Close()
		udp.Close()
	})
	return rs
}

// waitDst blocks until a Hello has revealed the client's UDP address, or
// stop closes.
func (rs *resumableServer) waitDst(stop <-chan struct{}) net.Addr {
	for {
		if a, ok := rs.dst.Load().(net.Addr); ok {
			return a
		}
		select {
		case <-stop:
			return nil
		case <-time.After(time.Millisecond):
		}
	}
}

// serve accepts connections until the listener closes. dropAfterPoses > 0
// closes the FIRST connection server-side after that many poses, simulating
// a mid-run control-channel drop; killServer additionally closes the
// listener first, so every redial is refused (a server that died for good).
func (rs *resumableServer) serve(dropAfterPoses int32, killServer bool) {
	go func() {
		for {
			raw, err := rs.ln.Accept()
			if err != nil {
				return
			}
			n := rs.accepts.Add(1)
			go func(raw net.Conn, first bool) {
				ctrl := transport.NewConn(raw)
				defer ctrl.Close()
				msg, err := ctrl.Recv()
				if err != nil {
					return
				}
				hello, ok := msg.(transport.Hello)
				if !ok {
					return
				}
				if addr, err := net.ResolveUDPAddr("udp", hello.UDPAddr); err == nil {
					rs.dst.Store(net.Addr(addr))
				}
				if err := ctrl.Send(transport.Welcome{User: hello.User}); err != nil {
					return
				}
				for {
					m, err := ctrl.Recv()
					if err != nil {
						return
					}
					if _, ok := m.(transport.PoseUpdate); ok {
						p := rs.poses.Add(1)
						if first && dropAfterPoses > 0 && p >= dropAfterPoses {
							if killServer {
								rs.ln.Close()
							}
							return // deferred Close drops the connection
						}
					}
				}
			}(raw, n == 1)
		}
	}()
}

// stream pushes the client's needed tiles over UDP, one slot per tick,
// until stop closes.
func (rs *resumableServer) stream(user uint32, stop <-chan struct{}) {
	go func() {
		dst := rs.waitDst(stop)
		if dst == nil {
			return
		}
		cell := tiles.CellFor(vrmath.Vec3{X: 1, Z: 1})
		needed := tiles.ForView(vrmath.Pose{Pos: vrmath.Vec3{X: 1, Z: 1}, Yaw: 20},
			vrmath.DefaultFoV, 0)
		s := transport.NewSender(rs.udp, dst, nil, transport.DefaultMTU)
		payload := make([]byte, 1500)
		for slot := uint32(0); ; slot++ {
			select {
			case <-stop:
				return
			case <-time.After(4 * time.Millisecond):
			}
			for _, tile := range needed {
				if id, err := tiles.PackVideoID(cell, tile, 3); err == nil {
					_ = s.SendTile(user, slot, id, payload)
				}
			}
		}
	}()
}

// TestClientReconnectResumesSession: the control connection drops mid-run;
// with Config.Reconnect the client redials with backoff, revalidates the
// session via the Welcome, and finishes its display horizon instead of
// dying — the commodity-mobile-device contract under flaky networks.
func TestClientReconnectResumesSession(t *testing.T) {
	base := obs.LeakSnapshot()
	rs := newResumableServer(t)
	rs.serve(5, false) // drop connection #1 after 5 poses
	stop := make(chan struct{})
	rs.stream(11, stop)

	reg := obs.NewRegistry()
	cfg := clientCfg(11, rs.ln.Addr().String(), 40)
	cfg.Metrics = reg
	cfg.Reconnect = true
	cfg.ReconnectAttempts = 6
	cfg.ReconnectBase = 2 * time.Millisecond
	cfg.ReconnectCap = 20 * time.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Slots == 0 {
		t.Fatal("no slots displayed across the reconnect")
	}
	if res.Reconnects < 1 {
		t.Errorf("Reconnects = %d, want >= 1 (connection was dropped mid-run)", res.Reconnects)
	}
	if got := rs.accepts.Load(); got < 2 {
		t.Errorf("server accepts = %d, want >= 2", got)
	}
	if got := reg.Counter("collabvr_client_reconnects_total").Value(); got < 1 {
		t.Errorf("collabvr_client_reconnects_total = %d, want >= 1", got)
	}
	// Poses must keep flowing on the resumed connection.
	if got := rs.poses.Load(); got < 8 {
		t.Errorf("poses received = %d, want more than the pre-drop 5", got)
	}
	// Tear down the fake server's goroutines before the leak check.
	close(stop)
	rs.ln.Close()
	obs.AssertNoLeaks(t, base)
}

// TestClientReconnectGivesUpWhenServerGone: with the server permanently
// down, the redial budget runs out and Run returns instead of spinning.
func TestClientReconnectGivesUpWhenServerGone(t *testing.T) {
	base := obs.LeakSnapshot()
	rs := newResumableServer(t)
	// After 3 poses the server closes its listener AND the connection:
	// every redial is refused.
	rs.serve(3, true)
	stop := make(chan struct{})
	rs.stream(12, stop)

	cfg := clientCfg(12, rs.ln.Addr().String(), 10_000) // horizon unreachable
	cfg.Reconnect = true
	cfg.ReconnectAttempts = 3
	cfg.ReconnectBase = time.Millisecond
	cfg.ReconnectCap = 5 * time.Millisecond
	done := make(chan struct{})
	var res *Result
	var err error
	go func() {
		res, err = Run(cfg)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("client did not give up after exhausting its redial budget")
	}
	if err != nil {
		t.Fatal(err)
	}
	if res.Reconnects != 0 {
		t.Errorf("Reconnects = %d, want 0 (every redial failed)", res.Reconnects)
	}
	close(stop)
	obs.AssertNoLeaks(t, base)
}

// TestClientCountsMalformedDatagrams: garbage on the media port is dropped
// and counted; it never reaches the reassembler or crashes the receive pump.
func TestClientCountsMalformedDatagrams(t *testing.T) {
	rs := newResumableServer(t)
	rs.serve(0, false)
	stop := make(chan struct{})
	defer close(stop)
	rs.stream(13, stop)

	// Blast garbage at the client's UDP port as soon as it is known.
	garbageStop := make(chan struct{})
	defer close(garbageStop)
	go func() {
		dst := rs.waitDst(garbageStop)
		if dst == nil {
			return
		}
		junk, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			return
		}
		defer junk.Close()
		for {
			select {
			case <-garbageStop:
				return
			case <-time.After(3 * time.Millisecond):
			}
			_, _ = junk.WriteTo([]byte{0xde, 0xad, 0xbe, 0xef, 0x01}, dst)
		}
	}()

	reg := obs.NewRegistry()
	cfg := clientCfg(13, rs.ln.Addr().String(), 30)
	cfg.Metrics = reg
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Slots == 0 {
		t.Fatal("no slots displayed")
	}
	if got := reg.Counter("collabvr_client_rx_malformed_total").Value(); got < 1 {
		t.Errorf("collabvr_client_rx_malformed_total = %d, want >= 1", got)
	}
}
