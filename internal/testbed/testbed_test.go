package testbed

import (
	"testing"
	"time"

	"repro/internal/core"
)

// tinySetup is a fast-but-real configuration: 2 users, one router, generous
// capacity, real loopback sockets.
func tinySetup() Setup {
	return Setup{
		Name:             "tiny",
		Users:            2,
		Routers:          1,
		ServerBudgetMbps: 200,
		Throttles:        []float64{50, 60},
		JitterFrac:       0.05,
		LossProb:         0,
	}
}

func tinyConfig() Config {
	return Config{
		Setup:        tinySetup(),
		Slots:        120,
		SlotDuration: 4 * time.Millisecond,
		Seed:         1,
	}
}

// TestEndToEndPipeline drives the full real-system stack — server slot
// loop, motion prediction, allocation, RTP-over-UDP delivery with shaping,
// client reassembly/decode/display, TCP ACK feedback — and checks the
// integration invariants.
func TestEndToEndPipeline(t *testing.T) {
	res, err := Run(tinyConfig(), "proposed", core.DVGreedy{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerUser) != 2 {
		t.Fatalf("per-user reports = %d, want 2", len(res.PerUser))
	}
	agg := res.Aggregate
	if agg.Quality <= 0 {
		t.Errorf("no quality delivered: %+v", agg)
	}
	if agg.Coverage < 0.5 {
		t.Errorf("coverage %v too low; the delivery pipeline is broken", agg.Coverage)
	}
	if agg.FPSFrac < 0.5 {
		t.Errorf("on-time frame fraction %v too low", agg.FPSFrac)
	}
	if agg.Quality > 6 {
		t.Errorf("quality %v above the ladder maximum", agg.Quality)
	}

	// Server-side counters: tiles flowed and the repetitive-tile
	// suppression engaged (users linger in cells across slots).
	var sent, skipped int
	for _, st := range res.ServerStats {
		sent += st.TilesSent
		skipped += st.TilesSkipped
		if st.SlotsServed == 0 {
			t.Errorf("user %d was never served", st.User)
		}
		if st.MeanLevel < 1 || st.MeanLevel > 6 {
			t.Errorf("user %d mean level %v outside ladder", st.User, st.MeanLevel)
		}
	}
	if sent == 0 {
		t.Fatalf("no tiles sent")
	}
	if skipped == 0 {
		t.Errorf("repetitive-tile suppression never engaged (sent=%d)", sent)
	}
}

// TestThrottledUserGetsLowerQuality checks the bandwidth heterogeneity
// response: a heavily throttled user must converge to a lower quality than
// a generously provisioned one.
func TestThrottledUserGetsLowerQuality(t *testing.T) {
	cfg := tinyConfig()
	cfg.Slots = 200
	cfg.Setup.Throttles = []float64{10} // user 0 and 1 both at 10 first...
	// Assign asymmetric throttles deterministically by overriding after the
	// shuffle would apply: use two values and a fixed seed such that both
	// appear.
	cfg.Setup.Throttles = []float64{8, 80}
	res, err := Run(cfg, "proposed", core.DVGreedy{})
	if err != nil {
		t.Fatal(err)
	}
	// With the fixed seed both throttles are assigned; find the spread in
	// server mean levels.
	if len(res.ServerStats) != 2 {
		t.Fatalf("server stats = %d", len(res.ServerStats))
	}
	var estLo, estHi = res.ServerStats[0], res.ServerStats[1]
	if estLo.EstMbps > estHi.EstMbps {
		estLo, estHi = estHi, estLo
	}
	if estLo.EstMbps == 0 || estHi.EstMbps == 0 {
		t.Skip("throughput estimator unprimed in short run")
	}
	if estLo.MeanLevel > estHi.MeanLevel+0.5 {
		t.Errorf("throttled user got higher quality: lo %+v hi %+v", estLo, estHi)
	}
}

// TestRunAllComparesAlgorithms runs the three algorithms of Fig. 7 on the
// tiny setup and sanity-checks the outputs exist and are finite.
func TestRunAllComparesAlgorithms(t *testing.T) {
	if testing.Short() {
		t.Skip("integration comparison in -short mode")
	}
	cfg := tinyConfig()
	cfg.Slots = 100
	results, err := RunAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d, want 3", len(results))
	}
	names := map[string]bool{}
	for _, r := range results {
		names[r.Algorithm] = true
		if r.Aggregate.Quality <= 0 {
			t.Errorf("%s delivered no quality", r.Algorithm)
		}
	}
	for _, want := range []string{"proposed", "firefly", "pavq"} {
		if !names[want] {
			t.Errorf("missing algorithm %s", want)
		}
	}
}

// TestLossHandlingImprovesCoverage exercises the Discussion-section
// extension end to end: under heavy packet loss, NACK-driven
// retransmission recovers tiles that plain RTP drops.
func TestLossHandlingImprovesCoverage(t *testing.T) {
	base := tinyConfig()
	base.Slots = 200
	base.Setup.LossProb = 0.25

	plain, err := Run(base, "proposed", core.DVGreedy{})
	if err != nil {
		t.Fatal(err)
	}
	withNack := base
	withNack.LossHandling = true
	recovered, err := Run(withNack, "proposed", core.DVGreedy{})
	if err != nil {
		t.Fatal(err)
	}

	if recovered.Aggregate.Coverage < plain.Aggregate.Coverage-0.02 {
		t.Errorf("loss handling reduced coverage: %v -> %v",
			plain.Aggregate.Coverage, recovered.Aggregate.Coverage)
	}
	var retransmits int
	for _, st := range recovered.ServerStats {
		retransmits += st.Retransmits
	}
	if retransmits == 0 {
		t.Errorf("no NACK retransmissions at 25%% loss")
	}
	t.Logf("coverage without NACK %.3f, with NACK %.3f (%d retransmits)",
		plain.Aggregate.Coverage, recovered.Aggregate.Coverage, retransmits)
}

func TestRunValidation(t *testing.T) {
	cfg := tinyConfig()
	cfg.Slots = 0
	if _, err := Run(cfg, "x", core.DVGreedy{}); err == nil {
		t.Error("zero slots should error")
	}
	cfg = tinyConfig()
	cfg.Setup.Users = 0
	if _, err := Run(cfg, "x", core.DVGreedy{}); err == nil {
		t.Error("zero users should error")
	}
}

func TestSetupPresets(t *testing.T) {
	s1, s2 := Setup1(), Setup2()
	if s1.Users != 8 || s1.Routers != 1 || s1.ServerBudgetMbps != 400 {
		t.Errorf("setup1 = %+v", s1)
	}
	if s2.Users != 15 || s2.Routers != 2 || s2.ServerBudgetMbps != 800 {
		t.Errorf("setup2 = %+v", s2)
	}
	if s2.JitterFrac <= s1.JitterFrac {
		t.Errorf("setup2 should be noisier than setup1")
	}
}
