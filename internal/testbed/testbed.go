// Package testbed orchestrates the real-system experiments of Section VI:
// an in-process edge server plus N emulated smartphone clients communicating
// over real loopback UDP/TCP sockets, with token-bucket throttles standing
// in for the Linux TC rate limits and router capacities of the paper's
// physical testbed. Setup 1 is 8 users behind one router (400 Mbps); setup
// 2 is 15 users behind two bridged routers (800 Mbps) with extra rate
// variance from wireless interference.
package testbed

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/baseline"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/motion"
	"repro/internal/netem"
	"repro/internal/server"
	"repro/internal/transport"
)

// Setup describes one experimental configuration.
type Setup struct {
	Name    string
	Users   int
	Routers int
	// ServerBudgetMbps is B(t) (paper: 400 for setup 1, 800 for setup 2).
	ServerBudgetMbps float64
	// Throttles are the per-user shaping rates, assigned round-robin after
	// a seeded shuffle (paper: {40, 45, 50, 55, 60} Mbps).
	Throttles []float64
	// JitterFrac is the amplitude of the time-varying rate perturbation;
	// the two-router setup suffers more variance from interference.
	JitterFrac float64
	// LossProb is the i.i.d. packet-loss probability of the RTP stream.
	LossProb float64
}

// Setup1 is the paper's first experiment: 8 users, one router.
func Setup1() Setup {
	return Setup{
		Name:             "setup1-8users-1router",
		Users:            8,
		Routers:          1,
		ServerBudgetMbps: 400,
		Throttles:        []float64{40, 45, 50, 55, 60},
		JitterFrac:       0.10,
		LossProb:         0.002,
	}
}

// Setup2 is the paper's second experiment: 15 users, two bridged routers
// with stronger interference-driven variance.
func Setup2() Setup {
	return Setup{
		Name:             "setup2-15users-2routers",
		Users:            15,
		Routers:          2,
		ServerBudgetMbps: 800,
		Throttles:        []float64{40, 45, 50, 55, 60},
		JitterFrac:       0.30,
		LossProb:         0.005,
	}
}

// Config controls a testbed run.
type Config struct {
	Setup Setup
	// Slots is the experiment length in time slots.
	Slots int
	// SlotDuration is the real-time slot length; scaling it up slows the
	// experiment down without changing the decision pipeline.
	SlotDuration time.Duration
	Seed         int64
	Params       core.Params
	// ClientParams weight the client-side QoE accounting; zero value means
	// derive from Params.
	ClientParams metrics.QoEParams
	// LossHandling enables the Discussion-section extension: clients NACK
	// fragment-lost tiles and the server retransmits them.
	LossHandling bool
}

// Result is the outcome of one algorithm's run on a setup.
type Result struct {
	Algorithm string
	// PerUser holds each client's report.
	PerUser []metrics.Report
	// Aggregate averages the per-user reports.
	Aggregate metrics.Report
	// FPS is the average displayed-frame rate in frames/second.
	FPS float64
	// ServerStats snapshots the server-side counters.
	ServerStats []server.UserStats
}

// Run executes one algorithm on the given setup and returns its result.
func Run(cfg Config, allocName string, alloc core.Allocator) (*Result, error) {
	if cfg.Slots <= 0 {
		return nil, fmt.Errorf("testbed: Slots must be positive")
	}
	if cfg.SlotDuration <= 0 {
		cfg.SlotDuration = time.Second / 60
	}
	if cfg.Params.Levels == 0 {
		cfg.Params = core.DefaultSystemParams()
	}
	if cfg.ClientParams == (metrics.QoEParams{}) {
		cfg.ClientParams = metrics.QoEParams{Alpha: cfg.Params.Alpha, Beta: cfg.Params.Beta}
	}
	setup := cfg.Setup
	if setup.Users <= 0 || setup.Routers <= 0 {
		return nil, fmt.Errorf("testbed: setup needs users and routers")
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	now := time.Now()

	// Router buckets: the shared capacity of each router.
	// Bucket bursts are kept small (a few MTUs) so that pacing — not burst
	// absorption — shapes the stream; this is what makes the client's
	// first-to-last packet delay measurement and the server's goodput-based
	// throughput estimate meaningful, as on a real throttled link.
	routers := make([]*netem.TokenBucket, setup.Routers)
	perRouter := setup.ServerBudgetMbps / float64(setup.Routers)
	for i := range routers {
		routers[i] = netem.NewTokenBucket(perRouter, 16<<10, now)
	}

	// Per-user throttles: shuffled assignment from the guideline list.
	userRate := make([]float64, setup.Users)
	for i := range userRate {
		userRate[i] = setup.Throttles[rng.Intn(len(setup.Throttles))]
	}
	userBuckets := make([]*netem.TokenBucket, setup.Users)
	for i := range userBuckets {
		userBuckets[i] = netem.NewTokenBucket(userRate[i], 4<<10, now)
	}

	// Time-varying capacity: besides small per-interval jitter, links
	// suffer sustained fades — the wireless-interference behaviour that
	// makes the two-router setup hostile to estimation-driven algorithms
	// in the paper's Fig. 8. Fade probability and depth scale with
	// JitterFrac.
	jitterStop := make(chan struct{})
	var jitterWG sync.WaitGroup
	jitterWG.Add(1)
	go func() {
		defer jitterWG.Done()
		jrng := rand.New(rand.NewSource(cfg.Seed + 1))
		fadeLeft := make([]int, setup.Users) // remaining fade intervals
		fadeDepth := make([]float64, setup.Users)
		ticker := time.NewTicker(10 * cfg.SlotDuration)
		defer ticker.Stop()
		for {
			select {
			case <-jitterStop:
				return
			case <-ticker.C:
				t := time.Now()
				for i, b := range userBuckets {
					if fadeLeft[i] > 0 {
						fadeLeft[i]--
					} else if jrng.Float64() < setup.JitterFrac*0.25 {
						// Enter a fade lasting 4-12 intervals (40-120
						// slots) with depth growing with JitterFrac.
						fadeLeft[i] = 4 + jrng.Intn(9)
						floor := 1 - 2.8*setup.JitterFrac
						if floor < 0.1 {
							floor = 0.1
						}
						fadeDepth[i] = floor + jrng.Float64()*(0.6-floor)
						if fadeDepth[i] < floor {
							fadeDepth[i] = floor
						}
					}
					factor := 1 + jrng.NormFloat64()*0.08
					if fadeLeft[i] > 0 {
						factor = fadeDepth[i] * (1 + jrng.NormFloat64()*0.05)
					}
					if factor < 0.05 {
						factor = 0.05
					}
					b.SetRate(userRate[i]*factor, t)
				}
			}
		}
	}()
	defer func() {
		close(jitterStop)
		jitterWG.Wait()
	}()

	// The server shapes each user's stream through its throttle and its
	// router, with i.i.d. loss.
	shaperFor := func(user uint32) transport.Shaper {
		u := int(user) % setup.Users
		router := routers[u%setup.Routers]
		loss := netem.NewLossModel(setup.LossProb, cfg.Seed+int64(user)*131)
		return transport.ChainShaper{
			bucketShaper{userBuckets[u]},
			bucketShaper{router},
			lossShaper{loss},
		}
	}

	srvCfg := server.DefaultConfig(alloc)
	srvCfg.Params = cfg.Params
	srvCfg.SlotDuration = cfg.SlotDuration
	srvCfg.BudgetMbps = setup.ServerBudgetMbps
	srvCfg.TotalSlots = cfg.Slots
	srvCfg.ShaperFor = shaperFor
	srvCfg.SizeModelSeed = uint64(cfg.Seed)
	srvCfg.RetransmitOnNack = cfg.LossHandling
	srv, err := server.New(srvCfg)
	if err != nil {
		return nil, err
	}

	// Clients: one goroutine per emulated smartphone, replaying a
	// generated motion trace.
	scenes := motion.Scenes()
	results := make([]*client.Result, setup.Users)
	errs := make([]error, setup.Users)
	var wg sync.WaitGroup
	for u := 0; u < setup.Users; u++ {
		trace := motion.Generate(scenes[u%2], u, cfg.Slots+64, 1/cfg.SlotDuration.Seconds(), cfg.Seed)
		ccfg := client.DefaultConfig(uint32(u), srv.ControlAddr(), trace)
		ccfg.SlotDuration = cfg.SlotDuration
		ccfg.Params = cfg.ClientParams
		ccfg.NackLost = cfg.LossHandling
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			results[u], errs[u] = client.Run(ccfg)
		}(u)
	}

	<-srv.Done()
	serverStats := srv.Stats()
	srv.Close() // closes control conns; clients drain and return
	wg.Wait()

	res := &Result{Algorithm: allocName, ServerStats: serverStats}
	var users []metrics.Report
	for u := 0; u < setup.Users; u++ {
		if errs[u] != nil {
			return nil, fmt.Errorf("testbed: client %d: %w", u, errs[u])
		}
		users = append(users, results[u].Report)
	}
	res.PerUser = users
	res.Aggregate = averageReports(users)
	res.FPS = res.Aggregate.FPSFrac / cfg.SlotDuration.Seconds()
	return res, nil
}

// RunAll executes the standard algorithm set (proposed, Firefly, PAVQ) on a
// setup, reusing the configuration for comparability.
func RunAll(cfg Config) ([]*Result, error) {
	algs := []struct {
		name string
		mk   func() core.Allocator
	}{
		{"proposed", func() core.Allocator { return core.DVGreedy{} }},
		{"firefly", func() core.Allocator { return newFirefly() }},
		{"pavq", func() core.Allocator { return newPAVQ() }},
	}
	out := make([]*Result, 0, len(algs))
	for _, a := range algs {
		r, err := Run(cfg, a.name, a.mk())
		if err != nil {
			return nil, fmt.Errorf("testbed: %s: %w", a.name, err)
		}
		out = append(out, r)
	}
	return out, nil
}

func averageReports(users []metrics.Report) metrics.Report {
	var agg metrics.Report
	if len(users) == 0 {
		return agg
	}
	for _, r := range users {
		agg.QoE += r.QoE
		agg.Quality += r.Quality
		agg.Delay += r.Delay
		agg.Variance += r.Variance
		agg.Coverage += r.Coverage
		agg.FPSFrac += r.FPSFrac
	}
	n := float64(len(users))
	agg.QoE /= n
	agg.Quality /= n
	agg.Delay /= n
	agg.Variance /= n
	agg.Coverage /= n
	agg.FPSFrac /= n
	return agg
}

func newFirefly() core.Allocator { return baseline.NewFirefly() }
func newPAVQ() core.Allocator    { return baseline.NewPAVQ() }

// bucketShaper adapts netem.TokenBucket to transport.Shaper.
type bucketShaper struct{ b *netem.TokenBucket }

func (s bucketShaper) Admit(n int, now time.Time) time.Duration { return s.b.Admit(n, now) }
func (s bucketShaper) Drop() bool                               { return false }

// lossShaper adapts netem.LossModel to transport.Shaper.
type lossShaper struct{ l *netem.LossModel }

func (s lossShaper) Admit(int, time.Time) time.Duration { return 0 }
func (s lossShaper) Drop() bool                         { return s.l.Drop() }
