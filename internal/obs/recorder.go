package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Constraint names of a quality_verification rejection, matching the two
// feasibility checks of Algorithm 1: the per-user budget B_n(t) and the
// shared slot budget B(t).
const (
	ConstraintUserCap = "user-cap"
	ConstraintBudget  = "budget"
)

// ConstraintUnprofitable marks a counterfactual upgrade the greedy loop
// never attempted because its marginal score had gone negative ("if eta < 0
// then I = {}"). It appears only in Alternatives, never in Rejections.
const ConstraintUnprofitable = "unprofitable"

// Alternative is one unchosen upgrade the allocator considered and walked
// away from: raising User to Level would have added Gain objective value.
// Score is the greedy pass's marginal ranking score, so alternatives are
// directly comparable with the upgrades that won.
type Alternative struct {
	User   int     `json:"user"`
	Level  int     `json:"level"`
	Score  float64 `json:"score"`
	Gain   float64 `json:"gain"`
	Reason string  `json:"reason"`
}

// Rejection is one quality_verification failure: the upgrade of one user to
// one level was reverted because it violated a constraint.
type Rejection struct {
	User       int    `json:"user"`
	Level      int    `json:"level"`
	Constraint string `json:"constraint"`
}

// SlotRecord is one flight-recorder entry: everything one allocation slot
// decided for one algorithm, and (when an offline optimum ran over the same
// inputs) how far the decision landed from it.
type SlotRecord struct {
	Algorithm  string  `json:"algorithm"`
	Run        int     `json:"run"`
	Slot       int     `json:"slot"`
	Levels     []int   `json:"levels"`
	Value      float64 `json:"value"`
	RateMbps   float64 `json:"rate_mbps"`
	BudgetMbps float64 `json:"budget_mbps"`
	// Utilization is RateMbps/BudgetMbps, the slot's budget utilization.
	Utilization float64 `json:"utilization"`
	// Branch is the greedy branch the combined algorithm returned
	// ("density" or "value"); empty for non-greedy allocators.
	Branch string `json:"branch,omitempty"`
	// Upgrades counts the accepted quality upgrades of the returned pass.
	Upgrades   int         `json:"upgrades"`
	Rejections []Rejection `json:"rejections,omitempty"`
	// Objective decomposition (eq. (9)) of the chosen allocation:
	// Value = QualityTerm - DelayTerm - VarianceTerm.
	QualityTerm  float64 `json:"quality_term"`
	DelayTerm    float64 `json:"delay_term"`
	VarianceTerm float64 `json:"variance_term"`
	// Regret is max(0, OptimalValue-Value); meaningful only when HasRegret
	// is set (an offline optimum ran over the same slot inputs).
	OptimalValue float64 `json:"optimal_value,omitempty"`
	Regret       float64 `json:"regret"`
	HasRegret    bool    `json:"has_regret"`
	// SessionIDs maps slot-local user indices to stable session IDs, so
	// per-user fields survive churn (a session's index changes as others
	// join and leave). Empty when the producer has no session identity; the
	// attributor then falls back to the index.
	SessionIDs []uint32 `json:"session_ids,omitempty"`
	// Alternatives are the top-K unchosen upgrades of the winning greedy
	// pass — the slot's counterfactual decisions. Present only when capture
	// was enabled (opt-in; see knapsack.PassTrace.TopK).
	Alternatives []Alternative `json:"alternatives,omitempty"`
	// UserValues is each user's objective contribution h_n at the chosen
	// levels (eq. (9) per user; sums to Value).
	UserValues []float64 `json:"user_values,omitempty"`
	// UserRegret is each user's objective shortfall versus the reference
	// optimum's allocation of the same slot (positive: the optimum served
	// this user better). Set only alongside HasRegret.
	UserRegret []float64 `json:"user_regret,omitempty"`
	// CapErr is each user's signed relative channel-capacity estimate error
	// (est-true)/true, when the producer estimates capacity; regret on a
	// badly-estimated user is attributed to the estimator, not the policy.
	CapErr []float64 `json:"cap_err,omitempty"`
}

// RecorderOptions configures a Recorder.
type RecorderOptions struct {
	// RingSize bounds the in-memory record ring served by /debug/slots
	// (default 256; the ring holds the most recent records).
	RingSize int
	// Writer, when non-nil, receives every record as one JSON line.
	Writer io.Writer
	// Attributor, when non-nil, receives every record for regret
	// attribution (served by /debug/regret).
	Attributor *RegretAttributor
}

// regretBuckets spans the objective scale of the paper's instances (per-slot
// h_n sums in the low tens).
var regretBuckets = []float64{0, 0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25}

// utilizationBuckets cover budget utilization 0..1+.
var utilizationBuckets = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1}

// algAgg is the running aggregation of one algorithm's records.
type algAgg struct {
	slots       int
	valueSum    float64
	utilHist    *Histogram
	upgrades    uint64
	rejections  map[string]uint64
	regretSlots int
	regretSum   float64
	regretMax   float64
	regretHist  *Histogram
}

// Recorder is the concurrency-safe decision flight recorder. A nil
// *Recorder is the disabled recorder: Enabled reports false and Record is
// an allocation-free no-op.
type Recorder struct {
	mu       sync.Mutex
	ring     []SlotRecord
	next     int
	full     bool
	enc      *json.Encoder
	writeErr error
	attr     *RegretAttributor
	aggs     map[string]*algAgg
	order    []string // algorithm names in first-seen order
	records  uint64
}

// NewRecorder builds a recorder.
func NewRecorder(opts RecorderOptions) *Recorder {
	if opts.RingSize <= 0 {
		opts.RingSize = 256
	}
	r := &Recorder{
		ring: make([]SlotRecord, opts.RingSize),
		aggs: make(map[string]*algAgg),
		attr: opts.Attributor,
	}
	if opts.Writer != nil {
		r.enc = json.NewEncoder(opts.Writer)
	}
	return r
}

// Enabled reports whether records will be kept. Use it to skip building a
// SlotRecord on the disabled path.
func (r *Recorder) Enabled() bool { return r != nil }

// Record ingests one slot record (copied; the caller may reuse rec, but
// not the slices it points to — the ring and the attributor alias them).
func (r *Recorder) Record(rec *SlotRecord) {
	if r == nil || rec == nil {
		return
	}
	r.attr.Observe(rec)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.records++

	r.ring[r.next] = *rec
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.full = true
	}

	agg := r.aggs[rec.Algorithm]
	if agg == nil {
		agg = &algAgg{
			rejections: make(map[string]uint64),
			regretHist: NewHistogram(regretBuckets),
			utilHist:   NewHistogram(utilizationBuckets),
		}
		r.aggs[rec.Algorithm] = agg
		r.order = append(r.order, rec.Algorithm)
	}
	agg.slots++
	agg.valueSum += rec.Value
	agg.utilHist.Observe(rec.Utilization)
	agg.upgrades += uint64(rec.Upgrades)
	for _, rej := range rec.Rejections {
		agg.rejections[rej.Constraint]++
	}
	if rec.HasRegret {
		agg.regretSlots++
		agg.regretSum += rec.Regret
		if rec.Regret > agg.regretMax {
			agg.regretMax = rec.Regret
		}
		agg.regretHist.Observe(rec.Regret)
	}

	if r.enc != nil && r.writeErr == nil {
		r.writeErr = r.enc.Encode(rec)
	}
}

// Err returns the first JSONL write error, if any.
func (r *Recorder) Err() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.writeErr
}

// Records returns the total number of records ingested.
func (r *Recorder) Records() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.records
}

// RingCapacity returns the configured ring size (0 when disabled).
func (r *Recorder) RingCapacity() int {
	if r == nil {
		return 0
	}
	return len(r.ring)
}

// Dropped returns how many records have fallen out of the ring: ingested
// records beyond the ring's capacity. A JSONL writer still saw them; the
// /debug/slots ring did not.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	held := uint64(r.next)
	if r.full {
		held = uint64(len(r.ring))
	}
	return r.records - held
}

// Recent returns up to n of the most recent records, oldest first.
func (r *Recorder) Recent(n int) []SlotRecord {
	if r == nil || n <= 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	size := r.next
	if r.full {
		size = len(r.ring)
	}
	if n > size {
		n = size
	}
	out := make([]SlotRecord, n)
	for i := 0; i < n; i++ {
		idx := (r.next - n + i + len(r.ring)) % len(r.ring)
		out[i] = r.ring[idx]
	}
	return out
}

// AlgorithmSummary aggregates one algorithm's records.
type AlgorithmSummary struct {
	Name            string  `json:"algorithm"`
	Slots           int     `json:"slots"`
	MeanValue       float64 `json:"mean_value"`
	MeanUtilization float64 `json:"mean_utilization"`
	P90Utilization  float64 `json:"p90_utilization"`
	Upgrades        uint64  `json:"upgrades"`
	// RejectsUserCap and RejectsBudget split the quality_verification
	// rejections by violated constraint.
	RejectsUserCap uint64 `json:"rejects_user_cap"`
	RejectsBudget  uint64 `json:"rejects_budget"`
	// Regret statistics versus the offline optimum (RegretSlots == 0 when
	// no optimum ran alongside).
	RegretSlots int     `json:"regret_slots"`
	MeanRegret  float64 `json:"mean_regret"`
	MaxRegret   float64 `json:"max_regret"`
	P50Regret   float64 `json:"p50_regret"`
	P90Regret   float64 `json:"p90_regret"`
	P99Regret   float64 `json:"p99_regret"`
}

// Summary is the end-of-run aggregation of every record seen.
type Summary struct {
	Records    uint64             `json:"records"`
	Algorithms []AlgorithmSummary `json:"algorithms"`
}

// Summary computes the aggregation so far.
func (r *Recorder) Summary() Summary {
	if r == nil {
		return Summary{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Summary{Records: r.records}
	names := append([]string(nil), r.order...)
	sort.Strings(names)
	for _, name := range names {
		agg := r.aggs[name]
		as := AlgorithmSummary{
			Name:           name,
			Slots:          agg.slots,
			Upgrades:       agg.upgrades,
			RejectsUserCap: agg.rejections[ConstraintUserCap],
			RejectsBudget:  agg.rejections[ConstraintBudget],
			RegretSlots:    agg.regretSlots,
			MaxRegret:      agg.regretMax,
		}
		if agg.slots > 0 {
			as.MeanValue = agg.valueSum / float64(agg.slots)
			as.MeanUtilization = agg.utilHist.Mean()
			as.P90Utilization = agg.utilHist.Quantile(0.9)
		}
		if agg.regretSlots > 0 {
			as.MeanRegret = agg.regretSum / float64(agg.regretSlots)
			as.P50Regret = agg.regretHist.Quantile(0.5)
			as.P90Regret = agg.regretHist.Quantile(0.9)
			as.P99Regret = agg.regretHist.Quantile(0.99)
		}
		s.Algorithms = append(s.Algorithms, as)
	}
	return s
}

// Format renders the summary as the end-of-run report table.
func (s Summary) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# trace summary: %d records\n", s.Records)
	fmt.Fprintf(&b, "%-10s %8s %9s %12s %11s %10s %8s %12s %10s %10s %10s\n",
		"algorithm", "slots", "upgrades", "rej(capB_n)", "rej(budB)", "mean-util", "p90-util",
		"mean-regret", "max-regret", "p90-regret", "p99-regret")
	for _, a := range s.Algorithms {
		fmt.Fprintf(&b, "%-10s %8d %9d %12d %11d %10.3f %8.3f ",
			a.Name, a.Slots, a.Upgrades, a.RejectsUserCap, a.RejectsBudget,
			a.MeanUtilization, a.P90Utilization)
		if a.RegretSlots > 0 {
			fmt.Fprintf(&b, "%12.5f %10.5f %10.5f %10.5f\n",
				a.MeanRegret, a.MaxRegret, a.P90Regret, a.P99Regret)
		} else {
			fmt.Fprintf(&b, "%12s %10s %10s %10s\n", "-", "-", "-", "-")
		}
	}
	return b.String()
}
