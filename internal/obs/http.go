package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// MetricsHandler serves the registry in Prometheus text exposition format
// (a nil registry serves an empty body).
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// slotsResponse is the /debug/slots JSON document.
type slotsResponse struct {
	Summary Summary `json:"summary"`
	// RingCapacity is the configured flight-recorder ring size and
	// RingDropped how many records have already fallen out of it.
	RingCapacity int          `json:"ring_capacity"`
	RingDropped  uint64       `json:"ring_dropped"`
	Recent       []SlotRecord `json:"recent"`
}

// SlotsHandler serves the recorder's summary and its most recent records as
// JSON. The `n` query parameter bounds the record count (default 64).
func SlotsHandler(rec *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		n := 64
		if s := req.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/json")
		resp := slotsResponse{
			Summary:      rec.Summary(),
			RingCapacity: rec.RingCapacity(),
			RingDropped:  rec.Dropped(),
			Recent:       rec.Recent(n),
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(resp)
	})
}

// NewMux returns an http.ServeMux with the standard observability routes:
// /metrics (Prometheus text) and /debug/slots (flight-recorder JSON).
func NewMux(r *Registry, rec *Recorder) *http.ServeMux {
	return NewMuxOpts(r, rec, MuxOptions{})
}

// MuxOptions selects the optional observability routes.
type MuxOptions struct {
	// SLO, when non-nil, adds /debug/slo and refreshes the SLO gauges on
	// every /metrics scrape.
	SLO *SLOMonitor
	// Regret, when non-nil, adds /debug/regret.
	Regret *RegretAttributor
	// Fleet, when non-nil, adds /debug/fleet serving the coordinator's
	// shard table and placement-decision tail.
	Fleet func(n int) FleetSnapshot
	// Health, when non-nil, adds /debug/health. The handler comes from
	// obs/tsdb (tsdb.Handler); it is a plain http.Handler here so obs does
	// not depend on the health store package.
	Health http.Handler
	// Coord, when non-nil, adds /debug/coord serving the replicated
	// coordinator's leadership and log-frontier document. The handler comes
	// from fleet/coord (coord.Handler), a plain http.Handler here so obs
	// does not depend on the coordinator package.
	Coord http.Handler
	// Debug adds the pprof endpoints and /debug/runtime, and samples the
	// runtime into collabvr_runtime_* gauges on every /metrics scrape.
	Debug bool
}

// NewMuxOpts is NewMux with the optional routes.
func NewMuxOpts(r *Registry, rec *Recorder, opts MuxOptions) *http.ServeMux {
	mux := http.NewServeMux()
	metricsHandler := MetricsHandler(r)
	mux.Handle("/metrics", http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if opts.Debug {
			CollectRuntime(r)
		}
		opts.SLO.RefreshGauges()
		metricsHandler.ServeHTTP(w, req)
	}))
	mux.Handle("/debug/slots", SlotsHandler(rec))
	if opts.SLO != nil {
		mux.Handle("/debug/slo", SLOHandler(opts.SLO))
	}
	if opts.Regret != nil {
		mux.Handle("/debug/regret", RegretHandler(opts.Regret))
	}
	if opts.Fleet != nil {
		mux.Handle("/debug/fleet", FleetHandler(opts.Fleet))
	}
	if opts.Health != nil {
		mux.Handle("/debug/health", opts.Health)
	}
	if opts.Coord != nil {
		mux.Handle("/debug/coord", opts.Coord)
	}
	if opts.Debug {
		AttachDebug(mux, r)
	}
	return mux
}
