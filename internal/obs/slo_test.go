package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func sloForTest() *SLOMonitor {
	return NewSLOMonitor(SLOConfig{WindowSlots: 100, ShortWindowSlots: 20}, NewRegistry())
}

func TestSLOHealthySessionStaysOK(t *testing.T) {
	m := sloForTest()
	for i := 0; i < 300; i++ {
		m.ObserveSlot(1, true, 4)
	}
	if got := m.State(1); got != SLOStateOK {
		t.Fatalf("healthy session state = %q", got)
	}
	snap := m.Snapshot()
	if snap.OK != 1 || snap.Warn != 0 || snap.Page != 0 {
		t.Errorf("snapshot counts = %+v", snap)
	}
	s := snap.Sessions[0]
	if s.MissRate != 0 || s.MeanQuality != 4 || s.QualityLow {
		t.Errorf("session state = %+v", s)
	}
	if s.Slots != 100 {
		t.Errorf("window fill = %d, want capped at 100", s.Slots)
	}
}

func TestSLOAllMissesPages(t *testing.T) {
	m := sloForTest()
	for i := 0; i < 50; i++ {
		m.ObserveSlot(7, false, 0)
	}
	if got := m.State(7); got != SLOStatePage {
		t.Fatalf("all-miss session state = %q", got)
	}
	snap := m.Snapshot()
	if snap.Page != 1 {
		t.Errorf("snapshot = %+v", snap)
	}
	s := snap.Sessions[0]
	if s.MissRate != 1 {
		t.Errorf("miss rate = %v", s.MissRate)
	}
	// Burn = rate/target = 1/0.02 = 50x.
	if s.MissBurn != 50 {
		t.Errorf("miss burn = %v", s.MissBurn)
	}
	// Every miss after the first is a stall (consecutive misses).
	if s.StallRate != 49.0/50 {
		t.Errorf("stall rate = %v", s.StallRate)
	}
	reg := m.reg
	if reg.Gauge("collabvr_slo_sessions_page").Value() != 1 {
		t.Error("page gauge not mirrored")
	}
	if reg.Counter("collabvr_slo_page_transitions_total").Value() == 0 {
		t.Error("page transition not counted")
	}
}

func TestSLOAlertGatedUntilShortWindowFills(t *testing.T) {
	m := sloForTest()
	for i := 0; i < 19; i++ { // one short of the 20-slot short window
		m.ObserveSlot(3, false, 0)
	}
	if got := m.State(3); got != SLOStateOK {
		t.Fatalf("state before window fill = %q", got)
	}
	m.ObserveSlot(3, false, 0)
	if got := m.State(3); got != SLOStatePage {
		t.Fatalf("state after window fill = %q", got)
	}
}

func TestSLOIsolatedMissesWarnNotPage(t *testing.T) {
	// 10% miss rate (burn 5x: above SlowBurn 3, below FastBurn 10), spread
	// out so no two misses are consecutive (no stalls).
	m := sloForTest()
	for i := 0; i < 200; i++ {
		m.ObserveSlot(2, i%10 != 0, 3)
	}
	if got := m.State(2); got != SLOStateWarn {
		t.Fatalf("10%% miss session state = %q", got)
	}
	snap := m.Snapshot()
	if s := snap.Sessions[0]; s.StallRate != 0 {
		t.Errorf("isolated misses counted as stalls: %+v", s)
	}
}

func TestSLORecoveryReturnsToOK(t *testing.T) {
	m := sloForTest()
	for i := 0; i < 30; i++ {
		m.ObserveSlot(5, false, 0)
	}
	if m.State(5) != SLOStatePage {
		t.Fatal("not paging during the outage")
	}
	// Recover: the misses age out of the 100-slot window.
	for i := 0; i < 200; i++ {
		m.ObserveSlot(5, true, 4)
	}
	if got := m.State(5); got != SLOStateOK {
		t.Fatalf("state after recovery = %q", got)
	}
}

func TestSLOQualityBreachFlag(t *testing.T) {
	m := sloForTest()
	for i := 0; i < 50; i++ {
		m.ObserveSlot(9, true, 1) // displayed, but at the lowest level
	}
	snap := m.Snapshot()
	s := snap.Sessions[0]
	if !s.QualityLow || s.MeanQuality != 1 {
		t.Errorf("low-quality session = %+v", s)
	}
	if s.State != SLOStateOK {
		t.Errorf("quality breach must not page by itself: %q", s.State)
	}
	if m.reg.Gauge("collabvr_slo_sessions_quality_breach").Value() != 1 {
		t.Error("quality-breach gauge not mirrored")
	}
}

func TestSLORetire(t *testing.T) {
	m := sloForTest()
	m.ObserveSlot(1, true, 3)
	m.ObserveSlot(2, true, 3)
	m.Retire(1)
	snap := m.Snapshot()
	if len(snap.Sessions) != 1 || snap.Sessions[0].Session != 2 {
		t.Errorf("sessions after retire = %+v", snap.Sessions)
	}
	if m.State(1) != "" {
		t.Error("retired session still has a state")
	}
}

// TestSLOEmptyWindow: a monitor that has observed nothing must report an
// empty snapshot and zeroed gauges, not divide by an empty window.
func TestSLOEmptyWindow(t *testing.T) {
	m := sloForTest()
	snap := m.Snapshot()
	if len(snap.Sessions) != 0 || snap.OK != 0 || snap.Warn != 0 || snap.Page != 0 {
		t.Fatalf("empty snapshot = %+v", snap)
	}
	if snap.WorstMissBurn != 0 {
		t.Fatalf("worst burn = %v on no data", snap.WorstMissBurn)
	}
	if m.State(1) != "" {
		t.Fatal("unobserved session has a state")
	}
	if v := m.reg.Gauge("collabvr_slo_sessions_ok").Value(); v != 0 {
		t.Fatalf("ok gauge = %v", v)
	}
}

// TestSLOSingleSampleWindow: with WindowSlots == ShortWindowSlots == 1 the
// alert gate opens on the first observation, so a lone miss pages and a
// lone hit recovers — the degenerate window must not under- or over-gate.
func TestSLOSingleSampleWindow(t *testing.T) {
	m := NewSLOMonitor(SLOConfig{
		WindowSlots: 1, ShortWindowSlots: 1,
		MissTarget: 0.5, StallTarget: 1, FastBurn: 2, SlowBurn: 2,
	}, NewRegistry())
	m.ObserveSlot(1, false, 0) // burn = 1/0.5 = 2 = FastBurn on both windows
	if got := m.State(1); got != SLOStatePage {
		t.Fatalf("single miss state = %q, want page", got)
	}
	m.ObserveSlot(1, true, 4)
	if got := m.State(1); got != SLOStateOK {
		t.Fatalf("single hit state = %q, want ok", got)
	}
	if v := m.reg.Counter("collabvr_slo_page_transitions_total").Value(); v != 1 {
		t.Fatalf("page transitions = %d, want 1", v)
	}
	snap := m.Snapshot()
	if s := snap.Sessions[0]; s.Slots != 1 || s.MissRate != 0 {
		t.Fatalf("session = %+v", s)
	}
}

// TestSLOBoundaryWarnPageRecover drives one session through the exact
// threshold boundaries: a long-window burn of exactly SlowBurn must warn
// (the comparison is inclusive), exactly FastBurn on both windows must
// page, and an all-hit window must return to ok. A second session one miss
// below the warn boundary must stay ok.
func TestSLOBoundaryWarnPageRecover(t *testing.T) {
	// Long and short windows coincide, so the state is first evaluated on
	// the full 8-slot window and both burns are always equal. The window
	// size and MissTarget are picked so every burn is float64-exact
	// (k/8 divided by 0.25 is a power-of-two scaling): 6 misses = burn 3.0
	// (= SlowBurn), 8 misses = burn 4.0 (= FastBurn). StallTarget 1
	// neutralizes the stall rule for this test.
	cfg := SLOConfig{
		WindowSlots: 8, ShortWindowSlots: 8,
		MissTarget: 0.25, StallTarget: 1, FastBurn: 4, SlowBurn: 3,
	}
	m := NewSLOMonitor(cfg, NewRegistry())

	// One miss below the warn boundary: burn 2.5 < SlowBurn stays ok.
	for i := 0; i < 8; i++ {
		m.ObserveSlot(2, i >= 5, 3)
	}
	if got := m.State(2); got != SLOStateOK {
		t.Fatalf("burn 2.5 state = %q, want ok (below boundary)", got)
	}

	// Exactly at the warn boundary: 6 misses, burn 3.0.
	for i := 0; i < 8; i++ {
		m.ObserveSlot(1, i >= 6, 3)
	}
	if got := m.State(1); got != SLOStateWarn {
		t.Fatalf("burn 3.0 state = %q, want warn (inclusive boundary)", got)
	}
	if v := m.reg.Counter("collabvr_slo_warn_transitions_total").Value(); v != 1 {
		t.Fatalf("warn transitions = %d, want 1", v)
	}

	// Slide to exactly the page boundary: 8 consecutive misses fill the
	// window — burn 4.0 on both windows (passing only through warn on the
	// way, never over the page threshold early).
	for i := 0; i < 8; i++ {
		m.ObserveSlot(1, false, 0)
	}
	if got := m.State(1); got != SLOStatePage {
		t.Fatalf("burn 4.0 state = %q, want page (inclusive boundary)", got)
	}
	if v := m.reg.Counter("collabvr_slo_page_transitions_total").Value(); v != 1 {
		t.Fatalf("page transitions = %d, want 1", v)
	}

	// Recover: an all-hit window drops every burn to 0.
	for i := 0; i < 8; i++ {
		m.ObserveSlot(1, true, 4)
	}
	if got := m.State(1); got != SLOStateOK {
		t.Fatalf("recovered state = %q, want ok", got)
	}
}

func TestSLONilSafety(t *testing.T) {
	var m *SLOMonitor
	if m.Enabled() {
		t.Fatal("nil monitor enabled")
	}
	m.ObserveSlot(1, false, 0)
	m.Retire(1)
	m.RefreshGauges()
	if m.State(1) != "" || len(m.Snapshot().Sessions) != 0 {
		t.Fatal("nil monitor not inert")
	}
	// A monitor without a registry still tracks state.
	free := NewSLOMonitor(SLOConfig{WindowSlots: 10, ShortWindowSlots: 2}, nil)
	for i := 0; i < 10; i++ {
		free.ObserveSlot(1, false, 0)
	}
	if free.State(1) != SLOStatePage {
		t.Error("registry-free monitor did not page")
	}
}

func TestSLOHandlerAndMux(t *testing.T) {
	reg := NewRegistry()
	m := NewSLOMonitor(SLOConfig{WindowSlots: 50, ShortWindowSlots: 10}, reg)
	for i := 0; i < 20; i++ {
		m.ObserveSlot(4, false, 0)
	}
	mux := NewMuxOpts(reg, nil, MuxOptions{SLO: m, Debug: true})

	// /debug/slo serves the snapshot.
	rw := httptest.NewRecorder()
	mux.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/slo", nil))
	var snap SLOSnapshot
	if err := json.Unmarshal(rw.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Page != 1 || len(snap.Sessions) != 1 || snap.Sessions[0].State != SLOStatePage {
		t.Errorf("slo page = %+v", snap)
	}

	// /metrics refreshes the SLO gauges and the runtime sample.
	rw = httptest.NewRecorder()
	mux.ServeHTTP(rw, httptest.NewRequest("GET", "/metrics", nil))
	body := rw.Body.String()
	for _, want := range []string{
		"collabvr_slo_sessions_page 1",
		"collabvr_runtime_goroutines",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// /debug/pprof and /debug/runtime respond.
	rw = httptest.NewRecorder()
	mux.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rw.Code != 200 {
		t.Errorf("pprof index = %d", rw.Code)
	}
	rw = httptest.NewRecorder()
	mux.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/runtime", nil))
	var doc map[string]float64
	if err := json.Unmarshal(rw.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc["goroutines"] <= 0 {
		t.Errorf("runtime doc = %v", doc)
	}

	// Plain NewMux keeps the old surface and omits the debug routes.
	plain := NewMux(reg, nil)
	rw = httptest.NewRecorder()
	plain.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rw.Code == 200 {
		t.Error("plain mux serves pprof")
	}
}

func TestSLOObserveSlotZeroAllocsSteadyState(t *testing.T) {
	m := sloForTest()
	for i := 0; i < 200; i++ {
		m.ObserveSlot(1, true, 3)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		m.ObserveSlot(1, true, 3)
	})
	if allocs != 0 {
		t.Fatalf("steady-state ObserveSlot allocates %.1f/op", allocs)
	}
}
