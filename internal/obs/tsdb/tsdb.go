// Package tsdb is the fleet health plane's embedded time-series store: a
// fixed-memory, multi-resolution ring of health series keyed to the virtual
// slot clock. Every observability surface the stack had before this package
// (/metrics, /debug/slo, /debug/fleet) is a point-in-time snapshot; tsdb is
// what remembers how those snapshots *evolved*, so trend reports, anomaly
// detection and the SLO-pressure evacuation loop can act on distributions
// over time instead of instantaneous samples.
//
// A Store holds named Series, optionally per shard. Each series keeps three
// tiers: the raw per-slot ring, a 10-slot downsampled ring and a 100-slot
// downsampled ring, all preallocated, so memory is fixed at registration
// time and steady-state observation never allocates. Because observations
// are keyed by slot number — never wall time — a virtual-time sim run and a
// live run produce the same schema, and a seeded sim run produces
// bit-identical exports run after run.
//
// Everything is nil-safe in the obs-package tradition: a nil *Store hands
// out nil Series, and every method on a nil receiver is an allocation-free
// no-op, so a disabled health plane costs one pointer check per sample.
package tsdb

import (
	"math"
	"sync"
)

// Kind tells the downsampler (and readers) how to aggregate a series.
type Kind uint8

const (
	// Gauge samples aggregate by mean/min/max over a downsample window.
	Gauge Kind = iota
	// Counter samples are cumulative; a downsampled point's value is the
	// delta over its window (last - first), i.e. a windowed rate.
	Counter
	// Hist marks a series sampled from a histogram snapshot (a per-slot
	// quantile or mean). It aggregates like a gauge; the kind survives into
	// exports so readers know the value is itself a summary.
	Hist
)

// String returns the export name of the kind.
func (k Kind) String() string {
	switch k {
	case Counter:
		return "counter"
	case Hist:
		return "hist"
	default:
		return "gauge"
	}
}

// KindByName is the inverse of Kind.String (unknown names read as gauge,
// reported by the bool).
func KindByName(s string) (Kind, bool) {
	switch s {
	case "counter":
		return Counter, true
	case "gauge":
		return Gauge, true
	case "hist":
		return Hist, true
	}
	return Gauge, false
}

// The downsample widths of the two aggregated tiers, in slots.
const (
	Tier10  = 10
	Tier100 = 100
)

// FleetShard marks a series as fleet-wide rather than per-shard.
const FleetShard = -1

// Options sizes a Store's rings.
type Options struct {
	// RawSlots is the raw ring's point capacity (default 600 — 60 s of the
	// paper's 100 ms slots, matching the SLO monitor's long window).
	RawSlots int
	// TierPoints is each downsampled ring's point capacity (default 128:
	// 1280 slots of tier-10 and 12800 slots of tier-100 history).
	TierPoints int
}

func (o Options) withDefaults() Options {
	if o.RawSlots <= 0 {
		o.RawSlots = 600
	}
	if o.TierPoints <= 0 {
		o.TierPoints = 128
	}
	return o
}

// Point is one raw observation.
type Point struct {
	Slot  int64
	Value float64
}

// AggPoint is one downsampled window: Slot is the window's first slot.
type AggPoint struct {
	Slot  int64
	Count uint32
	First float64
	Last  float64
	Min   float64
	Max   float64
	Sum   float64
}

// fold absorbs one raw observation into the window aggregate.
func (a *AggPoint) fold(v float64) {
	if a.Count == 0 {
		a.First, a.Min, a.Max = v, v, v
	} else {
		if v < a.Min {
			a.Min = v
		}
		if v > a.Max {
			a.Max = v
		}
	}
	a.Last = v
	a.Sum += v
	a.Count++
}

// value reduces the window per the series kind: counters report the delta
// over the window, gauges (and hist samples) the mean.
func (a *AggPoint) value(kind Kind) float64 {
	if a.Count == 0 {
		return 0
	}
	if kind == Counter {
		return a.Last - a.First
	}
	return a.Sum / float64(a.Count)
}

// tier is one downsampled ring plus the partially-filled current window.
type tier struct {
	width  int64
	pts    []AggPoint
	next   int
	filled int
	cur    AggPoint
	curWin int64 // cur's window index; -1 when cur is empty
}

func (t *tier) observe(slot int64, v float64) {
	win := slot / t.width
	if t.curWin != win && t.cur.Count > 0 {
		t.pts[t.next] = t.cur
		t.next = (t.next + 1) % len(t.pts)
		if t.filled < len(t.pts) {
			t.filled++
		}
		t.cur = AggPoint{}
	}
	if t.cur.Count == 0 {
		t.curWin = win
		t.cur.Slot = win * t.width
	}
	t.cur.fold(v)
}

// Series is one named health series with its three resolution tiers. A nil
// *Series is the disabled series: Observe is an allocation-free no-op.
type Series struct {
	store *Store
	name  string
	kind  Kind
	shard int

	raw     []Point
	rawNext int
	rawLen  int
	tiers   [2]tier
	total   uint64 // observations ever made
}

// Name, Kind and Shard identify the series (Shard is FleetShard for
// fleet-wide series).
func (s *Series) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

func (s *Series) Kind() Kind {
	if s == nil {
		return Gauge
	}
	return s.kind
}

func (s *Series) Shard() int {
	if s == nil {
		return FleetShard
	}
	return s.shard
}

// Observe records one sample at the given slot. Samples are expected in
// nondecreasing slot order (the slot clock only moves forward); a repeated
// slot folds into the same downsample windows. Never allocates.
func (s *Series) Observe(slot int64, v float64) {
	if s == nil {
		return
	}
	s.store.mu.Lock()
	s.raw[s.rawNext] = Point{Slot: slot, Value: v}
	s.rawNext = (s.rawNext + 1) % len(s.raw)
	if s.rawLen < len(s.raw) {
		s.rawLen++
	}
	s.tiers[0].observe(slot, v)
	s.tiers[1].observe(slot, v)
	s.total++
	s.store.mu.Unlock()
}

// WindowStats summarizes the last n raw points of a series.
type WindowStats struct {
	Count int
	First float64
	Last  float64
	Min   float64
	Max   float64
	Sum   float64
}

// Mean returns the window's mean value (NaN when empty).
func (w WindowStats) Mean() float64 {
	if w.Count == 0 {
		return math.NaN()
	}
	return w.Sum / float64(w.Count)
}

// Delta returns Last-First — the windowed rate of a counter series.
func (w WindowStats) Delta() float64 { return w.Last - w.First }

// Stats summarizes the most recent n raw points without allocating — the
// query the evacuation loop runs every slot. n <= 0 or a nil series yields
// an empty window.
func (s *Series) Stats(n int) WindowStats {
	var w WindowStats
	if s == nil || n <= 0 {
		return w
	}
	s.store.mu.Lock()
	defer s.store.mu.Unlock()
	if n > s.rawLen {
		n = s.rawLen
	}
	for i := 0; i < n; i++ {
		idx := (s.rawNext - n + i + len(s.raw)) % len(s.raw)
		v := s.raw[idx].Value
		if i == 0 {
			w.First, w.Min, w.Max = v, v, v
		} else {
			if v < w.Min {
				w.Min = v
			}
			if v > w.Max {
				w.Max = v
			}
		}
		w.Last = v
		w.Sum += v
		w.Count++
	}
	return w
}

// Total returns how many observations the series has ever absorbed.
func (s *Series) Total() uint64 {
	if s == nil {
		return 0
	}
	s.store.mu.Lock()
	defer s.store.mu.Unlock()
	return s.total
}

// Store is the embedded time-series database: a named collection of Series
// sharing one lock and one ring geometry. A nil *Store is the disabled
// store: Series/ShardSeries return nil and Snapshot returns nothing.
type Store struct {
	mu     sync.Mutex
	opts   Options
	series []*Series
	byKey  map[seriesKey]*Series
}

type seriesKey struct {
	name  string
	shard int
}

// New builds a store (zero Options take the defaults).
func New(opts Options) *Store {
	return &Store{opts: opts.withDefaults(), byKey: make(map[seriesKey]*Series)}
}

// Series returns the fleet-wide series registered under name, creating it on
// first use (later calls reuse the series; the kind is fixed at creation).
// Returns nil on a nil store.
func (st *Store) Series(name string, kind Kind) *Series {
	return st.ShardSeries(name, kind, FleetShard)
}

// ShardSeries is Series keyed to one shard, so per-shard trajectories of the
// same signal stay separable (and aggregable) downstream.
func (st *Store) ShardSeries(name string, kind Kind, shard int) *Series {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	key := seriesKey{name: name, shard: shard}
	if s := st.byKey[key]; s != nil {
		return s
	}
	s := &Series{
		store: st,
		name:  name,
		kind:  kind,
		shard: shard,
		raw:   make([]Point, st.opts.RawSlots),
	}
	s.tiers[0] = tier{width: Tier10, pts: make([]AggPoint, st.opts.TierPoints), curWin: -1}
	s.tiers[1] = tier{width: Tier100, pts: make([]AggPoint, st.opts.TierPoints), curWin: -1}
	st.series = append(st.series, s)
	st.byKey[key] = s
	return s
}

// Len returns the number of registered series.
func (st *Store) Len() int {
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.series)
}
