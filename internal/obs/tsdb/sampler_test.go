package tsdb

import (
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/internal/obs"
)

func TestSamplerWalksRegistryAndSLO(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("collabvr_sent_total").Add(10)
	reg.Gauge("collabvr_sessions").Set(3)
	h := reg.Histogram("collabvr_latency_ms", obs.DefaultLatencyBuckets())
	h.Observe(2)
	h.Observe(4)
	slo := obs.NewSLOMonitor(obs.SLOConfig{WindowSlots: 10, ShortWindowSlots: 2}, reg)
	for i := 0; i < 5; i++ {
		slo.ObserveSlot(1, true, 4)
		slo.ObserveSlot(2, false, 0)
	}

	st := New(Options{RawSlots: 16, TierPoints: 4})
	s := NewSampler(SamplerOptions{Store: st, Registry: reg, SLO: slo, Mirror: true})
	s.Sample(0)
	reg.Counter("collabvr_sent_total").Add(5)
	s.Sample(1)

	if got := st.Series("collabvr_sent_total", Counter).Stats(2); got.Delta() != 5 {
		t.Fatalf("counter delta = %g, want 5", got.Delta())
	}
	if got := st.Series("collabvr_sessions", Gauge).Stats(1); got.Last != 3 {
		t.Fatalf("gauge = %g, want 3", got.Last)
	}
	if got := st.Series("collabvr_latency_ms_mean", Hist).Stats(1); got.Last != 3 {
		t.Fatalf("hist mean = %g, want 3", got.Last)
	}
	if got := st.Series("collabvr_slo_sessions_page", Gauge).Stats(1); got.Count != 1 {
		t.Fatal("SLO totals not sampled")
	}
	// mirror instruments exist in the registry but are never re-sampled
	if got := reg.Counter(healthPrefix + "samples_total").Value(); got != 2 {
		t.Fatalf("mirror samples_total = %d, want 2", got)
	}
	if got := reg.Gauge(healthPrefix + "last_slot").Value(); got != 1 {
		t.Fatalf("mirror last_slot = %g, want 1", got)
	}
	for _, snap := range st.Snapshot() {
		if len(snap.Name) >= len(healthPrefix) && snap.Name[:len(healthPrefix)] == healthPrefix {
			t.Fatalf("health plane sampled itself: %s", snap.Name)
		}
	}
}

func TestSamplerCadence(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Gauge("g").Set(1)
	st := New(Options{})
	s := NewSampler(SamplerOptions{Store: st, Registry: reg, EverySlots: 10})
	for slot := int64(0); slot < 25; slot++ {
		s.Sample(slot)
	}
	if got := st.Series("g", Gauge).Total(); got != 3 { // slots 0, 10, 20
		t.Fatalf("sampled %d times, want 3", got)
	}
}

func TestDisabledSamplerIsAllocationFree(t *testing.T) {
	var s *Sampler
	slot := int64(0)
	if n := testing.AllocsPerRun(1000, func() {
		s.Sample(slot)
		slot++
	}); n != 0 {
		t.Fatalf("disabled sampler: %.1f allocs/op, want 0", n)
	}
}

func TestEnabledSamplerSteadyStateIsAllocationFree(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("c").Add(1)
	reg.Gauge("g").Set(2)
	reg.Histogram("h", []float64{1, 10}).Observe(3)
	slo := obs.NewSLOMonitor(obs.SLOConfig{WindowSlots: 8, ShortWindowSlots: 2}, reg)
	slo.ObserveSlot(1, true, 4)
	st := New(Options{RawSlots: 32, TierPoints: 4})
	s := NewSampler(SamplerOptions{Store: st, Registry: reg, SLO: slo, Mirror: true})
	s.Sample(0) // first pass registers the series
	slot := int64(1)
	if n := testing.AllocsPerRun(500, func() {
		s.Sample(slot)
		slot++
	}); n != 0 {
		t.Fatalf("steady-state sampler: %.1f allocs/op, want 0", n)
	}
}

func TestSamplerDeterministicAcrossRuns(t *testing.T) {
	run := func() []SeriesSnapshot {
		reg := obs.NewRegistry()
		st := New(Options{RawSlots: 32, TierPoints: 8})
		s := NewSampler(SamplerOptions{Store: st, Registry: reg})
		for slot := int64(0); slot < 40; slot++ {
			reg.Counter("work_total").Add(uint64(slot % 7))
			reg.Gauge("load").Set(float64(slot * 13 % 29))
			s.Sample(slot)
		}
		return st.Snapshot()
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Fatal("identical sampler runs exported different snapshots")
	}
}

func TestHealthHandler(t *testing.T) {
	st := New(Options{RawSlots: 16, TierPoints: 4})
	for slot := int64(0); slot < 12; slot++ {
		st.Series("a_metric", Gauge).Observe(slot, 1)
		st.ShardSeries("shard_load", Gauge, 0).Observe(slot, float64(slot))
	}
	served := 0
	h := Handler(st, func(HealthDoc) { served++ })

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/health", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var doc HealthDoc
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Slot != 11 || doc.SeriesCount != 2 || len(doc.Series) != 6 {
		t.Fatalf("doc slot=%d series_count=%d series=%d", doc.Slot, doc.SeriesCount, len(doc.Series))
	}
	if served != 1 {
		t.Fatalf("onServe fired %d times", served)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/health?name=shard&tier=1", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Series) != 1 || doc.Series[0].Name != "shard_load" || doc.Series[0].Tier != 1 {
		t.Fatalf("filtered doc = %+v", doc.Series)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/health?tier=7", nil))
	if rec.Code != 400 {
		t.Fatalf("bad tier got status %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/health?threshold=-1", nil))
	if rec.Code != 400 {
		t.Fatalf("bad threshold got status %d", rec.Code)
	}
}
