package tsdb

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestDownsamplingGauge(t *testing.T) {
	st := New(Options{RawSlots: 50, TierPoints: 16})
	s := st.Series("q", Gauge)
	// slots 0..29, value = slot
	for slot := int64(0); slot < 30; slot++ {
		s.Observe(slot, float64(slot))
	}
	snaps := st.Snapshot()
	if len(snaps) != 3 {
		t.Fatalf("want 3 tiers, got %d", len(snaps))
	}
	raw, t10, t100 := snaps[0], snaps[1], snaps[2]
	if raw.Tier != 1 || t10.Tier != 10 || t100.Tier != 100 {
		t.Fatalf("tier order wrong: %d %d %d", raw.Tier, t10.Tier, t100.Tier)
	}
	if len(raw.Points) != 30 {
		t.Fatalf("raw points = %d, want 30", len(raw.Points))
	}
	// tier-10: windows [0,10), [10,20) flushed, [20,30) current (still open
	// until slot 30 arrives, but exported as a partial point).
	if len(t10.Points) != 3 {
		t.Fatalf("tier-10 points = %d, want 3", len(t10.Points))
	}
	want := []struct {
		slot     int64
		mean     float64
		min, max float64
		count    uint32
	}{
		{0, 4.5, 0, 9, 10},
		{10, 14.5, 10, 19, 10},
		{20, 24.5, 20, 29, 10},
	}
	for i, w := range want {
		p := t10.Points[i]
		if p.Slot != w.slot || p.Value != w.mean || p.Min != w.min || p.Max != w.max || p.Count != w.count {
			t.Fatalf("tier-10 point %d = %+v, want %+v", i, p, w)
		}
	}
	// tier-100: a single partial window covering everything
	if len(t100.Points) != 1 || t100.Points[0].Count != 30 || t100.Points[0].Value != 14.5 {
		t.Fatalf("tier-100 = %+v", t100.Points)
	}
}

func TestDownsamplingCounterDelta(t *testing.T) {
	st := New(Options{RawSlots: 50, TierPoints: 16})
	s := st.Series("sent_total", Counter)
	// cumulative counter growing by 3 per slot
	for slot := int64(0); slot < 20; slot++ {
		s.Observe(slot, float64(slot*3))
	}
	snaps := st.Snapshot()
	t10 := snaps[1]
	// window [0,10): first 0, last 27 -> delta 27; [10,20): 30..57 -> 27
	for i, p := range t10.Points {
		if p.Value != 27 {
			t.Fatalf("counter window %d delta = %g, want 27", i, p.Value)
		}
	}
	if got := s.Stats(10).Delta(); got != 27 {
		t.Fatalf("Stats(10).Delta() = %g, want 27", got)
	}
}

func TestRawRingWrap(t *testing.T) {
	st := New(Options{RawSlots: 8, TierPoints: 4})
	s := st.Series("g", Gauge)
	for slot := int64(0); slot < 20; slot++ {
		s.Observe(slot, float64(slot))
	}
	raw := st.Snapshot()[0]
	if len(raw.Points) != 8 {
		t.Fatalf("raw kept %d points, want 8", len(raw.Points))
	}
	for i, p := range raw.Points {
		if p.Slot != int64(12+i) {
			t.Fatalf("raw point %d slot = %d, want %d", i, p.Slot, 12+i)
		}
	}
	w := s.Stats(100) // clamped to ring length
	if w.Count != 8 || w.First != 12 || w.Last != 19 || w.Min != 12 || w.Max != 19 {
		t.Fatalf("Stats = %+v", w)
	}
	if got := s.Total(); got != 20 {
		t.Fatalf("Total = %d, want 20", got)
	}
}

func TestTierRingWrap(t *testing.T) {
	st := New(Options{RawSlots: 8, TierPoints: 3})
	s := st.Series("g", Gauge)
	for slot := int64(0); slot < 60; slot++ {
		s.Observe(slot, 1)
	}
	t10 := st.Snapshot()[1]
	// 5 full windows flushed into a 3-point ring -> keeps [20,30,40] + open [50]
	if len(t10.Points) != 4 {
		t.Fatalf("tier-10 kept %d points, want 4", len(t10.Points))
	}
	for i, wantSlot := range []int64{20, 30, 40, 50} {
		if t10.Points[i].Slot != wantSlot {
			t.Fatalf("tier-10 point %d slot = %d, want %d", i, t10.Points[i].Slot, wantSlot)
		}
	}
}

func TestWindowStatsEmpty(t *testing.T) {
	var s *Series
	w := s.Stats(10)
	if w.Count != 0 || !math.IsNaN(w.Mean()) {
		t.Fatalf("nil series stats = %+v mean %g", w, w.Mean())
	}
}

func TestSnapshotDeterministicAndRoundTrip(t *testing.T) {
	build := func() *Store {
		st := New(Options{RawSlots: 32, TierPoints: 8})
		// register in different orders; snapshot must not care
		names := []string{"b_gauge", "a_counter", "c_hist"}
		for slot := int64(0); slot < 45; slot++ {
			st.ShardSeries(names[slot%3], Gauge, int(slot%2)).Observe(slot, float64(slot*slot%97))
			st.Series("fleet_total", Counter).Observe(slot, float64(slot*2))
		}
		return st
	}
	s1, s2 := build().Snapshot(), build().Snapshot()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("snapshots of identical observation streams differ")
	}
	for i := 1; i < len(s1); i++ {
		a, b := s1[i-1], s1[i]
		if a.Name > b.Name || (a.Name == b.Name && a.Shard > b.Shard) ||
			(a.Name == b.Name && a.Shard == b.Shard && a.Tier >= b.Tier) {
			t.Fatalf("snapshot not sorted at %d: %s#%d@%d then %s#%d@%d",
				i, a.Name, a.Shard, a.Tier, b.Name, b.Shard, b.Tier)
		}
	}

	var buf bytes.Buffer
	if err := build().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, skipped, err := ReadSnapshots(bytes.NewReader(buf.Bytes()))
	if err != nil || skipped != 0 {
		t.Fatalf("read: err=%v skipped=%d", err, skipped)
	}
	if !reflect.DeepEqual(got, s1) {
		t.Fatal("JSONL round trip does not reproduce the snapshot")
	}
}

func TestReadSnapshotsRejectsBadRecords(t *testing.T) {
	// A good line after the bad one makes it interior corruption — a hard
	// error under the shared jsonl policy (a lone trailing bad line would
	// be skipped as a live writer's partial tail).
	good := `{"name":"ok","kind":"gauge","shard":-1,"tier":1,"points":[]}` + "\n"
	for _, bad := range []string{
		`{"name":"x","kind":"gauge","shard":-1,"tier":7,"points":[]}`,
		`{"name":"","kind":"gauge","shard":-1,"tier":1,"points":[]}`,
		`{"name":"x","kind":"nope","shard":-1,"tier":1,"points":[]}`,
		`{"name":"x","kind":"gauge","shard":-1,"tier":1,"points":[{"slot":5,"value":1},{"slot":4,"value":1}]}`,
	} {
		if _, _, err := ReadSnapshots(strings.NewReader(bad + "\n" + good)); err == nil {
			t.Fatalf("interior bad record accepted: %s", bad)
		}
	}
	// ...and the same bad line at EOF is tolerated as a partial tail.
	recs, skipped, err := ReadSnapshots(strings.NewReader(good + `{"name":"x","kind":"nope"`))
	if err != nil || skipped != 1 || len(recs) != 1 {
		t.Fatalf("trailing partial: recs=%d skipped=%d err=%v", len(recs), skipped, err)
	}
}

func TestDisabledStoreIsAllocationFree(t *testing.T) {
	var st *Store
	s := st.Series("x", Gauge)
	if s != nil {
		t.Fatal("nil store handed out a live series")
	}
	slot := int64(0)
	if n := testing.AllocsPerRun(1000, func() {
		s.Observe(slot, 1.0)
		_ = s.Stats(16)
		slot++
	}); n != 0 {
		t.Fatalf("disabled series: %.1f allocs/op, want 0", n)
	}
	if st.Snapshot() != nil || st.Len() != 0 {
		t.Fatal("nil store snapshot not empty")
	}
}

func TestEnabledObserveIsAllocationFree(t *testing.T) {
	st := New(Options{RawSlots: 64, TierPoints: 8})
	s := st.Series("x", Gauge)
	slot := int64(0)
	if n := testing.AllocsPerRun(1000, func() {
		s.Observe(slot, float64(slot))
		_ = s.Stats(32)
		slot++
	}); n != 0 {
		t.Fatalf("enabled observe: %.1f allocs/op, want 0", n)
	}
}

func TestKindNames(t *testing.T) {
	for _, k := range []Kind{Gauge, Counter, Hist} {
		got, ok := KindByName(k.String())
		if !ok || got != k {
			t.Fatalf("KindByName(%q) = %v %v", k.String(), got, ok)
		}
	}
	if _, ok := KindByName("bogus"); ok {
		t.Fatal("bogus kind accepted")
	}
}

func TestAnomalyDetection(t *testing.T) {
	snap := SeriesSnapshot{Name: "miss_rate", Shard: FleetShard, Tier: 1}
	for i := 0; i < 40; i++ {
		v := 1.0 + 0.01*float64(i%5) // mild noise
		if i == 25 {
			v = 50 // the excursion
		}
		snap.Points = append(snap.Points, SnapPoint{Slot: int64(i), Value: v})
	}
	got := DetectSeries(snap, 0)
	if len(got) != 1 {
		t.Fatalf("anomalies = %+v, want exactly the spike", got)
	}
	if got[0].Slot != 25 || got[0].Value != 50 {
		t.Fatalf("flagged wrong point: %+v", got[0])
	}
	if got[0].Score < DefaultAnomalyThreshold {
		t.Fatalf("score %g below threshold", got[0].Score)
	}
}

func TestAnomalyFlatSeriesSpike(t *testing.T) {
	// MAD of a perfectly flat series is 0: any deviation must still flag,
	// with the finite Inf sentinel.
	snap := SeriesSnapshot{Name: "g", Tier: 1}
	for i := 0; i < 20; i++ {
		snap.Points = append(snap.Points, SnapPoint{Slot: int64(i), Value: 3})
	}
	snap.Points[10].Value = 4
	got := DetectSeries(snap, 0)
	if len(got) != 1 || got[0].Score != infScore {
		t.Fatalf("flat-series spike: %+v", got)
	}
	// and a short series never flags
	short := SeriesSnapshot{Name: "g", Tier: 1, Points: snap.Points[:minAnomalyPoints-1]}
	if got := DetectSeries(short, 0); got != nil {
		t.Fatalf("short series flagged: %+v", got)
	}
}

func TestDetectSkipsDownsampledTiers(t *testing.T) {
	mk := func(tier int) SeriesSnapshot {
		s := SeriesSnapshot{Name: "g", Tier: tier}
		for i := 0; i < 20; i++ {
			s.Points = append(s.Points, SnapPoint{Slot: int64(i), Value: 1})
		}
		s.Points[5].Value = 100
		return s
	}
	got := Detect([]SeriesSnapshot{mk(1), mk(10), mk(100)}, 0)
	if len(got) != 1 || got[0].Tier != 1 {
		t.Fatalf("Detect flagged %d anomalies (want 1, raw tier only): %+v", len(got), got)
	}
}

func TestTrendDirection(t *testing.T) {
	up := SeriesSnapshot{Name: "g", Kind: "gauge", Tier: 1}
	for i := 0; i < 20; i++ {
		up.Points = append(up.Points, SnapPoint{Slot: int64(i), Value: float64(i)})
	}
	if tr := TrendOf(up, 0); tr.Direction != "up" || tr.First != 0 || tr.Last != 19 {
		t.Fatalf("up trend = %+v", tr)
	}
	flat := SeriesSnapshot{Name: "g", Kind: "gauge", Tier: 1}
	for i := 0; i < 20; i++ {
		flat.Points = append(flat.Points, SnapPoint{Slot: int64(i), Value: 5})
	}
	if tr := TrendOf(flat, 0); tr.Direction != "flat" || tr.Mean != 5 {
		t.Fatalf("flat trend = %+v", tr)
	}
}

func TestCompareRegressions(t *testing.T) {
	mk := func(name string, vals ...float64) SeriesSnapshot {
		s := SeriesSnapshot{Name: name, Kind: "gauge", Shard: FleetShard, Tier: 1}
		for i, v := range vals {
			s.Points = append(s.Points, SnapPoint{Slot: int64(i), Value: v})
		}
		return s
	}
	baseline := []SeriesSnapshot{
		mk("miss_rate", 0.01, 0.01, 0.01), // bad-up
		mk("mean_quality", 4.0, 4.0, 4.0), // good-up
		mk("vanished", 1, 1, 1),
	}
	current := []SeriesSnapshot{
		mk("miss_rate", 0.05, 0.05, 0.05), // 5x worse -> regression
		mk("mean_quality", 3.9, 3.9, 3.9), // 2.5% dip, within 10% -> fine
	}
	got := Compare(baseline, current, 0.10, 0.001)
	if len(got) != 2 {
		t.Fatalf("regressions = %+v, want miss_rate + vanished", got)
	}
	if got[0].Key != "mean_quality#-1@1" && got[0].Key != "miss_rate#-1@1" {
		t.Fatalf("unexpected first regression %q", got[0].Key)
	}
	keys := []string{got[0].Key, got[1].Key}
	wantKeys := []string{"miss_rate#-1@1", "vanished#-1@1"}
	if !reflect.DeepEqual(keys, wantKeys) {
		t.Fatalf("regression keys = %v, want %v", keys, wantKeys)
	}
	if !math.IsNaN(got[1].Current) {
		t.Fatalf("vanished series should read NaN current, got %g", got[1].Current)
	}

	// quality dropping past tolerance is a regression for good-up series
	current[1] = mk("mean_quality", 3.0, 3.0, 3.0)
	got = Compare(baseline[:2], current, 0.10, 0.001)
	if len(got) != 2 {
		t.Fatalf("quality drop not caught: %+v", got)
	}

	// improvements never flag
	better := []SeriesSnapshot{
		mk("miss_rate", 0.001, 0.001, 0.001),
		mk("mean_quality", 4.5, 4.5, 4.5),
	}
	if got := Compare(baseline[:2], better, 0.10, 0.001); len(got) != 0 {
		t.Fatalf("improvement flagged as regression: %+v", got)
	}
}

func TestCompareAbsFloor(t *testing.T) {
	mk := func(v float64) []SeriesSnapshot {
		return []SeriesSnapshot{{Name: "drop_total", Kind: "gauge", Tier: 1,
			Points: []SnapPoint{{Slot: 0, Value: v}}}}
	}
	// 0 -> 0.0005 is a huge ratio but below the absolute floor: no flag
	if got := Compare(mk(0), mk(0.0005), 0.10, 0.001); len(got) != 0 {
		t.Fatalf("sub-floor drift flagged: %+v", got)
	}
	if got := Compare(mk(0), mk(0.5), 0.10, 0.001); len(got) != 1 {
		t.Fatalf("real drift from zero baseline not flagged: %+v", got)
	}
}
