package tsdb

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"repro/internal/jsonl"
)

// SnapPoint is one exported point. For raw-tier points Value is the sample
// itself and Count is 1; for downsampled points Value is the window
// reduction (counter: delta; gauge/hist: mean) with the window's min/max and
// sample count alongside.
type SnapPoint struct {
	Slot  int64   `json:"slot"`
	Value float64 `json:"value"`
	Count uint32  `json:"count,omitempty"`
	Min   float64 `json:"min,omitempty"`
	Max   float64 `json:"max,omitempty"`
}

// SeriesSnapshot is one series at one resolution tier — the unit of the
// JSONL export (one snapshot per line) and of the /debug/health document.
type SeriesSnapshot struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	// Shard is the owning shard, or -1 for a fleet-wide series.
	Shard int `json:"shard"`
	// Tier is the slots-per-point resolution: 1 (raw), 10 or 100.
	Tier   int         `json:"tier"`
	Points []SnapPoint `json:"points"`
}

// Key identifies the snapshot's series+tier for joins against a baseline.
func (s *SeriesSnapshot) Key() string {
	return fmt.Sprintf("%s#%d@%d", s.Name, s.Shard, s.Tier)
}

// Summary reduces the snapshot to one scalar for baseline comparison:
// counters report the total delta across the window, gauges the point mean.
func (s *SeriesSnapshot) Summary() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	if s.Kind == Counter.String() {
		if s.Tier == 1 {
			return s.Points[len(s.Points)-1].Value - s.Points[0].Value
		}
		total := 0.0
		for _, p := range s.Points {
			total += p.Value
		}
		return total
	}
	sum := 0.0
	for _, p := range s.Points {
		sum += p.Value
	}
	return sum / float64(len(s.Points))
}

// snapshotSeries renders one series at every tier (store lock held).
func snapshotSeries(s *Series) []SeriesSnapshot {
	out := make([]SeriesSnapshot, 0, 3)

	raw := SeriesSnapshot{Name: s.name, Kind: s.kind.String(), Shard: s.shard, Tier: 1}
	raw.Points = make([]SnapPoint, 0, s.rawLen)
	for i := 0; i < s.rawLen; i++ {
		idx := (s.rawNext - s.rawLen + i + len(s.raw)) % len(s.raw)
		p := s.raw[idx]
		raw.Points = append(raw.Points, SnapPoint{Slot: p.Slot, Value: p.Value})
	}
	out = append(out, raw)

	for ti := range s.tiers {
		t := &s.tiers[ti]
		snap := SeriesSnapshot{Name: s.name, Kind: s.kind.String(), Shard: s.shard, Tier: int(t.width)}
		snap.Points = make([]SnapPoint, 0, t.filled+1)
		for i := 0; i < t.filled; i++ {
			idx := (t.next - t.filled + i + len(t.pts)) % len(t.pts)
			a := t.pts[idx]
			snap.Points = append(snap.Points, SnapPoint{
				Slot: a.Slot, Value: a.value(s.kind), Count: a.Count, Min: a.Min, Max: a.Max,
			})
		}
		// The partially-filled current window is real signal — without it a
		// short run exports empty downsampled tiers — and it is fully
		// determined by the observations, so determinism survives.
		if t.cur.Count > 0 {
			snap.Points = append(snap.Points, SnapPoint{
				Slot: t.cur.Slot, Value: t.cur.value(s.kind), Count: t.cur.Count,
				Min: t.cur.Min, Max: t.cur.Max,
			})
		}
		out = append(out, snap)
	}
	return out
}

// Snapshot exports every series at every tier, sorted by (name, shard,
// tier) so the export is deterministic regardless of registration order.
func (st *Store) Snapshot() []SeriesSnapshot {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	out := make([]SeriesSnapshot, 0, 3*len(st.series))
	for _, s := range st.series {
		out = append(out, snapshotSeries(s)...)
	}
	st.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		if out[i].Shard != out[j].Shard {
			return out[i].Shard < out[j].Shard
		}
		return out[i].Tier < out[j].Tier
	})
	return out
}

// WriteJSONL writes the snapshot as line-delimited JSON, one series+tier per
// line — the collabvr-health CLI's input format. Deterministic for a
// deterministic store.
func (st *Store) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, snap := range st.Snapshot() {
		if err := enc.Encode(&snap); err != nil {
			return fmt.Errorf("tsdb: write: %w", err)
		}
	}
	return nil
}

// ValidateSnapshot is the JSONL reader's per-record check.
func ValidateSnapshot(s *SeriesSnapshot) error {
	if s.Name == "" {
		return fmt.Errorf("tsdb: snapshot without a name")
	}
	if _, ok := KindByName(s.Kind); !ok {
		return fmt.Errorf("tsdb: series %q: unknown kind %q", s.Name, s.Kind)
	}
	switch s.Tier {
	case 1, Tier10, Tier100:
	default:
		return fmt.Errorf("tsdb: series %q: tier %d not in {1, 10, 100}", s.Name, s.Tier)
	}
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].Slot < s.Points[i-1].Slot {
			return fmt.Errorf("tsdb: series %q tier %d: slots regress at point %d", s.Name, s.Tier, i)
		}
	}
	return nil
}

// ReadSnapshots decodes a JSONL health export with the repo's tolerant
// trailing-line policy (see internal/jsonl): interior corruption is fatal,
// a live writer's partial tail is skipped and counted.
func ReadSnapshots(r io.Reader) ([]SeriesSnapshot, int, error) {
	return jsonl.Decode[SeriesSnapshot](r, ValidateSnapshot)
}

// HealthDoc is the /debug/health JSON document.
type HealthDoc struct {
	// Slot is the newest slot any series has seen.
	Slot int64 `json:"slot"`
	// SeriesCount is the registered series count (before filtering).
	SeriesCount int              `json:"series_count"`
	Series      []SeriesSnapshot `json:"series"`
	Anomalies   []Anomaly        `json:"anomalies,omitempty"`
}

// Doc builds the health document: the full snapshot filtered to substring
// `name` (empty = all) and tier (0 = all), with MAD anomalies flagged at
// the given threshold (<= 0 takes DefaultAnomalyThreshold).
func (st *Store) Doc(name string, tier int, threshold float64) HealthDoc {
	doc := HealthDoc{SeriesCount: st.Len()}
	for _, snap := range st.Snapshot() {
		if n := len(snap.Points); n > 0 && snap.Points[n-1].Slot > doc.Slot {
			doc.Slot = snap.Points[n-1].Slot
		}
		if name != "" && !strings.Contains(snap.Name, name) {
			continue
		}
		if tier != 0 && snap.Tier != tier {
			continue
		}
		doc.Series = append(doc.Series, snap)
	}
	doc.Anomalies = Detect(doc.Series, threshold)
	return doc
}

// Handler serves the store as the /debug/health endpoint. Query parameters:
// `name` filters series by substring, `tier` selects one resolution
// (1, 10 or 100), `threshold` tunes the anomaly flagging. The onServe hook
// (optional) observes each served document — the server uses it to mirror
// the anomaly count into the metrics registry.
func Handler(st *Store, onServe func(HealthDoc)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		tier := 0
		if s := req.URL.Query().Get("tier"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || (v != 1 && v != Tier10 && v != Tier100) {
				http.Error(w, "bad tier (want 1, 10 or 100)", http.StatusBadRequest)
				return
			}
			tier = v
		}
		threshold := 0.0
		if s := req.URL.Query().Get("threshold"); s != "" {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil || v < 0 {
				http.Error(w, "bad threshold", http.StatusBadRequest)
				return
			}
			threshold = v
		}
		doc := st.Doc(req.URL.Query().Get("name"), tier, threshold)
		if onServe != nil {
			onServe(doc)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
	})
}
