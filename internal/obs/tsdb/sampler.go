package tsdb

import (
	"strings"

	"repro/internal/obs"
)

// healthPrefix marks the sampler's own mirrored instruments; the sampler
// skips them when walking the registry so the health plane never samples
// itself.
const healthPrefix = "collabvr_health_"

// SamplerOptions configures a Sampler.
type SamplerOptions struct {
	// Store receives the samples. Required (a nil store yields a nil
	// sampler-equivalent: NewSampler still returns a sampler but every
	// series it writes is nil, so prefer leaving the sampler nil too).
	Store *Store
	// Registry is walked every sample pass: each counter, gauge and
	// histogram becomes a fleet-wide series of the same name (histograms
	// expand to <name>_mean and <name>_p95). Optional.
	Registry *obs.Registry
	// SLO contributes collabvr_slo_sessions_{ok,warn,page} and
	// collabvr_slo_worst_burn series from its alloc-free Totals. Optional.
	SLO *obs.SLOMonitor
	// EverySlots is the sampling cadence in slots (default 1: every slot).
	EverySlots int
	// Mirror, when true, mirrors sampler meta-state back into Registry as
	// collabvr_health_{last_slot,series,samples_total} so a plain /metrics
	// scrape shows the health plane is alive.
	Mirror bool
}

type histSeries struct {
	mean *Series
	p95  *Series
}

// Sampler walks the obs registry and SLO monitor on the slot clock and
// folds what it finds into the Store. A nil *Sampler is the disabled
// sampler: Sample is an allocation-free no-op, so an uninstrumented slot
// loop pays one pointer check.
//
// The walk closures are built once at construction and reused — Go method
// values allocate per use, and Sample sits on the slot loop.
type Sampler struct {
	store *Store
	reg   *obs.Registry
	slo   *obs.SLOMonitor
	every int64

	slot      int64 // slot being sampled; set before each walk
	counterFn func(name string, c *obs.Counter)
	gaugeFn   func(name string, g *obs.Gauge)
	histFn    func(name string, h *obs.Histogram)

	// histograms expand to derived <name>_mean/<name>_p95 series; the pair
	// is cached per histogram so steady-state passes skip the name concat.
	hists map[string]histSeries

	sloOK, sloWarn, sloPage, sloBurn *Series

	mLastSlot *obs.Gauge
	mSeries   *obs.Gauge
	mSamples  *obs.Counter
}

// NewSampler builds a sampler over opts.
func NewSampler(opts SamplerOptions) *Sampler {
	s := &Sampler{
		store: opts.Store,
		reg:   opts.Registry,
		slo:   opts.SLO,
		every: int64(opts.EverySlots),
	}
	if s.every <= 0 {
		s.every = 1
	}
	s.counterFn = func(name string, c *obs.Counter) {
		if strings.HasPrefix(name, healthPrefix) {
			return
		}
		s.store.Series(name, Counter).Observe(s.slot, float64(c.Value()))
	}
	s.gaugeFn = func(name string, g *obs.Gauge) {
		if strings.HasPrefix(name, healthPrefix) {
			return
		}
		s.store.Series(name, Gauge).Observe(s.slot, g.Value())
	}
	s.hists = make(map[string]histSeries)
	s.histFn = func(name string, h *obs.Histogram) {
		if strings.HasPrefix(name, healthPrefix) {
			return
		}
		pair, ok := s.hists[name]
		if !ok {
			pair = histSeries{
				mean: s.store.Series(name+"_mean", Hist),
				p95:  s.store.Series(name+"_p95", Hist),
			}
			s.hists[name] = pair
		}
		pair.mean.Observe(s.slot, h.Mean())
		pair.p95.Observe(s.slot, h.Quantile(0.95))
	}
	if s.slo != nil {
		s.sloOK = s.store.Series("collabvr_slo_sessions_ok", Gauge)
		s.sloWarn = s.store.Series("collabvr_slo_sessions_warn", Gauge)
		s.sloPage = s.store.Series("collabvr_slo_sessions_page", Gauge)
		s.sloBurn = s.store.Series("collabvr_slo_worst_burn", Gauge)
	}
	if opts.Mirror {
		s.mLastSlot = s.reg.Gauge(healthPrefix + "last_slot")
		s.mSeries = s.reg.Gauge(healthPrefix + "series")
		s.mSamples = s.reg.Counter(healthPrefix + "samples_total")
	}
	return s
}

// Store returns the sampler's store (nil on a nil sampler).
func (s *Sampler) Store() *Store {
	if s == nil {
		return nil
	}
	return s.store
}

// Sample runs one sampling pass at the given slot. Passes off the cadence
// are skipped; a nil sampler never samples. Steady-state passes do not
// allocate (series are created on first sight of each instrument).
func (s *Sampler) Sample(slot int64) {
	if s == nil || slot%s.every != 0 {
		return
	}
	s.slot = slot
	// SLO first: its totals drive the evacuation loop, so they should be
	// the freshest signal at this slot.
	if s.slo != nil {
		ok, warn, page, burn := s.slo.Totals()
		s.sloOK.Observe(slot, float64(ok))
		s.sloWarn.Observe(slot, float64(warn))
		s.sloPage.Observe(slot, float64(page))
		s.sloBurn.Observe(slot, burn)
	}
	if s.reg != nil {
		s.reg.EachCounter(s.counterFn)
		s.reg.EachGauge(s.gaugeFn)
		s.reg.EachHistogram(s.histFn)
	}
	s.mLastSlot.Set(float64(slot))
	s.mSeries.Set(float64(s.store.Len()))
	s.mSamples.Inc()
}
