package tsdb

import (
	"fmt"
	"math"
	"sort"
)

// DefaultAnomalyThreshold is the robust z-score above which a point is
// flagged. 3.5 is the classic Iglewicz–Hoaglin cutoff for MAD-based
// outlier detection.
const DefaultAnomalyThreshold = 3.5

// madScale makes the MAD a consistent estimator of the standard deviation
// under normality.
const madScale = 1.4826

// Anomaly is one flagged point: a value whose robust z-score against its
// own series history exceeds the detection threshold.
type Anomaly struct {
	Series string  `json:"series"`
	Shard  int     `json:"shard"`
	Tier   int     `json:"tier"`
	Slot   int64   `json:"slot"`
	Value  float64 `json:"value"`
	Median float64 `json:"median"`
	// Score is |value-median| / (1.4826 * MAD). When the MAD is zero (a
	// flat series) any deviation scores +Inf, encoded as a large sentinel
	// so the JSON stays parseable.
	Score float64 `json:"score"`
}

// infScore stands in for +Inf in JSON output (encoding/json rejects Inf).
const infScore = 1e9

// medianOf returns the median of a sorted slice.
func medianOf(sorted []float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// robustStats returns the median and MAD of vs (scratch is sorted in place).
func robustStats(vs []float64) (median, mad float64) {
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	median = medianOf(sorted)
	devs := sorted // reuse: sorted copy is ours
	for i, v := range vs {
		devs[i] = math.Abs(v - median)
	}
	sort.Float64s(devs)
	mad = medianOf(devs)
	return median, mad
}

// Score returns the robust z-score of v against (median, mad). A zero MAD
// means the history is flat: any deviation is infinitely surprising.
func Score(v, median, mad float64) float64 {
	dev := math.Abs(v - median)
	if mad == 0 {
		if dev == 0 {
			return 0
		}
		return infScore
	}
	return dev / (madScale * mad)
}

// minAnomalyPoints is the fewest points a series needs before the detector
// will flag anything — robust statistics over a handful of samples are
// noise.
const minAnomalyPoints = 8

// DetectSeries flags the points of one snapshot whose robust z-score
// exceeds threshold (<= 0 takes DefaultAnomalyThreshold).
func DetectSeries(snap SeriesSnapshot, threshold float64) []Anomaly {
	if threshold <= 0 {
		threshold = DefaultAnomalyThreshold
	}
	if len(snap.Points) < minAnomalyPoints {
		return nil
	}
	vs := make([]float64, len(snap.Points))
	for i, p := range snap.Points {
		vs[i] = p.Value
	}
	median, mad := robustStats(vs)
	var out []Anomaly
	for _, p := range snap.Points {
		score := Score(p.Value, median, mad)
		if score >= threshold {
			out = append(out, Anomaly{
				Series: snap.Name, Shard: snap.Shard, Tier: snap.Tier,
				Slot: p.Slot, Value: p.Value, Median: median, Score: score,
			})
		}
	}
	return out
}

// Detect runs DetectSeries over the raw tier of every snapshot (the
// downsampled tiers restate the same data; flagging them too would
// triple-report every excursion).
func Detect(snaps []SeriesSnapshot, threshold float64) []Anomaly {
	var out []Anomaly
	for _, snap := range snaps {
		if snap.Tier != 1 {
			continue
		}
		out = append(out, DetectSeries(snap, threshold)...)
	}
	return out
}

// Trend summarizes one snapshot for the CLI report.
type Trend struct {
	Name   string  `json:"name"`
	Kind   string  `json:"kind"`
	Shard  int     `json:"shard"`
	Tier   int     `json:"tier"`
	Points int     `json:"points"`
	First  float64 `json:"first"`
	Last   float64 `json:"last"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Mean   float64 `json:"mean"`
	// Summary is the baseline-comparison scalar (counter: total delta;
	// gauge/hist: mean of points).
	Summary float64 `json:"summary"`
	// Direction is "up", "down" or "flat": the sign of the second-half
	// mean minus the first-half mean, dead-banded at 1% of the value scale.
	Direction string `json:"direction"`
	Anomalies int    `json:"anomalies"`
}

// TrendOf reduces one snapshot to its trend row.
func TrendOf(snap SeriesSnapshot, threshold float64) Trend {
	t := Trend{
		Name: snap.Name, Kind: snap.Kind, Shard: snap.Shard, Tier: snap.Tier,
		Points: len(snap.Points), Summary: snap.Summary(), Direction: "flat",
		Anomalies: len(DetectSeries(snap, threshold)),
	}
	if len(snap.Points) == 0 {
		return t
	}
	t.First = snap.Points[0].Value
	t.Last = snap.Points[len(snap.Points)-1].Value
	t.Min, t.Max = t.First, t.First
	sum := 0.0
	for _, p := range snap.Points {
		if p.Value < t.Min {
			t.Min = p.Value
		}
		if p.Value > t.Max {
			t.Max = p.Value
		}
		sum += p.Value
	}
	t.Mean = sum / float64(len(snap.Points))

	half := len(snap.Points) / 2
	if half > 0 {
		var a, b float64
		for _, p := range snap.Points[:half] {
			a += p.Value
		}
		for _, p := range snap.Points[half:] {
			b += p.Value
		}
		a /= float64(half)
		b /= float64(len(snap.Points) - half)
		scale := math.Max(math.Abs(t.Min), math.Abs(t.Max))
		deadband := 0.01 * scale
		switch {
		case b-a > deadband:
			t.Direction = "up"
		case a-b > deadband:
			t.Direction = "down"
		}
	}
	return t
}

// Regression is one baseline-comparison failure: a series whose summary
// moved past the tolerance in its bad direction.
type Regression struct {
	Key      string  `json:"key"`
	Baseline float64 `json:"baseline"`
	Current  float64 `json:"current"`
	// Ratio is current/baseline when baseline is nonzero.
	Ratio float64 `json:"ratio,omitempty"`
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: baseline %.4g -> current %.4g (ratio %.3f)", r.Key, r.Baseline, r.Current, r.Ratio)
}

// badDirectionUp reports whether a larger value of the named series is
// worse. Health series follow the convention that miss/stall/page/drop/
// abandon/retry/evac style names grow when things degrade, while
// quality/budget style names shrink.
func badDirectionUp(name string) bool {
	for _, bad := range []string{"miss", "stall", "page", "warn", "drop", "abandon", "retry", "evac", "migrat", "outage", "pressure", "dropped", "malformed"} {
		if containsWord(name, bad) {
			return true
		}
	}
	return false
}

func containsWord(s, sub string) bool {
	// plain substring match is enough for our snake_case series names
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// Compare joins current snapshots against a baseline by series key and
// returns the regressions: series whose summary degraded by more than
// tolerance (a fraction, e.g. 0.10) in the bad direction for their name,
// plus baseline series missing entirely from the current export. Absolute
// drifts below absFloor are ignored so near-zero baselines don't turn
// rounding noise into huge ratios.
func Compare(baseline, current []SeriesSnapshot, tolerance, absFloor float64) []Regression {
	if tolerance <= 0 {
		tolerance = 0.10
	}
	cur := make(map[string]*SeriesSnapshot, len(current))
	for i := range current {
		cur[current[i].Key()] = &current[i]
	}
	var out []Regression
	for i := range baseline {
		b := &baseline[i]
		// one tier is enough for the gate: compare the raw tier only
		if b.Tier != 1 {
			continue
		}
		c, ok := cur[b.Key()]
		if !ok {
			out = append(out, Regression{Key: b.Key(), Baseline: b.Summary(), Current: math.NaN()})
			continue
		}
		bv, cv := b.Summary(), c.Summary()
		diff := cv - bv
		if !badDirectionUp(b.Name) {
			diff = -diff // for good-up series, a drop is the regression
		}
		if diff <= absFloor {
			continue
		}
		limit := tolerance * math.Abs(bv)
		if limit < absFloor {
			limit = absFloor
		}
		if diff > limit {
			r := Regression{Key: b.Key(), Baseline: bv, Current: cv}
			if bv != 0 {
				r.Ratio = cv / bv
			}
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
