package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

// regretFixture feeds a small, fully-known record set through a recorder
// wired to the attributor: one slot per attribution reason, one
// no-reference slot contributing only forgone gain.
func regretFixture(attr *RegretAttributor) *Recorder {
	rec := NewRecorder(RecorderOptions{RingSize: 8, Attributor: attr})
	rec.Record(&SlotRecord{
		Algorithm: "dvgreedy", Slot: 1, HasRegret: true, Regret: 2.0,
		SessionIDs: []uint32{10, 11, 12},
		UserRegret: []float64{1.5, 0, 0.5},
		Rejections: []Rejection{{User: 0, Level: 3, Constraint: ConstraintBudget}},
		CapErr:     []float64{0, 0, 0.5},
	})
	rec.Record(&SlotRecord{
		Algorithm: "dvgreedy", Slot: 2, HasRegret: true, Regret: 1.0,
		SessionIDs:   []uint32{10, 11, 12},
		UserRegret:   []float64{0, 1, 0},
		Alternatives: []Alternative{{User: 1, Level: 4, Gain: 0.3, Reason: ConstraintUnprofitable}},
	})
	rec.Record(&SlotRecord{
		Algorithm: "dvgreedy", Slot: 3, HasRegret: true, Regret: 0.5,
		SessionIDs: []uint32{10, 11, 12},
		UserRegret: []float64{0.25, 0.25, 0},
	})
	rec.Record(&SlotRecord{
		Algorithm: "dvgreedy", Slot: 4,
		Alternatives: []Alternative{
			{User: 0, Level: 2, Gain: 2, Reason: ConstraintBudget},
			{User: 1, Level: 2, Gain: -1, Reason: ConstraintUserCap},
		},
	})
	return rec
}

func TestRegretAttribution(t *testing.T) {
	reg := NewRegistry()
	attr := NewRegretAttributor(RegretAttributorOptions{Registry: reg})
	regretFixture(attr)
	rep := attr.Report()

	if rep.Slots != 4 || rep.RegretSlots != 3 {
		t.Fatalf("slots=%d regretSlots=%d, want 4/3", rep.Slots, rep.RegretSlots)
	}
	if !near(rep.TotalRegret, 3.5) || !near(rep.AttributedRegret, 3.5) {
		t.Fatalf("total=%v attributed=%v, want 3.5/3.5", rep.TotalRegret, rep.AttributedRegret)
	}
	if !near(rep.AttributedFraction, 1) || rep.Rows != 5 {
		t.Fatalf("fraction=%v rows=%d, want 1/5", rep.AttributedFraction, rep.Rows)
	}

	wantReason := map[string]float64{
		ConstraintBudget:       1.5, // slot 1 user 0: quality_verification rejection
		ConstraintUnprofitable: 1.0, // slot 2 user 1: recorded counterfactual
		ReasonChannelEstimate:  0.5, // slot 1 user 2: |CapErr| over threshold
		ReasonStructural:       0.5, // slot 3: nothing recorded to blame
	}
	if len(rep.ByReason) != len(wantReason) {
		t.Fatalf("by_reason = %+v", rep.ByReason)
	}
	for _, s := range rep.ByReason {
		if !near(s.Regret, wantReason[s.Reason]) {
			t.Errorf("reason %s = %v, want %v", s.Reason, s.Regret, wantReason[s.Reason])
		}
	}

	wantSession := []struct {
		id  uint32
		sum float64
	}{{10, 1.75}, {11, 1.25}, {12, 0.5}}
	if len(rep.TopSessions) != 3 {
		t.Fatalf("top_sessions = %+v", rep.TopSessions)
	}
	for i, w := range wantSession {
		if rep.TopSessions[i].Session != w.id || !near(rep.TopSessions[i].Regret, w.sum) {
			t.Errorf("session rank %d = %+v, want %d/%v", i, rep.TopSessions[i], w.id, w.sum)
		}
	}

	if len(rep.WorstRows) != 5 || rep.WorstRows[0].Regret != 1.5 ||
		rep.WorstRows[0].Session != 10 || rep.WorstRows[0].Reason != ConstraintBudget {
		t.Fatalf("worst rows = %+v", rep.WorstRows)
	}

	if len(rep.ForgoneGain) != 1 || rep.ForgoneGain[0].Reason != ConstraintBudget ||
		!near(rep.ForgoneGain[0].Regret, 2) {
		t.Fatalf("forgone gain = %+v (negative gains must be dropped)", rep.ForgoneGain)
	}

	// Mirrored metrics.
	if v := reg.Counter("collabvr_regret_slots_total").Value(); v != 4 {
		t.Errorf("slots counter = %d", v)
	}
	if v := reg.Gauge("collabvr_regret_sum").Value(); !near(v, 3.5) {
		t.Errorf("regret sum gauge = %v", v)
	}
	if v := reg.Gauge("collabvr_regret_reason_channel_estimate_sum").Value(); !near(v, 0.5) {
		t.Errorf("channel-estimate gauge = %v", v)
	}
}

func near(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// TestRegretUnattributed: regret without a per-user breakdown must be
// reported as unattributed, not silently assigned.
func TestRegretUnattributed(t *testing.T) {
	attr := NewRegretAttributor(RegretAttributorOptions{})
	attr.Observe(&SlotRecord{Algorithm: "x", HasRegret: true, Regret: 1})
	rep := attr.Report()
	if rep.AttributedRegret != 0 || rep.Rows != 0 {
		t.Fatalf("report = %+v, want nothing attributed", rep)
	}
	if rep.AttributedFraction != 0 {
		t.Fatalf("fraction = %v, want 0", rep.AttributedFraction)
	}
}

// TestRegretReportDeterminism: two attributors fed the same records render
// byte-identical reports (ranking ties included).
func TestRegretReportDeterminism(t *testing.T) {
	a1 := NewRegretAttributor(RegretAttributorOptions{})
	a2 := NewRegretAttributor(RegretAttributorOptions{})
	regretFixture(a1)
	regretFixture(a2)
	if f1, f2 := a1.Report().Format(), a2.Report().Format(); f1 != f2 {
		t.Fatalf("reports differ:\n%s\nvs\n%s", f1, f2)
	}
}

func TestRegretNilSafety(t *testing.T) {
	var attr *RegretAttributor
	attr.Observe(&SlotRecord{HasRegret: true, Regret: 5})
	if rep := attr.Report(); rep.Slots != 0 {
		t.Fatalf("nil attributor report = %+v", rep)
	}
	// A recorder without an attributor must still record.
	rec := NewRecorder(RecorderOptions{RingSize: 2})
	rec.Record(&SlotRecord{Algorithm: "x"})
	if rec.Records() != 1 {
		t.Fatal("recorder with nil attributor dropped the record")
	}
}

// TestReadSlotRecordsTolerant mirrors the span reader's live-file policy
// for decision JSONL.
func TestReadSlotRecordsTolerant(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(RecorderOptions{RingSize: 2, Writer: &buf})
	rec.Record(&SlotRecord{Algorithm: "dvgreedy", Slot: 1})
	rec.Record(&SlotRecord{Algorithm: "dvgreedy", Slot: 2})
	full := buf.String()

	records, skipped, err := ReadSlotRecords(strings.NewReader(full))
	if err != nil || skipped != 0 || len(records) != 2 {
		t.Fatalf("clean read: n=%d skipped=%d err=%v", len(records), skipped, err)
	}

	torn := full[:len(full)-15]
	records, skipped, err = ReadSlotRecords(strings.NewReader(torn))
	if err != nil {
		t.Fatalf("torn tail errored: %v", err)
	}
	if len(records) != 1 || skipped != 1 {
		t.Fatalf("torn tail: n=%d skipped=%d, want 1/1", len(records), skipped)
	}

	if _, _, err := ReadSlotRecords(strings.NewReader("junk\n" + full)); err == nil {
		t.Fatal("interior corruption accepted")
	}
	if _, _, err := ReadSlotRecords(strings.NewReader("{\"slot\":1}\n" + full)); err == nil {
		t.Fatal("record without algorithm accepted mid-stream")
	}
}

// TestSlotsHandlerRingInfo checks the configurable-ring surface: the
// /debug/slots document reports the configured capacity and how many
// records have fallen out.
func TestSlotsHandlerRingInfo(t *testing.T) {
	rec := NewRecorder(RecorderOptions{RingSize: 2})
	for slot := 0; slot < 5; slot++ {
		rec.Record(&SlotRecord{Algorithm: "dvgreedy", Slot: slot})
	}
	if rec.RingCapacity() != 2 || rec.Dropped() != 3 {
		t.Fatalf("capacity=%d dropped=%d, want 2/3", rec.RingCapacity(), rec.Dropped())
	}

	w := httptest.NewRecorder()
	SlotsHandler(rec).ServeHTTP(w, httptest.NewRequest("GET", "/debug/slots", nil))
	var doc struct {
		RingCapacity int    `json:"ring_capacity"`
		RingDropped  uint64 `json:"ring_dropped"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.RingCapacity != 2 || doc.RingDropped != 3 {
		t.Fatalf("document = %+v, want capacity 2, dropped 3", doc)
	}
}

// TestRegretHandler serves the report through the mux route.
func TestRegretHandler(t *testing.T) {
	attr := NewRegretAttributor(RegretAttributorOptions{})
	regretFixture(attr)
	mux := NewMuxOpts(nil, nil, MuxOptions{Regret: attr})
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, httptest.NewRequest("GET", "/debug/regret", nil))
	if w.Code != 200 {
		t.Fatalf("status %d", w.Code)
	}
	var rep RegretReport
	if err := json.Unmarshal(w.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if !near(rep.TotalRegret, 3.5) || rep.Rows != 5 {
		t.Fatalf("served report = %+v", rep)
	}
}
