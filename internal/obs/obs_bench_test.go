package obs

// The disabled observability path must be free: a nil registry hands out
// nil instruments and a nil recorder refuses records, all without
// allocating. `go test -bench=Disabled -benchmem ./internal/obs` must show
// 0 allocs/op for every benchmark in this file; TestDisabledPathAllocationFree
// enforces the same bound in the regular test run.

import "testing"

func BenchmarkDisabledCounterInc(b *testing.B) {
	var r *Registry
	c := r.Counter("collabvr_server_slots_total")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkDisabledGaugeSet(b *testing.B) {
	var r *Registry
	g := r.Gauge("collabvr_server_sessions_active")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkDisabledHistogramObserve(b *testing.B) {
	var r *Registry
	h := r.Histogram("collabvr_server_slot_decision_ms", DefaultLatencyBuckets())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 100))
	}
}

func BenchmarkDisabledRecorderRecord(b *testing.B) {
	var rec *Recorder
	r := &SlotRecord{Algorithm: "proposed", Levels: []int{1, 2, 3, 4, 5}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rec.Enabled() {
			b.Fatal("nil recorder enabled")
		}
		rec.Record(r)
	}
}

// BenchmarkEnabledCounterInc is the enabled baseline for comparison: one
// atomic add, still allocation-free.
func BenchmarkEnabledCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("collabvr_server_slots_total")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
