package obs

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/jsonl"
)

// Attribution reasons. The first three mirror the allocator's own decision
// record (rejection constraints and counterfactual alternatives); the last
// two are derived by the attributor.
const (
	// ReasonChannelEstimate: the user's channel capacity estimate was off
	// by at least CapErrThreshold, so the allocator solved the wrong
	// problem for this user — the regret belongs to the estimator.
	ReasonChannelEstimate = "channel-estimate"
	// ReasonStructural: the greedy heuristic itself left value on the
	// table with no rejection, alternative, or estimate error to blame
	// (e.g. the density/value branch split of Algorithm 1 vs the optimum's
	// cross-user trade).
	ReasonStructural = "structural"
)

// RegretRow is one concrete attribution: this session, in this slot, lost
// this much objective value for this reason.
type RegretRow struct {
	Algorithm string  `json:"algorithm"`
	Run       int     `json:"run"`
	Slot      int     `json:"slot"`
	Session   uint32  `json:"session"`
	Reason    string  `json:"reason"`
	Regret    float64 `json:"regret"`
}

// rowBefore orders rows for the worst-rows list: larger regret first, then
// (run, slot, session, algorithm) ascending so reports are deterministic.
func rowBefore(a, b RegretRow) bool {
	if a.Regret != b.Regret {
		return a.Regret > b.Regret
	}
	if a.Run != b.Run {
		return a.Run < b.Run
	}
	if a.Slot != b.Slot {
		return a.Slot < b.Slot
	}
	if a.Session != b.Session {
		return a.Session < b.Session
	}
	return a.Algorithm < b.Algorithm
}

// RegretShare is one bucket of the regret breakdown (by reason or by
// session) with its fraction of the attributed total.
type RegretShare struct {
	Reason  string  `json:"reason,omitempty"`
	Session uint32  `json:"session,omitempty"`
	Regret  float64 `json:"regret"`
	Share   float64 `json:"share"`
}

// RegretReport is the attributor's aggregate document (/debug/regret and
// the collabvr-regret CLI).
type RegretReport struct {
	Slots       int `json:"slots"`
	RegretSlots int `json:"regret_slots"`
	// TotalRegret sums Regret over every record with a reference optimum;
	// AttributedRegret is the portion broken down into Rows. Their ratio is
	// AttributedFraction (1 when everything has a per-user breakdown).
	TotalRegret        float64 `json:"total_regret"`
	AttributedRegret   float64 `json:"attributed_regret"`
	AttributedFraction float64 `json:"attributed_fraction"`
	Rows               int     `json:"rows"`
	// ByReason and TopSessions break the attributed regret down; WorstRows
	// are the costliest individual (session, slot, reason) attributions.
	ByReason    []RegretShare `json:"by_reason"`
	TopSessions []RegretShare `json:"top_sessions"`
	WorstRows   []RegretRow   `json:"worst_rows"`
	// ForgoneGain is the proxy breakdown for records without a reference
	// optimum (the live server): the summed positive objective gain of the
	// recorded counterfactual alternatives, by reason. It bounds what a
	// less constrained allocator could have added, without claiming regret.
	ForgoneGain []RegretShare `json:"forgone_gain,omitempty"`
}

// RegretAttributorOptions configures a RegretAttributor.
type RegretAttributorOptions struct {
	// CapErrThreshold is the |CapErr| above which a user's regret is
	// attributed to the channel estimator rather than the allocation
	// policy (default 0.25).
	CapErrThreshold float64
	// TopRows bounds the WorstRows and TopSessions lists (default 10).
	TopRows int
	// Registry, when non-nil, mirrors the attribution into
	// collabvr_regret_* metrics.
	Registry *Registry
}

// RegretAttributor folds slot records into a per-session/per-slot regret
// breakdown with reasons. It answers the question the aggregate regret
// histogram cannot: which decisions lost the QoE, and why. A nil
// *RegretAttributor is disabled: every method is an allocation-free no-op.
type RegretAttributor struct {
	capErrThreshold float64
	topRows         int

	mu          sync.Mutex
	slots       int
	regretSlots int
	total       float64
	attributed  float64
	rows        int
	byReason    map[string]float64
	bySession   map[uint32]float64
	worst       []RegretRow
	forgone     map[string]float64

	cSlots      *Counter
	gTotal      *Gauge
	gAttributed *Gauge
	gReason     map[string]*Gauge
}

// regretReasons is the closed set of attribution reasons, which keeps the
// mirrored metric names stable.
var regretReasons = []string{
	ConstraintBudget, ConstraintUserCap, ConstraintUnprofitable,
	ReasonChannelEstimate, ReasonStructural,
}

// NewRegretAttributor builds an attributor. Zero-valued options take the
// documented defaults.
func NewRegretAttributor(opts RegretAttributorOptions) *RegretAttributor {
	if opts.CapErrThreshold <= 0 {
		opts.CapErrThreshold = 0.25
	}
	if opts.TopRows <= 0 {
		opts.TopRows = 10
	}
	a := &RegretAttributor{
		capErrThreshold: opts.CapErrThreshold,
		topRows:         opts.TopRows,
		byReason:        make(map[string]float64),
		bySession:       make(map[uint32]float64),
		forgone:         make(map[string]float64),
		cSlots:          opts.Registry.Counter("collabvr_regret_slots_total"),
		gTotal:          opts.Registry.Gauge("collabvr_regret_sum"),
		gAttributed:     opts.Registry.Gauge("collabvr_regret_attributed_sum"),
		gReason:         make(map[string]*Gauge, len(regretReasons)),
	}
	for _, reason := range regretReasons {
		name := "collabvr_regret_reason_" + strings.ReplaceAll(reason, "-", "_") + "_sum"
		a.gReason[reason] = opts.Registry.Gauge(name)
	}
	return a
}

// Observe folds one slot record into the attribution. Records without a
// reference optimum contribute only to the forgone-gain proxy.
func (a *RegretAttributor) Observe(rec *SlotRecord) {
	if a == nil || rec == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.slots++
	a.cSlots.Inc()

	if !rec.HasRegret {
		for _, alt := range rec.Alternatives {
			if alt.Gain > 0 {
				a.forgone[alt.Reason] += alt.Gain
			}
		}
		return
	}
	a.regretSlots++
	a.total += rec.Regret
	a.gTotal.Add(rec.Regret)
	if rec.Regret <= 0 {
		return
	}

	// Split the slot's regret across the users the optimum served better,
	// proportionally to their shortfall, so the attributed sum equals the
	// slot regret exactly whenever a per-user breakdown exists.
	posSum := 0.0
	for _, ur := range rec.UserRegret {
		if ur > 0 {
			posSum += ur
		}
	}
	if posSum == 0 {
		return // no per-user breakdown: stays unattributed, honestly
	}
	for u, ur := range rec.UserRegret {
		if ur <= 0 {
			continue
		}
		share := rec.Regret * ur / posSum
		reason := a.classify(rec, u)
		session := uint32(u)
		if u < len(rec.SessionIDs) {
			session = rec.SessionIDs[u]
		}
		a.attributed += share
		a.gAttributed.Add(share)
		a.byReason[reason] += share
		a.gReason[reason].Add(share)
		a.bySession[session] += share
		a.rows++
		a.worst = insertWorstRow(a.worst, a.topRows, RegretRow{
			Algorithm: rec.Algorithm,
			Run:       rec.Run,
			Slot:      rec.Slot,
			Session:   session,
			Reason:    reason,
			Regret:    share,
		})
	}
}

// classify picks the attribution reason for user u of rec, most specific
// cause first: a bad channel estimate, then the recorded rejection, then
// the recorded counterfactual alternative, then the structural residue.
func (a *RegretAttributor) classify(rec *SlotRecord, u int) string {
	if u < len(rec.CapErr) && math.Abs(rec.CapErr[u]) >= a.capErrThreshold {
		return ReasonChannelEstimate
	}
	for _, rej := range rec.Rejections {
		if rej.User == u {
			return rej.Constraint
		}
	}
	for _, alt := range rec.Alternatives {
		if alt.User == u {
			return alt.Reason
		}
	}
	return ReasonStructural
}

// insertWorstRow keeps the k worst rows sorted by rowBefore, shifting in
// place like the solver's top-K accumulator.
func insertWorstRow(rows []RegretRow, k int, row RegretRow) []RegretRow {
	switch {
	case len(rows) < k:
		rows = append(rows, row)
	case rowBefore(row, rows[len(rows)-1]):
		rows[len(rows)-1] = row
	default:
		return rows
	}
	for i := len(rows) - 1; i > 0 && rowBefore(rows[i], rows[i-1]); i-- {
		rows[i], rows[i-1] = rows[i-1], rows[i]
	}
	return rows
}

// Report computes the aggregate attribution document so far.
func (a *RegretAttributor) Report() RegretReport {
	if a == nil {
		return RegretReport{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	rep := RegretReport{
		Slots:            a.slots,
		RegretSlots:      a.regretSlots,
		TotalRegret:      a.total,
		AttributedRegret: a.attributed,
		Rows:             a.rows,
		WorstRows:        append([]RegretRow(nil), a.worst...),
	}
	if a.total > 0 {
		rep.AttributedFraction = a.attributed / a.total
	} else if a.regretSlots > 0 {
		rep.AttributedFraction = 1 // zero regret is fully explained
	}
	for reason, sum := range a.byReason {
		s := RegretShare{Reason: reason, Regret: sum}
		if a.attributed > 0 {
			s.Share = sum / a.attributed
		}
		rep.ByReason = append(rep.ByReason, s)
	}
	sort.Slice(rep.ByReason, func(i, j int) bool {
		if rep.ByReason[i].Regret != rep.ByReason[j].Regret {
			return rep.ByReason[i].Regret > rep.ByReason[j].Regret
		}
		return rep.ByReason[i].Reason < rep.ByReason[j].Reason
	})
	for session, sum := range a.bySession {
		s := RegretShare{Session: session, Regret: sum}
		if a.attributed > 0 {
			s.Share = sum / a.attributed
		}
		rep.TopSessions = append(rep.TopSessions, s)
	}
	sort.Slice(rep.TopSessions, func(i, j int) bool {
		if rep.TopSessions[i].Regret != rep.TopSessions[j].Regret {
			return rep.TopSessions[i].Regret > rep.TopSessions[j].Regret
		}
		return rep.TopSessions[i].Session < rep.TopSessions[j].Session
	})
	if len(rep.TopSessions) > a.topRows {
		rep.TopSessions = rep.TopSessions[:a.topRows]
	}
	forgoneTotal := 0.0
	for _, sum := range a.forgone {
		forgoneTotal += sum
	}
	for reason, sum := range a.forgone {
		s := RegretShare{Reason: reason, Regret: sum}
		if forgoneTotal > 0 {
			s.Share = sum / forgoneTotal
		}
		rep.ForgoneGain = append(rep.ForgoneGain, s)
	}
	sort.Slice(rep.ForgoneGain, func(i, j int) bool {
		if rep.ForgoneGain[i].Regret != rep.ForgoneGain[j].Regret {
			return rep.ForgoneGain[i].Regret > rep.ForgoneGain[j].Regret
		}
		return rep.ForgoneGain[i].Reason < rep.ForgoneGain[j].Reason
	})
	return rep
}

// Format renders the report as the CLI's text table.
func (r RegretReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# regret attribution: %d slots, %d with reference optimum\n",
		r.Slots, r.RegretSlots)
	fmt.Fprintf(&b, "total regret %.5f, attributed %.5f (%.1f%%) across %d rows\n",
		r.TotalRegret, r.AttributedRegret, 100*r.AttributedFraction, r.Rows)
	if len(r.ByReason) > 0 {
		fmt.Fprintf(&b, "\n%-18s %12s %8s\n", "reason", "regret", "share")
		for _, s := range r.ByReason {
			fmt.Fprintf(&b, "%-18s %12.5f %7.1f%%\n", s.Reason, s.Regret, 100*s.Share)
		}
	}
	if len(r.TopSessions) > 0 {
		fmt.Fprintf(&b, "\n%-10s %12s %8s\n", "session", "regret", "share")
		for _, s := range r.TopSessions {
			fmt.Fprintf(&b, "%-10d %12.5f %7.1f%%\n", s.Session, s.Regret, 100*s.Share)
		}
	}
	if len(r.WorstRows) > 0 {
		fmt.Fprintf(&b, "\nworst decisions:\n%-10s %5s %7s %8s %-18s %10s\n",
			"algorithm", "run", "slot", "session", "reason", "regret")
		for _, row := range r.WorstRows {
			fmt.Fprintf(&b, "%-10s %5d %7d %8d %-18s %10.5f\n",
				row.Algorithm, row.Run, row.Slot, row.Session, row.Reason, row.Regret)
		}
	}
	if len(r.ForgoneGain) > 0 {
		fmt.Fprintf(&b, "\nforgone gain (no reference optimum; proxy):\n%-18s %12s %8s\n",
			"reason", "gain", "share")
		for _, s := range r.ForgoneGain {
			fmt.Fprintf(&b, "%-18s %12.5f %7.1f%%\n", s.Reason, s.Regret, 100*s.Share)
		}
	}
	return b.String()
}

// ReadSlotRecords parses a decision JSONL export (the format Recorder
// writes). Like the span reader, it tolerates a trailing run of partial or
// malformed lines from a live writer — skipped and counted — but fails on
// interior corruption.
func ReadSlotRecords(r io.Reader) ([]SlotRecord, int, error) {
	recs, skipped, err := jsonl.Decode(r, func(rec *SlotRecord) error {
		if rec.Algorithm == "" {
			return errors.New("record without algorithm")
		}
		return nil
	})
	if err != nil {
		return nil, 0, fmt.Errorf("obs: %w", err)
	}
	return recs, skipped, nil
}
