package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("x_total") != c {
		t.Error("counter not idempotent per name")
	}
	g := r.Gauge("g")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5, 10})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 7, 20} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); math.Abs(got-33.5) > 1e-9 {
		t.Errorf("sum = %v, want 33.5", got)
	}
	if q := h.Quantile(0.5); q < 1 || q > 2 {
		t.Errorf("p50 = %v, want within (1,2]", q)
	}
	// Overflow samples report the top finite bound.
	if q := h.Quantile(1); q != 10 {
		t.Errorf("p100 = %v, want 10", q)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(LinearBuckets(0, 1, 10))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(i % 12))
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("count = %d, want 8000", h.Count())
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(1, 2, 3)
	if lin[0] != 1 || lin[1] != 3 || lin[2] != 5 {
		t.Errorf("linear buckets = %v", lin)
	}
	exp := ExponentialBuckets(1, 10, 3)
	if exp[0] != 1 || exp[1] != 10 || exp[2] != 100 {
		t.Errorf("exponential buckets = %v", exp)
	}
}

func TestNilRegistryAndInstrumentsAreNoops(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", LinearBuckets(0, 1, 4))
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil instruments must read zero")
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil registry exposition = %q, %v", buf.String(), err)
	}
}

func TestDisabledPathAllocationFree(t *testing.T) {
	var r *Registry
	var rec *Recorder
	c := r.Counter("c")
	h := r.Histogram("h", nil)
	slotRec := &SlotRecord{Algorithm: "x", Levels: []int{1, 2}}
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		h.Observe(3)
		if rec.Enabled() {
			t.Fatal("nil recorder reported enabled")
		}
		rec.Record(slotRec)
	})
	if allocs != 0 {
		t.Errorf("disabled path allocated %v per op, want 0", allocs)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Gauge("a_gauge").Set(1.5)
	h := r.Histogram("c_hist", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	wantLines := []string{
		"# TYPE a_gauge gauge",
		"a_gauge 1.5",
		"# TYPE b_total counter",
		"b_total 2",
		"# TYPE c_hist histogram",
		`c_hist_bucket{le="1"} 1`,
		`c_hist_bucket{le="2"} 1`,
		`c_hist_bucket{le="+Inf"} 2`,
		"c_hist_sum 5.5",
		"c_hist_count 2",
	}
	for _, want := range wantLines {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Sorted by name: the gauge precedes the counter.
	if strings.Index(out, "a_gauge") > strings.Index(out, "b_total") {
		t.Errorf("exposition not sorted:\n%s", out)
	}
}

func TestRecorderRingSummaryAndJSONL(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(RecorderOptions{RingSize: 4, Writer: &buf})
	for i := 0; i < 6; i++ {
		rec.Record(&SlotRecord{
			Algorithm:   "proposed",
			Slot:        i,
			Levels:      []int{1, 2},
			Value:       10,
			RateMbps:    90,
			BudgetMbps:  180,
			Utilization: 0.5,
			Branch:      "density",
			Upgrades:    3,
			Rejections: []Rejection{
				{User: 0, Level: 4, Constraint: ConstraintUserCap},
				{User: 1, Level: 3, Constraint: ConstraintBudget},
			},
			Regret:    0.25,
			HasRegret: true,
		})
	}
	rec.Record(&SlotRecord{Algorithm: "optimal", Slot: 0, Value: 10.25, Utilization: 0.6})

	if rec.Records() != 7 {
		t.Errorf("records = %d, want 7", rec.Records())
	}
	recent := rec.Recent(10)
	if len(recent) != 4 {
		t.Fatalf("ring kept %d records, want 4", len(recent))
	}
	if recent[len(recent)-1].Algorithm != "optimal" {
		t.Errorf("newest record = %+v", recent[len(recent)-1])
	}
	if recent[0].Slot != 3 || recent[0].Algorithm != "proposed" {
		t.Errorf("oldest ring record = %+v, want proposed slot 3", recent[0])
	}

	s := rec.Summary()
	if s.Records != 7 || len(s.Algorithms) != 2 {
		t.Fatalf("summary = %+v", s)
	}
	// Sorted by name: optimal first.
	if s.Algorithms[0].Name != "optimal" || s.Algorithms[1].Name != "proposed" {
		t.Fatalf("summary order = %+v", s.Algorithms)
	}
	p := s.Algorithms[1]
	if p.Slots != 6 || p.Upgrades != 18 || p.RejectsUserCap != 6 || p.RejectsBudget != 6 {
		t.Errorf("proposed summary = %+v", p)
	}
	if math.Abs(p.MeanRegret-0.25) > 1e-9 || math.Abs(p.MaxRegret-0.25) > 1e-9 {
		t.Errorf("regret summary = %+v", p)
	}
	if math.Abs(p.MeanUtilization-0.5) > 1e-9 {
		t.Errorf("mean utilization = %v", p.MeanUtilization)
	}
	if !strings.Contains(s.Format(), "proposed") {
		t.Errorf("Format missing algorithm:\n%s", s.Format())
	}

	// JSONL: one valid JSON object per line.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 7 {
		t.Fatalf("JSONL lines = %d, want 7", len(lines))
	}
	var first SlotRecord
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("bad JSONL line: %v", err)
	}
	if first.Algorithm != "proposed" || len(first.Rejections) != 2 || !first.HasRegret {
		t.Errorf("decoded record = %+v", first)
	}
	if rec.Err() != nil {
		t.Errorf("write error: %v", rec.Err())
	}
}

func TestHTTPHandlers(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("collabvr_server_slots_total").Add(3)
	rec := NewRecorder(RecorderOptions{RingSize: 8})
	rec.Record(&SlotRecord{Algorithm: "proposed", Slot: 1, Levels: []int{2}})

	mux := NewMux(reg, rec)

	w := httptest.NewRecorder()
	mux.ServeHTTP(w, httptest.NewRequest("GET", "/metrics", nil))
	if w.Code != 200 || !strings.Contains(w.Body.String(), "collabvr_server_slots_total 3") {
		t.Errorf("/metrics = %d %q", w.Code, w.Body.String())
	}

	w = httptest.NewRecorder()
	mux.ServeHTTP(w, httptest.NewRequest("GET", "/debug/slots?n=5", nil))
	if w.Code != 200 {
		t.Fatalf("/debug/slots = %d", w.Code)
	}
	var resp struct {
		Summary Summary      `json:"summary"`
		Recent  []SlotRecord `json:"recent"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Summary.Records != 1 || len(resp.Recent) != 1 || resp.Recent[0].Algorithm != "proposed" {
		t.Errorf("slots response = %+v", resp)
	}

	w = httptest.NewRecorder()
	mux.ServeHTTP(w, httptest.NewRequest("GET", "/debug/slots?n=bogus", nil))
	if w.Code != 400 {
		t.Errorf("bad n should 400, got %d", w.Code)
	}
}
