package obs

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/pprof"
	"runtime/metrics"
)

// runtimeSamples are the runtime/metrics series mirrored into the registry
// and the /debug/runtime document.
var runtimeSamples = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/memory/classes/total:bytes",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
}

// CollectRuntime samples the Go runtime (goroutine count, heap and total
// memory, GC cycles and pause quantiles) into collabvr_runtime_* gauges.
// Call it before serving a scrape; a nil registry makes it a no-op.
func CollectRuntime(r *Registry) {
	if r == nil {
		return
	}
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i, name := range runtimeSamples {
		samples[i].Name = name
	}
	metrics.Read(samples)
	for _, s := range samples {
		switch s.Name {
		case "/sched/goroutines:goroutines":
			r.Gauge("collabvr_runtime_goroutines").Set(float64(s.Value.Uint64()))
		case "/memory/classes/heap/objects:bytes":
			r.Gauge("collabvr_runtime_heap_objects_bytes").Set(float64(s.Value.Uint64()))
		case "/memory/classes/total:bytes":
			r.Gauge("collabvr_runtime_total_bytes").Set(float64(s.Value.Uint64()))
		case "/gc/cycles/total:gc-cycles":
			r.Gauge("collabvr_runtime_gc_cycles_total").Set(float64(s.Value.Uint64()))
		case "/gc/pauses:seconds":
			h := s.Value.Float64Histogram()
			if h == nil {
				continue
			}
			r.Gauge("collabvr_runtime_gc_pause_p99_seconds").Set(float64HistQuantile(h, 0.99))
			r.Gauge("collabvr_runtime_gc_pause_max_seconds").Set(float64HistQuantile(h, 1))
		}
	}
}

// float64HistQuantile estimates a quantile of a runtime/metrics histogram;
// the highest populated bucket's upper edge bounds the estimate.
func float64HistQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			// Buckets[i+1] is the bucket's upper edge; the last bucket's
			// edge may be +Inf, in which case fall back to its lower edge.
			if hi := h.Buckets[i+1]; !math.IsInf(hi, 1) {
				return hi
			}
			return h.Buckets[i]
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

// runtimeHandler serves the sampled runtime state as JSON.
func runtimeHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		CollectRuntime(r)
		doc := map[string]float64{
			"goroutines":           r.Gauge("collabvr_runtime_goroutines").Value(),
			"heap_objects_bytes":   r.Gauge("collabvr_runtime_heap_objects_bytes").Value(),
			"total_bytes":          r.Gauge("collabvr_runtime_total_bytes").Value(),
			"gc_cycles_total":      r.Gauge("collabvr_runtime_gc_cycles_total").Value(),
			"gc_pause_p99_seconds": r.Gauge("collabvr_runtime_gc_pause_p99_seconds").Value(),
			"gc_pause_max_seconds": r.Gauge("collabvr_runtime_gc_pause_max_seconds").Value(),
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
	})
}

// AttachDebug registers the Go profiling endpoints (/debug/pprof/...) and
// the /debug/runtime sampler on the mux. Callers gate it behind a -debug
// flag: the pprof endpoints expose internals and can be expensive.
func AttachDebug(mux *http.ServeMux, r *Registry) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/runtime", runtimeHandler(r))
}

// RegretHandler serves the attributor's report as the /debug/regret JSON
// page (a nil attributor serves an empty report).
func RegretHandler(a *RegretAttributor) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(a.Report())
	})
}

// SLOHandler serves the SLO monitor's snapshot as the /debug/slo JSON page
// (a nil monitor serves an empty snapshot).
func SLOHandler(m *SLOMonitor) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(m.Snapshot())
	})
}
