package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"repro/internal/jsonl"
)

// Placement reasons: why the fleet router was asked for a shard. Arrival is
// the admission decision for a new session; the migration reasons name the
// event that evicted the session from its previous shard.
const (
	PlaceArrival     = "arrival"
	PlaceShardKill   = "shard-kill"
	PlaceShardDrain  = "shard-drain"
	PlaceSLOPressure = "slo-pressure"
)

// ShardScore is one candidate shard's state and score at a placement
// decision — the fleet analogue of a SlotRecord alternative: enough to
// replay why the router preferred the chosen shard over this one.
type ShardScore struct {
	Shard      int     `json:"shard"`
	Zone       int     `json:"zone"`
	Score      float64 `json:"score"`
	Sessions   int     `json:"sessions"`
	BudgetMbps float64 `json:"budget_mbps"`
	DemandMbps float64 `json:"demand_mbps"`
	// PageFrac is the fraction of the shard's sessions whose SLO burn rate
	// is in the page state (the input of burn-rate-aware scoring).
	PageFrac float64 `json:"page_frac"`
	Draining bool    `json:"draining,omitempty"`
}

// PlacementRecord is one fleet routing decision: which shard got the
// session, why the decision was being made, and how every live candidate
// scored. It is the placement-layer mirror of the knapsack flight
// recorder's SlotRecord.
type PlacementRecord struct {
	Seq     uint64 `json:"seq"`
	Slot    int    `json:"slot"`
	Session uint32 `json:"session"`
	Zone    int    `json:"zone"`
	Scorer  string `json:"scorer"`
	// Reason is one of the Place* constants.
	Reason string `json:"reason"`
	// Chosen is the winning shard (-1: no shard could accept the session).
	Chosen int `json:"chosen"`
	// From is the source shard of a migration (-1 for arrivals).
	From   int          `json:"from"`
	Scores []ShardScore `json:"scores,omitempty"`
}

// PlacementRecorderOptions configures a PlacementRecorder.
type PlacementRecorderOptions struct {
	// RingSize bounds the in-memory ring served by /debug/fleet
	// (default 256).
	RingSize int
	// Writer, when non-nil, receives every record as one JSON line.
	Writer io.Writer
	// Metrics, when non-nil, receives collabvr_fleet_* counters.
	Metrics *Registry
}

// PlacementRecorder is the concurrency-safe ring of fleet placement
// decisions. A nil *PlacementRecorder is the disabled recorder: Record is
// a no-op, so the router never branches on observability being wired.
type PlacementRecorder struct {
	mu         sync.Mutex
	ring       []PlacementRecord
	next       int
	full       bool
	enc        *json.Encoder
	writeErr   error
	records    uint64
	placements *Counter
	migrations *Counter
	failed     *Counter
}

// NewPlacementRecorder builds a placement recorder.
func NewPlacementRecorder(opts PlacementRecorderOptions) *PlacementRecorder {
	if opts.RingSize <= 0 {
		opts.RingSize = 256
	}
	r := &PlacementRecorder{ring: make([]PlacementRecord, opts.RingSize)}
	if opts.Writer != nil {
		r.enc = json.NewEncoder(opts.Writer)
	}
	if opts.Metrics != nil {
		r.placements = opts.Metrics.Counter("collabvr_fleet_placements_total")
		r.migrations = opts.Metrics.Counter("collabvr_fleet_migrations_total")
		r.failed = opts.Metrics.Counter("collabvr_fleet_placements_failed_total")
	}
	return r
}

// Record ingests one placement decision, assigning its sequence number.
// The record is copied; the Scores slice is aliased by the ring.
func (r *PlacementRecorder) Record(rec *PlacementRecord) {
	if r == nil || rec == nil {
		return
	}
	r.mu.Lock()
	r.records++
	rec.Seq = r.records
	r.ring[r.next] = *rec
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.full = true
	}
	if r.enc != nil && r.writeErr == nil {
		r.writeErr = r.enc.Encode(rec)
	}
	r.mu.Unlock()
	if rec.Chosen < 0 {
		r.failed.Inc()
		return
	}
	r.placements.Inc()
	if rec.Reason != PlaceArrival {
		r.migrations.Inc()
	}
}

// Err returns the first JSONL write error, if any.
func (r *PlacementRecorder) Err() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.writeErr
}

// Records returns the total number of decisions ingested.
func (r *PlacementRecorder) Records() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.records
}

// Recent returns up to n of the most recent records, oldest first.
func (r *PlacementRecorder) Recent(n int) []PlacementRecord {
	if r == nil || n <= 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	size := r.next
	if r.full {
		size = len(r.ring)
	}
	if n > size {
		n = size
	}
	out := make([]PlacementRecord, n)
	for i := 0; i < n; i++ {
		idx := (r.next - n + i + len(r.ring)) % len(r.ring)
		out[i] = r.ring[idx]
	}
	return out
}

// RingCapacity returns the configured ring size.
func (r *PlacementRecorder) RingCapacity() int {
	if r == nil {
		return 0
	}
	return len(r.ring)
}

// Dropped returns how many records have already fallen out of the ring —
// the same ring_capacity/ring_dropped accounting /debug/slots reports for
// the flight recorder.
func (r *PlacementRecorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.records <= uint64(len(r.ring)) {
		return 0
	}
	return r.records - uint64(len(r.ring))
}

// ValidatePlacement is the JSONL reader's per-record check.
func ValidatePlacement(rec *PlacementRecord) error {
	if rec.Seq == 0 {
		return fmt.Errorf("placement record without a sequence number")
	}
	switch rec.Reason {
	case PlaceArrival, PlaceShardKill, PlaceShardDrain, PlaceSLOPressure:
	default:
		return fmt.Errorf("placement seq %d: unknown reason %q", rec.Seq, rec.Reason)
	}
	if rec.Chosen < -1 {
		return fmt.Errorf("placement seq %d: bad chosen shard %d", rec.Seq, rec.Chosen)
	}
	return nil
}

// ReadPlacements decodes a PlacementRecorder JSONL stream with the shared
// tolerant trailing-line policy (see internal/jsonl).
func ReadPlacements(rd io.Reader) ([]PlacementRecord, int, error) {
	return jsonl.Decode[PlacementRecord](rd, ValidatePlacement)
}

// FleetShardState is one shard's row in the fleet snapshot.
type FleetShardState struct {
	Shard       int     `json:"shard"`
	Zone        int     `json:"zone"`
	Alive       bool    `json:"alive"`
	Draining    bool    `json:"draining,omitempty"`
	Sessions    int     `json:"sessions"`
	BudgetMbps  float64 `json:"budget_mbps"`
	DemandMbps  float64 `json:"demand_mbps"`
	PageFrac    float64 `json:"page_frac"`
	Placed      int     `json:"placed"`
	MigratedIn  int     `json:"migrated_in"`
	MigratedOut int     `json:"migrated_out"`
}

// FleetSnapshot is the /debug/fleet JSON document: the coordinator's
// current view of every shard plus the placement-decision tail.
type FleetSnapshot struct {
	Scorer           string            `json:"scorer"`
	GlobalBudgetMbps float64           `json:"global_budget_mbps"`
	Slot             int               `json:"slot"`
	Shards           []FleetShardState `json:"shards"`
	Placements       uint64            `json:"placements"`
	Migrations       int               `json:"migrations"`
	Rebalances       int               `json:"rebalances"`
	// Evacuations counts sessions moved by the SLO-pressure loop (a subset
	// of Migrations).
	Evacuations int `json:"evacuations,omitempty"`
	// RingCapacity/RingDropped mirror the /debug/slots flight-recorder
	// accounting for the placement ring.
	RingCapacity int               `json:"ring_capacity"`
	RingDropped  uint64            `json:"ring_dropped"`
	Recent       []PlacementRecord `json:"recent,omitempty"`
}

// Format renders the snapshot as a terminal table.
func (s FleetSnapshot) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# fleet: scorer %s, global budget %.0f Mbps, %d placements, %d migrations, %d rebalances\n",
		s.Scorer, s.GlobalBudgetMbps, s.Placements, s.Migrations, s.Rebalances)
	fmt.Fprintf(&b, "%-6s %5s %6s %9s %9s %11s %11s %9s %7s %7s %7s\n",
		"shard", "zone", "alive", "draining", "sessions", "budget", "demand", "pagefrac", "placed", "migIn", "migOut")
	for _, sh := range s.Shards {
		fmt.Fprintf(&b, "%-6d %5d %6v %9v %9d %9.1fMb %9.1fMb %9.3f %7d %7d %7d\n",
			sh.Shard, sh.Zone, sh.Alive, sh.Draining, sh.Sessions,
			sh.BudgetMbps, sh.DemandMbps, sh.PageFrac,
			sh.Placed, sh.MigratedIn, sh.MigratedOut)
	}
	return b.String()
}

// FleetHandler serves a fleet snapshot producer as JSON. The `n` query
// parameter bounds the placement-record tail (default 64).
func FleetHandler(snapshot func(n int) FleetSnapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		n := 64
		if s := req.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snapshot(n))
	})
}
