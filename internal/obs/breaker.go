package obs

import "sync"

// Breaker states. A session's breaker degrades quality before the system
// ever considers dropping the session: the paper's QoE model values presence
// (FoV coverage) over fidelity, so a struggling session is pinned to a lower
// q_n ceiling until its SLO position recovers.
const (
	BreakerClosed   = "closed"    // healthy: allocation uncapped
	BreakerDegraded = "degraded"  // SLO warn: quality capped at WarnCap
	BreakerOpen     = "open"      // SLO page: quality capped at PageCap
	BreakerHalfOpen = "half-open" // probing recovery at HalfOpenCap
)

// BreakerConfig tunes the per-session circuit breaker driven by the SLO
// monitor's alert states. All windows are counted in display slots.
type BreakerConfig struct {
	// Levels is the quality ladder size (default 5, the paper's 1..5).
	Levels int
	// WarnCap is the ceiling in the degraded state (default Levels-1).
	WarnCap int
	// PageCap is the ceiling in the open state (default 1: lowest quality,
	// but never zero — coverage is preserved, fidelity is sacrificed).
	PageCap int
	// HalfOpenCap is the probing ceiling (default WarnCap).
	HalfOpenCap int
	// RecoverySlots is how many consecutive non-page slots an open breaker
	// needs before probing half-open, and how many consecutive ok slots a
	// degraded breaker needs to close (default 300).
	RecoverySlots int
	// HalfOpenSlots is how many consecutive non-page slots the half-open
	// probe must survive to close (default RecoverySlots/2).
	HalfOpenSlots int
}

// DefaultBreakerConfig returns the defaults described on BreakerConfig.
func DefaultBreakerConfig() BreakerConfig {
	return BreakerConfig{Levels: 5, RecoverySlots: 300}
}

func (c *BreakerConfig) fill() {
	d := DefaultBreakerConfig()
	if c.Levels <= 0 {
		c.Levels = d.Levels
	}
	if c.WarnCap <= 0 || c.WarnCap > c.Levels {
		c.WarnCap = c.Levels - 1
		if c.WarnCap == 0 {
			c.WarnCap = 1
		}
	}
	if c.PageCap <= 0 || c.PageCap > c.WarnCap {
		c.PageCap = 1
	}
	if c.HalfOpenCap <= 0 || c.HalfOpenCap > c.Levels {
		c.HalfOpenCap = c.WarnCap
	}
	if c.RecoverySlots <= 0 {
		c.RecoverySlots = d.RecoverySlots
	}
	if c.HalfOpenSlots <= 0 {
		c.HalfOpenSlots = c.RecoverySlots / 2
		if c.HalfOpenSlots == 0 {
			c.HalfOpenSlots = 1
		}
	}
}

// breakerSession is one session's breaker state machine.
type breakerSession struct {
	state  string
	streak int // consecutive recovery-qualifying slots in the current state
}

// Breaker is the per-session quality circuit breaker. Feed it the SLO
// monitor's alert state once per display slot via Observe; read the current
// quality ceiling via Cap. A nil *Breaker is the disabled breaker: every
// method is a no-op and Cap reports "uncapped".
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	sessions map[uint32]*breakerSession

	cOpened, cDegraded, cClosed *Counter
	gOpen, gDegraded            *Gauge
}

// NewBreaker builds a breaker. Zero-valued config fields take the defaults;
// reg may be nil (no metrics mirroring).
func NewBreaker(cfg BreakerConfig, reg *Registry) *Breaker {
	cfg.fill()
	return &Breaker{
		cfg:       cfg,
		sessions:  make(map[uint32]*breakerSession),
		cOpened:   reg.Counter("collabvr_breaker_open_transitions_total"),
		cDegraded: reg.Counter("collabvr_breaker_degraded_transitions_total"),
		cClosed:   reg.Counter("collabvr_breaker_close_transitions_total"),
		gOpen:     reg.Gauge("collabvr_breaker_sessions_open"),
		gDegraded: reg.Gauge("collabvr_breaker_sessions_degraded"),
	}
}

// Config returns the effective (default-filled) configuration.
func (b *Breaker) Config() BreakerConfig {
	if b == nil {
		return BreakerConfig{}
	}
	return b.cfg
}

// Observe folds one slot's SLO alert state ("ok"/"warn"/"page"; "" is
// treated as ok) into the session's breaker. Call once per display slot.
func (b *Breaker) Observe(session uint32, sloState string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	s := b.sessions[session]
	if s == nil {
		s = &breakerSession{state: BreakerClosed}
		b.sessions[session] = s
	}
	page := sloState == SLOStatePage
	warn := sloState == SLOStateWarn

	switch s.state {
	case BreakerClosed:
		switch {
		case page:
			b.trip(s, BreakerOpen)
		case warn:
			b.trip(s, BreakerDegraded)
		}
	case BreakerDegraded:
		switch {
		case page:
			b.trip(s, BreakerOpen)
		case warn:
			s.streak = 0
		default:
			if s.streak++; s.streak >= b.cfg.RecoverySlots {
				b.trip(s, BreakerClosed)
			}
		}
	case BreakerOpen:
		// Recovery keys on "not paging" rather than "fully ok": the SLO's
		// long window drags warn for a while after a fault clears, and
		// waiting it out would hold quality down long past the fault.
		if page {
			s.streak = 0
		} else if s.streak++; s.streak >= b.cfg.RecoverySlots {
			b.trip(s, BreakerHalfOpen)
		}
	case BreakerHalfOpen:
		if page {
			b.trip(s, BreakerOpen)
		} else if s.streak++; s.streak >= b.cfg.HalfOpenSlots {
			b.trip(s, BreakerClosed)
		}
	}
}

// trip moves a session to a new state (b.mu held).
func (b *Breaker) trip(s *breakerSession, state string) {
	s.state = state
	s.streak = 0
	switch state {
	case BreakerOpen:
		b.cOpened.Inc()
	case BreakerDegraded:
		b.cDegraded.Inc()
	case BreakerClosed:
		b.cClosed.Inc()
	}
}

// Cap returns the session's current quality ceiling, 0 meaning uncapped.
func (b *Breaker) Cap(session uint32) int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	s := b.sessions[session]
	if s == nil {
		return 0
	}
	switch s.state {
	case BreakerDegraded:
		return b.cfg.WarnCap
	case BreakerOpen:
		return b.cfg.PageCap
	case BreakerHalfOpen:
		return b.cfg.HalfOpenCap
	}
	return 0
}

// State returns the session's breaker state ("" when unknown).
func (b *Breaker) State(session uint32) string {
	if b == nil {
		return ""
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if s := b.sessions[session]; s != nil {
		return s.state
	}
	return ""
}

// Retire drops a departed session's breaker.
func (b *Breaker) Retire(session uint32) {
	if b == nil {
		return
	}
	b.mu.Lock()
	delete(b.sessions, session)
	b.mu.Unlock()
}

// Counts returns how many sessions sit in each state and refreshes the
// mirrored gauges.
func (b *Breaker) Counts() (closed, degraded, open, halfOpen int) {
	if b == nil {
		return
	}
	b.mu.Lock()
	for _, s := range b.sessions {
		switch s.state {
		case BreakerDegraded:
			degraded++
		case BreakerOpen:
			open++
		case BreakerHalfOpen:
			halfOpen++
		default:
			closed++
		}
	}
	b.mu.Unlock()
	b.gOpen.Set(float64(open))
	b.gDegraded.Set(float64(degraded))
	return
}
