package obs

import (
	"sort"
	"sync"
)

// SLO alert states, ordered by severity.
const (
	SLOStateOK   = "ok"
	SLOStateWarn = "warn"
	SLOStatePage = "page"
)

// SLOConfig defines the per-session QoE service-level objectives and the
// multi-window burn-rate alerting policy over them. Windows are counted in
// display slots (the paper's time unit), not wall time, so the live loopback
// engine and the virtual-time engine evaluate identically.
type SLOConfig struct {
	// WindowSlots is the long rolling window (default 600 slots — 60 s of
	// 100 ms slots). ShortWindowSlots is the fast window (default 120).
	WindowSlots      int
	ShortWindowSlots int
	// MissTarget is the deadline-miss-rate objective (default 0.02: at most
	// 2% of frames may miss their display deadline). StallTarget bounds the
	// stall rate, where a stall is a missed frame immediately following
	// another miss — consecutive misses are what users perceive as freezes
	// (default 0.01).
	MissTarget  float64
	StallTarget float64
	// MinMeanQuality is the mean delivered-quality-level floor over the long
	// window (default 2.5 of the paper's 1..5 levels).
	MinMeanQuality float64
	// FastBurn and SlowBurn are burn-rate thresholds: consumption of the
	// error budget as a multiple of the target rate. Page when BOTH windows
	// burn at >= FastBurn (default 10); warn at >= SlowBurn on the long
	// window (default 3). The two-window rule is the standard SRE guard
	// against paging on short blips while still catching fast burns quickly.
	FastBurn float64
	SlowBurn float64
}

// DefaultSLOConfig returns the defaults described on SLOConfig.
func DefaultSLOConfig() SLOConfig {
	return SLOConfig{
		WindowSlots:      600,
		ShortWindowSlots: 120,
		MissTarget:       0.02,
		StallTarget:      0.01,
		MinMeanQuality:   2.5,
		FastBurn:         10,
		SlowBurn:         3,
	}
}

func (c *SLOConfig) fill() {
	d := DefaultSLOConfig()
	if c.WindowSlots <= 0 {
		c.WindowSlots = d.WindowSlots
	}
	if c.ShortWindowSlots <= 0 || c.ShortWindowSlots > c.WindowSlots {
		c.ShortWindowSlots = c.WindowSlots / 5
		if c.ShortWindowSlots == 0 {
			c.ShortWindowSlots = 1
		}
	}
	if c.MissTarget <= 0 {
		c.MissTarget = d.MissTarget
	}
	if c.StallTarget <= 0 {
		c.StallTarget = d.StallTarget
	}
	if c.MinMeanQuality <= 0 {
		c.MinMeanQuality = d.MinMeanQuality
	}
	if c.FastBurn <= 0 {
		c.FastBurn = d.FastBurn
	}
	if c.SlowBurn <= 0 {
		c.SlowBurn = d.SlowBurn
	}
}

// sloSession is one session's rolling QoE window. Misses, stalls and quality
// are kept as ring buffers of WindowSlots entries with incremental sums, so
// ObserveSlot is O(1).
type sloSession struct {
	flags   []uint8 // bit 0: missed, bit 1: stalled
	quality []float32
	next    int
	filled  int

	missLong, stallLong   int
	missShort, stallShort int
	qualitySum            float64
	prevMissed            bool
	state                 string
}

const (
	sloFlagMiss  = 1 << 0
	sloFlagStall = 1 << 1
)

// SLOSessionState is one session's externally visible SLO position.
type SLOSessionState struct {
	Session      uint32  `json:"session"`
	State        string  `json:"state"`
	Slots        int     `json:"slots"` // window fill, capped at WindowSlots
	MissRate     float64 `json:"miss_rate"`
	MissBurn     float64 `json:"miss_burn"` // long-window burn rate
	MissBurnFast float64 `json:"miss_burn_fast"`
	StallRate    float64 `json:"stall_rate"`
	StallBurn    float64 `json:"stall_burn"`
	MeanQuality  float64 `json:"mean_quality"`
	QualityLow   bool    `json:"quality_low"`
}

// SLOSnapshot is the /debug/slo document.
type SLOSnapshot struct {
	Config        SLOConfig         `json:"config"`
	Sessions      []SLOSessionState `json:"sessions"`
	OK            int               `json:"ok"`
	Warn          int               `json:"warn"`
	Page          int               `json:"page"`
	WorstMissBurn float64           `json:"worst_miss_burn"`
}

// SLOMonitor tracks per-session rolling QoE windows against the configured
// objectives and derives multi-window burn-rate alert states. A nil
// *SLOMonitor is the disabled monitor: every method is a no-op.
type SLOMonitor struct {
	cfg SLOConfig
	reg *Registry

	mu       sync.Mutex
	sessions map[uint32]*sloSession

	// Gauges/counters mirrored into the registry (nil-safe when reg is nil).
	gOK, gWarn, gPage       *Gauge
	gWorstBurn, gQualityLow *Gauge
	cWarnTrans, cPageTrans  *Counter
}

// NewSLOMonitor builds a monitor. Zero-valued config fields take the
// defaults; reg may be nil (no metrics mirroring).
func NewSLOMonitor(cfg SLOConfig, reg *Registry) *SLOMonitor {
	cfg.fill()
	return &SLOMonitor{
		cfg:         cfg,
		reg:         reg,
		sessions:    make(map[uint32]*sloSession),
		gOK:         reg.Gauge("collabvr_slo_sessions_ok"),
		gWarn:       reg.Gauge("collabvr_slo_sessions_warn"),
		gPage:       reg.Gauge("collabvr_slo_sessions_page"),
		gWorstBurn:  reg.Gauge("collabvr_slo_worst_miss_burn"),
		gQualityLow: reg.Gauge("collabvr_slo_sessions_quality_breach"),
		cWarnTrans:  reg.Counter("collabvr_slo_warn_transitions_total"),
		cPageTrans:  reg.Counter("collabvr_slo_page_transitions_total"),
	}
}

// Config returns the effective (default-filled) configuration.
func (m *SLOMonitor) Config() SLOConfig {
	if m == nil {
		return SLOConfig{}
	}
	return m.cfg
}

// Enabled reports whether the monitor records observations.
func (m *SLOMonitor) Enabled() bool { return m != nil }

// ObserveSlot folds one session's display-slot outcome into its rolling
// window: whether the frame met its display deadline and the quality level
// delivered (0 for a missed frame).
func (m *SLOMonitor) ObserveSlot(session uint32, displayed bool, quality float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.sessions[session]
	if s == nil {
		s = &sloSession{
			flags:   make([]uint8, m.cfg.WindowSlots),
			quality: make([]float32, m.cfg.WindowSlots),
			state:   SLOStateOK,
		}
		m.sessions[session] = s
	}

	missed := !displayed
	stalled := missed && s.prevMissed
	s.prevMissed = missed
	var flag uint8
	if missed {
		flag |= sloFlagMiss
	}
	if stalled {
		flag |= sloFlagStall
	}

	// Retire the slot leaving the long window.
	if s.filled == len(s.flags) {
		old := s.flags[s.next]
		if old&sloFlagMiss != 0 {
			s.missLong--
		}
		if old&sloFlagStall != 0 {
			s.stallLong--
		}
		s.qualitySum -= float64(s.quality[s.next])
	}
	// Retire the slot leaving the short window.
	shortN := m.cfg.ShortWindowSlots
	if s.filled >= shortN {
		idx := (s.next - shortN + len(s.flags)) % len(s.flags)
		old := s.flags[idx]
		if old&sloFlagMiss != 0 {
			s.missShort--
		}
		if old&sloFlagStall != 0 {
			s.stallShort--
		}
	}

	s.flags[s.next] = flag
	s.quality[s.next] = float32(quality)
	s.qualitySum += quality
	if flag&sloFlagMiss != 0 {
		s.missLong++
		s.missShort++
	}
	if flag&sloFlagStall != 0 {
		s.stallLong++
		s.stallShort++
	}
	s.next = (s.next + 1) % len(s.flags)
	if s.filled < len(s.flags) {
		s.filled++
	}

	m.transition(s)
}

// transition recomputes the session's alert state (m.mu held).
func (m *SLOMonitor) transition(s *sloSession) {
	state := SLOStateOK
	// Alerting is gated until the short window has filled once: burn rates
	// over a handful of slots are meaningless.
	if s.filled >= m.cfg.ShortWindowSlots {
		longN := float64(s.filled)
		shortN := float64(min(s.filled, m.cfg.ShortWindowSlots))
		missBurnLong := float64(s.missLong) / longN / m.cfg.MissTarget
		missBurnShort := float64(s.missShort) / shortN / m.cfg.MissTarget
		stallBurnLong := float64(s.stallLong) / longN / m.cfg.StallTarget
		stallBurnShort := float64(s.stallShort) / shortN / m.cfg.StallTarget
		switch {
		case (missBurnLong >= m.cfg.FastBurn && missBurnShort >= m.cfg.FastBurn) ||
			(stallBurnLong >= m.cfg.FastBurn && stallBurnShort >= m.cfg.FastBurn):
			state = SLOStatePage
		case missBurnLong >= m.cfg.SlowBurn || stallBurnLong >= m.cfg.SlowBurn:
			state = SLOStateWarn
		}
	}
	if state != s.state {
		switch state {
		case SLOStateWarn:
			m.cWarnTrans.Inc()
		case SLOStatePage:
			m.cPageTrans.Inc()
		}
		s.state = state
	}
}

// Retire drops a departed session's window.
func (m *SLOMonitor) Retire(session uint32) {
	if m == nil {
		return
	}
	m.mu.Lock()
	delete(m.sessions, session)
	m.mu.Unlock()
}

// State returns one session's alert state ("" when unknown).
func (m *SLOMonitor) State(session uint32) string {
	if m == nil {
		return ""
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if s := m.sessions[session]; s != nil {
		return s.state
	}
	return ""
}

// Snapshot returns every live session's SLO position and refreshes the
// mirrored registry gauges, so a /metrics scrape through RefreshGauges sees
// current values.
func (m *SLOMonitor) Snapshot() SLOSnapshot {
	if m == nil {
		return SLOSnapshot{}
	}
	m.mu.Lock()
	snap := SLOSnapshot{Config: m.cfg}
	qualityLow := 0
	for id, s := range m.sessions {
		longN := float64(s.filled)
		if longN == 0 {
			continue
		}
		shortN := float64(min(s.filled, m.cfg.ShortWindowSlots))
		st := SLOSessionState{
			Session:      id,
			State:        s.state,
			Slots:        s.filled,
			MissRate:     float64(s.missLong) / longN,
			MissBurn:     float64(s.missLong) / longN / m.cfg.MissTarget,
			MissBurnFast: float64(s.missShort) / shortN / m.cfg.MissTarget,
			StallRate:    float64(s.stallLong) / longN,
			StallBurn:    float64(s.stallLong) / longN / m.cfg.StallTarget,
			MeanQuality:  s.qualitySum / longN,
		}
		st.QualityLow = st.MeanQuality < m.cfg.MinMeanQuality && s.filled >= m.cfg.ShortWindowSlots
		if st.QualityLow {
			qualityLow++
		}
		switch s.state {
		case SLOStatePage:
			snap.Page++
		case SLOStateWarn:
			snap.Warn++
		default:
			snap.OK++
		}
		if st.MissBurn > snap.WorstMissBurn {
			snap.WorstMissBurn = st.MissBurn
		}
		snap.Sessions = append(snap.Sessions, st)
	}
	m.mu.Unlock()
	sort.Slice(snap.Sessions, func(i, j int) bool { return snap.Sessions[i].Session < snap.Sessions[j].Session })

	m.gOK.Set(float64(snap.OK))
	m.gWarn.Set(float64(snap.Warn))
	m.gPage.Set(float64(snap.Page))
	m.gWorstBurn.Set(snap.WorstMissBurn)
	m.gQualityLow.Set(float64(qualityLow))
	return snap
}

// Totals returns the session counts per alert state and the worst
// long-window miss burn rate without building the snapshot document — the
// allocation-free form the health sampler calls every slot.
func (m *SLOMonitor) Totals() (ok, warn, page int, worstBurn float64) {
	if m == nil {
		return 0, 0, 0, 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, s := range m.sessions {
		longN := float64(s.filled)
		if longN == 0 {
			continue
		}
		switch s.state {
		case SLOStatePage:
			page++
		case SLOStateWarn:
			warn++
		default:
			ok++
		}
		if burn := float64(s.missLong) / longN / m.cfg.MissTarget; burn > worstBurn {
			worstBurn = burn
		}
	}
	return ok, warn, page, worstBurn
}

// RefreshGauges recomputes the mirrored registry gauges (Snapshot without
// the document); the metrics handler calls it before serving a scrape.
func (m *SLOMonitor) RefreshGauges() {
	if m == nil {
		return
	}
	m.Snapshot()
}
