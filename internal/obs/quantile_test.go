package obs

import (
	"math"
	"testing"
)

// Regression tests for the Quantile edge cases: empty histogram, q outside
// [0, 1] (including NaN), all mass in the overflow bucket, and a first
// bucket with a non-positive bound.

func TestQuantileEmptyHistogram(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	if got := NewHistogram(nil).Quantile(0.5); got != 0 {
		t.Errorf("boundless histogram quantile = %v, want 0", got)
	}
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil histogram quantile = %v, want 0", got)
	}
}

func TestQuantileClampsQ(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3} {
		h.Observe(v)
	}
	lo, hi := h.Quantile(0), h.Quantile(1)
	if got := h.Quantile(-3); got != lo {
		t.Errorf("Quantile(-3) = %v, want clamp to Quantile(0) = %v", got, lo)
	}
	if got := h.Quantile(7); got != hi {
		t.Errorf("Quantile(7) = %v, want clamp to Quantile(1) = %v", got, hi)
	}
	if got := h.Quantile(math.NaN()); got != lo {
		t.Errorf("Quantile(NaN) = %v, want %v", got, lo)
	}
	if hi > 4 || lo > hi {
		t.Errorf("clamped quantiles out of range: lo=%v hi=%v", lo, hi)
	}
}

func TestQuantileAllOverflowMass(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	for _, v := range []float64{5, 6, 7} {
		h.Observe(v)
	}
	// The histogram cannot resolve beyond its largest finite bound.
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 2 {
			t.Errorf("Quantile(%v) = %v, want 2 (largest finite bound)", q, got)
		}
	}
}

func TestQuantileNonPositiveFirstBucket(t *testing.T) {
	// All mass in a first bucket whose bound is negative: the estimate must
	// not exceed the bound (the old interpolation from an implicit lower
	// edge of 0 reported values above it).
	h := NewHistogram([]float64{-2, -1, 0, 1})
	h.Observe(-5)
	if got := h.Quantile(0.5); got != -2 {
		t.Errorf("Quantile(0.5) = %v, want -2", got)
	}
	// Same with a zero first bound.
	z := NewHistogram([]float64{0, 1})
	z.Observe(-1)
	if got := z.Quantile(0.5); got != 0 {
		t.Errorf("zero-bound Quantile(0.5) = %v, want 0", got)
	}
	// Mass in a later negative bucket interpolates inside that bucket.
	h2 := NewHistogram([]float64{-2, -1, 0})
	h2.Observe(-1.5)
	if got := h2.Quantile(0.5); got < -2 || got > -1 {
		t.Errorf("negative-bucket interpolation = %v, want within [-2, -1]", got)
	}
}

func TestQuantilePositivePathUnchanged(t *testing.T) {
	// The common case keeps its semantics: interpolation within the
	// containing bucket, first bucket interpolated from 0.
	h := NewHistogram([]float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		h.Observe(1.5)
	}
	if got := h.Quantile(0.5); got < 1 || got > 2 {
		t.Errorf("Quantile(0.5) = %v, want within (1, 2]", got)
	}
	first := NewHistogram([]float64{10, 20})
	first.Observe(3)
	if got := first.Quantile(1); got <= 0 || got > 10 {
		t.Errorf("first-bucket Quantile(1) = %v, want within (0, 10]", got)
	}
}
