// Package obs is the observability layer of the reproduction: a
// lightweight, concurrency-safe metrics registry (counters, gauges,
// fixed-bucket histograms) with Prometheus text exposition, and a per-slot
// decision "flight recorder" that captures why the allocator chose the
// levels it chose — the greedy branch taken, every quality_verification
// rejection with its violated constraint, budget utilization, and the
// per-slot regret against the offline optimum when one is run alongside.
//
// Everything is nil-safe: a nil *Registry hands out nil instruments, and
// every method on a nil instrument (or a nil *Recorder) is a no-op that
// performs no allocation, so instrumented hot paths cost a pointer check
// when observability is disabled.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. All methods are safe for
// concurrent use and no-ops on a nil receiver.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down. All methods are safe for
// concurrent use and no-ops on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta (negative to decrease).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets (cumulative on export,
// like Prometheus). All methods are safe for concurrent use and no-ops on a
// nil receiver.
type Histogram struct {
	bounds  []float64 // sorted upper bounds; an implicit +Inf bucket follows
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// NewHistogram builds a standalone histogram over the given upper bounds
// (sorted ascending; an overflow bucket is implicit). Use Registry.Histogram
// for a registered one.
func NewHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if n := h.Count(); n > 0 {
		return h.Sum() / float64(n)
	}
	return 0
}

// Quantile estimates the q-quantile (0..1) by linear interpolation within
// the containing bucket. An empty histogram reports 0; q is clamped to
// [0, 1] (NaN counts as 0); samples in the +Inf overflow bucket report the
// largest finite bound, because the histogram cannot resolve beyond it.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.Count() == 0 || len(h.bounds) == 0 {
		return 0
	}
	if math.IsNaN(q) || q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.count.Load())
	cum := 0.0
	lo := 0.0
	for i, bound := range h.bounds {
		c := float64(h.counts[i].Load())
		if cum+c >= target && c > 0 {
			// The first bucket has no finite lower edge. Interpolating from
			// 0 is only meaningful when the bound is positive (the
			// Prometheus convention); otherwise report the bound itself
			// rather than a value above it.
			if i == 0 && bound <= 0 {
				return bound
			}
			frac := (target - cum) / c
			return lo + frac*(bound-lo)
		}
		cum += c
		lo = bound
	}
	return h.bounds[len(h.bounds)-1]
}

// LinearBuckets returns n bounds start, start+step, ...
func LinearBuckets(start, step float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*step
	}
	return out
}

// ExponentialBuckets returns n bounds start, start*factor, ...
func ExponentialBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefaultLatencyBuckets spans sub-millisecond to multi-second latencies in
// milliseconds.
func DefaultLatencyBuckets() []float64 {
	return []float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500}
}

// Registry is a named collection of instruments. The zero value is not
// usable; a nil *Registry is the disabled registry: it hands out nil
// instruments whose methods are allocation-free no-ops.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on first
// use. Returns nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket bounds on first use (later calls reuse the existing
// buckets). Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		h = NewHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// EachCounter calls fn for every registered counter while holding the
// registry lock: fn must be fast and must not call back into the registry.
// Iteration order is the map's (nondeterministic); callers needing order
// must sort downstream. No-op on a nil registry.
func (r *Registry) EachCounter(fn func(name string, c *Counter)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for n, c := range r.counters {
		fn(n, c)
	}
}

// EachGauge is EachCounter for gauges.
func (r *Registry) EachGauge(fn func(name string, g *Gauge)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for n, g := range r.gauges {
		fn(n, g)
	}
}

// EachHistogram is EachCounter for histograms.
func (r *Registry) EachHistogram(fn func(name string, h *Histogram)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for n, h := range r.histograms {
		fn(n, h)
	}
}

// WritePrometheus renders every instrument in the Prometheus text
// exposition format, sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	counters := make(map[string]*Counter, len(r.counters))
	gauges := make(map[string]*Gauge, len(r.gauges))
	histograms := make(map[string]*Histogram, len(r.histograms))
	for n, c := range r.counters {
		names = append(names, n)
		counters[n] = c
	}
	for n, g := range r.gauges {
		names = append(names, n)
		gauges[n] = g
	}
	for n, h := range r.histograms {
		names = append(names, n)
		histograms[n] = h
	}
	r.mu.Unlock()
	sort.Strings(names)

	for _, name := range names {
		var err error
		switch {
		case counters[name] != nil:
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, counters[name].Value())
		case gauges[name] != nil:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", name, name, gauges[name].Value())
		case histograms[name] != nil:
			err = writePrometheusHistogram(w, name, histograms[name])
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writePrometheusHistogram(w io.Writer, name string, h *Histogram) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, fmtBound(bound), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", name, h.Sum(), name, h.Count())
	return err
}

func fmtBound(b float64) string { return fmt.Sprintf("%g", b) }
