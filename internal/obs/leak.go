package obs

import (
	"runtime"
	"time"
)

// TB is the subset of *testing.T the leak checker needs; a local interface
// keeps the testing package out of the non-test build.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
}

// LeakSnapshot captures the current goroutine count. Take it before starting
// the system under test and hand it to AssertNoLeaks after shutdown.
func LeakSnapshot() int { return runtime.NumGoroutine() }

// AssertNoLeaks fails the test if the goroutine count has not returned to
// the baseline. Goroutines wind down asynchronously after a Close/Drain
// returns, so the check polls with a grace period before declaring a leak;
// on failure it dumps all stacks so the leaked goroutine is identifiable.
func AssertNoLeaks(tb TB, baseline int) {
	tb.Helper()
	deadline := time.Now().Add(3 * time.Second)
	var n int
	for {
		n = runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	tb.Errorf("goroutine leak: %d live, baseline %d; stacks:\n%s", n, baseline, buf)
}
