package obs

import "testing"

func TestBreakerLifecycle(t *testing.T) {
	reg := NewRegistry()
	b := NewBreaker(BreakerConfig{Levels: 5, RecoverySlots: 10, HalfOpenSlots: 4}, reg)
	const sess = 7

	if b.Cap(sess) != 0 || b.State(sess) != "" {
		t.Fatal("unknown session should be uncapped")
	}
	b.Observe(sess, SLOStateOK)
	if got := b.State(sess); got != BreakerClosed {
		t.Fatalf("state = %q, want closed", got)
	}

	// warn -> degraded, capped at Levels-1.
	b.Observe(sess, SLOStateWarn)
	if b.State(sess) != BreakerDegraded || b.Cap(sess) != 4 {
		t.Fatalf("after warn: state=%q cap=%d, want degraded/4", b.State(sess), b.Cap(sess))
	}

	// page -> open, capped at 1.
	b.Observe(sess, SLOStatePage)
	if b.State(sess) != BreakerOpen || b.Cap(sess) != 1 {
		t.Fatalf("after page: state=%q cap=%d, want open/1", b.State(sess), b.Cap(sess))
	}

	// Recovery keys on non-page slots: warn slots count toward it, and an
	// intervening page resets the streak.
	for i := 0; i < 9; i++ {
		b.Observe(sess, SLOStateWarn)
	}
	b.Observe(sess, SLOStatePage)
	for i := 0; i < 9; i++ {
		b.Observe(sess, SLOStateOK)
	}
	if b.State(sess) != BreakerOpen {
		t.Fatalf("recovered too early after streak reset: %q", b.State(sess))
	}
	b.Observe(sess, SLOStateOK)
	if b.State(sess) != BreakerHalfOpen || b.Cap(sess) != 4 {
		t.Fatalf("after recovery streak: state=%q cap=%d, want half-open/4", b.State(sess), b.Cap(sess))
	}

	// A page during the probe re-opens.
	b.Observe(sess, SLOStatePage)
	if b.State(sess) != BreakerOpen {
		t.Fatalf("half-open page should re-open, got %q", b.State(sess))
	}
	for i := 0; i < 10; i++ {
		b.Observe(sess, SLOStateOK)
	}
	for i := 0; i < 4; i++ {
		b.Observe(sess, SLOStateOK)
	}
	if b.State(sess) != BreakerClosed || b.Cap(sess) != 0 {
		t.Fatalf("after probe survival: state=%q cap=%d, want closed/0", b.State(sess), b.Cap(sess))
	}

	if got := reg.Counter("collabvr_breaker_open_transitions_total").Value(); got != 2 {
		t.Errorf("open transitions = %d, want 2", got)
	}

	b.Retire(sess)
	if b.State(sess) != "" {
		t.Fatal("retired session still tracked")
	}
}

func TestBreakerDegradedRecoversOnOKStreak(t *testing.T) {
	b := NewBreaker(BreakerConfig{Levels: 5, RecoverySlots: 5}, nil)
	b.Observe(1, SLOStateWarn)
	// A warn mid-streak resets the ok count.
	b.Observe(1, SLOStateOK)
	b.Observe(1, SLOStateOK)
	b.Observe(1, SLOStateWarn)
	for i := 0; i < 4; i++ {
		b.Observe(1, SLOStateOK)
	}
	if b.State(1) != BreakerDegraded {
		t.Fatalf("closed before the ok streak completed: %q", b.State(1))
	}
	b.Observe(1, SLOStateOK)
	if b.State(1) != BreakerClosed {
		t.Fatalf("state = %q, want closed after 5 consecutive ok slots", b.State(1))
	}
	closed, degraded, open, half := b.Counts()
	if closed != 1 || degraded != 0 || open != 0 || half != 0 {
		t.Fatalf("Counts = %d/%d/%d/%d, want 1/0/0/0", closed, degraded, open, half)
	}
}

func TestBreakerConfigFillAndNil(t *testing.T) {
	var cfg BreakerConfig
	cfg.fill()
	if cfg.Levels != 5 || cfg.WarnCap != 4 || cfg.PageCap != 1 ||
		cfg.HalfOpenCap != 4 || cfg.RecoverySlots != 300 || cfg.HalfOpenSlots != 150 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
	single := BreakerConfig{Levels: 1}
	single.fill()
	if single.WarnCap != 1 || single.PageCap != 1 {
		t.Fatalf("single-level ladder caps wrong: %+v", single)
	}

	var b *Breaker
	b.Observe(1, SLOStatePage)
	if b.Cap(1) != 0 || b.State(1) != "" {
		t.Fatal("nil breaker capped a session")
	}
	b.Retire(1)
	if c, d, o, h := b.Counts(); c+d+o+h != 0 {
		t.Fatal("nil breaker counted sessions")
	}
	if b.Config() != (BreakerConfig{}) {
		t.Fatal("nil breaker returned a config")
	}
}
