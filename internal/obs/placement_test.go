package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestPlacementRecorderRingAndMetrics(t *testing.T) {
	var buf bytes.Buffer
	reg := NewRegistry()
	pr := NewPlacementRecorder(PlacementRecorderOptions{RingSize: 4, Writer: &buf, Metrics: reg})
	for i := 0; i < 6; i++ {
		pr.Record(&PlacementRecord{Slot: i, Session: uint32(i), Reason: PlaceArrival, Chosen: i % 3})
	}
	pr.Record(&PlacementRecord{Slot: 6, Session: 2, Reason: PlaceShardKill, From: 2, Chosen: 0})
	pr.Record(&PlacementRecord{Slot: 7, Session: 9, Reason: PlaceArrival, Chosen: -1})

	if got := pr.Records(); got != 8 {
		t.Fatalf("Records = %d, want 8", got)
	}
	recent := pr.Recent(10)
	if len(recent) != 4 {
		t.Fatalf("Recent kept %d, want ring size 4", len(recent))
	}
	if recent[0].Seq >= recent[3].Seq {
		t.Fatalf("Recent not oldest-first: %d .. %d", recent[0].Seq, recent[3].Seq)
	}
	if recent[3].Chosen != -1 || recent[3].Seq != 8 {
		t.Fatalf("last record = %+v, want the failed placement seq 8", recent[3])
	}
	if got := reg.Counter("collabvr_fleet_placements_total").Value(); got != 7 {
		t.Fatalf("placements_total = %d, want 7", got)
	}
	if got := reg.Counter("collabvr_fleet_migrations_total").Value(); got != 1 {
		t.Fatalf("migrations_total = %d, want 1", got)
	}
	if got := reg.Counter("collabvr_fleet_placements_failed_total").Value(); got != 1 {
		t.Fatalf("placements_failed_total = %d, want 1", got)
	}
	if err := pr.Err(); err != nil {
		t.Fatal(err)
	}
	// Every record reached the JSONL writer even after falling off the ring.
	if lines := strings.Count(buf.String(), "\n"); lines != 8 {
		t.Fatalf("JSONL lines = %d, want 8", lines)
	}

	var disabled *PlacementRecorder
	disabled.Record(&PlacementRecord{}) // must not panic
	if disabled.Recent(3) != nil || disabled.Records() != 0 || disabled.Err() != nil {
		t.Fatal("nil recorder not inert")
	}
}

func TestFleetHandler(t *testing.T) {
	snap := func(n int) FleetSnapshot {
		return FleetSnapshot{
			Scorer:           "least-loaded",
			GlobalBudgetMbps: 300,
			Shards: []FleetShardState{
				{Shard: 0, Alive: true, Sessions: 4, BudgetMbps: 150},
				{Shard: 1, Alive: false, MigratedOut: 4},
			},
			Recent: make([]PlacementRecord, 0, n),
		}
	}
	mux := NewMuxOpts(NewRegistry(), nil, MuxOptions{Fleet: snap})
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/fleet", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	var doc FleetSnapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Scorer != "least-loaded" || len(doc.Shards) != 2 || doc.Shards[1].Alive {
		t.Fatalf("snapshot round-trip wrong: %+v", doc)
	}
	rr = httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/fleet?n=bogus", nil))
	if rr.Code != 400 {
		t.Fatalf("bad n: status %d, want 400", rr.Code)
	}
	if !strings.Contains(FleetSnapshot{Shards: []FleetShardState{{Shard: 0}}}.Format(), "shard") {
		t.Fatal("Format missing header")
	}
}
