package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestPlacementRecorderRingAndMetrics(t *testing.T) {
	var buf bytes.Buffer
	reg := NewRegistry()
	pr := NewPlacementRecorder(PlacementRecorderOptions{RingSize: 4, Writer: &buf, Metrics: reg})
	for i := 0; i < 6; i++ {
		pr.Record(&PlacementRecord{Slot: i, Session: uint32(i), Reason: PlaceArrival, Chosen: i % 3})
	}
	pr.Record(&PlacementRecord{Slot: 6, Session: 2, Reason: PlaceShardKill, From: 2, Chosen: 0})
	pr.Record(&PlacementRecord{Slot: 7, Session: 9, Reason: PlaceArrival, Chosen: -1})

	if got := pr.Records(); got != 8 {
		t.Fatalf("Records = %d, want 8", got)
	}
	recent := pr.Recent(10)
	if len(recent) != 4 {
		t.Fatalf("Recent kept %d, want ring size 4", len(recent))
	}
	if recent[0].Seq >= recent[3].Seq {
		t.Fatalf("Recent not oldest-first: %d .. %d", recent[0].Seq, recent[3].Seq)
	}
	if recent[3].Chosen != -1 || recent[3].Seq != 8 {
		t.Fatalf("last record = %+v, want the failed placement seq 8", recent[3])
	}
	if got := reg.Counter("collabvr_fleet_placements_total").Value(); got != 7 {
		t.Fatalf("placements_total = %d, want 7", got)
	}
	if got := reg.Counter("collabvr_fleet_migrations_total").Value(); got != 1 {
		t.Fatalf("migrations_total = %d, want 1", got)
	}
	if got := reg.Counter("collabvr_fleet_placements_failed_total").Value(); got != 1 {
		t.Fatalf("placements_failed_total = %d, want 1", got)
	}
	if err := pr.Err(); err != nil {
		t.Fatal(err)
	}
	// Every record reached the JSONL writer even after falling off the ring.
	if lines := strings.Count(buf.String(), "\n"); lines != 8 {
		t.Fatalf("JSONL lines = %d, want 8", lines)
	}

	var disabled *PlacementRecorder
	disabled.Record(&PlacementRecord{}) // must not panic
	if disabled.Recent(3) != nil || disabled.Records() != 0 || disabled.Err() != nil {
		t.Fatal("nil recorder not inert")
	}
}

func TestPlacementJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	pr := NewPlacementRecorder(PlacementRecorderOptions{RingSize: 8, Writer: &buf})
	want := []PlacementRecord{
		{Slot: 1, Session: 10, Zone: 1, Scorer: "least-loaded", Reason: PlaceArrival, Chosen: 0, From: -1,
			Scores: []ShardScore{{Shard: 0, Score: 1.5, Sessions: 2}, {Shard: 1, Score: 0.5, Draining: true}}},
		{Slot: 2, Session: 11, Reason: PlaceSLOPressure, Chosen: 1, From: 0},
		{Slot: 3, Session: 12, Reason: PlaceShardKill, Chosen: -1, From: 2},
	}
	for i := range want {
		rec := want[i]
		pr.Record(&rec)
		want[i].Seq = rec.Seq
	}
	got, skipped, err := ReadPlacements(bytes.NewReader(buf.Bytes()))
	if err != nil || skipped != 0 {
		t.Fatalf("read: err=%v skipped=%d", err, skipped)
	}
	if len(got) != len(want) {
		t.Fatalf("round-tripped %d records, want %d", len(got), len(want))
	}
	for i := range want {
		a, b := got[i], want[i]
		if a.Seq != b.Seq || a.Slot != b.Slot || a.Session != b.Session || a.Reason != b.Reason ||
			a.Chosen != b.Chosen || a.From != b.From || len(a.Scores) != len(b.Scores) {
			t.Fatalf("record %d = %+v, want %+v", i, a, b)
		}
	}
	if got[0].Scores[1].Shard != 1 || !got[0].Scores[1].Draining {
		t.Fatalf("scores lost: %+v", got[0].Scores)
	}

	// Interior corruption is a hard error; an unknown reason fails validation.
	bad := `{"seq":1,"slot":0,"session":1,"reason":"nope","chosen":0,"from":-1}` + "\n" + buf.String()
	if _, _, err := ReadPlacements(strings.NewReader(bad)); err == nil {
		t.Fatal("unknown reason accepted")
	}
	noSeq := `{"slot":0,"session":1,"reason":"arrival","chosen":0,"from":-1}` + "\n" + buf.String()
	if _, _, err := ReadPlacements(strings.NewReader(noSeq)); err == nil {
		t.Fatal("record without seq accepted")
	}
}

func TestPlacementRingCapacityDropped(t *testing.T) {
	pr := NewPlacementRecorder(PlacementRecorderOptions{RingSize: 4})
	if pr.RingCapacity() != 4 || pr.Dropped() != 0 {
		t.Fatalf("fresh ring: cap=%d dropped=%d", pr.RingCapacity(), pr.Dropped())
	}
	for i := 0; i < 7; i++ {
		pr.Record(&PlacementRecord{Slot: i, Reason: PlaceArrival, Chosen: 0})
	}
	if pr.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", pr.Dropped())
	}
	var disabled *PlacementRecorder
	if disabled.RingCapacity() != 0 || disabled.Dropped() != 0 {
		t.Fatal("nil recorder ring accounting not zero")
	}
}

func TestFleetHandler(t *testing.T) {
	snap := func(n int) FleetSnapshot {
		return FleetSnapshot{
			Scorer:           "least-loaded",
			GlobalBudgetMbps: 300,
			Shards: []FleetShardState{
				{Shard: 0, Alive: true, Sessions: 4, BudgetMbps: 150},
				{Shard: 1, Alive: false, MigratedOut: 4},
			},
			Recent: make([]PlacementRecord, 0, n),
		}
	}
	mux := NewMuxOpts(NewRegistry(), nil, MuxOptions{Fleet: snap})
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/fleet", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	var doc FleetSnapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Scorer != "least-loaded" || len(doc.Shards) != 2 || doc.Shards[1].Alive {
		t.Fatalf("snapshot round-trip wrong: %+v", doc)
	}
	rr = httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/fleet?n=bogus", nil))
	if rr.Code != 400 {
		t.Fatalf("bad n: status %d, want 400", rr.Code)
	}
	if !strings.Contains(FleetSnapshot{Shards: []FleetShardState{{Shard: 0}}}.Format(), "shard") {
		t.Fatal("Format missing header")
	}
}
