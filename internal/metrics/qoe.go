package metrics

import (
	"fmt"
	"strings"

	"repro/internal/estimate"
)

// QoEParams are the weights of the paper's QoE definition (Section II):
// QoE_n(T) = sum_t E[q 1] - alpha*E[d] - beta*sigma^2(T).
type QoEParams struct {
	Alpha float64 // delay sensitivity
	Beta  float64 // quality-variance sensitivity
}

// UserQoE accumulates the QoE of one user over a finite horizon, tracking
// each component separately so that the per-component subplots of Figs. 2, 3,
// 7 and 8 can be reported.
type UserQoE struct {
	params QoEParams

	slots        int
	qualitySum   float64 // sum of q_n(t) * 1_n(t)
	rawQuality   float64 // sum of q_n(t) regardless of coverage
	delaySum     float64
	viewed       estimate.Welford // variance of q*1 over the horizon
	coveredSlots int
	frames       int // frames displayed on time (real-system runs)
}

// NewUserQoE returns an accumulator with the given weights.
func NewUserQoE(params QoEParams) *UserQoE {
	return &UserQoE{params: params}
}

// Observe records one slot: the allocated quality level q, whether the
// delivered portion covered the actual FoV, and the content delivery delay.
func (u *UserQoE) Observe(q int, covered bool, delay float64) {
	u.slots++
	u.rawQuality += float64(q)
	viewedQ := 0.0
	if covered {
		viewedQ = float64(q)
		u.coveredSlots++
	}
	u.qualitySum += viewedQ
	u.delaySum += delay
	u.viewed.Add(viewedQ)
}

// ObserveFrame additionally records whether the slot's frame was displayed
// by its deadline (used by the real-system pipeline for FPS accounting).
func (u *UserQoE) ObserveFrame(displayed bool) {
	if displayed {
		u.frames++
	}
}

// Slots returns the number of observed slots.
func (u *UserQoE) Slots() int { return u.slots }

// AvgQuality returns the average successfully-viewed quality (1/T sum q*1).
func (u *UserQoE) AvgQuality() float64 {
	if u.slots == 0 {
		return 0
	}
	return u.qualitySum / float64(u.slots)
}

// AvgRawQuality returns the average allocated quality ignoring coverage.
func (u *UserQoE) AvgRawQuality() float64 {
	if u.slots == 0 {
		return 0
	}
	return u.rawQuality / float64(u.slots)
}

// AvgDelay returns the average content delivery delay.
func (u *UserQoE) AvgDelay() float64 {
	if u.slots == 0 {
		return 0
	}
	return u.delaySum / float64(u.slots)
}

// Variance returns sigma_n^2(T), the population variance of the
// successfully-viewed quality.
func (u *UserQoE) Variance() float64 { return u.viewed.Variance() }

// CoverageRate returns the fraction of slots whose delivered portion covered
// the actual FoV — the empirical delta_n.
func (u *UserQoE) CoverageRate() float64 {
	if u.slots == 0 {
		return 0
	}
	return float64(u.coveredSlots) / float64(u.slots)
}

// FPS returns frames displayed per slot times the display rate; callers
// multiply by the slot rate. Here it is the fraction of on-time frames.
func (u *UserQoE) FrameRate() float64 {
	if u.slots == 0 {
		return 0
	}
	return float64(u.frames) / float64(u.slots)
}

// QoE returns the per-slot average QoE:
// avg(q*1) - alpha*avg(d) - beta*sigma^2(T).
// The paper's QoE_n(T) is T times this; reporting the per-slot average makes
// runs of different lengths comparable.
func (u *UserQoE) QoE() float64 {
	return u.AvgQuality() - u.params.Alpha*u.AvgDelay() - u.params.Beta*u.Variance()
}

// Report aggregates per-user accumulators into experiment-level numbers.
type Report struct {
	QoE      float64
	Quality  float64
	Delay    float64
	Variance float64
	Coverage float64
	FPSFrac  float64 // fraction of frames displayed on time
}

// Aggregate averages the per-user metrics of a run.
func Aggregate(users []*UserQoE) Report {
	var r Report
	if len(users) == 0 {
		return r
	}
	for _, u := range users {
		r.QoE += u.QoE()
		r.Quality += u.AvgQuality()
		r.Delay += u.AvgDelay()
		r.Variance += u.Variance()
		r.Coverage += u.CoverageRate()
		r.FPSFrac += u.FrameRate()
	}
	n := float64(len(users))
	r.QoE /= n
	r.Quality /= n
	r.Delay /= n
	r.Variance /= n
	r.Coverage /= n
	r.FPSFrac /= n
	return r
}

// FormatComparison renders a table of named reports, one per algorithm, the
// textual equivalent of the bar charts of Figs. 7 and 8.
func FormatComparison(title string, names []string, reports []Report, slotRate float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", title)
	fmt.Fprintf(&b, "%-12s %10s %10s %10s %10s %10s %8s\n",
		"algorithm", "QoE", "quality", "delay", "variance", "coverage", "FPS")
	for i, n := range names {
		r := reports[i]
		fmt.Fprintf(&b, "%-12s %10.4f %10.4f %10.4f %10.4f %10.4f %8.1f\n",
			n, r.QoE, r.Quality, r.Delay, r.Variance, r.Coverage, r.FPSFrac*slotRate)
	}
	return b.String()
}
