package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestJainIndexKnownValues(t *testing.T) {
	tests := []struct {
		name string
		give []float64
		want float64
	}{
		{"equal", []float64{2, 2, 2, 2}, 1},
		{"one-hot", []float64{4, 0, 0, 0}, 0.25},
		{"half", []float64{1, 1, 0, 0}, 0.5},
		{"empty", nil, 0},
		{"all-zero", []float64{0, 0}, 1},
	}
	for _, tt := range tests {
		if got := JainIndex(tt.give); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("%s: JainIndex = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestJainIndexBoundsProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r) / 100
		}
		j := JainIndex(xs)
		n := float64(len(xs))
		return j >= 1/n-1e-9 && j <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJainIndexScaleInvariant(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{10, 20, 30, 40}
	if a, b := JainIndex(xs), JainIndex(ys); math.Abs(a-b) > 1e-12 {
		t.Errorf("scale changed index: %v vs %v", a, b)
	}
}

func TestJainIndexNegativeShift(t *testing.T) {
	// Negative QoE values are shifted; the index stays in range.
	j := JainIndex([]float64{-2, 0, 2})
	if j <= 0 || j > 1 {
		t.Errorf("shifted index = %v", j)
	}
}
