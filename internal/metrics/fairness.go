package metrics

// JainIndex computes Jain's fairness index over per-user allocations:
//
//	J(x) = (sum x)^2 / (n * sum x^2)
//
// J = 1 means perfectly equal QoE across users; J = 1/n means one user gets
// everything. Collaborative VR is a shared experience, so fairness across
// students is a natural companion metric to the paper's average QoE (an
// extension of this reproduction; the paper reports averages only).
// Negative inputs are shifted so the index stays in (0, 1].
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	// Shift so the minimum is >= 0 (Jain's index assumes nonnegative
	// allocations; QoE can dip below zero).
	min := xs[0]
	for _, x := range xs {
		if x < min {
			min = x
		}
	}
	shift := 0.0
	if min < 0 {
		shift = -min
	}
	var sum, sumSq float64
	for _, x := range xs {
		v := x + shift
		sum += v
		sumSq += v * v
	}
	if sumSq == 0 {
		return 1 // all-equal (all zero after shift)
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}
