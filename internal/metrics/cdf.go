// Package metrics collects experiment results: empirical CDFs (the paper
// reports Figs. 2 and 3 as CDFs across traces), summary statistics, and the
// per-user QoE accounting of Section II.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution built from samples.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from the given samples. The input slice is copied.
func NewCDF(samples []float64) *CDF {
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len returns the number of samples.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// First index with value > x.
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the p-quantile for p in [0, 1], interpolating between
// adjacent order statistics.
func (c *CDF) Quantile(p float64) float64 {
	n := len(c.sorted)
	if n == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return c.sorted[0]
	}
	if p >= 1 {
		return c.sorted[n-1]
	}
	pos := p * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return c.sorted[lo]
	}
	frac := pos - float64(lo)
	return c.sorted[lo]*(1-frac) + c.sorted[hi]*frac
}

// Mean returns the sample mean.
func (c *CDF) Mean() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range c.sorted {
		sum += x
	}
	return sum / float64(len(c.sorted))
}

// Min returns the smallest sample.
func (c *CDF) Min() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return c.sorted[0]
}

// Max returns the largest sample.
func (c *CDF) Max() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return c.sorted[len(c.sorted)-1]
}

// Point is a single (x, P(X<=x)) pair of a discretized CDF curve.
type Point struct {
	X float64
	P float64
}

// Points returns k evenly spaced probability points of the CDF curve,
// suitable for plotting or printing a figure series.
func (c *CDF) Points(k int) []Point {
	if k < 2 || len(c.sorted) == 0 {
		return nil
	}
	pts := make([]Point, k)
	for i := 0; i < k; i++ {
		p := float64(i) / float64(k-1)
		pts[i] = Point{X: c.Quantile(p), P: p}
	}
	return pts
}

// FormatSeries renders named CDFs side by side at k probability points, the
// textual equivalent of one subplot of Fig. 2/3.
func FormatSeries(title string, k int, names []string, cdfs []*CDF) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", title)
	fmt.Fprintf(&b, "%-8s", "P")
	for _, n := range names {
		fmt.Fprintf(&b, "%14s", n)
	}
	b.WriteByte('\n')
	for i := 0; i < k; i++ {
		p := float64(i) / float64(k-1)
		fmt.Fprintf(&b, "%-8.2f", p)
		for _, c := range cdfs {
			fmt.Fprintf(&b, "%14.4f", c.Quantile(p))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
