package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{3, 1, 2, 4})
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want 4", c.Len())
	}
	tests := []struct {
		x    float64
		want float64
	}{
		{0, 0},
		{1, 0.25},
		{2.5, 0.5},
		{4, 1},
		{100, 1},
	}
	for _, tt := range tests {
		if got := c.At(tt.x); got != tt.want {
			t.Errorf("At(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	if got := c.Min(); got != 1 {
		t.Errorf("Min = %v, want 1", got)
	}
	if got := c.Max(); got != 4 {
		t.Errorf("Max = %v, want 4", got)
	}
	if got := c.Mean(); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40, 50})
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 10},
		{0.25, 20},
		{0.5, 30},
		{0.75, 40},
		{1, 50},
		{-0.5, 10},
		{1.5, 50},
		{0.125, 15},
	}
	for _, tt := range tests {
		if got := c.Quantile(tt.p); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if got := c.At(1); got != 0 {
		t.Errorf("empty At = %v, want 0", got)
	}
	if !math.IsNaN(c.Quantile(0.5)) || !math.IsNaN(c.Mean()) {
		t.Errorf("empty CDF should return NaN stats")
	}
	if pts := c.Points(5); pts != nil {
		t.Errorf("empty CDF Points = %v, want nil", pts)
	}
}

func TestCDFDoesNotAliasInput(t *testing.T) {
	in := []float64{3, 1, 2}
	c := NewCDF(in)
	in[0] = 100
	if got := c.Max(); got != 3 {
		t.Errorf("CDF aliased its input: Max = %v, want 3", got)
	}
}

func TestCDFQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []int16, p1, p2 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		c := NewCDF(xs)
		a := float64(p1%101) / 100
		b := float64(p2%101) / 100
		if a > b {
			a, b = b, a
		}
		return c.Quantile(a) <= c.Quantile(b)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFAtQuantileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	c := NewCDF(xs)
	for p := 0.05; p < 1; p += 0.05 {
		x := c.Quantile(p)
		if got := c.At(x); got < p-0.05 {
			t.Errorf("At(Quantile(%v)) = %v, want >= %v", p, got, p-0.05)
		}
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5})
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("Points length = %d, want 5", len(pts))
	}
	if pts[0].X != 1 || pts[0].P != 0 {
		t.Errorf("first point = %+v, want {1 0}", pts[0])
	}
	if pts[4].X != 5 || pts[4].P != 1 {
		t.Errorf("last point = %+v, want {5 1}", pts[4])
	}
	if !sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i].X < pts[j].X }) {
		t.Errorf("points should be sorted by X: %v", pts)
	}
}

func TestFormatSeries(t *testing.T) {
	a := NewCDF([]float64{1, 2, 3})
	b := NewCDF([]float64{4, 5, 6})
	out := FormatSeries("Fig Xx", 3, []string{"ours", "base"}, []*CDF{a, b})
	if !strings.Contains(out, "Fig Xx") {
		t.Errorf("missing title: %q", out)
	}
	if !strings.Contains(out, "ours") || !strings.Contains(out, "base") {
		t.Errorf("missing series names: %q", out)
	}
	if lines := strings.Count(out, "\n"); lines != 5 { // title + header + 3 rows
		t.Errorf("line count = %d, want 5: %q", lines, out)
	}
}
