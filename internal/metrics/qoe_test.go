package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestUserQoEComponents(t *testing.T) {
	u := NewUserQoE(QoEParams{Alpha: 0.1, Beta: 0.5})
	// Three slots: q=4 covered, q=2 not covered, q=4 covered.
	u.Observe(4, true, 0.5)
	u.Observe(2, false, 0.1)
	u.Observe(4, true, 0.3)

	if got := u.Slots(); got != 3 {
		t.Fatalf("Slots = %d, want 3", got)
	}
	if got := u.AvgQuality(); math.Abs(got-8.0/3) > 1e-9 {
		t.Errorf("AvgQuality = %v, want %v", got, 8.0/3)
	}
	if got := u.AvgRawQuality(); math.Abs(got-10.0/3) > 1e-9 {
		t.Errorf("AvgRawQuality = %v, want %v", got, 10.0/3)
	}
	if got := u.AvgDelay(); math.Abs(got-0.3) > 1e-9 {
		t.Errorf("AvgDelay = %v, want 0.3", got)
	}
	if got := u.CoverageRate(); math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("CoverageRate = %v, want 2/3", got)
	}
	// Viewed series is {4, 0, 4}: mean 8/3, variance (2*(4-8/3)^2+(8/3)^2)/3.
	mean := 8.0 / 3
	wantVar := (2*(4-mean)*(4-mean) + mean*mean) / 3
	if got := u.Variance(); math.Abs(got-wantVar) > 1e-9 {
		t.Errorf("Variance = %v, want %v", got, wantVar)
	}
	wantQoE := mean - 0.1*0.3 - 0.5*wantVar
	if got := u.QoE(); math.Abs(got-wantQoE) > 1e-9 {
		t.Errorf("QoE = %v, want %v", got, wantQoE)
	}
}

func TestUserQoEEmpty(t *testing.T) {
	u := NewUserQoE(QoEParams{Alpha: 1, Beta: 1})
	if u.QoE() != 0 || u.AvgQuality() != 0 || u.AvgDelay() != 0 {
		t.Errorf("empty accumulator should report zeros")
	}
}

func TestUserQoEConstantQualityHasZeroVariance(t *testing.T) {
	u := NewUserQoE(QoEParams{Beta: 0.5})
	for i := 0; i < 100; i++ {
		u.Observe(3, true, 0)
	}
	if got := u.Variance(); got != 0 {
		t.Errorf("constant viewed quality should have zero variance, got %v", got)
	}
	if got := u.QoE(); math.Abs(got-3) > 1e-9 {
		t.Errorf("QoE = %v, want 3", got)
	}
}

func TestVarianceReducesQoE(t *testing.T) {
	steady := NewUserQoE(QoEParams{Beta: 0.5})
	choppy := NewUserQoE(QoEParams{Beta: 0.5})
	for i := 0; i < 100; i++ {
		steady.Observe(3, true, 0)
		if i%2 == 0 {
			choppy.Observe(5, true, 0)
		} else {
			choppy.Observe(1, true, 0)
		}
	}
	// Same average quality (3), but the choppy stream pays a variance penalty
	// — the paper's motivation for including sigma^2 in QoE.
	if steady.AvgQuality() != choppy.AvgQuality() {
		t.Fatalf("setup: averages differ: %v vs %v", steady.AvgQuality(), choppy.AvgQuality())
	}
	if choppy.QoE() >= steady.QoE() {
		t.Errorf("choppy QoE %v should be below steady %v", choppy.QoE(), steady.QoE())
	}
}

func TestFrameAccounting(t *testing.T) {
	u := NewUserQoE(QoEParams{})
	for i := 0; i < 10; i++ {
		u.Observe(1, true, 0)
		u.ObserveFrame(i < 9)
	}
	if got := u.FrameRate(); math.Abs(got-0.9) > 1e-9 {
		t.Errorf("FrameRate = %v, want 0.9", got)
	}
}

func TestAggregate(t *testing.T) {
	a := NewUserQoE(QoEParams{})
	b := NewUserQoE(QoEParams{})
	a.Observe(2, true, 1)
	b.Observe(4, true, 3)
	r := Aggregate([]*UserQoE{a, b})
	if math.Abs(r.Quality-3) > 1e-9 {
		t.Errorf("aggregate quality = %v, want 3", r.Quality)
	}
	if math.Abs(r.Delay-2) > 1e-9 {
		t.Errorf("aggregate delay = %v, want 2", r.Delay)
	}
	if math.Abs(r.Coverage-1) > 1e-9 {
		t.Errorf("aggregate coverage = %v, want 1", r.Coverage)
	}

	if empty := Aggregate(nil); empty != (Report{}) {
		t.Errorf("empty aggregate = %+v, want zero", empty)
	}
}

func TestFormatComparison(t *testing.T) {
	out := FormatComparison("Fig 7", []string{"ours", "firefly"},
		[]Report{{QoE: 3.2, FPSFrac: 1}, {QoE: 1.7, FPSFrac: 0.8}}, 60)
	if !strings.Contains(out, "Fig 7") || !strings.Contains(out, "firefly") {
		t.Errorf("bad format: %q", out)
	}
	if !strings.Contains(out, "60.0") {
		t.Errorf("FPS column should scale by slot rate: %q", out)
	}
}
