package core

import "repro/internal/estimate"

// Tracker maintains the per-user streaming state the per-slot objective
// needs: the running mean qbar_n(t-1) of successfully-viewed quality, the
// empirical prediction-success probability delta_n, and the realized QoE
// components. It is the online counterpart of the Welford decomposition of
// eq. (4): feeding its MeanQ/Delta into Objective reproduces the per-slot
// terms whose sum telescopes to T*sigma^2(T).
type Tracker struct {
	params Params
	users  []userState
}

type userState struct {
	t          int     // observed slots
	sumViewedQ float64 // sum of q*1
	covered    int     // count of 1_n(t) = 1
	deltaPrior float64
	viewedVar  estimate.Welford
	delaySum   float64
}

// NewTracker returns a tracker for n users. deltaPrior seeds the prediction
// success estimate before any observation (the paper estimates delta_n by
// its running average, which "converges to delta_n as t -> infinity").
func NewTracker(params Params, n int, deltaPrior float64) *Tracker {
	if deltaPrior < 0 {
		deltaPrior = 0
	}
	if deltaPrior > 1 {
		deltaPrior = 1
	}
	users := make([]userState, n)
	for i := range users {
		users[i].deltaPrior = deltaPrior
	}
	return &Tracker{params: params, users: users}
}

// NumUsers returns the number of tracked users.
func (tr *Tracker) NumUsers() int { return len(tr.users) }

// Slot returns the 1-based index of the next slot to allocate.
func (tr *Tracker) Slot() int {
	if len(tr.users) == 0 {
		return 1
	}
	return tr.users[0].t + 1
}

// MeanQ returns qbar_n(t-1) for user n: the running mean of successfully-
// viewed quality, 0 before any observation.
func (tr *Tracker) MeanQ(n int) float64 {
	u := &tr.users[n]
	if u.t == 0 {
		return 0
	}
	return u.sumViewedQ / float64(u.t)
}

// Delta returns the running estimate of the prediction success probability
// for user n, blending the prior with observations (Laplace-style smoothing
// with one pseudo-observation).
func (tr *Tracker) Delta(n int) float64 {
	u := &tr.users[n]
	return (u.deltaPrior + float64(u.covered)) / float64(1+u.t)
}

// UserInput assembles the allocator input for user n given this slot's rate
// table, delay table and throughput cap.
func (tr *Tracker) UserInput(n int, rate, delay []float64, cap_ float64) UserInput {
	return UserInput{
		Rate:  rate,
		Delay: delay,
		Delta: tr.Delta(n),
		MeanQ: tr.MeanQ(n),
		Cap:   cap_,
	}
}

// Record stores the outcome of one slot for user n: the allocated level q,
// whether the delivered portion covered the actual FoV, and the realized
// delivery delay.
func (tr *Tracker) Record(n, q int, covered bool, delay float64) {
	u := &tr.users[n]
	u.t++
	viewedQ := 0.0
	if covered {
		viewedQ = float64(q)
		u.covered++
	}
	u.sumViewedQ += viewedQ
	u.viewedVar.Add(viewedQ)
	u.delaySum += delay
}

// Variance returns sigma_n^2(t) over the observed horizon for user n.
func (tr *Tracker) Variance(n int) float64 { return tr.users[n].viewedVar.Variance() }

// QoE returns the realized per-slot-average QoE of user n so far:
// avg(q*1) - alpha*avg(d) - beta*sigma^2.
func (tr *Tracker) QoE(n int) float64 {
	u := &tr.users[n]
	if u.t == 0 {
		return 0
	}
	t := float64(u.t)
	return u.sumViewedQ/t - tr.params.Alpha*u.delaySum/t - tr.params.Beta*u.viewedVar.Variance()
}

// TotalQoE returns the sum of per-user QoE values — the system objective of
// eq. (1), expressed per slot.
func (tr *Tracker) TotalQoE() float64 {
	var sum float64
	for n := range tr.users {
		sum += tr.QoE(n)
	}
	return sum
}
