package core

import (
	"repro/internal/knapsack"
)

// SolverAllocator is Algorithm 1 on the heap-based incremental
// knapsack.Solver with reusable lowering buffers: a steady-state slot
// solve reuses the same scratch for the objective tables, the item views
// and the solver's heap, so the only per-Allocate allocation is the Levels
// slice handed back to the caller (which call sites retain, e.g. in flight
// recorder records).
//
// Decisions, values and traces are bit-identical to DVGreedy — both run
// the same Algorithm 1 over the same lowered instance; the solver engine
// is differentially tested against the original scan in
// internal/knapsack. A SolverAllocator is safe for sequential reuse
// across slots (the Allocator contract) but not for concurrent use; build
// one per goroutine.
type SolverAllocator struct {
	lowerer
	solver knapsack.Solver
}

// NewSolverAllocator returns a fresh solver-backed Algorithm 1 allocator.
func NewSolverAllocator() *SolverAllocator { return &SolverAllocator{} }

// Name implements Allocator. It reports the same algorithm name as
// DVGreedy: the decisions are identical, only the engine differs.
func (a *SolverAllocator) Name() string { return "dvgreedy" }

// lowerer rebuilds the knapsack view of a SlotProblem on reusable scratch;
// it is the shared lowering stage of every scratch-reusing Algorithm 1
// allocator (SolverAllocator, WarmAllocator).
type lowerer struct {
	items  []knapsack.Item
	values []float64
	prob   knapsack.Problem
}

// lower rebuilds the knapsack view of p on the allocator's scratch.
// The float arithmetic matches toKnapsack exactly (same Objective calls in
// the same order), keeping solutions bit-identical to the DVGreedy path.
func (a *lowerer) lower(params Params, p *SlotProblem) *knapsack.Problem {
	n, levels := len(p.Users), params.Levels
	if cap(a.values) < n*levels {
		a.values = make([]float64, n*levels)
	}
	if cap(a.items) < n {
		a.items = make([]knapsack.Item, n)
	}
	vals, items := a.values[:n*levels], a.items[:n]
	for i := range p.Users {
		u := &p.Users[i]
		v := vals[i*levels : (i+1)*levels : (i+1)*levels]
		for q := 1; q <= levels; q++ {
			v[q-1] = Objective(params, p.T, *u, q)
		}
		items[i] = knapsack.Item{Values: v, Weights: u.Rate, Cap: u.Cap}
	}
	a.prob = knapsack.Problem{Items: items, Budget: p.Budget}
	return &a.prob
}

// Allocate implements Allocator.
func (a *SolverAllocator) Allocate(params Params, p *SlotProblem) Allocation {
	return fromKnapsack(a.solver.Combined(a.lower(params, p)).Clone())
}

// AllocateTraced implements TracingAllocator; the trace is identical to
// DVGreedy's.
func (a *SolverAllocator) AllocateTraced(params Params, p *SlotProblem, tr *SlotTrace) Allocation {
	if tr == nil {
		return a.Allocate(params, p)
	}
	var kt knapsack.CombinedTrace
	kt.Density.TopK, kt.Value.TopK = tr.TopK, tr.TopK
	sol := a.solver.CombinedTraced(a.lower(params, p), &kt)
	pass := kt.Density
	if kt.Picked == knapsack.BranchValue {
		pass = kt.Value
	}
	fillTrace(tr, kt.Picked.String(), pass)
	return fromKnapsack(sol.Clone())
}

// AllocateShared implements SharedAllocator: Allocate without the
// defensive clone. The returned Levels alias solver scratch and are only
// valid until the next call on this allocator — the obs-disabled slot-loop
// hot path uses it to stay allocation-free.
func (a *SolverAllocator) AllocateShared(params Params, p *SlotProblem) Allocation {
	return fromKnapsack(a.solver.Combined(a.lower(params, p)))
}

// SharedAllocator is an Allocator that can additionally hand back
// scratch-aliased allocations (no per-slot Levels clone) for steady-state
// slot loops that must not allocate. Callers own nothing: the result is
// invalidated by the next Allocate/AllocateShared call.
type SharedAllocator interface {
	Allocator
	AllocateShared(params Params, p *SlotProblem) Allocation
}

// WarmAllocator is SolverAllocator on the warm-started engine: each slot's
// solve replays the previous slot's pick log and repairs it around the few
// sessions whose channel estimates moved, falling back to a cold solve on
// churn (see knapsack.WarmSolver). Decisions and traces remain
// bit-identical to DVGreedy on every problem — warm-starting changes how
// fast the answer is reached, never the answer.
//
// Two caveats decide whether it actually warm-starts:
//
//   - the diff is positional, so the caller must present users in a stable
//     order across slots (the server's slot loop sorts its session snapshot
//     by user ID for exactly this reason);
//   - an objective whose lowered values drift globally every slot — e.g.
//     ObjectiveTerms' (t-1)/t variance weight while T advances — dirties
//     every item and degrades the WarmAllocator to a cold solve plus a
//     diff. The win lives where ladders are sparse-perturbed between
//     consecutive solves (fixed-T resolves, estimator-driven rate updates).
type WarmAllocator struct {
	lowerer
	solver knapsack.WarmSolver
}

// NewWarmAllocator returns a fresh warm-starting Algorithm 1 allocator.
func NewWarmAllocator() *WarmAllocator { return &WarmAllocator{} }

// Name implements Allocator; decisions are identical to DVGreedy.
func (a *WarmAllocator) Name() string { return "dvgreedy" }

// Allocate implements Allocator.
func (a *WarmAllocator) Allocate(params Params, p *SlotProblem) Allocation {
	return fromKnapsack(a.solver.Combined(a.lower(params, p)).Clone())
}

// AllocateShared implements SharedAllocator; see
// SolverAllocator.AllocateShared for the aliasing contract.
func (a *WarmAllocator) AllocateShared(params Params, p *SlotProblem) Allocation {
	return fromKnapsack(a.solver.Combined(a.lower(params, p)))
}

// AllocateTraced implements TracingAllocator; the trace is identical to
// DVGreedy's.
func (a *WarmAllocator) AllocateTraced(params Params, p *SlotProblem, tr *SlotTrace) Allocation {
	if tr == nil {
		return a.Allocate(params, p)
	}
	var kt knapsack.CombinedTrace
	kt.Density.TopK, kt.Value.TopK = tr.TopK, tr.TopK
	sol := a.solver.CombinedTraced(a.lower(params, p), &kt)
	pass := kt.Density
	if kt.Picked == knapsack.BranchValue {
		pass = kt.Value
	}
	fillTrace(tr, kt.Picked.String(), pass)
	return fromKnapsack(sol.Clone())
}

// Stats exposes the warm/cold resolution counters of the underlying
// engine.
func (a *WarmAllocator) Stats() knapsack.WarmStats { return a.solver.Stats() }

// Reset forces the next solve cold; call it when the user<->index
// correspondence breaks (session set reordered or repacked).
func (a *WarmAllocator) Reset() { a.solver.Reset() }

// LowerProblem exposes the SlotProblem -> nonlinear-knapsack lowering used
// by every Algorithm 1 allocator, for benchmarks and tools that want to
// drive internal/knapsack solvers directly.
func LowerProblem(params Params, p *SlotProblem) *knapsack.Problem {
	return toKnapsack(params, p)
}

// AllocateBatch solves independent slot problems (separate budgets, e.g.
// distinct rooms, servers or replayed slots) concurrently on a worker
// pool via knapsack.SolveBatch. out[i] is identical to
// DVGreedy{}.Allocate(params, problems[i]). workers <= 0 uses GOMAXPROCS.
func AllocateBatch(params Params, problems []*SlotProblem, workers int) []Allocation {
	ks := make([]*knapsack.Problem, len(problems))
	for i, p := range problems {
		ks[i] = toKnapsack(params, p)
	}
	sols := knapsack.SolveBatch(ks, workers)
	out := make([]Allocation, len(sols))
	for i, sol := range sols {
		out[i] = fromKnapsack(sol)
	}
	return out
}

var (
	_ Allocator        = (*SolverAllocator)(nil)
	_ TracingAllocator = (*SolverAllocator)(nil)
	_ SharedAllocator  = (*SolverAllocator)(nil)
	_ Allocator        = (*WarmAllocator)(nil)
	_ TracingAllocator = (*WarmAllocator)(nil)
	_ SharedAllocator  = (*WarmAllocator)(nil)
)
