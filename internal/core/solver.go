package core

import (
	"repro/internal/knapsack"
)

// SolverAllocator is Algorithm 1 on the heap-based incremental
// knapsack.Solver with reusable lowering buffers: a steady-state slot
// solve reuses the same scratch for the objective tables, the item views
// and the solver's heap, so the only per-Allocate allocation is the Levels
// slice handed back to the caller (which call sites retain, e.g. in flight
// recorder records).
//
// Decisions, values and traces are bit-identical to DVGreedy — both run
// the same Algorithm 1 over the same lowered instance; the solver engine
// is differentially tested against the original scan in
// internal/knapsack. A SolverAllocator is safe for sequential reuse
// across slots (the Allocator contract) but not for concurrent use; build
// one per goroutine.
type SolverAllocator struct {
	solver knapsack.Solver
	items  []knapsack.Item
	values []float64
	prob   knapsack.Problem
}

// NewSolverAllocator returns a fresh solver-backed Algorithm 1 allocator.
func NewSolverAllocator() *SolverAllocator { return &SolverAllocator{} }

// Name implements Allocator. It reports the same algorithm name as
// DVGreedy: the decisions are identical, only the engine differs.
func (a *SolverAllocator) Name() string { return "dvgreedy" }

// lower rebuilds the knapsack view of p on the allocator's scratch.
// The float arithmetic matches toKnapsack exactly (same Objective calls in
// the same order), keeping solutions bit-identical to the DVGreedy path.
func (a *SolverAllocator) lower(params Params, p *SlotProblem) *knapsack.Problem {
	n, levels := len(p.Users), params.Levels
	if cap(a.values) < n*levels {
		a.values = make([]float64, n*levels)
	}
	if cap(a.items) < n {
		a.items = make([]knapsack.Item, n)
	}
	vals, items := a.values[:n*levels], a.items[:n]
	for i := range p.Users {
		u := &p.Users[i]
		v := vals[i*levels : (i+1)*levels : (i+1)*levels]
		for q := 1; q <= levels; q++ {
			v[q-1] = Objective(params, p.T, *u, q)
		}
		items[i] = knapsack.Item{Values: v, Weights: u.Rate, Cap: u.Cap}
	}
	a.prob = knapsack.Problem{Items: items, Budget: p.Budget}
	return &a.prob
}

// Allocate implements Allocator.
func (a *SolverAllocator) Allocate(params Params, p *SlotProblem) Allocation {
	return fromKnapsack(a.solver.Combined(a.lower(params, p)).Clone())
}

// AllocateTraced implements TracingAllocator; the trace is identical to
// DVGreedy's.
func (a *SolverAllocator) AllocateTraced(params Params, p *SlotProblem, tr *SlotTrace) Allocation {
	if tr == nil {
		return a.Allocate(params, p)
	}
	var kt knapsack.CombinedTrace
	kt.Density.TopK, kt.Value.TopK = tr.TopK, tr.TopK
	sol := a.solver.CombinedTraced(a.lower(params, p), &kt)
	pass := kt.Density
	if kt.Picked == knapsack.BranchValue {
		pass = kt.Value
	}
	fillTrace(tr, kt.Picked.String(), pass)
	return fromKnapsack(sol.Clone())
}

// LowerProblem exposes the SlotProblem -> nonlinear-knapsack lowering used
// by every Algorithm 1 allocator, for benchmarks and tools that want to
// drive internal/knapsack solvers directly.
func LowerProblem(params Params, p *SlotProblem) *knapsack.Problem {
	return toKnapsack(params, p)
}

// AllocateBatch solves independent slot problems (separate budgets, e.g.
// distinct rooms, servers or replayed slots) concurrently on a worker
// pool via knapsack.SolveBatch. out[i] is identical to
// DVGreedy{}.Allocate(params, problems[i]). workers <= 0 uses GOMAXPROCS.
func AllocateBatch(params Params, problems []*SlotProblem, workers int) []Allocation {
	ks := make([]*knapsack.Problem, len(problems))
	for i, p := range problems {
		ks[i] = toKnapsack(params, p)
	}
	sols := knapsack.SolveBatch(ks, workers)
	out := make([]Allocation, len(sols))
	for i, sol := range sols {
		out[i] = fromKnapsack(sol)
	}
	return out
}

var (
	_ Allocator        = (*SolverAllocator)(nil)
	_ TracingAllocator = (*SolverAllocator)(nil)
)
