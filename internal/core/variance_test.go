package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/estimate"
)

func directVariance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var v float64
	for _, x := range xs {
		v += (x - mean) * (x - mean)
	}
	return v / float64(len(xs))
}

// TestVarianceDecompositionExact verifies eq. (4) / Appendix A: the sum of
// the per-slot terms equals T*sigma^2(T) exactly for arbitrary series.
func TestVarianceDecompositionExact(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(rng.Intn(7)) // quality*indicator-like values
		}
		want := directVariance(xs)
		got := HorizonVariance(xs)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: decomposed %v, direct %v", trial, got, want)
		}
	}
}

func TestVarianceDecompositionProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r % 7)
		}
		return math.Abs(HorizonVariance(xs)-directVariance(xs)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVarianceTermsNonNegative(t *testing.T) {
	xs := []float64{3, 0, 5, 5, 2, 6, 0}
	for i, term := range VarianceTerms(xs) {
		if term < 0 {
			t.Errorf("term %d = %v, want >= 0", i, term)
		}
	}
	// First term is always zero: (t-1)/t = 0 at t=1.
	if VarianceTerms(xs)[0] != 0 {
		t.Errorf("first term should be 0")
	}
}

func TestVarianceEmpty(t *testing.T) {
	if got := HorizonVariance(nil); got != 0 {
		t.Errorf("empty variance = %v, want 0", got)
	}
	if terms := VarianceTerms(nil); len(terms) != 0 {
		t.Errorf("empty terms = %v", terms)
	}
}

func TestTrackerMeanAndDelta(t *testing.T) {
	params := DefaultSimParams()
	tr := NewTracker(params, 2, 1.0)

	if got := tr.Slot(); got != 1 {
		t.Fatalf("initial slot = %d, want 1", got)
	}
	if got := tr.Delta(0); got != 1 {
		t.Errorf("prior delta = %v, want 1", got)
	}
	if got := tr.MeanQ(0); got != 0 {
		t.Errorf("prior mean = %v, want 0", got)
	}

	tr.Record(0, 4, true, 0.2)
	tr.Record(0, 2, false, 0.1)
	tr.Record(1, 6, true, 0.0)

	// User 0: viewed {4, 0} -> mean 2; covered 1 of 2 -> delta (1+1)/3.
	if got := tr.MeanQ(0); math.Abs(got-2) > 1e-12 {
		t.Errorf("MeanQ(0) = %v, want 2", got)
	}
	if got := tr.Delta(0); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Delta(0) = %v, want 2/3", got)
	}
	if got := tr.Variance(0); math.Abs(got-4) > 1e-12 {
		t.Errorf("Variance(0) = %v, want 4", got)
	}
	// User 1: viewed {6}.
	if got := tr.MeanQ(1); got != 6 {
		t.Errorf("MeanQ(1) = %v, want 6", got)
	}
}

func TestTrackerQoEMatchesDefinition(t *testing.T) {
	params := Params{Alpha: 0.1, Beta: 0.5, Levels: 6}
	tr := NewTracker(params, 1, 1)
	var viewed []float64
	var delaySum float64
	rng := rand.New(rand.NewSource(33))
	var w estimate.Welford
	for i := 0; i < 300; i++ {
		q := 1 + rng.Intn(6)
		covered := rng.Float64() < 0.9
		delay := rng.Float64()
		tr.Record(0, q, covered, delay)
		vq := 0.0
		if covered {
			vq = float64(q)
		}
		viewed = append(viewed, vq)
		w.Add(vq)
		delaySum += delay
	}
	want := w.Mean() - params.Alpha*delaySum/300 - params.Beta*directVariance(viewed)
	if got := tr.QoE(0); math.Abs(got-want) > 1e-9 {
		t.Errorf("QoE = %v, want %v", got, want)
	}
	if got := tr.TotalQoE(); math.Abs(got-want) > 1e-9 {
		t.Errorf("TotalQoE = %v, want %v", got, want)
	}
}

func TestTrackerPriorClamped(t *testing.T) {
	tr := NewTracker(DefaultSimParams(), 1, 2.5)
	if got := tr.Delta(0); got != 1 {
		t.Errorf("clamped prior = %v, want 1", got)
	}
	tr = NewTracker(DefaultSimParams(), 1, -1)
	if got := tr.Delta(0); got != 0 {
		t.Errorf("clamped prior = %v, want 0", got)
	}
}

func TestTrackerUserInput(t *testing.T) {
	tr := NewTracker(DefaultSimParams(), 1, 1)
	tr.Record(0, 3, true, 0)
	rates := []float64{1, 2, 3, 4, 5, 6}
	delays := []float64{0, 0, 0, 0, 0, 0}
	u := tr.UserInput(0, rates, delays, 42)
	if u.MeanQ != 3 || u.Cap != 42 {
		t.Errorf("UserInput = %+v", u)
	}
	if u.Delta != 1 {
		t.Errorf("Delta = %v, want 1 (prior 1, one covered obs)", u.Delta)
	}
}

func TestTrackerEmpty(t *testing.T) {
	tr := NewTracker(DefaultSimParams(), 0, 1)
	if tr.NumUsers() != 0 {
		t.Errorf("NumUsers = %d", tr.NumUsers())
	}
	if got := tr.Slot(); got != 1 {
		t.Errorf("Slot = %d, want 1", got)
	}
	if got := tr.TotalQoE(); got != 0 {
		t.Errorf("TotalQoE = %v, want 0", got)
	}
}
