// Package core implements the paper's primary contribution: the per-slot
// decomposition of the collaborative-VR QoE maximization problem
// (Section III, eqs. (4)-(9)) and the Density/Value-Greedy quality-level
// allocation algorithm (Algorithm 1) with its 1/2-approximation guarantee
// (Theorem 1).
//
// Per time slot t the edge server solves
//
//	max_{q_n(t)}  sum_n h_n(q_n(t))
//	s.t.          sum_n f^R(q_n(t)) <= B(t),   f^R(q_n(t)) <= B_n(t)
//
// where, with delta_n the success probability of the 6-DoF motion
// prediction and qbar_n(t-1) the running mean of successfully-viewed
// quality,
//
//	h_n(q) = delta_n*q - alpha*E[d_n(f^R(q))]
//	         - beta*( delta_n*(t-1)*(q - qbar)^2/t + (1-delta_n)*(t-1)*qbar^2/t ).
package core

import (
	"errors"
	"fmt"

	"repro/internal/knapsack"
	"repro/internal/obs"
)

// Params are the QoE weights of Section II and the size of the quality set.
type Params struct {
	Alpha  float64 // delay sensitivity (paper: 0.02 in simulation, 0.1 in testbed)
	Beta   float64 // variance sensitivity (paper: 0.5)
	Levels int     // L, the number of quality levels (paper: 6)
}

// DefaultSimParams are the weights of the trace-based simulation
// (Section IV).
func DefaultSimParams() Params { return Params{Alpha: 0.02, Beta: 0.5, Levels: 6} }

// DefaultSystemParams are the weights of the real-system evaluation
// (Section VI).
func DefaultSystemParams() Params { return Params{Alpha: 0.1, Beta: 0.5, Levels: 6} }

// UserInput is everything the allocator needs to know about one user in one
// slot.
type UserInput struct {
	// Rate[q-1] is f^R_{c(t)}(q): the rate required to deliver the user's
	// predicted tiles at quality level q, in the same unit as Cap and the
	// slot budget.
	Rate []float64
	// Delay[q-1] is the expected content delivery delay at quality level q
	// (e.g. the M/M/1 value r/(B_n - r) in simulation, or the server's
	// polynomial-regression prediction in the real system).
	Delay []float64
	// Delta is the estimated success probability delta_n of the user's
	// motion prediction.
	Delta float64
	// MeanQ is qbar_n(t-1), the running mean of successfully-viewed quality.
	MeanQ float64
	// Cap is B_n(t), the user's available throughput this slot.
	Cap float64
}

// SlotProblem is one slot's allocation instance for all users.
type SlotProblem struct {
	T      int     // 1-based slot index; the variance weight is (t-1)/t
	Budget float64 // B(t), the server's available throughput this slot
	Users  []UserInput
}

// Validate reports structural errors in the problem.
func (p *SlotProblem) Validate(params Params) error {
	if p.T < 1 {
		return errors.New("core: slot index must be >= 1")
	}
	if len(p.Users) == 0 {
		return errors.New("core: no users")
	}
	for i, u := range p.Users {
		if len(u.Rate) != params.Levels {
			return fmt.Errorf("core: user %d has %d rates, want %d", i, len(u.Rate), params.Levels)
		}
		if len(u.Delay) != params.Levels {
			return fmt.Errorf("core: user %d has %d delays, want %d", i, len(u.Delay), params.Levels)
		}
		if u.Delta < 0 || u.Delta > 1 {
			return fmt.Errorf("core: user %d has delta %v outside [0,1]", i, u.Delta)
		}
	}
	return nil
}

// Terms is the decomposition of h_n(q) into its three components:
// h_n(q) = Quality - Delay - Variance (each term already weighted).
type Terms struct {
	Quality  float64 // delta_n * q
	Delay    float64 // alpha * E[d_n(f^R(q))]
	Variance float64 // beta * (weighted quality-switch variance)
}

// ObjectiveTerms evaluates the components of h_n(q) of eq. (9) for one user
// at quality level q (1-based) in slot t — the per-slot objective terms the
// flight recorder exports.
func ObjectiveTerms(params Params, t int, u UserInput, q int) Terms {
	tf := float64(t)
	varWeight := (tf - 1) / tf
	dq := float64(q) - u.MeanQ
	variance := u.Delta*varWeight*dq*dq + (1-u.Delta)*varWeight*u.MeanQ*u.MeanQ
	return Terms{
		Quality:  u.Delta * float64(q),
		Delay:    params.Alpha * u.Delay[q-1],
		Variance: params.Beta * variance,
	}
}

// Objective evaluates h_n(q) of eq. (9) for one user at quality level q
// (1-based) in slot t.
func Objective(params Params, t int, u UserInput, q int) float64 {
	terms := ObjectiveTerms(params, t, u, q)
	return terms.Quality - terms.Delay - terms.Variance
}

// Allocation is the outcome of one slot's quality allocation.
type Allocation struct {
	// Levels[n] is the 1-based quality level chosen for user n.
	Levels []int
	// Value is the achieved per-slot objective sum_n h_n(q_n).
	Value float64
	// Rate is the total required rate of the allocation.
	Rate float64
}

// Allocator decides quality levels for one slot. Implementations must be
// safe for sequential reuse across slots (they may keep state, e.g. LRU
// order in the Firefly baseline).
type Allocator interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Allocate solves one slot.
	Allocate(params Params, p *SlotProblem) Allocation
}

// SlotTrace is the decision trace of one slot's allocation: which greedy
// branch produced the returned solution and every quality_verification
// rejection with the constraint it violated.
type SlotTrace struct {
	// Branch is "density" or "value" for Algorithm 1 (empty for allocators
	// without a branch choice).
	Branch string
	// Upgrades counts the accepted upgrades of the returned pass.
	Upgrades int
	// Rejections lists the reverted upgrades of the returned pass.
	Rejections []obs.Rejection
	// TopK, when positive, opts in to counterfactual capture: the returned
	// pass's top-K unchosen upgrades land in Alternatives. Zero (the
	// default) records nothing and costs nothing.
	TopK int
	// Alternatives are the counterfactual decisions of the returned pass,
	// ranked by marginal score (heap-solver allocators only).
	Alternatives []obs.Alternative
}

// TracingAllocator is an Allocator that can explain its decisions. The
// greedy allocators implement it; exact solvers have nothing to trace.
type TracingAllocator interface {
	Allocator
	// AllocateTraced solves one slot and fills tr (nil tr behaves like
	// Allocate).
	AllocateTraced(params Params, p *SlotProblem, tr *SlotTrace) Allocation
}

// fillTrace converts a knapsack pass trace into a slot trace.
func fillTrace(tr *SlotTrace, branch string, pass knapsack.PassTrace) {
	tr.Branch = branch
	tr.Upgrades = pass.Upgrades
	if len(pass.Rejections) > 0 {
		tr.Rejections = make([]obs.Rejection, len(pass.Rejections))
		for i, rej := range pass.Rejections {
			tr.Rejections[i] = obs.Rejection{
				User:       rej.Item,
				Level:      rej.Level,
				Constraint: rej.Reason.String(),
			}
		}
	}
	if len(pass.Alternatives) > 0 {
		tr.Alternatives = make([]obs.Alternative, len(pass.Alternatives))
		for i, alt := range pass.Alternatives {
			tr.Alternatives[i] = obs.Alternative{
				User:   alt.Item,
				Level:  alt.Level,
				Score:  alt.Score,
				Gain:   alt.Gain,
				Reason: alt.Reason.String(),
			}
		}
	}
}

// toKnapsack lowers a slot problem into the generic nonlinear knapsack form.
func toKnapsack(params Params, p *SlotProblem) *knapsack.Problem {
	items := make([]knapsack.Item, len(p.Users))
	for i, u := range p.Users {
		values := make([]float64, params.Levels)
		for q := 1; q <= params.Levels; q++ {
			values[q-1] = Objective(params, p.T, u, q)
		}
		items[i] = knapsack.Item{
			Values:  values,
			Weights: u.Rate,
			Cap:     u.Cap,
		}
	}
	return &knapsack.Problem{Items: items, Budget: p.Budget}
}

func fromKnapsack(sol knapsack.Solution) Allocation {
	return Allocation{Levels: sol.Levels, Value: sol.Value, Rate: sol.Weight}
}

// DVGreedy is Algorithm 1 of the paper: the better of a density-greedy and
// a value-greedy pass over the quality-upgrade increments.
type DVGreedy struct{}

// Name implements Allocator.
func (DVGreedy) Name() string { return "dvgreedy" }

// Allocate implements Allocator.
func (DVGreedy) Allocate(params Params, p *SlotProblem) Allocation {
	return fromKnapsack(toKnapsack(params, p).Combined())
}

// AllocateTraced implements TracingAllocator: the trace reflects the pass
// (density or value) whose solution was returned.
func (DVGreedy) AllocateTraced(params Params, p *SlotProblem, tr *SlotTrace) Allocation {
	if tr == nil {
		return DVGreedy{}.Allocate(params, p)
	}
	var kt knapsack.CombinedTrace
	kt.Density.TopK, kt.Value.TopK = tr.TopK, tr.TopK
	sol := toKnapsack(params, p).CombinedTraced(&kt)
	pass := kt.Density
	if kt.Picked == knapsack.BranchValue {
		pass = kt.Value
	}
	fillTrace(tr, kt.Picked.String(), pass)
	return fromKnapsack(sol)
}

// DensityOnly runs only the density-greedy pass (an ablation of
// Algorithm 1).
type DensityOnly struct{}

// Name implements Allocator.
func (DensityOnly) Name() string { return "density" }

// Allocate implements Allocator.
func (DensityOnly) Allocate(params Params, p *SlotProblem) Allocation {
	return fromKnapsack(toKnapsack(params, p).DensityGreedy())
}

// AllocateTraced implements TracingAllocator.
func (DensityOnly) AllocateTraced(params Params, p *SlotProblem, tr *SlotTrace) Allocation {
	if tr == nil {
		return DensityOnly{}.Allocate(params, p)
	}
	var pass knapsack.PassTrace
	pass.TopK = tr.TopK
	sol := toKnapsack(params, p).DensityGreedyTraced(&pass)
	fillTrace(tr, knapsack.BranchDensity.String(), pass)
	return fromKnapsack(sol)
}

// ValueOnly runs only the value-greedy pass (an ablation of Algorithm 1).
type ValueOnly struct{}

// Name implements Allocator.
func (ValueOnly) Name() string { return "value" }

// Allocate implements Allocator.
func (ValueOnly) Allocate(params Params, p *SlotProblem) Allocation {
	return fromKnapsack(toKnapsack(params, p).ValueGreedy())
}

// AllocateTraced implements TracingAllocator.
func (ValueOnly) AllocateTraced(params Params, p *SlotProblem, tr *SlotTrace) Allocation {
	if tr == nil {
		return ValueOnly{}.Allocate(params, p)
	}
	var pass knapsack.PassTrace
	pass.TopK = tr.TopK
	sol := toKnapsack(params, p).ValueGreedyTraced(&pass)
	fillTrace(tr, knapsack.BranchValue.String(), pass)
	return fromKnapsack(sol)
}

// Optimal solves each slot exactly by brute force; it is the "optimal
// offline solution of problem (5)-(7)" the paper compares against for 5
// users. Cost is L^N, so it is only practical for small N.
type Optimal struct{}

// Name implements Allocator.
func (Optimal) Name() string { return "optimal" }

// Allocate implements Allocator.
func (Optimal) Allocate(params Params, p *SlotProblem) Allocation {
	return fromKnapsack(toKnapsack(params, p).BruteForce())
}

// DPOptimal solves each slot near-exactly with the pseudo-polynomial
// dynamic program — an extension beyond the paper, which could only compare
// against the exact optimum for 5 users (brute force is L^N). DPOptimal
// scales to the 30-user setting at a chosen budget resolution.
type DPOptimal struct {
	// Resolution is the budget grid step; <= 0 picks budget/2048.
	Resolution float64
}

// Name implements Allocator.
func (DPOptimal) Name() string { return "dp-optimal" }

// Allocate implements Allocator.
func (d DPOptimal) Allocate(params Params, p *SlotProblem) Allocation {
	return fromKnapsack(toKnapsack(params, p).DynamicProgram(d.Resolution))
}

// FractionalUpperBound returns V_p, an upper bound on the slot's optimal
// objective (used in analysis and tests of Theorem 1).
func FractionalUpperBound(params Params, p *SlotProblem) float64 {
	return toKnapsack(params, p).FractionalBound()
}

var (
	_ Allocator        = DVGreedy{}
	_ Allocator        = DensityOnly{}
	_ Allocator        = ValueOnly{}
	_ Allocator        = Optimal{}
	_ Allocator        = DPOptimal{}
	_ TracingAllocator = DVGreedy{}
	_ TracingAllocator = DensityOnly{}
	_ TracingAllocator = ValueOnly{}
)
