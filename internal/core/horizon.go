package core

// This file validates the decomposition at the heart of Section III:
// solving problem (5)-(7) slot by slot loses almost nothing against the
// clairvoyant optimum of problem (1)-(3) over the whole horizon (eq. (8)).
// HorizonProblem states a tiny instance explicitly; SolveHorizonExhaustive
// searches all (L^N)^T assignments for the exact offline maximum of the
// realized QoE, and SolveHorizonSequential replays any per-slot Allocator.

// HorizonSlot is the data of one slot of a horizon instance.
type HorizonSlot struct {
	Budget float64
	// Rates[n][q-1] is user n's required rate at level q.
	Rates [][]float64
	// Delays[n][q-1] is user n's delivery delay at level q.
	Delays [][]float64
	// Caps[n] is B_n(t).
	Caps []float64
	// Covered[n] is the realized coverage indicator 1_n(t) (known to the
	// clairvoyant solver, estimated online by the sequential one).
	Covered []bool
}

// HorizonProblem is a complete finite-horizon instance.
type HorizonProblem struct {
	Params Params
	Slots  []HorizonSlot
	Users  int
}

// QoE evaluates the realized horizon QoE (eq. (1)) of a full assignment:
// levels[t][n] is user n's quality level in slot t. Infeasible assignments
// (budget or cap violations by upgraded users) return ok=false.
func (h *HorizonProblem) QoE(levels [][]int) (qoe float64, ok bool) {
	T := len(h.Slots)
	if T == 0 {
		return 0, true
	}
	viewed := make([][]float64, h.Users)
	for n := range viewed {
		viewed[n] = make([]float64, T)
	}
	var total float64
	for t, slot := range h.Slots {
		var used float64
		for n := 0; n < h.Users; n++ {
			q := levels[t][n]
			rate := slot.Rates[n][q-1]
			used += rate
			if q > 1 && rate > slot.Caps[n]+1e-12 {
				return 0, false
			}
			x := 0.0
			if slot.Covered[n] {
				x = float64(q)
			}
			viewed[n][t] = x
			total += x - h.Params.Alpha*slot.Delays[n][q-1]
		}
		if used > slot.Budget+1e-12 && !allBase(levels[t]) {
			return 0, false
		}
	}
	for n := 0; n < h.Users; n++ {
		total -= h.Params.Beta * HorizonVariance(viewed[n]) * float64(T)
	}
	return total, true
}

func allBase(levels []int) bool {
	for _, l := range levels {
		if l != 1 {
			return false
		}
	}
	return true
}

// SolveHorizonExhaustive finds the exact clairvoyant optimum by enumerating
// every assignment. Cost is (L^N)^T — strictly for tiny validation
// instances.
func (h *HorizonProblem) SolveHorizonExhaustive() ([][]int, float64) {
	T := len(h.Slots)
	cur := make([][]int, T)
	best := make([][]int, T)
	for t := range cur {
		cur[t] = make([]int, h.Users)
		best[t] = make([]int, h.Users)
		for n := range cur[t] {
			cur[t][n] = 1
			best[t][n] = 1
		}
	}
	bestQoE, _ := h.QoE(best)

	var rec func(t, n int)
	rec = func(t, n int) {
		if t == T {
			if q, ok := h.QoE(cur); ok && q > bestQoE {
				bestQoE = q
				for tt := range cur {
					copy(best[tt], cur[tt])
				}
			}
			return
		}
		nt, nn := t, n+1
		if nn == h.Users {
			nt, nn = t+1, 0
		}
		for q := 1; q <= h.Params.Levels; q++ {
			cur[t][n] = q
			rec(nt, nn)
		}
		cur[t][n] = 1
	}
	rec(0, 0)
	return best, bestQoE
}

// SolveHorizonSequential replays a per-slot allocator over the horizon,
// feeding it the same online state (running mean, coverage estimate) the
// real system maintains, and returns the realized horizon QoE.
func (h *HorizonProblem) SolveHorizonSequential(alloc Allocator) ([][]int, float64) {
	T := len(h.Slots)
	tracker := NewTracker(h.Params, h.Users, 1)
	levels := make([][]int, T)
	for t, slot := range h.Slots {
		users := make([]UserInput, h.Users)
		for n := 0; n < h.Users; n++ {
			users[n] = tracker.UserInput(n, slot.Rates[n], slot.Delays[n], slot.Caps[n])
		}
		p := &SlotProblem{T: t + 1, Budget: slot.Budget, Users: users}
		a := alloc.Allocate(h.Params, p)
		levels[t] = a.Levels
		for n := 0; n < h.Users; n++ {
			tracker.Record(n, a.Levels[n], slot.Covered[n], slot.Delays[n][a.Levels[n]-1])
		}
	}
	qoe, _ := h.QoE(levels)
	return levels, qoe
}
