package core_test

import (
	"fmt"

	"repro/internal/core"
)

// ExampleDVGreedy_Allocate allocates one slot for two users with Algorithm 1.
func ExampleDVGreedy_Allocate() {
	params := core.Params{Alpha: 0.02, Beta: 0.5, Levels: 3}
	problem := &core.SlotProblem{
		T:      1,
		Budget: 30,
		Users: []core.UserInput{
			{
				Rate:  []float64{5, 12, 26},
				Delay: []float64{2, 6, 20},
				Delta: 0.95,
				Cap:   40,
			},
			{
				Rate:  []float64{5, 12, 26},
				Delay: []float64{4, 15, 200},
				Delta: 0.9,
				Cap:   18,
			},
		},
	}
	a := core.DVGreedy{}.Allocate(params, problem)
	fmt.Printf("levels: %v\n", a.Levels)
	fmt.Printf("rate: %.0f of %.0f Mbps\n", a.Rate, problem.Budget)
	// Output:
	// levels: [2 2]
	// rate: 24 of 30 Mbps
}

// ExampleVarianceTerms shows the per-slot decomposition of the quality
// variance (eq. (4)): the terms sum to T times the variance.
func ExampleVarianceTerms() {
	viewed := []float64{4, 4, 0, 4} // one slot missed its FoV
	terms := core.VarianceTerms(viewed)
	var sum float64
	for _, term := range terms {
		sum += term
	}
	fmt.Printf("sum of terms: %.2f\n", sum)
	fmt.Printf("T * variance: %.2f\n", 4*core.HorizonVariance(viewed))
	// Output:
	// sum of terms: 12.00
	// T * variance: 12.00
}
