package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func equalAllocations(t *testing.T, want, got Allocation, what string) {
	t.Helper()
	if len(want.Levels) != len(got.Levels) {
		t.Fatalf("%s: %d levels, want %d", what, len(got.Levels), len(want.Levels))
	}
	for i := range want.Levels {
		if want.Levels[i] != got.Levels[i] {
			t.Fatalf("%s: levels %v, want %v", what, got.Levels, want.Levels)
		}
	}
	if math.Float64bits(want.Value) != math.Float64bits(got.Value) {
		t.Fatalf("%s: value %v (bits %x), want %v (bits %x)",
			what, got.Value, math.Float64bits(got.Value), want.Value, math.Float64bits(want.Value))
	}
	if math.Float64bits(want.Rate) != math.Float64bits(got.Rate) {
		t.Fatalf("%s: rate %v, want %v", what, got.Rate, want.Rate)
	}
}

func equalSlotTraces(t *testing.T, want, got SlotTrace, what string) {
	t.Helper()
	if want.Branch != got.Branch {
		t.Fatalf("%s: branch %q, want %q", what, got.Branch, want.Branch)
	}
	if want.Upgrades != got.Upgrades {
		t.Fatalf("%s: %d upgrades, want %d", what, got.Upgrades, want.Upgrades)
	}
	if len(want.Rejections) != len(got.Rejections) {
		t.Fatalf("%s: rejections %+v, want %+v", what, got.Rejections, want.Rejections)
	}
	for i := range want.Rejections {
		if want.Rejections[i] != got.Rejections[i] {
			t.Fatalf("%s: rejection %d is %+v, want %+v",
				what, i, got.Rejections[i], want.Rejections[i])
		}
	}
}

// TestSolverAllocatorMatchesDVGreedy drives ONE SolverAllocator across many
// slots of varying size (the sequential-reuse contract) and requires every
// allocation and trace to be bit-identical to the stateless DVGreedy.
func TestSolverAllocatorMatchesDVGreedy(t *testing.T) {
	params := DefaultSimParams()
	rng := rand.New(rand.NewSource(77))
	a := NewSolverAllocator()
	if a.Name() != (DVGreedy{}).Name() {
		t.Fatalf("name %q, want %q: same algorithm, different engine", a.Name(), (DVGreedy{}).Name())
	}
	for trial := 0; trial < 400; trial++ {
		p := randomSlotProblem(rng, params, 1+rng.Intn(40))
		equalAllocations(t, DVGreedy{}.Allocate(params, p), a.Allocate(params, p),
			fmt.Sprintf("trial %d", trial))

		var wantTr, gotTr SlotTrace
		want := DVGreedy{}.AllocateTraced(params, p, &wantTr)
		got := a.AllocateTraced(params, p, &gotTr)
		equalAllocations(t, want, got, fmt.Sprintf("trial %d traced", trial))
		equalSlotTraces(t, wantTr, gotTr, fmt.Sprintf("trial %d trace", trial))
	}
}

// TestSolverAllocatorLevelsNotAliased guards the Clone contract: the Levels
// slice handed to the caller must survive the allocator's next solve (flight
// recorder records retain it).
func TestSolverAllocatorLevelsNotAliased(t *testing.T) {
	params := DefaultSimParams()
	rng := rand.New(rand.NewSource(78))
	a := NewSolverAllocator()
	p := randomSlotProblem(rng, params, 8)
	first := a.Allocate(params, p)
	keep := append([]int(nil), first.Levels...)
	for i := 0; i < 10; i++ {
		a.Allocate(params, randomSlotProblem(rng, params, 8))
	}
	for i := range keep {
		if first.Levels[i] != keep[i] {
			t.Fatalf("levels mutated by later solves: %v, want %v", first.Levels, keep)
		}
	}
}

// TestAllocateBatchMatchesSequential checks the batch API returns, in order,
// exactly what per-problem Allocate returns, for several worker counts.
func TestAllocateBatchMatchesSequential(t *testing.T) {
	params := DefaultSimParams()
	rng := rand.New(rand.NewSource(79))
	problems := make([]*SlotProblem, 37)
	want := make([]Allocation, len(problems))
	for i := range problems {
		problems[i] = randomSlotProblem(rng, params, 1+rng.Intn(25))
		want[i] = DVGreedy{}.Allocate(params, problems[i])
	}
	for _, workers := range []int{-1, 0, 1, 2, 7, 64} {
		got := AllocateBatch(params, problems, workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range want {
			equalAllocations(t, want[i], got[i], fmt.Sprintf("workers=%d problem %d", workers, i))
		}
	}
	if out := AllocateBatch(params, nil, 4); len(out) != 0 {
		t.Fatalf("empty batch returned %d results", len(out))
	}
}

// TestLowerProblemMatchesAllocator checks the exported lowering is the one
// the allocators solve: feeding it to the knapsack solver reproduces
// DVGreedy bit-for-bit.
func TestLowerProblemMatchesAllocator(t *testing.T) {
	params := DefaultSimParams()
	rng := rand.New(rand.NewSource(80))
	for trial := 0; trial < 50; trial++ {
		p := randomSlotProblem(rng, params, 1+rng.Intn(12))
		want := DVGreedy{}.Allocate(params, p)
		got := fromKnapsack(LowerProblem(params, p).Combined())
		equalAllocations(t, want, got, fmt.Sprintf("trial %d", trial))
	}
}

// BenchmarkSolveSlot measures one slot allocation end to end (lowering +
// solve) for the reusable solver-backed allocator against the stateless
// DVGreedy baseline.
func BenchmarkSolveSlot(b *testing.B) {
	params := DefaultSimParams()
	for _, n := range []int{5, 30, 200} {
		p := randomSlotProblem(rand.New(rand.NewSource(int64(n))), params, n)
		b.Run(fmt.Sprintf("solver/N=%d", n), func(b *testing.B) {
			a := NewSolverAllocator()
			a.Allocate(params, p) // warm scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.Allocate(params, p)
			}
		})
		b.Run(fmt.Sprintf("dvgreedy/N=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				DVGreedy{}.Allocate(params, p)
			}
		})
	}
}
