package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestAllocationValueConsistency: every allocator's reported Value must
// equal the sum of Objective over its chosen levels, and Rate the sum of
// the chosen rates.
func TestAllocationValueConsistency(t *testing.T) {
	params := DefaultSimParams()
	rng := rand.New(rand.NewSource(81))
	allocators := []Allocator{DVGreedy{}, DensityOnly{}, ValueOnly{}, Optimal{}, DPOptimal{}}
	for trial := 0; trial < 40; trial++ {
		p := randomSlotProblem(rng, params, 3)
		for _, alg := range allocators {
			a := alg.Allocate(params, p)
			var wantValue, wantRate float64
			for n, l := range a.Levels {
				wantValue += Objective(params, p.T, p.Users[n], l)
				wantRate += p.Users[n].Rate[l-1]
			}
			if math.Abs(a.Value-wantValue) > 1e-9 {
				t.Fatalf("%s: Value %v != recomputed %v", alg.Name(), a.Value, wantValue)
			}
			if math.Abs(a.Rate-wantRate) > 1e-9 {
				t.Fatalf("%s: Rate %v != recomputed %v", alg.Name(), a.Rate, wantRate)
			}
		}
	}
}

// TestObjectiveDeltaZero: with delta = 0 (prediction never covers), the
// quality term vanishes and only the delay penalty plus the constant
// variance floor remain, so the allocator should stay at base level.
func TestObjectiveDeltaZero(t *testing.T) {
	params := DefaultSimParams()
	u := testUser(0, 3, 100, ladder)
	p := &SlotProblem{T: 10, Budget: 1000, Users: []UserInput{u}}
	a := DVGreedy{}.Allocate(params, p)
	if a.Levels[0] != 1 {
		t.Errorf("delta=0 should stay at base, got level %d", a.Levels[0])
	}
}

// TestObjectiveMonotoneInDelta: the marginal benefit of a quality upgrade
// grows with the prediction success probability.
func TestObjectiveMonotoneInDeltaProperty(t *testing.T) {
	params := Params{Alpha: 0, Beta: 0, Levels: 6}
	f := func(d1Raw, d2Raw uint8, qRaw uint8) bool {
		d1 := float64(d1Raw) / 255
		d2 := float64(d2Raw) / 255
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		q := int(qRaw%5) + 1
		u1 := testUser(d1, 0, 100, ladder)
		u2 := testUser(d2, 0, 100, ladder)
		inc1 := Objective(params, 5, u1, q+1) - Objective(params, 5, u1, q)
		inc2 := Objective(params, 5, u2, q+1) - Objective(params, 5, u2, q)
		return inc1 <= inc2+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestDefaultParams pins the paper's hyperparameters.
func TestDefaultParams(t *testing.T) {
	simP := DefaultSimParams()
	if simP.Alpha != 0.02 || simP.Beta != 0.5 || simP.Levels != 6 {
		t.Errorf("sim params = %+v, want alpha=0.02 beta=0.5 L=6", simP)
	}
	sysP := DefaultSystemParams()
	if sysP.Alpha != 0.1 || sysP.Beta != 0.5 || sysP.Levels != 6 {
		t.Errorf("system params = %+v, want alpha=0.1 beta=0.5 L=6", sysP)
	}
}

// TestTrackerConvergesToTrueDelta: with Bernoulli coverage at rate p, the
// tracker's delta estimate converges to p (the paper: "the average
// prediction probability ... converges to delta_n as t -> infinity").
func TestTrackerConvergesToTrueDelta(t *testing.T) {
	tr := NewTracker(DefaultSimParams(), 1, 0.5)
	rng := rand.New(rand.NewSource(82))
	const p = 0.87
	for i := 0; i < 20000; i++ {
		tr.Record(0, 3, rng.Float64() < p, 0)
	}
	if got := tr.Delta(0); math.Abs(got-p) > 0.02 {
		t.Errorf("delta estimate = %v, want about %v", got, p)
	}
}

// TestDVGreedyEquivalentToBestSinglePassOnSeparableProblems: when the
// budget never binds, all three greedy variants coincide with independent
// per-user maximization.
func TestGreedyUnconstrainedIsPerUserArgmax(t *testing.T) {
	params := DefaultSimParams()
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 30; trial++ {
		p := randomSlotProblem(rng, params, 3)
		p.Budget = 1e9
		got := DVGreedy{}.Allocate(params, p)
		for n, u := range p.Users {
			best, bestVal := 1, Objective(params, p.T, u, 1)
			for q := 2; q <= params.Levels; q++ {
				if u.Rate[q-1] > u.Cap {
					continue
				}
				if v := Objective(params, p.T, u, q); v > bestVal {
					best, bestVal = q, v
				}
			}
			// The greedy climbs monotonically and stops at negative
			// increments; for concave h this is exactly the argmax.
			if got.Levels[n] != best {
				gotVal := Objective(params, p.T, u, got.Levels[n])
				if math.Abs(gotVal-bestVal) > 1e-9 {
					t.Fatalf("trial %d user %d: level %d (h=%v), want %d (h=%v)",
						trial, n, got.Levels[n], gotVal, best, bestVal)
				}
			}
		}
	}
}
