package core

// VarianceTerms computes the per-slot terms of the paper's variance
// decomposition (eq. (4) / Appendix A):
//
//	T*sigma^2(T) = sum_{t=1}^{T} (t-1)*(x_t - xbar_{t-1})^2 / t
//
// where x_t = q_n(t)*1_n(t) and xbar_t is the running mean. The returned
// slice has one entry per slot; its prefix sums divided by t reproduce
// sigma^2(t) exactly, which is what makes the per-slot decomposition of the
// QoE objective lossless.
func VarianceTerms(xs []float64) []float64 {
	terms := make([]float64, len(xs))
	var mean float64
	for i, x := range xs {
		t := float64(i + 1)
		d := x - mean // x_t - xbar_{t-1}
		terms[i] = (t - 1) * d * d / t
		mean += d / t
	}
	return terms
}

// HorizonVariance returns sigma^2(T) computed through the decomposition:
// (1/T) * sum of VarianceTerms. It must agree with the direct two-pass
// variance — a property covered by tests.
func HorizonVariance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, term := range VarianceTerms(xs) {
		sum += term
	}
	return sum / float64(len(xs))
}
