package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// testUser builds a UserInput with the M/M/1 delay of eq. (13) for a
// six-level ladder.
func testUser(delta, meanQ, cap_ float64, rates []float64) UserInput {
	delays := make([]float64, len(rates))
	for i, r := range rates {
		if r >= cap_ {
			delays[i] = 1e6
		} else {
			delays[i] = r / (cap_ - r)
		}
	}
	return UserInput{Rate: rates, Delay: delays, Delta: delta, MeanQ: meanQ, Cap: cap_}
}

var ladder = []float64{2, 4, 7, 12, 20, 33} // convex rate ladder, Mbit/s-ish

func TestObjectiveFirstSlotHasNoVariancePenalty(t *testing.T) {
	params := DefaultSimParams()
	u := testUser(1, 0, 100, ladder)
	// t=1: varWeight = 0, so h(q) = q - alpha*d(q).
	for q := 1; q <= 6; q++ {
		want := float64(q) - params.Alpha*u.Delay[q-1]
		if got := Objective(params, 1, u, q); math.Abs(got-want) > 1e-12 {
			t.Errorf("h(%d) = %v, want %v", q, got, want)
		}
	}
}

func TestObjectivePenalizesDeviationFromMean(t *testing.T) {
	params := Params{Alpha: 0, Beta: 0.5, Levels: 6}
	u := testUser(1, 3, 1000, ladder)
	// At t large, h(q) ~ q - 0.5*(q-3)^2; the maximizer over integers is 4:
	// h(3)=3, h(4)=3.5, h(5)=3.
	h3 := Objective(params, 1000, u, 3)
	h4 := Objective(params, 1000, u, 4)
	h5 := Objective(params, 1000, u, 5)
	if !(h4 > h3 && h4 > h5) {
		t.Errorf("expected q=4 to maximize: h3=%v h4=%v h5=%v", h3, h4, h5)
	}
}

func TestObjectiveImperfectPredictionDiscountsQuality(t *testing.T) {
	params := Params{Alpha: 0, Beta: 0, Levels: 6}
	good := testUser(1.0, 0, 1000, ladder)
	bad := testUser(0.5, 0, 1000, ladder)
	for q := 1; q <= 6; q++ {
		hg := Objective(params, 5, good, q)
		hb := Objective(params, 5, bad, q)
		if math.Abs(hg-2*hb) > 1e-12 {
			t.Errorf("delta scaling wrong at q=%d: %v vs %v", q, hg, hb)
		}
	}
}

// h_n must be concave in q (decreasing increments) whenever the delay table
// is convex — the premise of Theorem 1.
func TestObjectiveConcaveProperty(t *testing.T) {
	params := DefaultSimParams()
	f := func(deltaRaw, meanRaw uint8, tRaw uint16) bool {
		delta := float64(deltaRaw) / 255
		meanQ := float64(meanRaw) / 255 * 6
		tt := int(tRaw%1000) + 1
		u := testUser(delta, meanQ, 100, ladder)
		prev := math.Inf(1)
		for q := 1; q < 6; q++ {
			inc := Objective(params, tt, u, q+1) - Objective(params, tt, u, q)
			if inc > prev+1e-9 {
				return false
			}
			prev = inc
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestValidate(t *testing.T) {
	params := DefaultSimParams()
	u := testUser(1, 0, 50, ladder)
	p := &SlotProblem{T: 1, Budget: 100, Users: []UserInput{u}}
	if err := p.Validate(params); err != nil {
		t.Errorf("valid problem rejected: %v", err)
	}
	bad := &SlotProblem{T: 0, Budget: 100, Users: []UserInput{u}}
	if err := bad.Validate(params); err == nil {
		t.Error("t=0 should be rejected")
	}
	bad = &SlotProblem{T: 1, Budget: 100}
	if err := bad.Validate(params); err == nil {
		t.Error("no users should be rejected")
	}
	u2 := u
	u2.Delta = 1.5
	bad = &SlotProblem{T: 1, Budget: 100, Users: []UserInput{u2}}
	if err := bad.Validate(params); err == nil {
		t.Error("delta > 1 should be rejected")
	}
	u3 := u
	u3.Rate = []float64{1}
	bad = &SlotProblem{T: 1, Budget: 100, Users: []UserInput{u3}}
	if err := bad.Validate(params); err == nil {
		t.Error("short rate table should be rejected")
	}
}

func randomSlotProblem(rng *rand.Rand, params Params, n int) *SlotProblem {
	users := make([]UserInput, n)
	for i := range users {
		scale := 0.5 + rng.Float64()
		rates := make([]float64, params.Levels)
		for q := range rates {
			rates[q] = ladder[q] * scale
		}
		cap_ := 20 + rng.Float64()*80
		users[i] = testUser(0.5+rng.Float64()*0.5, rng.Float64()*6, cap_, rates)
	}
	return &SlotProblem{
		T:      1 + rng.Intn(500),
		Budget: float64(n) * (10 + rng.Float64()*30),
		Users:  users,
	}
}

func TestDVGreedyHalfApproximation(t *testing.T) {
	params := DefaultSimParams()
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 150; trial++ {
		p := randomSlotProblem(rng, params, 2+rng.Intn(4))
		got := DVGreedy{}.Allocate(params, p)
		opt := Optimal{}.Allocate(params, p)
		// The guarantee is on the achieved objective relative to optimum.
		// h_n can be negative; compare against the base-shifted values to
		// keep the ratio meaningful, and always require got >= opt/2 when
		// the optimum is positive.
		if opt.Value > 0 && got.Value < opt.Value/2-1e-9 {
			t.Fatalf("trial %d: DV %v < half of optimal %v", trial, got.Value, opt.Value)
		}
		if got.Rate > p.Budget+1e-9 {
			t.Fatalf("trial %d: allocation rate %v exceeds budget %v", trial, got.Rate, p.Budget)
		}
	}
}

func TestFractionalBoundDominates(t *testing.T) {
	params := DefaultSimParams()
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 100; trial++ {
		p := randomSlotProblem(rng, params, 2+rng.Intn(3))
		opt := Optimal{}.Allocate(params, p)
		if vp := FractionalUpperBound(params, p); vp < opt.Value-1e-9 {
			t.Fatalf("trial %d: V_p %v below optimum %v", trial, vp, opt.Value)
		}
	}
}

func TestAllocatorsRespectPerUserCaps(t *testing.T) {
	params := DefaultSimParams()
	rng := rand.New(rand.NewSource(23))
	allocators := []Allocator{DVGreedy{}, DensityOnly{}, ValueOnly{}, Optimal{}}
	for trial := 0; trial < 50; trial++ {
		p := randomSlotProblem(rng, params, 3)
		for _, alg := range allocators {
			a := alg.Allocate(params, p)
			for n, l := range a.Levels {
				if l > 1 && p.Users[n].Rate[l-1] > p.Users[n].Cap+1e-9 {
					t.Fatalf("%s violated user %d cap: level %d rate %v > %v",
						alg.Name(), n, l, p.Users[n].Rate[l-1], p.Users[n].Cap)
				}
			}
		}
	}
}

func TestAllocatorNames(t *testing.T) {
	tests := []struct {
		alg  Allocator
		want string
	}{
		{DVGreedy{}, "dvgreedy"},
		{DensityOnly{}, "density"},
		{ValueOnly{}, "value"},
		{Optimal{}, "optimal"},
	}
	for _, tt := range tests {
		if got := tt.alg.Name(); got != tt.want {
			t.Errorf("Name = %q, want %q", got, tt.want)
		}
	}
}

func TestDVGreedyBeatsOrMatchesSinglePasses(t *testing.T) {
	params := DefaultSimParams()
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 100; trial++ {
		p := randomSlotProblem(rng, params, 4)
		dv := DVGreedy{}.Allocate(params, p)
		d := DensityOnly{}.Allocate(params, p)
		v := ValueOnly{}.Allocate(params, p)
		if dv.Value+1e-12 < math.Max(d.Value, v.Value) {
			t.Fatalf("trial %d: DV %v below best single pass (%v, %v)",
				trial, dv.Value, d.Value, v.Value)
		}
	}
}

func TestObjectiveTermsDecomposition(t *testing.T) {
	params := DefaultSimParams()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		p := randomSlotProblem(rng, params, 3)
		for _, u := range p.Users {
			for q := 1; q <= params.Levels; q++ {
				terms := ObjectiveTerms(params, p.T, u, q)
				want := Objective(params, p.T, u, q)
				if got := terms.Quality - terms.Delay - terms.Variance; math.Abs(got-want) > 1e-9 {
					t.Fatalf("terms %+v sum to %v, Objective = %v", terms, got, want)
				}
				if terms.Delay < 0 || terms.Variance < 0 {
					t.Fatalf("negative penalty terms: %+v", terms)
				}
			}
		}
	}
}

func TestAllocateTracedMatchesAllocate(t *testing.T) {
	params := DefaultSimParams()
	rng := rand.New(rand.NewSource(7))
	allocs := []TracingAllocator{DVGreedy{}, DensityOnly{}, ValueOnly{}}
	for trial := 0; trial < 30; trial++ {
		p := randomSlotProblem(rng, params, 6)
		for _, a := range allocs {
			plain := a.Allocate(params, p)
			var tr SlotTrace
			traced := a.AllocateTraced(params, p, &tr)
			if plain.Value != traced.Value || plain.Rate != traced.Rate {
				t.Fatalf("%s: traced %+v != plain %+v", a.Name(), traced, plain)
			}
			// Also accept a nil trace.
			nilTraced := a.AllocateTraced(params, p, nil)
			if nilTraced.Value != plain.Value {
				t.Fatalf("%s: nil-traced value differs", a.Name())
			}
		}
	}
}

func TestDVGreedyTraceExplainsBranch(t *testing.T) {
	params := DefaultSimParams()
	rng := rand.New(rand.NewSource(3))
	sawRejection := false
	for trial := 0; trial < 200 && !sawRejection; trial++ {
		p := randomSlotProblem(rng, params, 6)
		var tr SlotTrace
		DVGreedy{}.AllocateTraced(params, p, &tr)
		if tr.Branch != "density" && tr.Branch != "value" {
			t.Fatalf("branch = %q", tr.Branch)
		}
		for _, rej := range tr.Rejections {
			sawRejection = true
			if rej.Constraint != "user-cap" && rej.Constraint != "budget" {
				t.Fatalf("rejection constraint = %q", rej.Constraint)
			}
			if rej.User < 0 || rej.User >= len(p.Users) {
				t.Fatalf("rejection user out of range: %+v", rej)
			}
			if rej.Level < 2 || rej.Level > params.Levels {
				t.Fatalf("rejection level out of range: %+v", rej)
			}
		}
	}
	if !sawRejection {
		t.Error("no quality_verification rejection observed across 200 random slots")
	}
}
