package core

import (
	"math/rand"
	"testing"
)

// randomHorizon builds a tiny horizon instance with L=3 levels.
func randomHorizon(rng *rand.Rand, users, slots int) *HorizonProblem {
	params := Params{Alpha: 0.02, Beta: 0.5, Levels: 3}
	h := &HorizonProblem{Params: params, Users: users}
	base := []float64{5, 12, 26}
	for t := 0; t < slots; t++ {
		slot := HorizonSlot{
			Budget:  float64(users) * (8 + rng.Float64()*10),
			Rates:   make([][]float64, users),
			Delays:  make([][]float64, users),
			Caps:    make([]float64, users),
			Covered: make([]bool, users),
		}
		for n := 0; n < users; n++ {
			scale := 0.7 + rng.Float64()*0.6
			cap_ := 10 + rng.Float64()*30
			rates := make([]float64, 3)
			delays := make([]float64, 3)
			for q := 0; q < 3; q++ {
				rates[q] = base[q] * scale
				if rates[q] >= cap_ {
					delays[q] = 1000
				} else {
					delays[q] = rates[q] / (cap_ - rates[q]) * 16.7
				}
			}
			slot.Rates[n] = rates
			slot.Delays[n] = delays
			slot.Caps[n] = cap_
			slot.Covered[n] = rng.Float64() < 0.92
		}
		h.Slots = append(h.Slots, slot)
	}
	return h
}

// TestSequentialTracksClairvoyant validates eq. (8) empirically: across
// random tiny instances, sequentially solving (5)-(7) with Algorithm 1
// achieves on average nearly the clairvoyant optimum of (1)-(3), and never
// falls pathologically below it.
func TestSequentialTracksClairvoyant(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	var ratioSum float64
	trials := 20
	for trial := 0; trial < trials; trial++ {
		h := randomHorizon(rng, 2, 4) // (3^2)^4 = 6561 assignments
		_, opt := h.SolveHorizonExhaustive()
		_, seq := h.SolveHorizonSequential(DVGreedy{})
		if opt <= 0 {
			ratioSum++
			continue
		}
		if seq > opt+1e-9 {
			t.Fatalf("trial %d: sequential %v exceeds clairvoyant %v", trial, seq, opt)
		}
		ratioSum += seq / opt
	}
	if avg := ratioSum / float64(trials); avg < 0.85 {
		t.Errorf("sequential/clairvoyant average ratio = %v, want >= 0.85", avg)
	}
}

// TestPerSlotOptimalSequentialAlsoTracks repeats the check with the exact
// per-slot solver: the remaining gap is then purely the cost of the
// decomposition (eq. (8)), not of the 1/2-approximation.
func TestPerSlotOptimalSequentialAlsoTracks(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	var worst = 1.0
	for trial := 0; trial < 10; trial++ {
		h := randomHorizon(rng, 2, 4)
		_, opt := h.SolveHorizonExhaustive()
		_, seq := h.SolveHorizonSequential(Optimal{})
		if opt <= 0 {
			continue
		}
		if r := seq / opt; r < worst {
			worst = r
		}
	}
	if worst < 0.7 {
		t.Errorf("worst decomposition ratio = %v, want >= 0.7", worst)
	}
}

func TestHorizonQoEFeasibility(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	h := randomHorizon(rng, 2, 2)
	// All-max assignment: likely infeasible under the caps/budget; if the
	// checker says ok it must produce a finite value.
	levels := [][]int{{3, 3}, {3, 3}}
	if _, ok := h.QoE(levels); ok {
		// fine: instance was generous
		return
	}
	// All-base must always be feasible.
	base := [][]int{{1, 1}, {1, 1}}
	if _, ok := h.QoE(base); !ok {
		t.Fatal("all-base assignment must be feasible")
	}
}

func TestHorizonEmpty(t *testing.T) {
	h := &HorizonProblem{Params: DefaultSimParams(), Users: 0}
	if q, ok := h.QoE(nil); !ok || q != 0 {
		t.Errorf("empty horizon QoE = (%v, %v)", q, ok)
	}
}

func TestDPOptimalAllocator(t *testing.T) {
	params := DefaultSimParams()
	rng := rand.New(rand.NewSource(64))
	for trial := 0; trial < 30; trial++ {
		p := randomSlotProblem(rng, params, 4)
		dp := DPOptimal{}.Allocate(params, p)
		opt := Optimal{}.Allocate(params, p)
		if dp.Rate > p.Budget+1e-9 {
			t.Fatalf("trial %d: DP allocation violates budget", trial)
		}
		if dp.Value > opt.Value+1e-9 {
			t.Fatalf("trial %d: DP %v above exact %v", trial, dp.Value, opt.Value)
		}
		if opt.Value > 0 && dp.Value < 0.9*opt.Value {
			t.Errorf("trial %d: DP %v too far below exact %v", trial, dp.Value, opt.Value)
		}
	}
	if got := (DPOptimal{}).Name(); got != "dp-optimal" {
		t.Errorf("name = %q", got)
	}
}
