// Package motion provides the 6-DoF motion substrate of the reproduction:
// synthetic user traces standing in for the Firefly motion dataset (25 users
// over two large VR scenes), per-axis linear-regression prediction of the
// next slot's pose (the predictor the paper uses in both the simulation and
// the real system), and the FoV-coverage evaluation that realizes the
// indicator 1_n(t) of Section II.
package motion

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"

	"repro/internal/vrmath"
)

// Trace is a sequence of poses, one per time slot.
type Trace []vrmath.Pose

// Scene describes the walkable area of a VR scene and the character of the
// motion its visitors exhibit.
type Scene struct {
	Name string
	// Width and Depth bound the walkable rectangle [0,Width] x [0,Depth]
	// metres.
	Width, Depth float64
	// WalkSpeed is the mean walking speed in m/s.
	WalkSpeed float64
	// TurnRate controls how quickly users swing their heads (deg/s scale of
	// the orientation process).
	TurnRate float64
	// Jitter is the per-slot orientation noise in degrees; larger values
	// make motion harder to predict (lower delta_n).
	Jitter float64
}

// Scenes returns the two scene profiles used throughout the reproduction,
// standing in for the paper's two large VR scenes (the Firefly dataset) and
// its Unity "Office" scene.
func Scenes() [2]Scene {
	return [2]Scene{
		{Name: "office", Width: 10, Depth: 8, WalkSpeed: 0.8, TurnRate: 45, Jitter: 0.6},
		{Name: "museum", Width: 20, Depth: 15, WalkSpeed: 1.2, TurnRate: 70, Jitter: 1.2},
	}
}

// Generate synthesizes a trace of the given number of slots for one user of
// a scene. Motion is a random-waypoint walk; head yaw follows the walking
// direction through a smoothed process with noise, pitch and roll revert to
// neutral. The generator is deterministic in (scene, user, seed).
func Generate(scene Scene, user int, slots int, slotsPerSecond float64, seed int64) Trace {
	if slotsPerSecond <= 0 {
		slotsPerSecond = 60
	}
	dt := 1 / slotsPerSecond
	rng := rand.New(rand.NewSource(seed ^ int64(user)*0x9E3779B9 ^ int64(len(scene.Name))))

	trace := make(Trace, slots)
	pos := vrmath.Vec3{
		X: rng.Float64() * scene.Width,
		Z: rng.Float64() * scene.Depth,
	}
	target := vrmath.Vec3{
		X: rng.Float64() * scene.Width,
		Z: rng.Float64() * scene.Depth,
	}
	speed := scene.WalkSpeed * (0.7 + 0.6*rng.Float64())
	yaw := rng.Float64()*360 - 180
	pitch := 0.0
	roll := 0.0

	for i := 0; i < slots; i++ {
		// Walk toward the waypoint; pick a new one when close.
		to := target.Sub(pos)
		dist := to.Norm()
		if dist < 0.1 {
			target = vrmath.Vec3{
				X: rng.Float64() * scene.Width,
				Z: rng.Float64() * scene.Depth,
			}
			speed = scene.WalkSpeed * (0.7 + 0.6*rng.Float64())
			to = target.Sub(pos)
			dist = to.Norm()
		}
		step := speed * dt
		if step > dist {
			step = dist
		}
		if dist > 0 {
			pos = pos.Add(to.Scale(step / dist))
		}

		// Head yaw chases the walking direction with exponential smoothing
		// plus a slow wander and white jitter.
		walkYaw := math.Atan2(to.X, to.Z) * 180 / math.Pi
		yawErr := vrmath.AngleDiff(walkYaw, yaw)
		maxTurn := scene.TurnRate * dt
		turn := clamp(yawErr*0.05, -maxTurn, maxTurn)
		yaw = vrmath.NormalizeAngle(yaw + turn + rng.NormFloat64()*scene.Jitter*dt*10)

		// Pitch and roll: mean-reverting with noise.
		pitch = clamp(pitch*0.995+rng.NormFloat64()*scene.Jitter*dt*8, -60, 60)
		roll = clamp(roll*0.99+rng.NormFloat64()*scene.Jitter*dt*4, -30, 30)

		trace[i] = vrmath.Pose{Pos: pos, Yaw: yaw, Pitch: pitch, Roll: roll}
	}
	return trace
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Dataset is a collection of traces indexed by user, mirroring the paper's
// "motion trace dataset ... collected from two large VR scenes among 25
// users".
type Dataset struct {
	Traces []Trace
}

// GenerateDataset builds the standard dataset: users split evenly across the
// two scenes.
func GenerateDataset(users, slots int, slotsPerSecond float64, seed int64) *Dataset {
	scenes := Scenes()
	ds := &Dataset{Traces: make([]Trace, users)}
	for u := 0; u < users; u++ {
		ds.Traces[u] = Generate(scenes[u%2], u, slots, slotsPerSecond, seed)
	}
	return ds
}

// WriteCSV serializes a trace as slot,x,y,z,yaw,pitch,roll rows.
func (tr Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"slot", "x", "y", "z", "yaw", "pitch", "roll"}); err != nil {
		return fmt.Errorf("motion: write header: %w", err)
	}
	for i, p := range tr {
		rec := []string{
			strconv.Itoa(i),
			formatF(p.Pos.X), formatF(p.Pos.Y), formatF(p.Pos.Z),
			formatF(p.Yaw), formatF(p.Pitch), formatF(p.Roll),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("motion: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV.
func ReadCSV(r io.Reader) (Trace, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("motion: read csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("motion: empty csv")
	}
	var trace Trace
	for i, row := range rows[1:] {
		if len(row) != 7 {
			return nil, fmt.Errorf("motion: row %d has %d fields, want 7", i, len(row))
		}
		vals := make([]float64, 6)
		for j := 0; j < 6; j++ {
			v, err := strconv.ParseFloat(row[j+1], 64)
			if err != nil {
				return nil, fmt.Errorf("motion: row %d field %d: %w", i, j+1, err)
			}
			vals[j] = v
		}
		trace = append(trace, vrmath.Pose{
			Pos:   vrmath.Vec3{X: vals[0], Y: vals[1], Z: vals[2]},
			Yaw:   vals[3],
			Pitch: vals[4],
			Roll:  vals[5],
		})
	}
	return trace, nil
}

func formatF(v float64) string { return strconv.FormatFloat(v, 'g', 10, 64) }
