package motion

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/vrmath"
)

func TestGenerateDeterministic(t *testing.T) {
	scene := Scenes()[0]
	a := Generate(scene, 3, 500, 60, 42)
	b := Generate(scene, 3, 500, 60, 42)
	if len(a) != 500 || len(b) != 500 {
		t.Fatalf("lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at slot %d", i)
		}
	}
	c := Generate(scene, 4, 500, 60, 42)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Errorf("different users should produce different traces")
	}
}

func TestGenerateStaysInBounds(t *testing.T) {
	for _, scene := range Scenes() {
		tr := Generate(scene, 1, 5000, 60, 7)
		for i, p := range tr {
			if p.Pos.X < -1e-9 || p.Pos.X > scene.Width+1e-9 ||
				p.Pos.Z < -1e-9 || p.Pos.Z > scene.Depth+1e-9 {
				t.Fatalf("%s slot %d out of bounds: %+v", scene.Name, i, p.Pos)
			}
			if p.Pitch < -90 || p.Pitch > 90 {
				t.Fatalf("%s slot %d pitch out of range: %v", scene.Name, i, p.Pitch)
			}
			if p.Yaw < -180 || p.Yaw >= 180 {
				t.Fatalf("%s slot %d yaw out of range: %v", scene.Name, i, p.Yaw)
			}
		}
	}
}

func TestGenerateMotionIsSmooth(t *testing.T) {
	// Per-slot displacement must respect the walking speed budget; this is
	// what makes linear prediction viable (and the paper's grid caching
	// strategy sound).
	scene := Scenes()[0]
	tr := Generate(scene, 2, 2000, 60, 11)
	maxStep := scene.WalkSpeed * 1.3 / 60 * 1.01
	for i := 1; i < len(tr); i++ {
		if d := tr[i].Pos.Dist(tr[i-1].Pos); d > maxStep {
			t.Fatalf("slot %d moved %v m, budget %v", i, d, maxStep)
		}
	}
}

func TestGenerateDataset(t *testing.T) {
	ds := GenerateDataset(25, 100, 60, 1)
	if len(ds.Traces) != 25 {
		t.Fatalf("traces = %d, want 25", len(ds.Traces))
	}
	for u, tr := range ds.Traces {
		if len(tr) != 100 {
			t.Errorf("user %d trace length = %d", u, len(tr))
		}
	}
}

func TestTraceCSVRoundTrip(t *testing.T) {
	tr := Generate(Scenes()[1], 5, 50, 60, 3)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(tr) {
		t.Fatalf("round trip length %d, want %d", len(back), len(tr))
	}
	for i := range tr {
		if tr[i].Pos.Dist(back[i].Pos) > 1e-6 ||
			math.Abs(tr[i].Yaw-back[i].Yaw) > 1e-6 {
			t.Fatalf("round trip mismatch at %d: %+v vs %+v", i, tr[i], back[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("")); err == nil {
		t.Error("empty csv should error")
	}
	if _, err := ReadCSV(bytes.NewBufferString("h1,h2\n1,2\n")); err == nil {
		t.Error("wrong arity should error")
	}
	bad := "slot,x,y,z,yaw,pitch,roll\n0,a,0,0,0,0,0\n"
	if _, err := ReadCSV(bytes.NewBufferString(bad)); err == nil {
		t.Error("non-numeric field should error")
	}
}

func TestPredictorTracksLinearMotion(t *testing.T) {
	p := NewPredictor(6)
	// Constant-velocity motion along X, constant yaw drift.
	for i := 0; i < 10; i++ {
		p.Observe(vrmath.Pose{
			Pos: vrmath.Vec3{X: float64(i) * 0.01},
			Yaw: float64(i) * 0.5,
		})
	}
	got := p.Predict()
	if math.Abs(got.Pos.X-0.10) > 1e-6 {
		t.Errorf("predicted X = %v, want 0.10", got.Pos.X)
	}
	if math.Abs(got.Yaw-5.0) > 1e-6 {
		t.Errorf("predicted yaw = %v, want 5.0", got.Yaw)
	}
}

func TestPredictorHandlesYawSeam(t *testing.T) {
	p := NewPredictor(6)
	// Yaw sweeps across the +/-180 seam at 2 deg/slot: 174, 176, 178, -180,
	// -178... Prediction must continue the sweep, not jump.
	yaws := []float64{174, 176, 178, -180, -178, -176}
	for _, y := range yaws {
		p.Observe(vrmath.Pose{Yaw: y})
	}
	got := p.Predict()
	if math.Abs(vrmath.AngleDiff(got.Yaw, -174)) > 1e-6 {
		t.Errorf("predicted yaw = %v, want -174", got.Yaw)
	}
}

func TestPredictorEmpty(t *testing.T) {
	p := NewPredictor(0)
	got := p.Predict()
	if got != (vrmath.Pose{}) {
		t.Errorf("empty predictor should return zero pose, got %+v", got)
	}
}

func TestPredictorAccuracyOnGeneratedTraces(t *testing.T) {
	// End-to-end: on smooth synthetic motion, the delivered margin covers
	// the actual FoV in the overwhelming majority of slots — delta_n should
	// land in the high-accuracy regime the paper relies on.
	cov := DefaultCoverage()
	for _, scene := range Scenes() {
		tr := Generate(scene, 9, 3000, 60, 17)
		p := NewPredictor(DefaultWindow)
		covered, total := 0, 0
		for i, pose := range tr {
			if i > DefaultWindow {
				pred := p.Predict()
				if cov.Covered(pred, pose) {
					covered++
				}
				total++
			}
			p.Observe(pose)
		}
		rate := float64(covered) / float64(total)
		if rate < 0.85 {
			t.Errorf("%s: coverage rate %v, want >= 0.85", scene.Name, rate)
		}
		if rate == 1 {
			t.Logf("%s: coverage is perfect; imperfect prediction is expected", scene.Name)
		}
	}
}

func TestCoveredPositionTolerance(t *testing.T) {
	cov := DefaultCoverage()
	a := vrmath.Pose{Pos: vrmath.Vec3{X: 1, Z: 1}}
	b := a
	if !cov.Covered(a, b) {
		t.Errorf("identical poses should be covered")
	}
	b.Pos.X += 0.2 // 4 cells away
	if cov.Covered(a, b) {
		t.Errorf("large position error should break coverage")
	}
}

func TestCoveredOrientationMargin(t *testing.T) {
	cov := DefaultCoverage()
	pred := vrmath.Pose{Yaw: 0}
	actual := vrmath.Pose{Yaw: 10} // within 15 degree margin
	if !cov.Covered(pred, actual) {
		t.Errorf("10 degree yaw error should be inside the 15 degree margin")
	}
	actual.Yaw = 40 // far outside margin
	if cov.Covered(pred, actual) {
		t.Errorf("40 degree yaw error should not be covered")
	}
}
