package motion

import (
	"repro/internal/estimate"
	"repro/internal/vrmath"
)

// Predictor forecasts the next slot's 6-DoF pose with an independent linear
// regression per axis, "which follows the methodology in [Firefly]"
// (Section V). Yaw is unwrapped into a cumulative angle before regression so
// that crossing the +/-180 seam does not break the fit.
type Predictor struct {
	x, y, z     *estimate.SlidingWindow
	yawUnwrap   *estimate.SlidingWindow
	pitch, roll *estimate.SlidingWindow

	lastYaw   float64
	cumYaw    float64
	havePrior bool
}

// DefaultWindow is the number of recent slots the regression looks at.
const DefaultWindow = 8

// NewPredictor returns a predictor with the given regression window
// (minimum 2; DefaultWindow if <= 0).
func NewPredictor(window int) *Predictor {
	if window <= 0 {
		window = DefaultWindow
	}
	return &Predictor{
		x:         estimate.NewSlidingWindow(window),
		y:         estimate.NewSlidingWindow(window),
		z:         estimate.NewSlidingWindow(window),
		yawUnwrap: estimate.NewSlidingWindow(window),
		pitch:     estimate.NewSlidingWindow(window),
		roll:      estimate.NewSlidingWindow(window),
	}
}

// Observe feeds the pose of the current slot.
func (p *Predictor) Observe(pose vrmath.Pose) {
	pose = pose.Normalize()
	if !p.havePrior {
		p.cumYaw = pose.Yaw
		p.havePrior = true
	} else {
		p.cumYaw += vrmath.AngleDiff(pose.Yaw, p.lastYaw)
	}
	p.lastYaw = pose.Yaw

	p.x.Push(pose.Pos.X)
	p.y.Push(pose.Pos.Y)
	p.z.Push(pose.Pos.Z)
	p.yawUnwrap.Push(p.cumYaw)
	p.pitch.Push(pose.Pitch)
	p.roll.Push(pose.Roll)
}

// Predict extrapolates the next slot's pose. Before any observation it
// returns the zero pose.
func (p *Predictor) Predict() vrmath.Pose {
	return vrmath.Pose{
		Pos: vrmath.Vec3{
			X: p.x.PredictNext(),
			Y: p.y.PredictNext(),
			Z: p.z.PredictNext(),
		},
		Yaw:   vrmath.NormalizeAngle(p.yawUnwrap.PredictNext()),
		Pitch: vrmath.ClampPitch(p.pitch.PredictNext()),
		Roll:  vrmath.NormalizeAngle(p.roll.PredictNext()),
	}
}

// CoverageConfig parametrizes the FoV-coverage check behind 1_n(t).
type CoverageConfig struct {
	FoV vrmath.FoV
	// MarginDeg is the extra margin delivered around the predicted FoV
	// ("we deliver a portion that covers the FoV with some fixed margin").
	MarginDeg float64
	// PosToleranceM is the maximum position error (metres) for the
	// delivered cell content to still match the user's cell. The paper's
	// margin only helps orientation (footnote 1); position errors beyond
	// the grid granularity miss.
	PosToleranceM float64
}

// DefaultCoverage matches the system defaults: the default FoV, a 15 degree
// margin, and one grid cell of position tolerance.
func DefaultCoverage() CoverageConfig {
	return CoverageConfig{
		FoV:           vrmath.DefaultFoV,
		MarginDeg:     15,
		PosToleranceM: 0.05,
	}
}

// Covered evaluates the indicator 1_n(t): does the portion delivered for
// the predicted pose (FoV plus margin) cover the actual FoV, and is the
// predicted position close enough for the delivered cell content to match?
func (c CoverageConfig) Covered(predicted, actual vrmath.Pose) bool {
	if predicted.Pos.Dist(actual.Pos) > c.PosToleranceM {
		return false
	}
	delivered := vrmath.Rect(predicted, c.FoV.Expand(c.MarginDeg))
	needed := vrmath.Rect(actual, c.FoV)
	return delivered.Covers(needed)
}
