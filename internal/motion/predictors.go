package motion

import "repro/internal/vrmath"

// PosePredictor forecasts the next slot's pose from observed history. The
// paper uses per-axis linear regression (Predictor); Static and
// DeadReckoning are ablation baselines that quantify how much the
// regression buys in prediction-success probability delta_n.
type PosePredictor interface {
	// Observe feeds the pose of the current slot.
	Observe(vrmath.Pose)
	// Predict extrapolates the next slot's pose.
	Predict() vrmath.Pose
}

var _ PosePredictor = (*Predictor)(nil)

// Static predicts that the user does not move: the next pose equals the
// last observed one. It is the weakest baseline — pure reliance on the FoV
// margin.
type Static struct {
	last vrmath.Pose
	seen bool
}

// NewStatic returns a static predictor.
func NewStatic() *Static { return &Static{} }

// Observe implements PosePredictor.
func (s *Static) Observe(p vrmath.Pose) {
	s.last = p.Normalize()
	s.seen = true
}

// Predict implements PosePredictor.
func (s *Static) Predict() vrmath.Pose { return s.last }

var _ PosePredictor = (*Static)(nil)

// DeadReckoning extrapolates with the instantaneous velocity between the
// last two observed poses — a one-sample version of the linear regression.
type DeadReckoning struct {
	last, prev vrmath.Pose
	count      int
}

// NewDeadReckoning returns a dead-reckoning predictor.
func NewDeadReckoning() *DeadReckoning { return &DeadReckoning{} }

// Observe implements PosePredictor.
func (d *DeadReckoning) Observe(p vrmath.Pose) {
	d.prev = d.last
	d.last = p.Normalize()
	d.count++
}

// Predict implements PosePredictor.
func (d *DeadReckoning) Predict() vrmath.Pose {
	if d.count < 2 {
		return d.last
	}
	return vrmath.Pose{
		Pos: vrmath.Vec3{
			X: 2*d.last.Pos.X - d.prev.Pos.X,
			Y: 2*d.last.Pos.Y - d.prev.Pos.Y,
			Z: 2*d.last.Pos.Z - d.prev.Pos.Z,
		},
		Yaw:   vrmath.NormalizeAngle(d.last.Yaw + vrmath.AngleDiff(d.last.Yaw, d.prev.Yaw)),
		Pitch: vrmath.ClampPitch(2*d.last.Pitch - d.prev.Pitch),
		Roll:  vrmath.NormalizeAngle(d.last.Roll + vrmath.AngleDiff(d.last.Roll, d.prev.Roll)),
	}
}

var _ PosePredictor = (*DeadReckoning)(nil)

// EvaluatePredictor replays a trace through a predictor and returns the
// empirical coverage rate delta (the fraction of slots where the delivered
// margin-expanded FoV would cover the actual one) after a warmup.
func EvaluatePredictor(p PosePredictor, trace Trace, cov CoverageConfig, warmup int) float64 {
	if warmup < 1 {
		warmup = 1
	}
	covered, total := 0, 0
	for i, pose := range trace {
		if i >= warmup {
			if cov.Covered(p.Predict(), pose) {
				covered++
			}
			total++
		}
		p.Observe(pose)
	}
	if total == 0 {
		return 0
	}
	return float64(covered) / float64(total)
}
