package motion

import (
	"testing"

	"repro/internal/vrmath"
)

func TestStaticPredictsLastPose(t *testing.T) {
	p := NewStatic()
	if got := p.Predict(); got != (vrmath.Pose{}) {
		t.Errorf("unseen static predicts %+v", got)
	}
	pose := vrmath.Pose{Pos: vrmath.Vec3{X: 3}, Yaw: 50}
	p.Observe(pose)
	if got := p.Predict(); got != pose {
		t.Errorf("static predicts %+v, want %+v", got, pose)
	}
}

func TestDeadReckoningExtrapolatesVelocity(t *testing.T) {
	p := NewDeadReckoning()
	p.Observe(vrmath.Pose{Pos: vrmath.Vec3{X: 1}, Yaw: 10})
	p.Observe(vrmath.Pose{Pos: vrmath.Vec3{X: 2}, Yaw: 14})
	got := p.Predict()
	if got.Pos.X != 3 {
		t.Errorf("X = %v, want 3", got.Pos.X)
	}
	if got.Yaw != 18 {
		t.Errorf("Yaw = %v, want 18", got.Yaw)
	}
}

func TestDeadReckoningSingleObservation(t *testing.T) {
	p := NewDeadReckoning()
	pose := vrmath.Pose{Yaw: -20}
	p.Observe(pose)
	if got := p.Predict(); got != pose {
		t.Errorf("single-observation prediction = %+v, want %+v", got, pose)
	}
}

func TestDeadReckoningAcrossSeam(t *testing.T) {
	p := NewDeadReckoning()
	p.Observe(vrmath.Pose{Yaw: 176})
	p.Observe(vrmath.Pose{Yaw: 179})
	got := p.Predict()
	if diff := vrmath.AngleDiff(got.Yaw, -178); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("Yaw = %v, want -178", got.Yaw)
	}
}

// TestPredictorAblation quantifies the paper's design choice. With the
// default 15-degree margin and one-cell tolerance, per-slot motion at
// 60 FPS is tiny and every predictor saturates; the regression pays off
// when coverage is tight (small margin, sub-cell position tolerance),
// where extrapolating the walk beats assuming the user stands still.
func TestPredictorAblation(t *testing.T) {
	scene := Scenes()[1] // the fast scene stresses prediction most
	trace := Generate(scene, 5, 4000, 60, 23)

	// Default coverage: all predictors near-saturate.
	cov := DefaultCoverage()
	linear := EvaluatePredictor(NewPredictor(DefaultWindow), trace, cov, DefaultWindow+1)
	if linear < 0.9 {
		t.Errorf("linear coverage %v too low under default margins", linear)
	}

	// Tight coverage: 2-degree margin, 1.5 cm position tolerance.
	tight := CoverageConfig{FoV: cov.FoV, MarginDeg: 2, PosToleranceM: 0.015}
	linearT := EvaluatePredictor(NewPredictor(DefaultWindow), trace, tight, DefaultWindow+1)
	deadT := EvaluatePredictor(NewDeadReckoning(), trace, tight, DefaultWindow+1)
	staticT := EvaluatePredictor(NewStatic(), trace, tight, DefaultWindow+1)

	if linearT <= staticT {
		t.Errorf("tight coverage: linear %v should beat static %v", linearT, staticT)
	}
	if linearT < 0.5 {
		t.Errorf("tight coverage: linear %v collapsed", linearT)
	}
	t.Logf("tight coverage: linear=%.4f dead=%.4f static=%.4f", linearT, deadT, staticT)
}

func TestEvaluatePredictorEmpty(t *testing.T) {
	if got := EvaluatePredictor(NewStatic(), nil, DefaultCoverage(), 0); got != 0 {
		t.Errorf("empty trace coverage = %v", got)
	}
}
