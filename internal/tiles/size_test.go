package tiles

import (
	"testing"
	"testing/quick"
)

// TestTileRateConvexIncreasing is the Fig. 1a property: for every content,
// size grows convexly with the quality level.
func TestTileRateConvexIncreasing(t *testing.T) {
	m := NewSizeModel(1)
	f := func(x, z int16, tile8 uint8) bool {
		cell := CellID{X: int32(x), Z: int32(z)}
		tile := TileID(tile8 % NumTiles)
		rates := make([]float64, Levels)
		for q := 1; q <= Levels; q++ {
			rates[q-1] = m.TileRate(cell, tile, q)
			if q > 1 && rates[q-1] <= rates[q-2] {
				return false // must be strictly increasing
			}
		}
		for q := 2; q < Levels; q++ {
			inc1 := rates[q-1] - rates[q-2]
			inc2 := rates[q] - rates[q-1]
			if inc2 < inc1-1e-9 {
				return false // increments must not shrink: convex
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTileRateContentDependent(t *testing.T) {
	m := NewSizeModel(1)
	a := m.TileRate(CellID{0, 0}, 0, 3)
	b := m.TileRate(CellID{17, 23}, 2, 3)
	if a == b {
		t.Errorf("different contents should have different sizes (got %v twice)", a)
	}
	// Deterministic: same input, same output.
	if got := m.TileRate(CellID{0, 0}, 0, 3); got != a {
		t.Errorf("size model is not deterministic: %v vs %v", got, a)
	}
}

func TestTileRateSpreadBounds(t *testing.T) {
	m := NewSizeModel(7)
	for x := int32(-20); x <= 20; x++ {
		for tile := TileID(0); tile < NumTiles; tile++ {
			r := m.TileRate(CellID{x, -x}, tile, 1)
			lo, hi := baseTileRates[0]*0.75, baseTileRates[0]*1.25
			if r < lo || r > hi {
				t.Fatalf("rate %v outside [%v, %v]", r, lo, hi)
			}
		}
	}
}

func TestTileRateLevelClamping(t *testing.T) {
	m := NewSizeModel(1)
	cell := CellID{1, 1}
	if m.TileRate(cell, 0, 0) != m.TileRate(cell, 0, 1) {
		t.Errorf("level 0 should clamp to 1")
	}
	if m.TileRate(cell, 0, 9) != m.TileRate(cell, 0, Levels) {
		t.Errorf("level 9 should clamp to %d", Levels)
	}
}

func TestRateTableMatchesSelectionRate(t *testing.T) {
	m := NewSizeModel(3)
	cell := CellID{5, -2}
	sel := []TileID{0, 1, 3}
	table := m.RateTable(cell, sel)
	if len(table) != Levels {
		t.Fatalf("table length = %d", len(table))
	}
	for q := 1; q <= Levels; q++ {
		if table[q-1] != m.SelectionRate(cell, sel, q) {
			t.Errorf("table[%d] mismatch", q-1)
		}
	}
	// Convexity carries over to selections.
	for q := 2; q < Levels; q++ {
		inc1 := table[q-1] - table[q-2]
		inc2 := table[q] - table[q-1]
		if inc2 < inc1-1e-9 {
			t.Errorf("selection table not convex at q=%d", q)
		}
	}
}

func TestMediumQualityNearServerBudget(t *testing.T) {
	// The paper sets the per-user server budget to 36 Mbps because that is
	// "the average rate requirement of the tiles by a medium quality level".
	// Check that a typical 2-3 tile selection at levels 3-4 brackets 36.
	m := NewSizeModel(1)
	var sum float64
	var count int
	for x := int32(0); x < 50; x++ {
		cell := CellID{x, x * 3}
		sum += m.SelectionRate(cell, []TileID{0, 1}, 4)
		sum += m.SelectionRate(cell, []TileID{0, 1, 2}, 3)
		count += 2
	}
	avg := sum / float64(count)
	if avg < 25 || avg > 50 {
		t.Errorf("medium-quality selection averages %v Mbps, want near 36", avg)
	}
}

func TestTileBytes(t *testing.T) {
	m := NewSizeModel(1)
	cell := CellID{0, 0}
	b60 := m.TileBytes(cell, 0, 3, 60)
	b30 := m.TileBytes(cell, 0, 3, 30)
	if b30 < 2*b60-8 || b30 > 2*b60+8 {
		t.Errorf("halving fps should double bytes: %d vs %d", b60, b30)
	}
	if m.TileBytes(cell, 0, 3, 0) != b60 {
		t.Errorf("fps 0 should default to 60")
	}
	wantBits := m.TileRate(cell, 0, 3) * 1e6 / 60
	if got := float64(b60 * 8); got < wantBits || got > wantBits+8 {
		t.Errorf("bytes %v do not match rate %v bits", got, wantBits)
	}
}
