package tiles_test

import (
	"fmt"

	"repro/internal/tiles"
	"repro/internal/vrmath"
)

// ExampleForView selects the tiles to deliver for a user looking slightly
// up and to the left, with the FoV margin the paper uses to absorb
// prediction error.
func ExampleForView() {
	pose := vrmath.Pose{Pos: vrmath.Vec3{X: 1.0, Z: 2.5}, Yaw: -60, Pitch: 10}
	sel := tiles.ForView(pose, vrmath.DefaultFoV, 15)
	fmt.Println("tiles:", sel)

	cell := tiles.CellFor(pose.Pos)
	fmt.Printf("cell: (%d, %d)\n", cell.X, cell.Z)

	id, _ := tiles.PackVideoID(cell, sel[0], 4)
	fmt.Println("video id:", id)
	// Output:
	// tiles: [0 1 2 3]
	// cell: (20, 50)
	// video id: cell(20,50)/t0/q4
}

// ExampleSizeModel_RateTable builds the rate ladder f^R(q) the allocator
// consumes for a two-tile selection.
func ExampleSizeModel_RateTable() {
	m := tiles.NewSizeModel(1)
	cell := tiles.CellID{X: 20, Z: 50}
	table := m.RateTable(cell, []tiles.TileID{0, 2})
	for q, rate := range table {
		crf, _ := tiles.CRFForLevel(q + 1)
		fmt.Printf("level %d (CRF %d): %.1f Mbps\n", q+1, crf, rate)
	}
	// Output:
	// level 1 (CRF 35): 9.3 Mbps
	// level 2 (CRF 31): 15.2 Mbps
	// level 3 (CRF 27): 24.5 Mbps
	// level 4 (CRF 23): 39.7 Mbps
	// level 5 (CRF 19): 64.2 Mbps
	// level 6 (CRF 15): 103.9 Mbps
}
