package tiles

import (
	"math"
)

// baseTileRates[l] is the streaming rate in Mbps of one tile encoded at
// quality level l+1, for a nominal content. The ladder is convex in the
// level (increasing increments), reproducing the shape of Fig. 1a, and is
// calibrated so that a typical 2-3 tile selection at a medium level needs
// about 36 Mbps — the paper's per-user server budget ("36 Mbps times the
// number of users, which respects the average rate requirement of the tiles
// by a medium quality level").
var baseTileRates = [Levels]float64{4.0, 6.5, 10.5, 17.0, 27.5, 44.5}

// SizeModel produces deterministic per-content tile sizes. Different cells
// and tiles get different (but fixed) complexity multipliers, mimicking the
// content dependence visible in Fig. 1a where two contents trace two
// distinct convex curves.
type SizeModel struct {
	// Spread is the half-width of the content-complexity multiplier range;
	// a tile's multiplier lies in [1-Spread, 1+Spread]. Default 0.25.
	Spread float64
	// Seed decorrelates size models of different scenes.
	Seed uint64
}

// NewSizeModel returns a size model with the default spread.
func NewSizeModel(seed uint64) *SizeModel { return &SizeModel{Spread: 0.25, Seed: seed} }

// complexity returns the deterministic multiplier of a (cell, tile) pair.
func (m *SizeModel) complexity(cell CellID, tile TileID) float64 {
	h := splitmix(m.Seed ^ uint64(uint32(cell.X))<<32 ^ uint64(uint32(cell.Z))<<2 ^ uint64(tile))
	u := float64(h>>11) / float64(1<<53) // uniform in [0, 1)
	spread := m.Spread
	if spread <= 0 {
		spread = 0.25
	}
	return 1 - spread + 2*spread*u
}

// TileRate returns the rate in Mbps needed to stream one tile of the given
// cell at the given quality level. It is convex and increasing in the
// level for every content.
func (m *SizeModel) TileRate(cell CellID, tile TileID, level int) float64 {
	if level < 1 {
		level = 1
	}
	if level > Levels {
		level = Levels
	}
	return baseTileRates[level-1] * m.complexity(cell, tile)
}

// SelectionRate returns f^R_c(q): the total rate in Mbps of delivering the
// given tiles of a cell at quality level q. This is the weight function of
// the knapsack problem.
func (m *SizeModel) SelectionRate(cell CellID, sel []TileID, level int) float64 {
	var sum float64
	for _, t := range sel {
		sum += m.TileRate(cell, t, level)
	}
	return sum
}

// RateTable returns the full quality ladder of a selection: table[q-1] is
// SelectionRate at level q. The table is convex and increasing in q.
func (m *SizeModel) RateTable(cell CellID, sel []TileID) []float64 {
	table := make([]float64, Levels)
	for q := 1; q <= Levels; q++ {
		table[q-1] = m.SelectionRate(cell, sel, q)
	}
	return table
}

// RateTableInto is RateTable writing into caller-provided table
// (len(table) must be Levels); identical values, no allocation.
func (m *SizeModel) RateTableInto(table []float64, cell CellID, sel []TileID) {
	for q := 1; q <= Levels; q++ {
		table[q-1] = m.SelectionRate(cell, sel, q)
	}
}

// TileBytes converts a tile's rate into the payload size in bytes of one
// slot's frame at the given display rate (frames per second).
func (m *SizeModel) TileBytes(cell CellID, tile TileID, level int, fps float64) int {
	if fps <= 0 {
		fps = 60
	}
	bits := m.TileRate(cell, tile, level) * 1e6 / fps
	return int(math.Ceil(bits / 8))
}

// splitmix is the SplitMix64 hash, used for deterministic per-content
// variation without carrying rand state.
func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
