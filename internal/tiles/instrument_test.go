package tiles

import (
	"testing"

	"repro/internal/obs"
)

// TestStoreInstrument checks the cache counters mirror into obs instruments
// and the hit ratio tracks Stats.
func TestStoreInstrument(t *testing.T) {
	s := NewStore(NewSizeModel(1), 8, 60)
	reg := obs.NewRegistry()
	hits := reg.Counter("hits")
	misses := reg.Counter("misses")
	s.Instrument(hits, misses)

	a := mustID(t, 0, 0, 0, 1)
	b := mustID(t, 0, 0, 1, 1)
	s.Payload(a) // miss
	s.Payload(a) // hit
	s.Payload(b) // miss
	s.Payload(a) // hit
	s.Payload(b) // hit

	if got := hits.Value(); got != 3 {
		t.Errorf("hit counter = %d, want 3", got)
	}
	if got := misses.Value(); got != 2 {
		t.Errorf("miss counter = %d, want 2", got)
	}
	sh, sm := s.Stats()
	if sh != 3 || sm != 2 {
		t.Errorf("Stats = (%d,%d), want (3,2)", sh, sm)
	}
	if got, want := s.HitRatio(), 3.0/5.0; got != want {
		t.Errorf("HitRatio = %v, want %v", got, want)
	}
}

// TestStoreUninstrumented: counters stay optional; a bare store must not
// panic and must report a zero ratio before any lookup.
func TestStoreUninstrumented(t *testing.T) {
	s := NewStore(NewSizeModel(1), 8, 60)
	if got := s.HitRatio(); got != 0 {
		t.Errorf("empty store HitRatio = %v, want 0", got)
	}
	s.Payload(mustID(t, 1, 2, 0, 1)) // nil counters: must be a no-op, not a panic
	if got := s.HitRatio(); got != 0 {
		t.Errorf("all-miss HitRatio = %v, want 0", got)
	}
}
