package tiles

import (
	"testing"
	"testing/quick"

	"repro/internal/vrmath"
)

func TestTileSpansPartitionSphere(t *testing.T) {
	var yawCover, pitchCover float64
	for id := TileID(0); id < NumTiles; id++ {
		yawLo, yawHi, pitchLo, pitchHi := id.Span()
		if yawHi <= yawLo || pitchHi <= pitchLo {
			t.Errorf("tile %d has degenerate span", id)
		}
		yawCover += (yawHi - yawLo) * (pitchHi - pitchLo)
		_ = pitchCover
	}
	if yawCover != 360*180 {
		t.Errorf("tiles cover %v deg^2, want %v", yawCover, 360*180)
	}
}

func TestForRectCenterView(t *testing.T) {
	// Looking straight ahead (yaw 0, pitch 0) with a 120x60 FoV touches all
	// four tiles (the view straddles both yaw halves and both pitch halves).
	got := ForView(vrmath.Pose{}, vrmath.FoV{HDeg: 120, VDeg: 60}, 0)
	if len(got) != 4 {
		t.Errorf("central view overlaps %d tiles, want 4: %v", len(got), got)
	}
}

func TestForRectCornerView(t *testing.T) {
	// Looking up-left, narrow FoV: only tile 0.
	p := vrmath.Pose{Yaw: -90, Pitch: 45}
	got := ForView(p, vrmath.FoV{HDeg: 60, VDeg: 40}, 0)
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("corner view = %v, want [0]", got)
	}
}

func TestForRectSeamView(t *testing.T) {
	// Looking at the +/-180 seam, slightly up: tiles 0 and 1.
	p := vrmath.Pose{Yaw: -179, Pitch: 45}
	got := ForView(p, vrmath.FoV{HDeg: 60, VDeg: 40}, 0)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("seam view = %v, want [0 1]", got)
	}
}

func TestForViewNeverEmptyProperty(t *testing.T) {
	f := func(yaw16, pitch16 int16, h8, v8 uint8) bool {
		p := vrmath.Pose{
			Yaw:   float64(yaw16) / 100,
			Pitch: float64(pitch16%90) / 2,
		}.Normalize()
		fov := vrmath.FoV{HDeg: 30 + float64(h8%150), VDeg: 20 + float64(v8%100)}
		return len(ForView(p, fov, 0)) >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestMarginOnlyAddsTiles(t *testing.T) {
	f := func(yaw16, pitch16 int16, m8 uint8) bool {
		p := vrmath.Pose{
			Yaw:   float64(yaw16) / 100,
			Pitch: float64(pitch16%80) / 2,
		}.Normalize()
		fov := vrmath.DefaultFoV
		base := ForView(p, fov, 0)
		wide := ForView(p, fov, float64(m8%60))
		set := make(map[TileID]bool, len(wide))
		for _, id := range wide {
			set[id] = true
		}
		for _, id := range base {
			if !set[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCellFor(t *testing.T) {
	tests := []struct {
		x, z  float64
		wantX int32
		wantZ int32
	}{
		{0, 0, 0, 0},
		{0.049, 0.049, 0, 0},
		{0.05, 0.05, 1, 1},
		{-0.01, -0.06, -1, -2},
		{1.0, -1.0, 20, -20},
	}
	for _, tt := range tests {
		got := CellFor(vrmath.Vec3{X: tt.x, Z: tt.z})
		if got.X != tt.wantX || got.Z != tt.wantZ {
			t.Errorf("CellFor(%v, %v) = %+v, want {%d %d}", tt.x, tt.z, got, tt.wantX, tt.wantZ)
		}
	}
}

func TestCRFMapping(t *testing.T) {
	// Paper: CRF {15,19,23,27,31,35} <-> levels {6,5,4,3,2,1}.
	wantByLevel := map[int]int{1: 35, 2: 31, 3: 27, 4: 23, 5: 19, 6: 15}
	for level, crf := range wantByLevel {
		got, err := CRFForLevel(level)
		if err != nil || got != crf {
			t.Errorf("CRFForLevel(%d) = %d, %v; want %d", level, got, err, crf)
		}
		back, err := LevelForCRF(crf)
		if err != nil || back != level {
			t.Errorf("LevelForCRF(%d) = %d, %v; want %d", crf, back, err, level)
		}
	}
	if _, err := CRFForLevel(0); err == nil {
		t.Error("level 0 should error")
	}
	if _, err := CRFForLevel(7); err == nil {
		t.Error("level 7 should error")
	}
	if _, err := LevelForCRF(20); err == nil {
		t.Error("unknown CRF should error")
	}
}

func TestVideoIDRoundTrip(t *testing.T) {
	f := func(x, z int16, tile8, level8 uint8) bool {
		cell := CellID{X: int32(x), Z: int32(z)}
		tile := TileID(tile8 % NumTiles)
		level := int(level8%Levels) + 1
		id, err := PackVideoID(cell, tile, level)
		if err != nil {
			return false
		}
		c2, t2, l2 := id.Unpack()
		return c2 == cell && t2 == tile && l2 == level
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVideoIDUnique(t *testing.T) {
	seen := make(map[VideoID]bool)
	for x := int32(-3); x <= 3; x++ {
		for z := int32(-3); z <= 3; z++ {
			for tile := TileID(0); tile < NumTiles; tile++ {
				for level := 1; level <= Levels; level++ {
					id, err := PackVideoID(CellID{x, z}, tile, level)
					if err != nil {
						t.Fatal(err)
					}
					if seen[id] {
						t.Fatalf("duplicate id %v", id)
					}
					seen[id] = true
				}
			}
		}
	}
}

func TestVideoIDErrors(t *testing.T) {
	if _, err := PackVideoID(CellID{}, 0, 0); err == nil {
		t.Error("level 0 should error")
	}
	if _, err := PackVideoID(CellID{}, 9, 1); err == nil {
		t.Error("tile 9 should error")
	}
	if _, err := PackVideoID(CellID{X: 1 << 24}, 0, 1); err == nil {
		t.Error("huge cell should error")
	}
}

func TestVideoIDString(t *testing.T) {
	id, err := PackVideoID(CellID{X: 2, Z: -3}, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := id.String(); got != "cell(2,-3)/t1/q4" {
		t.Errorf("String = %q", got)
	}
}
