package tiles

import (
	"container/list"
	"encoding/binary"
	"sync"

	"repro/internal/obs"
)

// Store is the offline-rendered content database: it serves the payload of
// any video ID on demand. Payload bytes are deterministic pseudo-random data
// of the size the SizeModel dictates, standing in for the paper's 171 GB of
// pre-encoded tiles. A bounded LRU buffer fronts the generator, mirroring
// the server's in-memory tile cache that "avoids the swapping overhead".
type Store struct {
	model *SizeModel
	fps   float64

	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used
	cache    map[VideoID]*storedTile
	hits     int
	misses   int

	// Optional observability counters (nil-safe no-ops when unset).
	hitCounter  *obs.Counter
	missCounter *obs.Counter
}

type storedTile struct {
	payload []byte
	elem    *list.Element
}

// NewStore returns a store over the given size model. capacity bounds the
// number of cached tiles (<= 0 means 4096). fps sets the display rate used
// to convert rates to per-frame bytes.
func NewStore(model *SizeModel, capacity int, fps float64) *Store {
	if capacity <= 0 {
		capacity = 4096
	}
	if fps <= 0 {
		fps = 60
	}
	return &Store{
		model:    model,
		fps:      fps,
		capacity: capacity,
		order:    list.New(),
		cache:    make(map[VideoID]*storedTile, capacity),
	}
}

// Payload returns the encoded bytes of a tile, generating and caching them
// if necessary. The returned slice must not be modified.
func (s *Store) Payload(id VideoID) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()

	if t, ok := s.cache[id]; ok {
		s.order.MoveToFront(t.elem)
		s.hits++
		s.hitCounter.Inc()
		return t.payload
	}
	s.misses++
	s.missCounter.Inc()
	cell, tile, level := id.Unpack()
	n := s.model.TileBytes(cell, tile, level, s.fps)
	payload := synthesize(uint64(id), n)

	t := &storedTile{payload: payload}
	t.elem = s.order.PushFront(id)
	s.cache[id] = t
	for s.order.Len() > s.capacity {
		back := s.order.Back()
		evicted, ok := back.Value.(VideoID)
		if !ok {
			break
		}
		s.order.Remove(back)
		delete(s.cache, evicted)
	}
	return payload
}

// Instrument mirrors the cache hit/miss counters into observability
// instruments (nil instruments disable mirroring). Call before serving.
func (s *Store) Instrument(hits, misses *obs.Counter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hitCounter = hits
	s.missCounter = misses
}

// HitRatio returns hits/(hits+misses), or 0 before any lookup.
func (s *Store) HitRatio() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if total := s.hits + s.misses; total > 0 {
		return float64(s.hits) / float64(total)
	}
	return 0
}

// Stats returns cache hit/miss counters.
func (s *Store) Stats() (hits, misses int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses
}

// Cached returns the number of tiles currently buffered.
func (s *Store) Cached() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order.Len()
}

// synthesize produces n deterministic bytes derived from the seed, so that
// a tile's payload is identical wherever it is generated (useful for
// end-to-end integrity checks in the transport tests).
func synthesize(seed uint64, n int) []byte {
	out := make([]byte, n)
	var block [8]byte
	x := seed
	for i := 0; i < n; i += 8 {
		x = splitmix(x)
		binary.LittleEndian.PutUint64(block[:], x)
		copy(out[i:], block[:])
	}
	return out
}

// ClientRAM models the user-side tile memory of Section V: the client keeps
// received tiles until a device-specific threshold is reached, then releases
// the oldest tiles and tells the server (so it knows to retransmit them if
// requested again).
type ClientRAM struct {
	mu        sync.Mutex
	threshold int
	order     *list.List // front = oldest
	held      map[VideoID]*list.Element
}

// NewClientRAM returns a RAM model holding up to threshold tiles (minimum 1).
func NewClientRAM(threshold int) *ClientRAM {
	if threshold < 1 {
		threshold = 1
	}
	return &ClientRAM{
		threshold: threshold,
		order:     list.New(),
		held:      make(map[VideoID]*list.Element, threshold),
	}
}

// Add records a received tile and returns the IDs released to stay under
// the threshold (empty if none). Adding an already-held tile refreshes its
// age and releases nothing.
func (r *ClientRAM) Add(id VideoID) []VideoID {
	r.mu.Lock()
	defer r.mu.Unlock()

	if e, ok := r.held[id]; ok {
		r.order.MoveToBack(e)
		return nil
	}
	r.held[id] = r.order.PushBack(id)
	var released []VideoID
	for r.order.Len() > r.threshold {
		front := r.order.Front()
		old, ok := front.Value.(VideoID)
		if !ok {
			break
		}
		r.order.Remove(front)
		delete(r.held, old)
		released = append(released, old)
	}
	return released
}

// Holds reports whether the tile is currently in RAM.
func (r *ClientRAM) Holds(id VideoID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.held[id]
	return ok
}

// Len returns the number of held tiles.
func (r *ClientRAM) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.order.Len()
}

// DeliveryLedger is the server-side record of which tiles each user already
// holds ("the server records the tiles that have already been delivered and
// will not transmit the same tiles again"). Release notifications remove
// entries so the tiles can be retransmitted later.
type DeliveryLedger struct {
	mu        sync.Mutex
	delivered map[VideoID]struct{}
}

// NewDeliveryLedger returns an empty ledger.
func NewDeliveryLedger() *DeliveryLedger {
	return &DeliveryLedger{delivered: make(map[VideoID]struct{})}
}

// MarkDelivered records an acknowledged tile.
func (l *DeliveryLedger) MarkDelivered(id VideoID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.delivered[id] = struct{}{}
}

// MarkReleased removes tiles the client reported releasing.
func (l *DeliveryLedger) MarkReleased(ids ...VideoID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, id := range ids {
		delete(l.delivered, id)
	}
}

// Has reports whether the user is known to hold the tile.
func (l *DeliveryLedger) Has(id VideoID) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.delivered[id]
	return ok
}

// Len returns the number of tiles recorded as delivered.
func (l *DeliveryLedger) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.delivered)
}
