// Package tiles models the paper's content pipeline (Section V): the
// panoramic scene is projected to an equirectangular texture, split into
// four tiles (Fig. 5), rendered offline for every 5cm x 5cm cell of the
// virtual grid world, and encoded at six CRF values {15,19,23,27,31,35}
// indexed by quality levels {6,...,1}. Tiles are addressed by a video ID
// packing (cell, tile, quality), exactly as the paper's runtime does.
//
// Because the original 171 GB Unity-rendered content cannot ship with a
// reproduction, sizes come from an analytic convex size model (matching
// Fig. 1a) and payload bytes are generated deterministically on demand.
package tiles

import (
	"fmt"

	"repro/internal/vrmath"
)

// NumTiles is the number of tiles per panoramic frame (2x2 split, Fig. 5).
const NumTiles = 4

// TileID identifies one of the four equirectangular tiles.
//
//	0: yaw [-180, 0), pitch [0, 90]     (top left)
//	1: yaw [0, 180),  pitch [0, 90]     (top right)
//	2: yaw [-180, 0), pitch [-90, 0)    (bottom left)
//	3: yaw [0, 180),  pitch [-90, 0)    (bottom right)
type TileID uint8

// Span returns the equirectangular footprint of the tile.
func (t TileID) Span() (yawLo, yawHi, pitchLo, pitchHi float64) {
	switch t {
	case 0:
		return -180, 0, 0, 90
	case 1:
		return 0, 180, 0, 90
	case 2:
		return -180, 0, -90, 0
	case 3:
		return 0, 180, -90, 0
	default:
		return 0, 0, 0, 0
	}
}

// ForRect returns the tiles whose footprint overlaps the view rectangle,
// in increasing TileID order. A valid view always overlaps at least one
// tile.
func ForRect(r vrmath.ViewRect) []TileID {
	var out []TileID
	for t := TileID(0); t < NumTiles; t++ {
		yawLo, yawHi, pitchLo, pitchHi := t.Span()
		if r.OverlapsYawSpan(yawLo, yawHi) && r.OverlapsPitchSpan(pitchLo, pitchHi) {
			out = append(out, t)
		}
	}
	return out
}

// ForView is a convenience wrapper: the tiles overlapped by the fov (plus
// margin) centred on the pose.
func ForView(p vrmath.Pose, fov vrmath.FoV, marginDeg float64) []TileID {
	return ForRect(vrmath.Rect(p, fov.Expand(marginDeg)))
}

// ForRectAppend is ForRect appending into dst (allocation-free once dst
// has capacity); same tiles in the same order.
func ForRectAppend(dst []TileID, r vrmath.ViewRect) []TileID {
	for t := TileID(0); t < NumTiles; t++ {
		yawLo, yawHi, pitchLo, pitchHi := t.Span()
		if r.OverlapsYawSpan(yawLo, yawHi) && r.OverlapsPitchSpan(pitchLo, pitchHi) {
			dst = append(dst, t)
		}
	}
	return dst
}

// ForViewAppend is ForView appending into dst.
func ForViewAppend(dst []TileID, p vrmath.Pose, fov vrmath.FoV, marginDeg float64) []TileID {
	return ForRectAppend(dst, vrmath.Rect(p, fov.Expand(marginDeg)))
}

// CellSize is the grid-world granularity in metres ("we split the whole
// panoramic scene into a grid world with the granularity of 5cm x 5cm").
const CellSize = 0.05

// CellID addresses one grid cell of the virtual floor plan.
type CellID struct {
	X, Z int32
}

// CellFor returns the cell containing a virtual position (the Y axis is
// height and does not participate in the grid).
func CellFor(pos vrmath.Vec3) CellID {
	return CellID{
		X: int32(floorDiv(pos.X, CellSize)),
		Z: int32(floorDiv(pos.Z, CellSize)),
	}
}

func floorDiv(x, step float64) float64 {
	q := x / step
	f := float64(int64(q))
	if q < 0 && q != f {
		f--
	}
	return f
}

// Levels is the size of the quality set (L = 6 in the paper).
const Levels = 6

// CRFValues maps quality level (1-based index-1) to the FFmpeg CRF value the
// paper encodes with; level 1 is CRF 35 (lowest quality), level 6 is CRF 15.
var CRFValues = [Levels]int{35, 31, 27, 23, 19, 15}

// CRFForLevel returns the CRF value of a quality level in 1..6.
func CRFForLevel(level int) (int, error) {
	if level < 1 || level > Levels {
		return 0, fmt.Errorf("tiles: level %d out of range 1..%d", level, Levels)
	}
	return CRFValues[level-1], nil
}

// LevelForCRF returns the quality level of a CRF value.
func LevelForCRF(crf int) (int, error) {
	for i, c := range CRFValues {
		if c == crf {
			return i + 1, nil
		}
	}
	return 0, fmt.Errorf("tiles: unknown CRF %d", crf)
}

// VideoID packs (cell, tile, quality level) into a single identifier, the
// paper's "video ID corresponding to their position, tile ID, and quality".
// Layout (LSB first): 4 bits level, 2 bits tile, 24 bits cell X (offset
// binary), 24 bits cell Z.
type VideoID uint64

const cellBias = 1 << 23

// PackVideoID builds a VideoID. Level must be 1..Levels and the cell
// coordinates must fit in 24 bits after biasing.
func PackVideoID(cell CellID, tile TileID, level int) (VideoID, error) {
	if level < 1 || level > Levels {
		return 0, fmt.Errorf("tiles: level %d out of range", level)
	}
	if tile >= NumTiles {
		return 0, fmt.Errorf("tiles: tile %d out of range", tile)
	}
	bx := int64(cell.X) + cellBias
	bz := int64(cell.Z) + cellBias
	if bx < 0 || bx >= 1<<24 || bz < 0 || bz >= 1<<24 {
		return 0, fmt.Errorf("tiles: cell %+v out of range", cell)
	}
	id := VideoID(level) |
		VideoID(tile)<<4 |
		VideoID(bx)<<6 |
		VideoID(bz)<<30
	return id, nil
}

// Unpack splits a VideoID into its components.
func (id VideoID) Unpack() (cell CellID, tile TileID, level int) {
	level = int(id & 0xF)
	tile = TileID((id >> 4) & 0x3)
	cell.X = int32((id>>6)&0xFFFFFF) - cellBias
	cell.Z = int32((id>>30)&0xFFFFFF) - cellBias
	return cell, tile, level
}

// String renders a VideoID for logs.
func (id VideoID) String() string {
	cell, tile, level := id.Unpack()
	return fmt.Sprintf("cell(%d,%d)/t%d/q%d", cell.X, cell.Z, tile, level)
}
