package tiles

import (
	"bytes"
	"sync"
	"testing"
)

func mustID(t *testing.T, x, z int32, tile TileID, level int) VideoID {
	t.Helper()
	id, err := PackVideoID(CellID{x, z}, tile, level)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestStorePayloadDeterministic(t *testing.T) {
	m := NewSizeModel(1)
	s1 := NewStore(m, 16, 60)
	s2 := NewStore(m, 16, 60)
	id := mustID(t, 3, 4, 2, 5)
	if !bytes.Equal(s1.Payload(id), s2.Payload(id)) {
		t.Errorf("payloads differ across stores")
	}
}

func TestStorePayloadSizeMatchesModel(t *testing.T) {
	m := NewSizeModel(1)
	s := NewStore(m, 16, 60)
	id := mustID(t, 1, 1, 0, 3)
	cell, tile, level := id.Unpack()
	want := m.TileBytes(cell, tile, level, 60)
	if got := len(s.Payload(id)); got != want {
		t.Errorf("payload length = %d, want %d", got, want)
	}
}

func TestStoreCacheHitMiss(t *testing.T) {
	s := NewStore(NewSizeModel(1), 8, 60)
	id := mustID(t, 0, 0, 0, 1)
	s.Payload(id)
	s.Payload(id)
	hits, misses := s.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("hits=%d misses=%d, want 1, 1", hits, misses)
	}
}

func TestStoreEviction(t *testing.T) {
	s := NewStore(NewSizeModel(1), 4, 60)
	ids := make([]VideoID, 6)
	for i := range ids {
		ids[i] = mustID(t, int32(i), 0, 0, 1)
		s.Payload(ids[i])
	}
	if got := s.Cached(); got != 4 {
		t.Errorf("cached = %d, want 4", got)
	}
	// Oldest two must have been evicted: fetching them again is a miss.
	_, missesBefore := s.Stats()
	s.Payload(ids[0])
	_, missesAfter := s.Stats()
	if missesAfter != missesBefore+1 {
		t.Errorf("expected a miss after eviction")
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	s := NewStore(NewSizeModel(1), 32, 60)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := mustID(t, int32(i%10), int32(g%3), TileID(i%4), i%6+1)
				if len(s.Payload(id)) == 0 {
					t.Errorf("empty payload")
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestClientRAMThresholdRelease(t *testing.T) {
	r := NewClientRAM(3)
	var released []VideoID
	for i := 0; i < 5; i++ {
		released = append(released, r.Add(mustID(t, int32(i), 0, 0, 1))...)
	}
	if r.Len() != 3 {
		t.Errorf("Len = %d, want 3", r.Len())
	}
	if len(released) != 2 {
		t.Fatalf("released %d tiles, want 2", len(released))
	}
	// Oldest tiles go first.
	want0 := mustID(t, 0, 0, 0, 1)
	want1 := mustID(t, 1, 0, 0, 1)
	if released[0] != want0 || released[1] != want1 {
		t.Errorf("released %v, want [%v %v]", released, want0, want1)
	}
	if r.Holds(want0) {
		t.Errorf("released tile still held")
	}
	if !r.Holds(mustID(t, 4, 0, 0, 1)) {
		t.Errorf("newest tile not held")
	}
}

func TestClientRAMRefresh(t *testing.T) {
	r := NewClientRAM(2)
	a := mustID(t, 0, 0, 0, 1)
	b := mustID(t, 1, 0, 0, 1)
	c := mustID(t, 2, 0, 0, 1)
	r.Add(a)
	r.Add(b)
	if rel := r.Add(a); rel != nil { // refresh, no release
		t.Errorf("refresh released %v", rel)
	}
	rel := r.Add(c) // b is now oldest
	if len(rel) != 1 || rel[0] != b {
		t.Errorf("released %v, want [%v]", rel, b)
	}
}

func TestClientRAMMinThreshold(t *testing.T) {
	r := NewClientRAM(0)
	a := mustID(t, 0, 0, 0, 1)
	b := mustID(t, 1, 0, 0, 1)
	r.Add(a)
	rel := r.Add(b)
	if len(rel) != 1 || rel[0] != a {
		t.Errorf("threshold should clamp to 1: released %v", rel)
	}
}

func TestDeliveryLedger(t *testing.T) {
	l := NewDeliveryLedger()
	a := mustID(t, 0, 0, 0, 1)
	b := mustID(t, 1, 0, 0, 1)
	if l.Has(a) {
		t.Errorf("empty ledger should not have %v", a)
	}
	l.MarkDelivered(a)
	l.MarkDelivered(b)
	if !l.Has(a) || !l.Has(b) || l.Len() != 2 {
		t.Errorf("ledger should hold both tiles")
	}
	l.MarkReleased(a)
	if l.Has(a) {
		t.Errorf("released tile should be forgotten")
	}
	if !l.Has(b) {
		t.Errorf("unreleased tile should remain")
	}
}
