// Package nettrace provides the network-throughput traces of the paper's
// Section IV. The paper draws half of its traces from the FCC broadband
// dataset ("Web browsing" category) and half from the Ghent 4G/LTE dataset,
// clipping throughput to 20-100 Mbps and 300 seconds per trace. Neither
// dataset can ship with an offline reproduction, so this package generates
// synthetic traces with the same statistics the algorithms actually consume:
// piecewise-constant throughput with multi-second holds ("the network
// throughput in the dataset usually lasts for several seconds for each
// point"), broadband-like stability for the FCC half and cellular-like
// volatility for the LTE half.
package nettrace

import (
	"encoding/csv"
	"fmt"
	"io"
	"math/rand"
	"strconv"
)

// Segment is one hold of a piecewise-constant throughput trace.
type Segment struct {
	Mbps    float64
	Seconds float64
}

// Trace is a throughput trace: a sequence of multi-second holds.
type Trace struct {
	Segments []Segment
}

// Duration returns the total trace length in seconds.
func (t *Trace) Duration() float64 {
	var d float64
	for _, s := range t.Segments {
		d += s.Seconds
	}
	return d
}

// Kind selects the generator profile.
type Kind int

const (
	// Broadband mimics the FCC fixed-broadband measurements: long holds,
	// small deviations around a stable plan rate with occasional congestion
	// dips.
	Broadband Kind = iota + 1
	// LTE mimics the Ghent 4G/LTE logs: shorter holds and larger swings as
	// the UE moves through varying radio conditions.
	LTE
	// MmWave mimics a 5G mmWave link (an extension beyond the paper's two
	// datasets): very high rates with abrupt blockage collapses — the most
	// hostile profile for estimation-driven allocation.
	MmWave
)

// Config bounds the generated traces; the defaults are the paper's.
type Config struct {
	MinMbps float64 // clip floor (paper: 20)
	MaxMbps float64 // clip ceiling (paper: 100)
	Seconds float64 // trace length (paper: 300)
}

// DefaultConfig matches Section IV: 20-100 Mbps, 300 s.
func DefaultConfig() Config { return Config{MinMbps: 20, MaxMbps: 100, Seconds: 300} }

// Generate produces one trace of the given kind.
func Generate(kind Kind, cfg Config, rng *rand.Rand) *Trace {
	if cfg.MaxMbps <= cfg.MinMbps {
		cfg = DefaultConfig()
	}
	span := cfg.MaxMbps - cfg.MinMbps
	var segs []Segment
	elapsed := 0.0

	switch kind {
	case MmWave:
		// Line-of-sight at near-ceiling rates, interrupted by blockage
		// events that collapse the link toward the floor for 0.5-3 s.
		blocked := false
		for elapsed < cfg.Seconds {
			var hold, level float64
			if blocked {
				hold = 0.5 + rng.Float64()*2.5
				level = cfg.MinMbps * (1 + rng.Float64()*0.5)
			} else {
				hold = 2 + rng.Float64()*8
				level = cfg.MaxMbps * (0.8 + rng.Float64()*0.2)
			}
			if elapsed+hold > cfg.Seconds {
				hold = cfg.Seconds - elapsed
			}
			segs = append(segs, Segment{Mbps: clip(level, cfg.MinMbps, cfg.MaxMbps), Seconds: hold})
			elapsed += hold
			if blocked {
				blocked = false
			} else {
				blocked = rng.Float64() < 0.4
			}
		}
	case LTE:
		// Random walk with short holds and heavy swings.
		level := cfg.MinMbps + rng.Float64()*span
		for elapsed < cfg.Seconds {
			hold := 1 + rng.Float64()*4 // 1-5 s holds
			if elapsed+hold > cfg.Seconds {
				hold = cfg.Seconds - elapsed
			}
			segs = append(segs, Segment{Mbps: level, Seconds: hold})
			elapsed += hold
			level += rng.NormFloat64() * span * 0.18
			level = clip(level, cfg.MinMbps, cfg.MaxMbps)
		}
	default: // Broadband
		// A stable plan rate with small noise and rare congestion dips.
		plan := cfg.MinMbps + span*(0.35+0.6*rng.Float64())
		for elapsed < cfg.Seconds {
			hold := 5 + rng.Float64()*25 // 5-30 s holds
			if elapsed+hold > cfg.Seconds {
				hold = cfg.Seconds - elapsed
			}
			level := plan * (0.92 + 0.16*rng.Float64())
			if rng.Float64() < 0.08 { // occasional congestion dip
				level = plan * (0.5 + 0.3*rng.Float64())
			}
			segs = append(segs, Segment{
				Mbps:    clip(level, cfg.MinMbps, cfg.MaxMbps),
				Seconds: hold,
			})
			elapsed += hold
		}
	}
	return &Trace{Segments: segs}
}

// GenerateMix builds n traces, half Broadband and half LTE, as the paper
// does ("We randomly generate half of the requested traces from the ... FCC
// dataset ... The other half ... from Ghent's dataset").
func GenerateMix(n int, cfg Config, rng *rand.Rand) []*Trace {
	out := make([]*Trace, n)
	for i := range out {
		kind := Broadband
		if i%2 == 1 {
			kind = LTE
		}
		out[i] = Generate(kind, cfg, rng)
	}
	return out
}

func clip(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Slotted expands the trace into per-slot throughput values: consecutive
// slots share a segment's bandwidth until its duration is consumed, exactly
// the paper's mapping ("we just let multiple continuous slots share the same
// bandwidth until their cumulative time reaches the trace's duration"). If
// the trace is shorter than slots*slotDur, it wraps around.
func (t *Trace) Slotted(slots int, slotsPerSecond float64) []float64 {
	if slotsPerSecond <= 0 {
		slotsPerSecond = 60
	}
	out := make([]float64, slots)
	if len(t.Segments) == 0 {
		return out
	}
	seg := 0
	remaining := t.Segments[0].Seconds
	dt := 1 / slotsPerSecond
	for i := 0; i < slots; i++ {
		out[i] = t.Segments[seg].Mbps
		remaining -= dt
		for remaining <= 0 {
			seg = (seg + 1) % len(t.Segments)
			remaining += t.Segments[seg].Seconds
			if t.Segments[seg].Seconds <= 0 {
				// Zero-length segment guard: skip without looping forever.
				remaining += dt
			}
		}
	}
	return out
}

// WriteCSV serializes the trace as mbps,seconds rows.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"mbps", "seconds"}); err != nil {
		return fmt.Errorf("nettrace: write header: %w", err)
	}
	for i, s := range t.Segments {
		rec := []string{
			strconv.FormatFloat(s.Mbps, 'g', 10, 64),
			strconv.FormatFloat(s.Seconds, 'g', 10, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("nettrace: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("nettrace: read csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("nettrace: empty csv")
	}
	tr := &Trace{}
	for i, row := range rows[1:] {
		if len(row) != 2 {
			return nil, fmt.Errorf("nettrace: row %d has %d fields, want 2", i, len(row))
		}
		mbps, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			return nil, fmt.Errorf("nettrace: row %d mbps: %w", i, err)
		}
		secs, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("nettrace: row %d seconds: %w", i, err)
		}
		tr.Segments = append(tr.Segments, Segment{Mbps: mbps, Seconds: secs})
	}
	return tr, nil
}
