package nettrace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file parses the two public dataset formats the paper draws its
// network traces from, so a user who has the real data can substitute it
// for the synthetic generators.

// ParseFCC reads rows of the FCC "Measuring Broadband America" raw data
// releases (the curr_webbrowsing table the paper samples). The format is
// comma-separated with a header; this parser needs the `dtime` (ignored),
// `bytes_sec` column, from which throughput in Mbps is derived, and holds
// each sample for holdSeconds (the raw data has one measurement per page
// fetch; the paper lets "multiple continuous slots share the same
// bandwidth").
func ParseFCC(r io.Reader, holdSeconds float64) (*Trace, error) {
	if holdSeconds <= 0 {
		holdSeconds = 5
	}
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("nettrace: fcc header: %w", err)
	}
	cols := strings.Split(strings.TrimSpace(header), ",")
	byteSecIdx := -1
	for i, c := range cols {
		if strings.TrimSpace(c) == "bytes_sec" {
			byteSecIdx = i
			break
		}
	}
	if byteSecIdx < 0 {
		return nil, fmt.Errorf("nettrace: fcc header missing bytes_sec column")
	}

	tr := &Trace{}
	line := 1
	for {
		row, err := br.ReadString('\n')
		if row != "" {
			line++
			fields := strings.Split(strings.TrimSpace(row), ",")
			if len(fields) <= byteSecIdx {
				return nil, fmt.Errorf("nettrace: fcc row %d has %d fields", line, len(fields))
			}
			bytesSec, perr := strconv.ParseFloat(strings.TrimSpace(fields[byteSecIdx]), 64)
			if perr != nil {
				return nil, fmt.Errorf("nettrace: fcc row %d bytes_sec: %w", line, perr)
			}
			tr.Segments = append(tr.Segments, Segment{
				Mbps:    bytesSec * 8 / 1e6,
				Seconds: holdSeconds,
			})
		}
		if err != nil {
			break
		}
	}
	if len(tr.Segments) == 0 {
		return nil, fmt.Errorf("nettrace: fcc file has no data rows")
	}
	return tr, nil
}

// ParseGhent reads the Ghent University 4G/LTE measurement logs (van der
// Hooft et al.), whose rows are whitespace-separated:
//
//	<timestamp_ms> <latitude> <longitude> <bytes> <duration_ms>
//
// Throughput of each row is bytes*8/duration; the row's duration becomes
// the hold time.
func ParseGhent(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	tr := &Trace{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 5 {
			return nil, fmt.Errorf("nettrace: ghent row %d has %d fields, want 5", line, len(fields))
		}
		bytes, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return nil, fmt.Errorf("nettrace: ghent row %d bytes: %w", line, err)
		}
		durMs, err := strconv.ParseFloat(fields[4], 64)
		if err != nil {
			return nil, fmt.Errorf("nettrace: ghent row %d duration: %w", line, err)
		}
		if durMs <= 0 {
			continue
		}
		tr.Segments = append(tr.Segments, Segment{
			Mbps:    bytes * 8 / (durMs / 1000) / 1e6,
			Seconds: durMs / 1000,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("nettrace: ghent scan: %w", err)
	}
	if len(tr.Segments) == 0 {
		return nil, fmt.Errorf("nettrace: ghent file has no data rows")
	}
	return tr, nil
}

// Clip bounds every segment's throughput to [lo, hi], the paper's
// normalization ("we set ... the network throughput between 20 Mbps to 100
// Mbps to avoid trivial video quality selection").
func (t *Trace) Clip(lo, hi float64) {
	for i := range t.Segments {
		t.Segments[i].Mbps = clip(t.Segments[i].Mbps, lo, hi)
	}
}

// Truncate cuts the trace to at most seconds, the paper's 300-second
// normalization. Traces shorter than the bound are unchanged.
func (t *Trace) Truncate(seconds float64) {
	var elapsed float64
	for i := range t.Segments {
		if elapsed+t.Segments[i].Seconds >= seconds {
			t.Segments[i].Seconds = seconds - elapsed
			if t.Segments[i].Seconds <= 0 {
				t.Segments = t.Segments[:i]
			} else {
				t.Segments = t.Segments[:i+1]
			}
			return
		}
		elapsed += t.Segments[i].Seconds
	}
}
