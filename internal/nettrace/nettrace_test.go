package nettrace

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func TestGenerateRespectsBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := DefaultConfig()
	for _, kind := range []Kind{Broadband, LTE} {
		for trial := 0; trial < 20; trial++ {
			tr := Generate(kind, cfg, rng)
			if math.Abs(tr.Duration()-cfg.Seconds) > 1e-6 {
				t.Fatalf("kind %d: duration %v, want %v", kind, tr.Duration(), cfg.Seconds)
			}
			for i, s := range tr.Segments {
				if s.Mbps < cfg.MinMbps-1e-9 || s.Mbps > cfg.MaxMbps+1e-9 {
					t.Fatalf("kind %d seg %d: %v Mbps outside [%v, %v]",
						kind, i, s.Mbps, cfg.MinMbps, cfg.MaxMbps)
				}
				if s.Seconds <= 0 {
					t.Fatalf("kind %d seg %d: nonpositive duration", kind, i)
				}
			}
		}
	}
}

func TestGenerateHoldLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := DefaultConfig()
	bb := Generate(Broadband, cfg, rng)
	lte := Generate(LTE, cfg, rng)
	avg := func(tr *Trace) float64 {
		return tr.Duration() / float64(len(tr.Segments))
	}
	// Broadband holds are multi-second and longer than LTE holds.
	if avg(bb) < 4 {
		t.Errorf("broadband mean hold %v s, want >= 4", avg(bb))
	}
	if avg(lte) > avg(bb) {
		t.Errorf("LTE holds (%v s) should be shorter than broadband (%v s)",
			avg(lte), avg(bb))
	}
}

func TestLTEMoreVolatileThanBroadband(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := DefaultConfig()
	volatility := func(kind Kind) float64 {
		var sum float64
		const trials = 30
		for i := 0; i < trials; i++ {
			tr := Generate(kind, cfg, rng)
			slots := tr.Slotted(300*60, 60)
			var diffs float64
			for j := 1; j < len(slots); j++ {
				diffs += math.Abs(slots[j] - slots[j-1])
			}
			sum += diffs
		}
		return sum / trials
	}
	if lte, bb := volatility(LTE), volatility(Broadband); lte <= bb {
		t.Errorf("LTE volatility %v should exceed broadband %v", lte, bb)
	}
}

func TestMmWaveBlockageCollapses(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cfg := DefaultConfig()
	tr := Generate(MmWave, cfg, rng)
	if math.Abs(tr.Duration()-cfg.Seconds) > 1e-6 {
		t.Fatalf("duration %v", tr.Duration())
	}
	var high, low int
	for _, s := range tr.Segments {
		if s.Mbps > cfg.MaxMbps*0.75 {
			high++
		}
		if s.Mbps < cfg.MinMbps*1.6 {
			low++
		}
	}
	if high == 0 || low == 0 {
		t.Errorf("mmWave should mix near-ceiling and blocked segments: high=%d low=%d", high, low)
	}
}

func TestGenerateMixAlternates(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	traces := GenerateMix(10, DefaultConfig(), rng)
	if len(traces) != 10 {
		t.Fatalf("got %d traces", len(traces))
	}
	for _, tr := range traces {
		if len(tr.Segments) == 0 {
			t.Fatalf("empty trace in mix")
		}
	}
}

func TestSlottedSharesBandwidthAcrossSlots(t *testing.T) {
	tr := &Trace{Segments: []Segment{
		{Mbps: 50, Seconds: 1},
		{Mbps: 80, Seconds: 0.5},
	}}
	slots := tr.Slotted(120, 60) // 2 seconds at 60 slots/s; trace wraps
	for i := 0; i < 60; i++ {
		if slots[i] != 50 {
			t.Fatalf("slot %d = %v, want 50", i, slots[i])
		}
	}
	for i := 60; i < 90; i++ {
		if slots[i] != 80 {
			t.Fatalf("slot %d = %v, want 80", i, slots[i])
		}
	}
	// Wrap-around back to the first segment.
	if slots[95] != 50 {
		t.Errorf("slot 95 = %v, want 50 after wrap", slots[95])
	}
}

func TestSlottedEmptyTrace(t *testing.T) {
	tr := &Trace{}
	slots := tr.Slotted(10, 60)
	for _, s := range slots {
		if s != 0 {
			t.Fatalf("empty trace should produce zeros")
		}
	}
}

func TestSlottedDefaultRate(t *testing.T) {
	tr := &Trace{Segments: []Segment{{Mbps: 42, Seconds: 100}}}
	slots := tr.Slotted(5, 0)
	for _, s := range slots {
		if s != 42 {
			t.Fatalf("slot = %v, want 42", s)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := Generate(LTE, DefaultConfig(), rng)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Segments) != len(tr.Segments) {
		t.Fatalf("segments %d, want %d", len(back.Segments), len(tr.Segments))
	}
	for i := range tr.Segments {
		if math.Abs(tr.Segments[i].Mbps-back.Segments[i].Mbps) > 1e-6 {
			t.Fatalf("segment %d mismatch", i)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("")); err == nil {
		t.Error("empty csv should error")
	}
	if _, err := ReadCSV(bytes.NewBufferString("mbps,seconds\nx,1\n")); err == nil {
		t.Error("bad mbps should error")
	}
	if _, err := ReadCSV(bytes.NewBufferString("mbps,seconds\n1,x\n")); err == nil {
		t.Error("bad seconds should error")
	}
	if _, err := ReadCSV(bytes.NewBufferString("mbps,seconds\n1\n")); err == nil {
		t.Error("short row should error")
	}
}
