package nettrace

import (
	"math"
	"strings"
	"testing"
)

const fccSample = `unit_id,dtime,target,bytes_sec,fetch_time
1001,2021-03-01 00:00:00,example.com,6250000,120
1001,2021-03-01 00:05:00,example.com,12500000,130
1001,2021-03-01 00:10:00,example.com,3125000,90
`

func TestParseFCC(t *testing.T) {
	tr, err := ParseFCC(strings.NewReader(fccSample), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Segments) != 3 {
		t.Fatalf("segments = %d, want 3", len(tr.Segments))
	}
	wantMbps := []float64{50, 100, 25}
	for i, w := range wantMbps {
		if math.Abs(tr.Segments[i].Mbps-w) > 1e-9 {
			t.Errorf("segment %d = %v Mbps, want %v", i, tr.Segments[i].Mbps, w)
		}
		if tr.Segments[i].Seconds != 5 {
			t.Errorf("segment %d hold = %v, want 5", i, tr.Segments[i].Seconds)
		}
	}
}

func TestParseFCCErrors(t *testing.T) {
	if _, err := ParseFCC(strings.NewReader(""), 5); err == nil {
		t.Error("empty file should error")
	}
	if _, err := ParseFCC(strings.NewReader("a,b,c\n1,2,3\n"), 5); err == nil {
		t.Error("missing bytes_sec column should error")
	}
	bad := "unit_id,bytes_sec\n1,notanumber\n"
	if _, err := ParseFCC(strings.NewReader(bad), 5); err == nil {
		t.Error("non-numeric bytes_sec should error")
	}
	headerOnly := "unit_id,bytes_sec\n"
	if _, err := ParseFCC(strings.NewReader(headerOnly), 5); err == nil {
		t.Error("header-only file should error")
	}
}

const ghentSample = `# timestamp lat lon bytes duration_ms
1453121790686 51.03 3.71 5000000 1000
1453121791686 51.04 3.72 2500000 500

1453121792686 51.05 3.73 10000000 2000
`

func TestParseGhent(t *testing.T) {
	tr, err := ParseGhent(strings.NewReader(ghentSample))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Segments) != 3 {
		t.Fatalf("segments = %d, want 3", len(tr.Segments))
	}
	// 5 MB over 1 s = 40 Mbps; 2.5 MB over 0.5 s = 40 Mbps; 10 MB/2 s = 40.
	for i, s := range tr.Segments {
		if math.Abs(s.Mbps-40) > 1e-9 {
			t.Errorf("segment %d = %v Mbps, want 40", i, s.Mbps)
		}
	}
	if tr.Segments[1].Seconds != 0.5 {
		t.Errorf("segment 1 hold = %v, want 0.5", tr.Segments[1].Seconds)
	}
}

func TestParseGhentErrors(t *testing.T) {
	if _, err := ParseGhent(strings.NewReader("")); err == nil {
		t.Error("empty file should error")
	}
	if _, err := ParseGhent(strings.NewReader("1 2 3\n")); err == nil {
		t.Error("short row should error")
	}
	if _, err := ParseGhent(strings.NewReader("1 2 3 x 5\n")); err == nil {
		t.Error("bad bytes should error")
	}
	if _, err := ParseGhent(strings.NewReader("1 2 3 4 x\n")); err == nil {
		t.Error("bad duration should error")
	}
	// Zero-duration rows are skipped, leaving no data.
	if _, err := ParseGhent(strings.NewReader("1 2 3 4 0\n")); err == nil {
		t.Error("only zero-duration rows should error")
	}
}

func TestClipAndTruncate(t *testing.T) {
	tr := &Trace{Segments: []Segment{
		{Mbps: 5, Seconds: 10},
		{Mbps: 500, Seconds: 10},
		{Mbps: 50, Seconds: 10},
	}}
	tr.Clip(20, 100)
	if tr.Segments[0].Mbps != 20 || tr.Segments[1].Mbps != 100 || tr.Segments[2].Mbps != 50 {
		t.Errorf("clip wrong: %+v", tr.Segments)
	}

	tr.Truncate(15)
	if math.Abs(tr.Duration()-15) > 1e-9 {
		t.Errorf("truncated duration = %v, want 15", tr.Duration())
	}
	if len(tr.Segments) != 2 || tr.Segments[1].Seconds != 5 {
		t.Errorf("truncate wrong: %+v", tr.Segments)
	}

	// Truncating beyond the duration is a no-op.
	tr2 := &Trace{Segments: []Segment{{Mbps: 30, Seconds: 10}}}
	tr2.Truncate(100)
	if tr2.Duration() != 10 {
		t.Errorf("over-truncate changed trace: %v", tr2.Duration())
	}

	// Truncating exactly on a boundary drops the rest.
	tr3 := &Trace{Segments: []Segment{{Mbps: 1, Seconds: 5}, {Mbps: 2, Seconds: 5}}}
	tr3.Truncate(5)
	if len(tr3.Segments) != 1 {
		t.Errorf("boundary truncate kept %d segments", len(tr3.Segments))
	}
}
