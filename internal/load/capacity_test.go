package load

import (
	"errors"
	"testing"
)

// stepProbe models a server whose miss rate jumps above target past a knee.
func stepProbe(knee int, calls *[]int) ProbeFunc {
	return func(n int) (float64, error) {
		*calls = append(*calls, n)
		if n <= knee {
			return 0.001 * float64(n) / float64(knee), nil
		}
		return 0.5, nil
	}
}

func TestFindCapacityConverges(t *testing.T) {
	for _, knee := range []int{1, 2, 37, 100, 500, 1023} {
		var calls []int
		res, err := FindCapacity(1, 1024, 0.01, stepProbe(knee, &calls))
		if err != nil {
			t.Fatalf("knee %d: %v", knee, err)
		}
		if res.MaxSessions != knee {
			t.Errorf("knee %d: found %d", knee, res.MaxSessions)
		}
		if res.CappedAtHi {
			t.Errorf("knee %d: wrongly capped at ceiling", knee)
		}
		// Doubling plus bisection over [1,1024] is O(log): generous bound.
		if len(calls) > 25 {
			t.Errorf("knee %d: %d probes, want O(log hi)", knee, len(calls))
		}
	}
}

func TestFindCapacityFloorFails(t *testing.T) {
	var calls []int
	res, err := FindCapacity(8, 512, 0.01, stepProbe(4, &calls))
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxSessions != 0 {
		t.Errorf("floor probe fails, want MaxSessions 0, got %d", res.MaxSessions)
	}
	if len(calls) != 1 {
		t.Errorf("want exactly 1 probe after floor failure, got %d", len(calls))
	}
}

func TestFindCapacityCappedAtCeiling(t *testing.T) {
	var calls []int
	res, err := FindCapacity(1, 64, 0.01, stepProbe(1000, &calls))
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxSessions != 64 || !res.CappedAtHi {
		t.Errorf("want capped at 64, got max %d capped %v", res.MaxSessions, res.CappedAtHi)
	}
}

func TestFindCapacityProbeError(t *testing.T) {
	boom := errors.New("boom")
	_, err := FindCapacity(1, 64, 0.01, func(n int) (float64, error) {
		if n >= 4 {
			return 0, boom
		}
		return 0, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want probe error propagated, got %v", err)
	}
}

// TestFindCapacitySimulated exercises the real probe path end to end: steady
// workloads through the virtual-time engine, shrinking budget until the knee
// is inside the bracket. Mirrors what `collabvr-loadgen -find-capacity` does.
func TestFindCapacitySimulated(t *testing.T) {
	probe := func(n int) (float64, error) {
		w, err := Generate(Config{Shape: Steady, Sessions: n, HorizonSlots: 120, Seed: 1})
		if err != nil {
			return 0, err
		}
		rep, err := Simulate(w, SimConfig{BudgetMbps: 120})
		if err != nil {
			return 0, err
		}
		return rep.AggregateMissRate(), nil
	}
	res, err := FindCapacity(1, 64, 0.05, probe)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxSessions < 1 || res.CappedAtHi {
		t.Fatalf("capacity search did not converge inside the bracket: %+v", res)
	}
	// The knee must actually separate pass from fail.
	for _, p := range res.Probes {
		if p.Sessions <= res.MaxSessions && !p.OK && p.Sessions == res.MaxSessions {
			t.Errorf("probe at reported capacity %d failed", p.Sessions)
		}
	}
}
